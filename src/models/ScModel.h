//===- ScModel.h - SC and Transactional SC ----------------------*- C++ -*-==//
///
/// \file
/// Sequential consistency and transactional SC (Fig. 4). SC forbids cycles
/// in program order and communication (Shasha & Snir); TSC additionally
/// requires whole transactions to appear consecutively in the execution
/// order, which is captured by forbidding lifted hb cycles (TxnOrder).
///
/// Axioms (see Axiom.h):
///   SC  : Order
///   TSC : Order, TxnOrder (TM)
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_SCMODEL_H
#define TMW_MODELS_SCMODEL_H

#include "models/MemoryModel.h"

namespace tmw {

/// SC (Fig. 4 without the highlighted TxnOrder axiom).
class ScModel : public MemoryModel {
public:
  const char *name() const override { return "SC"; }
  Arch arch() const override { return Arch::SC; }
  AxiomList axioms() const override;
};

/// Transactional SC (Fig. 4 with TxnOrder).
class TscModel : public MemoryModel {
public:
  const char *name() const override { return "TSC"; }
  Arch arch() const override { return Arch::TSC; }
  AxiomList axioms() const override;
};

} // namespace tmw

#endif // TMW_MODELS_SCMODEL_H
