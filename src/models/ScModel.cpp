//===- ScModel.cpp - SC and Transactional SC --------------------------------==//

#include "models/ScModel.h"

using namespace tmw;

namespace {

Relation scHb(const ExecutionAnalysis &A, AxiomMask) {
  return A.po() | A.com();
}

Relation tscTxnOrder(const ExecutionAnalysis &A, AxiomMask M) {
  return strongLift(scHb(A, M), A.stxn());
}

// Salts declare the mask bits each term reads (Axiom.h): every SC/TSC
// term ignores the mask, so all salts are 0 and the eval plan shares the
// terms across every configuration — and across the two tables, which
// reference the same `scHb` function.
const Axiom ScAxioms[] = {
    {"Order", AxiomKind::Acyclic, scHb, /*Tm=*/false, /*Modifier=*/false,
     /*Salt=*/0},
};

const Axiom TscAxioms[] = {
    {"Order", AxiomKind::Acyclic, scHb, /*Tm=*/false, /*Modifier=*/false,
     /*Salt=*/0},
    {"TxnOrder", AxiomKind::Acyclic, tscTxnOrder, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/0},
};

} // namespace

AxiomList ScModel::axioms() const { return ScAxioms; }

AxiomList TscModel::axioms() const { return TscAxioms; }
