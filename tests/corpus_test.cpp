//===- corpus_test.cpp - The litmus corpus against every model ----------------==//
///
/// Each corpus entry carries expected reachability verdicts; this suite
/// checks all of them against the model-level candidate flow, checks the
/// operational TSO machine against the x86 column, and checks structural
/// invariants of the corpus itself.
///
//===----------------------------------------------------------------------===//

#include "litmus/Library.h"

#include "enumerate/Candidates.h"
#include "hw/ImplModel.h"
#include "hw/TsoMachine.h"
#include "models/Armv8Model.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

class CorpusTest : public ::testing::TestWithParam<size_t> {
protected:
  CorpusEntry entry() const { return standardCorpus()[GetParam()]; }
};

TEST_P(CorpusTest, ModelVerdictsMatchExpectations) {
  CorpusEntry E = entry();
  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  struct {
    Arch A;
    const MemoryModel *M;
  } Cols[] = {{Arch::SC, &Sc},
              {Arch::TSC, &Tsc},
              {Arch::X86, &X86},
              {Arch::Power, &Power},
              {Arch::Armv8, &Armv8}};
  for (const auto &[A, M] : Cols) {
    std::optional<bool> Want = expectedVerdict(E, A);
    if (!Want)
      continue;
    EXPECT_EQ(postconditionReachable(E.Prog, *M), *Want)
        << E.Name << " under " << M->name() << " (" << E.Note << ")";
  }
}

TEST_P(CorpusTest, TsoMachineAgreesWithX86Column) {
  CorpusEntry E = entry();
  std::optional<bool> Want = expectedVerdict(E, Arch::X86);
  if (!Want)
    return;
  TsoMachine M(E.Prog);
  // The machine is a sound x86 implementation: it never exhibits what
  // the model forbids. (It may be conservative on allowed tests, but for
  // the corpus shapes it is exact.)
  EXPECT_EQ(M.postconditionObservable(), *Want) << E.Name;
}

TEST_P(CorpusTest, MachineOutcomesAreModelAllowed) {
  CorpusEntry E = entry();
  X86Model Model;
  std::vector<Outcome> Axiomatic = allowedOutcomes(E.Prog, Model);
  TsoMachine M(E.Prog);
  for (const Outcome &O : M.reachableOutcomes())
    EXPECT_TRUE(std::find(Axiomatic.begin(), Axiomatic.end(), O) !=
                Axiomatic.end())
        << E.Name << ": machine produced " << O.str(E.Prog)
        << " which the x86 model forbids";
}

TEST_P(CorpusTest, Power8SubstituteRespectsPowerColumn) {
  CorpusEntry E = entry();
  std::optional<bool> Want = expectedVerdict(E, Arch::Power);
  if (!Want || *Want)
    return; // conservatism may hide allowed outcomes; forbidden is exact
  ImplModel P8 = ImplModel::power8();
  for (const Candidate &C : enumerateCandidates(E.Prog))
    if (C.O.satisfies(E.Prog)) {
      EXPECT_FALSE(P8.consistent(C.X)) << E.Name;
    }
}

TEST_P(CorpusTest, EntriesAreWellFormed) {
  CorpusEntry E = entry();
  EXPECT_FALSE(E.Name.empty());
  EXPECT_FALSE(E.Prog.Threads.empty());
  EXPECT_FALSE(E.Prog.RegPost.empty() && E.Prog.MemPost.empty());
  for (const Candidate &C : enumerateCandidates(E.Prog))
    EXPECT_EQ(C.X.checkWellFormed(), nullptr) << E.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEntries, CorpusTest,
    ::testing::Range<size_t>(0, standardCorpus().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = standardCorpus()[Info.param].Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(CorpusInventoryTest, CoversTheClassicFamilies) {
  std::vector<CorpusEntry> C = standardCorpus();
  EXPECT_GE(C.size(), 20u);
  for (const char *Family :
       {"SB", "MP", "LB", "WRC", "IRIW", "coherence", "2+2W", "paper"}) {
    bool Found = false;
    for (const CorpusEntry &E : C)
      Found |= E.Family == Family;
    EXPECT_TRUE(Found) << "missing family " << Family;
  }
}

TEST(CorpusInventoryTest, TransactionalVariantsPresent) {
  unsigned WithTxns = 0;
  for (const CorpusEntry &E : standardCorpus())
    WithTxns += E.Prog.hasTransactions();
  EXPECT_GE(WithTxns, 6u);
}

} // namespace
