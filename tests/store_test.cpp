//===- store_test.cpp - Persistent content-addressed verdict store ---------------==//
///
/// Crash-safety and identity of store/VerdictStore.h: append/lookup/reopen
/// round trips, torn-tail truncation at open, checksum rejection of
/// corrupted records, engine-version-mismatch misses, compaction, strict
/// open diagnostics — and the contract the whole tier rides on:
/// cold-vs-warm byte identity of the canonical verdict JSON over the
/// corpus × spec matrix, serially and with concurrent server batches
/// sharing one store.
///
//===----------------------------------------------------------------------===//

#include "litmus/Library.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"
#include "server/QueryServer.h"
#include "store/VerdictStore.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace tmw;

namespace {

/// A fresh per-test store path (the previous run's file, if any, removed).
std::string storePath(const char *Name) {
  std::string Path = testing::TempDir() + Name;
  ::unlink(Path.c_str());
  return Path;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Data) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Data.data(), static_cast<std::streamsize>(Data.size()));
}

void appendBytes(const std::string &Path, const std::string &Data) {
  std::ofstream Out(Path, std::ios::binary | std::ios::app);
  Out.write(Data.data(), static_cast<std::streamsize>(Data.size()));
}

// The on-disk framing, re-implemented independently of the store so the
// tests can craft records (duplicates, foreign versions) and corrupt
// them byte-precisely.
void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
uint64_t fnv1a64(uint64_t H, const std::string &S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}
std::string frameRecord(const std::string &Key, const std::string &Value) {
  std::string Lens;
  putU32(Lens, static_cast<uint32_t>(Key.size()));
  putU32(Lens, static_cast<uint32_t>(Value.size()));
  uint64_t Sum =
      fnv1a64(fnv1a64(fnv1a64(14695981039346656037ull, Lens), Key), Value);
  std::string Out = Lens;
  putU64(Out, Sum);
  Out += Key;
  Out += Value;
  return Out;
}

std::string key(const char *Name, const char *Source,
                uint32_t Version = VerdictStore::kEngineVersion) {
  std::vector<std::string> Specs = {"x86", "power"};
  return VerdictStore::makeKey(Name, Source, Specs, /*Explain=*/false,
                               /*WantOutcomes=*/true, /*CandidateCap=*/0,
                               Version);
}

TEST(VerdictStore, RoundTripReopenAndCounters) {
  std::string Path = storePath("tmw_store_roundtrip.store");
  std::string Error;
  auto S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;

  std::string K1 = key("A", "prog-a"), K2 = key("B", "prog-b");
  EXPECT_FALSE(S->lookup(K1).has_value()); // cold miss
  EXPECT_TRUE(S->append(K1, "{\"doc\": 1}"));
  EXPECT_TRUE(S->append(K2, "{\"doc\": 2}"));
  // Resident keys re-append as a no-op (entries are immutable).
  EXPECT_FALSE(S->append(K1, "{\"doc\": 1}"));
  ASSERT_TRUE(S->lookup(K1).has_value());
  EXPECT_EQ(*S->lookup(K1), "{\"doc\": 1}");
  EXPECT_EQ(*S->lookup(K2), "{\"doc\": 2}");

  StoreCounters C = S->counters();
  EXPECT_EQ(C.Appends, 2u);
  EXPECT_EQ(C.AppendErrors, 0u);
  EXPECT_EQ(C.Records, 2u);
  EXPECT_EQ(C.Misses, 1u);
  EXPECT_EQ(C.Hits, 3u);

  // Reopen: the index rebuilds from the log, answers intact.
  S.reset();
  S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  C = S->counters();
  EXPECT_EQ(C.RecoveredRecords, 2u);
  EXPECT_EQ(C.Records, 2u);
  EXPECT_EQ(C.StaleRecords, 0u);
  EXPECT_EQ(C.TruncatedTailBytes, 0u);
  EXPECT_EQ(*S->lookup(K2), "{\"doc\": 2}");

  // Distinct names / sources / options never share a key.
  EXPECT_NE(key("A", "prog-a"), key("A", "prog-b"));
  EXPECT_NE(key("A", "prog-a"), key("B", "prog-a"));
  EXPECT_NE(key("A", "prog-a"), key("A", "prog-a", /*Version=*/2));
  std::vector<std::string> Specs = {"x86"};
  EXPECT_NE(
      VerdictStore::makeKey("A", "s", Specs, false, true, 0),
      VerdictStore::makeKey("A", "s", Specs, true, true, 0));
  EXPECT_NE(
      VerdictStore::makeKey("A", "s", Specs, false, true, 0),
      VerdictStore::makeKey("A", "s", Specs, false, true, 7));
}

TEST(VerdictStore, TornTailTruncatedAtOpen) {
  std::string Path = storePath("tmw_store_torn.store");
  std::string Error;
  auto S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  std::string K = key("A", "prog-a");
  ASSERT_TRUE(S->append(K, "{\"doc\": 1}"));
  S.reset();

  // A crash mid-append leaves a partial record: simulate with half a
  // framed record's worth of garbage.
  size_t CleanBytes = readFile(Path).size();
  appendBytes(Path, std::string("\x07\x00\x00\x00garbage-tail", 16));

  S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  StoreCounters C = S->counters();
  EXPECT_EQ(C.RecoveredRecords, 1u);
  EXPECT_EQ(C.TruncatedTailBytes, 16u);
  EXPECT_EQ(*S->lookup(K), "{\"doc\": 1}"); // the clean prefix survives
  // The file really was truncated back to the last valid record...
  EXPECT_EQ(readFile(Path).size(), CleanBytes);
  // ... and appends continue cleanly after recovery.
  std::string K2 = key("B", "prog-b");
  EXPECT_TRUE(S->append(K2, "{\"doc\": 2}"));
  S.reset();
  S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  EXPECT_EQ(S->counters().RecoveredRecords, 2u);
  EXPECT_EQ(S->counters().TruncatedTailBytes, 0u);
  EXPECT_EQ(*S->lookup(K2), "{\"doc\": 2}");
}

TEST(VerdictStore, CorruptedRecordRejectedByChecksum) {
  std::string Path = storePath("tmw_store_corrupt.store");
  std::string Error;
  auto S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  std::string K1 = key("A", "prog-a"), K2 = key("B", "prog-b");
  ASSERT_TRUE(S->append(K1, "{\"doc\": 1}"));
  ASSERT_TRUE(S->append(K2, "{\"doc\": 2}"));
  S.reset();

  // Flip one byte inside the *second* record's value (the last byte of
  // the file): its checksum no longer validates, so recovery keeps the
  // first record and truncates the second as garbage.
  std::string Data = readFile(Path);
  Data.back() = static_cast<char>(Data.back() ^ 0x01);
  writeFile(Path, Data);

  // The read-only fsck view reports the damage without modifying the file.
  StoreScan Scan = VerdictStore::scan(Path, nullptr);
  EXPECT_TRUE(Scan.Error.empty()) << Scan.Error;
  EXPECT_EQ(Scan.ValidRecords, 1u);
  EXPECT_GT(Scan.TailBytes, 0u);
  EXPECT_FALSE(Scan.clean());
  EXPECT_EQ(readFile(Path), Data); // scan never writes

  S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  StoreCounters C = S->counters();
  EXPECT_EQ(C.RecoveredRecords, 1u);
  EXPECT_GT(C.TruncatedTailBytes, 0u);
  EXPECT_TRUE(S->lookup(K1).has_value());
  EXPECT_FALSE(S->lookup(K2).has_value()); // dropped work, re-evaluates
}

TEST(VerdictStore, EngineVersionMismatchMisses) {
  std::string Path = storePath("tmw_store_version.store");
  std::string Error;
  auto S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  // A record stamped by a "previous engine": same query, old version.
  std::string OldKey = key("A", "prog-a", /*Version=*/0);
  std::string NewKey = key("A", "prog-a");
  ASSERT_TRUE(S->append(OldKey, "{\"stale\": true}"));
  S.reset();

  S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  StoreCounters C = S->counters();
  EXPECT_EQ(C.RecoveredRecords, 1u);
  EXPECT_EQ(C.StaleRecords, 1u);
  EXPECT_EQ(C.Records, 0u); // never indexed, can never be served
  EXPECT_FALSE(S->lookup(NewKey).has_value());

  // The current engine re-evaluates and stores under its own stamp; both
  // generations coexist in the log until compaction.
  EXPECT_TRUE(S->append(NewKey, "{\"fresh\": true}"));
  StoreScan Scan = VerdictStore::scan(Path, nullptr);
  EXPECT_EQ(Scan.ValidRecords, 2u);
  EXPECT_EQ(Scan.StaleRecords, 1u);
}

TEST(VerdictStore, CompactDropsStaleDuplicatesAndTail) {
  std::string Path = storePath("tmw_store_compact.store");
  std::string Error;
  auto S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  std::string Keep = key("A", "prog-a");
  ASSERT_TRUE(S->append(Keep, "{\"doc\": 1}"));
  ASSERT_TRUE(S->append(key("B", "prog-b", /*Version=*/0), "{\"old\": 1}"));
  S.reset();

  // Hand-craft what one handle can't produce: a byte-identical duplicate
  // record (two processes racing the same cold key) and a torn tail.
  appendBytes(Path, frameRecord(Keep, "{\"doc\": 1}"));
  appendBytes(Path, "torn!");

  StoreScan Before;
  ASSERT_TRUE(VerdictStore::compact(Path, &Before, &Error)) << Error;
  EXPECT_EQ(Before.ValidRecords, 3u);
  EXPECT_EQ(Before.StaleRecords, 1u);
  EXPECT_EQ(Before.DuplicateRecords, 1u);
  EXPECT_EQ(Before.TailBytes, 5u);

  // The rewritten log is clean and still answers.
  StoreScan After = VerdictStore::scan(Path, nullptr);
  EXPECT_TRUE(After.clean()) << After.Error;
  EXPECT_EQ(After.ValidRecords, 1u);
  EXPECT_EQ(After.StaleRecords, 0u);
  EXPECT_EQ(After.DuplicateRecords, 0u);
  S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;
  EXPECT_EQ(*S->lookup(Keep), "{\"doc\": 1}");
}

TEST(VerdictStore, OpenAndScanDiagnostics) {
  // Unwritable path: one-line error, no store (callers exit 2 on this).
  std::string Error;
  EXPECT_EQ(VerdictStore::open("/nonexistent-dir/tmw.store", &Error),
            nullptr);
  EXPECT_FALSE(Error.empty());

  // A foreign/corrupt header is refused, not mis-parsed as records.
  std::string Foreign = storePath("tmw_store_foreign.store");
  writeFile(Foreign, "definitely not a verdict store, long enough header");
  Error.clear();
  EXPECT_EQ(VerdictStore::open(Foreign, &Error), nullptr);
  EXPECT_NE(Error.find("not a tmw verdict store"), std::string::npos)
      << Error;
  EXPECT_NE(VerdictStore::scan(Foreign, nullptr).Error.find(
                "not a tmw verdict store"),
            std::string::npos);

  // A future format version is refused with both versions named.
  std::string Future = storePath("tmw_store_future.store");
  std::string Header = "TMWSTORE";
  putU32(Header, 99);
  putU32(Header, 0);
  writeFile(Future, Header);
  Error.clear();
  EXPECT_EQ(VerdictStore::open(Future, &Error), nullptr);
  EXPECT_NE(Error.find("format version 99"), std::string::npos) << Error;

  // An empty-but-created store reopens cleanly (header written at create).
  std::string Fresh = storePath("tmw_store_fresh.store");
  ASSERT_TRUE(VerdictStore::open(Fresh, &Error)) << Error;
  EXPECT_TRUE(VerdictStore::scan(Fresh, nullptr).clean());
}

/// The acceptance workload: every corpus program against the model ×
/// ablation spec matrix, outcomes and explanations on.
std::vector<CheckRequest> matrixBatch() {
  const std::vector<std::string> Specs = {
      "sc",      "tsc", "x86",           "power",
      "armv8",   "cpp", "power/-TxnOrder", "x86/+baseline",
      "power8"};
  std::vector<CheckRequest> Requests;
  for (const CorpusEntry &E : sharedCorpus()) {
    CheckRequest R;
    R.Corpus = E.Name;
    R.ModelSpecs = Specs;
    R.Explain = true;
    R.WantOutcomes = true;
    Requests.push_back(std::move(R));
  }
  return Requests;
}

TEST(VerdictStore, ColdAndWarmRunsMatchStorelessBytes) {
  // The verdict-neutrality contract: a store-less run, a cold run that
  // fills the store, and a warm run served from it emit byte-identical
  // canonical JSON — across jobs counts.
  std::vector<CheckRequest> Requests = matrixBatch();
  std::string Reference =
      responsesToJson(QueryEngine({.Jobs = 1}).runAll(Requests));

  for (unsigned Jobs : {1u, 4u}) {
    std::string Path = storePath(
        ("tmw_store_identity_j" + std::to_string(Jobs) + ".store").c_str());
    std::string Error;

    auto Cold = VerdictStore::open(Path, &Error);
    ASSERT_TRUE(Cold) << Error;
    BatchOptions ColdOpts;
    ColdOpts.Jobs = Jobs;
    ColdOpts.Store = Cold.get();
    std::vector<CheckResponse> ColdResponses =
        QueryEngine(ColdOpts).runAll(Requests);
    EXPECT_EQ(responsesToJson(ColdResponses), Reference) << "jobs " << Jobs;
    StoreCounters C = Cold->counters();
    EXPECT_EQ(C.Hits, 0u);
    EXPECT_EQ(C.Misses, Requests.size());
    EXPECT_EQ(C.Appends, Requests.size());
    EXPECT_EQ(C.AppendErrors, 0u);
    for (const CheckResponse &R : ColdResponses) {
      EXPECT_EQ(R.Store.Lookups, 1u);
      EXPECT_EQ(R.Store.Hits, 0u);
      EXPECT_EQ(R.Store.Appends, 1u);
    }
    Cold.reset();

    // Warm process: a fresh open of the same file answers every request
    // from the log, byte-identically.
    auto Warm = VerdictStore::open(Path, &Error);
    ASSERT_TRUE(Warm) << Error;
    EXPECT_EQ(Warm->counters().RecoveredRecords, Requests.size());
    BatchOptions WarmOpts;
    WarmOpts.Jobs = Jobs;
    WarmOpts.Store = Warm.get();
    std::vector<CheckResponse> WarmResponses =
        QueryEngine(WarmOpts).runAll(Requests);
    EXPECT_EQ(responsesToJson(WarmResponses), Reference) << "jobs " << Jobs;
    C = Warm->counters();
    EXPECT_EQ(C.Hits, Requests.size());
    EXPECT_EQ(C.Misses, 0u);
    EXPECT_EQ(C.Appends, 0u);
    for (const CheckResponse &R : WarmResponses) {
      EXPECT_EQ(R.Store.Hits, 1u);
      EXPECT_EQ(R.Store.Appends, 0u);
    }
  }
}

TEST(VerdictStore, ErrorResponsesAreNeverStored) {
  // A request that fails to resolve produces an error response; storing
  // it would freeze a transient failure. It must not land.
  std::string Path = storePath("tmw_store_errors.store");
  std::string Error;
  auto S = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(S) << Error;

  std::vector<CheckRequest> Requests;
  CheckRequest Bad;
  Bad.Name = "bad-spec";
  Bad.Corpus = "SB";
  Bad.ModelSpecs = {"not-a-model"};
  Requests.push_back(Bad);
  CheckRequest Fine;
  Fine.Corpus = "SB";
  Fine.WantOutcomes = true;
  Requests.push_back(Fine);

  BatchOptions Opts;
  Opts.Store = S.get();
  std::string WithStore =
      responsesToJson(QueryEngine(Opts).runAll(Requests));
  EXPECT_EQ(WithStore,
            responsesToJson(QueryEngine(BatchOptions{}).runAll(Requests)));
  EXPECT_EQ(S->counters().Appends, 1u); // only the good request landed
  EXPECT_EQ(S->counters().Records, 1u);
}

TEST(VerdictStore, ConcurrentServerBatchesShareOneStore) {
  // The multiplexer's shape: rival batches on one resident pool, one
  // shared store. Every served document must match the store-less
  // reference; afterwards the store holds exactly the distinct keys.
  std::vector<CheckRequest> Requests;
  CheckRequest A;
  A.Source = "name SB-inline\nthread 0\n  store x 1\n  load y\nthread 1\n"
             "  store y 1\n  load x\npost reg 0 r1 0\npost reg 1 r1 0\n";
  A.ModelSpecs = {"x86", "power/-TxnOrder", "power8"};
  A.Explain = true;
  A.WantOutcomes = true;
  Requests.push_back(A);
  CheckRequest B;
  B.Corpus = "MP";
  B.WantOutcomes = true;
  Requests.push_back(B);
  std::string Line = requestsToJsonLine(Requests);
  std::string Reference =
      responsesToJson(QueryEngine({.Jobs = 1}).runAll(Requests));

  std::string Path = storePath("tmw_store_server.store");
  std::string Error;
  auto Store = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(Store) << Error;

  constexpr unsigned Clients = 4, BatchesPerClient = 5;
  {
    ServerOptions Opts;
    Opts.Jobs = 4;
    Opts.Store = Store.get();
    QueryServer S(Opts);
    std::vector<std::thread> Threads;
    std::vector<unsigned> Bad(Clients, 0);
    for (unsigned T = 0; T < Clients; ++T)
      Threads.emplace_back([&, T] {
        for (unsigned I = 0; I < BatchesPerClient; ++I)
          if (S.serveLine(Line) != Reference)
            ++Bad[T];
      });
    for (std::thread &T : Threads)
      T.join();
    for (unsigned T = 0; T < Clients; ++T)
      EXPECT_EQ(Bad[T], 0u) << "client " << T << " diverged";

    ServerStats St = S.stats();
    EXPECT_TRUE(St.HasStore);
    EXPECT_EQ(St.Store.Hits + St.Store.Misses,
              uint64_t{Clients} * BatchesPerClient * Requests.size());
    EXPECT_GT(St.Store.Hits, 0u);
    EXPECT_EQ(St.Store.Appends, Requests.size()); // one record per key
    EXPECT_EQ(St.Store.Records, Requests.size());
  }

  // A restarted server inherits every answer.
  Store.reset();
  Store = VerdictStore::open(Path, &Error);
  ASSERT_TRUE(Store) << Error;
  EXPECT_EQ(Store->counters().RecoveredRecords, Requests.size());
  ServerOptions Opts;
  Opts.Jobs = 2;
  Opts.Store = Store.get();
  QueryServer S2(Opts);
  EXPECT_EQ(S2.serveLine(Line), Reference);
  ServerStats St = S2.stats();
  EXPECT_EQ(St.Store.Hits, Requests.size());
  EXPECT_EQ(St.Store.Misses, 0u);
}

} // namespace
