//===- Compilation.cpp - C++ transactions to hardware (§8.2) -------------------==//

#include "metatheory/Compilation.h"

#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

#include <chrono>
#include <vector>

using namespace tmw;

namespace {

/// The expansion of one C++ event on the target: optional leading fence,
/// the access itself (with target annotations), optional trailing fence,
/// and whether a ctrl;isync tail is required (Power acquire loads).
struct Expansion {
  FenceKind Before = FenceKind::None;
  Event Main;
  FenceKind After = FenceKind::None;
  bool CtrlIsyncTail = false;
};

Expansion expandEvent(const Event &Ev, Arch Target) {
  Expansion Ex;
  Ex.Main = Ev;
  Ex.Main.Order = MemOrder::NonAtomic;

  switch (Target) {
  case Arch::X86:
    if (Ev.isFence())
      Ex.Main.Fence = Ev.isSeqCst() ? FenceKind::MFence : FenceKind::None;
    if (Ev.isWrite() && Ev.isSeqCst())
      Ex.After = FenceKind::MFence;
    break;
  case Arch::Power:
    if (Ev.isFence())
      Ex.Main.Fence = Ev.isSeqCst() ? FenceKind::Sync : FenceKind::LwSync;
    if (Ev.isRead() && Ev.isSeqCst())
      Ex.Before = FenceKind::Sync;
    if (Ev.isRead() && Ev.isAcquire())
      Ex.CtrlIsyncTail = true;
    if (Ev.isWrite() && Ev.isSeqCst())
      Ex.Before = FenceKind::Sync;
    else if (Ev.isWrite() && Ev.isRelease())
      Ex.Before = FenceKind::LwSync;
    break;
  case Arch::Armv8:
    if (Ev.isFence())
      Ex.Main.Fence = FenceKind::Dmb;
    if (Ev.isRead() && Ev.isAcquire())
      Ex.Main.Order = MemOrder::Acquire;
    if (Ev.isWrite() && Ev.isRelease())
      Ex.Main.Order = MemOrder::Release;
    break;
  default:
    assert(false && "unsupported compilation target");
  }
  return Ex;
}

} // namespace

Execution tmw::compileExecution(const Execution &X, Arch Target) {
  unsigned N = X.size();
  // Plan the expansions and count target events.
  std::vector<Expansion> Plan(N);
  unsigned TargetCount = 0;
  for (unsigned E = 0; E < N; ++E) {
    Plan[E] = expandEvent(X.event(E), Target);
    // A C++ fence that maps to nothing still occupies a slot as a no-op?
    // No: drop it entirely.
    bool DropsOut =
        X.event(E).isFence() && Plan[E].Main.Fence == FenceKind::None;
    if (!DropsOut)
      ++TargetCount;
    if (Plan[E].Before != FenceKind::None)
      ++TargetCount;
    if (Plan[E].After != FenceKind::None)
      ++TargetCount;
    if (Plan[E].CtrlIsyncTail)
      ++TargetCount;
  }
  assert(TargetCount <= kMaxEvents && "compiled execution too large");

  Execution Y(TargetCount);
  std::vector<int> MainOf(N, -1);
  std::vector<int> IsyncOf(N, -1);

  // Emit thread by thread in po order so po = id order per thread.
  unsigned Next = 0;
  unsigned NumThreads = X.numThreads();
  for (unsigned T = 0; T < NumThreads; ++T) {
    std::vector<EventId> Es;
    for (EventId E : X.ofThread(T))
      Es.push_back(E);
    std::sort(Es.begin(), Es.end(), [&X](EventId A, EventId B) {
      return X.Po.contains(A, B);
    });
    for (EventId E : Es) {
      const Expansion &Ex = Plan[E];
      int Txn = X.Txn[E];
      auto Emit = [&](const Event &Ev) {
        Y.event(Next) = Ev;
        Y.event(Next).Thread = T;
        // Inserted fences live inside the same transaction as their
        // anchor so transactions stay contiguous.
        Y.Txn[Next] = Txn;
        return static_cast<int>(Next++);
      };
      if (Ex.Before != FenceKind::None) {
        Event F;
        F.Kind = EventKind::Fence;
        F.Fence = Ex.Before;
        Emit(F);
      }
      bool DropsOut =
          X.event(E).isFence() && Ex.Main.Fence == FenceKind::None;
      if (!DropsOut)
        MainOf[E] = Emit(Ex.Main);
      if (Ex.After != FenceKind::None) {
        Event F;
        F.Kind = EventKind::Fence;
        F.Fence = Ex.After;
        Emit(F);
      }
      if (Ex.CtrlIsyncTail) {
        Event F;
        F.Kind = EventKind::Fence;
        F.Fence = FenceKind::ISync;
        IsyncOf[E] = Emit(F);
      }
    }
  }

  // po: id order within each thread.
  for (unsigned A = 0; A < TargetCount; ++A)
    for (unsigned B = A + 1; B < TargetCount; ++B)
      if (Y.event(A).Thread == Y.event(B).Thread)
        Y.Po.insert(A, B);

  // Transactions on hardware have no atomic/relaxed distinction.
  Y.AtomicTxns = 0;

  // Copy the communication and dependency structure over main events.
  auto CopyRel = [&](const Relation &Src, Relation &Dst) {
    Src.forEachPair([&](EventId A, EventId B) {
      if (MainOf[A] >= 0 && MainOf[B] >= 0)
        Dst.insert(static_cast<EventId>(MainOf[A]),
                   static_cast<EventId>(MainOf[B]));
    });
  };
  CopyRel(X.Rf, Y.Rf);
  CopyRel(X.Co, Y.Co);
  CopyRel(X.Rmw, Y.Rmw);
  CopyRel(X.Addr, Y.Addr);
  CopyRel(X.Data, Y.Data);
  CopyRel(X.Ctrl, Y.Ctrl);

  // Power acquire loads: ctrl edges from the load to everything po-after
  // it (the bc;isync idiom), forward-closed by construction.
  for (unsigned E = 0; E < N; ++E) {
    if (IsyncOf[E] < 0 || MainOf[E] < 0)
      continue;
    EventId Load = static_cast<EventId>(MainOf[E]);
    for (unsigned B = 0; B < TargetCount; ++B)
      if (Y.Po.contains(Load, B))
        Y.Ctrl.insert(Load, B);
  }

  assert(Y.checkWellFormed() == nullptr && "compilation broke well-formedness");
  return Y;
}

CompilationResult tmw::checkCompilation(Arch Target, unsigned NumEvents,
                                        double BudgetSeconds) {
  CompilationResult Res;
  auto Start = std::chrono::steady_clock::now();
  auto Elapsed = [&Start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  CppModel Cpp;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  const MemoryModel *TargetModel = nullptr;
  switch (Target) {
  case Arch::X86:
    TargetModel = &X86;
    break;
  case Arch::Power:
    TargetModel = &Power;
    break;
  case Arch::Armv8:
    TargetModel = &Armv8;
    break;
  default:
    assert(false && "unsupported compilation target");
    return Res;
  }

  Vocabulary V = Vocabulary::forArch(Arch::Cpp);
  ExecutionEnumerator Enum(V, NumEvents);

  auto TrySource = [&](Execution &X) {
    ++Res.Checked;
    // One analysis for both C++ predicates: consistency and race-freedom
    // share happens-before's building blocks and sloc.
    ExecutionAnalysis AX(X);
    if (Cpp.consistent(AX))
      return true;
    // Racy programs are undefined; the compiler owes them nothing.
    if (!Cpp.raceFree(AX))
      return true;
    Execution Y = compileExecution(X, Target);
    if (TargetModel->consistent(Y)) {
      Res.CounterexampleFound = true;
      Res.Source = X;
      Res.Compiled = Y;
      return false;
    }
    return true;
  };

  bool Finished = Enum.forEachBase([&](Execution &Base) {
    if (Elapsed() > BudgetSeconds)
      return false;
    if (!TrySource(Base))
      return false;
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      if (Elapsed() > BudgetSeconds)
        return false;
      return TrySource(X);
    });
  });

  Res.Complete = Finished || Res.CounterexampleFound;
  Res.Seconds = Elapsed();
  return Res;
}
