//===- compile_mapping_test.cpp - Per-rule compilation-mapping checks ----------==//
///
/// Each row of the §8.2 mapping table exercised in isolation: the right
/// fences/annotations appear in the right places, transactions absorb
/// their inserted fences, and end-to-end verdicts agree on directed
/// shapes.
///
//===----------------------------------------------------------------------===//

#include "metatheory/Compilation.h"

#include "execution/Builder.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

/// One C++ access of the given kind/order plus a second thread to keep
/// the location shared.
Execution single(EventKind K, MemOrder MO) {
  ExecutionBuilder B;
  if (K == EventKind::Read) {
    B.read(0, 0, MO);
    B.write(1, 0, MemOrder::Relaxed, 1);
  } else {
    B.write(0, 0, MO, 1);
    B.read(1, 0, MemOrder::Relaxed);
  }
  return B.build();
}

unsigned countFences(const Execution &X, FenceKind K) {
  return X.fences(K).size();
}

TEST(CompileRuleTest, X86RelaxedAccessesAreBare) {
  Execution Y = compileExecution(single(EventKind::Read, MemOrder::Relaxed),
                                 Arch::X86);
  EXPECT_TRUE(Y.fences().empty());
  Y = compileExecution(single(EventKind::Write, MemOrder::Release),
                       Arch::X86);
  EXPECT_TRUE(Y.fences().empty()); // release is free on TSO
}

TEST(CompileRuleTest, X86ScStoreGetsTrailingMfence) {
  Execution Y = compileExecution(single(EventKind::Write, MemOrder::SeqCst),
                                 Arch::X86);
  ASSERT_EQ(countFences(Y, FenceKind::MFence), 1u);
  EventId F = *Y.fences(FenceKind::MFence).begin();
  // The fence follows the store in program order.
  EXPECT_FALSE(
      Y.Po.restrictRange(EventSet::singleton(F)).domain().empty());
}

TEST(CompileRuleTest, X86ScLoadIsBare) {
  Execution Y = compileExecution(single(EventKind::Read, MemOrder::SeqCst),
                                 Arch::X86);
  EXPECT_TRUE(Y.fences().empty());
}

TEST(CompileRuleTest, PowerAcquireLoadGetsCtrlIsync) {
  Execution Y = compileExecution(
      single(EventKind::Read, MemOrder::Acquire), Arch::Power);
  EXPECT_EQ(countFences(Y, FenceKind::ISync), 1u);
  EXPECT_FALSE(Y.Ctrl.isEmpty());
  EXPECT_EQ(countFences(Y, FenceKind::Sync), 0u);
}

TEST(CompileRuleTest, PowerScLoadAddsLeadingSync) {
  Execution Y = compileExecution(single(EventKind::Read, MemOrder::SeqCst),
                                 Arch::Power);
  EXPECT_EQ(countFences(Y, FenceKind::Sync), 1u);
  EXPECT_EQ(countFences(Y, FenceKind::ISync), 1u);
}

TEST(CompileRuleTest, PowerReleaseStoreGetsLwsync) {
  Execution Y = compileExecution(
      single(EventKind::Write, MemOrder::Release), Arch::Power);
  EXPECT_EQ(countFences(Y, FenceKind::LwSync), 1u);
  Y = compileExecution(single(EventKind::Write, MemOrder::SeqCst),
                       Arch::Power);
  EXPECT_EQ(countFences(Y, FenceKind::Sync), 1u);
  EXPECT_EQ(countFences(Y, FenceKind::LwSync), 0u);
}

TEST(CompileRuleTest, Armv8UsesAnnotationsNotFences) {
  Execution Y = compileExecution(
      single(EventKind::Read, MemOrder::Acquire), Arch::Armv8);
  EXPECT_TRUE(Y.fences().empty());
  EXPECT_EQ((Y.acquires() & Y.reads()).size(), 1u);

  Y = compileExecution(single(EventKind::Write, MemOrder::SeqCst),
                       Arch::Armv8);
  EXPECT_TRUE(Y.fences().empty());
  EXPECT_EQ((Y.releases() & Y.writes()).size(), 1u);
}

TEST(CompileRuleTest, CppFencesMapPerTarget) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::Relaxed, 1);
  B.fence(0, FenceKind::CppFence, MemOrder::SeqCst);
  B.read(0, 1, MemOrder::Relaxed);
  B.write(1, 1, MemOrder::Relaxed, 1);
  B.fence(1, FenceKind::CppFence, MemOrder::Acquire);
  B.read(1, 0, MemOrder::Relaxed);
  Execution X = B.build();

  Execution Yx = compileExecution(X, Arch::X86);
  EXPECT_EQ(countFences(Yx, FenceKind::MFence), 1u); // acq fence drops

  Execution Yp = compileExecution(X, Arch::Power);
  EXPECT_EQ(countFences(Yp, FenceKind::Sync), 1u);
  EXPECT_EQ(countFences(Yp, FenceKind::LwSync), 1u);

  Execution Ya = compileExecution(X, Arch::Armv8);
  EXPECT_EQ(countFences(Ya, FenceKind::Dmb), 2u);
}

TEST(CompileRuleTest, EventCountsAccount) {
  // 2 relaxed accesses + 1 sc store + 1 acq load -> Power: 4 accesses +
  // 1 sync (sc store) + 1 isync (acq load) = 6.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::Relaxed, 1);
  B.write(0, 1, MemOrder::SeqCst, 1);
  B.read(1, 1, MemOrder::Acquire);
  B.read(1, 0, MemOrder::Relaxed);
  Execution Y = compileExecution(B.build(), Arch::Power);
  EXPECT_EQ(Y.size(), 6u);
}

TEST(CompileRuleTest, MappedMpIsForbiddenOnEveryTarget) {
  // MP with rel/acq compiles to shapes that forbid the stale read
  // everywhere — the soundness direction on the classic idiom.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::Relaxed, 1);
  EventId Wy = B.write(0, 1, MemOrder::Release, 1);
  EventId Ry = B.read(1, 1, MemOrder::Acquire);
  B.read(1, 0, MemOrder::Relaxed);
  B.rf(Wy, Ry);
  Execution X = B.build();
  CppModel Cpp;
  ASSERT_FALSE(Cpp.consistent(X));

  EXPECT_FALSE(X86Model().consistent(compileExecution(X, Arch::X86)));
  EXPECT_FALSE(PowerModel().consistent(compileExecution(X, Arch::Power)));
  EXPECT_FALSE(Armv8Model().consistent(compileExecution(X, Arch::Armv8)));
}

TEST(CompileRuleTest, AllowedSourceStaysAllowedOnWeakTargets) {
  // Relaxed MP is C++-allowed; its compilations stay allowed on
  // Power/ARMv8 (completeness direction — the mapping inserts no
  // spurious fences).
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::Relaxed, 1);
  EventId Wy = B.write(0, 1, MemOrder::Relaxed, 1);
  EventId Ry = B.read(1, 1, MemOrder::Relaxed);
  B.read(1, 0, MemOrder::Relaxed);
  B.rf(Wy, Ry);
  Execution X = B.build();
  CppModel Cpp;
  ASSERT_TRUE(Cpp.consistent(X));

  EXPECT_TRUE(PowerModel().consistent(compileExecution(X, Arch::Power)));
  EXPECT_TRUE(Armv8Model().consistent(compileExecution(X, Arch::Armv8)));
}

} // namespace
