//===- Enumerator.h - Exhaustive execution enumeration ----------*- C++ -*-==//
///
/// \file
/// Exhaustive enumeration of executions up to a bounded number of events —
/// the explicit-search substitute for the paper's SAT-backed Memalloy
/// queries (§4.2). Executions are generated in a canonical skeleton form
/// (threads ordered by non-increasing size, locations numbered by first
/// use, program order = event-id order within a thread) and the synthesis
/// layer deduplicates final results up to thread/location symmetry.
///
/// Structural filters sound for *minimal* inconsistent executions are
/// applied during generation: every location has at least two accesses,
/// one of which is a write (an access without a communication edge cannot
/// lie on a violation cycle), and fences are interior to their thread.
///
/// The search space can be sharded for parallel enumeration: the first
/// branching decision of the canonical-skeleton DFS (the size of the
/// largest thread) is dealt round-robin across shards, so the shards
/// partition the space exactly and each can run on its own thread with an
/// independent `Execution` buffer and `ExecutionAnalysis` arena.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_ENUMERATE_ENUMERATOR_H
#define TMW_ENUMERATE_ENUMERATOR_H

#include "execution/Execution.h"
#include "models/MemoryModel.h"

#include <functional>
#include <vector>

namespace tmw {

/// The event vocabulary available to the enumerator for one architecture:
/// which fence flavours, consistency modes, dependencies, RMW pairs, and
/// transaction forms may appear.
struct Vocabulary {
  Arch A = Arch::X86;
  std::vector<FenceKind> Fences;
  std::vector<MemOrder> ReadOrders = {MemOrder::NonAtomic};
  std::vector<MemOrder> WriteOrders = {MemOrder::NonAtomic};
  /// Orders available on CppFence events (empty unless C++).
  std::vector<MemOrder> FenceOrders;
  /// Enumerate addr/data/ctrl dependencies.
  bool Deps = false;
  /// Enumerate adjacent RMW pairs.
  bool Rmw = true;
  /// Distinguish C++ atomic{} from synchronized{} transactions.
  bool AtomicTxns = false;
  unsigned MaxLocations = 3;
  unsigned MaxThreads = 4;

  /// The vocabulary used for each target in the paper's experiments.
  static Vocabulary forArch(Arch A);
};

/// Exhaustive generator of base (transaction-free) executions and of
/// transaction placements over a base.
class ExecutionEnumerator {
public:
  ExecutionEnumerator(const Vocabulary &V, unsigned NumEvents)
      : Vocab(V), Num(NumEvents) {}

  /// Invoke \p F on every well-formed base execution (the execution is
  /// reused between calls; copy it to keep it). \p F returns false to abort
  /// the enumeration (e.g. on a time budget); the result is false when
  /// aborted.
  bool forEachBase(const std::function<bool(Execution &)> &F) const;

  /// Shard \p Shard of \p NumShards of `forEachBase`: visits exactly the
  /// bases whose first skeleton decision (the largest-thread size) falls to
  /// this shard, so the union over all shards is the full space and the
  /// shards are pairwise disjoint. Shards share nothing and may run on
  /// concurrent threads.
  bool forEachBaseSharded(unsigned Shard, unsigned NumShards,
                          const std::function<bool(Execution &)> &F) const;

  /// Invoke \p F on every placement of at least one successful transaction
  /// over \p X (the Txn fields are mutated in place and restored). \p F
  /// returns false to abort.
  bool forEachTxnPlacement(Execution &X,
                           const std::function<bool(Execution &)> &F) const;

  const Vocabulary &vocabulary() const { return Vocab; }
  unsigned numEvents() const { return Num; }

private:
  Vocabulary Vocab;
  unsigned Num;
};

} // namespace tmw

#endif // TMW_ENUMERATE_ENUMERATOR_H
