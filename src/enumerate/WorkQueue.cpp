//===- WorkQueue.cpp - Work-stealing pool over enumeration prefixes -----------==//

#include "enumerate/WorkQueue.h"

#include <cassert>

using namespace tmw;

WorkQueue::WorkQueue(unsigned NumWorkers) {
  assert(NumWorkers > 0 && "pool needs at least one worker");
  Deques.resize(NumWorkers);
}

void WorkQueue::seed(BasePrefix P) {
  // Front-insert so each deque's *back* is its earliest seed: the owner's
  // LIFO pop then walks its share in sequential-DFS order (thread-rich
  // skeletons first — the front-loaded discovery order of Fig. 7).
  Deques[SeedCursor].push_front(std::move(P));
  SeedCursor = (SeedCursor + 1) % Deques.size();
}

bool WorkQueue::pop(unsigned Worker, BasePrefix &Out, bool &WasSteal) {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (Cancelled)
      return false;
    // Own deque: newest first — descend depth-first, keeping the deque
    // shallow and leaving the big old prefixes for thieves.
    std::deque<BasePrefix> &Own = Deques[Worker];
    if (!Own.empty()) {
      Out = std::move(Own.back());
      Own.pop_back();
      ++InFlight;
      WasSteal = false;
      return true;
    }
    // Steal: oldest prefix of the fullest victim (shallowest prefixes
    // cover the most work, so one steal buys the longest independence).
    unsigned Victim = Deques.size();
    size_t Best = 0;
    for (unsigned D = 0; D < Deques.size(); ++D)
      if (Deques[D].size() > Best) {
        Best = Deques[D].size();
        Victim = D;
      }
    if (Victim < Deques.size()) {
      Out = std::move(Deques[Victim].front());
      Deques[Victim].pop_front();
      ++InFlight;
      WasSteal = true;
      return true;
    }
    // Globally empty: done only once no in-flight task can still split.
    if (InFlight == 0) {
      Cv.notify_all();
      return false;
    }
    Cv.wait(Lock);
  }
}

void WorkQueue::push(unsigned Worker, BasePrefix P) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Deques[Worker].push_back(std::move(P));
  }
  Cv.notify_one();
}

void WorkQueue::finish(unsigned Worker) {
  (void)Worker;
  std::lock_guard<std::mutex> Lock(Mu);
  assert(InFlight > 0 && "finish without a matching pop");
  if (--InFlight == 0)
    Cv.notify_all(); // possible termination: wake everyone to re-check
}

void WorkQueue::cancel() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Cancelled = true;
  }
  Cv.notify_all();
}

bool WorkQueue::cancelled() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Cancelled;
}
