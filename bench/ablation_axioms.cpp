//===- ablation_axioms.cpp - Per-axiom ablation study ---------------------------==//
///
/// The design-choice ablations called out in DESIGN.md: for each TM axiom
/// of each architecture, how many of the synthesised Forbid tests become
/// allowed when the axiom is dropped — i.e. how much of the conformance
/// suite each axiom carries. Includes the §9 comparison (Dongol-style
/// atomicity-only models) and the §6.2 buggy-RTL configuration.
///
/// Ablation is the canonical many-models-one-execution workload, so this
/// bench also measures the consistency-check hot path both ways — derived
/// relations memoized in a shared `ExecutionAnalysis` versus re-derived
/// per access (the historical uncached behaviour) — and emits the
/// throughputs to `BENCH_ablation_axioms.json`.
///
/// Knobs: `--jobs N` shards the Forbid synthesis across N threads;
/// `TMW_BENCH_BUDGET_SECONDS`, `TMW_BENCH_MAX_EVENTS` as everywhere.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "models/Armv8Model.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"
#include "synth/Conformance.h"

#include <chrono>
#include <functional>
#include <vector>

using namespace tmw;

namespace {

template <typename ModelT, typename ConfigT>
void ablate(const char *ArchName, Arch A, unsigned MaxE, double Budget,
            unsigned Jobs,
            const std::vector<std::pair<const char *,
                                        std::function<ConfigT()>>> &Drops) {
  ModelT Tm;
  ModelT Baseline{ConfigT::baseline()};
  Vocabulary V = Vocabulary::forArch(A);

  std::vector<Execution> Forbid;
  for (unsigned N = 2; N <= MaxE; ++N) {
    ForbidSuite S = synthesizeForbid(Tm, Baseline, V, N, Budget, Jobs);
    Forbid.insert(Forbid.end(), S.Tests.begin(), S.Tests.end());
  }
  std::printf("\n%s: %zu Forbid tests (|E| <= %u, %u job%s)\n", ArchName,
              Forbid.size(), MaxE, Jobs, Jobs == 1 ? "" : "s");
  std::printf("  %-22s %16s\n", "dropped axiom", "tests now allowed");
  for (const auto &[Name, MakeConfig] : Drops) {
    ModelT Ablated{MakeConfig()};
    unsigned NowAllowed = 0;
    for (const Execution &X : Forbid)
      NowAllowed += Ablated.consistent(X);
    std::printf("  %-22s %10u / %zu\n", Name, NowAllowed, Forbid.size());
  }
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Measure checks/sec over \p Corpus x \p Models, with one shared memoized
/// analysis per execution (Cached) or per-access recomputation (the
/// uncached seed behaviour).
double checksPerSec(const std::vector<Execution> &Corpus,
                    const std::vector<const MemoryModel *> &Models,
                    bool Cached, double MinSeconds) {
  uint64_t Checks = 0;
  volatile unsigned Guard = 0;
  auto Start = std::chrono::steady_clock::now();
  do {
    for (const Execution &X : Corpus) {
      if (Cached) {
        ExecutionAnalysis A(X);
        for (const MemoryModel *M : Models) {
          Guard += M->check(A).Consistent;
          ++Checks;
        }
      } else {
        for (const MemoryModel *M : Models) {
          ExecutionAnalysis A(X, AnalysisCaching::Recompute);
          Guard += M->check(A).Consistent;
          ++Checks;
        }
      }
    }
  } while (secondsSince(Start) < MinSeconds);
  return static_cast<double>(Checks) / secondsSince(Start);
}

} // namespace

int main(int argc, char **argv) {
  bench::header("Ablations: what each TM axiom carries",
                "DESIGN.md ablation index; §5-§6, §9, §6.2");
  double Budget = bench::budgetSeconds(60.0);
  unsigned MaxE = bench::maxEvents(4);
  unsigned Jobs = bench::jobs(argc, argv);

  ablate<X86Model, X86Model::Config>(
      "x86", Arch::X86, MaxE, Budget, Jobs,
      {{"tfence", [] {
          X86Model::Config C;
          C.Tfence = false;
          return C;
        }},
       {"StrongIsol", [] {
          X86Model::Config C;
          C.StrongIsol = false;
          return C;
        }},
       {"TxnOrder", [] {
          X86Model::Config C;
          C.TxnOrder = false;
          return C;
        }}});

  ablate<PowerModel, PowerModel::Config>(
      "Power", Arch::Power, MaxE > 3 ? 3 : MaxE, Budget, Jobs,
      {{"tfence", [] {
          PowerModel::Config C;
          C.Tfence = false;
          return C;
        }},
       {"StrongIsol", [] {
          PowerModel::Config C;
          C.StrongIsol = false;
          return C;
        }},
       {"TxnOrder", [] {
          PowerModel::Config C;
          C.TxnOrder = false;
          return C;
        }},
       {"tprop1", [] {
          PowerModel::Config C;
          C.TProp1 = false;
          return C;
        }},
       {"tprop2", [] {
          PowerModel::Config C;
          C.TProp2 = false;
          return C;
        }},
       {"thb", [] {
          PowerModel::Config C;
          C.Thb = false;
          return C;
        }},
       {"TxnCancelsRMW", [] {
          PowerModel::Config C;
          C.TxnCancelsRmw = false;
          return C;
        }},
       {"atomicity-only (Dongol)", [] {
          PowerModel::Config C;
          C.Thb = false;
          C.TxnOrder = false;
          C.TProp1 = false;
          C.TProp2 = false;
          return C;
        }}});

  ablate<Armv8Model, Armv8Model::Config>(
      "ARMv8", Arch::Armv8, MaxE > 3 ? 3 : MaxE, Budget, Jobs,
      {{"tfence", [] {
          Armv8Model::Config C;
          C.Tfence = false;
          return C;
        }},
       {"StrongIsol", [] {
          Armv8Model::Config C;
          C.StrongIsol = false;
          return C;
        }},
       {"TxnOrder (buggy RTL)", [] {
          Armv8Model::Config C;
          C.TxnOrder = false;
          return C;
        }},
       {"TxnCancelsRMW", [] {
          Armv8Model::Config C;
          C.TxnCancelsRmw = false;
          return C;
        }}});

  std::printf("\nReading: each row drops one axiom from the TM model and "
              "re-checks the Forbid\nsuite; 'tests now allowed' > 0 means "
              "the axiom is load-bearing (§6.2's RTL bug\nis the TxnOrder "
              "row on ARMv8).\n");

  //===------------------------------------------------------------------===
  // Hot-path throughput: memoized ExecutionAnalysis vs uncached per-access
  // recomputation over the ablation workload (every model configuration
  // evaluated on every corpus execution).
  //===------------------------------------------------------------------===
  std::printf("\nConsistency-check throughput (x86 vocabulary, all "
              "ablation configs):\n");

  // Corpus: transaction placements over enumerated x86 bases.
  std::vector<Execution> Corpus;
  {
    Vocabulary V = Vocabulary::forArch(Arch::X86);
    ExecutionEnumerator Enum(V, std::min(MaxE, 4u));
    constexpr unsigned kMaxCorpus = 512;
    Enum.forEachBase([&](Execution &Base) {
      return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
        Corpus.push_back(X);
        return Corpus.size() < kMaxCorpus;
      }) && Corpus.size() < kMaxCorpus;
    });
  }

  X86Model Tm;
  X86Model NoTfence{[] {
    X86Model::Config C;
    C.Tfence = false;
    return C;
  }()};
  X86Model NoIsol{[] {
    X86Model::Config C;
    C.StrongIsol = false;
    return C;
  }()};
  X86Model NoOrder{[] {
    X86Model::Config C;
    C.TxnOrder = false;
    return C;
  }()};
  X86Model Base{X86Model::Config::baseline()};
  std::vector<const MemoryModel *> Models = {&Tm, &NoTfence, &NoIsol,
                                             &NoOrder, &Base};

  double Uncached = checksPerSec(Corpus, Models, /*Cached=*/false, 1.0);
  double Cached = checksPerSec(Corpus, Models, /*Cached=*/true, 1.0);
  double Speedup = Uncached > 0 ? Cached / Uncached : 0.0;
  std::printf("  uncached (per-access recompute): %12.0f checks/sec\n",
              Uncached);
  std::printf("  cached (shared ExecutionAnalysis): %10.0f checks/sec\n",
              Cached);
  std::printf("  speedup: %.2fx\n", Speedup);

  char Json[512];
  std::snprintf(Json, sizeof(Json),
                "{\"bench\": \"ablation_axioms\", \"jobs\": %u, "
                "\"corpus_executions\": %zu, \"model_configs\": %zu, "
                "\"uncached_checks_per_sec\": %.0f, "
                "\"cached_checks_per_sec\": %.0f, \"speedup\": %.3f}",
                Jobs, Corpus.size(), Models.size(), Uncached, Cached,
                Speedup);
  bench::writeBenchJson("ablation_axioms", Json);
  return 0;
}
