//===- fig7_synthesis_distribution.cpp - Fig. 7 --------------------------------==//
///
/// Regenerates Fig. 7: the distribution of discovery times across the
/// largest-bound x86 Forbid synthesis. The paper's observation — "many
/// tests are found quickly: 98% within 6% of the total synthesis time" —
/// is a property of the search order, and holds for the explicit search
/// too: it visits small-skeleton candidates first.
///
/// Prints a cumulative textual plot: % of tests found vs % of synthesis
/// time, then sweeps `--jobs` over the work-stealing synthesis and emits
/// `BENCH_fig7_synthesis_distribution.json` (distribution stats plus the
/// per-jobs wall times).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "models/X86Model.h"
#include "synth/Conformance.h"

#include <algorithm>
#include <string>

using namespace tmw;

int main(int argc, char **argv) {
  bench::header(
      "Fig. 7: distribution of synthesis times for the x86 Forbid tests",
      "Fig. 7; §5.3");

  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  unsigned N = bench::maxEvents(5);
  double Budget = bench::budgetSeconds(180.0);
  unsigned Jobs = bench::jobs(argc, argv);

  ForbidSuite S = synthesizeForbid(Tm, Baseline, V, N, Budget, Jobs);
  std::printf("|E| = %u: %zu tests, synthesis %.2fs (%u job%s), "
              "complete: %s\n\n",
              N, S.Tests.size(), S.SynthesisSeconds, Jobs,
              Jobs == 1 ? "" : "s", bench::yesNo(S.Complete));
  if (S.Tests.empty())
    return 0;

  std::vector<double> Times = S.FoundAtSeconds;
  std::sort(Times.begin(), Times.end());

  std::printf("%10s %10s  cumulative tests found\n", "time-(%)",
              "tests-(%)");
  for (unsigned Pct = 5; Pct <= 100; Pct += 5) {
    double Cutoff = S.SynthesisSeconds * Pct / 100.0;
    unsigned Found = static_cast<unsigned>(
        std::upper_bound(Times.begin(), Times.end(), Cutoff) -
        Times.begin());
    double FoundPct = 100.0 * Found / Times.size();
    std::printf("%9u%% %9.1f%%  ", Pct, FoundPct);
    for (unsigned I = 0; I < static_cast<unsigned>(FoundPct / 2); ++I)
      std::printf("#");
    std::printf("\n");
  }

  // The paper's headline numbers for its 34-hour |E|=7 run.
  double Half = S.SynthesisSeconds * 0.06;
  unsigned FoundEarly = static_cast<unsigned>(
      std::upper_bound(Times.begin(), Times.end(), Half) - Times.begin());
  double EarlyPct = 100.0 * FoundEarly / Times.size();
  std::printf("\nFound within the first 6%% of synthesis time: %.1f%% "
              "(paper: 98%% of the 7-event tests within 6%% = 2h of 34h)\n",
              EarlyPct);

  // The same synthesis across a jobs sweep (work-stealing pool): within
  // budget the test set is deterministic, so only the wall time moves.
  std::printf("\nJobs sweep (work-stealing):\n");
  std::string SweepJson =
      bench::synthesisJobsSweepJson(Tm, Baseline, V, N, Budget);

  char Head[256];
  std::snprintf(Head, sizeof(Head),
                "{\"bench\": \"fig7_synthesis_distribution\", "
                "\"num_events\": %u, \"jobs\": %u, \"tests\": %zu, "
                "\"synthesis_seconds\": %.4f, "
                "\"found_within_6pct\": %.2f, \"jobs_sweep\": [",
                N, Jobs, S.Tests.size(), S.SynthesisSeconds, EarlyPct);
  bench::writeBenchJson("fig7_synthesis_distribution",
                        std::string(Head) + SweepJson + "]}");
  return 0;
}
