//===- QueryEngine.cpp - Evaluating batch litmus queries -----------------------==//

#include "query/QueryEngine.h"

#include "enumerate/Candidates.h"
#include "lint/Lint.h"
#include "litmus/Library.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "models/EvalPlan.h"
#include "models/ModelRegistry.h"
#include "query/Json.h"
#include "query/QueryIO.h"
#include "query/SessionCache.h"
#include "store/VerdictStore.h"

#include <algorithm>
#include <thread>

using namespace tmw;

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

double secondsSince(TimePoint Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Evaluate one request using \p Arena as the per-worker analysis arena
/// (created on first use, retargeted per candidate — the same arena
/// discipline as the synthesis workers). \p Cache, when set, supplies
/// interned models and cached parses; it never changes the response.
/// \p PlanCache is the cache consulted for compiled evaluation plans —
/// the session cache when one is attached, else a batch-local one (or
/// nullptr: compile per request). \p Specialize, under the Planned
/// strategy, pre-discharges footprint-disjoint obligations from the
/// program's static vocabulary (verdict-neutral; see BatchOptions).
CheckResponse evaluateRequest(const CheckRequest &R,
                              std::optional<ExecutionAnalysis> &Arena,
                              SessionCache *Cache, EvalStrategy Strategy,
                              SessionCache *PlanCache, VerdictStore *Store,
                              bool Specialize) {
  TimePoint T0 = std::chrono::steady_clock::now();
  CheckResponse Resp;
  Resp.Name = R.Name;
  auto Finish = [&]() -> CheckResponse & {
    Resp.Seconds = secondsSince(T0);
    return Resp;
  };

  // Resolve every model spec up front: a bad spec fails the request
  // before any enumeration work. Const models are shared freely across
  // threads, so cached resolutions are handed out as-is.
  std::vector<std::string> Specs = R.ModelSpecs;
  if (Specs.empty())
    for (Arch A : ModelRegistry::allArchs())
      Specs.push_back(ModelRegistry::archSpecName(A));
  std::vector<std::shared_ptr<const MemoryModel>> Models;
  Models.reserve(Specs.size());
  for (const std::string &Spec : Specs) {
    std::string Error;
    std::shared_ptr<const MemoryModel> M =
        Cache ? Cache->model(Spec, &Error)
              : std::shared_ptr<const MemoryModel>(
                    ModelRegistry::parse(Spec, &Error));
    if (!M) {
      Resp.Error = "model spec '" + Spec + "': " + Error;
      return Finish();
    }
    Models.push_back(std::move(M));
  }

  // Resolve the program: inline DSL source or a corpus entry. The cached
  // parse (and the shared corpus entry) outlive this evaluation — the
  // shared_ptr keeps an evicted entry alive while we hold it.
  ParseResult LocalParse;
  std::shared_ptr<const ParseResult> CachedParse;
  const Program *P = nullptr;
  if (!R.Source.empty() && !R.Corpus.empty()) {
    Resp.Error = "request sets both 'source' and 'corpus'";
    return Finish();
  }
  // Static program facts for plan specialization: served from the
  // session cache beside a cached parse (computed once at parse time),
  // computed inline otherwise (one O(instructions) scan — trivia next to
  // enumeration).
  ProgramFacts Facts;
  bool HaveFacts = false;
  if (!R.Source.empty()) {
    const ParseResult *PR;
    if (Cache) {
      CachedParse = Cache->program(R.Source, &Facts);
      PR = CachedParse.get();
      HaveFacts = true;
    } else {
      LocalParse = parseProgram(R.Source);
      PR = &LocalParse;
    }
    if (!*PR) {
      Resp.Error = "parse error: " + PR->Error;
      Resp.ErrorLine = PR->ErrorLine;
      return Finish();
    }
    P = &PR->Prog;
  } else if (!R.Corpus.empty()) {
    const CorpusEntry *E = findCorpusEntry(R.Corpus);
    if (!E) {
      Resp.Error = "unknown corpus entry '" + R.Corpus + "'";
      return Finish();
    }
    P = &E->Prog;
  } else {
    Resp.Error = "empty request: set 'source' or 'corpus'";
    return Finish();
  }
  if (Resp.Name.empty())
    Resp.Name = P->Name;

  Resp.Verdicts.resize(Models.size());
  for (size_t M = 0; M < Models.size(); ++M)
    Resp.Verdicts[M].Spec = ModelRegistry::print(*Models[M]);

  // Persistent tier: with a verdict store attached, an exact content
  // match (engine version, options, name, canonical specs, full program
  // source) answers from disk before any plan compile or enumeration.
  // The stored document is the canonical JSON of a previous evaluation,
  // and parse→serialise round-trips byte-exactly (query_io_test), so a
  // stored hit is byte-identical to a cold evaluation.
  std::string StoreKey;
  if (Store) {
    std::vector<std::string> Canonical(Resp.Verdicts.size());
    for (size_t M = 0; M < Resp.Verdicts.size(); ++M)
      Canonical[M] = Resp.Verdicts[M].Spec;
    // Corpus entries are keyed by their printed DSL — the same content
    // address an inline submission of the identical program would get.
    std::string CorpusSource;
    std::string_view Source = R.Source;
    if (Source.empty()) {
      CorpusSource = printDsl(*P);
      Source = CorpusSource;
    }
    StoreKey = VerdictStore::makeKey(Resp.Name, Source, Canonical, R.Explain,
                                     R.WantOutcomes, R.CandidateCap);
    ++Resp.Store.Lookups;
    if (std::optional<std::string> Doc = Store->lookup(StoreKey)) {
      CheckResponse Stored;
      if (std::optional<JsonValue> V = parseJson(*Doc, nullptr);
          V && responseFromJson(*V, Stored)) {
        Stored.Store.Lookups = 1;
        Stored.Store.Hits = 1;
        Resp = std::move(Stored);
        return Finish();
      }
      // Unparseable stored document — unreachable through the checksummed
      // append path; evaluate cold (the resident key blocks re-append).
    }
  }

  // Planned strategy: compile (or fetch) the spec set's cross-spec
  // evaluation plan. Keyed by the canonical printed specs, so any
  // spelling of the same resolved set shares one plan.
  std::shared_ptr<const EvalPlan> CachedPlan;
  EvalPlan LocalPlan;
  const EvalPlan *Plan = nullptr;
  EvalPlan::Scratch Scratch;
  std::optional<EvalPlan::Specialization> Spec;
  if (Strategy == EvalStrategy::Planned) {
    std::vector<const MemoryModel *> Raw(Models.size());
    for (size_t M = 0; M < Models.size(); ++M)
      Raw[M] = Models[M].get();
    if (PlanCache) {
      std::string Key;
      for (const ModelVerdict &V : Resp.Verdicts) {
        Key += V.Spec;
        Key += '\n';
      }
      bool Hit = false;
      CachedPlan = PlanCache->plan(Key, Raw, &Hit);
      Plan = CachedPlan.get();
      (Hit ? Resp.Plan.CacheHits : Resp.Plan.Compiles) = 1;
    } else {
      LocalPlan = EvalPlan::compile(Raw);
      Plan = &LocalPlan;
      Resp.Plan.Compiles = 1;
    }
    Scratch = Plan->makeScratch();
    if (Specialize) {
      if (!HaveFacts)
        Facts = computeFacts(*P);
      Spec = Plan->specialize(Facts);
    }
  }

  // Enumerate the candidates ONCE; fan each one out to every model over
  // one shared analysis, so derived relations (fr, com, fences, ...) are
  // computed once per candidate, not once per (candidate, model).
  std::vector<Execution> FirstForbidden(Models.size());
  forEachCandidate(*P, [&](const Candidate &C) {
    if (R.CandidateCap && Resp.Candidates >= R.CandidateCap) {
      Resp.Truncated = true;
      return false;
    }
    int64_t Index = static_cast<int64_t>(Resp.Candidates++);
    if (!Arena)
      Arena.emplace(C.X);
    else
      Arena->reset(C.X);
    bool Satisfies = C.O.satisfies(*P);
    if (Plan)
      Plan->evaluate(*Arena, Scratch, Spec ? &*Spec : nullptr);
    for (size_t M = 0; M < Models.size(); ++M) {
      ModelVerdict &V = Resp.Verdicts[M];
      bool Consistent =
          Plan ? Scratch.consistent(M) : Models[M]->consistent(*Arena);
      if (Consistent) {
        ++V.Consistent;
        V.Allowed |= Satisfies;
        if (R.WantOutcomes)
          V.AllowedOutcomes.push_back(C.O);
      } else if (V.FirstForbidden < 0) {
        V.FirstForbidden = Index;
        if (R.Explain)
          FirstForbidden[M] = C.X;
      }
    }
    return true;
  });

  if (Plan) {
    const EvalPlan::Counters &PC = Scratch.counters();
    Resp.Plan.TermEvals = PC.TermEvals;
    Resp.Plan.TermHits = PC.TermHits;
    Resp.Plan.SpecEvals = PC.SpecEvals;
    Resp.Plan.SpecShortCircuits = PC.SpecShortCircuits;
    Resp.Plan.Discharged = PC.Discharged;
  }

  if (R.Explain)
    for (size_t M = 0; M < Models.size(); ++M) {
      ModelVerdict &V = Resp.Verdicts[M];
      if (V.FirstForbidden < 0)
        continue;
      // Re-analyse the stored copy (the enumeration's candidate is gone);
      // checkAll reports every violated axiom plus its witness events.
      if (!Arena)
        Arena.emplace(FirstForbidden[M]);
      else
        Arena->reset(FirstForbidden[M]);
      CheckReport Report = Models[M]->checkAll(*Arena);
      for (const AxiomVerdict &AV : Report.Verdicts) {
        if (AV.Holds)
          continue;
        FailedAxiomInfo Info;
        Info.Axiom = std::string(AV.Ax->Name);
        for (EventId E : AV.Witness)
          Info.Witness.push_back(E);
        V.FailedAxioms.push_back(std::move(Info));
      }
    }

  if (R.WantOutcomes)
    for (ModelVerdict &V : Resp.Verdicts) {
      std::sort(V.AllowedOutcomes.begin(), V.AllowedOutcomes.end());
      V.AllowedOutcomes.erase(
          std::unique(V.AllowedOutcomes.begin(), V.AllowedOutcomes.end()),
          V.AllowedOutcomes.end());
    }

  // Persist the cold answer (append + fsync). Error responses are not
  // stored: they can depend on mutable context (the corpus set, registry
  // spellings) rather than on the keyed content alone.
  if (Store && Resp.Error.empty() &&
      Store->append(StoreKey, toJson(Resp)))
    Resp.Store.Appends = 1;
  return Finish();
}

} // namespace

BatchRun::BatchRun(std::span<const CheckRequest> Requests,
                   WorkQueue<size_t> &Q, SessionCache *Cache,
                   std::function<void(const CheckResponse &)> OnResult,
                   EvalStrategy Strategy, VerdictStore *Store,
                   bool Specialize)
    : BatchRun(Requests, Q.numWorkers(), Cache, std::move(OnResult),
               Strategy, Store, Specialize) {
  this->Q = &Q;
  // One monolithic task per request: the pool acts as a balanced
  // distributor with stealing.
  for (size_t I = 0; I < Requests.size(); ++I)
    Q.seed(I);
}

BatchRun::BatchRun(std::span<const CheckRequest> Requests,
                   unsigned NumWorkers, SessionCache *Cache,
                   std::function<void(const CheckResponse &)> OnResult,
                   EvalStrategy Strategy, VerdictStore *Store,
                   bool Specialize)
    : Requests(Requests), Cache(Cache), OnResult(std::move(OnResult)),
      Strategy(Strategy), Store(Store), Specialize(Specialize),
      Results(Requests.size()), Done(Requests.size(), 0),
      Loads(NumWorkers), T0(std::chrono::steady_clock::now()) {
  // Cache-less planned batches still plan each distinct spec set once.
  if (!Cache && Strategy == EvalStrategy::Planned)
    BatchPlans.emplace();
}

void BatchRun::work(unsigned Worker,
                    std::optional<ExecutionAnalysis> &Arena) {
  size_t I = 0;
  bool Stolen = false;
  while (Q->pop(Worker, I, Stolen)) {
    runOne(I, Worker, Arena, Stolen);
    Q->finish(Worker);
  }
}

bool BatchRun::runOne(size_t I, unsigned Worker,
                      std::optional<ExecutionAnalysis> &Arena, bool Stolen,
                      bool Skip) {
  TimePoint S0 = std::chrono::steady_clock::now();
  ++Loads[Worker].Tasks;
  Loads[Worker].Steals += Stolen;
  if (!Skip) {
    Results[I] = evaluateRequest(Requests[I], Arena, Cache, Strategy,
                                 Cache ? Cache : (BatchPlans ? &*BatchPlans
                                                             : nullptr),
                                 Store, Specialize);
    Loads[Worker].BasesVisited += Results[I].Candidates;
  }
  Loads[Worker].BusySeconds += secondsSince(S0);
  // Stream in request order: emit response i only after 0..i-1. Exactly
  // one call advances NextToEmit to the end — the batch-completion
  // signal for external schedulers.
  std::lock_guard<std::mutex> Lock(EmitMu);
  Done[I] = 1;
  bool WasComplete = NextToEmit == Results.size();
  while (NextToEmit < Results.size() && Done[NextToEmit]) {
    if (OnResult)
      OnResult(Results[NextToEmit]);
    ++NextToEmit;
  }
  return !WasComplete && NextToEmit == Results.size();
}

std::vector<CheckResponse> BatchRun::take(BatchTelemetry &T) {
  T.Programs = Requests.size();
  T.Candidates = T.Checks = 0;
  for (const CheckResponse &R : Results) {
    T.Candidates += R.Candidates;
    T.Checks += R.Candidates * R.Verdicts.size();
    T.Plan += R.Plan;
    T.Store += R.Store;
  }
  T.Workers = std::move(Loads);
  T.Seconds = secondsSince(T0);
  return std::move(Results);
}

CheckResponse QueryEngine::evaluate(const CheckRequest &R) const {
  std::optional<ExecutionAnalysis> Arena;
  return evaluateRequest(R, Arena, Opts.Cache, Opts.Strategy, Opts.Cache,
                         Opts.Store, Opts.Specialize);
}

BatchTelemetry QueryEngine::run(
    std::span<const CheckRequest> Requests,
    const std::function<void(const CheckResponse &)> &OnResult) const {
  BatchTelemetry T;
  runAllInto(Requests, OnResult, T);
  return T;
}

std::vector<CheckResponse>
QueryEngine::runAll(std::span<const CheckRequest> Requests,
                    BatchTelemetry *Telemetry) const {
  BatchTelemetry T;
  std::vector<CheckResponse> Out = runAllInto(Requests, nullptr, T);
  if (Telemetry)
    *Telemetry = std::move(T);
  return Out;
}

std::vector<CheckResponse> QueryEngine::runAllInto(
    std::span<const CheckRequest> Requests,
    const std::function<void(const CheckResponse &)> &OnResult,
    BatchTelemetry &T) const {
  size_t N = Requests.size();
  if (N == 0) {
    T.Programs = 0;
    return {};
  }

  // One-shot flow: construct a queue and workers per call, then drive the
  // same BatchRun the resident server reuses across batches. Idle workers
  // beyond the request count would only contend, so clamp.
  unsigned Jobs = std::max(1u, Opts.Jobs);
  Jobs = static_cast<unsigned>(std::min<size_t>(Jobs, N));
  WorkQueue<size_t> Q(Jobs);
  BatchRun Batch(Requests, Q, Opts.Cache, OnResult, Opts.Strategy,
                 Opts.Store, Opts.Specialize);

  if (Jobs == 1) {
    std::optional<ExecutionAnalysis> Arena;
    Batch.work(0, Arena);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Jobs);
    for (unsigned W = 0; W < Jobs; ++W)
      Threads.emplace_back([&Batch, W] {
        std::optional<ExecutionAnalysis> Arena;
        Batch.work(W, Arena);
      });
    for (std::thread &Th : Threads)
      Th.join();
  }
  return Batch.take(T);
}
