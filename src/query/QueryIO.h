//===- QueryIO.h - JSON wire form of the query API --------------*- C++ -*-==//
///
/// \file
/// Serialises `CheckRequest` / `CheckResponse` batches to JSON and back —
/// the machine-readable verdict interface between the model checker and
/// external tooling (CI artifacts, dashboards, diffing two commits'
/// verdicts), in the herd7 tradition of batch litmus tools with parseable
/// output.
///
/// The serialisation is *canonical*: fields are emitted in a fixed order,
/// every field is always present, and nothing nondeterministic is
/// included by default — so the JSON for a batch is byte-for-byte
/// identical for every `--jobs` value (the property CI pins by diffing a
/// 1-job and an N-job run). Timing and worker telemetry are opt-in
/// appendices (`IncludeTiming`, the `Telemetry` argument) and excluded
/// from that guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_QUERY_QUERYIO_H
#define TMW_QUERY_QUERYIO_H

#include "query/Query.h"

#include <span>
#include <string>

namespace tmw {

struct JsonValue;

/// One request / response as a single-line JSON object.
std::string toJson(const CheckRequest &R);
std::string toJson(const CheckResponse &R, bool IncludeTiming = false);

/// A request batch: `{"schema": "tmw-query-batch-v1", "requests": [...]}`
/// (one request per line).
std::string requestsToJson(std::span<const CheckRequest> Requests);

/// The same batch as a single line with no interior newlines — the NDJSON
/// framing the query server reads (one batch document per stdin/socket
/// line). Parses back through `requestsFromJson` like the multi-line form.
std::string requestsToJsonLine(std::span<const CheckRequest> Requests);

/// A verdicts document for a batch that failed before evaluation (e.g. a
/// malformed batch line): carries the schema, a top-level `"error"`, and
/// an empty `"responses"` array — what the server emits instead of dying.
std::string batchErrorToJson(const std::string &Error);

/// A response batch: `{"schema": "tmw-query-verdicts-v1", "responses":
/// [...]}`. When \p Telemetry is non-null a trailing `"telemetry"` object
/// (batch seconds, candidate/check totals, per-worker load) is appended —
/// and the output is no longer jobs-deterministic.
std::string responsesToJson(std::span<const CheckResponse> Responses,
                            const BatchTelemetry *Telemetry = nullptr);

/// Parse one request / response object (the `toJson` form). Returns false
/// and sets \p Error on malformed input.
bool requestFromJson(const JsonValue &V, CheckRequest &Out,
                     std::string *Error = nullptr);
bool responseFromJson(const JsonValue &V, CheckResponse &Out,
                      std::string *Error = nullptr);

/// Parse a request batch: the `requestsToJson` form, a bare JSON array of
/// requests, or a single request object.
bool requestsFromJson(const std::string &Text,
                      std::vector<CheckRequest> &Out,
                      std::string *Error = nullptr);

/// Parse a response batch (the `responsesToJson` form, a bare array, or a
/// single response object). Telemetry, when present, is ignored.
bool responsesFromJson(const std::string &Text,
                       std::vector<CheckResponse> &Out,
                       std::string *Error = nullptr);

} // namespace tmw

#endif // TMW_QUERY_QUERYIO_H
