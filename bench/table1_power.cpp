//===- table1_power.cpp - Table 1, Power rows ----------------------------------==//
///
/// Regenerates the Power half of Table 1. "Hardware" is the simulated
/// POWER8 — the Power+TM model strengthened with no-load-buffering
/// (§5.3's observation that LB has never been seen on Power silicon),
/// which the registry addresses as the spec "power8". Each synthesised
/// test becomes one query-engine request checked against *both*
/// "power" (the spec model) and "power8" (the hardware substitute) over a
/// single shared candidate enumeration: the "seen" column is the power8
/// verdict, and the footnote-2 Forbid refinement compares the two
/// allowed-outcome sets — replacing the old per-test sampled campaign
/// plus `observedForbiddenBehaviour` re-enumeration pair. Expect unseen
/// Allow tests to be concentrated on LB shapes, as in the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "litmus/FromExecution.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "models/PowerModel.h"
#include "query/QueryEngine.h"
#include "synth/Conformance.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

using namespace tmw;

namespace {

/// One request per synthesised test: DSL source, checked against the spec
/// model and the hardware substitute with outcome collection. \p Progs
/// receives each test's re-parsed program (the engine's location
/// numbering) for the outcome comparisons.
std::vector<CheckRequest> suiteRequests(const std::vector<Execution> &Tests,
                                        std::vector<Program> &Progs) {
  std::vector<CheckRequest> Requests;
  for (const Execution &X : Tests) {
    CheckRequest R;
    R.Source = printDsl(programFromExecution(X, "t").Prog);
    R.ModelSpecs = {"power", "power8"};
    R.WantOutcomes = true;
    ParseResult PR = parseProgram(R.Source);
    if (!PR) {
      std::fprintf(stderr, "printDsl round trip broke: %s\n",
                   PR.diagnostic().c_str());
      std::exit(1);
    }
    Progs.push_back(std::move(PR.Prog));
    Requests.push_back(std::move(R));
  }
  return Requests;
}

/// Abort (rather than index an empty verdict list) if a batch request
/// failed — synthesised tests must always round-trip.
void requireOk(const std::vector<CheckResponse> &Responses) {
  for (const CheckResponse &R : Responses)
    if (!R || R.Verdicts.size() != 2) {
      std::fprintf(stderr, "query failed for %s: %s\n", R.Name.c_str(),
                   R.Error.c_str());
      std::exit(1);
    }
}

/// Footnote 2: the machine (power8) reaches a postcondition-satisfying
/// outcome the spec model (power) cannot explain.
bool forbiddenSeen(const Program &P, const CheckResponse &R) {
  const std::vector<Outcome> &Spec = R.Verdicts[0].AllowedOutcomes;
  for (const Outcome &O : R.Verdicts[1].AllowedOutcomes)
    if (O.satisfies(P) &&
        !std::binary_search(Spec.begin(), Spec.end(), O))
      return true;
  return false;
}

} // namespace

int main(int argc, char **argv) {
  bench::header("Table 1 (Power): testing the transactional Power model",
                "Table 1, right half; §5.3");

  PowerModel Tm;
  PowerModel Baseline{PowerModel::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::Power);
  unsigned MaxE = bench::maxEvents(4);
  double Budget = bench::budgetSeconds(120.0);
  unsigned Jobs = bench::jobs(argc, argv);
  QueryEngine Engine({Jobs});

  std::printf("%4s %12s %9s %7s %5s %5s\n", "|E|", "synth(s)", "complete",
              "Forbid", "S", "!S");
  unsigned TotForbid = 0, TotForbidSeen = 0;
  std::vector<Execution> AllForbid;
  for (unsigned N = 2; N <= MaxE; ++N) {
    ForbidSuite S = synthesizeForbid(Tm, Baseline, V, N, Budget, Jobs);
    std::vector<Program> Progs;
    std::vector<CheckResponse> Responses =
        Engine.runAll(suiteRequests(S.Tests, Progs));
    requireOk(Responses);
    unsigned Seen = 0;
    for (size_t I = 0; I < S.Tests.size(); ++I)
      Seen += forbiddenSeen(Progs[I], Responses[I]);
    AllForbid.insert(AllForbid.end(), S.Tests.begin(), S.Tests.end());
    TotForbid += S.Tests.size();
    TotForbidSeen += Seen;
    std::printf("%4u %12.2f %9s %7zu %5u %5zu\n", N, S.SynthesisSeconds,
                bench::yesNo(S.Complete), S.Tests.size(), Seen,
                S.Tests.size() - Seen);
  }

  std::printf("%4s %12s %9s %7s %5s %5s\n", "|E|", "", "", "Allow", "S",
              "!S");
  // Allow suite: "seen" is plain reachability on the simulated POWER8 —
  // the power8 verdict of the same batch.
  std::vector<Execution> Allow = relaxationsOf(AllForbid, V);
  std::vector<Program> AllowProgs;
  std::vector<CheckResponse> AllowResponses =
      Engine.runAll(suiteRequests(Allow, AllowProgs));
  requireOk(AllowResponses);
  std::map<unsigned, std::pair<unsigned, unsigned>> AllowBySize;
  unsigned LbUnseen = 0, TotAllow = 0, TotAllowSeen = 0;
  for (size_t I = 0; I < Allow.size(); ++I) {
    const Execution &X = Allow[I];
    bool Seen = AllowResponses[I].Verdicts[1].Allowed;
    auto &[T, Sn] = AllowBySize[X.size()];
    ++T;
    Sn += Seen;
    if (!Seen && !(X.Po | X.Rf).isAcyclic())
      ++LbUnseen; // load-buffering shape: invisible on the silicon
  }
  for (const auto &[N, TS] : AllowBySize) {
    std::printf("%4u %12s %9s %7u %5u %5u\n", N, "", "", TS.first,
                TS.second, TS.first - TS.second);
    TotAllow += TS.first;
    TotAllowSeen += TS.second;
  }
  std::printf("Total (Power): Forbid %u (seen %u); Allow %u (seen %u, not "
              "seen %u, of which LB-shaped: %u)\n",
              TotForbid, TotForbidSeen, TotAllow, TotAllowSeen,
              TotAllow - TotAllowSeen, LbUnseen);

  std::vector<unsigned> Hist = txnCountHistogram(AllForbid);
  std::printf("Forbid tests by transaction count:");
  for (unsigned I = 1; I < Hist.size(); ++I)
    std::printf("  %u txn: %u (%.0f%%)", I, Hist[I],
                TotForbid ? 100.0 * Hist[I] / TotForbid : 0.0);
  std::printf("\n");

  std::printf("\nPaper (SAT back-end, |E|<=6): 1346 Forbid (0 seen), 6795 "
              "Allow (5963 seen); unseen Allow mostly LB-shaped — same "
              "texture expected here.\n");
  return 0;
}
