//===- ScModel.cpp - SC and Transactional SC --------------------------------==//

#include "models/ScModel.h"

using namespace tmw;

namespace {

Relation scHb(const ExecutionAnalysis &A, AxiomMask) {
  return A.po() | A.com();
}

Relation tscTxnOrder(const ExecutionAnalysis &A, AxiomMask M) {
  return strongLift(scHb(A, M), A.stxn());
}

const Axiom ScAxioms[] = {
    {"Order", AxiomKind::Acyclic, scHb},
};

const Axiom TscAxioms[] = {
    {"Order", AxiomKind::Acyclic, scHb},
    {"TxnOrder", AxiomKind::Acyclic, tscTxnOrder, /*Tm=*/true},
};

} // namespace

AxiomList ScModel::axioms() const { return ScAxioms; }

AxiomList TscModel::axioms() const { return TscAxioms; }
