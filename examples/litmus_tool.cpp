//===- litmus_tool.cpp - A herd/litmus-style command-line tool ------------------==//
///
/// Reads a litmus test in the DSL (from a file or stdin), enumerates its
/// candidate executions, reports the outcomes allowed by each memory
/// model, and runs the test on the simulated hardware.
///
/// Usage:   ./litmus_tool [file.litmus]
/// Example: ./litmus_tool               (runs a built-in SB+txn demo)
///
/// DSL example:
///   name SB
///   thread 0
///     store x 1
///     load y
///   thread 1
///     store y 1
///     load x
///   post reg 0 r1 0
///   post reg 1 r1 0
///
//===----------------------------------------------------------------------===//

#include "enumerate/Candidates.h"
#include "hw/ImplModel.h"
#include "hw/LitmusRunner.h"
#include "hw/TsoMachine.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace tmw;

namespace {

const char *DemoTest = R"(name SB+txn-demo
loc ok 1
thread 0
  txbegin
  store x 1
  txend
  load y
thread 1
  txbegin
  store y 1
  txend
  load x
post mem ok 1
post reg 0 r3 0
post reg 1 r3 0
)";

} // namespace

int main(int Argc, char **Argv) {
  std::string Text;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Ss;
    Ss << In.rdbuf();
    Text = Ss.str();
  } else {
    std::printf("(no input file: running the built-in demo test)\n\n");
    Text = DemoTest;
  }

  ParseResult R = parseProgram(Text);
  if (!R) {
    std::fprintf(stderr, "parse error: %s\n", R.Error.c_str());
    return 1;
  }
  const Program &P = R.Prog;
  std::printf("%s\n", printGeneric(P).c_str());

  std::vector<Candidate> Cands = enumerateCandidates(P);
  std::printf("%zu candidate executions\n\n", Cands.size());

  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  CppModel Cpp;
  const MemoryModel *Models[] = {&Sc, &Tsc, &X86, &Power, &Armv8, &Cpp};

  std::printf("%-8s %9s %9s   postcondition\n", "model", "allowed",
              "outcomes");
  for (const MemoryModel *M : Models) {
    unsigned Allowed = 0;
    bool Post = false;
    for (const Candidate &C : Cands)
      if (M->consistent(C.X)) {
        ++Allowed;
        Post |= C.O.satisfies(P);
      }
    std::printf("%-8s %9u %9zu   %s\n", M->name(), Allowed, Cands.size(),
                Post ? "REACHABLE" : "unreachable");
  }

  std::printf("\nSimulated hardware campaigns:\n");
  {
    TsoMachine M(P);
    RunReport Rep = runOnTso(P, 1000000);
    std::printf("  x86 TSX machine   : postcondition %s (%zu distinct "
                "outcomes)\n",
                Rep.Seen ? "OBSERVED" : "never observed",
                Rep.Histogram.size());
    for (const auto &[O, N] : Rep.Histogram)
      std::printf("    %9llu  %s\n", static_cast<unsigned long long>(N),
                  O.str(P).c_str());
  }
  {
    ImplModel P8 = ImplModel::power8();
    RunReport Rep = runOnImpl(P, P8, 1000000);
    std::printf("  POWER8 (simulated): postcondition %s\n",
                Rep.Seen ? "OBSERVED" : "never observed");
  }
  return 0;
}
