//===- ImplModel.cpp - Axiomatic hardware substitutes -------------------------==//

#include "hw/ImplModel.h"

using namespace tmw;

ImplModel::ImplModel(std::unique_ptr<MemoryModel> Spec, bool NoLoadBuffering,
                     const char *Name)
    : Spec(std::move(Spec)), NoLoadBuffering(NoLoadBuffering), Label(Name) {}

ConsistencyResult ImplModel::check(const ExecutionAnalysis &A) const {
  // The spec model shares this analysis, so its derived relations are
  // computed once across both layers.
  ConsistencyResult R = Spec->check(A);
  if (!R.Consistent)
    return R;
  if (NoLoadBuffering && !(A.po() | A.rf()).isAcyclic())
    return ConsistencyResult::fail("NoLoadBuffering(impl)");
  return ConsistencyResult::ok();
}

ImplModel ImplModel::power8() {
  return ImplModel(std::make_unique<PowerModel>(), /*NoLoadBuffering=*/true,
                   "POWER8 (simulated)");
}

ImplModel ImplModel::armv8Silicon() {
  return ImplModel(std::make_unique<Armv8Model>(), /*NoLoadBuffering=*/true,
                   "ARMv8+TM silicon (simulated)");
}

ImplModel ImplModel::armv8BuggyRtl() {
  Armv8Model::Config C;
  C.TxnOrder = false;
  return ImplModel(std::make_unique<Armv8Model>(C),
                   /*NoLoadBuffering=*/true, "ARMv8 RTL prototype (buggy)");
}
