//===- Relaxation.h - The ⊏ order between executions ------------*- C++ -*-==//
///
/// \file
/// The relaxation order between executions (§4.2, after Lustig et al.):
/// X ⊏ Y when X is obtained from Y by one of
///
///   (i)   removing an event (plus incident edges),
///   (ii)  removing a dependency edge (addr, ctrl, data, rmw),
///   (iii) downgrading an event (e.g. acquire read to plain read), or
///   (v)   making the first or last event of a transaction
///         non-transactional.
///
/// Minimally inconsistent executions are inconsistent executions all of
/// whose one-step relaxations are consistent; maximally consistent
/// executions are the one-step relaxations of minimally inconsistent ones.
///
/// Canonicalisation (thread and location symmetry) deduplicates the
/// synthesised test suites.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_ENUMERATE_RELAXATION_H
#define TMW_ENUMERATE_RELAXATION_H

#include "enumerate/Enumerator.h"

#include <vector>

namespace tmw {

/// Remove event \p E from \p X, remapping ids and dropping incident edges.
Execution removeEvent(const Execution &X, EventId E);

/// All well-formed executions one ⊏-step below \p X under vocabulary \p V.
std::vector<Execution> relaxOneStep(const Execution &X, const Vocabulary &V);

/// True when the analysed execution is inconsistent under \p M and every
/// one-step relaxation is consistent. Takes the (possibly shared) analysis
/// so the caller's `M.check` and this function's own top-level check reuse
/// the same derived relations; an `Execution` converts implicitly. The
/// relaxation children are checked through a reusable per-thread analysis
/// arena (safe: models are stateless and shards never share a thread).
bool isMinimallyInconsistent(const ExecutionAnalysis &A, const MemoryModel &M,
                             const Vocabulary &V);

/// A serialisation of \p X that is invariant under renaming of threads (of
/// equal size) and locations: the lexicographically least encoding over all
/// such renamings.
std::vector<uint8_t> canonicalEncoding(const Execution &X);

/// The same serialisation with the identity renaming — a total key on
/// *concrete* executions that discriminates between symmetry-equivalent
/// ones (which share `canonicalEncoding`). The synthesis layer keeps the
/// least-keyed representative of each canonical class, making the suite
/// byte-for-byte independent of enumeration order and shard count.
std::vector<uint8_t> concreteEncoding(const Execution &X);

/// FNV hash of `canonicalEncoding`.
uint64_t canonicalHash(const Execution &X);

} // namespace tmw

#endif // TMW_ENUMERATE_RELAXATION_H
