//===- Enumerator.cpp - Exhaustive execution enumeration ----------------------==//

#include "enumerate/Enumerator.h"

#include <algorithm>

using namespace tmw;

Vocabulary Vocabulary::forArch(Arch A) {
  Vocabulary V;
  V.A = A;
  switch (A) {
  case Arch::SC:
  case Arch::TSC:
    V.Fences = {};
    V.Rmw = false;
    break;
  case Arch::X86:
    V.Fences = {FenceKind::MFence};
    break;
  case Arch::Power:
    V.Fences = {FenceKind::Sync, FenceKind::LwSync, FenceKind::ISync};
    V.Deps = true;
    break;
  case Arch::Armv8:
    V.Fences = {FenceKind::Dmb, FenceKind::DmbLd, FenceKind::DmbSt,
                FenceKind::Isb};
    V.ReadOrders = {MemOrder::NonAtomic, MemOrder::Acquire};
    V.WriteOrders = {MemOrder::NonAtomic, MemOrder::Release};
    V.Deps = true;
    break;
  case Arch::Cpp:
    V.Fences = {FenceKind::CppFence};
    V.FenceOrders = {MemOrder::Acquire, MemOrder::Release, MemOrder::AcqRel,
                     MemOrder::SeqCst};
    V.ReadOrders = {MemOrder::NonAtomic, MemOrder::Relaxed, MemOrder::Acquire,
                    MemOrder::SeqCst};
    V.WriteOrders = {MemOrder::NonAtomic, MemOrder::Relaxed,
                     MemOrder::Release, MemOrder::SeqCst};
    V.AtomicTxns = true;
    break;
  }
  return V;
}

namespace {

/// Enumerate the canonical skeletons (non-increasing partitions of \p Num
/// into at most \p MaxThreads parts) in DFS order — small parts first:
/// thread-rich skeletons (where most communication cycles live) are
/// visited early, front-loading test discovery, the explicit-search
/// counterpart of the paper's Fig. 7 observation. The single source of
/// truth for the skeleton stage: the base DFS and the prefix-task roots
/// (`forEachSkeleton`) both come from here, so the pool seeds exactly the
/// skeletons the sequential search visits. \p F returns false to stop.
template <typename F>
bool forEachSkeletonImpl(unsigned Num, unsigned MaxThreads, F &&Sink) {
  std::vector<unsigned> Sizes;
  std::function<bool(unsigned, unsigned)> Rec = [&](unsigned Remaining,
                                                    unsigned MaxPart) {
    if (Remaining == 0)
      return Sizes.size() > MaxThreads || Sink(Sizes);
    for (unsigned Part = 1; Part <= std::min(Remaining, MaxPart); ++Part) {
      Sizes.push_back(Part);
      bool Continue = Rec(Remaining - Part, Part);
      Sizes.pop_back();
      if (!Continue)
        return false;
    }
    return true;
  };
  return Rec(Num, Num);
}

/// Mutable state threaded through the base-enumeration DFS.
struct BaseSearch {
  const Vocabulary &V;
  unsigned Num;
  const std::function<bool(Execution &)> &Sink;
  Execution X;
  /// Thread of each event and position within the thread.
  std::vector<unsigned> ThreadOf, PosOf, ThreadSize;
  /// Shard filter over the first branching decision (largest-thread size).
  unsigned Shard = 0, NumShards = 1;
  bool Aborted = false;

  BaseSearch(const Vocabulary &V, unsigned Num,
             const std::function<bool(Execution &)> &Sink)
      : V(V), Num(Num), Sink(Sink) {}

  void run();
  void runPrefixed(const BasePrefix &P);
  void materializeSkeleton(const std::vector<unsigned> &Sizes);
  /// Apply the labels of \p P over the materialized skeleton; returns the
  /// resulting first-use location count.
  unsigned applyLabels(const BasePrefix &P);
  /// Enumerate the admissible labels of event \p E given \p LocsUsed, in
  /// DFS try-order. \p Gen receives (label, new LocsUsed) and returns
  /// false to stop. The single source of truth for the labelling
  /// decisions: the DFS recursion and `expandPrefix` both call it, which
  /// is what makes prefix tasks partition the space exactly.
  template <typename G>
  void forEachLabelChoice(unsigned E, unsigned LocsUsed, G &&Gen) const;
  void chooseEvents(unsigned E, unsigned LocsUsed);
  bool locationFilterOk() const;
  void chooseRmw();
  void chooseRmwPairs(const std::vector<std::pair<EventId, EventId>> &Pairs,
                      unsigned From, EventSet Used);
  void chooseDeps();
  void chooseDepPair(const std::vector<std::pair<EventId, EventId>> &Pairs,
                     unsigned Idx, const std::vector<EventId> &Reads);
  void chooseCtrl(const std::vector<EventId> &Reads, unsigned Idx);
  void chooseRf(const std::vector<EventId> &Reads, unsigned Idx);
  void chooseCo(unsigned Loc);
  void emit();
};

void BaseSearch::run() {
  forEachSkeletonImpl(Num, V.MaxThreads,
                      [&](const std::vector<unsigned> &Sizes) {
    // Static sharding partitions the space on the very first skeleton
    // decision only (the largest-thread size, dealt round-robin).
    if ((Sizes[0] - 1) % NumShards != Shard)
      return true;
    materializeSkeleton(Sizes);
    chooseEvents(0, 0);
    return !Aborted;
  });
}

void BaseSearch::materializeSkeleton(const std::vector<unsigned> &Sizes) {
  // Events thread-major, po = id order.
  X.clear(Num);
  ThreadOf.assign(Num, 0);
  PosOf.assign(Num, 0);
  ThreadSize = Sizes;
  unsigned E = 0;
  for (unsigned T = 0; T < Sizes.size(); ++T)
    for (unsigned P = 0; P < Sizes[T]; ++P, ++E) {
      ThreadOf[E] = T;
      PosOf[E] = P;
      X.event(E).Thread = T;
    }
  for (unsigned A = 0; A < Num; ++A)
    for (unsigned B = A + 1; B < Num; ++B)
      if (ThreadOf[A] == ThreadOf[B])
        X.Po.insert(A, B);
}

unsigned BaseSearch::applyLabels(const BasePrefix &P) {
  unsigned LocsUsed = 0;
  for (unsigned E = 0; E < P.Labels.size(); ++E) {
    X.event(E) = P.Labels[E];
    X.event(E).Thread = ThreadOf[E];
    if (X.event(E).isMemoryAccess())
      LocsUsed =
          std::max(LocsUsed, static_cast<unsigned>(X.event(E).Loc) + 1);
  }
  return LocsUsed;
}

void BaseSearch::runPrefixed(const BasePrefix &P) {
  materializeSkeleton(P.Sizes);
  chooseEvents(static_cast<unsigned>(P.Labels.size()), applyLabels(P));
}

template <typename G>
void BaseSearch::forEachLabelChoice(unsigned E, unsigned LocsUsed,
                                    G &&Gen) const {
  bool Interior = PosOf[E] > 0 && PosOf[E] + 1 < ThreadSize[ThreadOf[E]];

  // Reads and writes, over the available locations (first-use canonical:
  // an event may use any previously used location or the next fresh one).
  unsigned LocLimit = std::min(LocsUsed + 1, V.MaxLocations);
  for (unsigned L = 0; L < LocLimit; ++L) {
    unsigned NewUsed = std::max(LocsUsed, L + 1);
    for (MemOrder MO : V.ReadOrders) {
      Event Ev;
      Ev.Kind = EventKind::Read;
      Ev.Thread = ThreadOf[E];
      Ev.Loc = static_cast<LocId>(L);
      Ev.Order = MO;
      if (!Gen(Ev, NewUsed))
        return;
    }
    for (MemOrder MO : V.WriteOrders) {
      Event Ev;
      Ev.Kind = EventKind::Write;
      Ev.Thread = ThreadOf[E];
      Ev.Loc = static_cast<LocId>(L);
      Ev.Order = MO;
      if (!Gen(Ev, NewUsed))
        return;
    }
  }

  // Fences: only interior to a thread (a boundary fence orders nothing and
  // can never appear in a minimal test).
  if (Interior) {
    for (FenceKind FK : V.Fences) {
      if (FK == FenceKind::CppFence) {
        for (MemOrder MO : V.FenceOrders) {
          Event Ev;
          Ev.Kind = EventKind::Fence;
          Ev.Thread = ThreadOf[E];
          Ev.Fence = FK;
          Ev.Order = MO;
          if (!Gen(Ev, LocsUsed))
            return;
        }
      } else {
        Event Ev;
        Ev.Kind = EventKind::Fence;
        Ev.Thread = ThreadOf[E];
        Ev.Fence = FK;
        if (!Gen(Ev, LocsUsed))
          return;
      }
    }
  }
}

void BaseSearch::chooseEvents(unsigned E, unsigned LocsUsed) {
  if (Aborted)
    return;
  if (E == Num) {
    if (locationFilterOk())
      chooseRmw();
    return;
  }
  forEachLabelChoice(E, LocsUsed, [&](const Event &Ev, unsigned NewUsed) {
    X.event(E) = Ev;
    chooseEvents(E + 1, NewUsed);
    return !Aborted;
  });
  X.event(E) = Event();
  X.event(E).Thread = ThreadOf[E];
}

bool BaseSearch::locationFilterOk() const {
  unsigned NumLocs = X.numLocations();
  for (unsigned L = 0; L < NumLocs; ++L) {
    unsigned Accesses = 0, Writes = 0;
    for (unsigned E = 0; E < Num; ++E) {
      const Event &Ev = X.event(E);
      if (!Ev.isMemoryAccess() || Ev.Loc != static_cast<LocId>(L))
        continue;
      ++Accesses;
      Writes += Ev.isWrite();
    }
    if (Accesses < 2 || Writes < 1)
      return false;
  }
  return true;
}

void BaseSearch::chooseRmw() {
  if (!V.Rmw) {
    chooseDeps();
    return;
  }
  // Eligible pairs: po-adjacent read/write on the same location (for C++,
  // both halves atomic).
  std::vector<std::pair<EventId, EventId>> Pairs;
  for (unsigned R = 0; R < Num; ++R) {
    if (!X.event(R).isRead())
      continue;
    for (unsigned W = 0; W < Num; ++W) {
      if (!X.event(W).isWrite() || ThreadOf[R] != ThreadOf[W] ||
          PosOf[W] != PosOf[R] + 1 || X.event(R).Loc != X.event(W).Loc)
        continue;
      if (V.A == Arch::Cpp &&
          (!X.event(R).isAtomic() || !X.event(W).isAtomic()))
        continue;
      Pairs.push_back({R, W});
    }
  }
  chooseRmwPairs(Pairs, 0, EventSet());
}

void BaseSearch::chooseRmwPairs(
    const std::vector<std::pair<EventId, EventId>> &Pairs, unsigned From,
    EventSet Used) {
  if (Aborted)
    return;
  if (From == Pairs.size()) {
    chooseDeps();
    return;
  }
  // Skip this pair.
  chooseRmwPairs(Pairs, From + 1, Used);
  if (Aborted)
    return;
  auto [R, W] = Pairs[From];
  if (Used.contains(R) || Used.contains(W))
    return;
  X.Rmw.insert(R, W);
  EventSet NewUsed = Used;
  NewUsed.insert(R);
  NewUsed.insert(W);
  chooseRmwPairs(Pairs, From + 1, NewUsed);
  X.Rmw.erase(R, W);
}

void BaseSearch::chooseDeps() {
  std::vector<EventId> Reads;
  for (unsigned E = 0; E < Num; ++E)
    if (X.event(E).isRead())
      Reads.push_back(E);

  if (!V.Deps) {
    chooseRf(Reads, 0);
    return;
  }
  // addr/data choices per (read, po-later event) pair. A minimal test never
  // needs two dependency kinds on the same pair (removing one would leave
  // the other), so a single choice per pair is complete for minimality.
  std::vector<std::pair<EventId, EventId>> Pairs;
  for (EventId R : Reads)
    for (unsigned E = 0; E < Num; ++E)
      if (X.Po.contains(R, E) && X.event(E).isMemoryAccess())
        Pairs.push_back({R, E});
  chooseDepPair(Pairs, 0, Reads);
}

void BaseSearch::chooseDepPair(
    const std::vector<std::pair<EventId, EventId>> &Pairs, unsigned Idx,
    const std::vector<EventId> &Reads) {
  if (Aborted)
    return;
  if (Idx == Pairs.size()) {
    chooseCtrl(Reads, 0);
    return;
  }
  auto [R, E] = Pairs[Idx];
  // No dependency on this pair.
  chooseDepPair(Pairs, Idx + 1, Reads);
  if (Aborted)
    return;
  // Address dependency (to any access).
  X.Addr.insert(R, E);
  chooseDepPair(Pairs, Idx + 1, Reads);
  X.Addr.erase(R, E);
  if (Aborted)
    return;
  // Data dependency (to writes only).
  if (X.event(E).isWrite()) {
    X.Data.insert(R, E);
    chooseDepPair(Pairs, Idx + 1, Reads);
    X.Data.erase(R, E);
  }
}

void BaseSearch::chooseCtrl(const std::vector<EventId> &Reads, unsigned Idx) {
  if (Aborted)
    return;
  if (Idx == Reads.size()) {
    chooseRf(Reads, 0);
    return;
  }
  EventId R = Reads[Idx];
  // No control dependency from R.
  chooseCtrl(Reads, Idx + 1);
  if (Aborted)
    return;
  // Branch after R at suffix start S: ctrl edges to events at PosOf >= S.
  unsigned T = ThreadOf[R];
  for (unsigned S = PosOf[R] + 1; S < ThreadSize[T]; ++S) {
    for (unsigned E = 0; E < Num; ++E)
      if (ThreadOf[E] == T && PosOf[E] >= S)
        X.Ctrl.insert(R, E);
    chooseCtrl(Reads, Idx + 1);
    for (unsigned E = 0; E < Num; ++E)
      if (ThreadOf[E] == T && PosOf[E] >= S)
        X.Ctrl.erase(R, E);
    if (Aborted)
      return;
  }
}

void BaseSearch::chooseRf(const std::vector<EventId> &Reads, unsigned Idx) {
  if (Aborted)
    return;
  if (Idx == Reads.size()) {
    chooseCo(0);
    return;
  }
  EventId R = Reads[Idx];
  // Initial value: no incoming rf.
  chooseRf(Reads, Idx + 1);
  if (Aborted)
    return;
  for (unsigned W = 0; W < Num; ++W) {
    if (!X.event(W).isWrite() || X.event(W).Loc != X.event(R).Loc)
      continue;
    X.Rf.insert(W, R);
    chooseRf(Reads, Idx + 1);
    X.Rf.erase(W, R);
    if (Aborted)
      return;
  }
}

void BaseSearch::chooseCo(unsigned Loc) {
  if (Aborted)
    return;
  unsigned NumLocs = X.numLocations();
  if (Loc == NumLocs) {
    emit();
    return;
  }
  std::vector<EventId> Ws;
  for (unsigned E = 0; E < Num; ++E)
    if (X.event(E).isWrite() && X.event(E).Loc == static_cast<LocId>(Loc))
      Ws.push_back(E);
  if (Ws.size() <= 1) {
    chooseCo(Loc + 1);
    return;
  }
  std::vector<EventId> Perm = Ws;
  do {
    for (unsigned I = 0; I < Perm.size(); ++I)
      for (unsigned J = 0; J < Perm.size(); ++J)
        if (I < J)
          X.Co.insert(Perm[I], Perm[J]);
        else if (I != J)
          X.Co.erase(Perm[I], Perm[J]);
    chooseCo(Loc + 1);
    if (Aborted)
      break;
  } while (std::next_permutation(Perm.begin(), Perm.end()));
  for (EventId A : Ws)
    for (EventId B : Ws)
      if (A != B)
        X.Co.erase(A, B);
}

void BaseSearch::emit() {
  assert(X.checkWellFormed() == nullptr && "enumerated ill-formed base");
  if (!Sink(X))
    Aborted = true;
}

/// DFS over transaction placements: disjoint contiguous intervals per
/// thread.
struct TxnSearch {
  const Vocabulary &V;
  Execution &X;
  const std::function<bool(Execution &)> &Sink;
  std::vector<std::vector<EventId>> ThreadEvents;
  int NextClass = 0;
  bool Aborted = false;

  TxnSearch(const Vocabulary &V, Execution &X,
            const std::function<bool(Execution &)> &Sink)
      : V(V), X(X), Sink(Sink) {
    ThreadEvents.resize(X.numThreads());
    for (unsigned E = 0; E < X.size(); ++E)
      ThreadEvents[X.event(E).Thread].push_back(E);
    for (auto &Es : ThreadEvents)
      std::sort(Es.begin(), Es.end(), [&](EventId A, EventId B) {
        return X.Po.contains(A, B);
      });
  }

  /// True when an atomic{} transaction may cover [From, To) of thread T:
  /// atomic transactions cannot contain atomic operations (§7).
  bool atomicAllowed(unsigned T, unsigned From, unsigned To) const {
    for (unsigned P = From; P < To; ++P)
      if (X.event(ThreadEvents[T][P]).isAtomic())
        return false;
    return true;
  }

  void place(unsigned T, unsigned Pos) {
    if (Aborted)
      return;
    if (T == ThreadEvents.size()) {
      if (NextClass > 0) {
        assert(X.checkWellFormed() == nullptr && "bad txn placement");
        if (!Sink(X))
          Aborted = true;
      }
      return;
    }
    if (Pos >= ThreadEvents[T].size()) {
      place(T + 1, 0);
      return;
    }
    // No transaction starting here.
    place(T, Pos + 1);
    if (Aborted)
      return;
    // A transaction covering positions [Pos, End).
    for (unsigned End = Pos + 1; End <= ThreadEvents[T].size(); ++End) {
      int Class = NextClass++;
      for (unsigned P = Pos; P < End; ++P)
        X.Txn[ThreadEvents[T][P]] = Class;
      place(T, End);
      if (!Aborted && V.AtomicTxns && atomicAllowed(T, Pos, End)) {
        X.AtomicTxns |= uint32_t(1) << Class;
        place(T, End);
        X.AtomicTxns &= ~(uint32_t(1) << Class);
      }
      for (unsigned P = Pos; P < End; ++P)
        X.Txn[ThreadEvents[T][P]] = kNoClass;
      --NextClass;
      if (Aborted)
        return;
    }
  }
};

} // namespace

bool ExecutionEnumerator::forEachBase(
    const std::function<bool(Execution &)> &F) const {
  BaseSearch S(Vocab, Num, F);
  S.run();
  return !S.Aborted;
}

bool ExecutionEnumerator::forEachBaseSharded(
    unsigned Shard, unsigned NumShards,
    const std::function<bool(Execution &)> &F) const {
  assert(NumShards > 0 && Shard < NumShards && "bad shard index");
  BaseSearch S(Vocab, Num, F);
  S.Shard = Shard;
  S.NumShards = NumShards;
  S.run();
  return !S.Aborted;
}

void ExecutionEnumerator::forEachSkeleton(
    const std::function<void(const std::vector<unsigned> &)> &F) const {
  forEachSkeletonImpl(Num, Vocab.MaxThreads,
                      [&](const std::vector<unsigned> &Sizes) {
    F(Sizes);
    return true;
  });
}

std::vector<BasePrefix>
ExecutionEnumerator::expandPrefix(const BasePrefix &P) const {
  std::vector<BasePrefix> Children;
  unsigned K = static_cast<unsigned>(P.Labels.size());
  if (K >= Num)
    return Children;
  std::function<bool(Execution &)> NoSink = [](Execution &) { return true; };
  BaseSearch S(Vocab, Num, NoSink);
  S.materializeSkeleton(P.Sizes);
  unsigned LocsUsed = S.applyLabels(P);
  S.forEachLabelChoice(K, LocsUsed, [&](const Event &Ev, unsigned) {
    BasePrefix C = P;
    C.Labels.push_back(Ev);
    Children.push_back(std::move(C));
    return true;
  });
  return Children;
}

double ExecutionEnumerator::estimateCost(const BasePrefix &P) const {
  unsigned FenceChoices = 0;
  for (FenceKind FK : Vocab.Fences)
    FenceChoices += FK == FenceKind::CppFence
                        ? static_cast<unsigned>(Vocab.FenceOrders.size())
                        : 1;
  unsigned AccessChoices =
      Vocab.MaxLocations * static_cast<unsigned>(Vocab.ReadOrders.size() +
                                                 Vocab.WriteOrders.size());
  double Cost = 1;
  unsigned E = 0;
  for (unsigned T = 0; T < P.Sizes.size(); ++T)
    for (unsigned Pos = 0; Pos < P.Sizes[T]; ++Pos, ++E) {
      if (E < P.Labels.size())
        continue; // already decided
      bool Interior = Pos > 0 && Pos + 1 < P.Sizes[T];
      Cost *= AccessChoices + (Interior ? FenceChoices : 0);
    }
  return Cost;
}

bool ExecutionEnumerator::forEachBasePrefixed(
    const BasePrefix &P, const std::function<bool(Execution &)> &F) const {
  assert(!P.Sizes.empty() && P.Labels.size() <= Num && "malformed prefix");
  BaseSearch S(Vocab, Num, F);
  S.runPrefixed(P);
  return !S.Aborted;
}

bool ExecutionEnumerator::forEachTxnPlacement(
    Execution &X, const std::function<bool(Execution &)> &F) const {
  TxnSearch S(Vocab, X, F);
  S.place(0, 0);
  return !S.Aborted;
}
