//===- ModelRegistry.cpp - String-addressable model construction -------------==//

#include "models/ModelRegistry.h"

#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

// The hardware-substitute wrappers live one layer up (hw/); everything is
// one static library and the include is acyclic, so the registry can
// resolve their spec tokens directly rather than through a fragile
// static-initialisation hook.
#include "hw/ImplModel.h"

#include <cctype>

using namespace tmw;

namespace {

constexpr Arch kAllArchs[] = {Arch::SC,    Arch::TSC,   Arch::X86,
                              Arch::Power, Arch::Armv8, Arch::Cpp};

constexpr const char *kWrapperSpecs[] = {"power8", "armv8-silicon",
                                         "armv8-rtl"};

bool equalsIgnoreCase(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

/// Case-insensitive axiom lookup (spec strings are user input; the table
/// names keep the paper's capitalisation).
int findAxiomSpec(AxiomList Axioms, std::string_view Name) {
  for (unsigned I = 0; I < Axioms.size(); ++I)
    if (equalsIgnoreCase(Axioms[I].Name, Name))
      return static_cast<int>(I);
  return -1;
}

std::string axiomNamesOf(const MemoryModel &M) {
  std::string Names;
  for (const Axiom &Ax : M.axioms()) {
    if (!Names.empty())
      Names += ", ";
    Names += Ax.Name;
  }
  return Names;
}

/// Resolve a wrapper base token (named preset or "<arch>-impl"), or
/// nullptr when \p Token is not a wrapper spec.
std::unique_ptr<MemoryModel> makeWrapper(std::string_view Token) {
  if (equalsIgnoreCase(Token, "power8"))
    return std::make_unique<ImplModel>(ImplModel::power8());
  if (equalsIgnoreCase(Token, "armv8-silicon") ||
      equalsIgnoreCase(Token, "arm-silicon"))
    return std::make_unique<ImplModel>(ImplModel::armv8Silicon());
  if (equalsIgnoreCase(Token, "armv8-rtl") ||
      equalsIgnoreCase(Token, "armv8-buggy-rtl"))
    return std::make_unique<ImplModel>(ImplModel::armv8BuggyRtl());
  constexpr std::string_view Suffix = "-impl";
  if (Token.size() > Suffix.size() &&
      equalsIgnoreCase(Token.substr(Token.size() - Suffix.size()), Suffix))
    if (std::optional<Arch> A = ModelRegistry::parseArch(
            Token.substr(0, Token.size() - Suffix.size())))
      return std::make_unique<ImplModel>(ImplModel::implFor(*A));
  return nullptr;
}

} // namespace

std::span<const Arch> ModelRegistry::allArchs() { return kAllArchs; }

std::span<const char *const> ModelRegistry::wrapperSpecs() {
  return kWrapperSpecs;
}

const char *ModelRegistry::archSpecName(Arch A) {
  switch (A) {
  case Arch::SC:
    return "sc";
  case Arch::TSC:
    return "tsc";
  case Arch::X86:
    return "x86";
  case Arch::Power:
    return "power";
  case Arch::Armv8:
    return "armv8";
  case Arch::Cpp:
    return "cpp";
  }
  return "?";
}

std::optional<Arch> ModelRegistry::parseArch(std::string_view Token) {
  for (Arch A : kAllArchs)
    if (equalsIgnoreCase(Token, archSpecName(A)) ||
        equalsIgnoreCase(Token, archName(A)))
      return A;
  if (equalsIgnoreCase(Token, "arm") || equalsIgnoreCase(Token, "aarch64"))
    return Arch::Armv8;
  if (equalsIgnoreCase(Token, "c++"))
    return Arch::Cpp;
  return std::nullopt;
}

std::unique_ptr<MemoryModel> ModelRegistry::make(Arch A) {
  switch (A) {
  case Arch::SC:
    return std::make_unique<ScModel>();
  case Arch::TSC:
    return std::make_unique<TscModel>();
  case Arch::X86:
    return std::make_unique<X86Model>();
  case Arch::Power:
    return std::make_unique<PowerModel>();
  case Arch::Armv8:
    return std::make_unique<Armv8Model>();
  case Arch::Cpp:
    return std::make_unique<CppModel>();
  }
  return nullptr;
}

std::unique_ptr<MemoryModel> ModelRegistry::parse(std::string_view Spec,
                                                  std::string *Error) {
  auto Fail = [&](std::string Message) -> std::unique_ptr<MemoryModel> {
    if (Error)
      *Error = std::move(Message);
    return nullptr;
  };

  std::string_view BaseToken = Spec.substr(0, Spec.find('/'));
  std::unique_ptr<MemoryModel> M;
  if (std::optional<Arch> A = parseArch(BaseToken))
    M = make(*A);
  else
    M = makeWrapper(BaseToken);
  if (!M) {
    std::string Bases;
    for (Arch Known : kAllArchs) {
      if (!Bases.empty())
        Bases += ", ";
      Bases += archSpecName(Known);
    }
    for (const char *W : kWrapperSpecs) {
      Bases += ", ";
      Bases += W;
    }
    return Fail("unknown model '" + std::string(BaseToken) +
                "' (expected one of: " + Bases + ", or <arch>-impl)");
  }

  std::string_view Rest =
      BaseToken.size() == Spec.size() ? std::string_view()
                                      : Spec.substr(BaseToken.size() + 1);
  while (!Rest.empty()) {
    std::string_view Mod = Rest.substr(0, Rest.find('/'));
    Rest = Mod.size() == Rest.size() ? std::string_view()
                                     : Rest.substr(Mod.size() + 1);
    if (Mod.empty())
      continue;
    if (equalsIgnoreCase(Mod, "+baseline") ||
        equalsIgnoreCase(Mod, "baseline")) {
      M->setAxiomMask(baselineMask(M->axioms()));
      continue;
    }
    if (equalsIgnoreCase(Mod, "+all") || equalsIgnoreCase(Mod, "all")) {
      M->setAxiomMask(AxiomMask::all());
      continue;
    }
    bool Enable = Mod.front() == '+';
    if (Mod.front() != '+' && Mod.front() != '-')
      return Fail("bad modifier '" + std::string(Mod) +
                  "' (expected +baseline, +all, +name, or -name)");
    std::string_view Name = Mod.substr(1);
    int I = findAxiomSpec(M->axioms(), Name);
    if (I < 0)
      return Fail("unknown axiom '" + std::string(Name) + "' for " +
                  std::string(BaseToken) +
                  " (axioms: " + axiomNamesOf(*M) + ")");
    AxiomMask Mask = M->axiomMask();
    Mask.set(static_cast<unsigned>(I), Enable);
    M->setAxiomMask(Mask);
  }
  if (Error)
    Error->clear();
  return M;
}

std::string ModelRegistry::print(const MemoryModel &M) {
  if (const auto *Impl = dynamic_cast<const ImplModel *>(&M)) {
    // Wrapper rendering: the wrapper's own spec token, then the state of
    // every axiom that differs from that token's default configuration
    // (so "armv8-rtl" stays "armv8-rtl", not a pile of ablations).
    const char *Token = Impl->specToken();
    std::string Spec =
        Token ? Token
              : std::string(archSpecName(M.arch())) + "-impl";
    std::unique_ptr<MemoryModel> Default = parse(Spec);
    AxiomList Axioms = M.axioms();
    unsigned N = static_cast<unsigned>(Axioms.size());
    AxiomMask Mask = M.axiomMask().normalized(N);
    AxiomMask Base = Default->axiomMask().normalized(N);
    for (unsigned I = 0; I < N; ++I)
      if (Mask.test(I) != Base.test(I)) {
        Spec += Mask.test(I) ? "/+" : "/-";
        Spec += Axioms[I].Name;
      }
    return Spec;
  }

  std::string Spec = archSpecName(M.arch());
  AxiomList Axioms = M.axioms();
  unsigned N = static_cast<unsigned>(Axioms.size());
  AxiomMask Mask = M.axiomMask().normalized(N);
  if (Mask == AxiomMask::all().normalized(N))
    return Spec;
  if (Mask == baselineMask(Axioms).normalized(N))
    return Spec + "/+baseline";
  for (unsigned I = 0; I < N; ++I)
    if (!Mask.test(I)) {
      Spec += "/-";
      Spec += Axioms[I].Name;
    }
  return Spec;
}

bool ModelRegistry::splitSpecList(std::string_view List,
                                  std::vector<std::string> &Out,
                                  std::string *Error) {
  size_t Seg = 0;
  for (size_t P = 0;; ++P) {
    if (P != List.size() && List[P] != ',')
      continue;
    if (P == Seg) {
      if (Error)
        *Error = "empty spec in list";
      return false;
    }
    Out.emplace_back(List.substr(Seg, P - Seg));
    if (P == List.size())
      return true;
    Seg = P + 1;
  }
}
