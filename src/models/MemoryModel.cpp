//===- MemoryModel.cpp - Axiomatic consistency predicates -------------------==//
///
/// The generic axiom-check engine: every model is evaluated by the same
/// loop over its declarative axiom list.
///
//===----------------------------------------------------------------------===//

#include "models/MemoryModel.h"

using namespace tmw;

const char *tmw::axiomKindName(AxiomKind K) {
  switch (K) {
  case AxiomKind::Acyclic:
    return "acyclic";
  case AxiomKind::Irreflexive:
    return "irreflexive";
  case AxiomKind::Empty:
    return "empty";
  }
  return "?";
}

int tmw::findAxiom(AxiomList Axioms, std::string_view Name) {
  for (unsigned I = 0; I < Axioms.size(); ++I)
    if (Axioms[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

AxiomMask tmw::baselineMask(AxiomList Axioms) {
  AxiomMask M = AxiomMask::all();
  for (unsigned I = 0; I < Axioms.size(); ++I)
    if (Axioms[I].Tm)
      M.set(I, false);
  return M;
}

MemoryModel::~MemoryModel() = default;

bool MemoryModel::setAxiomEnabled(std::string_view Name, bool On) {
  int I = findAxiom(axioms(), Name);
  if (I < 0)
    return false;
  Mask.set(static_cast<unsigned>(I), On);
  return true;
}

bool MemoryModel::axiomEnabled(std::string_view Name) const {
  int I = findAxiom(axioms(), Name);
  return I >= 0 && Mask.test(static_cast<unsigned>(I));
}

bool MemoryModel::anyTmEnabled() const {
  AxiomList Axs = axioms();
  for (unsigned I = 0; I < Axs.size(); ++I)
    if (Axs[I].Tm && Mask.test(I))
      return true;
  return false;
}

bool tmw::axiomHolds(AxiomKind K, const Relation &Term) {
  switch (K) {
  case AxiomKind::Acyclic:
    return Term.isAcyclic();
  case AxiomKind::Irreflexive:
    return Term.isIrreflexive();
  case AxiomKind::Empty:
    return Term.isEmpty();
  }
  return true;
}

namespace {

EventSet witnessOf(AxiomKind K, const Relation &Term) {
  switch (K) {
  case AxiomKind::Acyclic:
    return Term.findCycle();
  case AxiomKind::Irreflexive:
    return Term.reflexivePoints().first();
  case AxiomKind::Empty:
    return Term.field();
  }
  return {};
}

} // namespace

ConsistencyResult MemoryModel::check(const ExecutionAnalysis &A) const {
  AxiomList Axs = axioms();
  for (unsigned I = 0; I < Axs.size(); ++I) {
    const Axiom &Ax = Axs[I];
    if (Ax.Modifier || !Mask.test(I))
      continue;
    if (!axiomHolds(Ax.Kind, Ax.Term(A, Mask)))
      return ConsistencyResult::fail(Ax.Name);
  }
  return ConsistencyResult::ok();
}

CheckReport MemoryModel::checkAll(const ExecutionAnalysis &A) const {
  AxiomList Axs = axioms();
  CheckReport Report;
  Report.Verdicts.reserve(Axs.size());
  for (unsigned I = 0; I < Axs.size(); ++I) {
    const Axiom &Ax = Axs[I];
    AxiomVerdict V;
    V.Ax = &Ax;
    V.Enabled = Mask.test(I);
    if (V.Enabled && !Ax.Modifier) {
      Relation Term = Ax.Term(A, Mask);
      V.Holds = axiomHolds(Ax.Kind, Term);
      if (!V.Holds) {
        V.Witness = witnessOf(Ax.Kind, Term);
        if (Report.Consistent) {
          Report.Consistent = false;
          Report.FailedAxiom = Ax.Name;
        }
      }
    }
    Report.Verdicts.push_back(V);
  }
  return Report;
}

Relation tmw::terms::coherence(const ExecutionAnalysis &A, AxiomMask) {
  return A.poLoc() | A.com();
}

Relation tmw::terms::rmwIsolation(const ExecutionAnalysis &A, AxiomMask) {
  return A.rmw() & A.fre().compose(A.coe());
}

Relation tmw::terms::strongIsolation(const ExecutionAnalysis &A,
                                     AxiomMask) {
  return A.strongLiftComStxn();
}

Relation tmw::terms::tfence(const ExecutionAnalysis &A, AxiomMask) {
  return A.tfence();
}

Relation tmw::terms::txnCancelsRmw(const ExecutionAnalysis &A, AxiomMask) {
  return A.rmw() & A.tfence().transitiveClosure();
}

const char *tmw::archName(Arch A) {
  switch (A) {
  case Arch::SC:
    return "SC";
  case Arch::TSC:
    return "TSC";
  case Arch::X86:
    return "x86";
  case Arch::Power:
    return "Power";
  case Arch::Armv8:
    return "ARMv8";
  case Arch::Cpp:
    return "C++";
  }
  return "?";
}

bool tmw::holdsWeakIsolation(const ExecutionAnalysis &A) {
  return A.weakLiftComStxn().isAcyclic();
}

bool tmw::holdsStrongIsolation(const ExecutionAnalysis &A) {
  return A.strongLiftComStxn().isAcyclic();
}

bool tmw::holdsStrongIsolationAtomic(const ExecutionAnalysis &A) {
  return A.strongLiftComStxnAtomic().isAcyclic();
}
