//===- ImplModel.h - Axiomatic hardware substitutes -------------*- C++ -*-==//
///
/// \file
/// Axiomatic stand-ins for silicon. Real machines implement a strict
/// subset of their architecture: POWER8, for instance, has never exhibited
/// load-buffering (§5.3), and shipped cores are generally stronger than
/// the specification. `ImplModel` wraps an architecture model and layers
/// implementation conservatism on top — or, for the §6.2 experiment, a
/// deliberate *bug* (an ARMv8 "RTL prototype" violating TxnOrder), so the
/// Forbid suite can demonstrate its bug-finding power.
///
/// The wrapper is itself declarative: its axiom list is the wrapped
/// spec's list with a final `NoLoadBuffering(impl)` axiom appended
/// (acyclic(po u rf)), and its mask inherits the spec's configuration, so
/// the generic check engine evaluates implementation models like any
/// other.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_HW_IMPLMODEL_H
#define TMW_HW_IMPLMODEL_H

#include "models/Armv8Model.h"
#include "models/MemoryModel.h"
#include "models/PowerModel.h"

#include <memory>
#include <vector>

namespace tmw {

/// A hardware implementation as an axiomatic model: the behaviours the
/// simulated machine can exhibit.
class ImplModel : public MemoryModel {
public:
  /// Wrap \p Spec; when \p NoLoadBuffering, additionally require
  /// acyclic(po u rf) (LB shapes never occur, as on real Power/ARM parts).
  ImplModel(std::unique_ptr<MemoryModel> Spec, bool NoLoadBuffering,
            const char *Name);

  const char *name() const override { return Label; }
  Arch arch() const override { return Spec->arch(); }
  /// The spec's axioms plus the implementation axiom (spec indices — and
  /// hence mask bits — are preserved by appending).
  AxiomList axioms() const override { return Axioms; }

  /// A conservative POWER8-like machine: the Power+TM model with no load
  /// buffering.
  static ImplModel power8();
  /// A conservative ARMv8 part with the proposed TM extension.
  static ImplModel armv8Silicon();
  /// The §6.2 buggy RTL prototype: TxnOrder dropped, so lifted ob cycles
  /// between transactions slip through.
  static ImplModel armv8BuggyRtl();

private:
  std::unique_ptr<MemoryModel> Spec;
  std::vector<Axiom> Axioms;
  const char *Label;
};

} // namespace tmw

#endif // TMW_HW_IMPLMODEL_H
