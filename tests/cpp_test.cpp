//===- cpp_test.cpp - C++ (RC11) with transactions (Fig. 9, §7) ---------------==//

#include "TestGraphs.h"
#include "models/CppModel.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(CppTest, RelaxedStoreBufferingAllowed) {
  CppModel M;
  EXPECT_TRUE(M.consistent(shapes::storeBuffering(MemOrder::Relaxed)));
}

TEST(CppTest, SeqCstStoreBufferingForbidden) {
  CppModel M;
  ConsistencyResult R = M.check(shapes::storeBuffering(MemOrder::SeqCst));
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "SeqCst");
}

TEST(CppTest, ReleaseAcquireMessagePassingForbidden) {
  // Wy(rel) read by Ry(acq) synchronises: the stale Rx contradicts hb.
  CppModel M;
  EXPECT_FALSE(M.consistent(
      shapes::messagePassing(MemOrder::Release, MemOrder::Acquire)));
}

TEST(CppTest, RelaxedMessagePassingAllowed) {
  CppModel M;
  EXPECT_TRUE(M.consistent(
      shapes::messagePassing(MemOrder::Relaxed, MemOrder::Relaxed)));
}

TEST(CppTest, NoThinAirForbidsRelaxedLbCycle) {
  // RC11 forbids po u rf cycles outright.
  ExecutionBuilder B;
  EventId Rx = B.read(0, 0, MemOrder::Relaxed);
  EventId Wy = B.write(0, 1, MemOrder::Relaxed, 1);
  EventId Ry = B.read(1, 1, MemOrder::Relaxed);
  EventId Wx = B.write(1, 0, MemOrder::Relaxed, 1);
  B.rf(Wy, Ry);
  B.rf(Wx, Rx);
  CppModel M;
  ConsistencyResult R = M.check(B.build());
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "NoThinAir");
}

TEST(CppTest, CoherenceViaHbCom) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::Relaxed, 1);
  EventId W2 = B.write(0, 0, MemOrder::Relaxed, 2);
  EventId R = B.read(0, 0, MemOrder::Relaxed);
  B.rf(W1, R); // po-later read observes the po-earlier write: stale
  (void)W2;
  CppModel M;
  ConsistencyResult Res = M.check(B.build());
  EXPECT_FALSE(Res.Consistent);
  EXPECT_EQ(Res.FailedAxiom, "HbCom");
}

TEST(CppTest, ReleaseSequenceThroughRmw) {
  // W(rel) followed by a relaxed RMW; an acquire read of the RMW's write
  // still synchronises with the release write (release sequence).
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::Release, 1);
  EventId Ry = B.read(1, 1, MemOrder::Relaxed);
  EventId Wy2 = B.write(1, 1, MemOrder::Relaxed, 2);
  B.rmw(Ry, Wy2);
  B.rf(Wy, Ry);
  EventId Ry2 = B.read(2, 1, MemOrder::Acquire);
  B.rf(Wy2, Ry2);
  EventId Rx = B.read(2, 0); // must see Wx
  (void)Rx;                  // reads initial x: forbidden
  B.rf(Wy, Ry);
  (void)Wx;
  CppModel M;
  EXPECT_FALSE(M.consistent(B.build()));
}

TEST(CppTest, RaceDetection) {
  // Two unordered non-atomic accesses to x race.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  CppModel M;
  Execution X = B.build();
  EXPECT_TRUE(M.consistent(X));
  EXPECT_FALSE(M.raceFree(X));
}

TEST(CppTest, SynchronisedAccessesDoNotRace) {
  CppModel M;
  // MP with rel/acq and the reader actually seeing the data.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::Release, 1);
  EventId Ry = B.read(1, 1, MemOrder::Acquire);
  EventId Rx = B.read(1, 0);
  B.rf(Wy, Ry);
  B.rf(Wx, Rx);
  Execution X = B.build();
  EXPECT_TRUE(M.consistent(X));
  EXPECT_TRUE(M.raceFree(X));
}

TEST(CppTest, AtomicAccessesNeverRace) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::Relaxed, 1);
  B.read(1, 0, MemOrder::Relaxed);
  CppModel M;
  EXPECT_TRUE(M.raceFree(B.build()));
}

//===----------------------------------------------------------------------===
// TM extension (§7.2).
//===----------------------------------------------------------------------===

TEST(CppTmTest, TransactionalMessagePassingForbidden) {
  // Conflicting transactions synchronise in ecom order (tsw): seeing the
  // transaction's y but stale x is forbidden.
  Execution X = shapes::dongolComparison();
  CppModel M;
  ConsistencyResult R = M.check(X);
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "HbCom");

  // Without tsw (the baseline C++ model) the shape is allowed — and racy.
  CppModel Baseline{CppModel::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
}

TEST(CppTmTest, TswMakesTransactionsRaceFree) {
  // Conflicting transactions are ordered by tsw, so their non-atomic
  // contents do not race.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0);
  B.rf(Wx, Rx);
  B.txn({Wx});
  B.txn({Rx});
  Execution X = B.build();
  CppModel M;
  EXPECT_TRUE(M.consistent(X));
  EXPECT_TRUE(M.raceFree(X));
  // Remove the transactions: immediately racy.
  CppModel Baseline{CppModel::Config::baseline()};
  EXPECT_FALSE(Baseline.raceFree(X));
}

TEST(CppTmTest, TransactionVsAtomicStoreIsRacy) {
  // §7.2: atomic{ x=1; } vs atomic_store(&x, 2) is racy — the definition
  // of race is unchanged by TM.
  ExecutionBuilder B;
  EventId Wt = B.write(0, 0, MemOrder::NonAtomic, 1); // inside atomic{}
  EventId Wa = B.write(1, 0, MemOrder::SeqCst, 2);    // atomic store
  B.txn({Wt}, /*Atomic=*/true);
  (void)Wa;
  Execution X = B.build();
  CppModel M;
  EXPECT_TRUE(M.consistent(X));
  EXPECT_FALSE(M.raceFree(X));
}

TEST(CppTmTest, WeakIsolFollowsFromConsistency) {
  // §7.2: the WeakIsol axiom follows from the other C++ axioms — any
  // consistent execution satisfies it. Spot-check on the shapes used in
  // this file.
  CppModel M;
  for (const Execution &X :
       {shapes::storeBuffering(MemOrder::Relaxed),
        shapes::messagePassing(MemOrder::Relaxed, MemOrder::Relaxed),
        shapes::dongolComparison()}) {
    if (M.consistent(X)) {
      EXPECT_TRUE(holdsWeakIsolation(X));
    }
  }
}

TEST(CppTmTest, PscIncludesTransactionalSync) {
  // SC fences inside conflicting transactions still order via psc.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::SeqCst, 1);
  EventId Ry = B.read(0, 1, MemOrder::SeqCst);
  EventId Wy = B.write(1, 1, MemOrder::SeqCst, 1);
  EventId Rx = B.read(1, 0, MemOrder::SeqCst);
  (void)Ry;
  (void)Rx; // both read initial values: SB shape
  (void)Wx;
  (void)Wy;
  CppModel M;
  EXPECT_FALSE(M.consistent(B.build()));
}

} // namespace
