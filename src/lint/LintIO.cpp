//===- LintIO.cpp - Machine-readable lint reports -------------------------------==//

#include "lint/LintIO.h"

#include "query/Json.h"

#include <cinttypes>
#include <cstdio>

using namespace tmw;

namespace {

void appendUint(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void appendBool(std::string &Out, bool B) { Out += B ? "true" : "false"; }

void appendFinding(std::string &Out, const LintFinding &F) {
  Out += "{\"severity\": ";
  jsonAppendString(Out, lintSeverityName(F.Severity));
  Out += ", \"code\": ";
  jsonAppendString(Out, F.Code);
  Out += ", \"message\": ";
  jsonAppendString(Out, F.Message);
  Out += ", \"thread\": ";
  Out += std::to_string(F.Thread);
  Out += ", \"instruction\": ";
  Out += std::to_string(F.Instruction);
  Out += ", \"line\": ";
  appendUint(Out, F.Line);
  Out += '}';
}

void appendFacts(std::string &Out, const ProgramFacts &F) {
  Out += "{\"txn_free\": ";
  appendBool(Out, F.TxnFree);
  Out += ", \"rmw_free\": ";
  appendBool(Out, F.RmwFree);
  Out += ", \"lock_region_free\": ";
  appendBool(Out, F.LockRegionFree);
  Out += ", \"single_location\": ";
  appendBool(Out, F.SingleLocation);
  Out += ", \"atomic_only\": ";
  appendBool(Out, F.AtomicOnly);
  Out += ", \"fence_kinds\": [";
  bool First = true;
  for (unsigned K = 1; K <= static_cast<unsigned>(FenceKind::CppFence);
       ++K) {
    if (!(F.FenceKinds & (1u << K)))
      continue;
    if (!First)
      Out += ", ";
    First = false;
    jsonAppendString(Out, fenceKindName(static_cast<FenceKind>(K)));
  }
  Out += "], \"vocabulary\": ";
  appendUint(Out, F.Vocabulary);
  Out += '}';
}

} // namespace

std::string tmw::lintReportToJson(std::span<const LintedProgram> Programs) {
  uint64_t Errors = 0, Warnings = 0;
  std::string Out;
  Out += "{\"schema\": ";
  jsonAppendString(Out, kLintReportSchema);
  Out += ", \"programs\": [";
  bool FirstProg = true;
  for (const LintedProgram &LP : Programs) {
    uint64_t ProgErrors = 0, ProgWarnings = 0;
    for (const LintFinding &F : LP.Report.Findings)
      (F.Severity == LintSeverity::Error ? ProgErrors : ProgWarnings) += 1;
    Errors += ProgErrors;
    Warnings += ProgWarnings;
    if (!FirstProg)
      Out += ", ";
    FirstProg = false;
    Out += "{\"name\": ";
    jsonAppendString(Out, LP.Name);
    Out += ", \"errors\": ";
    appendUint(Out, ProgErrors);
    Out += ", \"warnings\": ";
    appendUint(Out, ProgWarnings);
    Out += ", \"facts\": ";
    appendFacts(Out, LP.Facts);
    Out += ", \"findings\": [";
    bool First = true;
    for (const LintFinding &F : LP.Report.Findings) {
      if (!First)
        Out += ", ";
      First = false;
      appendFinding(Out, F);
    }
    Out += "]}";
  }
  Out += "], \"errors\": ";
  appendUint(Out, Errors);
  Out += ", \"warnings\": ";
  appendUint(Out, Warnings);
  Out += ", \"clean\": ";
  appendBool(Out, Errors == 0 && Warnings == 0);
  Out += "}\n";
  return Out;
}

std::string tmw::lintFindingsToText(const LintedProgram &LP) {
  std::string Out;
  for (const LintFinding &F : LP.Report.Findings) {
    Out += LP.Name;
    Out += ':';
    Out += std::to_string(F.Line);
    Out += ": ";
    Out += lintSeverityName(F.Severity);
    Out += ": ";
    Out += F.Message;
    Out += " [";
    Out += F.Code;
    Out += "]\n";
  }
  return Out;
}
