//===- Parser.cpp - Parsing the litmus DSL --------------------------------------==//

#include "litmus/Parser.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

using namespace tmw;

namespace {

std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Toks;
  std::istringstream In(Line);
  std::string Tok;
  while (In >> Tok) {
    if (Tok[0] == '#')
      break;
    Toks.push_back(Tok);
  }
  return Toks;
}

bool parseInt(const std::string &S, int &Out) {
  char *End = nullptr;
  long V = strtol(S.c_str(), &End, 10);
  if (End == S.c_str() || *End != '\0')
    return false;
  Out = static_cast<int>(V);
  return true;
}

MemOrder parseOrder(const std::string &S, bool &Ok) {
  Ok = true;
  if (S == "na")
    return MemOrder::NonAtomic;
  if (S == "rlx")
    return MemOrder::Relaxed;
  if (S == "acq")
    return MemOrder::Acquire;
  if (S == "rel")
    return MemOrder::Release;
  if (S == "acqrel")
    return MemOrder::AcqRel;
  if (S == "sc")
    return MemOrder::SeqCst;
  Ok = false;
  return MemOrder::NonAtomic;
}

FenceKind parseFence(const std::string &S, bool &Ok) {
  Ok = true;
  if (S == "mfence")
    return FenceKind::MFence;
  if (S == "sync")
    return FenceKind::Sync;
  if (S == "lwsync")
    return FenceKind::LwSync;
  if (S == "isync")
    return FenceKind::ISync;
  if (S == "dmb")
    return FenceKind::Dmb;
  if (S == "dmb.ld")
    return FenceKind::DmbLd;
  if (S == "dmb.st")
    return FenceKind::DmbSt;
  if (S == "isb")
    return FenceKind::Isb;
  if (S == "fence")
    return FenceKind::CppFence;
  Ok = false;
  return FenceKind::None;
}

/// Parse trailing attributes (excl, addr:rN, data:rN, ctrl:rN, rmw:N).
bool parseAttrs(const std::vector<std::string> &Toks, size_t From,
                Instruction &I, std::string &Err) {
  for (size_t T = From; T < Toks.size(); ++T) {
    const std::string &A = Toks[T];
    if (A == "excl") {
      I.Exclusive = true;
      continue;
    }
    auto ParseRef = [&](const char *Prefix,
                        std::vector<unsigned> *Deps) -> bool {
      size_t Len = strlen(Prefix);
      if (A.compare(0, Len, Prefix) != 0)
        return false;
      int V;
      std::string Rest = A.substr(Len);
      if (!Rest.empty() && Rest[0] == 'r')
        Rest = Rest.substr(1);
      if (!parseInt(Rest, V) || V < 0) {
        Err = "bad dependency reference: " + A;
        return true;
      }
      if (Deps)
        Deps->push_back(static_cast<unsigned>(V));
      else
        I.RmwPartner = V;
      return true;
    };
    if (ParseRef("addr:", &I.AddrDeps) || ParseRef("data:", &I.DataDeps) ||
        ParseRef("ctrl:", &I.CtrlDeps) || ParseRef("rmw:", nullptr)) {
      if (!Err.empty())
        return false;
      continue;
    }
    Err = "unknown attribute: " + A;
    return false;
  }
  return true;
}

} // namespace

std::string ParseResult::diagnostic(std::string_view File) const {
  if (Error.empty())
    return {};
  std::string Out;
  if (!File.empty())
    Out.append(File).append(":");
  else
    Out += "line ";
  Out += std::to_string(ErrorLine);
  Out += ": ";
  Out += Error;
  return Out;
}

ParseResult tmw::parseProgram(std::string_view Text) {
  ParseResult Res;
  Program &P = Res.Prog;
  int CurThread = -1;
  unsigned LineNo = 0;

  std::string Line;
  auto Fail = [&](const std::string &Msg) {
    Res.Error = Msg;
    Res.ErrorLine = LineNo;
    return Res;
  };

  // Walk the lines of the view directly (no stream, no input copy): the
  // long-lived server parses sources straight out of wire buffers, and a
  // view keeps the parse allocation-proportional to one line.
  for (size_t Cursor = 0; Cursor < Text.size();) {
    size_t Nl = Text.find('\n', Cursor);
    if (Nl == std::string_view::npos) {
      Line.assign(Text.substr(Cursor));
      Cursor = Text.size();
    } else {
      Line.assign(Text.substr(Cursor, Nl - Cursor));
      Cursor = Nl + 1;
    }
    ++LineNo;
    std::vector<std::string> Toks = tokenize(Line);
    if (Toks.empty())
      continue;
    const std::string &Cmd = Toks[0];

    if (Cmd == "name") {
      if (Toks.size() < 2)
        return Fail("name requires an argument");
      P.Name = Toks[1];
      continue;
    }
    if (Cmd == "loc") {
      if (Toks.size() < 3)
        return Fail("loc requires a name and an initial value");
      int V;
      if (!parseInt(Toks[2], V))
        return Fail("bad initial value");
      LocId L = P.ensureLoc(Toks[1]);
      if (V != 0)
        P.InitialValues.push_back({L, V});
      continue;
    }
    if (Cmd == "thread") {
      int T;
      if (Toks.size() < 2 || !parseInt(Toks[1], T) || T < 0)
        return Fail("bad thread index");
      while (static_cast<int>(P.Threads.size()) <= T)
        P.Threads.emplace_back();
      while (P.SrcLines.size() < P.Threads.size())
        P.SrcLines.emplace_back();
      CurThread = T;
      continue;
    }
    if (Cmd == "post") {
      if (Toks.size() < 2)
        return Fail("incomplete postcondition");
      if (Toks[1] == "reg") {
        int T, V;
        if (Toks.size() < 5 || !parseInt(Toks[2], T))
          return Fail("post reg requires: thread, register, value");
        std::string Reg = Toks[3];
        if (!Reg.empty() && Reg[0] == 'r')
          Reg = Reg.substr(1);
        int RI;
        if (!parseInt(Reg, RI) || !parseInt(Toks[4], V))
          return Fail("bad post reg operands");
        P.RegPost.push_back({static_cast<unsigned>(T),
                             static_cast<unsigned>(RI), V});
        continue;
      }
      if (Toks[1] == "mem") {
        int V;
        if (Toks.size() < 4 || !parseInt(Toks[3], V))
          return Fail("post mem requires: location, value");
        P.MemPost.push_back({P.ensureLoc(Toks[2]), V});
        continue;
      }
      return Fail("unknown postcondition kind: " + Toks[1]);
    }

    // Everything else is an instruction inside the current thread.
    if (CurThread < 0)
      return Fail("instruction outside any thread");
    Instruction I;
    size_t AttrsFrom = 1;
    std::string AttrErr;

    if (Cmd == "load") {
      if (Toks.size() < 2)
        return Fail("load requires a location");
      I.K = Instruction::Kind::Load;
      I.Loc = P.ensureLoc(Toks[1]);
      AttrsFrom = 2;
      if (Toks.size() > 2) {
        bool Ok;
        MemOrder MO = parseOrder(Toks[2], Ok);
        if (Ok) {
          I.MO = MO;
          AttrsFrom = 3;
        }
      }
    } else if (Cmd == "store") {
      int V;
      if (Toks.size() < 3 || !parseInt(Toks[2], V))
        return Fail("store requires a location and a value");
      I.K = Instruction::Kind::Store;
      I.Loc = P.ensureLoc(Toks[1]);
      I.Value = V;
      AttrsFrom = 3;
      if (Toks.size() > 3) {
        bool Ok;
        MemOrder MO = parseOrder(Toks[3], Ok);
        if (Ok) {
          I.MO = MO;
          AttrsFrom = 4;
        }
      }
    } else if (Cmd == "fence") {
      if (Toks.size() < 2)
        return Fail("fence requires a flavour");
      bool Ok;
      I.K = Instruction::Kind::Fence;
      I.FK = parseFence(Toks[1], Ok);
      if (!Ok)
        return Fail("unknown fence flavour: " + Toks[1]);
      AttrsFrom = 2;
      if (I.FK == FenceKind::CppFence && Toks.size() > 2) {
        MemOrder MO = parseOrder(Toks[2], Ok);
        if (Ok) {
          I.MO = MO;
          AttrsFrom = 3;
        }
      }
    } else if (Cmd == "txbegin") {
      I.K = Instruction::Kind::TxBegin;
      if (Toks.size() > 1 && Toks[1] == "atomic") {
        I.TxnAtomic = true;
        AttrsFrom = 2;
      }
    } else if (Cmd == "txend") {
      I.K = Instruction::Kind::TxEnd;
    } else if (Cmd == "lock") {
      I.K = Instruction::Kind::Lock;
    } else if (Cmd == "unlock") {
      I.K = Instruction::Kind::Unlock;
    } else if (Cmd == "txlock") {
      I.K = Instruction::Kind::TxLock;
    } else if (Cmd == "txunlock") {
      I.K = Instruction::Kind::TxUnlock;
    } else {
      return Fail("unknown instruction: " + Cmd);
    }

    if (!parseAttrs(Toks, AttrsFrom, I, AttrErr))
      return Fail(AttrErr);
    P.Threads[CurThread].push_back(I);
    P.SrcLines[CurThread].push_back(LineNo);
  }

  return Res;
}
