//===- analysis_test.cpp - ExecutionAnalysis cross-checks ---------------------==//
///
/// The memoized analysis layer must be *observationally identical* to the
/// uncached `Execution` methods: for a corpus of enumerated executions,
/// every memoized derived relation equals its uncached counterpart, and
/// every model's verdict through a shared memoized analysis equals the
/// verdict through per-check and recompute-mode analyses. Also covers the
/// memoization/invalidation contract (weakLift/strongLift caching, cache
/// drop on copy and on reset) and the sharded enumeration partition.
///
//===----------------------------------------------------------------------===//

#include "TestGraphs.h"
#include "enumerate/Relaxation.h"
#include "hw/ImplModel.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"
#include "synth/Conformance.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace tmw;

namespace {

/// All transaction placements over all bases of \p V at \p NumEvents,
/// capped at \p Cap executions (placement-free bases included).
std::vector<Execution> corpus(const Vocabulary &V, unsigned NumEvents,
                              unsigned Cap) {
  std::vector<Execution> Out;
  ExecutionEnumerator Enum(V, NumEvents);
  Enum.forEachBase([&](Execution &Base) {
    Out.push_back(Base);
    if (Out.size() >= Cap)
      return false;
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      Out.push_back(X);
      return Out.size() < Cap;
    });
  });
  return Out;
}

TEST(AnalysisCrossCheck, DerivedRelationsMatchUncachedExecutionMethods) {
  for (Arch A : {Arch::X86, Arch::Cpp}) {
    for (const Execution &X :
         corpus(Vocabulary::forArch(A), 3, /*Cap=*/400)) {
      ExecutionAnalysis An(X);
      // Query some terms twice so both the compute and the memoized path
      // are compared.
      for (int Round = 0; Round < 2; ++Round) {
        EXPECT_EQ(An.sloc(), X.sloc());
        EXPECT_EQ(An.sameThread(), X.sameThread());
        EXPECT_EQ(An.poLoc(), X.poLoc());
        EXPECT_EQ(An.poImm(), X.poImm());
        EXPECT_EQ(An.fr(), X.fr());
        EXPECT_EQ(An.com(), X.com());
        EXPECT_EQ(An.ecom(), X.ecom());
        EXPECT_EQ(An.rfe(), X.rfe());
        EXPECT_EQ(An.rfi(), X.rfi());
        EXPECT_EQ(An.coe(), X.coe());
        EXPECT_EQ(An.coi(), X.coi());
        EXPECT_EQ(An.fre(), X.fre());
        EXPECT_EQ(An.fri(), X.fri());
        EXPECT_EQ(An.stxn(), X.stxn());
        EXPECT_EQ(An.stxnAtomic(), X.stxnAtomic());
        EXPECT_EQ(An.tfence(), X.tfence());
        EXPECT_EQ(An.scr(), X.scr());
        EXPECT_EQ(An.scrt(), X.scrt());
        EXPECT_EQ(An.reads(), X.reads());
        EXPECT_EQ(An.writes(), X.writes());
        EXPECT_EQ(An.accesses(), X.accesses());
        EXPECT_EQ(An.atomics(), X.atomics());
        EXPECT_EQ(An.transactional(), X.transactional());
        EXPECT_EQ(An.atomicTransactional(), X.atomicTransactional());
        for (FenceKind K : {FenceKind::MFence, FenceKind::Sync,
                            FenceKind::CppFence}) {
          EXPECT_EQ(An.fences(K), X.fences(K));
          EXPECT_EQ(An.fenceRel(K), X.fenceRel(K));
        }
        EXPECT_EQ(An.weakLiftComStxn(), weakLift(X.com(), X.stxn()));
        EXPECT_EQ(An.strongLiftComStxn(), strongLift(X.com(), X.stxn()));
        EXPECT_EQ(An.strongLiftComStxnAtomic(),
                  strongLift(X.com(), X.stxnAtomic()));
      }
    }
  }
}

TEST(AnalysisCrossCheck, VerdictsAgreeAcrossAllSixModels) {
  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  CppModel Cpp;
  const MemoryModel *Models[] = {&Sc, &Tsc, &X86, &Power, &Armv8, &Cpp};

  for (Arch A : {Arch::X86, Arch::Cpp}) {
    for (const Execution &X :
         corpus(Vocabulary::forArch(A), 3, /*Cap=*/400)) {
      // One memoized analysis shared across all six models...
      ExecutionAnalysis Shared(X);
      for (const MemoryModel *M : Models) {
        ConsistencyResult Cached = M->check(Shared);
        // ...versus a fresh per-check analysis (the compatibility path)...
        ConsistencyResult Fresh = M->check(X);
        // ...versus full per-access recomputation (the seed behaviour).
        ExecutionAnalysis Recomp(X, AnalysisCaching::Recompute);
        ConsistencyResult Uncached = M->check(Recomp);
        EXPECT_EQ(Cached.Consistent, Fresh.Consistent)
            << M->name() << "\n"
            << X.dump();
        EXPECT_EQ(Cached.Consistent, Uncached.Consistent)
            << M->name() << "\n"
            << X.dump();
        EXPECT_STREQ(Cached.FailedAxiom, Fresh.FailedAxiom) << M->name();
        EXPECT_STREQ(Cached.FailedAxiom, Uncached.FailedAxiom)
            << M->name();
      }
    }
  }
}

TEST(AnalysisCrossCheck, ArenaInvalidationMatchesFreshAnalyses) {
  // Mirror the sharded synthesis loop: one arena reset per base,
  // transaction-state invalidation per placement.
  X86Model Tm;
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator Enum(V, 3);
  unsigned Compared = 0;
  Execution First = shapes::storeBuffering();
  ExecutionAnalysis Arena(First);
  Enum.forEachBase([&](Execution &Base) {
    Arena.reset(Base);
    EXPECT_EQ(Tm.consistent(Arena), Tm.consistent(ExecutionAnalysis(Base)));
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      Arena.invalidateTransactionalState();
      EXPECT_EQ(Tm.consistent(Arena), Tm.consistent(ExecutionAnalysis(X)))
          << X.dump();
      return ++Compared < 500;
    });
  });
  EXPECT_GT(Compared, 100u);
}

TEST(AnalysisMemoization, LiftedIsolationTermsComputeOnce) {
  Execution X = shapes::storeBuffering();
  X.Txn[0] = 0;
  X.Txn[1] = 0;
  ExecutionAnalysis A(X);
  uint64_t Before = A.recomputeCount();
  const Relation &First = A.strongLiftComStxn();
  uint64_t AfterFirst = A.recomputeCount();
  EXPECT_GT(AfterFirst, Before); // computed com, stxn, and the lift
  const Relation &Second = A.strongLiftComStxn();
  EXPECT_EQ(A.recomputeCount(), AfterFirst); // memoized: no recompute
  EXPECT_EQ(First, Second);

  // weakLift reuses the memoized com/stxn: only the lift itself is new.
  A.weakLiftComStxn();
  EXPECT_EQ(A.recomputeCount(), AfterFirst + 1);
  A.weakLiftComStxn();
  EXPECT_EQ(A.recomputeCount(), AfterFirst + 1);

  // Recompute mode re-derives on every access.
  ExecutionAnalysis R(X, AnalysisCaching::Recompute);
  R.strongLiftComStxn();
  uint64_t N1 = R.recomputeCount();
  R.strongLiftComStxn();
  EXPECT_GT(R.recomputeCount(), N1);
  EXPECT_EQ(R.strongLiftComStxn(), A.strongLiftComStxn());
}

TEST(AnalysisMemoization, CopyInvalidatesCaches) {
  Execution X = shapes::messagePassing();
  ExecutionAnalysis A(X);
  A.com();
  A.fenceRel(FenceKind::MFence);
  ASSERT_GT(A.recomputeCount(), 0u);

  // The copy starts cold but re-derives identical results.
  ExecutionAnalysis B(A);
  EXPECT_EQ(B.recomputeCount(), 0u);
  EXPECT_EQ(B.com(), A.com());
  EXPECT_GT(B.recomputeCount(), 0u);

  ExecutionAnalysis C = A;
  (void)C;
  ExecutionAnalysis D(X);
  D = A;
  EXPECT_EQ(D.recomputeCount(), 0u);
  EXPECT_EQ(D.fr(), X.fr());
}

TEST(AnalysisMemoization, ResetRetargets) {
  Execution X = shapes::storeBuffering();
  Execution Y = shapes::messagePassing();
  ExecutionAnalysis A(X);
  EXPECT_EQ(A.com(), X.com());
  A.reset(Y);
  EXPECT_EQ(A.recomputeCount(), 0u);
  EXPECT_EQ(&A.execution(), &Y);
  EXPECT_EQ(A.com(), Y.com());
  EXPECT_EQ(A.rfe(), Y.rfe());
}

TEST(ShardedEnumeration, ShardsPartitionTheBaseSpace) {
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator Enum(V, 4);

  std::multiset<uint64_t> All;
  Enum.forEachBase([&](Execution &X) {
    All.insert(X.hash());
    return true;
  });
  ASSERT_FALSE(All.empty());

  for (unsigned NumShards : {2u, 3u, 7u}) {
    std::multiset<uint64_t> Sharded;
    for (unsigned S = 0; S < NumShards; ++S)
      Enum.forEachBaseSharded(S, NumShards, [&](Execution &X) {
        Sharded.insert(X.hash());
        return true;
      });
    EXPECT_EQ(Sharded, All) << NumShards << " shards";
  }
}

TEST(ShardedEnumeration, ParallelForbidSynthesisMatchesSequential) {
  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);

  ForbidSuite Seq = synthesizeForbid(Tm, Baseline, V, 4, 300.0, 1);
  ForbidSuite Par = synthesizeForbid(Tm, Baseline, V, 4, 300.0, 4);
  ASSERT_TRUE(Seq.Complete);
  ASSERT_TRUE(Par.Complete);
  EXPECT_EQ(Seq.BasesVisited, Par.BasesVisited);
  EXPECT_EQ(Seq.PlacementsVisited, Par.PlacementsVisited);

  std::set<uint64_t> SeqHashes, ParHashes;
  for (const Execution &X : Seq.Tests)
    SeqHashes.insert(canonicalHash(X));
  for (const Execution &X : Par.Tests)
    ParHashes.insert(canonicalHash(X));
  EXPECT_EQ(SeqHashes, ParHashes);
  EXPECT_EQ(Seq.Tests.size(), Par.Tests.size());
}

TEST(BuilderCapacity, SixtyFourEventExecutionIsLegal) {
  // Exactly kMaxEvents events must be accepted end-to-end — pins the
  // builder's capacity bound against off-by-one regressions.
  ExecutionBuilder B;
  for (unsigned T = 0; T < 4; ++T) {
    // Initial-value reads first, then the write: fr agrees with po.
    for (unsigned I = 1; I < kMaxEvents / 4; ++I)
      B.read(T, static_cast<LocId>(T));
    B.write(T, static_cast<LocId>(T), MemOrder::NonAtomic, 1);
  }
  Execution X = B.build();
  ASSERT_EQ(X.size(), kMaxEvents);
  EXPECT_EQ(X.checkWellFormed(), nullptr);
  ExecutionAnalysis A(X);
  EXPECT_EQ(A.com(), X.com());
  ScModel Sc;
  EXPECT_TRUE(Sc.consistent(A));
}

} // namespace
