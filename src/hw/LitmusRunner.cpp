//===- LitmusRunner.cpp - Running tests on simulated hardware -----------------==//

#include "hw/LitmusRunner.h"

#include "enumerate/Candidates.h"
#include "hw/TsoMachine.h"

#include <algorithm>
#include <random>

using namespace tmw;

namespace {

/// Weighted sampling: outcome 0 (typically the SC-like interleaving) is
/// hot; later outcomes are geometrically rarer, like weak behaviours on
/// real machines.
RunReport sampleHistogram(const Program &P,
                          const std::vector<Outcome> &Reachable,
                          uint64_t Runs, uint64_t Seed) {
  RunReport R;
  R.Runs = Runs;
  for (const Outcome &O : Reachable)
    R.Seen |= O.satisfies(P);
  if (Reachable.empty())
    return R;

  std::mt19937_64 Rng(Seed);
  std::vector<uint64_t> Counts(Reachable.size(), 0);
  std::vector<double> Weights(Reachable.size());
  for (unsigned I = 0; I < Reachable.size(); ++I)
    Weights[I] = 1.0 / static_cast<double>(1 + I * I);
  std::discrete_distribution<unsigned> Pick(Weights.begin(), Weights.end());
  for (uint64_t I = 0; I < Runs; ++I)
    ++Counts[Pick(Rng)];
  // Exhaustiveness guarantee: every reachable outcome appears at least
  // once in a long campaign.
  for (unsigned I = 0; I < Reachable.size(); ++I)
    if (Counts[I] == 0 && Runs >= Reachable.size())
      Counts[I] = 1;
  for (unsigned I = 0; I < Reachable.size(); ++I)
    R.Histogram.push_back({Reachable[I], Counts[I]});
  return R;
}

} // namespace

RunReport tmw::runOnTso(const Program &P, uint64_t Runs, uint64_t Seed) {
  TsoMachine M(P);
  return sampleHistogram(P, M.reachableOutcomes(), Runs, Seed);
}

bool tmw::observedForbiddenBehaviour(const Program &P,
                                     const MemoryModel &Spec,
                                     const std::vector<Outcome> &Observed) {
  std::vector<Candidate> Cands = enumerateCandidates(P);
  for (const Outcome &O : Observed) {
    if (!O.satisfies(P))
      continue;
    bool Explained = false;
    for (const Candidate &C : Cands)
      if (C.O == O && Spec.consistent(C.X)) {
        Explained = true;
        break;
      }
    if (!Explained)
      return true;
  }
  return false;
}

std::vector<Outcome> tmw::outcomesOf(const RunReport &R) {
  std::vector<Outcome> Out;
  for (const auto &[O, N] : R.Histogram)
    if (N > 0)
      Out.push_back(O);
  return Out;
}

RunReport tmw::runOnImpl(const Program &P, const MemoryModel &Impl,
                         uint64_t Runs, uint64_t Seed) {
  std::vector<Outcome> Reachable;
  for (const Candidate &C : enumerateCandidates(P))
    if (Impl.consistent(C.X))
      Reachable.push_back(C.O);
  std::sort(Reachable.begin(), Reachable.end());
  Reachable.erase(std::unique(Reachable.begin(), Reachable.end()),
                  Reachable.end());
  return sampleHistogram(P, Reachable, Runs, Seed);
}
