//===- table2_metatheory.cpp - Table 2 ------------------------------------------==//
///
/// Regenerates Table 2: bounded verification of monotonicity (§8.1),
/// compilation of C++ transactions to hardware (§8.2), and lock elision
/// (§8.3), with per-row event bounds, wall-clock time, and whether a
/// counterexample was found.
///
/// Expected shape (paper): monotonicity c'ex for Power/ARMv8 at 2 events,
/// none for x86/C++; compilation sound for all three targets; lock
/// elision c'ex on ARMv8 (quickly), none for x86 / ARMv8-fixed. The
/// paper's Power lock-elision row timed out unresolved (>48h, "U"); our
/// exhaustive small-bound search settles it either way and EXPERIMENTS.md
/// discusses the verdict.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "metatheory/Compilation.h"
#include "metatheory/LockElision.h"
#include "metatheory/Monotonicity.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

using namespace tmw;

int main() {
  bench::header("Table 2: metatheoretical results", "Table 2; §8");
  double Budget = bench::budgetSeconds(60.0);

  std::printf("%-14s %-14s %7s %9s %6s %9s\n", "Property", "Target",
              "Events", "Time(s)", "C'ex?", "Complete");

  // Monotonicity (§8.1).
  {
    struct Row {
      const char *Name;
      const MemoryModel *M;
      Arch A;
      unsigned N;
    };
    X86Model X86;
    PowerModel Power;
    Armv8Model Armv8;
    CppModel Cpp;
    Row Rows[] = {{"x86", &X86, Arch::X86, bench::maxEvents(4)},
                  {"Power", &Power, Arch::Power, 2},
                  {"ARMv8", &Armv8, Arch::Armv8, 2},
                  {"C++", &Cpp, Arch::Cpp, 3}};
    for (const Row &R : Rows) {
      Vocabulary V = Vocabulary::forArch(R.A);
      MonotonicityResult Res = checkMonotonicity(*R.M, V, R.N, Budget);
      std::printf("%-14s %-14s %7u %9.2f %6s %9s\n", "Monotonicity",
                  R.Name, R.N, Res.Seconds,
                  Res.CounterexampleFound ? "yes" : "no",
                  bench::yesNo(Res.Complete));
      if (Res.CounterexampleFound) {
        std::printf("  c'ex X (inconsistent):\n%s", Res.X.dump().c_str());
        std::printf("  c'ex Y (consistent, more stxn):\n%s",
                    Res.Y.dump().c_str());
      }
    }
  }

  // Compilation (§8.2).
  for (Arch A : {Arch::X86, Arch::Power, Arch::Armv8}) {
    unsigned N = bench::maxEvents(3);
    CompilationResult Res = checkCompilation(A, N, Budget);
    std::printf("%-14s C++/%-10s %7u %9.2f %6s %9s\n", "Compilation",
                archName(A), N, Res.Seconds,
                Res.CounterexampleFound ? "yes" : "no",
                bench::yesNo(Res.Complete));
  }

  // Lock elision (§8.3). Bounds follow Table 2: abstract executions up
  // to 7 events (L + body + U per thread).
  {
    X86Model X86Tm;
    X86Model X86Spec{X86Model::Config::baseline()};
    PowerModel PowerTm;
    PowerModel PowerSpec{PowerModel::Config::baseline()};
    Armv8Model ArmTm;
    Armv8Model ArmSpec{Armv8Model::Config::baseline()};
    struct Row {
      const char *Name;
      const MemoryModel *Tm, *Spec;
      Arch A;
      bool Fixed;
    };
    Row Rows[] = {{"x86", &X86Tm, &X86Spec, Arch::X86, false},
                  {"Power", &PowerTm, &PowerSpec, Arch::Power, false},
                  {"ARMv8", &ArmTm, &ArmSpec, Arch::Armv8, false},
                  {"ARMv8 (fixed)", &ArmTm, &ArmSpec, Arch::Armv8, true}};
    for (const Row &R : Rows) {
      ElisionResult Res =
          checkLockElision(*R.Tm, *R.Spec, R.A, R.Fixed, 7, Budget);
      std::printf("%-14s %-14s %7u %9.2f %6s %9s\n", "Lock elision",
                  R.Name, 7, Res.Seconds,
                  Res.CounterexampleFound ? "yes" : "no",
                  bench::yesNo(Res.Complete));
      if (Res.CounterexampleFound && R.A == Arch::Armv8)
        std::printf("  (ARMv8 c'ex = Example 1.1 / Fig. 10; see "
                    "bench/fig10_lock_elision for the full rendering)\n");
      if (Res.CounterexampleFound && R.A == Arch::Power)
        std::printf("  (paper row: >48h timeout, unresolved 'U'; our "
                    "exhaustive bound-9-concrete search finds a model-level "
                    "witness — see EXPERIMENTS.md)\n");
    }
  }

  std::printf("\nPaper: monotonicity c'ex Power/ARMv8 at 2 events (<1s), "
              "x86 6 events 20m none,\nC++ 6 events 91h none; compilation "
              "sound to all targets at 6 events;\nlock elision c'ex ARMv8 "
              "at 7 events in 63s, none for x86 (>48h) and ARMv8-fixed.\n");
  return 0;
}
