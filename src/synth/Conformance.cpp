//===- Conformance.cpp - Conformance-test synthesis ----------------------------==//

#include "synth/Conformance.h"

#include <chrono>
#include <unordered_set>

using namespace tmw;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

ForbidSuite tmw::synthesizeForbid(const MemoryModel &TmModel,
                                  const MemoryModel &Baseline,
                                  const Vocabulary &V, unsigned NumEvents,
                                  double BudgetSeconds) {
  ForbidSuite Suite;
  Suite.NumEvents = NumEvents;
  auto Start = std::chrono::steady_clock::now();
  std::unordered_set<uint64_t> Seen;

  ExecutionEnumerator Enum(V, NumEvents);
  bool Finished = Enum.forEachBase([&](Execution &Base) {
    ++Suite.BasesVisited;
    if ((Suite.BasesVisited & 0x3ff) == 0 &&
        secondsSince(Start) > BudgetSeconds)
      return false;
    // Forbid tests are consistent under the baseline; the baseline ignores
    // transactions, so this prunes before any placement is tried.
    if (!Baseline.consistent(Base))
      return true;
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      ++Suite.PlacementsVisited;
      if (TmModel.consistent(X))
        return true;
      if (!isMinimallyInconsistent(X, TmModel, V))
        return true;
      uint64_t H = canonicalHash(X);
      if (Seen.insert(H).second) {
        Suite.Tests.push_back(X);
        Suite.FoundAtSeconds.push_back(secondsSince(Start));
      }
      return true;
    });
  });

  Suite.Complete = Finished;
  Suite.SynthesisSeconds = secondsSince(Start);
  return Suite;
}

std::vector<Execution>
tmw::relaxationsOf(const std::vector<Execution> &Forbid,
                   const Vocabulary &V) {
  std::vector<Execution> Out;
  std::unordered_set<uint64_t> Seen;
  for (const Execution &X : Forbid)
    for (const Execution &Child : relaxOneStep(X, V))
      if (Seen.insert(canonicalHash(Child)).second)
        Out.push_back(Child);
  return Out;
}

std::vector<unsigned>
tmw::txnCountHistogram(const std::vector<Execution> &Tests) {
  std::vector<unsigned> Hist;
  for (const Execution &X : Tests) {
    unsigned N = X.numTxns();
    if (Hist.size() <= N)
      Hist.resize(N + 1, 0);
    ++Hist[N];
  }
  return Hist;
}
