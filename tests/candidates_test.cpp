//===- candidates_test.cpp - Candidate-execution enumeration (§2, §3.1) -------==//

#include "TestGraphs.h"
#include "enumerate/Candidates.h"
#include "litmus/FromExecution.h"
#include "litmus/Parser.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

Program sbProgram() {
  ParseResult R = parseProgram(R"(name SB
thread 0
  store x 1
  load y
thread 1
  store y 1
  load x
post reg 0 r1 0
post reg 1 r1 0
)");
  EXPECT_TRUE(static_cast<bool>(R)) << R.Error;
  return R.Prog;
}

TEST(CandidatesTest, SbHasFourRfCombinations) {
  // Each load reads its location's single store or the initial value.
  std::vector<Candidate> Cs = enumerateCandidates(sbProgram());
  EXPECT_EQ(Cs.size(), 4u);
  for (const Candidate &C : Cs)
    EXPECT_EQ(C.X.checkWellFormed(), nullptr);
}

TEST(CandidatesTest, OutcomesMatchRfChoices) {
  std::vector<Outcome> Outs;
  for (const Candidate &C : enumerateCandidates(sbProgram()))
    Outs.push_back(C.O);
  std::sort(Outs.begin(), Outs.end());
  // r-values: (0,0), (0,1), (1,0), (1,1).
  EXPECT_EQ(Outs.size(), 4u);
  EXPECT_NE(Outs[0], Outs[3]);
}

TEST(CandidatesTest, ScForbidsSbPostcondition) {
  ScModel Sc;
  EXPECT_FALSE(postconditionReachable(sbProgram(), Sc));
  X86Model X86;
  EXPECT_TRUE(postconditionReachable(sbProgram(), X86));
}

TEST(CandidatesTest, CoPermutationsEnumerated) {
  ParseResult R = parseProgram(R"(name 2W
thread 0
  store x 1
thread 1
  store x 2
)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  std::vector<Candidate> Cs = enumerateCandidates(R.Prog);
  EXPECT_EQ(Cs.size(), 2u); // two coherence orders
}

TEST(CandidatesTest, TransactionsSucceedOrVanish) {
  ParseResult R = parseProgram(R"(name T
loc ok 1
thread 0
  txbegin
  store x 1
  txend
thread 1
  load x
post mem ok 1
)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  std::vector<Candidate> Cs = enumerateCandidates(R.Prog);
  // Success: load reads init or the store (2 candidates, ok=1).
  // Failure: store vanishes, load reads init (1 candidate, ok=0).
  EXPECT_EQ(Cs.size(), 3u);
  unsigned Failed = 0;
  LocId Ok = R.Prog.locByName("ok");
  for (const Candidate &C : Cs) {
    if (C.O.MemValues[Ok] == 0) {
      ++Failed;
      EXPECT_TRUE(C.X.transactional().empty());
    }
  }
  EXPECT_EQ(Failed, 1u);
}

TEST(CandidatesTest, FailedTransactionCannotSatisfyOkPostcondition) {
  ParseResult R = parseProgram(R"(name T
loc ok 1
thread 0
  txbegin
  store x 1
  txend
thread 1
  load x
post mem ok 1
post reg 1 r0 1
)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  // The post requires the transactional store to be observed AND ok=1:
  // only the successful-transaction candidate qualifies.
  unsigned Matching = 0;
  for (const Candidate &C : enumerateCandidates(R.Prog))
    Matching += C.O.satisfies(R.Prog);
  EXPECT_EQ(Matching, 1u);
}

TEST(CandidatesTest, GeneratedTestRecoversItsExecution) {
  // Convert an execution to a litmus test; among that test's candidates,
  // exactly the intended one satisfies the postcondition (§2.2).
  Execution X = shapes::messagePassing();
  ExecutionToProgram Conv = programFromExecution(X, "mp");
  unsigned Matching = 0;
  for (const Candidate &C : enumerateCandidates(Conv.Prog))
    if (C.O.satisfies(Conv.Prog))
      ++Matching;
  EXPECT_EQ(Matching, 1u);
}

TEST(CandidatesTest, DependenciesReachCandidates) {
  Execution X = shapes::loadBuffering(true);
  ExecutionToProgram Conv = programFromExecution(X, "lb+deps");
  bool SawData = false;
  for (const Candidate &C : enumerateCandidates(Conv.Prog))
    SawData |= !C.X.Data.isEmpty();
  EXPECT_TRUE(SawData);
}

TEST(CandidatesTest, AllowedOutcomesDeduplicated) {
  ScModel Sc;
  std::vector<Outcome> Outs = allowedOutcomes(sbProgram(), Sc);
  // SC allows 3 of the 4 rf combinations (both-stale is forbidden).
  EXPECT_EQ(Outs.size(), 3u);
}

} // namespace
