//===- BenchUtil.h - Shared helpers for the experiment harnesses -*- C++ -*-==//
///
/// \file
/// Table formatting and environment-variable budget knobs shared by the
/// bench binaries. Each bench regenerates one table or figure of the
/// paper; `TMW_BENCH_BUDGET_SECONDS` and `TMW_BENCH_MAX_EVENTS` scale the
/// searches (defaults keep every binary under a couple of minutes, like
/// the paper's preliminary-results mode in §5.3).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_BENCH_BENCHUTIL_H
#define TMW_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tmw::bench {

inline double budgetSeconds(double Default) {
  if (const char *S = std::getenv("TMW_BENCH_BUDGET_SECONDS"))
    return std::atof(S);
  return Default;
}

inline unsigned maxEvents(unsigned Default) {
  if (const char *S = std::getenv("TMW_BENCH_MAX_EVENTS"))
    return static_cast<unsigned>(std::atoi(S));
  return Default;
}

inline void header(const char *Title, const char *PaperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", Title);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("================================================================\n");
}

inline const char *yesNo(bool B) { return B ? "yes" : "no"; }

} // namespace tmw::bench

#endif // TMW_BENCH_BENCHUTIL_H
