//===- power_ppo_test.cpp - The herding-cats Power ppo fixpoint ---------------==//
///
/// Directed tests of the preserved-program-order computation the paper
/// elides from Fig. 6 ("we elide the definition of ppo as it is complex"):
/// the ii/ic/ci/cc least fixpoint with its dd/rdw/detour/ctrl+isync seeds
/// (Alglave et al., TOPLAS 2014).
///
//===----------------------------------------------------------------------===//

#include "execution/Builder.h"
#include "models/PowerModel.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

Relation ppoOf(const Execution &X) {
  PowerModel M;
  return M.preservedProgramOrder(X);
}

TEST(PowerPpoTest, AddrDepOrdersReadRead) {
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0);
  EventId R2 = B.read(0, 1);
  B.addr(R1, R2);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  Execution X = B.build();
  EXPECT_TRUE(ppoOf(X).contains(R1, R2));
}

TEST(PowerPpoTest, DataDepOrdersReadWrite) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W = B.write(0, 1, MemOrder::NonAtomic, 1);
  B.data(R, W);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.read(1, 1);
  Execution X = B.build();
  EXPECT_TRUE(ppoOf(X).contains(R, W));
}

TEST(PowerPpoTest, PlainLoadsUnordered) {
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0);
  EventId R2 = B.read(0, 1);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  Execution X = B.build();
  EXPECT_FALSE(ppoOf(X).contains(R1, R2));
}

TEST(PowerPpoTest, CtrlAloneDoesNotOrderReadRead) {
  // A control dependency to a read can be speculated past; only
  // ctrl+isync restores read-read order.
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0);
  EventId R2 = B.read(0, 1);
  B.ctrl(R1, R2);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  Execution X = B.build();
  EXPECT_FALSE(ppoOf(X).contains(R1, R2));
}

TEST(PowerPpoTest, CtrlOrdersReadWrite) {
  // Stores are not speculated: ctrl to a write is preserved (cc0 -> ic).
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W = B.write(0, 1, MemOrder::NonAtomic, 1);
  B.ctrl(R, W);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.read(1, 1);
  Execution X = B.build();
  EXPECT_TRUE(ppoOf(X).contains(R, W));
}

TEST(PowerPpoTest, CtrlIsyncOrdersReadRead) {
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0);
  B.fence(0, FenceKind::ISync);
  EventId R2 = B.read(0, 1);
  B.ctrl(R1, 1); // branch before the isync, forward-closed
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  Execution X = B.build();
  EXPECT_TRUE(ppoOf(X).contains(R1, R2));
}

TEST(PowerPpoTest, IsyncWithoutCtrlDoesNotOrder) {
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0);
  B.fence(0, FenceKind::ISync);
  EventId R2 = B.read(0, 1);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  Execution X = B.build();
  EXPECT_FALSE(ppoOf(X).contains(R1, R2));
}

TEST(PowerPpoTest, RdwOrdersSameLocationReads) {
  // Read-different-writes: two same-location reads where the first reads
  // an older (external) write than the second (poloc & fre;rfe).
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0); // reads the initial value
  EventId R2 = B.read(0, 0); // reads the external write
  EventId W = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.rf(W, R2);
  Execution X = B.build();
  EXPECT_TRUE(ppoOf(X).contains(R1, R2));
}

TEST(PowerPpoTest, SameWriteReadsUnordered) {
  // Two reads of the same write are NOT ordered (the refinement rdw
  // makes over naive poloc).
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0);
  EventId R2 = B.read(0, 0);
  EventId W = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.rf(W, R1);
  B.rf(W, R2);
  Execution X = B.build();
  EXPECT_FALSE(ppoOf(X).contains(R1, R2));
}

TEST(PowerPpoTest, DetourParticipatesInPpoChains) {
  // detour = poloc & (coe ; rfe): a local write co-before an external
  // write that the later local read observes. The detour edge is
  // write-sourced, so it never appears in ppo directly (ppo's domain is
  // reads) — but it links chains: a read data-ordered before the write
  // becomes ppo-ordered before the detour's read via cc ; ci.
  ExecutionBuilder B;
  EventId R0 = B.read(0, 1);
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B.read(0, 0);
  B.data(R0, W1);
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
  B.write(1, 1, MemOrder::NonAtomic, 1); // make y shared
  B.co(W1, W2);
  B.rf(W2, R);
  Execution X = B.build();
  Relation Ppo = ppoOf(X);
  // The write-sourced edge itself is not ppo...
  EXPECT_FALSE(Ppo.contains(W1, R));
  // ...but the chain read -> write -> (detour) read is.
  EXPECT_TRUE(Ppo.contains(R0, R));
}

TEST(PowerPpoTest, ChainThroughDependencies) {
  // addr(R1 -> R2) ; data(R2 -> W): ppo orders R1 before W via ii;ic.
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0);
  EventId R2 = B.read(0, 1);
  EventId W = B.write(0, 2, MemOrder::NonAtomic, 1);
  B.addr(R1, R2);
  B.data(R2, W);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 2);
  Execution X = B.build();
  EXPECT_TRUE(ppoOf(X).contains(R1, W));
}

TEST(PowerPpoTest, PpoNeverStartsAtWrites) {
  // ppo = ii & RR | ic & RW: domains are reads only.
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B.read(0, 0);
  EventId W2 = B.write(0, 1, MemOrder::NonAtomic, 1);
  B.read(1, 1);
  (void)R;
  (void)W2;
  Execution X = B.build();
  Relation Ppo = ppoOf(X);
  EXPECT_TRUE(Ppo.successors(W1).empty());
  EXPECT_TRUE((Ppo.domain() - X.reads()).empty());
}

TEST(PowerPpoTest, MpWithAddrStillNeedsWriterBarrier) {
  // End-to-end: ppo on the reader alone does not forbid MP; the writer's
  // lwsync completes the cycle (tested at the model level).
  PowerModel M;
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(1, 1);
  EventId Rx = B.read(1, 0);
  B.rf(Wy, Ry);
  B.addr(Ry, Rx);
  EXPECT_TRUE(M.consistent(B.build()));
}

} // namespace
