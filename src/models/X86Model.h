//===- X86Model.h - x86-TSO with transactions -------------------*- C++ -*-==//
///
/// \file
/// The x86 memory model of Fig. 5: TSO happens-before (Alglave et al.) with
/// the paper's TM additions — implicit transaction fences (tfence), strong
/// isolation, and transaction ordering (TxnOrder). Each TM axiom is a named
/// entry of the declarative axiom table and can be toggled by name through
/// the `AxiomMask` API (or the `Config` shim below); the all-off
/// configuration is the non-transactional baseline used when synthesising
/// the Forbid suite.
///
/// Axioms: Coherence, RMWIsol, tfence (TM modifier), Order,
///         StrongIsol (TM), TxnOrder (TM).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_X86MODEL_H
#define TMW_MODELS_X86MODEL_H

#include "models/MemoryModel.h"

namespace tmw {

/// x86 (Fig. 5). Default configuration enables all TM axioms.
class X86Model : public MemoryModel {
public:
  /// Thin shim lowering onto the named-axiom mask (source compatibility
  /// with the pre-axiom-API per-model configs).
  struct Config {
    /// Implicit fences at transaction boundaries (Intel SDM §16.3.6).
    bool Tfence = true;
    /// acyclic(stronglift(com, stxn)) — strong isolation (§5.2).
    bool StrongIsol = true;
    /// acyclic(stronglift(hb, stxn)) — transaction atomicity (§5.2).
    bool TxnOrder = true;

    /// The non-transactional baseline (ignores stxn entirely).
    static Config baseline() { return {false, false, false}; }
  };

  X86Model() = default;
  explicit X86Model(Config C);

  const char *name() const override {
    return anyTmEnabled() ? "x86+TM" : "x86";
  }
  Arch arch() const override { return Arch::X86; }
  AxiomList axioms() const override;

  /// The happens-before relation of Fig. 5 under this configuration.
  Relation happensBefore(const ExecutionAnalysis &A) const;

  /// The current mask rendered as a `Config` (axioms the shim does not
  /// name are unaffected by it).
  Config config() const;
};

} // namespace tmw

#endif // TMW_MODELS_X86MODEL_H
