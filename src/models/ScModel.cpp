//===- ScModel.cpp - SC and Transactional SC --------------------------------==//

#include "models/ScModel.h"

using namespace tmw;

namespace {

Relation scHb(const ExecutionAnalysis &A, AxiomMask) {
  return A.po() | A.com();
}

Relation tscTxnOrder(const ExecutionAnalysis &A, AxiomMask M) {
  return strongLift(scHb(A, M), A.stxn());
}

// Salts declare the mask bits each term reads (Axiom.h): every SC/TSC
// term ignores the mask, so all salts are 0 and the eval plan shares the
// terms across every configuration — and across the two tables, which
// reference the same `scHb` function.
//
// Footprints: both terms keep the full footprint. `scHb` reads po/com
// (vocab::Base); `tscTxnOrder` is a strong lift, and `stronglift(r, ∅)`
// degenerates to `r` — on a transaction-free program TxnOrder still
// checks acyclic(po | com), so it must not be discharged as vacuous.
const Axiom ScAxioms[] = {
    {"Order", AxiomKind::Acyclic, scHb, /*Tm=*/false, /*Modifier=*/false,
     /*Salt=*/0, /*Footprint=*/~0u},
};

const Axiom TscAxioms[] = {
    {"Order", AxiomKind::Acyclic, scHb, /*Tm=*/false, /*Modifier=*/false,
     /*Salt=*/0, /*Footprint=*/~0u},
    {"TxnOrder", AxiomKind::Acyclic, tscTxnOrder, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/~0u},
};

} // namespace

AxiomList ScModel::axioms() const { return ScAxioms; }

AxiomList TscModel::axioms() const { return TscAxioms; }
