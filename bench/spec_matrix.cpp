//===- spec_matrix.cpp - Cross-spec plan scaling over spec-set size ------------==//
///
/// How does checking cost scale with the *number of specs per request*?
/// The independent path pays every spec's full axiom list per candidate;
/// the planned path (models/EvalPlan.h) hash-conses shared obligations
/// and short-circuits subsumed verdicts, so its marginal cost per added
/// spec falls as the set grows — ablations of a model the set already
/// contains are nearly free, and TSC/SC decide whole hardware columns.
///
/// This bench sweeps a 24-spec pool with the prefix property (each size
/// is a prefix of the next) over set sizes {1, 2, 6, 12, 24}, timing the
/// corpus under `EvalStrategy::Planned` vs `EvalStrategy::Independent`
/// and verifying the canonical response JSON is byte-identical at every
/// point and jobs count. `BENCH_spec_matrix.json` tracks checks/sec for
/// both paths per size; >=1.5x at 6 specs (growing with size) is the
/// regression bar. `--smoke` runs one rep per point for CI.
///
/// A second section measures *footprint specialization* (lint/Lint.h +
/// `EvalPlan::specialize`) on the txn-free corpus slice — the programs
/// where every Txn-footprint obligation (tfence, tprop1/2, TxnCancelsRMW,
/// Tsw, and the hierarchy-edge guards) is pre-discharged once per program
/// instead of evaluated per candidate. Planned+specialized vs
/// planned+unspecialized at the full 24-spec pool, byte-identity
/// verified, `specialization` object in the JSON.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "lint/Lint.h"
#include "litmus/Library.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

using namespace tmw;

namespace {

/// The spec pool: the paper's SC/TSC + hardware-TM spec lattice (the
/// "verdict matrix across many configurations" serving shape — the C++
/// model is exercised by the eval-plan tests instead, as a lone software
/// family it shares nothing and only measures itself). Prefix property:
/// the size-K point uses the first K entries, so every point's workload
/// is a superset of the previous one's. The first six form the
/// cross-arch core (shared terms across architectures, an ablation and a
/// wrapper of a model already present); later entries deepen the
/// ablation lattices until every family carries several masks.
const std::vector<const char *> Pool = {
    // 1..6: the cross-arch core.
    "tsc", "x86", "power", "armv8", "power/-TxnOrder", "power8",
    // 7..12: SC plus the first lattice and wrapper points.
    "sc", "power/-StrongIsol", "power/+baseline", "armv8-rtl",
    "x86/-TxnOrder", "armv8/-TxnOrder",
    // 13..24: the wide lattice — ablations, baselines, and NoLB
    // wrappers per hardware family.
    "armv8-silicon", "x86/-StrongIsol", "x86/+baseline",
    "armv8/-StrongIsol", "armv8/+baseline", "power/-thb", "power/-tprop1",
    "x86-impl", "power8/-TxnOrder", "tsc-impl", "sc/+baseline",
    "armv8-rtl/-TxnOrder"};

const std::vector<size_t> Sizes = {1, 2, 6, 12, 24};

std::vector<CheckRequest> makeRequests(const std::vector<CorpusEntry> &Corpus,
                                       size_t NumSpecs, unsigned Reps) {
  std::vector<CheckRequest> Requests;
  for (unsigned Rep = 0; Rep < Reps; ++Rep)
    for (const CorpusEntry &E : Corpus) {
      CheckRequest R;
      R.Corpus = E.Name;
      for (size_t S = 0; S < NumSpecs; ++S)
        R.ModelSpecs.push_back(Pool[S]);
      Requests.push_back(std::move(R));
    }
  return Requests;
}

struct Point {
  size_t Specs = 0;
  uint64_t Candidates = 0, Checks = 0;
  double PlannedSec = 0, IndependentSec = 0;
  uint64_t TermEvals = 0, TermHits = 0, SpecEvals = 0, SpecShortCircuits = 0;
};

} // namespace

int main(int argc, char **argv) {
  bench::header("Spec-set scaling: planned vs independent evaluation",
                "one verdict matrix per commit across many configurations");
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
  unsigned Jobs = bench::jobs(argc, argv, 4);
  const unsigned Reps = Smoke ? 1 : 16;     // batch replication (depth)
  const unsigned Timings = Smoke ? 1 : 5;   // min-of-N timing runs
  std::vector<CorpusEntry> Corpus = standardCorpus();

  std::vector<Point> Points;
  for (size_t NumSpecs : Sizes) {
    std::vector<CheckRequest> Requests = makeRequests(Corpus, NumSpecs, Reps);

    // Timed runs at the bench jobs count, min over `Timings` repetitions.
    Point P;
    P.Specs = NumSpecs;
    P.PlannedSec = P.IndependentSec = 1e18;
    std::vector<CheckResponse> Planned, Independent;
    for (unsigned T = 0; T < Timings; ++T) {
      BatchTelemetry TP;
      Planned = QueryEngine({.Jobs = Jobs, .Strategy = EvalStrategy::Planned})
                    .runAll(Requests, &TP);
      BatchTelemetry TI;
      Independent =
          QueryEngine({.Jobs = Jobs, .Strategy = EvalStrategy::Independent})
              .runAll(Requests, &TI);
      P.PlannedSec = std::min(P.PlannedSec, TP.Seconds);
      P.IndependentSec = std::min(P.IndependentSec, TI.Seconds);
      P.Candidates = TP.Candidates;
      P.Checks = TP.Checks;
      P.TermEvals = TP.Plan.TermEvals;
      P.TermHits = TP.Plan.TermHits;
      P.SpecEvals = TP.Plan.SpecEvals;
      P.SpecShortCircuits = TP.Plan.SpecShortCircuits;
    }

    // The plan must not change a byte of the canonical responses — at the
    // bench jobs count and single-threaded.
    std::string PlanJson = responsesToJson(Planned, nullptr);
    std::string IndepJson = responsesToJson(Independent, nullptr);
    std::vector<CheckResponse> Planned1 =
        QueryEngine({.Jobs = 1, .Strategy = EvalStrategy::Planned})
            .runAll(Requests);
    std::vector<CheckResponse> Independent1 =
        QueryEngine({.Jobs = 1, .Strategy = EvalStrategy::Independent})
            .runAll(Requests);
    if (PlanJson != IndepJson ||
        PlanJson != responsesToJson(Planned1, nullptr) ||
        IndepJson != responsesToJson(Independent1, nullptr)) {
      std::fprintf(stderr,
                   "MISMATCH at %zu specs: planned and independent responses "
                   "are not byte-identical\n",
                   NumSpecs);
      return 1;
    }
    Points.push_back(P);
  }

  // Footprint specialization on the txn-free corpus slice: every program
  // whose static facts (lint/Lint.h) prove the Txn vocabulary absent, at
  // the full 24-spec pool where the Txn-footprint obligations are
  // densest. Same planned engine both sides; only `Specialize` differs,
  // so the delta is exactly the per-candidate cost of obligations the
  // footprints pre-discharge. Timed single-threaded: the saving lives in
  // the per-candidate evaluation loop, and worker-pool scheduling jitter
  // at higher jobs counts is larger than the effect being measured.
  // Byte-identity is proven at both jobs 1 and the bench jobs count,
  // because verdict-neutrality is the bar specialization must clear.
  std::vector<CorpusEntry> TxnFree;
  for (const CorpusEntry &E : Corpus)
    if (computeFacts(E.Prog).TxnFree)
      TxnFree.push_back(E);
  if (TxnFree.empty()) {
    std::fprintf(stderr, "MISMATCH: corpus has no txn-free programs — the "
                         "specialization slice is empty\n");
    return 1;
  }
  std::vector<CheckRequest> SpecRequests =
      makeRequests(TxnFree, Pool.size(), Reps);
  double SpecOnSec = 1e18, SpecOffSec = 1e18;
  uint64_t Discharged = 0, SpecChecks = 0;
  std::vector<CheckResponse> SpecOn, SpecOff;
  for (unsigned T = 0; T < Timings; ++T) {
    BatchTelemetry TOn;
    SpecOn = QueryEngine({.Jobs = 1,
                          .Strategy = EvalStrategy::Planned,
                          .Specialize = true})
                 .runAll(SpecRequests, &TOn);
    BatchTelemetry TOff;
    SpecOff = QueryEngine({.Jobs = 1,
                           .Strategy = EvalStrategy::Planned,
                           .Specialize = false})
                  .runAll(SpecRequests, &TOff);
    SpecOnSec = std::min(SpecOnSec, TOn.Seconds);
    SpecOffSec = std::min(SpecOffSec, TOff.Seconds);
    Discharged = TOn.Plan.Discharged;
    SpecChecks = TOn.Checks;
    if (TOff.Plan.Discharged != 0) {
      std::fprintf(stderr, "MISMATCH: unspecialized run reported %llu "
                           "discharged obligations\n",
                   static_cast<unsigned long long>(TOff.Plan.Discharged));
      return 1;
    }
  }
  std::string SpecOnJson = responsesToJson(SpecOn, nullptr);
  if (SpecOnJson != responsesToJson(SpecOff, nullptr) ||
      SpecOnJson !=
          responsesToJson(QueryEngine({.Jobs = Jobs,
                                       .Strategy = EvalStrategy::Planned,
                                       .Specialize = true})
                              .runAll(SpecRequests),
                          nullptr) ||
      SpecOnJson !=
          responsesToJson(QueryEngine({.Jobs = Jobs,
                                       .Strategy = EvalStrategy::Planned,
                                       .Specialize = false})
                              .runAll(SpecRequests),
                          nullptr)) {
    std::fprintf(stderr, "MISMATCH: specialization changed the canonical "
                         "responses on the txn-free slice\n");
    return 1;
  }

  std::printf("%5s %10s %10s %12s %12s %8s %9s %9s\n", "specs", "checks",
              "cand", "indep s", "planned s", "speedup", "term-hit", "short-c");
  std::string PointsJson;
  double SpeedupAt6 = 0;
  for (const Point &P : Points) {
    double Speedup = P.IndependentSec / P.PlannedSec;
    if (P.Specs == 6)
      SpeedupAt6 = Speedup;
    double HitRate =
        P.TermEvals + P.TermHits
            ? double(P.TermHits) / double(P.TermEvals + P.TermHits)
            : 0;
    double ShortRate =
        P.SpecEvals + P.SpecShortCircuits
            ? double(P.SpecShortCircuits) /
                  double(P.SpecEvals + P.SpecShortCircuits)
            : 0;
    std::printf("%5zu %10llu %10llu %12.4f %12.4f %7.2fx %8.1f%% %8.1f%%\n",
                P.Specs, static_cast<unsigned long long>(P.Checks),
                static_cast<unsigned long long>(P.Candidates),
                P.IndependentSec, P.PlannedSec, Speedup, 100 * HitRate,
                100 * ShortRate);
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "%s{\"specs\": %zu, \"checks\": %llu, \"candidates\": %llu, "
        "\"independent_seconds\": %.4f, \"planned_seconds\": %.4f, "
        "\"independent_checks_per_sec\": %.0f, "
        "\"planned_checks_per_sec\": %.0f, \"speedup\": %.3f, "
        "\"term_hit_rate\": %.3f, \"short_circuit_rate\": %.3f}",
        PointsJson.empty() ? "" : ", ", P.Specs,
        static_cast<unsigned long long>(P.Checks),
        static_cast<unsigned long long>(P.Candidates), P.IndependentSec,
        P.PlannedSec, P.Checks / P.IndependentSec, P.Checks / P.PlannedSec,
        Speedup, HitRate, ShortRate);
    PointsJson += Buf;
  }
  std::printf("\nplanned == independent byte-for-byte at every point "
              "(jobs 1 and %u).\n",
              Jobs);

  double SpecSpeedup = SpecOffSec / SpecOnSec;
  std::printf("\nfootprint specialization, txn-free slice (%zu/%zu programs, "
              "%zu specs):\n"
              "  unspecialized %.4f s, specialized %.4f s (%.2fx), "
              "%llu obligations discharged; byte-identical.\n",
              TxnFree.size(), Corpus.size(), Pool.size(), SpecOffSec,
              SpecOnSec, SpecSpeedup,
              static_cast<unsigned long long>(Discharged));

  char SpecJson[512];
  std::snprintf(
      SpecJson, sizeof(SpecJson),
      "\"specialization\": {\"txn_free_programs\": %zu, \"specs\": %zu, "
      "\"checks\": %llu, \"off_seconds\": %.4f, \"on_seconds\": %.4f, "
      "\"speedup\": %.3f, \"discharged\": %llu}",
      TxnFree.size(), Pool.size(), static_cast<unsigned long long>(SpecChecks),
      SpecOffSec, SpecOnSec, SpecSpeedup,
      static_cast<unsigned long long>(Discharged));

  char Json[512];
  std::snprintf(Json, sizeof(Json),
                "{\"bench\": \"spec_matrix\", \"programs\": %zu, \"reps\": %u, "
                "\"jobs\": %u, \"speedup_at_6\": %.3f, \"points\": [",
                Corpus.size(), Reps, Jobs, SpeedupAt6);
  bench::writeBenchJson("spec_matrix", std::string(Json) + PointsJson + "], " +
                                           SpecJson + "}");
  return 0;
}
