//===- audit_test.cpp - Contract-auditor tests --------------------------------==//
///
/// The contract auditor (audit/ContractAudit.h) pinned from both sides:
///
///  * *negative* — deliberately broken fixture models, one per audited
///    contract, each of which the corresponding pass MUST flag (and the
///    other passes must not): an axiom whose term reads a mask bit
///    outside its declared `Salt`; an honest `Axiom::Salt` hiding a
///    `memoTerm` call salted narrower than the closure's real footprint;
///    a transaction-reading term memoized as `TxnDependent = false`,
///    which serves a stale relation across
///    `invalidateTransactionalState()`; and a po-reading term declaring a
///    `Footprint` of `vocab::Txn` only, which the footprint pass must
///    catch producing edges on txn-free probes (an under-declared
///    footprint would let `EvalPlan::specialize` discharge a live
///    constraint). Honest table entries sitting next to the broken ones
///    must stay clean — the auditor finds lies, not neighbours.
///
///  * *positive* — the full default registry matrix audits clean (the CI
///    gate `tmw_audit` enforces), and the JSON report round-trips through
///    the repo's parser.
///
/// Plus the `AxiomMask` boundary pinned at the 32-axiom cap the new
/// asserts in models/Axiom.h enforce.
///
//===----------------------------------------------------------------------===//

#include "audit/AuditIO.h"
#include "audit/ContractAudit.h"
#include "query/Json.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace tmw;

namespace {

//===----------------------------------------------------------------------===
// Fixture models. Table layout shared by all three: index 0 is a modifier
// toggle (the bit the lying terms secretly read), index 1 the honest
// control axiom, index 2 the deliberately broken entry.
//===----------------------------------------------------------------------===

Relation emptyTerm(const ExecutionAnalysis &A, AxiomMask) {
  return Relation(A.size());
}

Relation honestPo(const ExecutionAnalysis &A, AxiomMask) { return A.po(); }

/// Reads the Toggle bit but declares `Salt = 0`: the salt pass must catch
/// bit 0 on any probe where po and po|rf differ.
Relation underSaltedTerm(const ExecutionAnalysis &A, AxiomMask M) {
  return M.test(0) ? A.po() : A.po() | A.rf();
}

/// Honest `Axiom::Salt` (bit 0), but the memoTerm salt inside is 0: the
/// shared memoized arena returns the bit-0-on relation after the mask
/// flips, which only the memoization pass can see.
Relation memoLieTerm(const ExecutionAnalysis &A, AxiomMask M) {
  static const char Tag = 0;
  return A.memoTerm(&Tag, /*Salt=*/0, /*TxnDependent=*/false, [&] {
    return M.test(0) ? A.po() : A.po() | A.rf();
  });
}

/// Reads the transaction labelling but memoizes as `TxnDependent =
/// false`: survives `invalidateTransactionalState()`, so the placement
/// sweep sees a stale relation. Mask-independent and probe-fresh, so the
/// salt and memoization passes stay clean.
Relation staleTxnTerm(const ExecutionAnalysis &A, AxiomMask) {
  static const char Tag = 0;
  return A.memoTerm(&Tag, /*Salt=*/0, /*TxnDependent=*/false,
                    [&] { return A.po() | A.stxn(); });
}

constexpr Axiom kUnderSaltedTable[] = {
    {"Toggle", AxiomKind::Acyclic, emptyTerm, false, /*Modifier=*/true, 0},
    {"Honest", AxiomKind::Acyclic, honestPo, false, false, 0},
    {"Lying", AxiomKind::Acyclic, underSaltedTerm, false, false,
     /*Salt=*/0},
};

constexpr Axiom kMemoLieTable[] = {
    {"Toggle", AxiomKind::Acyclic, emptyTerm, false, /*Modifier=*/true, 0},
    {"Honest", AxiomKind::Acyclic, honestPo, false, false, 0},
    {"MemoLie", AxiomKind::Acyclic, memoLieTerm, false, false,
     /*Salt=*/uint32_t(1) << 0},
};

constexpr Axiom kStaleTxnTable[] = {
    {"Toggle", AxiomKind::Acyclic, emptyTerm, false, /*Modifier=*/true, 0},
    {"Honest", AxiomKind::Acyclic, honestPo, false, false, 0},
    {"StaleTxn", AxiomKind::Acyclic, staleTxnTerm, false, false, 0},
};

/// A deliberately *under-declared* footprint: the term reads plain
/// program order (non-empty on every multi-event execution) but claims it
/// only speaks `vocab::Txn`. On any txn-free probe the vocabulary is
/// disjoint from the declared footprint, so the footprint contract
/// demands an empty relation — and po is not empty. Mask-independent and
/// memo-free, so the other three passes must stay silent.
constexpr Axiom kUnderFootprintTable[] = {
    {"Toggle", AxiomKind::Acyclic, emptyTerm, false, /*Modifier=*/true, 0},
    {"Honest", AxiomKind::Acyclic, honestPo, false, false, 0},
    {"FootprintLie", AxiomKind::Acyclic, honestPo, false, false, /*Salt=*/0,
     /*Footprint=*/vocab::Txn},
};

class FixtureModel : public MemoryModel {
public:
  FixtureModel(const char *Name, AxiomList Table)
      : Name(Name), Table(Table) {}
  const char *name() const override { return Name; }
  Arch arch() const override { return Arch::X86; }
  AxiomList axioms() const override { return Table; }

private:
  const char *Name;
  AxiomList Table;
};

/// Audit one fixture with probe sources fitted to the pass under test.
AuditReport auditFixture(const MemoryModel &M, bool Corpus, bool Vocab) {
  AuditOptions O;
  O.Corpus = Corpus;
  O.Vocabularies = Vocab;
  O.Precision = false;
  O.CorpusCandidateCap = 4;
  O.VocabBaseCap = 8;
  O.PlacementCap = 2;
  const MemoryModel *Models[] = {&M};
  return auditModels(Models, {}, O);
}

bool anyFindingFor(const AuditReport &R, std::string_view Axiom) {
  return std::any_of(R.Findings.begin(), R.Findings.end(),
                     [&](const AuditFinding &F) { return F.Axiom == Axiom; });
}

TEST(ContractAudit_, UnderSaltedAxiomIsFlaggedBySaltPass) {
  FixtureModel M("under-salted-fixture", kUnderSaltedTable);
  AuditReport R = auditFixture(M, /*Corpus=*/true, /*Vocab=*/false);
  ASSERT_FALSE(R.sound());
  ASSERT_FALSE(R.Findings.empty());
  bool SawSalt = false;
  for (const AuditFinding &F : R.Findings) {
    EXPECT_EQ(F.Model, "under-salted-fixture");
    EXPECT_EQ(F.Axiom, "Lying") << auditPassName(F.Pass);
    if (F.Pass == AuditPass::Salt) {
      SawSalt = true;
      EXPECT_EQ(F.Bit, 0);
      EXPECT_EQ(F.BitName, "Toggle");
      EXPECT_FALSE(F.Witness.empty());
      EXPECT_FALSE(F.Probe.empty());
    }
  }
  EXPECT_TRUE(SawSalt);
  EXPECT_FALSE(anyFindingFor(R, "Honest"));
  EXPECT_FALSE(anyFindingFor(R, "Toggle"));
}

TEST(ContractAudit_, NarrowMemoSaltIsFlaggedByMemoizationPass) {
  FixtureModel M("memo-lie-fixture", kMemoLieTable);
  AuditReport R = auditFixture(M, /*Corpus=*/true, /*Vocab=*/false);
  ASSERT_FALSE(R.sound());
  ASSERT_FALSE(R.Findings.empty());
  for (const AuditFinding &F : R.Findings) {
    // The Axiom::Salt is honest, so the salt pass must NOT fire — the lie
    // lives one layer down, in the memoTerm key, visible only through the
    // shared arena.
    EXPECT_EQ(F.Pass, AuditPass::Memoization);
    EXPECT_EQ(F.Axiom, "MemoLie");
    EXPECT_EQ(F.Bit, 0);
  }
  EXPECT_FALSE(anyFindingFor(R, "Honest"));
}

TEST(ContractAudit_, StaleTxnCacheIsFlaggedByInvalidationPass) {
  FixtureModel M("stale-txn-fixture", kStaleTxnTable);
  AuditReport R = auditFixture(M, /*Corpus=*/false, /*Vocab=*/true);
  ASSERT_FALSE(R.sound());
  ASSERT_FALSE(R.Findings.empty());
  for (const AuditFinding &F : R.Findings) {
    EXPECT_EQ(F.Pass, AuditPass::Invalidation);
    EXPECT_EQ(F.Axiom, "StaleTxn");
    EXPECT_EQ(F.Bit, -1);
  }
  EXPECT_FALSE(anyFindingFor(R, "Honest"));
  EXPECT_GT(R.Counters.Placements, 0u);
}

TEST(ContractAudit_, UnderDeclaredFootprintIsFlaggedByFootprintPass) {
  FixtureModel M("under-footprint-fixture", kUnderFootprintTable);
  AuditReport R = auditFixture(M, /*Corpus=*/true, /*Vocab=*/true);
  ASSERT_FALSE(R.sound());
  ASSERT_FALSE(R.Findings.empty());
  bool SawFootprint = false;
  for (const AuditFinding &F : R.Findings) {
    // Salt 0 is honest (the term is mask-independent) and nothing is
    // memoized, so only the footprint pass may speak.
    EXPECT_EQ(F.Pass, AuditPass::Footprint) << auditPassName(F.Pass);
    EXPECT_EQ(F.Axiom, "FootprintLie");
    if (F.Pass == AuditPass::Footprint && F.Bit == -1) {
      SawFootprint = true;
      EXPECT_NE(F.Detail.find("disjoint"), std::string::npos);
      EXPECT_FALSE(F.Probe.empty());
    }
  }
  EXPECT_TRUE(SawFootprint);
  // The honest po term, with its always-safe default footprint, and the
  // empty toggle term are exactly as non-empty/empty as they claim.
  EXPECT_FALSE(anyFindingFor(R, "Honest"));
  EXPECT_FALSE(anyFindingFor(R, "Toggle"));
  EXPECT_GT(R.Counters.FootprintChecks, 0u);
}

TEST(ContractAudit_, HonestFixtureAuditsClean) {
  // The control table alone (toggle + honest po) must produce zero
  // findings through every pass and probe source.
  constexpr static Axiom Table[] = {
      {"Toggle", AxiomKind::Acyclic, emptyTerm, false, true, 0},
      {"Honest", AxiomKind::Acyclic, honestPo, false, false, 0},
  };
  FixtureModel M("honest-fixture", Table);
  AuditReport R = auditFixture(M, /*Corpus=*/true, /*Vocab=*/true);
  EXPECT_TRUE(R.sound()) << (R.Findings.empty()
                                 ? R.Error
                                 : R.Findings.front().Detail);
  EXPECT_GT(R.Counters.Probes, 0u);
  EXPECT_GT(R.Counters.Placements, 0u);
  EXPECT_GT(R.Counters.TermEvals, 0u);
}

TEST(ContractAudit_, DefaultRegistryMatrixIsSound) {
  // The real tables: every architecture, its baseline configuration, and
  // the hardware-substitute wrappers, over corpus and vocabulary probes.
  // This is the tier-1 twin of the CI `tmw_audit --json` gate, at caps
  // sized for test runtime.
  AuditOptions O;
  O.CorpusCandidateCap = 3;
  O.VocabBaseCap = 6;
  O.PlacementCap = 2;
  AuditReport R = auditContracts(O);
  EXPECT_TRUE(R.Error.empty()) << R.Error;
  for (const AuditFinding &F : R.Findings)
    ADD_FAILURE() << auditPassName(F.Pass) << " " << F.Model << " / "
                  << F.Axiom << " bit " << F.Bit << " (" << F.BitName
                  << ")\n  probe " << F.Probe << ": " << F.Detail;
  EXPECT_TRUE(R.sound());
  // The canonical spec list is deduplicated ("sc/+baseline" collapses to
  // "sc") but still covers the whole default matrix.
  std::vector<std::string> Specs = R.Specs;
  std::sort(Specs.begin(), Specs.end());
  EXPECT_EQ(std::adjacent_find(Specs.begin(), Specs.end()), Specs.end());
  EXPECT_LE(R.Specs.size(), defaultAuditSpecs().size());
  EXPECT_GE(R.Specs.size(), defaultAuditSpecs().size() - 3);
  EXPECT_GT(R.Counters.Units, 0u);
  EXPECT_GT(R.Counters.CorpusProbes, 0u);
  EXPECT_GT(R.Counters.VocabProbes, 0u);
  EXPECT_GT(R.Counters.Placements, 0u);
  // The footprint pass ran — narrow declared footprints met disjoint
  // probes and every one of them held (zero findings above).
  EXPECT_GT(R.Counters.FootprintChecks, 0u);
}

TEST(ContractAudit_, UnknownSpecReportsErrorNotCrash) {
  AuditOptions O;
  O.ModelSpecs = {"x86", "not-a-model"};
  AuditReport R = auditContracts(O);
  EXPECT_FALSE(R.sound());
  EXPECT_NE(R.Error.find("not-a-model"), std::string::npos) << R.Error;
  EXPECT_TRUE(R.Findings.empty());
}

TEST(ContractAudit_, JsonReportParsesAndCarriesFindings) {
  FixtureModel M("under-salted-fixture", kUnderSaltedTable);
  AuditReport R = auditFixture(M, /*Corpus=*/true, /*Vocab=*/false);
  ASSERT_FALSE(R.Findings.empty());
  std::string Json = auditReportToJson(R);
  std::string Error;
  std::optional<JsonValue> V = parseJson(Json, &Error);
  ASSERT_TRUE(V) << Error;
  EXPECT_EQ(V->getString("schema"), kAuditReportSchema);
  EXPECT_FALSE(V->getBool("sound", true));
  const JsonValue *Findings = V->get("findings");
  ASSERT_TRUE(Findings && Findings->isArray());
  ASSERT_EQ(Findings->Arr.size(), R.Findings.size());
  const JsonValue &F = Findings->Arr.front();
  EXPECT_EQ(F.getString("model"), "under-salted-fixture");
  EXPECT_EQ(F.getString("axiom"), R.Findings.front().Axiom);
  const JsonValue *Counters = V->get("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  EXPECT_EQ(Counters->getUint("probes"), R.Counters.Probes);
  EXPECT_EQ(Counters->getUint("term_evals"), R.Counters.TermEvals);

  // A sound report says so.
  AuditReport Clean;
  Clean.Events = 3;
  std::optional<JsonValue> CV = parseJson(auditReportToJson(Clean));
  ASSERT_TRUE(CV);
  EXPECT_TRUE(CV->getBool("sound"));
}

TEST(AxiomMask_, BoundaryAtThirtyTwoAxioms) {
  // The 32-axiom cap the asserts in AxiomMask::set/test enforce: bit 31
  // is the last usable index, and normalization at and beyond the cap
  // keeps every bit instead of shifting by >= 32 (which would be UB).
  AxiomMask M = AxiomMask::none();
  M.set(31);
  EXPECT_TRUE(M.test(31));
  EXPECT_EQ(M.bits(), uint32_t(1) << 31);
  M.set(31, false);
  EXPECT_EQ(M.bits(), 0u);

  EXPECT_EQ(AxiomMask::all().normalized(32).bits(), ~uint32_t(0));
  EXPECT_EQ(AxiomMask::all().normalized(33).bits(), ~uint32_t(0));
  EXPECT_EQ(AxiomMask::all().normalized(31).bits(), ~uint32_t(0) >> 1);
  EXPECT_EQ(AxiomMask::all().normalized(0).bits(), 0u);
  // Masks over the same table compare equal iff they agree below the
  // table width, whatever the don't-care bits above hold.
  EXPECT_EQ(AxiomMask::all().normalized(3),
            AxiomMask::none().set(0).set(1).set(2).normalized(3));
}

} // namespace
