//===- Event.cpp - Runtime memory events -----------------------------------==//

#include "execution/Event.h"

using namespace tmw;

const char *tmw::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Read:
    return "R";
  case EventKind::Write:
    return "W";
  case EventKind::Fence:
    return "F";
  case EventKind::Lock:
    return "L";
  case EventKind::Unlock:
    return "U";
  case EventKind::TxLock:
    return "Lt";
  case EventKind::TxUnlock:
    return "Ut";
  }
  return "?";
}

const char *tmw::fenceKindName(FenceKind F) {
  switch (F) {
  case FenceKind::None:
    return "none";
  case FenceKind::MFence:
    return "mfence";
  case FenceKind::Sync:
    return "sync";
  case FenceKind::LwSync:
    return "lwsync";
  case FenceKind::ISync:
    return "isync";
  case FenceKind::Dmb:
    return "dmb";
  case FenceKind::DmbLd:
    return "dmb.ld";
  case FenceKind::DmbSt:
    return "dmb.st";
  case FenceKind::Isb:
    return "isb";
  case FenceKind::CppFence:
    return "fence";
  }
  return "?";
}

const char *tmw::memOrderName(MemOrder MO) {
  switch (MO) {
  case MemOrder::NonAtomic:
    return "na";
  case MemOrder::Relaxed:
    return "rlx";
  case MemOrder::Acquire:
    return "acq";
  case MemOrder::Release:
    return "rel";
  case MemOrder::AcqRel:
    return "acqrel";
  case MemOrder::SeqCst:
    return "sc";
  }
  return "?";
}
