//===- PowerModel.h - Power with transactions -------------------*- C++ -*-==//
///
/// \file
/// The Power memory model of Fig. 6: the herding-cats Power model (Alglave
/// et al., TOPLAS 2014) — including the ii/ic/ci/cc preserved-program-order
/// fixpoint that the paper elides — with the paper's TM additions:
///
///  * tfence    — implicit barriers at transaction boundaries;
///  * tprop1    — the transaction's integrated memory barrier (§5.2 (1));
///  * tprop2    — multicopy-atomic propagation of transactional writes
///                (§5.2 (2));
///  * thb       — the transaction serialisation order (§5.2 (3));
///  * StrongIsol, TxnOrder, and TxnCancelsRMW.
///
/// Axioms: Coherence, RMWIsol, tfence/thb/tprop1/tprop2 (TM modifiers),
///         Order, Propagation, Observation, StrongIsol (TM),
///         TxnOrder (TM), TxnCancelsRMW (TM).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_POWERMODEL_H
#define TMW_MODELS_POWERMODEL_H

#include "models/MemoryModel.h"

namespace tmw {

/// Power (Fig. 6). Default configuration enables all TM axioms.
class PowerModel : public MemoryModel {
public:
  /// Thin shim lowering onto the named-axiom mask.
  struct Config {
    bool Tfence = true;
    bool StrongIsol = true;
    bool TxnOrder = true;
    bool TxnCancelsRmw = true;
    /// tprop1: write observed by a transaction propagates before the
    /// transaction's own writes.
    bool TProp1 = true;
    /// tprop2: transactional writes are multicopy-atomic.
    bool TProp2 = true;
    /// thb: successful transactions serialise in a consistent order.
    bool Thb = true;

    static Config baseline() {
      return {false, false, false, false, false, false, false};
    }
  };

  PowerModel() = default;
  explicit PowerModel(Config C);

  const char *name() const override {
    return anyTmEnabled() ? "Power+TM" : "Power";
  }
  Arch arch() const override { return Arch::Power; }
  AxiomList axioms() const override;

  /// Preserved program order (the herding-cats ii/ic/ci/cc fixpoint).
  Relation preservedProgramOrder(const ExecutionAnalysis &A) const;
  /// The happens-before relation of Fig. 6 under this configuration.
  Relation happensBefore(const ExecutionAnalysis &A) const;

  Config config() const;
};

} // namespace tmw

#endif // TMW_MODELS_POWERMODEL_H
