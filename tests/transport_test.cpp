//===- transport_test.cpp - Protocol fuzz + concurrency for the transports ------==//
///
/// The differential protocol harness for the socket transports: NDJSON
/// frames torn at every byte boundary, batches coalesced into one
/// write(), writes interleaved across rival connections — each pinned
/// byte-for-byte against the serial single-client path and the one-shot
/// engine (`litmus_tool --json`'s bytes). Plus the concurrency
/// contract of the poll multiplexer (server/Multiplexer.h): N client
/// threads over one server with no intermixed verdict streams, slow
/// readers held by backpressure without disturbing rivals, mid-batch
/// disconnects cancelled cleanly, and shutdown with clients still
/// connected. The EINTR tests pin that every accept/read/write/poll
/// loop restarts on signal delivery instead of dropping a connection —
/// handlers installed via sigaction with no SA_RESTART, so the
/// syscalls genuinely return EINTR.
///
/// Runs under the TSan CI lane: the loop thread, pool workers, and
/// client threads here race for real.
///
//===----------------------------------------------------------------------===//

#include "query/QueryEngine.h"
#include "query/QueryIO.h"
#include "server/Multiplexer.h"
#include "server/QueryServer.h"
#include "server/Transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using namespace tmw;

namespace {

// --- plumbing --------------------------------------------------------------

/// Connect to \p Path, retrying while the server binds (EINTR-safe).
int connectRetry(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  for (int Try = 0; Try < 400; ++Try) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    int Rc;
    do {
      Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
    } while (Rc < 0 && errno == EINTR);
    if (Rc == 0)
      return Fd;
    ::close(Fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool sendAll(int Fd, std::string_view Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N =
        ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Read until EOF (EINTR-safe).
std::string recvAll(int Fd) {
  std::string Got;
  char Buf[65536];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      break;
    Got.append(Buf, static_cast<size_t>(N));
  }
  return Got;
}

/// Read exactly \p Want bytes (EINTR-safe); shorter on EOF/error.
std::string recvExactly(int Fd, size_t Want) {
  std::string Got;
  char Buf[65536];
  while (Got.size() < Want) {
    ssize_t N = ::read(Fd, Buf, std::min(sizeof(Buf), Want - Got.size()));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      break;
    Got.append(Buf, static_cast<size_t>(N));
  }
  return Got;
}

/// One multiplexer serving on a fresh socket path, loop on its own
/// thread. `finish()` joins (for AcceptLimit-bounded runs), `stop()`
/// asks the loop down first.
struct MuxHarness {
  QueryServer Server;
  server::ConnectionMultiplexer Mux;
  std::string Path;
  std::thread Loop;
  int Exit = -1;

  MuxHarness(unsigned Jobs, server::MuxOptions Opts, const std::string &Name)
      : Server({Jobs}), Mux(Server, Opts),
        Path(testing::TempDir() + Name) {
    Loop = std::thread([this] { Exit = Mux.serve(Path); });
  }
  ~MuxHarness() {
    if (Loop.joinable())
      stop();
  }
  void finish() { Loop.join(); }
  void stop() {
    Mux.requestStop();
    Loop.join();
  }
};

// --- fixtures --------------------------------------------------------------

/// A one-request batch kept deliberately small, so "split at every byte
/// boundary" stays cheap even under TSan.
std::vector<CheckRequest> tinyBatch() {
  CheckRequest R;
  R.Corpus = "SB";
  R.ModelSpecs = {"x86"};
  return {R};
}

const char *clientSourceFmt = R"(name C%u
thread 0
  store x %u
  load y
thread 1
  store y 1
  load x
post reg 0 r1 0
post reg 1 r1 0
)";

/// A distinct program per client: verdict documents of rival clients can
/// never be byte-equal, so any cross-connection intermixing or swap is a
/// guaranteed mismatch, not a silent coincidence.
std::vector<CheckRequest> clientBatch(unsigned Client) {
  char Source[256];
  std::snprintf(Source, sizeof(Source), clientSourceFmt, Client, Client + 1);
  CheckRequest R;
  R.Name = "client-" + std::to_string(Client);
  R.Source = Source;
  R.ModelSpecs = {"x86", "power8"};
  R.WantOutcomes = true;
  CheckRequest B;
  B.Corpus = "MP";
  return {R, B};
}

std::vector<CheckRequest> sampleBatch() {
  CheckRequest R;
  R.Corpus = "SB";
  R.ModelSpecs = {"x86", "power/-TxnOrder", "power8"};
  R.Explain = true;
  R.WantOutcomes = true;
  CheckRequest B;
  B.Corpus = "MP";
  B.WantOutcomes = true;
  return {R, B};
}

/// The reference bytes: a one-shot engine run — the exact path
/// `litmus_tool --json` prints through.
std::string oneShot(const std::vector<CheckRequest> &Requests) {
  return responsesToJson(QueryEngine({1}).runAll(Requests));
}

// --- framing: torn and coalesced NDJSON ------------------------------------

TEST(Transport, TornFramesAtEveryByteBoundary) {
  std::string Line = requestsToJsonLine(tinyBatch());
  std::string Reference = oneShot(tinyBatch());
  ASSERT_GT(Line.size(), 8u);

  MuxHarness H(2, {}, "tmw_torn.sock");
  int Fd = connectRetry(H.Path);
  ASSERT_GE(Fd, 0);

  // Every split point: prefix, a beat (so the server's read really sees
  // a torn frame, not a coalesced one), then the rest. Each split is one
  // batch on the one connection.
  for (size_t Split = 0; Split < Line.size(); ++Split) {
    ASSERT_TRUE(sendAll(Fd, std::string_view(Line).substr(0, Split)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(
        sendAll(Fd, std::string(Line.substr(Split)) + "\n"));
  }
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  std::string Got = recvAll(Fd);
  ::close(Fd);
  H.stop();
  EXPECT_EQ(H.Exit, 0);

  std::string Expect;
  for (size_t Split = 0; Split < Line.size(); ++Split)
    Expect += Reference;
  EXPECT_EQ(Got, Expect) << "some torn frame produced different bytes";
}

TEST(Transport, CoalescedBatchesAndTrailingLineInOneWrite) {
  std::string Line = requestsToJsonLine(tinyBatch());
  std::string Reference = oneShot(tinyBatch());

  server::MuxOptions Opts;
  Opts.AcceptLimit = 1;
  MuxHarness H(2, Opts, "tmw_coalesced.sock");
  int Fd = connectRetry(H.Path);
  ASSERT_GE(Fd, 0);

  // One write carrying: two complete batches, blank/whitespace lines to
  // skip, and a final *unterminated* batch that must still answer at EOF
  // (the serial path's trailing-line rule).
  std::string Payload = Line + "\n\n \t\r\n" + Line + "\n" + Line;
  ASSERT_TRUE(sendAll(Fd, Payload));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  std::string Got = recvAll(Fd);
  ::close(Fd);
  H.finish();
  EXPECT_EQ(H.Exit, 0);
  EXPECT_EQ(Got, Reference + Reference + Reference);
}

TEST(Transport, EmptyBatchAnsweredEvenAtEof) {
  // An empty batch (`[]`) completes inline: its document travels through
  // the worker mailbox with no in-flight (Live) entry. A batch framed in
  // the same dispatch that sees the close must not let the connection be
  // torn down before the mailbox drains — that silently drops the
  // response the serial transport would have written.
  std::string Reference = oneShot(std::vector<CheckRequest>{});
  ASSERT_FALSE(Reference.empty());

  server::MuxOptions Opts;
  Opts.AcceptLimit = 2;
  MuxHarness H(2, Opts, "tmw_emptybatch.sock");

  // Terminated `[]\n`, then an immediate half-close.
  int Fd = connectRetry(H.Path);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, "[]\n"));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  EXPECT_EQ(recvAll(Fd), Reference);
  ::close(Fd);

  // Unterminated trailing `[]`: the line is only framed by EOF itself,
  // so the batch submits in the very dispatch that marks the connection
  // read-closed — the deterministic shape of the lost-response race.
  Fd = connectRetry(H.Path);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, "[]"));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  EXPECT_EQ(recvAll(Fd), Reference);
  ::close(Fd);

  H.finish();
  EXPECT_EQ(H.Exit, 0);
}

TEST(Transport, UnterminatedGiantLineRejectedNotBuffered) {
  // A client streaming bytes with no newline past the input high-water
  // mark gets an error document and a teardown — the server must never
  // buffer such a line without bound.
  server::MuxOptions Opts;
  Opts.AcceptLimit = 1;
  Opts.MaxLineBytes = 4096;
  MuxHarness H(2, Opts, "tmw_giantline.sock");

  int Fd = connectRetry(H.Path);
  ASSERT_GE(Fd, 0);
  // The send may fail partway once the server stops reading — that is
  // the guard working, not a test failure.
  (void)sendAll(Fd, std::string(64 * 1024, 'x'));
  EXPECT_EQ(recvAll(Fd),
            batchErrorToJson("batch line exceeds maximum length"));
  ::close(Fd);
  H.finish();
  EXPECT_EQ(H.Exit, 0);
  EXPECT_EQ(H.Server.stats().BadBatches, 1u);
  ASSERT_EQ(H.Mux.stats().Connections.size(), 1u);
  EXPECT_EQ(H.Mux.stats().Connections[0].BadBatches, 1u);
  EXPECT_FALSE(H.Mux.stats().Connections[0].Aborted);
}

TEST(Transport, ClientInterleavesSendsWithResponseDrain) {
  // ~1 MiB of batches against a server whose output high-water is tiny:
  // the server stops reading this connection almost immediately and only
  // resumes as responses drain. A client that writes all of its input
  // before reading anything deadlocks here once the kernel socket
  // buffers fill — runClient must interleave the two directions.
  server::MuxOptions Opts;
  Opts.AcceptLimit = 1;
  Opts.OutputHighWater = 1024;
  MuxHarness H(2, Opts, "tmw_client_interleave.sock");

  std::string Reference = oneShot(std::vector<CheckRequest>{});
  constexpr unsigned Batches = 4096;
  std::string PaddedLine = "[]" + std::string(254, ' ') + "\n";
  std::string Input, Expect;
  for (unsigned I = 0; I < Batches; ++I) {
    Input += PaddedLine;
    Expect += Reference;
  }
  std::istringstream In(Input);
  std::ostringstream Got;
  ASSERT_EQ(server::runClient(H.Path, In, Got), 0);
  H.finish();
  EXPECT_EQ(H.Exit, 0);
  EXPECT_EQ(Got.str(), Expect);
}

// --- the differential contract ---------------------------------------------

TEST(Transport, MuxMatchesSerialSocketAndOneShot) {
  std::vector<CheckRequest> Requests = sampleBatch();
  std::string Line = requestsToJsonLine(Requests);
  std::string Reference = oneShot(Requests);
  std::string Payload = Line + "\n" + Line + "\n";

  // The serial single-client reference transport.
  std::string SerialGot;
  {
    QueryServer S({2});
    std::string Path = testing::TempDir() + "tmw_serial_ref.sock";
    std::thread Listener(
        [&] { server::serveUnixSocket(S, Path, /*AcceptLimit=*/1); });
    int Fd = connectRetry(Path);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(sendAll(Fd, Payload));
    ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
    SerialGot = recvAll(Fd);
    ::close(Fd);
    Listener.join();
  }

  // The concurrent multiplexer.
  std::string MuxGot;
  {
    server::MuxOptions Opts;
    Opts.AcceptLimit = 1;
    MuxHarness H(2, Opts, "tmw_mux_ref.sock");
    int Fd = connectRetry(H.Path);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(sendAll(Fd, Payload));
    ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
    MuxGot = recvAll(Fd);
    ::close(Fd);
    H.finish();
    EXPECT_EQ(H.Exit, 0);
  }

  EXPECT_EQ(SerialGot, Reference + Reference);
  EXPECT_EQ(MuxGot, SerialGot) << "mux diverged from the serial transport";
}

TEST(Transport, InterleavedPartialWritesAcrossConnections) {
  // Two connections alternating partial frame writes: each stream must
  // reassemble independently — A's bytes can never leak into B's answer
  // (the batches differ, so leakage is a guaranteed mismatch).
  std::string LineA = requestsToJsonLine(clientBatch(100));
  std::string LineB = requestsToJsonLine(clientBatch(200));
  std::string RefA = oneShot(clientBatch(100));
  std::string RefB = oneShot(clientBatch(200));
  ASSERT_NE(RefA, RefB);

  server::MuxOptions Opts;
  Opts.AcceptLimit = 2;
  MuxHarness H(2, Opts, "tmw_interleave.sock");
  int A = connectRetry(H.Path);
  int B = connectRetry(H.Path);
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);

  size_t MidA = LineA.size() / 3, MidB = 2 * LineB.size() / 3;
  ASSERT_TRUE(sendAll(A, std::string_view(LineA).substr(0, MidA)));
  ASSERT_TRUE(sendAll(B, std::string_view(LineB).substr(0, MidB)));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(sendAll(A, std::string(LineA.substr(MidA)) + "\n"));
  ASSERT_TRUE(sendAll(B, std::string(LineB.substr(MidB)) + "\n"));
  ASSERT_EQ(::shutdown(A, SHUT_WR), 0);
  ASSERT_EQ(::shutdown(B, SHUT_WR), 0);

  std::string GotA = recvAll(A);
  std::string GotB = recvAll(B);
  ::close(A);
  ::close(B);
  H.finish();
  EXPECT_EQ(H.Exit, 0);
  EXPECT_EQ(GotA, RefA);
  EXPECT_EQ(GotB, RefB);
}

// --- concurrency -----------------------------------------------------------

TEST(Transport, ConcurrentClientsNeverIntermix) {
  // N client threads × M batches over one pool: every connection's byte
  // stream must equal its own serial reference — concurrency may reorder
  // work on the pool, never bytes on a connection.
  constexpr unsigned Clients = 4, Batches = 3;
  server::MuxOptions Opts;
  Opts.AcceptLimit = Clients;
  Opts.MaxBatchesInFlight = 2; // exercise the in-flight window too
  MuxHarness H(4, Opts, "tmw_stress.sock");

  std::vector<std::string> Refs(Clients), Lines(Clients);
  for (unsigned C = 0; C < Clients; ++C) {
    Refs[C] = oneShot(clientBatch(C));
    Lines[C] = requestsToJsonLine(clientBatch(C)) + "\n";
  }

  std::vector<std::string> Got(Clients);
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      int Fd = connectRetry(H.Path);
      if (Fd < 0) {
        ++Failures;
        return;
      }
      std::string Payload;
      for (unsigned B = 0; B < Batches; ++B)
        Payload += Lines[C];
      if (!sendAll(Fd, Payload))
        ++Failures;
      ::shutdown(Fd, SHUT_WR);
      Got[C] = recvAll(Fd);
      ::close(Fd);
    });
  for (std::thread &T : Threads)
    T.join();
  H.finish();
  EXPECT_EQ(H.Exit, 0);
  ASSERT_EQ(Failures.load(), 0);

  for (unsigned C = 0; C < Clients; ++C) {
    std::string Expect;
    for (unsigned B = 0; B < Batches; ++B)
      Expect += Refs[C];
    EXPECT_EQ(Got[C], Expect) << "client " << C;
  }
  EXPECT_EQ(H.Server.stats().Batches, uint64_t(Clients) * Batches);
}

TEST(Transport, SlowReaderBackpressureDoesNotDisturbRivals) {
  std::vector<CheckRequest> Requests = sampleBatch();
  std::string Line = requestsToJsonLine(Requests) + "\n";
  std::string Reference = oneShot(Requests);
  // The backpressure mark must be far below one document, so a single
  // completion overshoots it deterministically (documents queue before
  // any socket write happens).
  ASSERT_GT(Reference.size(), 2048u);

  server::MuxOptions Opts;
  Opts.AcceptLimit = 2;
  Opts.OutputHighWater = 1024;
  Opts.MaxBatchesInFlight = 1;
  MuxHarness H(2, Opts, "tmw_slow.sock");

  // The slow reader: sends three batches, then doesn't read for a while.
  int Slow = connectRetry(H.Path);
  ASSERT_GE(Slow, 0);
  ASSERT_TRUE(sendAll(Slow, Line + Line + Line));
  ASSERT_EQ(::shutdown(Slow, SHUT_WR), 0);

  // A rival does a complete round trip while the slow reader is stalled.
  int Fast = connectRetry(H.Path);
  ASSERT_GE(Fast, 0);
  ASSERT_TRUE(sendAll(Fast, Line));
  ASSERT_EQ(::shutdown(Fast, SHUT_WR), 0);
  EXPECT_EQ(recvAll(Fast), Reference);
  ::close(Fast);

  // Now the slow reader catches up: every byte, in order.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(recvAll(Slow), Reference + Reference + Reference);
  ::close(Slow);
  H.finish();
  EXPECT_EQ(H.Exit, 0);

  // The three-batch connection must have been paused at least once.
  bool FoundSlow = false;
  for (const server::MuxConnStats &C : H.Mux.stats().Connections)
    if (C.Batches == 3) {
      FoundSlow = true;
      EXPECT_GE(C.BackpressurePauses, 1u);
      EXPECT_GT(C.PeakBuffered, Opts.OutputHighWater);
      EXPECT_FALSE(C.Aborted);
    }
  EXPECT_TRUE(FoundSlow);
}

TEST(Transport, MidBatchDisconnectLeavesRivalsUndisturbed) {
  server::MuxOptions Opts;
  Opts.AcceptLimit = 2;
  MuxHarness H(2, Opts, "tmw_disconnect.sock");

  // The vanishing client: submit work, then fully close without reading
  // a byte. Its batches are cancelled/discarded; the loop must not hang
  // waiting for it, and its rival's bytes must be exact.
  {
    int Fd = connectRetry(H.Path);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(sendAll(Fd, requestsToJsonLine(clientBatch(7)) + "\n"));
    ::close(Fd);
  }

  std::vector<CheckRequest> Requests = sampleBatch();
  std::string Reference = oneShot(Requests);
  int Fd = connectRetry(H.Path);
  ASSERT_GE(Fd, 0);
  std::string Line = requestsToJsonLine(Requests) + "\n";
  ASSERT_TRUE(sendAll(Fd, Line + Line));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  EXPECT_EQ(recvAll(Fd), Reference + Reference);
  ::close(Fd);

  H.finish();
  EXPECT_EQ(H.Exit, 0);
  EXPECT_EQ(H.Mux.stats().Aborted, 1u);
}

TEST(Transport, CleanShutdownWithClientsConnected) {
  std::vector<CheckRequest> Requests = sampleBatch();
  std::string Reference = oneShot(Requests);

  MuxHarness H(2, {}, "tmw_shutdown.sock"); // no accept limit: daemon mode

  // A client mid-session: one answered batch, connection held open.
  int Fd = connectRetry(H.Path);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, requestsToJsonLine(Requests) + "\n"));
  EXPECT_EQ(recvExactly(Fd, Reference.size()), Reference);

  // Stop with the client still connected: the loop cancels, closes, and
  // serve() returns 0 — it must not wait for the client to go away.
  H.stop();
  EXPECT_EQ(H.Exit, 0);

  // The client sees EOF, not a hang.
  EXPECT_EQ(recvAll(Fd), "");
  ::close(Fd);
}

// --- EINTR: signals must never drop a connection ---------------------------

/// SIGUSR1 handler installed the hard way: sigaction with no SA_RESTART,
/// so blocking syscalls in the signalled thread genuinely return EINTR
/// (glibc's signal() would set SA_RESTART and mask the whole bug class).
struct NoRestartSigusr1 {
  struct sigaction Old {};
  NoRestartSigusr1() {
    struct sigaction Sa {};
    Sa.sa_handler = [](int) {};
    sigemptyset(&Sa.sa_mask);
    Sa.sa_flags = 0;
    sigaction(SIGUSR1, &Sa, &Old);
  }
  ~NoRestartSigusr1() { sigaction(SIGUSR1, &Old, nullptr); }
};

void pokeThread(std::thread &T, int Times) {
  for (int I = 0; I < Times; ++I) {
    pthread_kill(T.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(Transport, SerialAcceptSurvivesEintr) {
  NoRestartSigusr1 Guard;
  QueryServer S({1});
  std::string Path = testing::TempDir() + "tmw_eintr_accept.sock";
  int Exit = -1;
  std::thread Listener(
      [&] { Exit = server::serveUnixSocket(S, Path, /*AcceptLimit=*/1); });

  // Interrupt the listener while it is blocked in accept(): the loop
  // must restart the call, not tear the listener down.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pokeThread(Listener, 3);

  std::vector<CheckRequest> Requests = tinyBatch();
  int Fd = connectRetry(Path);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, requestsToJsonLine(Requests) + "\n"));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  EXPECT_EQ(recvAll(Fd), oneShot(Requests));
  ::close(Fd);
  Listener.join();
  EXPECT_EQ(Exit, 0);
}

TEST(Transport, SerialReadSurvivesEintr) {
  NoRestartSigusr1 Guard;
  QueryServer S({1});
  std::string Path = testing::TempDir() + "tmw_eintr_read.sock";
  int Exit = -1;
  std::thread Listener(
      [&] { Exit = server::serveUnixSocket(S, Path, /*AcceptLimit=*/1); });

  std::string Line = requestsToJsonLine(tinyBatch());
  int Fd = connectRetry(Path);
  ASSERT_GE(Fd, 0);
  // Half a frame, then signals while the server blocks in read() waiting
  // for the rest: the torn frame must survive the EINTRs.
  ASSERT_TRUE(sendAll(Fd, std::string_view(Line).substr(0, Line.size() / 2)));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  pokeThread(Listener, 3);
  ASSERT_TRUE(
      sendAll(Fd, std::string(Line.substr(Line.size() / 2)) + "\n"));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  EXPECT_EQ(recvAll(Fd), oneShot(tinyBatch()));
  ::close(Fd);
  Listener.join();
  EXPECT_EQ(Exit, 0);
}

TEST(Transport, MuxPollSurvivesEintr) {
  NoRestartSigusr1 Guard;
  MuxHarness H(2, {}, "tmw_eintr_poll.sock");

  // Signal the loop thread while it idles in poll() — poll is never
  // auto-restarted, so this path fires unconditionally.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  pokeThread(H.Loop, 3);

  std::vector<CheckRequest> Requests = tinyBatch();
  int Fd = connectRetry(H.Path);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, requestsToJsonLine(Requests) + "\n"));
  std::string Reference = oneShot(Requests);
  pokeThread(H.Loop, 2); // and while serving
  EXPECT_EQ(recvExactly(Fd, Reference.size()), Reference);
  ::close(Fd);
  H.stop();
  EXPECT_EQ(H.Exit, 0);
}

} // namespace
