//===- cpp_transactions.cpp - C++ TM semantics in practice ----------------------==//
///
/// What the C++ TM specification (§7) means for programmers, on runnable
/// examples: atomic{} vs synchronized{} isolation, races involving
/// transactions, the tsw synchronisation rule, and the transactional
/// SC-DRF guarantee.
///
/// Run: ./cpp_transactions
///
//===----------------------------------------------------------------------===//

#include "execution/Builder.h"
#include "litmus/FromExecution.h"
#include "litmus/Printer.h"
#include "models/CppModel.h"
#include "models/ScModel.h"

#include <cstdio>

using namespace tmw;

namespace {

void verdict(const char *What, const Execution &X) {
  CppModel M;
  ConsistencyResult C = M.check(X);
  std::printf("%-52s %-10s race-free: %-3s\n", What,
              C.Consistent ? "allowed" : "forbidden",
              M.raceFree(X) ? "yes" : "NO");
}

} // namespace

int main() {
  std::printf("C++ transactions under the Fig. 9 model\n\n");

  // 1. Transactions synchronise: message passing through two
  //    synchronized{} blocks is race-free and ordered.
  {
    ExecutionBuilder B;
    EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
    EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
    EventId Ry = B.read(1, 1);
    EventId Rx = B.read(1, 0); // stale
    B.rf(Wy, Ry);
    B.txn({Wx, Wy});
    B.txn({Ry, Rx});
    verdict("MP via two synchronized{} blocks, stale read", B.build());
  }

  // 2. The same shape without transactions is racy (undefined).
  {
    ExecutionBuilder B;
    B.write(0, 0, MemOrder::NonAtomic, 1);
    EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
    EventId Ry = B.read(1, 1);
    B.read(1, 0);
    B.rf(Wy, Ry);
    verdict("same shape, no transactions", B.build());
  }

  // 3. §7.2: a transaction racing with an atomic store IS racy — the
  //    definition of data race is unchanged by TM.
  {
    ExecutionBuilder B;
    EventId Wt = B.write(0, 0, MemOrder::NonAtomic, 1);
    B.write(1, 0, MemOrder::SeqCst, 2);
    B.txn({Wt}, /*Atomic=*/true);
    verdict("atomic{ x=1; } vs atomic_store(&x,2)", B.build());
  }

  // 4. Strong isolation (Theorem 7.2): in race-free programs, atomic
  //    transactions are isolated even from non-transactional code.
  {
    ExecutionBuilder B;
    EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
    EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
    EventId R = B.read(1, 0);
    B.co(W1, W2);
    B.rf(W1, R); // observes the intermediate value
    B.txn({W1, W2}, /*Atomic=*/true);
    Execution X = B.build();
    CppModel M;
    std::printf("%-52s %s\n",
                "external read of atomic{}'s intermediate write:",
                M.consistent(X)
                    ? (M.raceFree(X) ? "allowed AND race-free (!?)"
                                     : "allowed only because it is racy")
                    : "forbidden");
    std::printf("  -> Theorem 7.2: race-freedom + no atomics inside "
                "atomic{} implies strong isolation: %s\n",
                holdsStrongIsolationAtomic(X) ? "isolated"
                                              : "not isolated (racy)");
  }

  // 5. Theorem 7.3: race-free, atomic transactions only, SC atomics only
  //    => transactional sequential consistency.
  {
    ExecutionBuilder B;
    EventId Wx = B.write(0, 0, MemOrder::SeqCst, 1);
    EventId Rx = B.read(1, 0, MemOrder::SeqCst);
    B.rf(Wx, Rx);
    EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1);
    B.txn({Wy}, /*Atomic=*/true);
    Execution X = B.build();
    CppModel M;
    TscModel Tsc;
    std::printf("\nSC atomics + atomic{} only + race-free:\n");
    std::printf("  C++-consistent: %s; TSC-consistent: %s "
                "(Theorem 7.3 in action)\n",
                M.consistent(X) ? "yes" : "no",
                Tsc.consistent(X) ? "yes" : "no");
  }

  // 6. Render a transactional program as C++ source.
  {
    ExecutionBuilder B;
    EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
    EventId Rx = B.read(1, 0);
    B.rf(Wx, Rx);
    B.txn({Wx}, /*Atomic=*/true);
    B.txn({Rx});
    Program P = programFromExecution(B.build(), "handoff").Prog;
    std::printf("\nGenerated C++ rendering:\n%s", printCpp(P).c_str());
  }
  return 0;
}
