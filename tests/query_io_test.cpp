//===- query_io_test.cpp - JSON wire-form tests --------------------------------==//
///
/// Golden and round-trip coverage of the query JSON (query/QueryIO.h):
/// `CheckRequest` / `CheckResponse` serialise with a stable field order
/// (pinned byte-for-byte by golden strings), parse back to equal values,
/// and an engine-produced batch serialises identically whatever the Jobs
/// value. Plus the small JSON parser's error paths.
///
//===----------------------------------------------------------------------===//

#include "query/Json.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"
#include "synth/SuiteIO.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

CheckRequest sampleRequest() {
  CheckRequest R;
  R.Name = "sample";
  R.Source = "name SB\nthread 0\n  store x 1\n  load y\n";
  R.ModelSpecs = {"x86", "power/-TxnOrder", "power8"};
  R.Explain = true;
  R.WantOutcomes = true;
  R.CandidateCap = 64;
  return R;
}

CheckResponse sampleResponse() {
  CheckResponse Resp;
  Resp.Name = "SB+\"quoted\"";
  Resp.Candidates = 4;
  ModelVerdict V;
  V.Spec = "x86";
  V.Allowed = true;
  V.Consistent = 3;
  V.FirstForbidden = 2;
  V.FailedAxioms.push_back({"TxnOrder", {0, 2, 3}});
  Outcome O;
  O.RegValues = {{0, 1, 0}, {1, 1, -1}};
  O.MemValues = {1, 0};
  V.AllowedOutcomes.push_back(O);
  Resp.Verdicts.push_back(std::move(V));
  Resp.Seconds = 0.25; // excluded from the canonical form
  return Resp;
}

TEST(QueryIO, RequestGolden) {
  EXPECT_EQ(
      toJson(sampleRequest()),
      "{\"name\": \"sample\", "
      "\"source\": \"name SB\\nthread 0\\n  store x 1\\n  load y\\n\", "
      "\"corpus\": \"\", "
      "\"models\": [\"x86\", \"power/-TxnOrder\", \"power8\"], "
      "\"explain\": true, \"outcomes\": true, \"candidate_cap\": 64}");
}

TEST(QueryIO, ResponseGolden) {
  EXPECT_EQ(
      toJson(sampleResponse()),
      "{\"name\": \"SB+\\\"quoted\\\"\", \"error\": \"\", "
      "\"error_line\": 0, \"candidates\": 4, \"truncated\": false, "
      "\"verdicts\": [{\"spec\": \"x86\", \"allowed\": true, "
      "\"consistent\": 3, \"first_forbidden\": 2, "
      "\"failed_axioms\": [{\"axiom\": \"TxnOrder\", "
      "\"witness\": [0, 2, 3]}], "
      "\"outcomes\": [{\"regs\": [[0, 1, 0], [1, 1, -1]], "
      "\"mem\": [1, 0]}]}]}");
  // Timing is an opt-in appendix, excluded from the canonical form.
  std::string Timed = toJson(sampleResponse(), /*IncludeTiming=*/true);
  EXPECT_NE(Timed.find("\"seconds\": 0.250000"), std::string::npos);
}

TEST(QueryIO, RequestRoundTrip) {
  CheckRequest R = sampleRequest();
  std::string Json = toJson(R);
  std::optional<JsonValue> V = parseJson(Json);
  ASSERT_TRUE(V.has_value());
  CheckRequest Back;
  std::string Error;
  ASSERT_TRUE(requestFromJson(*V, Back, &Error)) << Error;
  // Field-exact: re-serialising reproduces the bytes.
  EXPECT_EQ(toJson(Back), Json);
  EXPECT_EQ(Back.Name, R.Name);
  EXPECT_EQ(Back.Source, R.Source);
  EXPECT_EQ(Back.ModelSpecs, R.ModelSpecs);
  EXPECT_EQ(Back.Explain, R.Explain);
  EXPECT_EQ(Back.WantOutcomes, R.WantOutcomes);
  EXPECT_EQ(Back.CandidateCap, R.CandidateCap);
}

TEST(QueryIO, ResponseRoundTrip) {
  CheckResponse R = sampleResponse();
  std::string Json = toJson(R);
  std::optional<JsonValue> V = parseJson(Json);
  ASSERT_TRUE(V.has_value());
  CheckResponse Back;
  std::string Error;
  ASSERT_TRUE(responseFromJson(*V, Back, &Error)) << Error;
  EXPECT_EQ(toJson(Back), Json);
  ASSERT_EQ(Back.Verdicts.size(), 1u);
  EXPECT_EQ(Back.Verdicts[0].AllowedOutcomes, R.Verdicts[0].AllowedOutcomes);
  EXPECT_EQ(Back.Verdicts[0].FailedAxioms[0].Witness,
            R.Verdicts[0].FailedAxioms[0].Witness);
}

TEST(QueryIO, BatchRoundTrip) {
  std::vector<CheckRequest> Requests = {sampleRequest(), CheckRequest{}};
  Requests[1].Corpus = "SB";
  std::string Json = requestsToJson(Requests);
  std::vector<CheckRequest> Back;
  std::string Error;
  ASSERT_TRUE(requestsFromJson(Json, Back, &Error)) << Error;
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(requestsToJson(Back), Json);

  std::vector<CheckResponse> Responses = {sampleResponse()};
  std::string RJson = responsesToJson(Responses);
  std::vector<CheckResponse> RBack;
  ASSERT_TRUE(responsesFromJson(RJson, RBack, &Error)) << Error;
  ASSERT_EQ(RBack.size(), 1u);
  EXPECT_EQ(responsesToJson(RBack), RJson);

  // Telemetry is an appendix: parse ignores it, and its presence never
  // changes the parsed responses.
  BatchTelemetry T;
  T.Seconds = 1.5;
  T.Programs = 1;
  T.Workers.push_back({0.5, 1, 0, 0, 4});
  std::vector<CheckResponse> TBack;
  ASSERT_TRUE(responsesFromJson(responsesToJson(Responses, &T), TBack,
                                &Error))
      << Error;
  ASSERT_EQ(TBack.size(), 1u);
  EXPECT_EQ(TBack[0].Name, Responses[0].Name);

  // A single bare object also parses as a one-element batch.
  std::vector<CheckRequest> Single;
  ASSERT_TRUE(requestsFromJson(toJson(sampleRequest()), Single, &Error))
      << Error;
  EXPECT_EQ(Single.size(), 1u);
}

TEST(QueryIO, EngineBatchStableAcrossJobs) {
  // End to end: an engine-produced corpus slice serialises to identical
  // bytes for every Jobs value, and survives a parse → serialise loop.
  std::vector<CheckRequest> Requests;
  for (const char *Name : {"SB", "MP", "LB", "IRIW", "SB+txns"}) {
    CheckRequest R;
    R.Corpus = Name;
    R.ModelSpecs = {"x86", "power", "armv8-rtl"};
    R.Explain = true;
    R.WantOutcomes = true;
    Requests.push_back(std::move(R));
  }
  std::string Golden;
  for (unsigned Jobs : {1u, 4u, 16u}) {
    std::string Json =
        responsesToJson(QueryEngine({Jobs}).runAll(Requests));
    if (Golden.empty())
      Golden = Json;
    else
      ASSERT_EQ(Json, Golden) << "Jobs = " << Jobs;
  }
  std::vector<CheckResponse> Back;
  std::string Error;
  ASSERT_TRUE(responsesFromJson(Golden, Back, &Error)) << Error;
  EXPECT_EQ(responsesToJson(Back), Golden);
}

TEST(QueryIO, SuiteManifestIsCanonical) {
  // The SuiteIO JSON extension shares the canonical style: stable bytes,
  // parseable, tests replayable as query requests.
  std::string Json = suiteToJson("demo", {}, /*Forbidden=*/true);
  EXPECT_EQ(Json, "{\"schema\": \"tmw-suite-v1\", \"suite\": \"demo\", "
                  "\"verdict\": \"forbidden\", \"tests\": [\n]}\n");
  std::optional<JsonValue> V = parseJson(Json);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getString("schema"), "tmw-suite-v1");
}

TEST(Json, ParserErrors) {
  std::string Error;
  EXPECT_FALSE(parseJson("", &Error).has_value());
  EXPECT_FALSE(parseJson("{", &Error).has_value());
  EXPECT_FALSE(parseJson("{\"a\": }", &Error).has_value());
  EXPECT_FALSE(parseJson("[1, 2,, 3]", &Error).has_value());
  EXPECT_FALSE(parseJson("\"unterminated", &Error).has_value());
  EXPECT_FALSE(parseJson("{} trailing", &Error).has_value());
  EXPECT_FALSE(parseJson("nul", &Error).has_value());

  // Adversarial nesting is a parse error, not a stack overflow.
  std::string Deep(100000, '[');
  EXPECT_FALSE(parseJson(Deep, &Error).has_value());
  EXPECT_NE(Error.find("nesting"), std::string::npos);

  // Surrogate pairs decode to one UTF-8 sequence; unpaired halves are
  // rejected, not smuggled through as invalid UTF-8.
  std::optional<JsonValue> Emoji = parseJson("\"\\ud83d\\ude00\"", &Error);
  ASSERT_TRUE(Emoji.has_value()) << Error;
  EXPECT_EQ(Emoji->Str, "\xF0\x9F\x98\x80");
  EXPECT_FALSE(parseJson("\"\\ud83d\"", &Error).has_value());
  EXPECT_FALSE(parseJson("\"\\ude00\"", &Error).has_value());
  EXPECT_FALSE(parseJson("\"\\ud83dx\"", &Error).has_value());

  std::optional<JsonValue> V =
      parseJson("{\"a\": [1, -2.5, true, null, \"s\\u0041\"]}", &Error);
  ASSERT_TRUE(V.has_value()) << Error;
  const JsonValue *A = V->get("a");
  ASSERT_TRUE(A && A->isArray());
  ASSERT_EQ(A->Arr.size(), 5u);
  EXPECT_EQ(A->Arr[0].Num, 1);
  EXPECT_EQ(A->Arr[1].Num, -2.5);
  EXPECT_TRUE(A->Arr[2].B);
  EXPECT_TRUE(A->Arr[3].isNull());
  EXPECT_EQ(A->Arr[4].Str, "sA");
}

TEST(Json, DuplicateObjectKeysAreRejected) {
  // Documented policy (Json.h): a duplicate key is a parse error, never
  // first-wins or last-wins. Our writers emit fixed-order schemata and
  // cannot produce one, so a duplicate always means a malformed or
  // adversarial document.
  std::string Error;
  EXPECT_FALSE(parseJson("{\"a\": 1, \"a\": 2}", &Error).has_value());
  EXPECT_NE(Error.find("duplicate object key \"a\""), std::string::npos)
      << Error;

  // Nested objects are checked independently: a key may repeat across
  // levels, just not within one object.
  EXPECT_TRUE(parseJson("{\"a\": {\"a\": 1}}").has_value());
  EXPECT_FALSE(
      parseJson("{\"outer\": {\"x\": 1, \"y\": 2, \"x\": 3}}", &Error)
          .has_value());
  EXPECT_NE(Error.find("duplicate object key \"x\""), std::string::npos);

  // Array elements can repeat; distinct sibling keys still parse.
  EXPECT_TRUE(parseJson("[{\"k\": 1}, {\"k\": 2}]").has_value());
  EXPECT_TRUE(parseJson("{\"a\": 1, \"b\": 1}").has_value());

  // Keys distinct only after escape decoding are still duplicates.
  EXPECT_FALSE(parseJson("{\"a\": 1, \"\\u0061\": 2}", &Error).has_value());
}

TEST(Json, IntegerFidelity) {
  // The integer-preserving token path: u64-range integers survive a
  // parse exactly instead of being rounded through a double.
  std::string Error;

  // 2^53 + 1 is the first integer a double cannot hold; the exact path
  // must, on both keyed and value-level accessors.
  std::optional<JsonValue> V =
      parseJson("{\"cap\": 9007199254740993}", &Error);
  ASSERT_TRUE(V.has_value()) << Error;
  EXPECT_EQ(V->getUint("cap"), 9007199254740993ull);
  EXPECT_EQ(V->get("cap")->asUint(), std::optional<uint64_t>(9007199254740993ull));
  EXPECT_EQ(V->get("cap")->asInt(), std::optional<int64_t>(9007199254740993ll));

  // The u64 extremes round-trip; INT64_MIN takes the signed path.
  V = parseJson("{\"a\": 18446744073709551615, \"b\": -9223372036854775808}");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getUint("a"), UINT64_MAX);
  EXPECT_EQ(V->getInt("b"), INT64_MIN);
  EXPECT_FALSE(V->get("a")->asInt().has_value());  // > INT64_MAX
  EXPECT_FALSE(V->get("b")->asUint().has_value()); // negative

  // Non-integer forms are *rejected* by the integer accessors (default
  // returned), never rounded: fractions, exponent forms — even ones that
  // happen to denote integers — and 64-bit overflows.
  V = parseJson("{\"f\": 1.5, \"e\": 1e3, \"E\": 9.007199254740993e15, "
                "\"big\": 18446744073709551616, "
                "\"neg\": -9223372036854775809}");
  ASSERT_TRUE(V.has_value());
  for (const char *Key : {"f", "e", "E", "big", "neg"}) {
    EXPECT_EQ(V->getUint(Key, 77), 77u) << Key;
    EXPECT_EQ(V->getInt(Key, -77), -77) << Key;
  }
  // ... while getNumber still reads them as doubles (tolerant path).
  EXPECT_EQ(V->getNumber("e"), 1000.0);

  // -0 is a plain integer token with value zero, not a rejection.
  V = parseJson("{\"z\": -0}");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getInt("z", 77), 0);
  EXPECT_EQ(V->getUint("z", 77), 0u);

  // Out-of-double-range literals stay parse errors, not infinities.
  EXPECT_FALSE(parseJson("1e309", &Error).has_value());
  EXPECT_FALSE(parseJson("-1e309", &Error).has_value());
}

TEST(QueryIO, U64FieldsRoundTripExactly) {
  // End to end through the wire form: counts and caps above 2^53 and the
  // first_forbidden sentinel survive parse → serialise byte-for-byte.
  CheckRequest R;
  R.Name = "big";
  R.Corpus = "SB";
  R.CandidateCap = 9007199254740993ull; // 2^53 + 1
  std::string Json = toJson(R);
  std::vector<CheckRequest> Back;
  std::string Error;
  ASSERT_TRUE(requestsFromJson(Json, Back, &Error)) << Error;
  ASSERT_EQ(Back.size(), 1u);
  EXPECT_EQ(Back[0].CandidateCap, 9007199254740993ull);
  EXPECT_EQ(toJson(Back[0]), Json);

  CheckResponse Resp;
  Resp.Name = "big";
  Resp.Candidates = UINT64_MAX;
  ModelVerdict V;
  V.Spec = "x86";
  V.Consistent = 9007199254740995ull;
  V.FirstForbidden = 9007199254740997ll;
  Resp.Verdicts.push_back(V);
  std::string RJson = toJson(Resp);
  std::vector<CheckResponse> RBack;
  ASSERT_TRUE(responsesFromJson(RJson, RBack, &Error)) << Error;
  ASSERT_EQ(RBack.size(), 1u);
  EXPECT_EQ(RBack[0].Candidates, UINT64_MAX);
  EXPECT_EQ(RBack[0].Verdicts[0].Consistent, 9007199254740995ull);
  EXPECT_EQ(RBack[0].Verdicts[0].FirstForbidden, 9007199254740997ll);
  EXPECT_EQ(toJson(RBack[0]), RJson);
}

TEST(QueryIO, SingleLineBatchForm) {
  // The NDJSON framing the server reads: no interior newlines, parses
  // back to the same batch as the multi-line form.
  std::vector<CheckRequest> Requests = {sampleRequest(), CheckRequest{}};
  Requests[1].Corpus = "SB";
  std::string Line = requestsToJsonLine(Requests);
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  std::vector<CheckRequest> Back;
  std::string Error;
  ASSERT_TRUE(requestsFromJson(Line, Back, &Error)) << Error;
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(requestsToJson(Back), requestsToJson(Requests));

  // The batch-error document is schema'd, parseable, and empty.
  std::string Err = batchErrorToJson("batch parse error: boom \"quoted\"");
  std::optional<JsonValue> V = parseJson(Err, &Error);
  ASSERT_TRUE(V.has_value()) << Error;
  EXPECT_EQ(V->getString("schema"), "tmw-query-verdicts-v1");
  EXPECT_EQ(V->getString("error"), "batch parse error: boom \"quoted\"");
  std::vector<CheckResponse> None;
  ASSERT_TRUE(responsesFromJson(Err, None, &Error)) << Error;
  EXPECT_TRUE(None.empty());
}

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(jsonQuote("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(jsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

} // namespace
