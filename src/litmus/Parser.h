//===- Parser.h - Parsing the litmus DSL ------------------------*- C++ -*-==//
///
/// \file
/// Parses the line-oriented litmus DSL emitted by `printDsl`:
///
/// \code
///   name SB+txn
///   loc x 0
///   thread 0
///     store x 1
///     load y na
///   thread 1
///     txbegin
///     store y 1
///     txend
///   post reg 0 r1 0
///   post mem x 1
/// \endcode
///
/// Parsing never aborts the process: errors are reported through the
/// result's `Error` field.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_LITMUS_PARSER_H
#define TMW_LITMUS_PARSER_H

#include "litmus/Program.h"

#include <string>
#include <string_view>

namespace tmw {

/// Result of parsing: the program, or a diagnostic.
struct ParseResult {
  Program Prog;
  /// Empty when parsing succeeded; otherwise the bare message (no
  /// position prefix — see `ErrorLine` / `diagnostic()`).
  std::string Error;
  /// 1-based line of the error, 0 when parsing succeeded (or the input
  /// ended unexpectedly).
  unsigned ErrorLine = 0;

  explicit operator bool() const { return Error.empty(); }

  /// One-line compiler-style diagnostic: `file:line: message` (or
  /// `line N: message` when \p File is empty) — what `litmus_tool` prints
  /// before exiting nonzero.
  std::string diagnostic(std::string_view File = {}) const;
};

/// Parse \p Text in the DSL of `printDsl`. Takes a view: callers (the
/// query server's session cache in particular) can parse straight out of
/// wire buffers; the result owns all of its storage, so it stays valid
/// after the viewed text is gone (cache-safe program ownership).
ParseResult parseProgram(std::string_view Text);

} // namespace tmw

#endif // TMW_LITMUS_PARSER_H
