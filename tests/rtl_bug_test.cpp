//===- rtl_bug_test.cpp - The §6.2 RTL-bug-finding flow -----------------------==//
///
/// ARM hardware does not support TM, so the ARMv8 Forbid suite cannot be
/// run on silicon; the paper reports that handing the suite to ARM
/// architects revealed a TxnOrder violation in an RTL prototype. Here the
/// prototype is an implementation model with TxnOrder dropped, and the
/// suite catches it mechanically.
///
//===----------------------------------------------------------------------===//

#include "execution/Builder.h"
#include "hw/ImplModel.h"
#include "models/Armv8Model.h"
#include "synth/Conformance.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(RtlBugTest, ForbidSuiteCatchesTxnOrderViolation) {
  Armv8Model Tm;
  Armv8Model Baseline{Armv8Model::Config::baseline()};
  // TxnOrder-only witnesses first appear at 4 events and need no
  // dependencies (a release write ordered before the transaction's
  // conflicting store); restrict the vocabulary so the 4-event synthesis
  // stays fast.
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  V.Deps = false;
  V.MaxThreads = 2;
  V.MaxLocations = 2;
  ForbidSuite Suite = synthesizeForbid(Tm, Baseline, V, 4, 300.0);
  ASSERT_FALSE(Suite.Tests.empty());

  ImplModel Buggy = ImplModel::armv8BuggyRtl();
  ImplModel Good = ImplModel::armv8Silicon();
  unsigned BugWitnesses = 0;
  for (const Execution &X : Suite.Tests) {
    // A correct implementation never exhibits a Forbid test.
    EXPECT_FALSE(Good.consistent(X));
    // The buggy RTL exhibits at least one.
    BugWitnesses += Buggy.consistent(X);
  }
  EXPECT_GT(BugWitnesses, 0u);
}

TEST(RtlBugTest, TxnOrderOnlyWitnessShape) {
  // The witness the suite finds, hand-built: T0 writes the flag then a
  // release store to x; T1's whole-thread transaction reads the flag's
  // initial value and writes x coherence-after T0's store. Only the
  // lifted ob cycle (TxnOrder) forbids it.
  ExecutionBuilder B;
  EventId Wm = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Wx = B.write(0, 0, MemOrder::Release, 1);
  EventId Rm = B.read(1, 1); // reads the initial value of m
  EventId WxT = B.write(1, 0, MemOrder::NonAtomic, 2);
  B.co(Wx, WxT);
  B.txn({Rm, WxT});
  (void)Wm;
  Execution X = B.build();

  Armv8Model Tm;
  ConsistencyResult C = Tm.check(X);
  ASSERT_FALSE(C.Consistent);
  EXPECT_EQ(C.FailedAxiom, "TxnOrder");
  Armv8Model Baseline{Armv8Model::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
  EXPECT_TRUE(ImplModel::armv8BuggyRtl().consistent(X));
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  EXPECT_TRUE(isMinimallyInconsistent(X, Tm, V));
}

TEST(RtlBugTest, BuggyRtlIsWeakerThanSpec) {
  // Whatever the spec allows, the buggy RTL allows (dropping an axiom
  // only adds behaviours) — checked on the Allow suite.
  Armv8Model Tm;
  Armv8Model Baseline{Armv8Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  ForbidSuite Suite = synthesizeForbid(Tm, Baseline, V, 3, 60.0);
  std::vector<Execution> Allow = relaxationsOf(Suite.Tests, V);
  ImplModel Buggy = ImplModel::armv8BuggyRtl();
  for (const Execution &X : Allow)
    if (!(X.Po | X.Rf).isAcyclic())
      continue; // the impl model is load-buffering-free
    else
      EXPECT_TRUE(Buggy.consistent(X) || !Armv8Model().consistent(X));
}

} // namespace
