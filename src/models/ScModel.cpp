//===- ScModel.cpp - SC and Transactional SC --------------------------------==//

#include "models/ScModel.h"

using namespace tmw;

ConsistencyResult ScModel::check(const ExecutionAnalysis &A) const {
  Relation Hb = A.po() | A.com();
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");
  return ConsistencyResult::ok();
}

ConsistencyResult TscModel::check(const ExecutionAnalysis &A) const {
  Relation Hb = A.po() | A.com();
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");
  if (!strongLift(Hb, A.stxn()).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  return ConsistencyResult::ok();
}
