//===- LockElision.cpp - Checking lock elision (§8.3) --------------------------==//

#include "metatheory/LockElision.h"

#include <algorithm>
#include <chrono>
#include <functional>

using namespace tmw;

bool tmw::holdsCrOrder(const ExecutionAnalysis &A) {
  return weakLift(A.po() | A.com(), A.scr()).isAcyclic();
}

Execution tmw::elideLocks(const Execution &Abstract, Arch A,
                          bool FixedSpinlock) {
  unsigned N = Abstract.size();
  LocId LockVar = static_cast<LocId>(Abstract.numLocations());

  // Size of the implementation of each method call (Table 3).
  auto ExpansionSize = [&](EventKind K) -> unsigned {
    switch (K) {
    case EventKind::Lock:
      switch (A) {
      case Arch::X86:
        return 3; // test read; locked read; locked write
      case Arch::Power:
        return 3; // lwarx; stwcx.; isync
      case Arch::Armv8:
        return FixedSpinlock ? 3u : 2u; // ldaxr; stxr; (dmb)
      default:
        return 0;
      }
    case EventKind::Unlock:
      return A == Arch::Power ? 2 : 1; // (sync;) store
    case EventKind::TxLock:
      return 1; // read of the lock variable, inside the transaction
    case EventKind::TxUnlock:
      return 0; // vanishes
    default:
      return 1;
    }
  };

  unsigned TargetCount = 0;
  for (unsigned E = 0; E < N; ++E)
    TargetCount += ExpansionSize(Abstract.event(E).Kind);
  assert(TargetCount <= kMaxEvents && "concrete execution too large");

  Execution Y(TargetCount);
  std::vector<int> MainOf(N, -1);

  unsigned Next = 0;
  unsigned NumThreads = Abstract.numThreads();
  int NextTxn = static_cast<int>(Abstract.numTxns());

  for (unsigned T = 0; T < NumThreads; ++T) {
    std::vector<EventId> Es;
    for (EventId E : Abstract.ofThread(T))
      Es.push_back(E);
    std::sort(Es.begin(), Es.end(), [&Abstract](EventId P, EventId Q) {
      return Abstract.Po.contains(P, Q);
    });

    // Transaction class for the elided CR currently open on this thread.
    int ElidedTxn = kNoClass;

    auto Emit = [&](const Event &Ev, int Txn) {
      Y.event(Next) = Ev;
      Y.event(Next).Thread = T;
      Y.Txn[Next] = Txn;
      return static_cast<int>(Next++);
    };

    for (EventId E : Es) {
      const Event &Ev = Abstract.event(E);
      switch (Ev.Kind) {
      case EventKind::Lock: {
        if (A == Arch::X86) {
          Event Test;
          Test.Kind = EventKind::Read;
          Test.Loc = LockVar;
          Emit(Test, kNoClass);
        }
        Event Rm;
        Rm.Kind = EventKind::Read;
        Rm.Loc = LockVar;
        if (A == Arch::Armv8)
          Rm.Order = MemOrder::Acquire; // LDAXR
        int R = Emit(Rm, kNoClass);
        Event Wm;
        Wm.Kind = EventKind::Write;
        Wm.Loc = LockVar;
        Wm.WrittenValue = 1; // taken
        int W = Emit(Wm, kNoClass);
        Y.Rmw.insert(R, W);
        MainOf[E] = R;
        if (A == Arch::Power) {
          Event Isync;
          Isync.Kind = EventKind::Fence;
          Isync.Fence = FenceKind::ISync;
          Emit(Isync, kNoClass);
        }
        if (A == Arch::Armv8 && FixedSpinlock) {
          Event Dmb;
          Dmb.Kind = EventKind::Fence;
          Dmb.Fence = FenceKind::Dmb;
          Emit(Dmb, kNoClass);
        }
        break;
      }
      case EventKind::Unlock: {
        if (A == Arch::Power) {
          Event Sync;
          Sync.Kind = EventKind::Fence;
          Sync.Fence = FenceKind::Sync;
          Emit(Sync, kNoClass);
        }
        Event Wm;
        Wm.Kind = EventKind::Write;
        Wm.Loc = LockVar;
        Wm.WrittenValue = 0; // free
        if (A == Arch::Armv8)
          Wm.Order = MemOrder::Release; // STLR
        MainOf[E] = Emit(Wm, kNoClass);
        break;
      }
      case EventKind::TxLock: {
        ElidedTxn = NextTxn++;
        Event Rm;
        Rm.Kind = EventKind::Read;
        Rm.Loc = LockVar;
        MainOf[E] = Emit(Rm, ElidedTxn);
        break;
      }
      case EventKind::TxUnlock:
        ElidedTxn = kNoClass;
        break;
      default: {
        // Ordinary memory events keep their structure. Events of an
        // elided CR join its transaction (TxnIntro); others keep theirs.
        int Txn = ElidedTxn != kNoClass ? ElidedTxn : Abstract.Txn[E];
        MainOf[E] = Emit(Ev, Txn);
        break;
      }
      }
    }
  }
  assert(Next == TargetCount && "expansion size mismatch");

  for (unsigned P = 0; P < TargetCount; ++P)
    for (unsigned Q = P + 1; Q < TargetCount; ++Q)
      if (Y.event(P).Thread == Y.event(Q).Thread)
        Y.Po.insert(P, Q);

  auto CopyRel = [&](const Relation &Src, Relation &Dst) {
    Src.forEachPair([&](EventId P, EventId Q) {
      if (MainOf[P] >= 0 && MainOf[Q] >= 0)
        Dst.insert(static_cast<EventId>(MainOf[P]),
                   static_cast<EventId>(MainOf[Q]));
    });
  };
  CopyRel(Abstract.Rf, Y.Rf);
  CopyRel(Abstract.Co, Y.Co);
  CopyRel(Abstract.Addr, Y.Addr);
  CopyRel(Abstract.Data, Y.Data);
  CopyRel(Abstract.Rmw, Y.Rmw);
  // ctrl must stay forward-closed through the mapping.
  Abstract.Ctrl.forEachPair([&](EventId P, EventId Q) {
    if (MainOf[P] < 0 || MainOf[Q] < 0)
      return;
    EventId Src = static_cast<EventId>(MainOf[P]);
    Y.Ctrl.insert(Src, static_cast<EventId>(MainOf[Q]));
    for (unsigned B = 0; B < TargetCount; ++B)
      if (Y.Po.contains(static_cast<EventId>(MainOf[Q]), B))
        Y.Ctrl.insert(Src, B);
  });

  // The spinlock's loop branches: control dependencies from the exclusive
  // read of the lock variable (branch on the loaded value) and — on Power,
  // per §8.3 footnote 3 — from the store-exclusive (branch on the
  // store-conditional's status) to everything po-later.
  for (unsigned E = 0; E < TargetCount; ++E) {
    bool ExclRead =
        Y.event(E).isRead() && Y.Rmw.domain().contains(E);
    bool ExclWrite = A == Arch::Power && Y.event(E).isWrite() &&
                     Y.Rmw.range().contains(E);
    if (Y.event(E).Loc != LockVar || (!ExclRead && !ExclWrite))
      continue;
    for (unsigned B = 0; B < TargetCount; ++B)
      if (Y.Po.contains(E, B))
        Y.Ctrl.insert(E, B);
  }

  return Y;
}

std::vector<Execution> tmw::lockVarCompletions(const Execution &Concrete) {
  std::vector<Execution> Out;
  LocId LockVar = static_cast<LocId>(Concrete.numLocations() - 1);

  std::vector<EventId> Reads, Writes, LockWrites, UnlockWrites;
  for (unsigned E = 0; E < Concrete.size(); ++E) {
    const Event &Ev = Concrete.event(E);
    if (Ev.Loc != LockVar)
      continue;
    if (Ev.isRead())
      Reads.push_back(E);
    if (Ev.isWrite()) {
      Writes.push_back(E);
      if (Ev.WrittenValue != 0)
        LockWrites.push_back(E);
      else
        UnlockWrites.push_back(E);
    }
  }

  Execution X = Concrete;
  std::function<void(unsigned)> ChooseCo = [&](unsigned) {
    std::vector<EventId> Perm = Writes;
    std::sort(Perm.begin(), Perm.end());
    if (Perm.size() <= 1) {
      if (X.checkWellFormed() == nullptr)
        Out.push_back(X);
      return;
    }
    do {
      for (unsigned I = 0; I < Perm.size(); ++I)
        for (unsigned J = 0; J < Perm.size(); ++J)
          if (I < J)
            X.Co.insert(Perm[I], Perm[J]);
          else if (I != J)
            X.Co.erase(Perm[I], Perm[J]);
      if (X.checkWellFormed() == nullptr)
        Out.push_back(X);
    } while (std::next_permutation(Perm.begin(), Perm.end()));
    for (EventId P : Writes)
      for (EventId Q : Writes)
        if (P != Q)
          X.Co.erase(P, Q);
  };

  std::function<void(unsigned)> ChooseRf = [&](unsigned Idx) {
    if (Idx == Reads.size()) {
      ChooseCo(0);
      return;
    }
    EventId R = Reads[Idx];
    // Every read of the lock variable must see the lock free: acquiring
    // reads succeed only on a free lock, and elided-region reads are
    // constrained by TxnReadsLockFree. Sources: initial value (no rf) or
    // an unlock write.
    ChooseRf(Idx + 1);
    for (EventId W : UnlockWrites) {
      X.Rf.insert(W, R);
      ChooseRf(Idx + 1);
      X.Rf.erase(W, R);
    }
  };

  ChooseRf(0);
  (void)LockWrites;
  return Out;
}

namespace {

/// Enumerate abstract lock-elision executions: two threads, each one
/// critical region over one shared location, with a choice of normal or
/// elided locking per thread (at least one elided).
struct AbstractSearch {
  unsigned MaxEvents;
  const std::function<bool(Execution &)> &Sink;
  bool Aborted = false;

  void run() {
    // Body sizes: total events = 4 lock calls + B0 + B1.
    for (unsigned B0 = 0; B0 + 4 <= MaxEvents && !Aborted; ++B0)
      for (unsigned B1 = 0; B0 + B1 + 4 <= MaxEvents && !Aborted; ++B1) {
        if (B0 + B1 == 0)
          continue;
        for (bool Elide0 : {false, true})
          for (bool Elide1 : {false, true}) {
            if (!Elide0 && !Elide1)
              continue;
            buildSkeleton(B0, B1, Elide0, Elide1);
            if (Aborted)
              return;
          }
      }
  }

  void buildSkeleton(unsigned B0, unsigned B1, bool Elide0, bool Elide1) {
    unsigned N = 4 + B0 + B1;
    Execution X(N);
    unsigned Next = 0;
    auto AddLockCall = [&](unsigned T, EventKind K, int Cr) {
      X.event(Next).Kind = K;
      X.event(Next).Thread = T;
      X.Cr[Next] = Cr;
      ++Next;
    };
    std::vector<EventId> Body;
    auto AddBody = [&](unsigned T, unsigned Count, int Cr) {
      for (unsigned I = 0; I < Count; ++I) {
        X.event(Next).Thread = T;
        X.Cr[Next] = Cr;
        Body.push_back(Next);
        ++Next;
      }
    };
    AddLockCall(0, Elide0 ? EventKind::TxLock : EventKind::Lock, 0);
    AddBody(0, B0, 0);
    AddLockCall(0, Elide0 ? EventKind::TxUnlock : EventKind::Unlock, 0);
    AddLockCall(1, Elide1 ? EventKind::TxLock : EventKind::Lock, 1);
    AddBody(1, B1, 1);
    AddLockCall(1, Elide1 ? EventKind::TxUnlock : EventKind::Unlock, 1);
    for (unsigned P = 0; P < N; ++P)
      for (unsigned Q = P + 1; Q < N; ++Q)
        if (X.event(P).Thread == X.event(Q).Thread)
          X.Po.insert(P, Q);

    chooseKinds(X, Body, 0);
  }

  void chooseKinds(Execution &X, const std::vector<EventId> &Body,
                   unsigned Idx) {
    if (Aborted)
      return;
    if (Idx == Body.size()) {
      chooseRf(X, Body, 0);
      return;
    }
    for (EventKind K : {EventKind::Read, EventKind::Write}) {
      X.event(Body[Idx]).Kind = K;
      X.event(Body[Idx]).Loc = 0;
      chooseKinds(X, Body, Idx + 1);
      if (Aborted)
        return;
    }
  }

  void chooseRf(Execution &X, const std::vector<EventId> &Body,
                unsigned Idx) {
    if (Aborted)
      return;
    std::vector<EventId> Reads, Writes;
    for (EventId E : Body) {
      if (X.event(E).isRead())
        Reads.push_back(E);
      if (X.event(E).isWrite())
        Writes.push_back(E);
    }
    if (Idx == Reads.size()) {
      chooseCo(X, Writes);
      return;
    }
    EventId R = Reads[Idx];
    ChooseSource(X, Body, Idx, R, Writes);
  }

  void ChooseSource(Execution &X, const std::vector<EventId> &Body,
                    unsigned Idx, EventId R,
                    const std::vector<EventId> &Writes) {
    chooseRfNext(X, Body, Idx); // read the initial value
    if (Aborted)
      return;
    for (EventId W : Writes) {
      X.Rf.insert(W, R);
      chooseRfNext(X, Body, Idx);
      X.Rf.erase(W, R);
      if (Aborted)
        return;
    }
  }

  void chooseRfNext(Execution &X, const std::vector<EventId> &Body,
                    unsigned Idx) {
    chooseRf(X, Body, Idx + 1);
  }

  void chooseCo(Execution &X, const std::vector<EventId> &Writes) {
    if (Aborted)
      return;
    if (Writes.size() <= 1) {
      emit(X);
      return;
    }
    std::vector<EventId> Perm = Writes;
    do {
      for (unsigned I = 0; I < Perm.size(); ++I)
        for (unsigned J = 0; J < Perm.size(); ++J)
          if (I < J)
            X.Co.insert(Perm[I], Perm[J]);
          else if (I != J)
            X.Co.erase(Perm[I], Perm[J]);
      emit(X);
      if (Aborted)
        break;
    } while (std::next_permutation(Perm.begin(), Perm.end()));
    for (EventId P : Writes)
      for (EventId Q : Writes)
        if (P != Q)
          X.Co.erase(P, Q);
  }

  void emit(Execution &X) {
    if (X.checkWellFormed() != nullptr)
      return;
    if (!Sink(X))
      Aborted = true;
  }
};

} // namespace

ElisionResult tmw::checkLockElision(const MemoryModel &TmModel,
                                    const MemoryModel &SpecModel, Arch A,
                                    bool FixedSpinlock, unsigned MaxEvents,
                                    double BudgetSeconds) {
  ElisionResult Res;
  auto Start = std::chrono::steady_clock::now();
  auto Elapsed = [&Start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  std::function<bool(Execution &)> Sink = [&](Execution &X) -> bool {
    if (Elapsed() > BudgetSeconds)
      return false;
    ++Res.AbstractChecked;
    // Spec-forbidden: the architecture axioms hold (the behaviour is
    // plausible) but critical regions fail to serialise. One analysis
    // serves both predicates (they share com).
    ExecutionAnalysis AX(X);
    if (!SpecModel.consistent(AX) || holdsCrOrder(AX))
      return true;
    Execution Skeleton = elideLocks(X, A, FixedSpinlock);
    for (const Execution &Y : lockVarCompletions(Skeleton)) {
      ++Res.ConcreteChecked;
      if (TmModel.consistent(Y)) {
        Res.CounterexampleFound = true;
        Res.Abstract = X;
        Res.Concrete = Y;
        return false;
      }
    }
    return true;
  };

  AbstractSearch Search{MaxEvents, Sink};
  Search.run();
  Res.Complete = !Search.Aborted || Res.CounterexampleFound;
  Res.Seconds = Elapsed();
  return Res;
}
