//===- Armv8Model.cpp - ARMv8 with proposed transactions ---------------------==//

#include "models/Armv8Model.h"

using namespace tmw;

const char *Armv8Model::name() const {
  return (Cfg.Tfence || Cfg.StrongIsol || Cfg.TxnOrder || Cfg.TxnCancelsRmw)
             ? "ARMv8+TM"
             : "ARMv8";
}

Relation Armv8Model::orderedBefore(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  EventSet R = A.reads(), W = A.writes();
  // Acq: acquire reads (LDAR/LDAXR); L: release writes (STLR).
  EventSet Acq = A.acquires() & R;
  EventSet L = A.releases() & W;
  Relation IdA = Relation::identityOn(Acq, N);
  Relation IdL = Relation::identityOn(L, N);
  Relation IdR = Relation::identityOn(R, N);
  Relation IdW = Relation::identityOn(W, N);

  // Observed-by: external communication.
  Relation Obs = A.external(A.com());

  // Dependency-ordered-before.
  Relation IsbId = Relation::identityOn(A.fences(FenceKind::Isb), N);
  Relation IsbBefore =
      (A.ctrl() | A.addr().compose(A.po())).compose(IsbId).compose(A.po())
          .compose(IdR);
  Relation Dob = A.addr() | A.data();
  Dob |= A.ctrl().compose(IdW);
  Dob |= IsbBefore;
  Dob |= A.addr().compose(A.po()).compose(IdW);
  Dob |= (A.ctrl() | A.data()).compose(A.coi());
  Dob |= (A.addr() | A.data()).compose(A.rfi());

  // Atomic-ordered-before.
  Relation Aob = A.rmw();
  Aob |= Relation::identityOn(A.rmw().range(), N).compose(A.rfi())
             .compose(IdA);

  // Barrier-ordered-before.
  Relation DmbId = Relation::identityOn(A.fences(FenceKind::Dmb), N);
  Relation DmbLdId = Relation::identityOn(A.fences(FenceKind::DmbLd), N);
  Relation DmbStId = Relation::identityOn(A.fences(FenceKind::DmbSt), N);
  Relation Bob = A.po().compose(DmbId).compose(A.po());
  Bob |= IdL.compose(A.po()).compose(IdA);
  Bob |= IdR.compose(A.po()).compose(DmbLdId).compose(A.po());
  Bob |= IdA.compose(A.po());
  Bob |= IdW.compose(A.po()).compose(DmbStId).compose(A.po()).compose(IdW);
  Bob |= A.po().compose(IdL);
  Bob |= A.po().compose(IdL).compose(A.coi());

  Relation Ob = Obs | Dob | Aob | Bob;
  if (Cfg.Tfence)
    Ob |= A.tfence();
  return Ob;
}

ConsistencyResult Armv8Model::check(const ExecutionAnalysis &A) const {
  const Relation &Com = A.com();
  if (!(A.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");

  Relation Ob = orderedBefore(A);
  if (!Ob.isAcyclic())
    return ConsistencyResult::fail("Order");

  if (!(A.rmw() & A.fre().compose(A.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  if (Cfg.StrongIsol && !A.strongLiftComStxn().isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Ob, A.stxn()).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  if (Cfg.TxnCancelsRmw &&
      !(A.rmw() & A.tfence().transitiveClosure()).isEmpty())
    return ConsistencyResult::fail("TxnCancelsRMW");

  return ConsistencyResult::ok();
}
