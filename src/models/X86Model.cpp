//===- X86Model.cpp - x86-TSO with transactions ------------------------------==//

#include "models/X86Model.h"

using namespace tmw;

const char *X86Model::name() const {
  return (Cfg.Tfence || Cfg.StrongIsol || Cfg.TxnOrder) ? "x86+TM" : "x86";
}

Relation X86Model::happensBefore(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  EventSet R = A.reads(), W = A.writes();

  // ppo = ((W x W) u (R x W) u (R x R)) n po: TSO relaxes only W->R.
  Relation Ppo = (Relation::cross(W, W, N) | Relation::cross(R, W, N) |
                  Relation::cross(R, R, N)) &
                 A.po();

  // implied = [L] ; po  u  po ; [L]  u  tfence, L the locked RMW events.
  EventSet Locked = A.rmw().domain() | A.rmw().range();
  Relation LockedId = Relation::identityOn(Locked, N);
  Relation Implied = LockedId.compose(A.po()) | A.po().compose(LockedId);
  if (Cfg.Tfence)
    Implied |= A.tfence();

  return A.fenceRel(FenceKind::MFence) | Ppo | Implied | A.rfe() | A.fr() |
         A.co();
}

ConsistencyResult X86Model::check(const ExecutionAnalysis &A) const {
  const Relation &Com = A.com();
  if (!(A.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");

  if (!(A.rmw() & A.fre().compose(A.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  Relation Hb = happensBefore(A);
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");

  if (Cfg.StrongIsol && !A.strongLiftComStxn().isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Hb, A.stxn()).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");

  return ConsistencyResult::ok();
}
