//===- Armv8Model.cpp - ARMv8 with proposed transactions ---------------------==//

#include "models/Armv8Model.h"

using namespace tmw;

const char *Armv8Model::name() const {
  return (Cfg.Tfence || Cfg.StrongIsol || Cfg.TxnOrder || Cfg.TxnCancelsRmw)
             ? "ARMv8+TM"
             : "ARMv8";
}

Relation Armv8Model::orderedBefore(const Execution &X) const {
  unsigned N = X.size();
  EventSet R = X.reads(), W = X.writes();
  // A: acquire reads (LDAR/LDAXR); L: release writes (STLR).
  EventSet A = X.acquires() & R;
  EventSet L = X.releases() & W;
  Relation IdA = Relation::identityOn(A, N);
  Relation IdL = Relation::identityOn(L, N);
  Relation IdR = Relation::identityOn(R, N);
  Relation IdW = Relation::identityOn(W, N);

  // Observed-by: external communication.
  Relation Obs = X.external(X.com());

  // Dependency-ordered-before.
  Relation IsbId = Relation::identityOn(X.fences(FenceKind::Isb), N);
  Relation IsbBefore =
      (X.Ctrl | X.Addr.compose(X.Po)).compose(IsbId).compose(X.Po).compose(
          IdR);
  Relation Dob = X.Addr | X.Data;
  Dob |= X.Ctrl.compose(IdW);
  Dob |= IsbBefore;
  Dob |= X.Addr.compose(X.Po).compose(IdW);
  Dob |= (X.Ctrl | X.Data).compose(X.coi());
  Dob |= (X.Addr | X.Data).compose(X.rfi());

  // Atomic-ordered-before.
  Relation Aob = X.Rmw;
  Aob |= Relation::identityOn(X.Rmw.range(), N).compose(X.rfi()).compose(IdA);

  // Barrier-ordered-before.
  Relation DmbId = Relation::identityOn(X.fences(FenceKind::Dmb), N);
  Relation DmbLdId = Relation::identityOn(X.fences(FenceKind::DmbLd), N);
  Relation DmbStId = Relation::identityOn(X.fences(FenceKind::DmbSt), N);
  Relation Bob = X.Po.compose(DmbId).compose(X.Po);
  Bob |= IdL.compose(X.Po).compose(IdA);
  Bob |= IdR.compose(X.Po).compose(DmbLdId).compose(X.Po);
  Bob |= IdA.compose(X.Po);
  Bob |= IdW.compose(X.Po).compose(DmbStId).compose(X.Po).compose(IdW);
  Bob |= X.Po.compose(IdL);
  Bob |= X.Po.compose(IdL).compose(X.coi());

  Relation Ob = Obs | Dob | Aob | Bob;
  if (Cfg.Tfence)
    Ob |= X.tfence();
  return Ob;
}

ConsistencyResult Armv8Model::check(const Execution &X) const {
  Relation Com = X.com();
  if (!(X.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");

  Relation Ob = orderedBefore(X);
  if (!Ob.isAcyclic())
    return ConsistencyResult::fail("Order");

  if (!(X.Rmw & X.fre().compose(X.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  Relation Stxn = X.stxn();
  if (Cfg.StrongIsol && !strongLift(Com, Stxn).isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Ob, Stxn).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  if (Cfg.TxnCancelsRmw &&
      !(X.Rmw & X.tfence().transitiveClosure()).isEmpty())
    return ConsistencyResult::fail("TxnCancelsRMW");

  return ConsistencyResult::ok();
}
