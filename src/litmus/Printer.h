//===- Printer.h - Rendering litmus tests -----------------------*- C++ -*-==//
///
/// \file
/// Renders litmus tests in the paper's pseudo-code style (Figs. 1, 2) and
/// as per-architecture assembly-flavoured listings. The tooling
/// "specialises txbegin/txend for each target architecture" (§3.2): XBEGIN
/// / XEND on x86, tbegin. / tend. on Power, and the paper's unofficial
/// TXBEGIN / TXEND mnemonics on ARMv8. Dependencies are rendered with the
/// standard `eor`/`xor` tricks.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_LITMUS_PRINTER_H
#define TMW_LITMUS_PRINTER_H

#include "litmus/Program.h"
#include "models/MemoryModel.h"

#include <string>

namespace tmw {

/// Paper-style pseudo-code (Fig. 1/2): `a: r0 <- [x]`, `Initially:`,
/// `Test:` lines, transactions as txbegin/txend.
std::string printGeneric(const Program &P);

/// Assembly-flavoured listing for \p A (x86, Power, or ARMv8).
std::string printAsm(const Program &P, Arch A);

/// C++ source rendering: atomics with explicit memory orders, `atomic{}` /
/// `synchronized{}` transaction blocks.
std::string printCpp(const Program &P);

/// Serialise in the round-trippable DSL accepted by `parseProgram`.
std::string printDsl(const Program &P);

} // namespace tmw

#endif // TMW_LITMUS_PRINTER_H
