//===- Builder.h - Fluent construction of executions ------------*- C++ -*-==//
///
/// \file
/// Convenience builder for execution graphs. Program order is taken from
/// the per-thread insertion order; coherence is completed to a total order
/// per location (user edges first, event order as tie-break); control
/// dependencies are forward-closed automatically.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_EXECUTION_BUILDER_H
#define TMW_EXECUTION_BUILDER_H

#include "execution/Execution.h"

#include <initializer_list>
#include <vector>

namespace tmw {

/// Builds well-formed executions for tests, examples, and the hardware
/// substitutes. All methods return the new event's id; relations may be
/// declared in any order before `build()`.
class ExecutionBuilder {
public:
  ExecutionBuilder() = default;

  /// Append a read of \p Loc on \p Thread.
  EventId read(unsigned Thread, LocId Loc, MemOrder MO = MemOrder::NonAtomic);
  /// Append a write of \p Value to \p Loc on \p Thread.
  EventId write(unsigned Thread, LocId Loc, MemOrder MO = MemOrder::NonAtomic,
                int Value = 0);
  /// Append a fence of flavour \p K on \p Thread.
  EventId fence(unsigned Thread, FenceKind K,
                MemOrder MO = MemOrder::NonAtomic);
  /// Append a lock-elision method-call event of kind \p K on \p Thread.
  EventId lockCall(unsigned Thread, EventKind K);

  /// Declare a reads-from edge W -> R.
  void rf(EventId W, EventId R);
  /// Declare a coherence edge A -> B (completed to a total order by build).
  void co(EventId A, EventId B);
  void addr(EventId A, EventId B);
  void data(EventId A, EventId B);
  /// Declare a control dependency; forward closure is added by build().
  void ctrl(EventId A, EventId B);
  /// Pair the read \p A with the write \p B of an RMW operation.
  void rmw(EventId A, EventId B);

  /// Place \p Members inside one successful transaction. Returns the class.
  int txn(std::initializer_list<EventId> Members, bool Atomic = false);
  /// Place \p Members inside one critical region (first must be a lock call,
  /// last the matching unlock). Returns the region id.
  int cr(std::initializer_list<EventId> Members);

  /// Assemble the execution. Asserts that the result is well-formed.
  Execution build() const;
  /// Assemble without the well-formedness assertion (for negative tests).
  Execution buildUnchecked() const;

private:
  struct PendingEvent {
    Event Ev;
  };
  std::vector<Event> Events;
  std::vector<std::pair<EventId, EventId>> RfEdges, CoEdges, AddrEdges,
      DataEdges, CtrlEdges, RmwEdges;
  std::vector<std::pair<std::vector<EventId>, bool>> Txns;
  std::vector<std::vector<EventId>> Crs;

  EventId append(const Event &Ev);
};

} // namespace tmw

#endif // TMW_EXECUTION_BUILDER_H
