//===- lock_elision.cpp - Auditing a lock-elision library -----------------------==//
///
/// The paper's headline use-case as a downstream user would run it: take
/// a spinlock implementation (the architecture's recommended sequence),
/// treat elision as a program transformation, and ask whether mutual
/// exclusion survives on each architecture — then apply the DMB fix and
/// re-audit.
///
/// Run: ./lock_elision
///
//===----------------------------------------------------------------------===//

#include "litmus/FromExecution.h"
#include "litmus/Printer.h"
#include "metatheory/LockElision.h"
#include "models/Armv8Model.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

#include <cstdio>

using namespace tmw;

namespace {

void audit(const char *Name, const MemoryModel &Tm, const MemoryModel &Spec,
           Arch A, bool Fixed) {
  ElisionResult R = checkLockElision(Tm, Spec, A, Fixed, 7, 120.0);
  std::printf("%-16s %-28s ", Name,
              R.CounterexampleFound ? "UNSOUND (counterexample below)"
              : R.Complete          ? "sound up to the bound"
                                    : "no counterexample (budget hit)");
  std::printf("[%llu abstract executions in %.2fs]\n",
              static_cast<unsigned long long>(R.AbstractChecked),
              R.Seconds);
  if (!R.CounterexampleFound)
    return;
  std::printf("\n  The specification forbids this client behaviour "
              "(critical regions cannot\n  serialise):\n\n%s\n",
              printGeneric(
                  programFromExecution(R.Abstract, "client").Prog)
                  .c_str());
  std::printf("  ...but the elided implementation admits it:\n\n%s\n",
              printAsm(programFromExecution(R.Concrete, "elided").Prog, A)
                  .c_str());
}

} // namespace

int main() {
  std::printf("Auditing lock elision against each hardware TM model "
              "(abstract bound: 7 events)\n\n");

  X86Model X86Tm;
  X86Model X86Spec{X86Model::Config::baseline()};
  audit("x86 (TSX)", X86Tm, X86Spec, Arch::X86, false);

  PowerModel PowerTm;
  PowerModel PowerSpec{PowerModel::Config::baseline()};
  audit("Power", PowerTm, PowerSpec, Arch::Power, false);

  Armv8Model ArmTm;
  Armv8Model ArmSpec{Armv8Model::Config::baseline()};
  audit("ARMv8", ArmTm, ArmSpec, Arch::Armv8, false);
  audit("ARMv8 + DMB fix", ArmTm, ArmSpec, Arch::Armv8, true);

  std::printf(
      "\nMoral (§1.1): a critical region can start executing after the "
      "lock has been\nobserved free but before it has actually been "
      "taken. Safe when every CR takes\nthe lock — unsound combined with "
      "elided CRs that only *read* it. The DMB fix\nworks but taxes "
      "non-elided users; making transactions write the lock would\n"
      "serialise them. There is no easy fix.\n");
  return 0;
}
