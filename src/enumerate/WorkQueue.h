//===- WorkQueue.h - Work-stealing task pool --------------------*- C++ -*-==//
///
/// \file
/// A generic work-stealing task pool parameterised over the task type.
/// Two instantiations drive the repo's parallel layers:
///
///  * `WorkQueue<BasePrefix>` — the synthesis search (synth/Conformance):
///    tasks are *canonical-DFS prefixes* of the base-execution space
///    (a complete skeleton plus the first K event-labelling decisions).
///    The prefixes held by the pool partition the unexplored base space
///    exactly at every instant: a task is either *split* — replaced by one
///    child per admissible label of event K, which
///    `ExecutionEnumerator::expandPrefix` derives from the same choice
///    generator the sequential DFS uses — or *run* to completion via
///    `ExecutionEnumerator::forEachBasePrefixed`. Splitting is driven by
///    the consumer (typically until `estimateCost` falls under a target),
///    so K adapts to the local branching structure.
///
///  * `WorkQueue<size_t>` — the batch query engine (query/QueryEngine):
///    tasks are request indices of a litmus batch; requests are monolithic
///    (never split), so the pool degenerates to a balanced distributor
///    with stealing.
///
/// Each worker owns a deque: locally produced children are pushed and
/// popped LIFO (depth-first locality, bounded memory), and an idle worker
/// steals the *oldest* — shallowest, hence biggest — unexpanded task from
/// the fullest victim deque. Operations are guarded by one pool mutex;
/// tasks are coarse, so the lock is not contended. Termination is exact:
/// `pop` blocks until a task is available and only returns false when
/// every deque is empty and no popped task is still being processed
/// (`finish` not yet called), or the pool was cancelled (e.g. on budget
/// exhaustion).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_ENUMERATE_WORKQUEUE_H
#define TMW_ENUMERATE_WORKQUEUE_H

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace tmw {

/// Per-worker load telemetry for one pool run (one entry per worker or
/// static shard). Consumers surface it through `ForbidSuite::Workers` and
/// `BatchTelemetry::Workers`.
struct WorkerLoad {
  /// Wall-clock seconds this worker spent processing tasks.
  double BusySeconds = 0;
  /// Tasks processed / tasks split into children / tasks obtained by
  /// stealing. Static sharding runs one task per shard and never splits
  /// or steals; query batches never split.
  uint64_t Tasks = 0, Splits = 0, Steals = 0;
  /// Work units this worker visited: base executions for the synthesis
  /// search, candidate executions for the query engine.
  uint64_t BasesVisited = 0;
};

/// Work-stealing pool of \p Task values. Thread-safe; one instance per
/// parallel search or batch — or, in persistent mode, one per resident
/// server: a persistent pool never reports exhaustion (an empty pool
/// parks its workers until `submit` feeds it or `cancel` shuts it down),
/// so tasks from many concurrent batches can flow through one set of
/// long-lived workers.
template <class Task> class WorkQueue {
public:
  explicit WorkQueue(unsigned NumWorkers, bool Persistent = false)
      : Persistent(Persistent) {
    assert(NumWorkers > 0 && "pool needs at least one worker");
    Deques.resize(NumWorkers);
  }

  /// Deal a root task round-robin across the worker deques (front-insert,
  /// so each owner's LIFO pop walks its seeds in the order they were
  /// dealt). Call before the workers start (not thread-safe against
  /// pop/push).
  void seed(Task P) {
    // Front-insert so each deque's *back* is its earliest seed: the
    // owner's LIFO pop then walks its share in seeding order (for the
    // synthesis search: thread-rich skeletons first — the front-loaded
    // discovery order of Fig. 7).
    Deques[SeedCursor].push_front(std::move(P));
    SeedCursor = (SeedCursor + 1) % Deques.size();
  }

  /// Thread-safe task injection while workers are running — the
  /// persistent-pool feed (a non-persistent pool may use it too, but its
  /// workers race exhaustion). Deals round-robin like `seed`, but
  /// back-inserted: a worker pops the *newest* submission of its own
  /// deque first, and thieves take the oldest — same discipline as
  /// split-produced children.
  void submit(Task P) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Deques[SubmitCursor].push_back(std::move(P));
      SubmitCursor = (SubmitCursor + 1) % Deques.size();
    }
    Cv.notify_one();
  }

  /// Get the next task for \p Worker: own deque LIFO first, otherwise
  /// steal the oldest task from the fullest other deque (\p WasSteal
  /// reports which). Blocks while the pool is momentarily empty but some
  /// worker still holds a task it may split. Returns false when the space
  /// is exhausted or `cancel()` was called; a *persistent* pool never
  /// exhausts — its workers park here until `submit` or `cancel`.
  bool pop(unsigned Worker, Task &Out, bool &WasSteal) {
    std::unique_lock<std::mutex> Lock(Mu);
    for (;;) {
      if (Cancelled)
        return false;
      // Own deque: newest first — descend depth-first, keeping the deque
      // shallow and leaving the big old tasks for thieves.
      std::deque<Task> &Own = Deques[Worker];
      if (!Own.empty()) {
        Out = std::move(Own.back());
        Own.pop_back();
        ++InFlight;
        WasSteal = false;
        return true;
      }
      // Steal: oldest task of the fullest victim (shallowest tasks cover
      // the most work, so one steal buys the longest independence).
      unsigned Victim = static_cast<unsigned>(Deques.size());
      size_t Best = 0;
      for (unsigned D = 0; D < Deques.size(); ++D)
        if (Deques[D].size() > Best) {
          Best = Deques[D].size();
          Victim = D;
        }
      if (Victim < Deques.size()) {
        Out = std::move(Deques[Victim].front());
        Deques[Victim].pop_front();
        ++InFlight;
        WasSteal = true;
        return true;
      }
      // Globally empty: done only once no in-flight task can still split
      // — unless persistent, where empty just means "park until fed".
      if (InFlight == 0 && !Persistent) {
        Cv.notify_all();
        return false;
      }
      Cv.wait(Lock);
    }
  }

  /// Push a child task produced by splitting \p Worker's current task.
  void push(unsigned Worker, Task P) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Deques[Worker].push_back(std::move(P));
    }
    Cv.notify_one();
  }

  /// Mark \p Worker's current task fully processed (run or split). Every
  /// successful `pop` must be paired with exactly one `finish`.
  void finish(unsigned Worker) {
    (void)Worker;
    std::lock_guard<std::mutex> Lock(Mu);
    assert(InFlight > 0 && "finish without a matching pop");
    if (--InFlight == 0)
      Cv.notify_all(); // possible termination: wake everyone to re-check
  }

  /// Rearm a drained (or cancelled) pool for the next batch: clears the
  /// cancel flag and rewinds the seed cursor so `seed` deals from worker
  /// 0 again. The resident-server path reuses one pool across batches
  /// through this instead of constructing a queue (and its deques) per
  /// call. Precondition: quiescent — every worker has returned from its
  /// pop loop, so nothing is queued or in flight; call it between
  /// batches, never concurrently with pop/push/finish.
  void reset() {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(InFlight == 0 && "reset while a task is still being processed");
#ifndef NDEBUG
    for (const std::deque<Task> &D : Deques)
      assert((Cancelled || D.empty()) && "reset with queued tasks");
#endif
    for (std::deque<Task> &D : Deques)
      D.clear(); // a cancelled pool may still hold its dropped tasks
    Cancelled = false;
    SeedCursor = 0;
    SubmitCursor = 0;
  }

  /// Abort: wake every blocked worker and make all pops return false.
  /// Tasks still queued are dropped.
  void cancel() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Cancelled = true;
    }
    Cv.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Cancelled;
  }

  unsigned numWorkers() const {
    return static_cast<unsigned>(Deques.size());
  }

private:
  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::vector<std::deque<Task>> Deques;
  /// Tasks popped but not yet finished; termination needs it zero.
  unsigned InFlight = 0;
  unsigned SeedCursor = 0;
  unsigned SubmitCursor = 0;
  bool Cancelled = false;
  /// Persistent pools park on empty instead of terminating.
  const bool Persistent = false;
};

} // namespace tmw

#endif // TMW_ENUMERATE_WORKQUEUE_H
