//===- ExecutionAnalysis.h - Memoized derived relations ---------*- C++ -*-==//
///
/// \file
/// A lazily-memoized view of the derived relations and event sets of one
/// *immutable* `Execution`. Every consistency axiom of §2.1/§3.1/§3.3 is
/// phrased over the same handful of derived relations (`fr`, `com`,
/// `stxn`, `tfence`, the fence relations, internal/external splits, ...);
/// `MemoryModel::check` used to recompute each of them from scratch on
/// every call, per model, per ablation. `ExecutionAnalysis` computes each
/// term at most once per execution — the explicit-search counterpart of
/// herd7 evaluating each `cat` definition once per candidate — so that the
/// many models and ablation configurations evaluated on one candidate
/// share all of the relational groundwork.
///
/// Contract:
///  * The analysed `Execution` must stay unmodified and alive for the
///    lifetime of the analysis (`reset()` retargets an arena-style
///    instance onto a new execution and drops all cached state).
///  * Copying an analysis *invalidates* the copy's caches: the copy
///    re-derives on demand. This keeps copies cheap and means a copy taken
///    mid-flight can never observe stale state.
///  * An `ExecutionAnalysis` is not thread-safe: memoization mutates the
///    cache under `const`. The sharded enumerator gives each shard its own
///    analysis arena instead of sharing one.
///
/// `AnalysisCaching::Recompute` disables memoization (every accessor
/// re-derives, exactly like the historical uncached `Execution` methods);
/// it exists for the cached-vs-uncached benchmarks and the cross-check
/// tests.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_EXECUTION_EXECUTIONANALYSIS_H
#define TMW_EXECUTION_EXECUTIONANALYSIS_H

#include "execution/Execution.h"

namespace tmw {

/// Number of `FenceKind` enumerators (index bound for per-flavour caches).
inline constexpr unsigned kNumFenceKinds =
    static_cast<unsigned>(FenceKind::CppFence) + 1;

/// Memoization policy of an `ExecutionAnalysis`.
enum class AnalysisCaching : uint8_t {
  /// Compute each derived term at most once (the default).
  Memoized,
  /// Re-derive on every access — the uncached baseline behaviour.
  Recompute,
};

/// Lazily computed, memoized derived relations and event sets of one
/// immutable execution.
class ExecutionAnalysis {
public:
  /// Intentionally implicit: `M.check(X)` with an `Execution` constructs a
  /// temporary analysis, giving the pre-analysis API as a thin
  /// compatibility layer (memoization then only spans that single call).
  ExecutionAnalysis(const Execution &X,
                    AnalysisCaching Mode = AnalysisCaching::Memoized)
      : X(&X), Mode(Mode) {}

  /// Copies retarget to the same execution but drop all cached state.
  ExecutionAnalysis(const ExecutionAnalysis &O) : X(O.X), Mode(O.Mode) {}
  ExecutionAnalysis &operator=(const ExecutionAnalysis &O) {
    X = O.X;
    Mode = O.Mode;
    C = Caches();
    Recomputes = 0;
    return *this;
  }

  /// Retarget this analysis onto \p NewX, dropping all cached state. Lets
  /// a per-shard arena serve many candidates without reallocation.
  void reset(const Execution &NewX) {
    X = &NewX;
    C = Caches();
    Recomputes = 0;
  }

  /// Drop only the caches that depend on the transaction labelling
  /// (`Txn` / `AtomicTxns`): stxn, tfence, the lifted isolation terms, and
  /// the transactional event sets. The enumerator's placement search
  /// mutates exactly those fields of a fixed base execution, so a shard's
  /// arena keeps `fr`/`com`/fence relations across all placements of one
  /// base and invalidates just this slice per placement.
  void invalidateTransactionalState() {
    C.Stxn = {};
    C.StxnAtomic = {};
    C.Tfence = {};
    C.CppTsw = {};
    C.WeakLiftComStxn = {};
    C.StrongLiftComStxn = {};
    C.StrongLiftComStxnAtomic = {};
    C.Transactional = {};
    C.AtomicTransactional = {};
  }

  const Execution &execution() const { return *X; }
  unsigned size() const { return X->size(); }
  AnalysisCaching caching() const { return Mode; }
  EventSet universe() const { return X->universe(); }

  /// Number of derived-term computations performed so far (a memoized
  /// accessor hit increments this only on its first call). Used by the
  /// memoization unit tests and the bench reports.
  uint64_t recomputeCount() const { return Recomputes; }

  //===--------------------------------------------------------------------===
  // Stored relations (pass-through to the execution).
  //===--------------------------------------------------------------------===

  const Relation &po() const { return X->Po; }
  const Relation &rf() const { return X->Rf; }
  const Relation &co() const { return X->Co; }
  const Relation &addr() const { return X->Addr; }
  const Relation &data() const { return X->Data; }
  const Relation &ctrl() const { return X->Ctrl; }
  const Relation &rmw() const { return X->Rmw; }

  //===--------------------------------------------------------------------===
  // Memoized event sets.
  //===--------------------------------------------------------------------===

  EventSet reads() const;
  EventSet writes() const;
  EventSet fences() const;
  EventSet accesses() const;
  EventSet fences(FenceKind K) const;
  EventSet atomics() const;
  EventSet acquires() const;
  EventSet releases() const;
  EventSet seqCst() const;
  EventSet transactional() const;
  EventSet atomicTransactional() const;

  //===--------------------------------------------------------------------===
  // Memoized derived relations (§2.1, §3.1, §3.3).
  //===--------------------------------------------------------------------===

  const Relation &sloc() const;
  const Relation &sameThread() const;
  const Relation &poLoc() const;
  const Relation &poImm() const;
  const Relation &fr() const;
  const Relation &com() const;
  const Relation &ecom() const;
  const Relation &rfe() const;
  const Relation &rfi() const;
  const Relation &coe() const;
  const Relation &coi() const;
  const Relation &fre() const;
  const Relation &fri() const;
  const Relation &stxn() const;
  const Relation &stxnAtomic() const;
  const Relation &tfence() const;
  const Relation &scr() const;
  const Relation &scrt() const;

  /// po ; [F_K] ; po, cached per fence flavour.
  const Relation &fenceRel(FenceKind K) const;

  /// RC11 synchronises-with (fences and release sequences included) — the
  /// model-independent building block of the C++ model's happens-before.
  const Relation &cppSynchronisesWith() const;
  /// Transactional synchronisation (§7.2): weaklift(ecom, stxn).
  const Relation &cppTransactionalSw() const;

  /// Lifted isolation relations (§3.3): the weaklift/stronglift terms the
  /// isolation axioms are phrased over.
  const Relation &weakLiftComStxn() const;
  const Relation &strongLiftComStxn() const;
  const Relation &strongLiftComStxnAtomic() const;

  /// Inter-/intra-thread restriction of an arbitrary relation (uses the
  /// memoized sameThread).
  Relation external(const Relation &R) const { return R - sameThread(); }
  Relation internal(const Relation &R) const { return R & sameThread(); }

private:
  template <typename T> struct Slot {
    T Value{};
    bool Valid = false;
  };

  template <typename T, typename Fn>
  const T &memo(Slot<T> &S, Fn &&Compute) const {
    if (!S.Valid || Mode == AnalysisCaching::Recompute) {
      S.Value = Compute();
      S.Valid = true;
      ++Recomputes;
    }
    return S.Value;
  }

  /// All cached state, value-resettable in one assignment.
  struct Caches {
    Slot<EventSet> Reads, Writes, Fences, Accesses, Atomics, Acquires,
        Releases, SeqCst, Transactional, AtomicTransactional;
    Slot<EventSet> FencesOf[kNumFenceKinds];
    Slot<Relation> Sloc, SameThread, PoLoc, PoImm, Fr, Com, Ecom, Rfe, Rfi,
        Coe, Coi, Fre, Fri, Stxn, StxnAtomic, Tfence, Scr, Scrt;
    Slot<Relation> FenceRels[kNumFenceKinds];
    Slot<Relation> CppSw, CppTsw;
    Slot<Relation> WeakLiftComStxn, StrongLiftComStxn,
        StrongLiftComStxnAtomic;
  };

  const Execution *X;
  AnalysisCaching Mode;
  mutable uint64_t Recomputes = 0;
  mutable Caches C;
};

} // namespace tmw

#endif // TMW_EXECUTION_EXECUTIONANALYSIS_H
