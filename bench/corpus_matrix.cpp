//===- corpus_matrix.cpp - The corpus verdict matrix ----------------------------==//
///
/// Prints the full verdict matrix of the litmus corpus — for every test,
/// whether the weak outcome is reachable under SC, TSC, x86+TM, Power+TM,
/// ARMv8+TM and the simulated POWER8 (now just the registry spec
/// "power8"), plus the operational TSX machine — and benchmarks the batch
/// query engine that produces it against the historical per-model
/// re-enumeration loop.
///
/// The engine enumerates each program's candidates once and fans them out
/// to all requested models over one shared `ExecutionAnalysis`; the
/// baseline re-enumerates per model and analyses per (candidate, model) —
/// exactly what this bench (and litmus_tool, and the table benches) used
/// to hand-roll. `BENCH_corpus_matrix.json` tracks the speedup on the
/// corpus × six-model workload; ≥2x is the regression bar.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "enumerate/Candidates.h"
#include "hw/TsoMachine.h"
#include "litmus/Library.h"
#include "models/ModelRegistry.h"
#include "query/QueryEngine.h"

#include <chrono>
#include <string>
#include <vector>

using namespace tmw;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The per-model aggregate the baseline computes — the same facts a
/// `ModelVerdict` carries, for the equivalence check.
struct Agg {
  bool Allowed = false;
  uint64_t Consistent = 0;
};

/// The historical flow: one full candidate enumeration per (model,
/// program), one throwaway analysis per (candidate, model).
double runBaseline(const std::vector<CorpusEntry> &Corpus,
                   const std::vector<const char *> &Specs,
                   std::vector<std::vector<Agg>> &Out) {
  auto T0 = std::chrono::steady_clock::now();
  Out.assign(Specs.size(), std::vector<Agg>(Corpus.size()));
  for (size_t S = 0; S < Specs.size(); ++S) {
    std::unique_ptr<MemoryModel> M = ModelRegistry::parse(Specs[S]);
    for (size_t E = 0; E < Corpus.size(); ++E) {
      Agg &A = Out[S][E];
      const Program &P = Corpus[E].Prog;
      forEachCandidate(P, [&](const Candidate &C) {
        if (M->consistent(C.X)) {
          ++A.Consistent;
          A.Allowed |= C.O.satisfies(P);
        }
        return true;
      });
    }
  }
  return secondsSince(T0);
}

std::vector<CheckRequest>
makeRequests(const std::vector<CorpusEntry> &Corpus,
             const std::vector<const char *> &Specs) {
  std::vector<CheckRequest> Requests;
  for (const CorpusEntry &E : Corpus) {
    CheckRequest R;
    R.Corpus = E.Name;
    for (const char *S : Specs)
      R.ModelSpecs.push_back(S);
    Requests.push_back(std::move(R));
  }
  return Requests;
}

} // namespace

int main(int argc, char **argv) {
  bench::header("Litmus-corpus verdict matrix (batch query engine)",
                "the executions of §1, §3, §5.2, §5.3 in one table");
  unsigned Jobs = bench::jobs(argc, argv, 4);
  std::vector<CorpusEntry> Corpus = standardCorpus();

  // The displayed matrix: five architecture columns plus the POWER8
  // hardware substitute, which the wrapper-spec registry makes just
  // another column.
  const std::vector<const char *> MatrixSpecs = {"sc",    "tsc",   "x86",
                                                 "power", "armv8", "power8"};
  std::vector<CheckResponse> Matrix =
      QueryEngine({Jobs}).runAll(makeRequests(Corpus, MatrixSpecs));

  std::printf("%-26s %4s %4s %6s %6s %6s %6s | %7s\n", "test", "SC", "TSC",
              "x86", "Power", "ARMv8", "P8-hw", "TSX-hw");
  for (size_t E = 0; E < Corpus.size(); ++E) {
    const CheckResponse &R = Matrix[E];
    if (!R) {
      std::fprintf(stderr, "error: %s: %s\n", Corpus[E].Name.c_str(),
                   R.Error.c_str());
      return 1;
    }
    TsoMachine M(Corpus[E].Prog);
    std::printf("%-26s %4s %4s %6s %6s %6s %6s | %7s\n",
                R.Name.c_str(), bench::yesNo(R.Verdicts[0].Allowed),
                bench::yesNo(R.Verdicts[1].Allowed),
                bench::yesNo(R.Verdicts[2].Allowed),
                bench::yesNo(R.Verdicts[3].Allowed),
                bench::yesNo(R.Verdicts[4].Allowed),
                R.Verdicts[5].Allowed ? "seen" : "-",
                M.postconditionObservable() ? "seen" : "-");
  }
  std::printf("\n'yes' = the weak outcome is allowed by the model; hardware "
              "columns report\nwhether the simulated machines exhibit it. "
              "Note Example1.1: allowed under\nARMv8+TM (the paper's "
              "headline), forbidden on x86.\n");

  // ----- Throughput: engine vs per-model re-enumeration ----------------
  // The six-model workload of the acceptance bar: every corpus test
  // checked under all six architecture models, replicated `Reps` times so
  // the batch has corpus-scale depth (stable timings, enough requests for
  // the pool to balance) — the "verdict matrix per commit across many
  // configurations" serving shape.
  const std::vector<const char *> BenchSpecs = {"sc",    "tsc",   "x86",
                                                "power", "armv8", "cpp"};
  const unsigned Reps = 8;
  std::vector<CheckRequest> Requests;
  for (unsigned Rep = 0; Rep < Reps; ++Rep)
    for (CheckRequest &R : makeRequests(Corpus, BenchSpecs))
      Requests.push_back(std::move(R));

  std::vector<std::vector<Agg>> Base;
  double BaselineSec = 1e18;
  for (unsigned Rep = 0; Rep < Reps; ++Rep)
    BaselineSec = std::min(BaselineSec, runBaseline(Corpus, BenchSpecs, Base));
  BaselineSec *= Reps;

  BatchTelemetry T1;
  std::vector<CheckResponse> R1 = QueryEngine({1}).runAll(Requests, &T1);
  BatchTelemetry TN;
  std::vector<CheckResponse> RN = QueryEngine({Jobs}).runAll(Requests, &TN);

  // The redesign must not change a single verdict: engine vs baseline,
  // fact for fact.
  for (const std::vector<CheckResponse> *Batch : {&R1, &RN})
    for (const CheckResponse &R : *Batch)
      if (!R || R.Verdicts.size() != BenchSpecs.size()) {
        std::fprintf(stderr, "error: %s: %s\n", R.Name.c_str(),
                     R.Error.c_str());
        return 1;
      }
  for (size_t E = 0; E < Corpus.size(); ++E)
    for (size_t S = 0; S < BenchSpecs.size(); ++S) {
      const ModelVerdict &V = R1[E].Verdicts[S];
      if (V.Allowed != Base[S][E].Allowed ||
          V.Consistent != Base[S][E].Consistent ||
          V.Allowed != RN[E].Verdicts[S].Allowed) {
        std::fprintf(stderr,
                     "MISMATCH: %s under %s: engine says allowed=%d/%llu, "
                     "baseline %d/%llu\n",
                     Corpus[E].Name.c_str(), BenchSpecs[S], V.Allowed,
                     static_cast<unsigned long long>(V.Consistent),
                     Base[S][E].Allowed,
                     static_cast<unsigned long long>(Base[S][E].Consistent));
        return 1;
      }
    }

  double Speedup1 = BaselineSec / T1.Seconds;
  double SpeedupN = BaselineSec / TN.Seconds;
  double Speedup = std::max(Speedup1, SpeedupN);
  std::printf("\ncorpus x six-model workload (x%u): %llu programs, %llu "
              "candidates, %llu checks\n",
              Reps, static_cast<unsigned long long>(T1.Programs),
              static_cast<unsigned long long>(T1.Candidates),
              static_cast<unsigned long long>(T1.Checks));
  std::printf("  baseline (re-enumerate per model): %8.3fs\n", BaselineSec);
  std::printf("  engine --jobs 1 (enumerate once):  %8.3fs  (%.2fx)\n",
              T1.Seconds, Speedup1);
  std::printf("  engine --jobs %-2u (+ pool batching): %7.3fs  (%.2fx)\n",
              Jobs, TN.Seconds, SpeedupN);

  char Json[640];
  std::snprintf(
      Json, sizeof(Json),
      "{\"bench\": \"corpus_matrix\", \"programs\": %llu, \"specs\": %zu, "
      "\"reps\": %u, \"candidates\": %llu, \"checks\": %llu, "
      "\"baseline_seconds\": %.4f, \"engine_seconds_jobs1\": %.4f, "
      "\"engine_seconds_jobsN\": %.4f, \"jobs\": %u, "
      "\"speedup_jobs1\": %.3f, \"speedup_jobsN\": %.3f, "
      "\"speedup\": %.3f}",
      static_cast<unsigned long long>(T1.Programs), BenchSpecs.size(), Reps,
      static_cast<unsigned long long>(T1.Candidates),
      static_cast<unsigned long long>(T1.Checks), BaselineSec, T1.Seconds,
      TN.Seconds, Jobs, Speedup1, SpeedupN, Speedup);
  bench::writeBenchJson("corpus_matrix", Json);
  return 0;
}
