//===- EventSet.h - Sets of execution events --------------------*- C++ -*-==//
///
/// \file
/// A set of event identifiers, represented as a 64-bit mask. Executions in
/// this library are capped at `kMaxEvents` events (the paper's experiments
/// use at most 10 concrete events per execution), so a single machine word
/// suffices and every set operation is a handful of instructions.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_RELATION_EVENTSET_H
#define TMW_RELATION_EVENTSET_H

#include <cassert>
#include <cstdint>

namespace tmw {

/// Identifier of an event inside one execution. Events are numbered densely
/// from zero.
using EventId = unsigned;

/// Hard cap on events per execution (one bit per event in a word).
inline constexpr unsigned kMaxEvents = 64;

/// A set of events, one bit per `EventId`.
class EventSet {
public:
  constexpr EventSet() = default;
  constexpr explicit EventSet(uint64_t Bits) : Bits(Bits) {}

  /// The set {E}.
  static constexpr EventSet singleton(EventId E) {
    return EventSet(uint64_t(1) << E);
  }

  /// The set {0, 1, ..., N-1}.
  static constexpr EventSet universe(unsigned N) {
    assert(N <= kMaxEvents && "execution too large");
    return EventSet(N == 64 ? ~uint64_t(0) : ((uint64_t(1) << N) - 1));
  }

  constexpr bool contains(EventId E) const {
    return (Bits >> E) & 1;
  }
  constexpr bool empty() const { return Bits == 0; }
  constexpr unsigned size() const { return __builtin_popcountll(Bits); }
  constexpr uint64_t bits() const { return Bits; }

  constexpr void insert(EventId E) { Bits |= uint64_t(1) << E; }
  constexpr void erase(EventId E) { Bits &= ~(uint64_t(1) << E); }

  constexpr EventSet operator|(EventSet O) const {
    return EventSet(Bits | O.Bits);
  }
  constexpr EventSet operator&(EventSet O) const {
    return EventSet(Bits & O.Bits);
  }
  constexpr EventSet operator-(EventSet O) const {
    return EventSet(Bits & ~O.Bits);
  }
  constexpr EventSet &operator|=(EventSet O) {
    Bits |= O.Bits;
    return *this;
  }
  constexpr EventSet &operator&=(EventSet O) {
    Bits &= O.Bits;
    return *this;
  }
  constexpr bool operator==(const EventSet &O) const = default;

  /// Complement within the universe of the first N events.
  constexpr EventSet complement(unsigned N) const {
    return universe(N) - *this;
  }

  /// The singleton of the lowest member ({} when empty).
  constexpr EventSet first() const {
    return EventSet(Bits & (~Bits + 1));
  }

  /// Iteration over members, lowest id first.
  class iterator {
  public:
    constexpr explicit iterator(uint64_t Bits) : Rest(Bits) {}
    constexpr EventId operator*() const {
      return static_cast<EventId>(__builtin_ctzll(Rest));
    }
    constexpr iterator &operator++() {
      Rest &= Rest - 1;
      return *this;
    }
    constexpr bool operator!=(const iterator &O) const {
      return Rest != O.Rest;
    }

  private:
    uint64_t Rest;
  };

  constexpr iterator begin() const { return iterator(Bits); }
  constexpr iterator end() const { return iterator(0); }

private:
  uint64_t Bits = 0;
};

} // namespace tmw

#endif // TMW_RELATION_EVENTSET_H
