//===- Transport.cpp - Server transports (stdio, Unix socket) ------------------==//

#include "server/Transport.h"

#include "server/QueryServer.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

// macOS has no MSG_NOSIGNAL; writes there can raise SIGPIPE on a closed
// peer, which the CLI ignores process-wide instead.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using namespace tmw;

int server::serveStdio(QueryServer &S) {
  S.serveStream(std::cin, std::cout);
  return 0;
}

namespace {

int failSys(const char *What, const std::string &Path) {
  std::fprintf(stderr, "error: %s %s: %s\n", What, Path.c_str(),
               std::strerror(errno));
  return 1;
}

/// Write all of \p Data to \p Fd (EINTR-safe, SIGPIPE-free). False when
/// the peer is gone.
bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// One connection: buffer reads, peel off complete lines, answer each
/// with a verdicts document. A trailing unterminated line at EOF is
/// served too (a lone batch sent without a final newline still answers).
void serveConnection(QueryServer &S, int Fd) {
  std::string Buf;
  char Chunk[65536];
  auto ServeLine = [&](std::string_view Line) {
    if (Line.find_first_not_of(" \t\r") == std::string_view::npos)
      return true;
    return writeAll(Fd, S.serveLine(Line));
  };
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0) {
      if (!Buf.empty())
        ServeLine(Buf);
      break;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl; (Nl = Buf.find('\n', Start)) != std::string::npos;
         Start = Nl + 1)
      if (!ServeLine(std::string_view(Buf).substr(Start, Nl - Start))) {
        ::close(Fd);
        return;
      }
    Buf.erase(0, Start);
  }
  ::close(Fd);
}

} // namespace

int server::serveUnixSocket(QueryServer &S, const std::string &Path,
                            unsigned AcceptLimit) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long (max %zu): %s\n",
                 sizeof(Addr.sun_path) - 1, Path.c_str());
    return 1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0)
    return failSys("socket", Path);
  ::unlink(Path.c_str()); // replace a stale socket file
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(Listen);
    return failSys("bind", Path);
  }
  if (::listen(Listen, /*backlog=*/8) < 0) {
    ::close(Listen);
    return failSys("listen", Path);
  }

  unsigned Served = 0;
  while (AcceptLimit == 0 || Served < AcceptLimit) {
    int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue; // a signal is not a served connection
      ::close(Listen);
      return failSys("accept", Path);
    }
    serveConnection(S, Fd);
    ++Served;
  }
  ::close(Listen);
  ::unlink(Path.c_str());
  return 0;
}
