//===- Compilation.h - C++ transactions to hardware (§8.2) ------*- C++ -*-==//
///
/// \file
/// The direct compilation mapping from C++ executions to x86, Power, and
/// ARMv8 executions (the standard non-transactional mappings of Wickerson
/// et al., extended to preserve stxn-edges), and the bounded soundness
/// check: search for a race-free C++ execution that is *inconsistent* in
/// C++ while its compilation is *consistent* on the target — such a pair
/// witnesses a miscompilation.
///
/// Event mappings:
///
///   C++ event      x86             Power                    ARMv8
///   -------------  --------------  -----------------------  -----------
///   load na/rlx    mov             ld                       LDR
///   load acq       mov             ld;ctrl;isync            LDAR
///   load sc        mov             sync;ld;ctrl;isync       LDAR
///   store na/rlx   mov             st                       STR
///   store rel      mov             lwsync;st                STLR
///   store sc       mov;mfence      sync;st                  STLR
///   fence acq/rel  (nothing)       lwsync                   dmb
///   fence sc       mfence          sync                     dmb
///   transaction    XBEGIN/XEND     tbegin./tend.            TXBEGIN/TXEND
///
//===----------------------------------------------------------------------===//

#ifndef TMW_METATHEORY_COMPILATION_H
#define TMW_METATHEORY_COMPILATION_H

#include "enumerate/Enumerator.h"

namespace tmw {

/// Compile the C++ execution \p X to \p Target, preserving po, rf, co,
/// rmw, and stxn-edges and inserting the fences of the standard mapping.
Execution compileExecution(const Execution &X, Arch Target);

/// Result of a bounded compilation-soundness check.
struct CompilationResult {
  bool CounterexampleFound = false;
  /// Source (C++) and compiled executions, valid when found.
  Execution Source, Compiled;
  uint64_t Checked = 0;
  double Seconds = 0;
  bool Complete = true;
};

/// Search C++ executions up to \p NumEvents source events for one that is
/// race-free and inconsistent but compiles to a consistent \p Target
/// execution.
CompilationResult checkCompilation(Arch Target, unsigned NumEvents,
                                   double BudgetSeconds = 1e18);

} // namespace tmw

#endif // TMW_METATHEORY_COMPILATION_H
