//===- Relation.h - Binary relations over events ----------------*- C++ -*-==//
///
/// \file
/// Binary relations over the events of one execution, with the relational
/// algebra used by axiomatic memory models (Alglave et al., "Herding cats",
/// TOPLAS 2014): union, intersection, difference, composition `;`, inverse,
/// reflexive/transitive closures, domain/range, and the acyclicity and
/// emptiness tests that the axioms are phrased in.
///
/// A relation is a bit matrix: row `A` holds the successor set of event `A`.
/// With executions capped at 64 events, composition is O(N^2) word
/// operations and transitive closure is a tight Floyd–Warshall-style loop,
/// which keeps the exhaustive enumerator (millions of consistency checks)
/// fast.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_RELATION_RELATION_H
#define TMW_RELATION_RELATION_H

#include "relation/EventSet.h"

#include <array>
#include <cassert>
#include <utility>

namespace tmw {

/// A binary relation over events {0, ..., Size-1}.
class Relation {
public:
  Relation() : Size(0) { Rows.fill(0); }
  explicit Relation(unsigned Size) : Size(Size) {
    assert(Size <= kMaxEvents && "execution too large");
    Rows.fill(0);
  }

  unsigned size() const { return Size; }

  /// The empty relation over N events.
  static Relation empty(unsigned N) { return Relation(N); }

  /// The identity relation restricted to \p S, written [S] in the paper.
  static Relation identityOn(EventSet S, unsigned N);

  /// The full product A × B.
  static Relation cross(EventSet A, EventSet B, unsigned N);

  bool contains(EventId A, EventId B) const {
    assert(A < Size && B < Size);
    return (Rows[A] >> B) & 1;
  }
  void insert(EventId A, EventId B) {
    assert(A < Size && B < Size);
    Rows[A] |= uint64_t(1) << B;
  }
  void erase(EventId A, EventId B) {
    assert(A < Size && B < Size);
    Rows[A] &= ~(uint64_t(1) << B);
  }

  /// Successors of \p A.
  EventSet successors(EventId A) const {
    assert(A < Size);
    return EventSet(Rows[A]);
  }

  bool isEmpty() const;
  bool isIrreflexive() const;
  /// True when the relation has no cycle (of length >= 1).
  bool isAcyclic() const;
  /// Number of pairs in the relation.
  unsigned numPairs() const;

  /// Witness extraction for a failed `acyclic` axiom: the events of one
  /// cycle — a shortest cycle through the lowest-numbered event that lies
  /// on any cycle. Consecutive events of the cycle (and the closing edge)
  /// are pairs of this relation; a self-loop yields a singleton. Empty
  /// when the relation is acyclic.
  EventSet findCycle() const;
  /// Events e with (e, e) in the relation (the witnesses of a failed
  /// `irreflexive` axiom).
  EventSet reflexivePoints() const;

  bool operator==(const Relation &O) const;
  /// True when this is a subset of \p O.
  bool subsetOf(const Relation &O) const;

  Relation operator|(const Relation &O) const;
  Relation operator&(const Relation &O) const;
  /// Set difference, written r1 \ r2.
  Relation operator-(const Relation &O) const;
  Relation &operator|=(const Relation &O);
  Relation &operator&=(const Relation &O);
  Relation &operator-=(const Relation &O);

  /// Relational composition r1 ; r2.
  Relation compose(const Relation &O) const;
  /// The inverse relation r^-1.
  Relation inverse() const;
  /// Complement with respect to all event pairs, written ¬r.
  Relation complement() const;
  /// Reflexive closure r? (identity over *all* events of the execution).
  Relation optional() const;
  /// Transitive closure r+.
  Relation transitiveClosure() const;
  /// Reflexive transitive closure r*.
  Relation reflexiveTransitiveClosure() const;

  /// Restrict to pairs whose source is in \p S.
  Relation restrictDomain(EventSet S) const;
  /// Restrict to pairs whose target is in \p S.
  Relation restrictRange(EventSet S) const;

  /// Events with at least one outgoing edge.
  EventSet domain() const;
  /// Events with at least one incoming edge.
  EventSet range() const;
  /// domain(r) | range(r).
  EventSet field() const { return domain() | range(); }

  /// Apply to every pair (A, B) in ascending order of (A, B).
  template <typename Fn> void forEachPair(Fn &&F) const {
    for (EventId A = 0; A < Size; ++A)
      for (EventId B : EventSet(Rows[A]))
        F(A, B);
  }

private:
  unsigned Size;
  std::array<uint64_t, kMaxEvents> Rows;
};

/// weaklift(r, t) = t ; (r \ t) ; t   (§3.3).
///
/// Treats each transaction as one node when it communicates with another
/// transaction.
Relation weakLift(const Relation &R, const Relation &T);

/// stronglift(r, t) = t? ; (r \ t) ; t?   (§3.3).
///
/// Also admits edges whose endpoints lie outside any transaction.
Relation strongLift(const Relation &R, const Relation &T);

} // namespace tmw

#endif // TMW_RELATION_RELATION_H
