//===- registry_test.cpp - ModelRegistry and axiom-API tests ------------------==//
///
/// The declarative axiom API: registry spec parsing and round-tripping
/// (parse -> print -> parse), arch-name resolution, Config-shim/mask
/// agreement, interned axiom names, and the witness cycles returned by
/// `MemoryModel::checkAll` (the events really form a cycle / violation in
/// the failed axiom's term).
///
//===----------------------------------------------------------------------===//

#include "TestGraphs.h"
#include "enumerate/Enumerator.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/ModelRegistry.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(ModelRegistry_, EveryArchNameResolves) {
  for (Arch A : ModelRegistry::allArchs()) {
    // Canonical spec name, the archName() rendering, and upper-casing all
    // resolve to the same architecture.
    EXPECT_EQ(ModelRegistry::parseArch(ModelRegistry::archSpecName(A)), A);
    EXPECT_EQ(ModelRegistry::parseArch(archName(A)), A);

    std::string Error;
    std::unique_ptr<MemoryModel> M =
        ModelRegistry::parse(ModelRegistry::archSpecName(A), &Error);
    ASSERT_TRUE(M) << Error;
    EXPECT_EQ(M->arch(), A);
    EXPECT_EQ(M->axiomMask().normalized(M->axioms().size()),
              AxiomMask::all().normalized(M->axioms().size()));
  }
  EXPECT_EQ(ModelRegistry::parseArch("ARM"), Arch::Armv8);
  EXPECT_EQ(ModelRegistry::parseArch("aarch64"), Arch::Armv8);
  EXPECT_EQ(ModelRegistry::parseArch("C++"), Arch::Cpp);
  EXPECT_EQ(ModelRegistry::parseArch("z80"), std::nullopt);
}

TEST(ModelRegistry_, AblationSpecPerModel) {
  // At least one ablation spec resolves for every model, and it really
  // changes the mask.
  for (Arch A : ModelRegistry::allArchs()) {
    std::unique_ptr<MemoryModel> Default = ModelRegistry::make(A);
    ASSERT_FALSE(Default->axioms().empty());
    std::string Spec = std::string(ModelRegistry::archSpecName(A)) + "/-" +
                       std::string(Default->axioms().front().Name);
    std::string Error;
    std::unique_ptr<MemoryModel> Ablated =
        ModelRegistry::parse(Spec, &Error);
    ASSERT_TRUE(Ablated) << Spec << ": " << Error;
    EXPECT_EQ(Ablated->arch(), A);
    unsigned N = static_cast<unsigned>(Default->axioms().size());
    EXPECT_NE(Ablated->axiomMask().normalized(N),
              Default->axiomMask().normalized(N))
        << Spec;
    EXPECT_FALSE(Ablated->axiomEnabled(Default->axioms().front().Name));
  }
}

TEST(ModelRegistry_, SpecRoundTrip) {
  const char *Specs[] = {
      "sc",
      "tsc",
      "tsc/-TxnOrder",
      "x86",
      "x86/-tfence/-StrongIsol",
      "x86/+baseline",
      "power/-TxnOrder",
      "power/-thb/-tprop1/-tprop2/-TxnOrder", // §9 atomicity-only model
      "power/+baseline",
      "power/+baseline/+thb",
      "armv8/-TxnOrder", // §6.2 buggy RTL
      "cpp/+baseline",
      "cpp/-Tsw",
  };
  for (const char *Spec : Specs) {
    std::string Error;
    std::unique_ptr<MemoryModel> M = ModelRegistry::parse(Spec, &Error);
    ASSERT_TRUE(M) << Spec << ": " << Error;
    std::string Printed = ModelRegistry::print(*M);
    std::unique_ptr<MemoryModel> Reparsed =
        ModelRegistry::parse(Printed, &Error);
    ASSERT_TRUE(Reparsed) << Printed << ": " << Error;
    EXPECT_EQ(Reparsed->arch(), M->arch()) << Spec;
    unsigned N = static_cast<unsigned>(M->axioms().size());
    EXPECT_EQ(Reparsed->axiomMask().normalized(N),
              M->axiomMask().normalized(N))
        << Spec << " printed as " << Printed;
    // print is canonical: printing the reparse reproduces it.
    EXPECT_EQ(ModelRegistry::print(*Reparsed), Printed) << Spec;
  }
}

TEST(ModelRegistry_, CaseInsensitiveSpecs) {
  std::unique_ptr<MemoryModel> A = ModelRegistry::parse("POWER/-txnorder");
  std::unique_ptr<MemoryModel> B = ModelRegistry::parse("power/-TxnOrder");
  ASSERT_TRUE(A);
  ASSERT_TRUE(B);
  unsigned N = static_cast<unsigned>(B->axioms().size());
  EXPECT_EQ(A->axiomMask().normalized(N), B->axiomMask().normalized(N));
}

TEST(ModelRegistry_, ErrorsNameTheProblem) {
  std::string Error;
  EXPECT_FALSE(ModelRegistry::parse("z80", &Error));
  EXPECT_NE(Error.find("z80"), std::string::npos);
  EXPECT_NE(Error.find("power"), std::string::npos); // lists alternatives

  EXPECT_FALSE(ModelRegistry::parse("x86/-Bogus", &Error));
  EXPECT_NE(Error.find("Bogus"), std::string::npos);
  EXPECT_NE(Error.find("TxnOrder"), std::string::npos); // lists axioms

  EXPECT_FALSE(ModelRegistry::parse("x86/Order", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ModelRegistry_, BaselineSpecMatchesConfigShims) {
  auto Norm = [](const MemoryModel &M) {
    return M.axiomMask().normalized(M.axioms().size());
  };
  EXPECT_EQ(Norm(*ModelRegistry::parse("x86/+baseline")),
            Norm(X86Model{X86Model::Config::baseline()}));
  EXPECT_EQ(Norm(*ModelRegistry::parse("power/+baseline")),
            Norm(PowerModel{PowerModel::Config::baseline()}));
  EXPECT_EQ(Norm(*ModelRegistry::parse("armv8/+baseline")),
            Norm(Armv8Model{Armv8Model::Config::baseline()}));
  EXPECT_EQ(Norm(*ModelRegistry::parse("cpp/+baseline")),
            Norm(CppModel{CppModel::Config::baseline()}));
  // And single-axiom specs match single-field shims.
  PowerModel::Config NoThb;
  NoThb.Thb = false;
  EXPECT_EQ(Norm(*ModelRegistry::parse("power/-thb")),
            Norm(PowerModel{NoThb}));
}

TEST(AxiomApi, FailedAxiomNamesAreInterned) {
  // Store buffering: forbidden outright under SC (po u com cycle).
  Execution X = shapes::storeBuffering();
  std::unique_ptr<MemoryModel> M = ModelRegistry::parse("sc");
  ConsistencyResult R = M->check(X);
  ASSERT_FALSE(R.Consistent);
  // The view points into the model's static axiom table (no lifetime
  // hazard: the table outlives every result).
  int I = findAxiom(M->axioms(), R.FailedAxiom);
  ASSERT_GE(I, 0);
  EXPECT_EQ(R.FailedAxiom.data(), M->axioms()[I].Name.data());
}

TEST(AxiomApi, CheckAllAgreesWithCheckAndWitnessesAreValid) {
  // Over a mixed corpus, checkAll must agree with check verdict-for-
  // verdict, and every failure witness must actually violate the axiom's
  // term: a cycle for acyclicity, a reflexive point for irreflexivity,
  // the non-empty field for emptiness.
  for (Arch VA : {Arch::X86, Arch::Cpp}) {
    Vocabulary V = Vocabulary::forArch(VA);
    ExecutionEnumerator Enum(V, 3);
    unsigned Seen = 0;
    Enum.forEachBase([&](Execution &Base) {
      return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
        for (Arch MA : ModelRegistry::allArchs()) {
          std::unique_ptr<MemoryModel> M = ModelRegistry::make(MA);
          ExecutionAnalysis A(X);
          ConsistencyResult R = M->check(A);
          CheckReport Report = M->checkAll(A);
          EXPECT_EQ(Report.Consistent, R.Consistent) << M->name();
          EXPECT_EQ(Report.FailedAxiom, R.FailedAxiom) << M->name();
          EXPECT_EQ(Report.Verdicts.size(), M->axioms().size());
          for (const AxiomVerdict &Verdict : Report.Verdicts) {
            if (Verdict.Holds) {
              EXPECT_TRUE(Verdict.Witness.empty());
              continue;
            }
            const Axiom &Ax = *Verdict.Ax;
            Relation Term = Ax.Term(A, M->axiomMask());
            EventSet W = Verdict.Witness;
            EXPECT_FALSE(W.empty()) << Ax.Name;
            switch (Ax.Kind) {
            case AxiomKind::Acyclic: {
              // The witness events really form a cycle in the term:
              // restricted to them, the term is cyclic and every witness
              // event lies on a cycle.
              Relation Restricted =
                  Term.restrictDomain(W).restrictRange(W);
              EXPECT_FALSE(Restricted.isAcyclic()) << Ax.Name;
              Relation TC = Restricted.transitiveClosure();
              for (EventId E : W)
                EXPECT_TRUE(TC.contains(E, E))
                    << Ax.Name << " witness event " << E;
              break;
            }
            case AxiomKind::Irreflexive:
              for (EventId E : W)
                EXPECT_TRUE(Term.contains(E, E)) << Ax.Name;
              break;
            case AxiomKind::Empty:
              EXPECT_EQ(W, Term.field()) << Ax.Name;
              EXPECT_FALSE(Term.isEmpty()) << Ax.Name;
              break;
            }
          }
        }
        return ++Seen < 60;
      });
    });
    EXPECT_GT(Seen, 20u);
  }
}

} // namespace
