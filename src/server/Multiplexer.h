//===- Multiplexer.h - Poll-based concurrent connection multiplexer -*- C++ -*-==//
///
/// \file
/// The concurrent transport of the query server: one `poll()` event loop
/// multiplexing N Unix-socket connections over the one resident worker
/// pool and shared `SessionCache` (server/QueryServer.h's concurrent
/// `submitBatch` API) — so one `tmw_serve` process can feed many CI lanes
/// at once, the deployment shape the herd7 lineage assumes for large
/// litmus campaigns.
///
/// Design (the classic nonblocking accept loop + per-connection state
/// machine):
///
///  * **Framing.** Every connection owns an input buffer; a batch line
///    may arrive in arbitrary chunks (torn anywhere, or many lines
///    coalesced into one read) and is only acted on once its '\n'
///    arrives — plus the serial path's trailing-line rule: an
///    unterminated final line still answers at EOF. Blank lines are
///    skipped, malformed lines answer with the same error document
///    `serveLine` produces.
///
///  * **Concurrency without intermixing.** Each complete line becomes one
///    tagged batch on the shared pool; requests of rival connections
///    interleave worker-by-worker, but a batch's responses are collected
///    per batch and serialised into one verdicts document, and documents
///    are appended to a connection's output strictly in that connection's
///    batch arrival order (out-of-order completions wait their turn). So
///    every connection's byte stream is exactly what the serial transport
///    — and one-shot `litmus_tool --json` — would produce, regardless of
///    how many rivals are connected. Per-batch fairness caps
///    (`MuxOptions::FairnessCap`) keep one client's corpus-sized batch
///    from monopolising the pool.
///
///  * **Backpressure.** Output is buffered per connection and written as
///    the socket drains. A slow reader whose pending output exceeds
///    `OutputHighWater` stops being *read* (and stops being parsed —
///    buffered input waits too) until its writes drain below half the
///    mark; other connections are unaffected. Input is bounded too: an
///    unterminated line longer than `MaxLineBytes` answers with an
///    error document and tears the connection down (framing cannot
///    resync), so a newline-free firehose cannot grow the input buffer
///    without bound.
///
///  * **Disconnects.** A vanished client's in-flight batches are
///    cancelled (remaining requests skipped) and its pending output
///    discarded, without disturbing other connections; completion
///    accounting stays exact, so shutdown never leaks a batch.
///
/// The loop itself never evaluates a request — evaluation lives on the
/// pool workers; the loop thread only moves bytes, so a long batch never
/// blocks accepts, reads, or writes.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_SERVER_MULTIPLEXER_H
#define TMW_SERVER_MULTIPLEXER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tmw {

class QueryServer;

namespace server {

/// Multiplexer tuning knobs.
struct MuxOptions {
  /// Concurrent connections served at once; the listen socket stops
  /// being polled at capacity (further connects queue in the backlog).
  unsigned MaxClients = 64;
  /// Total connections to accept before the loop exits once drained
  /// (0 = serve until `requestStop`). Tests and bounded CI runs use it.
  unsigned AcceptLimit = 0;
  /// Backpressure high-water mark: a connection whose pending output
  /// exceeds this stops being read until it drains below half of it.
  size_t OutputHighWater = 4u << 20;
  /// Max concurrent pool tasks per batch (0 = the server's jobs()):
  /// bounds how much of the pool one connection's batch can occupy.
  unsigned FairnessCap = 0;
  /// Max batches of one connection in flight on the pool at once;
  /// further complete lines wait in the input buffer.
  unsigned MaxBatchesInFlight = 4;
  /// Input high-water mark: the longest unterminated line buffered for
  /// one connection. A client streaming bytes with no newline past this
  /// is answered with an error document and its read side torn down
  /// (framing cannot resync) instead of growing the input buffer without
  /// bound. Complete lines up to this length are served normally, so the
  /// default stays far above any real corpus batch.
  size_t MaxLineBytes = 64u << 20;
};

/// Lifetime counters of one connection (reported by `stats()`).
struct MuxConnStats {
  uint64_t Id = 0;
  uint64_t Batches = 0, BadBatches = 0, Requests = 0;
  uint64_t BytesIn = 0, BytesOut = 0;
  /// Peak pending-output bytes (how hard backpressure worked).
  size_t PeakBuffered = 0;
  /// Times the connection was paused for backpressure.
  uint64_t BackpressurePauses = 0;
  /// True when the connection died mid-session (error/hangup) rather
  /// than finishing cleanly.
  bool Aborted = false;
};

/// Aggregate multiplexer counters.
struct MuxStats {
  uint64_t Accepted = 0;
  uint64_t Aborted = 0;
  std::vector<MuxConnStats> Connections; ///< closed connections, in close order
};

/// The poll loop. Construct over a resident server, then `serve` (blocks
/// on the calling thread until AcceptLimit is reached and drained, or
/// `requestStop` is called from another thread).
class ConnectionMultiplexer {
public:
  ConnectionMultiplexer(QueryServer &S, MuxOptions Opts = {});
  ~ConnectionMultiplexer();
  ConnectionMultiplexer(const ConnectionMultiplexer &) = delete;
  ConnectionMultiplexer &operator=(const ConnectionMultiplexer &) = delete;

  /// Bind a Unix-domain socket at \p Path (replacing a stale socket
  /// file) and run the event loop. Call at most once per multiplexer.
  /// Returns 0 on a clean finish, 1 on socket setup errors (one
  /// diagnostic line on stderr). All in-flight batches are drained
  /// before returning — even on `requestStop` with clients still
  /// connected (their batches are cancelled, their connections closed).
  int serve(const std::string &Path);

  /// Thread-safe: wake the loop, stop accepting, cancel every in-flight
  /// batch, close all connections, drain, and make `serve` return.
  void requestStop();

  /// Counters of closed connections (call after `serve` returns; not
  /// synchronised with a running loop).
  const MuxStats &stats() const { return Stats; }

private:
  struct Impl;
  friend struct Impl;
  QueryServer &Server;
  MuxOptions Opts;
  MuxStats Stats;
  std::atomic<bool> StopRequested{false};
  /// Self-pipe (read, write ends), alive for the object's lifetime:
  /// pool workers and `requestStop` poke the loop through the write end.
  int WakePipe[2] = {-1, -1};
};

} // namespace server
} // namespace tmw

#endif // TMW_SERVER_MULTIPLEXER_H
