//===- tmw_store.cpp - Verdict-store inspection and fsck CLI --------------------==//
///
/// Maintenance frontend of the persistent verdict store
/// (store/VerdictStore.h) — the `fsck`/`ls` pair for the append-only
/// verdict log that `litmus_tool --store` and `tmw_serve --store` share:
///
///   tmw_store ls <path>       list every frame-valid record: display
///                             fingerprint, engine-version/duplicate
///                             status, document size, and the query name
///                             parsed out of the key.
///   tmw_store verify <path>   fsck: walk the whole log, report record
///                             and tail accounting. Exit 0 when the log
///                             is clean, 1 when corruption was found (a
///                             torn/garbage tail or an unreadable
///                             header) — recovery is `open`'s truncation
///                             or `compact`, both of which only drop
///                             work, never change an answer.
///   tmw_store compact <path>  rewrite the log keeping the first
///                             occurrence of each current-engine-version
///                             key; stale-version records, duplicates,
///                             and any torn tail are dropped. Atomic
///                             (write temp + fsync + rename).
///
/// Exit status: 0 success/clean, 1 verification found corruption (or the
/// operation failed), 2 usage errors (unknown command, missing path).
///
//===----------------------------------------------------------------------===//

#include "store/VerdictStore.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace tmw;

namespace {

int usage() {
  std::fprintf(stderr, "usage: tmw_store <ls|verify|compact> <path>\n");
  return 2;
}

/// Pull one netstring field (`<len>:<bytes>`) off the front of \p Key.
/// Returns false when the framing does not parse (foreign key layout).
bool takeField(std::string_view &Key, std::string_view &Field) {
  size_t Colon = Key.find(':');
  if (Colon == std::string_view::npos || Colon == 0 || Colon > 19)
    return false;
  size_t Len = 0;
  for (char C : Key.substr(0, Colon)) {
    if (C < '0' || C > '9')
      return false;
    Len = Len * 10 + static_cast<size_t>(C - '0');
  }
  if (Key.size() - Colon - 1 < Len)
    return false;
  Field = Key.substr(Colon + 1, Len);
  Key.remove_prefix(Colon + 1 + Len);
  return true;
}

/// Human summary of one key: "<version> <opts> <name> [N specs]". The key
/// layout is VerdictStore::makeKey's netstring sequence; a key that does
/// not parse (never produced by this engine) prints as "<foreign>".
std::string describeKey(std::string_view Key) {
  std::string_view Version, Opts, Name, SpecCount;
  if (!takeField(Key, Version) || !takeField(Key, Opts) ||
      !takeField(Key, Name) || !takeField(Key, SpecCount))
    return "<foreign key layout>";
  std::string Out(Version);
  Out += ' ';
  Out.append(Opts.data(), Opts.size());
  Out += " name=";
  Out.append(Name.data(), Name.size());
  Out += " specs=";
  Out.append(SpecCount.data(), SpecCount.size());
  return Out;
}

void printScanSummary(const char *Path, const StoreScan &Scan) {
  std::printf("%s: %llu bytes, %llu records (%llu stale-version, "
              "%llu duplicate), %llu tail bytes\n",
              Path, static_cast<unsigned long long>(Scan.FileBytes),
              static_cast<unsigned long long>(Scan.ValidRecords),
              static_cast<unsigned long long>(Scan.StaleRecords),
              static_cast<unsigned long long>(Scan.DuplicateRecords),
              static_cast<unsigned long long>(Scan.TailBytes));
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 3)
    return usage();
  const char *Cmd = Argv[1];
  const std::string Path = Argv[2];

  if (std::strcmp(Cmd, "ls") == 0) {
    StoreScan Scan = VerdictStore::scan(Path, [](const StoreRecord &R) {
      std::printf("%s  %-6s %8zu B  %s\n",
                  VerdictStore::fingerprint(R.Key).c_str(),
                  R.Stale ? "stale" : (R.Duplicate ? "dup" : "ok"),
                  R.Value.size(), describeKey(R.Key).c_str());
    });
    if (!Scan.Error.empty()) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                   Scan.Error.c_str());
      return 1;
    }
    printScanSummary(Path.c_str(), Scan);
    return 0;
  }

  if (std::strcmp(Cmd, "verify") == 0) {
    StoreScan Scan = VerdictStore::scan(Path, nullptr);
    if (!Scan.Error.empty()) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                   Scan.Error.c_str());
      return 1;
    }
    printScanSummary(Path.c_str(), Scan);
    if (Scan.TailBytes > 0) {
      std::fprintf(stderr,
                   "error: %s: %llu bytes of torn/garbage tail after the "
                   "last valid record (open() truncates it; `tmw_store "
                   "compact` rewrites the log)\n",
                   Path.c_str(),
                   static_cast<unsigned long long>(Scan.TailBytes));
      return 1;
    }
    std::printf("%s: clean\n", Path.c_str());
    return 0;
  }

  if (std::strcmp(Cmd, "compact") == 0) {
    StoreScan Before;
    std::string Error;
    if (!VerdictStore::compact(Path, &Before, &Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
      return 1;
    }
    std::printf("%s: kept %llu records; dropped %llu stale-version, "
                "%llu duplicate, %llu tail bytes\n",
                Path.c_str(),
                static_cast<unsigned long long>(
                    Before.ValidRecords - Before.StaleRecords -
                    Before.DuplicateRecords),
                static_cast<unsigned long long>(Before.StaleRecords),
                static_cast<unsigned long long>(Before.DuplicateRecords),
                static_cast<unsigned long long>(Before.TailBytes));
    return 0;
  }

  return usage();
}
