//===- shard_balance.cpp - Load balance of the parallel Forbid synthesis ------==//
///
/// Measures how the two shard strategies of `synthesizeForbid` deal the
/// §4.2 search space to worker threads: the work-stealing prefix pool
/// (default) against the historical static round-robin deal over the
/// first skeleton decision. For a sweep of `--jobs` values it reports,
/// per strategy:
///
///   * wall-clock synthesis seconds and wall speedup vs one job;
///   * per-worker busy seconds, and the *schedule speedup*
///     total-busy / max-busy — the parallel speedup the schedule admits
///     on >= jobs cores, a load-balance metric independent of how many
///     cores this box happens to have (static sharding is bounded by its
///     fattest shard; the pool splits fat subtrees and steals);
///   * task/split/steal counts for the pool.
///
/// Everything lands in `BENCH_shard_balance.json` so the speedup of
/// work-stealing over static sharding is tracked per commit.
///
/// Knobs: `--jobs N` extends the sweep up to N (default 8); `--smoke`
/// shrinks the event bound for CI; `TMW_BENCH_MAX_EVENTS`,
/// `TMW_BENCH_BUDGET_SECONDS` as everywhere.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "models/ModelRegistry.h"
#include "synth/Conformance.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace tmw;

namespace {

struct RunStats {
  unsigned Jobs;
  double WallSeconds;
  double ScheduleSpeedup;
  double BusyMax, BusyTotal;
  uint64_t Tasks, Splits, Steals;
  size_t Tests;
};

RunStats measure(const MemoryModel &Tm, const MemoryModel &Baseline,
                 const Vocabulary &V, unsigned N, double Budget,
                 unsigned Jobs, ShardStrategy Strategy) {
  ForbidSuite S = synthesizeForbid(Tm, Baseline, V, N, Budget, Jobs,
                                   Strategy);
  RunStats R{Jobs, S.SynthesisSeconds, 1.0, 0, 0, 0, 0, 0, S.Tests.size()};
  for (const WorkerLoad &L : S.Workers) {
    R.BusyMax = std::max(R.BusyMax, L.BusySeconds);
    R.BusyTotal += L.BusySeconds;
    R.Tasks += L.Tasks;
    R.Splits += L.Splits;
    R.Steals += L.Steals;
  }
  if (R.BusyMax > 0)
    R.ScheduleSpeedup = R.BusyTotal / R.BusyMax;
  return R;
}

const char *strategyName(ShardStrategy S) {
  return S == ShardStrategy::WorkStealing ? "work_stealing" : "static";
}

} // namespace

int main(int argc, char **argv) {
  bench::header("Shard balance: work-stealing prefixes vs static round-robin",
                "§4.2 synthesis scaling; ROADMAP work-stealing layer");
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  unsigned N = bench::maxEvents(Smoke ? 4 : 5);
  double Budget = bench::budgetSeconds(Smoke ? 60.0 : 600.0);
  unsigned MaxJobs = std::max(8u, bench::jobs(argc, argv, 8));

  std::unique_ptr<MemoryModel> Tm = ModelRegistry::parse("x86");
  std::unique_ptr<MemoryModel> Baseline =
      ModelRegistry::parse("x86/+baseline");
  Vocabulary V = Vocabulary::forArch(Arch::X86);

  std::vector<unsigned> Sweep;
  for (unsigned J = 1; J <= MaxJobs; J *= 2)
    Sweep.push_back(J);

  std::printf("\nx86 Forbid synthesis, |E| = %u (sweep to %u jobs)\n\n", N,
              MaxJobs);
  std::printf("%-14s %5s %9s %9s %9s %7s %7s %7s %6s\n", "strategy",
              "jobs", "wall-s", "wall-spd", "sched-spd", "tasks",
              "splits", "steals", "tests");

  std::string Json;
  double RefWall[2] = {0, 0};
  double SpeedupAt8[2] = {0, 0};
  for (ShardStrategy Strat :
       {ShardStrategy::WorkStealing, ShardStrategy::StaticRoundRobin}) {
    unsigned StratIdx = Strat == ShardStrategy::WorkStealing ? 0 : 1;
    for (unsigned Jobs : Sweep) {
      RunStats R = measure(*Tm, *Baseline, V, N, Budget, Jobs, Strat);
      if (Jobs == 1)
        RefWall[StratIdx] = R.WallSeconds;
      double WallSpd =
          R.WallSeconds > 0 ? RefWall[StratIdx] / R.WallSeconds : 0;
      if (Jobs == 8)
        SpeedupAt8[StratIdx] = R.ScheduleSpeedup;
      std::printf("%-14s %5u %9.3f %9.2f %9.2f %7llu %7llu %7llu %6zu\n",
                  strategyName(Strat), Jobs, R.WallSeconds, WallSpd,
                  R.ScheduleSpeedup,
                  static_cast<unsigned long long>(R.Tasks),
                  static_cast<unsigned long long>(R.Splits),
                  static_cast<unsigned long long>(R.Steals), R.Tests);

      char Entry[320];
      std::snprintf(
          Entry, sizeof(Entry),
          "%s{\"strategy\": \"%s\", \"jobs\": %u, \"wall_seconds\": %.4f, "
          "\"wall_speedup\": %.3f, \"schedule_speedup\": %.3f, "
          "\"busy_max\": %.4f, \"busy_total\": %.4f, \"tasks\": %llu, "
          "\"splits\": %llu, \"steals\": %llu, \"tests\": %zu}",
          Json.empty() ? "" : ", ", strategyName(Strat), Jobs,
          R.WallSeconds, WallSpd, R.ScheduleSpeedup, R.BusyMax, R.BusyTotal,
          static_cast<unsigned long long>(R.Tasks),
          static_cast<unsigned long long>(R.Splits),
          static_cast<unsigned long long>(R.Steals), R.Tests);
      Json += Entry;
    }
  }

  std::printf("\nAt 8 jobs the work-stealing schedule admits %.2fx "
              "parallelism vs %.2fx\nfor static sharding (static is "
              "bounded by its fattest shard; with |E| = %u it\nhas at most "
              "%u non-empty shards).\n",
              SpeedupAt8[0], SpeedupAt8[1], N, N);

  char Head[256];
  std::snprintf(Head, sizeof(Head),
                "{\"bench\": \"shard_balance\", \"num_events\": %u, "
                "\"smoke\": %s, \"ws_schedule_speedup_at_8\": %.3f, "
                "\"static_schedule_speedup_at_8\": %.3f, \"runs\": [",
                N, Smoke ? "true" : "false", SpeedupAt8[0], SpeedupAt8[1]);
  bench::writeBenchJson("shard_balance", std::string(Head) + Json + "]}");
  return 0;
}
