//===- fig3_isolation.cpp - Fig. 3 ----------------------------------------------==//
///
/// Regenerates Fig. 3: the four 3-event SC executions that separate weak
/// from strong isolation, with per-model verdicts (SC, WeakIsol,
/// StrongIsol, TSC) and the litmus test of each shape.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "execution/Builder.h"
#include "litmus/FromExecution.h"
#include "litmus/Printer.h"
#include "models/ScModel.h"

using namespace tmw;

namespace {

Execution shape(int Which) {
  ExecutionBuilder B;
  switch (Which) {
  case 0: { // (a) non-interference
    EventId R1 = B.read(0, 0);
    EventId R2 = B.read(0, 0);
    EventId W = B.write(1, 0, MemOrder::NonAtomic, 1);
    B.rf(W, R2);
    B.txn({R1, R2});
    break;
  }
  case 1: { // (b) RMW-isolation-like
    EventId R = B.read(0, 0);
    EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 2);
    EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 1);
    B.co(W2, W1);
    B.txn({R, W1});
    break;
  }
  case 2: { // (c)
    EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
    EventId R = B.read(0, 0);
    EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
    B.co(W1, W2);
    B.rf(W2, R);
    B.txn({W1, R});
    break;
  }
  default: { // (d) containment
    EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
    EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
    EventId R = B.read(1, 0);
    B.co(W1, W2);
    B.rf(W1, R);
    B.txn({W1, W2});
    break;
  }
  }
  return B.build();
}

} // namespace

int main() {
  bench::header("Fig. 3: weak vs strong isolation on four SC executions",
                "Fig. 3; §3.3");

  ScModel Sc;
  TscModel Tsc;
  const char *Names[] = {"(a) non-interference", "(b) rmw-isolation",
                         "(c) write observed", "(d) containment"};

  std::printf("%-22s %4s %9s %11s %5s\n", "execution", "SC", "WeakIsol",
              "StrongIsol", "TSC");
  for (int I = 0; I < 4; ++I) {
    Execution X = shape(I);
    std::printf("%-22s %4s %9s %11s %5s\n", Names[I],
                bench::yesNo(Sc.consistent(X)),
                bench::yesNo(holdsWeakIsolation(X)),
                bench::yesNo(holdsStrongIsolation(X)),
                bench::yesNo(Tsc.consistent(X)));
  }

  std::printf("\nPaper: all four are SC executions allowed by weak "
              "isolation but forbidden\nby strong isolation (and hence by "
              "TSC).\n\nLitmus test of shape (d):\n\n%s",
              printGeneric(
                  programFromExecution(shape(3), "fig3d").Prog)
                  .c_str());
  return 0;
}
