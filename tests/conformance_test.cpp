//===- conformance_test.cpp - Forbid/Allow suite synthesis (§4.2, §5.3) -------==//

#include "synth/Conformance.h"

#include "hw/ImplModel.h"
#include "hw/LitmusRunner.h"
#include "hw/TsoMachine.h"
#include "litmus/FromExecution.h"
#include "litmus/Printer.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

ForbidSuite x86Suite(unsigned N) {
  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  return synthesizeForbid(Tm, Baseline, V, N, 300.0);
}

TEST(ForbidTest, X86TwoEventsEmpty) {
  // Table 1: no forbidden test with only 2 events on x86 (matching the
  // paper's 0 at |E|=2).
  ForbidSuite S = x86Suite(2);
  EXPECT_TRUE(S.Complete);
  EXPECT_TRUE(S.Tests.empty());
}

TEST(ForbidTest, X86ThreeEventsNonEmpty) {
  ForbidSuite S = x86Suite(3);
  EXPECT_TRUE(S.Complete);
  EXPECT_FALSE(S.Tests.empty());
  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  for (const Execution &X : S.Tests) {
    // Forbidden by the TM model, allowed by the baseline, minimal.
    EXPECT_FALSE(Tm.consistent(X));
    EXPECT_TRUE(Baseline.consistent(X));
    EXPECT_TRUE(isMinimallyInconsistent(X, Tm, V));
    // Conformance tests always exercise a transaction.
    EXPECT_GE(X.numTxns(), 1u);
  }
}

TEST(ForbidTest, FoundTimesMonotoneAndBounded) {
  ForbidSuite S = x86Suite(3);
  ASSERT_EQ(S.FoundAtSeconds.size(), S.Tests.size());
  for (double T : S.FoundAtSeconds) {
    EXPECT_GE(T, 0.0);
    EXPECT_LE(T, S.SynthesisSeconds + 1e-9);
  }
}

TEST(ForbidTest, BudgetAbortsCleanly) {
  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ForbidSuite S = synthesizeForbid(Tm, Baseline, V, 5, 0.0);
  EXPECT_FALSE(S.Complete);
}

TEST(AllowTest, RelaxationsAreConsistent) {
  ForbidSuite S = x86Suite(3);
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  std::vector<Execution> Allow = relaxationsOf(S.Tests, V);
  EXPECT_FALSE(Allow.empty());
  X86Model Tm;
  for (const Execution &X : Allow)
    EXPECT_TRUE(Tm.consistent(X)) << X.dump();
}

TEST(AllowTest, IncludesSmallerEventCounts) {
  ForbidSuite S = x86Suite(3);
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  bool SawSmaller = false;
  for (const Execution &X : relaxationsOf(S.Tests, V))
    SawSmaller |= X.size() == 2;
  // Event-removal relaxations of 3-event tests have 2 events — this is
  // how Table 1 reports Allow tests at |E|=2 with zero Forbid tests.
  EXPECT_TRUE(SawSmaller);
}

TEST(ConformanceRunTest, NoForbidTestObservableOnTso) {
  // §5.3: "No Forbid test was empirically observable on either
  // architecture" — on the simulated TSX machine. Observability of the
  // *forbidden behaviour* is what counts: with three writes to one
  // location the postcondition alone cannot pin the coherence order
  // (footnote 2), so outcomes with a model-consistent explanation are
  // benign.
  ForbidSuite S = x86Suite(3);
  X86Model Tm;
  for (const Execution &X : S.Tests) {
    Program P = programFromExecution(X, "forbid").Prog;
    TsoMachine M(P);
    EXPECT_FALSE(observedForbiddenBehaviour(P, Tm, M.reachableOutcomes()))
        << printGeneric(P);
  }
}

TEST(ConformanceRunTest, MostAllowTestsSeenOnTso) {
  // §5.3: 83% of the x86 Allow tests were observable. The simulated
  // machine is a sound TSO implementation, so a clear majority should be
  // seen (the precise fraction depends on machine conservatism).
  ForbidSuite S = x86Suite(3);
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  std::vector<Execution> Allow = relaxationsOf(S.Tests, V);
  unsigned Seen = 0, Total = 0;
  for (const Execution &X : Allow) {
    Program P = programFromExecution(X, "allow").Prog;
    TsoMachine M(P);
    ++Total;
    Seen += M.postconditionObservable();
  }
  ASSERT_GT(Total, 0u);
  EXPECT_GT(Seen * 2, Total); // more than half seen
}

TEST(ConformanceRunTest, PowerForbidNotObservableOnImpl) {
  PowerModel Tm;
  PowerModel Baseline{PowerModel::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::Power);
  ForbidSuite S = synthesizeForbid(Tm, Baseline, V, 3, 300.0);
  ImplModel P8 = ImplModel::power8();
  for (const Execution &X : S.Tests) {
    Program P = programFromExecution(X, "forbid").Prog;
    RunReport R = runOnImpl(P, P8, 1000);
    EXPECT_FALSE(observedForbiddenBehaviour(P, Tm, outcomesOf(R)))
        << printGeneric(P);
  }
}

TEST(HistogramTest, TxnCountBreakdown) {
  ForbidSuite S = x86Suite(3);
  std::vector<unsigned> H = txnCountHistogram(S.Tests);
  unsigned Total = 0;
  for (unsigned I = 1; I < H.size(); ++I)
    Total += H[I];
  EXPECT_EQ(Total, S.Tests.size());
  if (!H.empty()) {
    EXPECT_EQ(H[0], 0u); // every test has >= 1 txn
  }
}

} // namespace
