//===- Monotonicity.h - Transactional monotonicity (§8.1) -------*- C++ -*-==//
///
/// \file
/// Checks that adding stxn-edges never makes an inconsistent execution
/// consistent — which implies that introducing, enlarging, and coalescing
/// transactions are sound program transformations. A counterexample is a
/// pair (X, Y) over the same events and relations where Y has strictly
/// more stxn-edges, X is inconsistent, and Y is consistent.
///
/// Because consistency flips somewhere along any chain in the stxn
/// lattice, searching *adjacent* pairs (one augmentation step: grow a
/// transaction by one boundary event, merge two adjacent transactions, or
/// wrap one event in a new singleton transaction) is complete.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_METATHEORY_MONOTONICITY_H
#define TMW_METATHEORY_MONOTONICITY_H

#include "enumerate/Enumerator.h"

#include <vector>

namespace tmw {

/// Result of a bounded monotonicity check.
struct MonotonicityResult {
  bool CounterexampleFound = false;
  /// The inconsistent execution (fewer stxn edges) and its consistent
  /// augmentation; valid when a counterexample was found.
  Execution X, Y;
  uint64_t PairsChecked = 0;
  double Seconds = 0;
  /// False when the time budget stopped the search early.
  bool Complete = true;
};

/// All one-step stxn augmentations of \p X (grow / merge / new singleton).
/// For C++ vocabularies, atomic{} transactions never grow over atomic
/// operations, and new singletons are offered in both flavours.
std::vector<Execution> txnAugmentations(const Execution &X,
                                        const Vocabulary &V);

/// Search executions up to \p NumEvents events for a monotonicity
/// counterexample under \p M.
MonotonicityResult checkMonotonicity(const MemoryModel &M,
                                     const Vocabulary &V, unsigned NumEvents,
                                     double BudgetSeconds = 1e18);

} // namespace tmw

#endif // TMW_METATHEORY_MONOTONICITY_H
