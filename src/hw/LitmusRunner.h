//===- LitmusRunner.h - Running tests on simulated hardware -----*- C++ -*-==//
///
/// \file
/// The stand-in for the Litmus tool (Alglave et al., TACAS 2011): runs a
/// litmus test many times on a simulated machine and reports the outcome
/// histogram and whether the postcondition was ever observed.
///
/// Two machine back-ends are supported: the operational TSO+TSX machine
/// (x86), and axiomatic implementation models (Power/ARMv8) whose runs are
/// sampled from the implementation-consistent candidate outcomes. In both
/// cases the reachable outcome set is computed exhaustively, so `Seen` is
/// an exact verdict; the histogram adds the statistical texture of a real
/// campaign (rare weak outcomes, hot SC-like outcomes).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_HW_LITMUSRUNNER_H
#define TMW_HW_LITMUSRUNNER_H

#include "litmus/Program.h"
#include "models/MemoryModel.h"

#include <vector>

namespace tmw {

/// Result of one testing campaign for one litmus test.
struct RunReport {
  /// Distinct outcomes with simulated occurrence counts.
  std::vector<std::pair<Outcome, uint64_t>> Histogram;
  /// True when some reachable outcome satisfies the postcondition.
  bool Seen = false;
  uint64_t Runs = 0;
};

/// Run \p P on the operational x86-TSO+TSX machine \p Runs times.
RunReport runOnTso(const Program &P, uint64_t Runs, uint64_t Seed = 42);

/// Run \p P on an axiomatic implementation model \p Impl \p Runs times.
RunReport runOnImpl(const Program &P, const MemoryModel &Impl,
                    uint64_t Runs, uint64_t Seed = 42);

/// True when some outcome in \p Observed both satisfies the postcondition
/// of \p P and cannot be produced by any candidate execution consistent
/// under \p Spec — i.e. the campaign genuinely witnessed a behaviour the
/// model forbids.
///
/// This refines the raw "postcondition seen" verdict: with three or more
/// writes to one location a final-state postcondition cannot pin the full
/// coherence order (the paper's footnote 2), so a satisfying outcome may
/// have a benign explanation. Soundness violations are only claimed when
/// no consistent candidate explains the observation.
bool observedForbiddenBehaviour(const Program &P, const MemoryModel &Spec,
                                const std::vector<Outcome> &Observed);

/// Reachable-outcome helper for `observedForbiddenBehaviour` on the
/// operational machine.
std::vector<Outcome> outcomesOf(const RunReport &R);

} // namespace tmw

#endif // TMW_HW_LITMUSRUNNER_H
