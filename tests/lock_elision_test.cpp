//===- lock_elision_test.cpp - Lock elision checking (§8.3) -------------------==//

#include "TestGraphs.h"
#include "metatheory/LockElision.h"
#include "models/Armv8Model.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

/// The abstract Fig. 10 execution: normal CR incrementing x vs elided CR
/// storing to x, with the mutual-exclusion-violating rf/co pattern.
Execution fig10Abstract() {
  ExecutionBuilder B;
  EventId L = B.lockCall(0, EventKind::Lock);
  EventId Rx = B.read(0, 0);
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId U = B.lockCall(0, EventKind::Unlock);
  EventId Lt = B.lockCall(1, EventKind::TxLock);
  EventId WxT = B.write(1, 0, MemOrder::NonAtomic, 1);
  EventId Ut = B.lockCall(1, EventKind::TxUnlock);
  B.cr({L, Rx, Wx, U});
  B.cr({Lt, WxT, Ut});
  B.co(WxT, Wx); // final x = 2, the elided store in between
  return B.build();
}

TEST(CrOrderTest, Fig10AbstractViolatesSerialisation) {
  Execution X = fig10Abstract();
  EXPECT_FALSE(holdsCrOrder(X));
  // But the memory part is architecturally fine.
  Armv8Model Baseline{Armv8Model::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
}

TEST(CrOrderTest, SerialisedRegionsPass) {
  ExecutionBuilder B;
  EventId L = B.lockCall(0, EventKind::Lock);
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId U = B.lockCall(0, EventKind::Unlock);
  EventId Lt = B.lockCall(1, EventKind::TxLock);
  EventId Rx = B.read(1, 0);
  EventId Ut = B.lockCall(1, EventKind::TxUnlock);
  B.cr({L, Wx, U});
  B.cr({Lt, Rx, Ut});
  B.rf(Wx, Rx); // the elided CR runs entirely after the normal one
  EXPECT_TRUE(holdsCrOrder(B.build()));
}

TEST(ElideTest, Armv8MappingShape) {
  Execution Y = elideLocks(fig10Abstract(), Arch::Armv8, false);
  // L -> LDAXR;STXR (2), body 2, U -> STLR (1); Lt -> read m (1), body 1.
  EXPECT_EQ(Y.size(), 7u);
  EXPECT_EQ(Y.Rmw.numPairs(), 1u);
  // The elided side is one transaction containing the lock read.
  EXPECT_EQ(Y.numTxns(), 1u);
  EXPECT_EQ(Y.transactional().size(), 2u);
  // Acquire-exclusive read; release unlock store.
  EventId Rm = *Y.Rmw.domain().begin();
  EXPECT_TRUE(Y.event(Rm).isAcquire());
}

TEST(ElideTest, FixedMappingAddsDmb) {
  Execution Y = elideLocks(fig10Abstract(), Arch::Armv8, true);
  EXPECT_EQ(Y.size(), 8u);
  EXPECT_EQ(Y.fences(FenceKind::Dmb).size(), 1u);
}

TEST(ElideTest, X86MappingShape) {
  Execution Y = elideLocks(fig10Abstract(), Arch::X86, false);
  // L -> test read + locked RMW (3), body 2, U -> store (1), Lt -> read
  // (1), body 1.
  EXPECT_EQ(Y.size(), 8u);
  EXPECT_EQ(Y.Rmw.numPairs(), 1u);
}

TEST(ElideTest, PowerMappingShape) {
  Execution Y = elideLocks(fig10Abstract(), Arch::Power, false);
  // L -> lwarx;stwcx.;isync (3), body 2, U -> sync;store (2), Lt -> read
  // (1), body 1, Ut -> nothing: 9 events — exactly the bound the paper
  // uses for its Power lock-elision query (Table 2).
  EXPECT_EQ(Y.size(), 9u);
  EXPECT_EQ(Y.fences(FenceKind::ISync).size(), 1u);
  EXPECT_EQ(Y.fences(FenceKind::Sync).size(), 1u);
}

TEST(ElideTest, CompletionsRespectLockProtocol) {
  Execution Skeleton = elideLocks(fig10Abstract(), Arch::Armv8, false);
  std::vector<Execution> Completions = lockVarCompletions(Skeleton);
  ASSERT_FALSE(Completions.empty());
  LocId M = 1; // x=0, lock variable appended
  for (const Execution &Y : Completions) {
    EXPECT_EQ(Y.checkWellFormed(), nullptr);
    for (EventId R : Y.reads() & Y.atLocation(M)) {
      EventSet Srcs = Y.Rf.restrictRange(EventSet::singleton(R)).domain();
      for (EventId W : Srcs)
        EXPECT_EQ(Y.event(W).WrittenValue, 0)
            << "a lock read observed a taken lock";
    }
  }
}

TEST(ElisionCheckTest, Armv8CounterexampleFound) {
  // Table 2: lock elision is unsound on ARMv8 — found quickly (63s for
  // Memalloy; our explicit search needs a few seconds at most).
  Armv8Model Tm;
  Armv8Model Spec{Armv8Model::Config::baseline()};
  ElisionResult R =
      checkLockElision(Tm, Spec, Arch::Armv8, false, 7, 300.0);
  ASSERT_TRUE(R.CounterexampleFound);
  EXPECT_FALSE(holdsCrOrder(R.Abstract));
  EXPECT_TRUE(Tm.consistent(R.Concrete));
}

TEST(ElisionCheckTest, Armv8FixedSpinlockSound) {
  // Table 2: with the DMB appended, no counterexample at the same bound.
  Armv8Model Tm;
  Armv8Model Spec{Armv8Model::Config::baseline()};
  ElisionResult R =
      checkLockElision(Tm, Spec, Arch::Armv8, true, 7, 300.0);
  EXPECT_FALSE(R.CounterexampleFound)
      << R.Abstract.dump() << R.Concrete.dump();
  EXPECT_TRUE(R.Complete);
}

TEST(ElisionCheckTest, X86Sound) {
  // Table 2 reports a >48h timeout with no counterexample for x86; our
  // bounded search is exhaustive at this scale and confirms soundness.
  X86Model Tm;
  X86Model Spec{X86Model::Config::baseline()};
  ElisionResult R = checkLockElision(Tm, Spec, Arch::X86, false, 7, 300.0);
  EXPECT_FALSE(R.CounterexampleFound)
      << R.Abstract.dump() << R.Concrete.dump();
}

TEST(ElisionCheckTest, TheFig10WitnessIsAmongThoseFound) {
  // The automatically found ARMv8 counterexample matches the hand-built
  // Example 1.1 consistency verdicts.
  Armv8Model Tm;
  Execution Concrete = shapes::lockElisionConcrete(false);
  EXPECT_TRUE(Tm.consistent(Concrete));
  Execution Fixed = shapes::lockElisionConcrete(true);
  EXPECT_FALSE(Tm.consistent(Fixed));
}

} // namespace
