//===- Transport.h - Server transports (stdio, Unix socket) -----*- C++ -*-==//
///
/// \file
/// The byte-moving side of the query server: the NDJSON stdin/stdout loop
/// (the default, pipeline-friendly: `printf '%s\n' <batch> | tmw_serve`)
/// and a Unix-domain stream socket for callers that keep a connection
/// open across many batches. Both speak the same frame: one
/// `tmw-query-batch-v1` document per line in, one
/// `tmw-query-verdicts-v1` document out per batch.
///
/// Two socket servers exist: the **serial** loop here (one connection at
/// a time — the single-client reference path the protocol tests diff
/// against) and the **concurrent poll multiplexer**
/// (server/Multiplexer.h, the default for `--listen`), which serves N
/// clients at once over the shared pool with a per-connection
/// byte-identity guarantee against this serial path.
///
/// Every accept/read/write loop in this file is uniformly EINTR-safe: a
/// signal delivered to the serving thread (SIGCHLD from a CI harness,
/// SIGUSR1 profiling pokes) restarts the call instead of dropping the
/// connection or killing the listener — pinned by
/// tests/transport_test.cpp's signal-delivery tests.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_SERVER_TRANSPORT_H
#define TMW_SERVER_TRANSPORT_H

#include <iosfwd>
#include <string>

namespace tmw {

class QueryServer;

namespace server {

/// Serve newline-delimited batches from stdin to stdout until EOF.
/// Returns 0.
int serveStdio(QueryServer &S);

/// Bind a Unix-domain stream socket at \p Path (an existing socket file
/// is replaced) and serve connections one at a time: each connection
/// streams batch lines and receives one verdicts document per batch,
/// until the peer shuts down its write side. \p AcceptLimit bounds the
/// number of connections served (0 = loop until the process dies — the
/// daemon mode). Returns 0 on a clean finish, 1 on socket errors (one
/// diagnostic line on stderr).
///
/// This is the serial single-client reference; the concurrent
/// multiplexer (server/Multiplexer.h) must match it byte-for-byte per
/// connection.
int serveUnixSocket(QueryServer &S, const std::string &Path,
                    unsigned AcceptLimit = 0);

/// The client side (`tmw_serve --connect`): connect to the Unix socket
/// at \p Path, send every line of \p In as a batch — interleaved with
/// draining the returned verdict documents to \p Out, so an input of
/// any size cannot pipe-deadlock against the server's write-side
/// backpressure — half-close once the input is on the wire, then
/// stream the remaining documents until EOF. Retries the connect
/// briefly while a freshly-started server binds. Returns 0 on success,
/// 1 on socket errors (one diagnostic line on stderr).
int runClient(const std::string &Path, std::istream &In, std::ostream &Out);

} // namespace server
} // namespace tmw

#endif // TMW_SERVER_TRANSPORT_H
