//===- FromExecution.cpp - Executions to litmus tests -------------------------==//

#include "litmus/FromExecution.h"

#include <algorithm>

using namespace tmw;

namespace {

/// Value written by each write: 1 + its coherence position.
std::vector<int> assignWriteValues(const Execution &X) {
  std::vector<int> Val(X.size(), 0);
  for (EventId W : X.writes()) {
    // Position = number of co-predecessors.
    unsigned Pos = X.Co.restrictRange(EventSet::singleton(W)).domain().size();
    Val[W] = static_cast<int>(Pos) + 1;
  }
  return Val;
}

/// Events of thread T sorted by program order.
std::vector<EventId> threadEventsInPo(const Execution &X, unsigned T) {
  std::vector<EventId> Es;
  for (EventId E : X.ofThread(T))
    Es.push_back(E);
  std::sort(Es.begin(), Es.end(), [&X](EventId A, EventId B) {
    return X.Po.contains(A, B);
  });
  return Es;
}

} // namespace

ExecutionToProgram
tmw::programFromExecution(const Execution &X, const std::string &Name) {
  ExecutionToProgram Out;
  Program &P = Out.Prog;
  P.Name = Name;
  Out.InstrOf.assign(X.size(), {0, 0});

  unsigned NumLocs = X.numLocations();
  for (unsigned L = 0; L < NumLocs; ++L)
    P.LocNames.push_back(std::string(1, static_cast<char>('x' + L)));

  std::vector<int> Val = assignWriteValues(X);
  bool HasTxn = !X.transactional().empty();
  if (HasTxn) {
    LocId Ok = P.ensureLoc("ok");
    P.InitialValues.push_back({Ok, 1});
    P.MemPost.push_back({Ok, 1});
  }

  unsigned NumThreads = X.numThreads();
  P.Threads.resize(NumThreads);
  // Load-instruction index per event, for dependency references.
  std::vector<int> LoadIndexOf(X.size(), -1);

  for (unsigned T = 0; T < NumThreads; ++T) {
    std::vector<EventId> Es = threadEventsInPo(X, T);
    int CurTxn = kNoClass;
    for (EventId E : Es) {
      auto &Instrs = P.Threads[T];
      if (X.Txn[E] != CurTxn) {
        if (CurTxn != kNoClass) {
          Instruction End;
          End.K = Instruction::Kind::TxEnd;
          Instrs.push_back(End);
        }
        if (X.Txn[E] != kNoClass) {
          Instruction Begin;
          Begin.K = Instruction::Kind::TxBegin;
          Begin.TxnAtomic = (X.AtomicTxns >> X.Txn[E]) & 1;
          Instrs.push_back(Begin);
        }
        CurTxn = X.Txn[E];
      }

      const Event &Ev = X.event(E);
      Instruction I;
      switch (Ev.Kind) {
      case EventKind::Read:
        I.K = Instruction::Kind::Load;
        break;
      case EventKind::Write:
        I.K = Instruction::Kind::Store;
        I.Value = Val[E];
        break;
      case EventKind::Fence:
        I.K = Instruction::Kind::Fence;
        I.FK = Ev.Fence;
        break;
      case EventKind::Lock:
        I.K = Instruction::Kind::Lock;
        break;
      case EventKind::Unlock:
        I.K = Instruction::Kind::Unlock;
        break;
      case EventKind::TxLock:
        I.K = Instruction::Kind::TxLock;
        break;
      case EventKind::TxUnlock:
        I.K = Instruction::Kind::TxUnlock;
        break;
      }
      I.Loc = Ev.Loc;
      I.MO = Ev.Order;
      I.Exclusive = X.Rmw.domain().contains(E) || X.Rmw.range().contains(E);

      Out.InstrOf[E] = {T, static_cast<unsigned>(Instrs.size())};
      if (Ev.isRead())
        LoadIndexOf[E] = static_cast<int>(Instrs.size());
      Instrs.push_back(I);
    }
    if (CurTxn != kNoClass) {
      Instruction End;
      End.K = Instruction::Kind::TxEnd;
      P.Threads[T].push_back(End);
    }
  }

  // Dependencies and RMW pairing, resolved to instruction indices.
  auto AddDeps = [&](const Relation &Rel,
                     std::vector<unsigned> Instruction::*Member) {
    Rel.forEachPair([&](EventId A, EventId B) {
      auto [TB, IB] = Out.InstrOf[B];
      assert(LoadIndexOf[A] >= 0 && "dependency from a non-load");
      (P.Threads[TB][IB].*Member)
          .push_back(static_cast<unsigned>(LoadIndexOf[A]));
    });
  };
  AddDeps(X.Addr, &Instruction::AddrDeps);
  AddDeps(X.Data, &Instruction::DataDeps);
  // ctrl is forward-closed; a branch at the first target covers the rest.
  Relation CtrlImm = X.Ctrl - X.Ctrl.compose(X.Po);
  CtrlImm.forEachPair([&](EventId A, EventId B) {
    auto [TB, IB] = Out.InstrOf[B];
    assert(LoadIndexOf[A] >= 0 && "dependency from a non-load");
    P.Threads[TB][IB].CtrlDeps.push_back(
        static_cast<unsigned>(LoadIndexOf[A]));
  });
  X.Rmw.forEachPair([&](EventId A, EventId B) {
    auto [TA, IA] = Out.InstrOf[A];
    auto [TB, IB] = Out.InstrOf[B];
    assert(TA == TB && "rmw crosses threads");
    P.Threads[TA][IA].RmwPartner = static_cast<int>(IB);
    P.Threads[TB][IB].RmwPartner = static_cast<int>(IA);
  });

  // Postcondition: registers pin rf, final memory pins co.
  for (EventId R : X.reads()) {
    EventSet Srcs = X.Rf.restrictRange(EventSet::singleton(R)).domain();
    int Expect = 0;
    for (EventId W : Srcs)
      Expect = Val[W];
    auto [T, I] = Out.InstrOf[R];
    (void)I;
    P.RegPost.push_back(
        {T, static_cast<unsigned>(LoadIndexOf[R]), Expect});
  }
  for (unsigned L = 0; L < NumLocs; ++L) {
    EventSet Ws = X.writes() & X.atLocation(static_cast<LocId>(L));
    if (Ws.empty())
      continue;
    int FinalVal = 0;
    for (EventId W : Ws)
      if ((X.Co.successors(W) & Ws).empty())
        FinalVal = Val[W];
    P.MemPost.push_back({static_cast<LocId>(L), FinalVal});
  }

  return Out;
}

Outcome tmw::expectedOutcome(const Execution &X, const Program &P) {
  Outcome O;
  std::vector<int> Val = assignWriteValues(X);
  ExecutionToProgram Map = programFromExecution(X, P.Name);
  for (EventId R : X.reads()) {
    EventSet Srcs = X.Rf.restrictRange(EventSet::singleton(R)).domain();
    int V = 0;
    for (EventId W : Srcs)
      V = Val[W];
    auto [T, I] = Map.InstrOf[R];
    O.RegValues.push_back({T, I, V});
  }
  std::sort(O.RegValues.begin(), O.RegValues.end());
  O.MemValues.assign(P.LocNames.size(), 0);
  for (const auto &[L, V] : P.InitialValues)
    O.MemValues[L] = V;
  for (unsigned L = 0; L < X.numLocations(); ++L) {
    EventSet Ws = X.writes() & X.atLocation(static_cast<LocId>(L));
    for (EventId W : Ws)
      if ((X.Co.successors(W) & Ws).empty())
        O.MemValues[L] = Val[W];
  }
  return O;
}
