//===- power_test.cpp - Power with transactions (Fig. 6, §5.2) ----------------==//

#include "TestGraphs.h"
#include "models/PowerModel.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(PowerTest, AllowsStoreBuffering) {
  PowerModel M;
  EXPECT_TRUE(M.consistent(shapes::storeBuffering()));
}

TEST(PowerTest, AllowsMessagePassingWithoutSync) {
  PowerModel M;
  EXPECT_TRUE(M.consistent(shapes::messagePassing()));
}

TEST(PowerTest, AllowsMessagePassingWithDepOnly) {
  // An address dependency on the reader alone is not enough: the writer
  // needs a barrier too.
  PowerModel M;
  EXPECT_TRUE(M.consistent(shapes::messagePassingDep(false)));
}

TEST(PowerTest, LwsyncPlusDepForbidsMessagePassing) {
  PowerModel M;
  ConsistencyResult R = M.check(shapes::messagePassingDep(true));
  EXPECT_FALSE(R.Consistent);
}

TEST(PowerTest, AllowsLoadBuffering) {
  PowerModel M;
  EXPECT_TRUE(M.consistent(shapes::loadBuffering(false)));
}

TEST(PowerTest, DataDepsForbidLoadBuffering) {
  PowerModel M;
  EXPECT_FALSE(M.consistent(shapes::loadBuffering(true)));
}

TEST(PowerTest, AllowsIriwEvenWithReaderDeps) {
  // Power is not multicopy-atomic: IRIW is observable even with address
  // dependencies between the reader loads.
  PowerModel M;
  EXPECT_TRUE(M.consistent(shapes::iriw(MemOrder::NonAtomic, true)));
}

TEST(PowerTest, SyncsForbidIriw) {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1);
  EventId R2x = B.read(2, 0);
  B.fence(2, FenceKind::Sync);
  EventId R2y = B.read(2, 1);
  EventId R3y = B.read(3, 1);
  B.fence(3, FenceKind::Sync);
  EventId R3x = B.read(3, 0);
  B.rf(Wx, R2x);
  B.rf(Wy, R3y);
  (void)R2y;
  (void)R3x;
  PowerModel M;
  EXPECT_FALSE(M.consistent(B.build()));
}

TEST(PowerTest, CoherenceStillHolds) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R1 = B.read(1, 0);
  EventId R2 = B.read(1, 0);
  B.rf(W2, R1);
  B.rf(W1, R2); // new-then-old: coherence violation
  PowerModel M;
  ConsistencyResult Res = M.check(B.build());
  EXPECT_FALSE(Res.Consistent);
  EXPECT_EQ(Res.FailedAxiom, "Coherence");
}

//===----------------------------------------------------------------------===
// TM additions (§5.2).
//===----------------------------------------------------------------------===

TEST(PowerTmTest, Sec52Execution1ForbiddenByIntegratedBarrier) {
  Execution X = shapes::powerWrcTxnObserved();
  PowerModel Tm;
  ConsistencyResult R = Tm.check(X);
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "Observation");

  // Without tprop1 (the integrated memory barrier) it is allowed.
  PowerModel::Config NoTprop1;
  NoTprop1.TProp1 = false;
  EXPECT_TRUE(PowerModel(NoTprop1).consistent(X));
  // The baseline without transactions allows it too.
  PowerModel Baseline{PowerModel::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
}

TEST(PowerTmTest, Sec52Execution2ForbiddenByMulticopyAtomicity) {
  Execution X = shapes::powerWrcTxnWrite();
  PowerModel Tm;
  ConsistencyResult R = Tm.check(X);
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "Observation");

  PowerModel::Config NoTprop2;
  NoTprop2.TProp2 = false;
  EXPECT_TRUE(PowerModel(NoTprop2).consistent(X));
}

TEST(PowerTmTest, Sec52Execution3ForbiddenByTransactionOrdering) {
  Execution X = shapes::powerIriwTxns(/*BothTxns=*/true);
  PowerModel Tm;
  EXPECT_FALSE(Tm.consistent(X));

  PowerModel::Config NoThb;
  NoThb.Thb = false;
  EXPECT_TRUE(PowerModel(NoThb).consistent(X));
}

TEST(PowerTmTest, IriwWithOneTransactionAllowed) {
  // §5.2: "a behaviour similar to (3) but with only one write
  // transactional was observed during our empirical testing, and is duly
  // allowed by our model."
  Execution X = shapes::powerIriwTxns(/*BothTxns=*/false);
  PowerModel Tm;
  EXPECT_TRUE(Tm.consistent(X));
}

TEST(PowerTmTest, Remark51ReadOnlyTransactionAllowed) {
  // The manual is ambiguous; the model errs on the side of caution and
  // permits the read-only-transaction variants.
  PowerModel Tm;
  EXPECT_TRUE(Tm.consistent(shapes::powerRemark51()));
}

TEST(PowerTmTest, TxnCancelsRmwAcrossBoundary) {
  Execution Split = shapes::rmwAcrossTxns(/*Coalesced=*/false);
  PowerModel Tm;
  ConsistencyResult R = Tm.check(Split);
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "TxnCancelsRMW");

  Execution Joined = shapes::rmwAcrossTxns(/*Coalesced=*/true);
  EXPECT_TRUE(Tm.consistent(Joined));
}

TEST(PowerTmTest, TfenceActsLikeSync) {
  // MP with the writes in one transaction and an address dependency on
  // the reader: the exit fence of the transaction is cumulative like
  // sync, so the stale read is forbidden.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Done = B.write(0, 2, MemOrder::NonAtomic, 1); // after the txn
  EventId Rz = B.read(1, 2);
  EventId Rx = B.read(1, 0); // stale
  B.rf(Done, Rz);
  B.addr(Rz, Rx);
  B.txn({Wx, Wy});
  (void)Wy;
  Execution X = B.build();

  PowerModel Tm;
  EXPECT_FALSE(Tm.consistent(X));
  PowerModel Baseline{PowerModel::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
}

TEST(PowerTmTest, DongolComparisonShapeForbidden) {
  // §9: transactional message passing is forbidden by our Power model but
  // allowed by models that drop the transaction-ordering machinery. In
  // our formulation (where initial reads carry fr edges) the isolation
  // axioms already catch the shape, so "ordering-free" means dropping
  // both the lifted orders and isolation.
  Execution X = shapes::dongolComparison();
  PowerModel Tm;
  EXPECT_FALSE(Tm.consistent(X));

  // Dropping only thb keeps it forbidden via StrongIsol...
  PowerModel::Config NoThb;
  NoThb.Thb = false;
  NoThb.TxnOrder = false;
  EXPECT_FALSE(PowerModel(NoThb).consistent(X));
  // ...and dropping isolation as well finally admits it.
  PowerModel::Config NoOrdering = NoThb;
  NoOrdering.StrongIsol = false;
  EXPECT_TRUE(PowerModel(NoOrdering).consistent(X));
}

TEST(PowerTmTest, TransactionFreeExecutionsUnchanged) {
  PowerModel Tm;
  PowerModel Baseline{PowerModel::Config::baseline()};
  for (const Execution &X :
       {shapes::storeBuffering(), shapes::messagePassing(),
        shapes::messagePassingDep(true), shapes::loadBuffering(true),
        shapes::iriw(MemOrder::NonAtomic, true)}) {
    EXPECT_EQ(Tm.consistent(X), Baseline.consistent(X));
  }
}

} // namespace
