//===- model_hierarchy_test.cpp - Cross-model inclusion properties ------------==//
///
/// §3.4: "The models we propose in §5–7 all lie between these bounds" —
/// TSC above, isolation below. These sweeps check, over every enumerated
/// execution of a vocabulary up to a bound:
///
///   * TSC-consistent    => consistent under each hardware TM model;
///   * TM-consistent     => consistent under the non-TM baseline;
///   * TM-consistent     => strong (hence weak) isolation holds;
///   * TSC-consistent    => SC-consistent;
///   * SC-consistent     => consistent under each hardware baseline
///                          (for rmw-free executions);
///   * x86-consistent    => ARMv8-consistent (TSO is the stronger model).
///
//===----------------------------------------------------------------------===//

#include "enumerate/Enumerator.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

/// Sweep all executions (bases and transaction placements) of \p V up to
/// \p NumEvents.
template <typename Fn>
void sweep(const Vocabulary &V, unsigned NumEvents, Fn &&Check) {
  ExecutionEnumerator Enum(V, NumEvents);
  Enum.forEachBase([&](Execution &Base) {
    Check(Base);
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      Check(X);
      return true;
    });
  });
}

struct Models {
  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  X86Model X86Base{X86Model::Config::baseline()};
  PowerModel Power;
  PowerModel PowerBase{PowerModel::Config::baseline()};
  Armv8Model Armv8;
  Armv8Model Armv8Base{Armv8Model::Config::baseline()};
  CppModel Cpp;
  CppModel CppBase{CppModel::Config::baseline()};
};

class HierarchySweep : public ::testing::TestWithParam<unsigned> {
protected:
  Models M;
};

TEST_P(HierarchySweep, TscIsAnUpperBoundForEveryTmModel) {
  uint64_t Considered = 0;
  sweep(Vocabulary::forArch(Arch::X86), GetParam(), [&](const Execution &X) {
    if (!M.Tsc.consistent(X))
      return;
    // RMWIsol and TxnCancelsRMW are failure semantics, not ordering: an
    // intruded-upon or boundary-straddling exclusive pair simply never
    // succeeds on hardware, and Fig. 4's TSC has no axiom about either —
    // such executions sit outside the upper-bound claim.
    if (!(X.Rmw & X.tfence().transitiveClosure()).isEmpty())
      return;
    if (!(X.Rmw & X.fre().compose(X.coe())).isEmpty())
      return;
    ++Considered;
    EXPECT_TRUE(M.X86.consistent(X)) << X.dump();
    EXPECT_TRUE(M.Power.consistent(X)) << X.dump();
    EXPECT_TRUE(M.Armv8.consistent(X)) << X.dump();
  });
  EXPECT_GT(Considered, 0u);
}

TEST_P(HierarchySweep, TmConsistencyImpliesBaselineConsistency) {
  sweep(Vocabulary::forArch(Arch::X86), GetParam(), [&](const Execution &X) {
    if (M.X86.consistent(X)) {
      EXPECT_TRUE(M.X86Base.consistent(X)) << X.dump();
    }
    if (M.Power.consistent(X)) {
      EXPECT_TRUE(M.PowerBase.consistent(X)) << X.dump();
    }
    if (M.Armv8.consistent(X)) {
      EXPECT_TRUE(M.Armv8Base.consistent(X)) << X.dump();
    }
  });
}

TEST_P(HierarchySweep, TmConsistencyImpliesIsolation) {
  sweep(Vocabulary::forArch(Arch::X86), GetParam(), [&](const Execution &X) {
    for (const MemoryModel *Tm :
         std::initializer_list<const MemoryModel *>{&M.X86, &M.Power,
                                                    &M.Armv8}) {
      if (!Tm->consistent(X))
        continue;
      EXPECT_TRUE(holdsStrongIsolation(X)) << Tm->name() << "\n" << X.dump();
      EXPECT_TRUE(holdsWeakIsolation(X)) << Tm->name() << "\n" << X.dump();
    }
  });
}

TEST_P(HierarchySweep, TscImpliesSc) {
  sweep(Vocabulary::forArch(Arch::SC), GetParam(), [&](const Execution &X) {
    if (M.Tsc.consistent(X)) {
      EXPECT_TRUE(M.Sc.consistent(X)) << X.dump();
    }
  });
}

TEST_P(HierarchySweep, ScImpliesHardwareBaselines) {
  sweep(Vocabulary::forArch(Arch::SC), GetParam(), [&](const Execution &X) {
    if (!X.Rmw.isEmpty() || !M.Sc.consistent(X))
      return;
    EXPECT_TRUE(M.X86Base.consistent(X)) << X.dump();
    EXPECT_TRUE(M.PowerBase.consistent(X)) << X.dump();
    EXPECT_TRUE(M.Armv8Base.consistent(X)) << X.dump();
  });
}

TEST_P(HierarchySweep, X86ImpliesArmv8) {
  // TSO is stronger than ARMv8: anything TSO forbids beyond ARMv8 is
  // fine, anything TSO allows ARMv8 allows — except for the failure
  // semantics of exclusives straddling transaction boundaries
  // (TxnCancelsRMW), which x86's locked RMWs do not share.
  sweep(Vocabulary::forArch(Arch::X86), GetParam(), [&](const Execution &X) {
    if (!(X.Rmw & X.tfence().transitiveClosure()).isEmpty())
      return;
    if (M.X86.consistent(X)) {
      EXPECT_TRUE(M.Armv8.consistent(X)) << X.dump();
    }
  });
}

TEST_P(HierarchySweep, TransactionFreeAgreementBetweenTmAndBaseline) {
  // §8: the TM models give the same semantics to transaction-free
  // executions as the original models — over the whole enumerated space.
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator Enum(V, GetParam());
  Enum.forEachBase([&](Execution &X) {
    EXPECT_EQ(M.X86.consistent(X), M.X86Base.consistent(X)) << X.dump();
    EXPECT_EQ(M.Power.consistent(X), M.PowerBase.consistent(X))
        << X.dump();
    EXPECT_EQ(M.Armv8.consistent(X), M.Armv8Base.consistent(X))
        << X.dump();
    EXPECT_EQ(M.Cpp.consistent(X), M.CppBase.consistent(X)) << X.dump();
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(Bounds, HierarchySweep, ::testing::Values(3u, 4u));

} // namespace
