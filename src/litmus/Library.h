//===- Library.h - A curated litmus-test corpus -----------------*- C++ -*-==//
///
/// \file
/// The classic litmus tests (SB, MP, LB, WRC, IRIW, coherence shapes,
/// 2+2W, R, S) plus the paper's transactional variants, as parsed
/// programs with their expected verdicts under each model. The corpus is
/// the shared regression bed for the model tests, the simulated-hardware
/// tests, and the verdict-matrix bench.
///
/// Expected verdicts record whether the *postcondition is reachable*
/// (i.e. the weak behaviour is allowed); `unknown` marks combinations the
/// entry does not constrain.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_LITMUS_LIBRARY_H
#define TMW_LITMUS_LIBRARY_H

#include "litmus/Program.h"
#include "models/MemoryModel.h"

#include <optional>
#include <string_view>
#include <vector>

namespace tmw {

/// One corpus entry: a named test and its expected verdicts.
struct CorpusEntry {
  /// Test name, e.g. "SB+txns".
  std::string Name;
  /// Shape family, e.g. "SB".
  std::string Family;
  Program Prog;
  /// Expected reachability per model; `nullopt` = unconstrained.
  std::optional<bool> Sc, Tsc, X86, Power, Armv8;
  /// One-line provenance note (paper section, folklore name, ...).
  std::string Note;
};

/// The standard corpus (built once per call; ~25 entries).
std::vector<CorpusEntry> standardCorpus();

/// The process-wide shared corpus: built once, immutable and alive for
/// the process lifetime — the copy long-lived consumers (the query
/// engine and server, the benches) should reference instead of paying a
/// fresh `standardCorpus()` parse per call. Safe to read from any
/// thread after the first call returns.
const std::vector<CorpusEntry> &sharedCorpus();

/// O(1) lookup of a `sharedCorpus()` entry by test name; nullptr when
/// unknown. The pointer stays valid for the process lifetime (cache-safe
/// program ownership: responses and caches may hold `&E->Prog` freely).
const CorpusEntry *findCorpusEntry(std::string_view Name);

/// Look up the expected verdict of \p E for \p A.
std::optional<bool> expectedVerdict(const CorpusEntry &E, Arch A);

} // namespace tmw

#endif // TMW_LITMUS_LIBRARY_H
