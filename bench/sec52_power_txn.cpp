//===- sec52_power_txn.cpp - §5.2 executions (1)(2)(3) and Remark 5.1 ----------==//
///
/// Regenerates the §5.2 case analysis: each TM addition to the Power
/// model (tprop1, tprop2, thb) is shown forbidding exactly its motivating
/// execution, with the ablated model admitting it; the Remark 5.1
/// read-only-transaction shapes stay allowed ("the model errs on the side
/// of caution").
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "execution/Builder.h"
#include "models/PowerModel.h"

using namespace tmw;

namespace {

// See tests/TestGraphs.h for the shapes; duplicated here so the bench is
// a standalone demonstration of the public API.

Execution wrcTxnObserved() {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0);
  EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(2, 1);
  EventId Rx2 = B.read(2, 0);
  B.rf(Wx, Rx);
  B.rf(Wy, Ry);
  B.addr(Ry, Rx2);
  B.txn({Rx, Wy});
  return B.build();
}

Execution wrcTxnWrite() {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0);
  EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(2, 1);
  EventId Rx2 = B.read(2, 0);
  B.rf(Wx, Rx);
  B.rf(Wy, Ry);
  B.addr(Rx, Wy);
  B.addr(Ry, Rx2);
  B.txn({Wx});
  return B.build();
}

Execution iriwTxns(bool BothTxns) {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0);
  EventId Ry = B.read(1, 1);
  EventId Ry2 = B.read(2, 1);
  EventId Rx2 = B.read(2, 0);
  EventId Wy = B.write(3, 1, MemOrder::NonAtomic, 1);
  B.rf(Wx, Rx);
  B.rf(Wy, Ry2);
  B.addr(Rx, Ry);
  B.addr(Ry2, Rx2);
  B.txn({Wx});
  if (BothTxns)
    B.txn({Wy});
  return B.build();
}

Execution remark51() {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0);
  EventId Ry = B.read(1, 1);
  EventId Wy = B.write(2, 1, MemOrder::NonAtomic, 1);
  B.fence(2, FenceKind::Sync);
  EventId Rx2 = B.read(2, 0);
  B.rf(Wx, Rx);
  B.txn({Rx, Ry});
  (void)Wy;
  (void)Rx2;
  return B.build();
}

void row(const char *Name, const Execution &X, const char *PaperVerdict) {
  PowerModel Full;
  PowerModel::Config NoT1;
  NoT1.TProp1 = false;
  PowerModel::Config NoT2;
  NoT2.TProp2 = false;
  PowerModel::Config NoThb;
  NoThb.Thb = false;
  ConsistencyResult C = Full.check(X);
  std::printf("%-24s %-10s %-14s %-9s %-9s %-9s   paper: %s\n", Name,
              C.Consistent ? "allowed" : "FORBIDDEN",
              C.FailedAxiom.empty() ? "-" : C.FailedAxiom.data(),
              bench::yesNo(PowerModel(NoT1).consistent(X)),
              bench::yesNo(PowerModel(NoT2).consistent(X)),
              bench::yesNo(PowerModel(NoThb).consistent(X)), PaperVerdict);
}

} // namespace

int main() {
  bench::header("§5.2: the Power TM additions on their motivating tests",
                "§5.2 executions (1), (2), (3); Remark 5.1");
  std::printf("%-24s %-10s %-14s %-9s %-9s %-9s\n", "execution",
              "Power+TM", "failed axiom", "-tprop1?", "-tprop2?",
              "-thb?");
  row("(1) WRC txn observes", wrcTxnObserved(),
      "forbidden (integrated barrier)");
  row("(2) WRC txn write", wrcTxnWrite(),
      "forbidden (multicopy-atomic txn stores)");
  row("(3) IRIW two txns", iriwTxns(true),
      "forbidden (transaction serialisation)");
  row("(3') IRIW one txn", iriwTxns(false), "allowed (observed on POWER8)");
  row("Remark 5.1 read-only", remark51(),
      "allowed (manual ambiguous; model errs to allow)");
  std::printf("\nColumns -tprop1?/-tprop2?/-thb?: does the ablated model "
              "allow the execution\n(yes on the motivating row = that "
              "axiom is what forbids it).\n");
  return 0;
}
