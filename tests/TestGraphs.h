//===- TestGraphs.h - Classic litmus shapes for tests -----------*- C++ -*-==//
///
/// \file
/// Named constructors for the classic litmus-test executions used
/// throughout the test suite and benches: SB, MP, LB, WRC, IRIW, and the
/// paper's transactional variants (§5.2, Example 1.1, Appendix B, §8.1).
/// Locations are numbered x=0, y=1, m (the lock variable) as documented
/// per shape.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_TESTS_TESTGRAPHS_H
#define TMW_TESTS_TESTGRAPHS_H

#include "execution/Builder.h"

namespace tmw::shapes {

/// Store buffering: T0: Wx=1; Ry(0).  T1: Wy=1; Rx(0).
/// The classic TSO-observable shape; forbidden under SC.
inline Execution storeBuffering(MemOrder MO = MemOrder::NonAtomic) {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MO, 1);
  B.read(0, 1, MO);
  EventId Wy = B.write(1, 1, MO, 1);
  B.read(1, 0, MO);
  (void)Wx;
  (void)Wy;
  return B.build(); // both reads observe the initial values
}

/// Message passing with the stale read: T0: Wx=1; Wy=1.  T1: Ry(1); Rx(0).
inline Execution messagePassing(MemOrder WriteMO = MemOrder::NonAtomic,
                                MemOrder ReadMO = MemOrder::NonAtomic) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, WriteMO, 1);
  EventId Ry = B.read(1, 1, ReadMO);
  B.read(1, 0);
  B.rf(Wy, Ry);
  return B.build();
}

/// Message passing with an address dependency on the reader side.
inline Execution messagePassingDep(bool WithFence) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  if (WithFence)
    B.fence(0, FenceKind::LwSync);
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(1, 1);
  EventId Rx = B.read(1, 0);
  B.rf(Wy, Ry);
  B.addr(Ry, Rx);
  return B.build();
}

/// Load buffering: T0: Rx(1); Wy=1.  T1: Ry(1); Wx=1.
inline Execution loadBuffering(bool WithDataDeps) {
  ExecutionBuilder B;
  EventId Rx = B.read(0, 0);
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(1, 1);
  EventId Wx = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.rf(Wy, Ry);
  B.rf(Wx, Rx);
  if (WithDataDeps) {
    B.data(Rx, Wy);
    B.data(Ry, Wx);
  }
  return B.build();
}

/// IRIW: two writers, two readers observing them in opposite orders.
inline Execution iriw(MemOrder ReadMO = MemOrder::NonAtomic,
                      bool ReaderDeps = false) {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1);
  EventId R2x = B.read(2, 0, ReadMO);
  EventId R2y = B.read(2, 1, ReadMO);
  EventId R3y = B.read(3, 1, ReadMO);
  EventId R3x = B.read(3, 0, ReadMO);
  B.rf(Wx, R2x);
  B.rf(Wy, R3y);
  if (ReaderDeps) {
    B.addr(R2x, R2y);
    B.addr(R3y, R3x);
  }
  return B.build();
}

/// §5.2 execution (1): WRC where the middle thread's read+write form a
/// transaction; forbidden by the Power integrated memory barrier (tprop1).
inline Execution powerWrcTxnObserved() {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1); // a
  EventId Rx = B.read(1, 0);                          // b
  EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1); // c
  EventId Ry = B.read(2, 1);                          // d
  EventId Rx2 = B.read(2, 0);                         // e: reads initial x
  B.rf(Wx, Rx);
  B.rf(Wy, Ry);
  B.addr(Ry, Rx2);
  B.txn({Rx, Wy});
  return B.build();
}

/// §5.2 execution (2): WRC where the initial write is transactional;
/// forbidden by multicopy-atomic transactional writes (tprop2).
inline Execution powerWrcTxnWrite() {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1); // a (transactional)
  EventId Rx = B.read(1, 0);                          // b
  EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1); // c
  EventId Ry = B.read(2, 1);                          // d
  EventId Rx2 = B.read(2, 0);                         // e: reads initial x
  B.rf(Wx, Rx);
  B.rf(Wy, Ry);
  B.addr(Rx, Wy);
  B.addr(Ry, Rx2);
  B.txn({Wx});
  return B.build();
}

/// §5.2 execution (3) (after Cain et al., Fig. 5): IRIW where the two
/// *writes* are transactions and the readers use dependencies; the two
/// reader threads observe the transactions in incompatible orders, so the
/// shape is forbidden by transaction ordering (thb). With \p BothTxns
/// false only one write is transactional and the shape is allowed (and
/// was observed on POWER8, §5.2).
inline Execution powerIriwTxns(bool BothTxns) {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1); // a (transactional)
  EventId Rx = B.read(1, 0);                          // b
  EventId Ry = B.read(1, 1);                          // c: reads initial y
  EventId Ry2 = B.read(2, 1);                         // d
  EventId Rx2 = B.read(2, 0);                         // e: reads initial x
  EventId Wy = B.write(3, 1, MemOrder::NonAtomic, 1); // f
  B.rf(Wx, Rx);
  B.rf(Wy, Ry2);
  B.addr(Rx, Ry);
  B.addr(Ry2, Rx2);
  B.txn({Wx});
  if (BothTxns)
    B.txn({Wy});
  return B.build();
}

/// Remark 5.1 (first execution): read-only transaction in the middle of a
/// WRC shape with a sync on the right; the Power manual is ambiguous, and
/// the model errs on the side of permitting it.
inline Execution powerRemark51() {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0);
  EventId Ry = B.read(1, 1); // reads initial y
  EventId Wy = B.write(2, 1, MemOrder::NonAtomic, 1);
  B.fence(2, FenceKind::Sync);
  EventId Rx2 = B.read(2, 0); // reads initial x
  B.rf(Wx, Rx);
  B.txn({Rx, Ry});
  (void)Wy;
  (void)Rx2;
  return B.build();
}

/// Example 1.1 / Fig. 10 (concrete, ARMv8-style): the left thread takes
/// the lock with an exclusive pair, the right elides it inside a
/// transaction. Orders: the acquire flag on the exclusive read and the
/// release flag on the unlock store. Locations: x=0, m=1.
///
/// \p FixedSpinlock inserts the DMB the paper proposes after the lock
/// acquisition. \p LoadVariant builds the Appendix B shape (an external
/// load observing an intermediate write) instead of Example 1.1 proper.
inline Execution lockElisionConcrete(bool FixedSpinlock,
                                     bool LoadVariant = false) {
  ExecutionBuilder B;
  constexpr LocId X = 0, M = 1;
  // Left thread: spinlock acquire (LDAXR/STXR), critical region, release.
  EventId Rm = B.read(0, M, MemOrder::Acquire); // LDAXR, reads m=0
  EventId Wm = B.write(0, M, MemOrder::NonAtomic, 1); // STXR
  B.rmw(Rm, Wm);
  B.ctrl(Rm, Wm); // CBNZ on the loaded value (forward-closed by build)
  if (FixedSpinlock)
    B.fence(0, FenceKind::Dmb);

  EventId WmRel;
  if (!LoadVariant) {
    // Example 1.1: x <- x + 2 in the critical region.
    EventId Rx = B.read(0, X);                          // reads initial x
    EventId Wx = B.write(0, X, MemOrder::NonAtomic, 2); // x <- 2
    B.data(Rx, Wx);
    WmRel = B.write(0, M, MemOrder::Release, 0); // STLR: unlock
    // Right thread: elided critical region inside a transaction.
    EventId RmT = B.read(1, M);                          // sees lock free
    EventId WxT = B.write(1, X, MemOrder::NonAtomic, 1); // x <- 1
    B.txn({RmT, WxT});
    B.co(WxT, Wx); // final x = 2
    (void)WmRel;
  } else {
    // Appendix B: two stores to x; the elided reader sees the first.
    EventId Wx1 = B.write(0, X, MemOrder::NonAtomic, 1);
    EventId Wx2 = B.write(0, X, MemOrder::NonAtomic, 2);
    B.co(Wx1, Wx2);
    WmRel = B.write(0, M, MemOrder::Release, 0);
    EventId RmT = B.read(1, M);
    EventId RxT = B.read(1, X);
    B.txn({RmT, RxT});
    B.rf(Wx1, RxT); // observes the intermediate value
    (void)WmRel;
  }
  return B.build();
}

/// §8.1 monotonicity counterexample (Power/ARMv8): an exclusive pair split
/// across two transactions (inconsistent via TxnCancelsRMW) vs coalesced
/// into one (consistent).
inline Execution rmwAcrossTxns(bool Coalesced) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.rmw(R, W);
  if (Coalesced) {
    B.txn({R, W});
  } else {
    B.txn({R});
    B.txn({W});
  }
  return B.build();
}

/// §9: the execution distinguishing the paper's Power model from
/// atomicity-only models (Dongol et al.): transactional message passing,
/// forbidden by C++ (hb cycle through tsw) and by the paper's Power model
/// (thb cycle), but allowed when transaction ordering is dropped.
inline Execution dongolComparison() {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1); // W x (txn)
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1); // W y (txn)
  EventId Ry = B.read(1, 1);                          // R y (txn)
  EventId Rx = B.read(1, 0);                          // R x: initial (txn)
  B.rf(Wy, Ry);
  B.txn({Wx, Wy});
  B.txn({Ry, Rx});
  return B.build();
}

} // namespace tmw::shapes

#endif // TMW_TESTS_TESTGRAPHS_H
