//===- query_test.cpp - Batch query engine tests ------------------------------==//
///
/// The request/response facade (query/QueryEngine.h) checked differentially
/// against the direct per-model loops it replaced: for the litmus corpus ×
/// a matrix of registry specs (including ablations and hardware-substitute
/// wrappers), the engine's enumerate-once/check-many verdicts — allowed,
/// consistent counts, first-forbidden index, failed-axiom names, allowed
/// outcome sets — must equal a fresh enumeration per model with throwaway
/// analyses. Plus: batch output byte-identical for Jobs in {1, 4, 16},
/// in-order streaming, candidate caps, and request-level error reporting.
///
//===----------------------------------------------------------------------===//

#include "enumerate/Candidates.h"
#include "litmus/Library.h"
#include "models/ModelRegistry.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

using namespace tmw;

namespace {

/// The spec matrix of the differential test: every architecture, two
/// ablation scenarios, and two hardware-substitute wrappers.
const std::vector<std::string> kSpecMatrix = {
    "sc",   "tsc",          "x86",    "power",     "armv8",
    "cpp",  "power/-TxnOrder", "x86/+baseline", "power8", "armv8-rtl"};

/// What the pre-engine consumers computed: one full enumeration for this
/// model, one throwaway analysis per candidate.
struct DirectVerdict {
  bool Allowed = false;
  uint64_t Consistent = 0;
  int64_t FirstForbidden = -1;
  std::vector<std::string> FailedAxioms;
  std::vector<Outcome> AllowedOutcomes;
};

DirectVerdict directCheck(const Program &P, const MemoryModel &M) {
  DirectVerdict Out;
  std::vector<Candidate> Cands = enumerateCandidates(P);
  const Execution *FirstForbidden = nullptr;
  for (size_t I = 0; I < Cands.size(); ++I) {
    const Candidate &C = Cands[I];
    if (M.consistent(C.X)) {
      ++Out.Consistent;
      Out.Allowed |= C.O.satisfies(P);
      Out.AllowedOutcomes.push_back(C.O);
    } else if (!FirstForbidden) {
      FirstForbidden = &C.X;
      Out.FirstForbidden = static_cast<int64_t>(I);
    }
  }
  if (FirstForbidden) {
    ExecutionAnalysis A(*FirstForbidden);
    for (const AxiomVerdict &V : M.checkAll(A).Verdicts)
      if (!V.Holds)
        Out.FailedAxioms.push_back(std::string(V.Ax->Name));
  }
  std::sort(Out.AllowedOutcomes.begin(), Out.AllowedOutcomes.end());
  Out.AllowedOutcomes.erase(
      std::unique(Out.AllowedOutcomes.begin(), Out.AllowedOutcomes.end()),
      Out.AllowedOutcomes.end());
  return Out;
}

std::vector<CheckRequest> corpusRequests(bool Explain, bool Outcomes) {
  std::vector<CheckRequest> Requests;
  for (const CorpusEntry &E : standardCorpus()) {
    CheckRequest R;
    R.Corpus = E.Name;
    R.ModelSpecs = kSpecMatrix;
    R.Explain = Explain;
    R.WantOutcomes = Outcomes;
    Requests.push_back(std::move(R));
  }
  return Requests;
}

TEST(QueryEngine_, DifferentialAgainstDirectLoops) {
  std::vector<CorpusEntry> Corpus = standardCorpus();
  std::vector<CheckRequest> Requests =
      corpusRequests(/*Explain=*/true, /*Outcomes=*/true);
  std::vector<CheckResponse> Responses = QueryEngine().runAll(Requests);
  ASSERT_EQ(Responses.size(), Corpus.size());

  for (size_t E = 0; E < Corpus.size(); ++E) {
    const CheckResponse &Resp = Responses[E];
    ASSERT_TRUE(static_cast<bool>(Resp)) << Resp.Error;
    EXPECT_EQ(Resp.Name, Corpus[E].Name);
    EXPECT_EQ(Resp.Candidates, enumerateCandidates(Corpus[E].Prog).size());
    ASSERT_EQ(Resp.Verdicts.size(), kSpecMatrix.size());

    for (size_t S = 0; S < kSpecMatrix.size(); ++S) {
      std::unique_ptr<MemoryModel> M = ModelRegistry::parse(kSpecMatrix[S]);
      ASSERT_TRUE(M) << kSpecMatrix[S];
      DirectVerdict Want = directCheck(Corpus[E].Prog, *M);
      const ModelVerdict &Got = Resp.Verdicts[S];
      SCOPED_TRACE(Corpus[E].Name + " under " + kSpecMatrix[S]);
      EXPECT_EQ(Got.Allowed, Want.Allowed);
      EXPECT_EQ(Got.Consistent, Want.Consistent);
      EXPECT_EQ(Got.FirstForbidden, Want.FirstForbidden);
      ASSERT_EQ(Got.FailedAxioms.size(), Want.FailedAxioms.size());
      for (size_t F = 0; F < Want.FailedAxioms.size(); ++F)
        EXPECT_EQ(Got.FailedAxioms[F].Axiom, Want.FailedAxioms[F]);
      EXPECT_EQ(Got.AllowedOutcomes, Want.AllowedOutcomes);
    }
  }
}

TEST(QueryEngine_, ReachabilityMatchesPostconditionReachable) {
  for (const CorpusEntry &E : standardCorpus()) {
    CheckRequest R;
    R.Corpus = E.Name; // empty ModelSpecs: the six default archs
    CheckResponse Resp = QueryEngine().evaluate(R);
    ASSERT_TRUE(static_cast<bool>(Resp)) << Resp.Error;
    ASSERT_EQ(Resp.Verdicts.size(), ModelRegistry::allArchs().size());
    for (size_t S = 0; S < Resp.Verdicts.size(); ++S) {
      std::unique_ptr<MemoryModel> M =
          ModelRegistry::make(ModelRegistry::allArchs()[S]);
      EXPECT_EQ(Resp.Verdicts[S].Allowed,
                postconditionReachable(E.Prog, *M))
          << E.Name << " under " << M->name();
    }
  }
}

TEST(QueryEngine_, DisabledAxiomNeverReported) {
  // power/-TxnOrder must never blame TxnOrder: ablated axioms are out of
  // the check, so they cannot appear among the failed axioms.
  for (const CorpusEntry &E : standardCorpus()) {
    CheckRequest R;
    R.Corpus = E.Name;
    R.ModelSpecs = {"power/-TxnOrder"};
    R.Explain = true;
    CheckResponse Resp = QueryEngine().evaluate(R);
    ASSERT_TRUE(static_cast<bool>(Resp)) << Resp.Error;
    for (const FailedAxiomInfo &F : Resp.Verdicts[0].FailedAxioms)
      EXPECT_NE(F.Axiom, "TxnOrder") << E.Name;
  }
}

TEST(QueryEngine_, BatchJsonByteIdenticalAcrossJobs) {
  std::vector<CheckRequest> Requests =
      corpusRequests(/*Explain=*/true, /*Outcomes=*/true);
  std::string Golden;
  for (unsigned Jobs : {1u, 4u, 16u}) {
    std::vector<CheckResponse> Responses =
        QueryEngine({Jobs}).runAll(Requests);
    std::string Json = responsesToJson(Responses);
    if (Golden.empty())
      Golden = Json;
    else
      EXPECT_EQ(Json, Golden) << "Jobs = " << Jobs;
  }
  EXPECT_FALSE(Golden.empty());
}

TEST(QueryEngine_, StreamsInRequestOrder) {
  std::vector<CheckRequest> Requests =
      corpusRequests(/*Explain=*/false, /*Outcomes=*/false);
  for (unsigned Jobs : {1u, 7u}) {
    std::vector<std::string> Names;
    BatchTelemetry T =
        QueryEngine({Jobs}).run(Requests, [&](const CheckResponse &R) {
          Names.push_back(R.Name);
        });
    ASSERT_EQ(Names.size(), Requests.size());
    for (size_t I = 0; I < Names.size(); ++I)
      EXPECT_EQ(Names[I], Requests[I].Corpus) << "Jobs = " << Jobs;
    EXPECT_EQ(T.Programs, Requests.size());
    // Every request was processed by exactly one worker.
    uint64_t Tasks = 0;
    for (const WorkerLoad &L : T.Workers)
      Tasks += L.Tasks;
    EXPECT_EQ(Tasks, Requests.size());
  }
}

TEST(QueryEngine_, CandidateCapTruncatesDeterministically) {
  CheckRequest Full;
  Full.Corpus = "IRIW";
  Full.ModelSpecs = {"sc", "power"};
  CheckResponse FullResp = QueryEngine().evaluate(Full);
  ASSERT_TRUE(static_cast<bool>(FullResp)) << FullResp.Error;
  ASSERT_GT(FullResp.Candidates, 3u);
  EXPECT_FALSE(FullResp.Truncated);

  CheckRequest Capped = Full;
  Capped.CandidateCap = 3;
  CheckResponse CapResp = QueryEngine().evaluate(Capped);
  ASSERT_TRUE(static_cast<bool>(CapResp)) << CapResp.Error;
  EXPECT_TRUE(CapResp.Truncated);
  EXPECT_EQ(CapResp.Candidates, 3u);
  for (const ModelVerdict &V : CapResp.Verdicts)
    EXPECT_LE(V.Consistent, 3u);
}

TEST(QueryEngine_, RequestErrors) {
  QueryEngine Engine;

  CheckRequest BadSpec;
  BadSpec.Corpus = "SB";
  BadSpec.ModelSpecs = {"z80"};
  CheckResponse R1 = Engine.evaluate(BadSpec);
  EXPECT_FALSE(static_cast<bool>(R1));
  EXPECT_NE(R1.Error.find("z80"), std::string::npos);
  EXPECT_TRUE(R1.Verdicts.empty());

  CheckRequest BadCorpus;
  BadCorpus.Corpus = "NoSuchTest";
  CheckResponse R2 = Engine.evaluate(BadCorpus);
  EXPECT_FALSE(static_cast<bool>(R2));
  EXPECT_NE(R2.Error.find("NoSuchTest"), std::string::npos);

  CheckRequest BadSource;
  BadSource.Source = "name x\nthread 0\n  flurble y\n";
  CheckResponse R3 = Engine.evaluate(BadSource);
  EXPECT_FALSE(static_cast<bool>(R3));
  EXPECT_EQ(R3.ErrorLine, 3u);
  EXPECT_NE(R3.Error.find("flurble"), std::string::npos);

  CheckRequest Empty;
  CheckResponse R4 = Engine.evaluate(Empty);
  EXPECT_FALSE(static_cast<bool>(R4));

  CheckRequest Both;
  Both.Source = "name x\n";
  Both.Corpus = "SB";
  CheckResponse R5 = Engine.evaluate(Both);
  EXPECT_FALSE(static_cast<bool>(R5));

  // A failing request inside a batch fails only itself.
  std::vector<CheckRequest> Mixed;
  CheckRequest Ok;
  Ok.Corpus = "SB";
  Mixed.push_back(BadCorpus);
  Mixed.push_back(Ok);
  std::vector<CheckResponse> Rs = Engine.runAll(Mixed);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_FALSE(static_cast<bool>(Rs[0]));
  EXPECT_TRUE(static_cast<bool>(Rs[1])) << Rs[1].Error;
}

TEST(ModelRegistry_, WrapperSpecsResolveAndRoundTrip) {
  // Named presets resolve, arch correctly, and print() round-trips the
  // arch and mask.
  for (const char *Spec : ModelRegistry::wrapperSpecs()) {
    std::string Error;
    std::unique_ptr<MemoryModel> M = ModelRegistry::parse(Spec, &Error);
    ASSERT_TRUE(M) << Spec << ": " << Error;
    std::string Printed = ModelRegistry::print(*M);
    std::unique_ptr<MemoryModel> Again = ModelRegistry::parse(Printed);
    ASSERT_TRUE(Again) << Printed;
    EXPECT_EQ(Again->arch(), M->arch());
    unsigned N = static_cast<unsigned>(M->axioms().size());
    EXPECT_EQ(Again->axiomMask().normalized(N),
              M->axiomMask().normalized(N))
        << Spec << " -> " << Printed;
  }

  // The presets keep their branded tokens.
  EXPECT_EQ(ModelRegistry::print(*ModelRegistry::parse("power8")), "power8");

  // Generic "<arch>-impl" wrapper: right arch, one extra axiom, ablatable
  // like any other model.
  std::unique_ptr<MemoryModel> X86Impl = ModelRegistry::parse("x86-impl");
  ASSERT_TRUE(X86Impl);
  EXPECT_EQ(X86Impl->arch(), Arch::X86);
  std::unique_ptr<MemoryModel> X86 = ModelRegistry::parse("x86");
  EXPECT_EQ(X86Impl->axioms().size(), X86->axioms().size() + 1);
  std::unique_ptr<MemoryModel> Ablated =
      ModelRegistry::parse("power8/-TxnOrder");
  ASSERT_TRUE(Ablated);
  EXPECT_FALSE(Ablated->axiomEnabled("TxnOrder"));
  EXPECT_EQ(ModelRegistry::print(*Ablated), "power8/-TxnOrder");

  // Un-doing the conservatism gives back the architecture's behaviour.
  std::unique_ptr<MemoryModel> Undone =
      ModelRegistry::parse("power8/-NoLoadBuffering(impl)");
  ASSERT_TRUE(Undone);
  EXPECT_FALSE(Undone->axiomEnabled("NoLoadBuffering(impl)"));
}

TEST(QueryEngine_, WrapperVerdictsMatchDirectImplModel) {
  // The "power8" spec through the engine equals the hand-built ImplModel
  // loop the benches used: LB-shaped tests flip from allowed to
  // forbidden, everything else is unchanged.
  std::unique_ptr<MemoryModel> Power = ModelRegistry::parse("power");
  std::unique_ptr<MemoryModel> P8 = ModelRegistry::parse("power8");
  unsigned LbFlips = 0;
  for (const CorpusEntry &E : standardCorpus()) {
    CheckRequest R;
    R.Corpus = E.Name;
    R.ModelSpecs = {"power", "power8"};
    CheckResponse Resp = QueryEngine().evaluate(R);
    ASSERT_TRUE(static_cast<bool>(Resp)) << Resp.Error;
    EXPECT_EQ(Resp.Verdicts[0].Allowed,
              postconditionReachable(E.Prog, *Power))
        << E.Name;
    EXPECT_EQ(Resp.Verdicts[1].Allowed, postconditionReachable(E.Prog, *P8))
        << E.Name;
    LbFlips += Resp.Verdicts[0].Allowed && !Resp.Verdicts[1].Allowed;
  }
  // The conservatism must bite somewhere (LB is allowed by Power+TM and
  // invisible on the silicon).
  EXPECT_GT(LbFlips, 0u);
}

} // namespace
