//===- Axiom.h - Declarative consistency axioms -----------------*- C++ -*-==//
///
/// \file
/// First-class axioms, in the style of Alglave et al.'s `cat` language
/// (*Herding Cats*, TOPLAS 2014): every memory model in this library is a
/// list of named `acyclic` / `irreflexive` / `empty` constraints over
/// relational terms derived from one execution. A concrete model exposes
/// its list via `MemoryModel::axioms()`; one generic engine evaluates the
/// enabled axioms, so ablation, diagnostics, and model selection are
/// uniform across all six models instead of six hand-written `check()`
/// bodies.
///
/// Two kinds of entries appear in an axiom table:
///
///  * *checked* axioms — the engine evaluates `Kind` over `Term` and the
///    model is consistent when every enabled one holds;
///  * *modifier* axioms (`Modifier = true`) — named toggles whose term is
///    injected into *other* axioms' compound relations (e.g. the implicit
///    transaction fences `tfence` strengthen an architecture's
///    happens-before). The engine never fails a modifier on its own; the
///    toggle's effect is that compound terms consult the `AxiomMask`.
///
/// Axiom names are string literals with static storage duration: every
/// `std::string_view` handed out by the check engine (including
/// `ConsistencyResult::FailedAxiom`) points into these tables and stays
/// valid for the lifetime of the program. Names are also NUL-terminated,
/// so `Name.data()` is safe to pass to C-style formatting.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_AXIOM_H
#define TMW_MODELS_AXIOM_H

#include "execution/Event.h"
#include "relation/Relation.h"

#include <cassert>
#include <span>
#include <string_view>

namespace tmw {

class ExecutionAnalysis;

/// Vocabulary classes: the program features an axiom term can observe.
///
/// A program (and by extension every candidate execution enumerated from
/// it) *speaks* a subset of these classes; an axiom declares in
/// `Axiom::Footprint` which classes its term can read. The contract is
/// emptiness: for every execution whose vocabulary is disjoint from the
/// declared footprint, the term's relation is empty — so the obligation's
/// verdict is the vacuous one (an empty relation is acyclic, irreflexive,
/// and empty) and a specialized evaluation plan may discharge it once per
/// program instead of evaluating it per candidate (EvalPlan::specialize).
///
/// `Base` is set in every execution's vocabulary, which makes the default
/// footprint `~0u` never-disjoint and therefore always safe.
namespace vocab {
/// Always present: plain program order / reads / writes. Any footprint
/// containing Base is never disjoint from a program's vocabulary.
inline constexpr uint32_t Base = 1u << 0;
/// Successful transactions (stxn non-trivial: some TxBegin executed).
inline constexpr uint32_t Txn = 1u << 1;
/// RMW pairs (paired exclusive load/store).
inline constexpr uint32_t Rmw = 1u << 2;
/// Lock / critical-region method calls (Lock, Unlock, TxLock, TxUnlock).
inline constexpr uint32_t Lock = 1u << 3;
/// C++ atomic accesses (MemOrder != NonAtomic).
inline constexpr uint32_t Atomic = 1u << 4;

/// One bit per architecture fence flavour (FenceKind::MFence..CppFence).
constexpr uint32_t fence(FenceKind K) {
  assert(K != FenceKind::None && "FenceKind::None has no vocabulary bit");
  return 1u << (4 + static_cast<unsigned>(K));
}
} // namespace vocab

/// The constraint form of a checked axiom (the three judgement forms of
/// the cat framework).
enum class AxiomKind : uint8_t {
  Acyclic,     ///< `acyclic term`: no cycle (of length >= 1).
  Irreflexive, ///< `irreflexive term`: no (e, e) pair.
  Empty,       ///< `empty term`: no pair at all.
};

/// Human-readable kind name ("acyclic", "irreflexive", "empty").
const char *axiomKindName(AxiomKind K);

/// Which axioms of one model's `axioms()` list are enabled. Bit `I`
/// corresponds to index `I` in the list; the default mask enables
/// everything, so a mask is meaningful without knowing the list length.
class AxiomMask {
public:
  constexpr AxiomMask() = default;

  /// All axioms enabled (the default model).
  static constexpr AxiomMask all() { return AxiomMask(); }
  /// No axiom enabled.
  static constexpr AxiomMask none() { return AxiomMask(0); }

  // Shifting a 32-bit word by >= 32 is undefined behaviour, so an
  // out-of-range axiom index would not merely misbehave — it could
  // silently corrupt the whole mask. Axiom tables are capped at 32
  // entries by construction; assert the cap here instead of relying on
  // every caller.
  constexpr bool test(unsigned I) const {
    assert(I < 32 && "axiom index out of the 32-bit mask");
    return (Bits >> I) & 1;
  }
  constexpr AxiomMask &set(unsigned I, bool On = true) {
    assert(I < 32 && "axiom index out of the 32-bit mask");
    if (On)
      Bits |= uint32_t(1) << I;
    else
      Bits &= ~(uint32_t(1) << I);
    return *this;
  }

  /// Raw bits — used as the memoization salt for mask-dependent terms.
  constexpr uint32_t bits() const { return Bits; }

  /// The mask with bits at and above \p NumAxioms cleared, so that masks
  /// over the same axiom list compare equal iff they enable the same
  /// axioms (the default mask has all 32 bits set).
  constexpr AxiomMask normalized(unsigned NumAxioms) const {
    uint32_t Keep = NumAxioms >= 32 ? ~uint32_t(0)
                                    : ((uint32_t(1) << NumAxioms) - 1);
    return AxiomMask(Bits & Keep);
  }

  constexpr bool operator==(const AxiomMask &O) const = default;

private:
  constexpr explicit AxiomMask(uint32_t Bits) : Bits(Bits) {}
  uint32_t Bits = ~uint32_t(0);
};

/// One named axiom of a model: a constraint kind over a relational term.
///
/// Terms receive the model's enabled-axiom mask so that compound relations
/// can consult the modifier toggles (indices are the term's own model's
/// table positions). Term functions are stateless function pointers —
/// axiom tables are static, shared by every instance of a model, and the
/// names they intern outlive every `ConsistencyResult`.
struct Axiom {
  /// Interned name (a NUL-terminated literal in the model's static table).
  std::string_view Name;
  AxiomKind Kind;
  /// The relational term the constraint is phrased over.
  Relation (*Term)(const ExecutionAnalysis &A, AxiomMask Enabled);
  /// Part of the TM extension: disabled by the baseline mask (the
  /// non-transactional model used when synthesising Forbid suites).
  bool Tm = false;
  /// Contributes its term to other axioms' compound relations instead of
  /// being checked on its own (see file comment).
  bool Modifier = false;
  /// The mask bits `Term` reads (directly or through sub-terms): two
  /// invocations whose masks agree on these bits return the same relation.
  /// This is the *term identity* contract the cross-spec evaluation plan
  /// (models/EvalPlan.h) hash-conses on — `(Term, Mask.bits() & Salt)`
  /// keys one obligation shared by every spec that needs it — and it must
  /// be a superset of every memoization salt the term passes to
  /// `ExecutionAnalysis::memoTerm`. The default claims dependence on the
  /// whole mask, which is always safe and merely forfeits sharing; tables
  /// annotate the real footprint explicitly.
  ///
  /// Salts are *machine-checked*: the contract auditor
  /// (audit/ContractAudit.h, CLI `tmw_audit`, tests/audit_test.cpp)
  /// differentially verifies every table entry against probe executions —
  /// flipping each bit outside the salt must not change the term, the
  /// memoTerm salts must keep a shared memoized arena coherent, and
  /// transaction-dependence must survive `invalidateTransactionalState()`
  /// honestly. Run `tmw_audit` after touching any term or salt; CI fails
  /// on soundness findings.
  uint32_t Salt = ~uint32_t(0);
  /// The vocabulary classes (namespace `vocab`) this term can read: on any
  /// execution whose vocabulary is disjoint from `Footprint`, the term's
  /// relation must be *empty*. The specialized evaluation plan
  /// (EvalPlan::specialize) uses this to discharge obligations to their
  /// vacuous verdict once per program, so an under-declared footprint is a
  /// soundness bug — it would silently change verdicts.
  ///
  /// The rule: the default `Footprint = ~0u` is always safe (it contains
  /// `vocab::Base`, which every execution speaks, so such an obligation is
  /// never discharged); narrow only what the auditor proves. Like `Salt`,
  /// footprints are machine-checked — `tmw_audit`'s fourth differential
  /// pass evaluates every term on vocabulary-enumerated probes and flags
  /// any non-empty relation on a footprint-disjoint execution as a
  /// CI-fatal soundness finding. Beware lifted terms: `stronglift(r, t)`
  /// degenerates to `r` (not the empty relation) when `t` is empty, so
  /// strong-isolation-style terms must keep the full footprint.
  uint32_t Footprint = ~uint32_t(0);
};

/// A model's axiom list: a view of its static table.
using AxiomList = std::span<const Axiom>;

/// Index of the axiom named \p Name in \p Axioms, or -1. Exact match.
int findAxiom(AxiomList Axioms, std::string_view Name);

/// Evaluate one constraint kind over a term relation — the judgement the
/// generic check engine and the cross-spec evaluation plan share.
bool axiomHolds(AxiomKind K, const Relation &Term);

/// The baseline mask over \p Axioms: every TM axiom disabled.
AxiomMask baselineMask(AxiomList Axioms);

} // namespace tmw

#endif // TMW_MODELS_AXIOM_H
