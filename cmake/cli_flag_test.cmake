# cli_flag_test.cmake - numeric-flag validation across every CLI entry point.
#
# Run as a ctest script:  cmake -DBIN_DIR=<build dir> -P cli_flag_test.cmake
#
# Every tool funnels its count-valued flags through bench::parseCountStrict
# (tests/BenchUtil.h): the whole operand must be a positive decimal number,
# anything else — letters, trailing junk, zero where a minimum of one is
# required, a missing operand — is a usage error and must exit 2 before any
# work starts. One stray accepted flag here means a typo like `--jobs 4x`
# silently ran single-threaded, so each case is pinned individually.

if(NOT DEFINED BIN_DIR)
  message(FATAL_ERROR "pass -DBIN_DIR=<directory containing the built tools>")
endif()

set(FAILURES 0)

# expect_exit(<code> <tool> [args...]) - run a tool, require an exact status.
function(expect_exit EXPECTED TOOL)
  execute_process(
    COMMAND ${BIN_DIR}/${TOOL} ${ARGN}
    RESULT_VARIABLE STATUS
    OUTPUT_QUIET
    ERROR_VARIABLE STDERR)
  if(NOT STATUS EQUAL ${EXPECTED})
    message(SEND_ERROR
        "${TOOL} ${ARGN}: expected exit ${EXPECTED}, got '${STATUS}'\n${STDERR}")
    math(EXPR FAILURES "${FAILURES}+1")
    set(FAILURES ${FAILURES} PARENT_SCOPE)
  endif()
endfunction()

# --- bad values: every strict numeric flag, one probe each -----------------
expect_exit(2 litmus_tool --corpus --cap bogus)
expect_exit(2 litmus_tool --corpus --cap 12x)
expect_exit(2 litmus_tool --corpus --specialize bogus)
expect_exit(2 tmw_serve --max-clients bogus)
expect_exit(2 tmw_serve --max-clients 0)
expect_exit(2 tmw_serve --accept-limit bogus)
expect_exit(2 tmw_serve --jobs bogus)
expect_exit(2 tmw_serve --jobs)
expect_exit(2 tmw_audit --bases bogus)
expect_exit(2 tmw_audit --events bogus)
expect_exit(2 tmw_audit --placements bogus)
expect_exit(2 tmw_audit --corpus-cap bogus)
expect_exit(2 tmw_audit --max-findings bogus)
expect_exit(2 litmus_tool --corpus --jobs 0)
expect_exit(2 tmw_lint --bogus-flag)
expect_exit(2 tmw_lint)            # no inputs and no --corpus is a usage error

# --- good values: the same flags must still accept well-formed operands ----
expect_exit(0 tmw_lint --corpus)
expect_exit(0 litmus_tool --corpus --cap 4 --specialize on --jobs 2)

if(FAILURES GREATER 0)
  message(FATAL_ERROR "${FAILURES} CLI flag-validation case(s) failed")
endif()
message(STATUS "all CLI flag-validation cases passed")
