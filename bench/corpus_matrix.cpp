//===- corpus_matrix.cpp - The corpus verdict matrix ----------------------------==//
///
/// Prints the full verdict matrix of the litmus corpus: for every test,
/// whether the weak outcome is reachable under SC, TSC, x86+TM, Power+TM,
/// and ARMv8+TM, plus the simulated-hardware verdicts. This is the
/// regression view of all the executions discussed throughout the paper
/// (§1, §3, §5.2, §5.3) in one table.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "enumerate/Candidates.h"
#include "hw/ImplModel.h"
#include "hw/TsoMachine.h"
#include "litmus/Library.h"
#include "models/Armv8Model.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

using namespace tmw;

int main() {
  bench::header("Litmus-corpus verdict matrix",
                "the executions of §1, §3, §5.2, §5.3 in one table");

  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  ImplModel P8 = ImplModel::power8();

  std::printf("%-26s %4s %4s %6s %6s %6s | %7s %7s\n", "test", "SC",
              "TSC", "x86", "Power", "ARMv8", "TSX-hw", "P8-hw");
  for (const CorpusEntry &E : standardCorpus()) {
    auto V = [&](const MemoryModel &M) {
      return postconditionReachable(E.Prog, M) ? "yes" : "no";
    };
    TsoMachine M(E.Prog);
    bool TsxSeen = M.postconditionObservable();
    bool P8Seen = false;
    for (const Candidate &C : enumerateCandidates(E.Prog))
      if (C.O.satisfies(E.Prog) && P8.consistent(C.X))
        P8Seen = true;
    std::printf("%-26s %4s %4s %6s %6s %6s | %7s %7s\n", E.Name.c_str(),
                V(Sc), V(Tsc), V(X86), V(Power), V(Armv8),
                TsxSeen ? "seen" : "-", P8Seen ? "seen" : "-");
  }
  std::printf("\n'yes' = the weak outcome is allowed by the model; hardware "
              "columns report\nwhether the simulated machines exhibit "
              "it. Note Example1.1: allowed under\nARMv8+TM (the paper's "
              "headline), forbidden on x86.\n");
  return 0;
}
