//===- rc11_detail_test.cpp - RC11 synchronisation machinery ------------------==//
///
/// Directed tests of the C++ model's finer mechanisms: release sequences,
/// fence-based synchronises-with, and the psc axiom on fence-only SC
/// programs — the parts of Fig. 9 inherited from Lahav et al. that the
/// paper's tsw extension has to coexist with.
///
//===----------------------------------------------------------------------===//

#include "execution/Builder.h"
#include "models/CppModel.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(Rc11Test, ReleaseFenceSynchronises) {
  // W x (na); fence(rel); W y (rlx)  ||  R y (acq) = 1; R x (na) stale:
  // the release fence makes the relaxed store a release point.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  B.fence(0, FenceKind::CppFence, MemOrder::Release);
  EventId Wy = B.write(0, 1, MemOrder::Relaxed, 1);
  EventId Ry = B.read(1, 1, MemOrder::Acquire);
  B.read(1, 0);
  B.rf(Wy, Ry);
  CppModel M;
  EXPECT_FALSE(M.consistent(B.build()));
}

TEST(Rc11Test, AcquireFenceSynchronises) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::Release, 1);
  EventId Ry = B.read(1, 1, MemOrder::Relaxed);
  B.fence(1, FenceKind::CppFence, MemOrder::Acquire);
  B.read(1, 0);
  B.rf(Wy, Ry);
  CppModel M;
  EXPECT_FALSE(M.consistent(B.build()));
}

TEST(Rc11Test, RelaxedReadAloneDoesNotSynchronise) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::Release, 1);
  EventId Ry = B.read(1, 1, MemOrder::Relaxed); // no acquire anywhere
  B.read(1, 0);
  B.rf(Wy, Ry);
  CppModel M;
  Execution X = B.build();
  EXPECT_TRUE(M.consistent(X));
  EXPECT_FALSE(M.raceFree(X)); // and x races
}

TEST(Rc11Test, ReleaseSequenceThroughRmwChain) {
  // rel W y=1; [rmw y 1->2 rlx elsewhere]; acq R y=2 still synchronises
  // with the release write (rf;rmw chain in rs).
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::Release, 1);
  EventId Ry = B.read(1, 1, MemOrder::Relaxed);
  EventId Wy2 = B.write(1, 1, MemOrder::Relaxed, 2);
  B.rmw(Ry, Wy2);
  B.rf(Wy, Ry);
  EventId Ry2 = B.read(2, 1, MemOrder::Acquire);
  B.rf(Wy2, Ry2);
  B.read(2, 0); // must not be stale
  CppModel M;
  EXPECT_FALSE(M.consistent(B.build()));
}

TEST(Rc11Test, PlainInterveningStoreBreaksSynchronisation) {
  // An unrelated relaxed store from a third thread between the release
  // and the read: the reader observes *that* store, so no sw with the
  // release write — the stale read is allowed (and racy).
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  B.write(0, 1, MemOrder::Release, 1);
  EventId WOther = B.write(2, 1, MemOrder::Relaxed, 2);
  EventId Ry = B.read(1, 1, MemOrder::Acquire);
  B.read(1, 0);
  B.rf(WOther, Ry);
  CppModel M;
  Execution X = B.build();
  EXPECT_TRUE(M.consistent(X));
}

TEST(Rc11Test, ScFencesForbidRelaxedSb) {
  // SB on relaxed atomics with SC fences between the accesses: psc_F
  // restores order.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::Relaxed, 1);
  B.fence(0, FenceKind::CppFence, MemOrder::SeqCst);
  B.read(0, 1, MemOrder::Relaxed);
  B.write(1, 1, MemOrder::Relaxed, 1);
  B.fence(1, FenceKind::CppFence, MemOrder::SeqCst);
  B.read(1, 0, MemOrder::Relaxed);
  CppModel M;
  ConsistencyResult R = M.check(B.build());
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "SeqCst");
}

TEST(Rc11Test, MixedScAndRelaxedSbAllowed) {
  // Only one thread fenced: the SB outcome survives.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::Relaxed, 1);
  B.fence(0, FenceKind::CppFence, MemOrder::SeqCst);
  B.read(0, 1, MemOrder::Relaxed);
  B.write(1, 1, MemOrder::Relaxed, 1);
  B.read(1, 0, MemOrder::Relaxed);
  CppModel M;
  EXPECT_TRUE(M.consistent(B.build()));
}

TEST(Rc11Test, TswCoexistsWithSw) {
  // A release/acquire handoff INTO a transaction and a tsw handoff out
  // of it compose into hb: end-to-end stale read forbidden.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1); // data
  EventId Wy = B.write(0, 1, MemOrder::Release, 1);   // flag
  EventId Ry = B.read(1, 1, MemOrder::Acquire);       // txn reads flag
  EventId Wz = B.write(1, 2, MemOrder::NonAtomic, 1); // txn writes z
  EventId Rz = B.read(2, 2);                          // second txn
  EventId Rx = B.read(2, 0);                          // stale read of x
  B.rf(Wy, Ry);
  B.rf(Wz, Rz);
  B.txn({Ry, Wz});
  B.txn({Rz, Rx});
  (void)Wx;
  CppModel M;
  EXPECT_FALSE(M.consistent(B.build()));
}

TEST(Rc11Test, HbComCatchesStaleReadInSameThread) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::Relaxed, 1);
  EventId R = B.read(0, 0, MemOrder::Relaxed);
  B.write(1, 0, MemOrder::Relaxed, 2);
  B.rf(W, R);
  CppModel M;
  EXPECT_TRUE(M.consistent(B.build())); // reading own po-earlier write: fine
}

} // namespace
