//===- Minimize.cpp - Shrinking counterexamples ---------------------------------==//

#include "metatheory/Minimize.h"

using namespace tmw;

Execution tmw::minimizeInconsistent(
    const Execution &X, const MemoryModel &M, const Vocabulary &V,
    const std::function<bool(const Execution &)> &Invariant) {
  assert(!M.consistent(X) && "nothing to minimise");
  Execution Cur = X;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (const Execution &Child : relaxOneStep(Cur, V)) {
      if (M.consistent(Child))
        continue;
      if (Invariant && !Invariant(Child))
        continue;
      Cur = Child;
      Progress = true;
      break;
    }
  }
  return Cur;
}
