//===- quickstart.cpp - First steps with the tmw library ------------------------==//
///
/// Build an execution graph, check it against several memory models, and
/// derive the litmus test that witnesses it — the core loop of the whole
/// toolflow in ~60 lines. Models are resolved from registry spec strings
/// (`ModelRegistry::parse`, e.g. "power" or "power/-tfence"), failures are
/// explained per axiom via `checkAll`, and a final section synthesises a
/// small conformance suite to show the sharded parallel search.
///
/// Run: ./quickstart [--jobs N]
///
///   --jobs N   run the conformance-suite search on N worker threads
///              (default 1; also settable via TMW_BENCH_JOBS, shared with
///              the bench binaries). Workers pull (skeleton,
///              event-labelling) prefix tasks from a work-stealing pool,
///              splitting big subtrees and stealing when idle; the
///              merged suite is deduplicated by canonical hash and
///              hash-sorted, so a run that completes within its budget
///              is byte-for-byte identical for every N.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "execution/Builder.h"
#include "litmus/FromExecution.h"
#include "litmus/Printer.h"
#include "models/ModelRegistry.h"
#include "synth/Conformance.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace tmw;

int main(int argc, char **argv) {
  unsigned Jobs = bench::jobs(argc, argv);
  // Message passing: thread 0 publishes data (x) then sets a flag (y);
  // thread 1 sees the flag but reads stale data. The rf edge pins the
  // flag read; the data read observes the initial value.
  ExecutionBuilder B;
  B.write(0, /*x=*/0, MemOrder::NonAtomic, 1);
  EventId Flag = B.write(0, /*y=*/1, MemOrder::NonAtomic, 1);
  EventId SeeFlag = B.read(1, 1);
  B.read(1, 0); // stale read of x
  B.rf(Flag, SeeFlag);
  Execution Mp = B.build();

  std::printf("Execution:\n%s\n", Mp.dump().c_str());

  // Any model x ablation scenario is addressable as a spec string.
  std::vector<std::unique_ptr<MemoryModel>> Models;
  for (const char *Spec : {"sc", "x86", "power", "armv8"})
    Models.push_back(ModelRegistry::parse(Spec));

  std::printf("Is the stale read allowed?\n");
  for (const auto &M : Models) {
    ConsistencyResult R = M->check(Mp);
    std::printf("  %-8s %s%s%.*s\n", M->name(),
                R.Consistent ? "allowed" : "forbidden",
                R.FailedAxiom.empty() ? "" : " by ",
                static_cast<int>(R.FailedAxiom.size()),
                R.FailedAxiom.data());
  }

  // Wrap the writer in a transaction: the implicit fences at its
  // boundaries and the transaction-ordering axioms forbid the stale read
  // even on Power and ARMv8.
  Execution MpTxn = Mp;
  MpTxn.Txn[0] = 0;
  MpTxn.Txn[1] = 0;
  std::printf("\nSame shape with the writer inside a transaction:\n");
  for (const auto &M : Models) {
    if (M->arch() == Arch::SC)
      continue;
    // A dependency on the reader side is still needed on Power/ARMv8 —
    // add one.
    Execution X = MpTxn;
    X.Addr.insert(SeeFlag, 3);
    // checkAll reports every axiom's verdict plus, for each violation,
    // the events witnessing it (a cycle in the axiom's term).
    ExecutionAnalysis A(X);
    CheckReport Report = M->checkAll(A);
    std::printf("  %-8s %s\n", M->name(),
                Report.Consistent ? "allowed" : "forbidden");
    for (const AxiomVerdict &V : Report.Verdicts) {
      if (V.Holds)
        continue;
      std::printf("           violates %s (%s); witness events:",
                  V.Ax->Name.data(), axiomKindName(V.Ax->Kind));
      for (EventId E : V.Witness)
        std::printf(" %u", E);
      std::printf("\n");
    }
  }

  // Derive the litmus test that checks for this execution on real
  // hardware (§2.2/§3.2), specialised for each architecture.
  Program P = programFromExecution(MpTxn, "MP+txn").Prog;
  std::printf("\nGenerated litmus test (generic):\n%s",
              printGeneric(P).c_str());
  std::printf("\nAs Power assembly:\n%s", printAsm(P, Arch::Power).c_str());

  // Finally: synthesise the 4-event x86 Forbid suite — the tests that
  // distinguish the TM extension (§4.2). The baseline is just another
  // spec string; `--jobs N` runs the work-stealing prefix pool on N
  // threads and the merged, hash-sorted suite is identical for any N.
  std::unique_ptr<MemoryModel> X86 = ModelRegistry::parse("x86");
  std::unique_ptr<MemoryModel> Baseline =
      ModelRegistry::parse("x86/+baseline");
  ForbidSuite S = synthesizeForbid(*X86, *Baseline,
                                   Vocabulary::forArch(Arch::X86),
                                   /*NumEvents=*/4, /*BudgetSeconds=*/60.0,
                                   Jobs);
  std::printf("\nx86 Forbid suite at |E| = 4 (%u job%s): %zu tests in "
              "%.2fs (%llu placements checked)\n",
              Jobs, Jobs == 1 ? "" : "s", S.Tests.size(),
              S.SynthesisSeconds,
              static_cast<unsigned long long>(S.PlacementsVisited));
  for (unsigned W = 0; W < S.Workers.size(); ++W) {
    const WorkerLoad &L = S.Workers[W];
    std::printf("  worker %u: %.3fs busy, %llu tasks (%llu split, "
                "%llu stolen), %llu bases\n",
                W, L.BusySeconds, static_cast<unsigned long long>(L.Tasks),
                static_cast<unsigned long long>(L.Splits),
                static_cast<unsigned long long>(L.Steals),
                static_cast<unsigned long long>(L.BasesVisited));
  }
  return 0;
}
