//===- litmus_runner_test.cpp - Simulated testing campaigns -------------------==//

#include "hw/LitmusRunner.h"

#include "hw/ImplModel.h"
#include "litmus/Parser.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

Program parse(const char *Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << R.Error;
  return R.Prog;
}

const char *SbSrc = R"(name SB
thread 0
  store x 1
  load y
thread 1
  store y 1
  load x
post reg 0 r1 0
post reg 1 r1 0
)";

const char *LbSrc = R"(name LB
thread 0
  load x
  store y 1
thread 1
  load y
  store x 1
post reg 0 r0 1
post reg 1 r0 1
)";

TEST(RunnerTest, TsoCampaignSeesSb) {
  RunReport R = runOnTso(parse(SbSrc), 10000);
  EXPECT_TRUE(R.Seen);
  EXPECT_EQ(R.Runs, 10000u);
  uint64_t Total = 0;
  for (const auto &[O, N] : R.Histogram)
    Total += N;
  EXPECT_GE(Total, 10000u); // rare outcomes get a minimum count of one
}

TEST(RunnerTest, HistogramCoversAllReachableOutcomes) {
  RunReport R = runOnTso(parse(SbSrc), 10000);
  EXPECT_EQ(R.Histogram.size(), 4u);
  for (const auto &[O, N] : R.Histogram)
    EXPECT_GT(N, 0u);
}

TEST(RunnerTest, Power8SubstituteNeverShowsLoadBuffering) {
  // LB has never been observed on Power silicon; the implementation
  // model bakes that in (§5.3).
  ImplModel P8 = ImplModel::power8();
  RunReport R = runOnImpl(parse(LbSrc), P8, 10000);
  EXPECT_FALSE(R.Seen);
}

TEST(RunnerTest, Power8SubstituteShowsSb) {
  ImplModel P8 = ImplModel::power8();
  RunReport R = runOnImpl(parse(SbSrc), P8, 10000);
  EXPECT_TRUE(R.Seen);
}

TEST(RunnerTest, DeterministicUnderSeed) {
  Program P = parse(SbSrc);
  RunReport A = runOnTso(P, 1000, 7);
  RunReport B = runOnTso(P, 1000, 7);
  ASSERT_EQ(A.Histogram.size(), B.Histogram.size());
  for (unsigned I = 0; I < A.Histogram.size(); ++I)
    EXPECT_EQ(A.Histogram[I].second, B.Histogram[I].second);
}

TEST(RunnerTest, SeenIsExactNotStatistical) {
  // Even a 1-run campaign reports Seen correctly, because reachability is
  // computed exhaustively.
  RunReport R = runOnTso(parse(SbSrc), 1);
  EXPECT_TRUE(R.Seen);
}

} // namespace
