//===- cpp_theorems_test.cpp - Bounded checks of Theorems 7.2 and 7.3 ---------==//
///
/// The paper proves these in Isabelle; here they are model-checked over
/// the exhaustively enumerated C++ executions up to a bound (the same
/// methodology the paper uses for its other metatheory) plus directed
/// instances.
///
//===----------------------------------------------------------------------===//

#include "enumerate/Enumerator.h"

#include "execution/Builder.h"
#include "models/CppModel.h"
#include "models/ScModel.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

/// Sweep all C++ executions (with all transaction placements) up to
/// \p NumEvents, calling \p Check on each well-formed one.
template <typename Fn> void sweepCpp(unsigned NumEvents, Fn &&Check) {
  Vocabulary V = Vocabulary::forArch(Arch::Cpp);
  ExecutionEnumerator Enum(V, NumEvents);
  Enum.forEachBase([&](Execution &Base) {
    Check(Base);
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      Check(X);
      return true;
    });
  });
}

class TheoremSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TheoremSweep, Theorem72StrongIsolationForAtomicTransactions) {
  // If NoRace holds and atomic transactions contain no atomic operations,
  // then acyclic(stronglift(com, stxnat)).
  CppModel M;
  uint64_t Considered = 0;
  sweepCpp(GetParam(), [&](const Execution &X) {
    if (!M.consistent(X) || !M.raceFree(X))
      return;
    if (!(X.atomicTransactional() & X.atomics()).empty())
      return; // atomic transactions must contain no atomics
    ++Considered;
    EXPECT_TRUE(holdsStrongIsolationAtomic(X)) << X.dump();
  });
  EXPECT_GT(Considered, 0u);
}

TEST_P(TheoremSweep, Theorem73TransactionalScDrf) {
  // Race-free + only atomic transactions + only SC atomics => TSC.
  CppModel M;
  TscModel Tsc;
  uint64_t Considered = 0;
  sweepCpp(GetParam(), [&](const Execution &X) {
    if (!M.consistent(X) || !M.raceFree(X))
      return;
    // No relaxed transactions: stxn = stxnat.
    if (!(X.stxn() == X.stxnAtomic()))
      return;
    // No non-SC atomics: Ato = SC.
    if (!(X.atomics() - X.seqCst()).empty())
      return;
    ++Considered;
    EXPECT_TRUE(Tsc.consistent(X)) << X.dump();
  });
  EXPECT_GT(Considered, 0u);
}

TEST_P(TheoremSweep, WeakIsolationFollowsFromConsistency) {
  // §7.2: the WeakIsol axiom follows from the other C++ axioms.
  CppModel M;
  sweepCpp(GetParam(), [&](const Execution &X) {
    if (M.consistent(X)) {
      EXPECT_TRUE(holdsWeakIsolation(X)) << X.dump();
    }
  });
}

TEST_P(TheoremSweep, CnfEqualsEcomUnionInverse) {
  // §7.2 [lemma]: cnf = ecom u ecom^-1 on well-formed executions.
  CppModel M;
  sweepCpp(GetParam(), [&](const Execution &X) {
    Relation Ecom = X.ecom();
    Relation Sym = Ecom | Ecom.inverse();
    Relation Cnf = M.conflicts(X);
    // Every conflicting pair is ecom-related one way or the other.
    EXPECT_TRUE(Cnf.subsetOf(Sym)) << X.dump();
  });
}

TEST_P(TheoremSweep, SeqCstImpliesScForTransactionFree) {
  // Sanity: executions whose events are all SC atomics and consistent in
  // C++ are SC-consistent (the classic SC-DRF guarantee), checked on
  // transaction-free executions.
  CppModel M;
  ScModel Sc;
  sweepCpp(GetParam(), [&](const Execution &X) {
    if (!X.transactional().empty())
      return;
    if (!(X.universe() - X.seqCst()).empty())
      return;
    if (M.consistent(X)) {
      EXPECT_TRUE(Sc.consistent(X)) << X.dump();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Bounds, TheoremSweep, ::testing::Values(2u, 3u));

TEST(TheoremDirected, RacyProgramEscapesTheorem72) {
  // Without NoRace the conclusion fails: Fig. 3(d) with a non-atomic
  // external read and an atomic transaction.
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(1, 0);
  B.co(W1, W2);
  B.rf(W1, R);
  B.txn({W1, W2}, /*Atomic=*/true);
  Execution X = B.build();
  CppModel M;
  ASSERT_TRUE(M.consistent(X));
  EXPECT_FALSE(M.raceFree(X)); // racy...
  EXPECT_FALSE(holdsStrongIsolationAtomic(X)); // ...and not isolated
}

TEST(TheoremDirected, RelaxedTransactionEscapesTheorem73) {
  // A consistent race-free execution with relaxed transactions need not
  // be TSC: two relaxed-atomic readers inside synchronized{} blocks can
  // observe SB.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::Relaxed, 1);
  EventId Ry = B.read(0, 1, MemOrder::Relaxed);
  EventId Wy = B.write(1, 1, MemOrder::Relaxed, 1);
  EventId Rx = B.read(1, 0, MemOrder::Relaxed);
  (void)Ry;
  (void)Rx;
  B.txn({Wx});
  B.txn({Wy});
  Execution X = B.build();
  CppModel M;
  // Consistent in C++ (the transactions do not conflict)...
  ASSERT_TRUE(M.consistent(X));
  ASSERT_TRUE(M.raceFree(X));
  // ...but not TSC (and indeed not SC).
  TscModel Tsc;
  EXPECT_FALSE(Tsc.consistent(X));
}

TEST(TheoremDirected, AtomicTransactionsRestoreTsc) {
  // The same shape with non-atomic accesses in atomic{} transactions is
  // forbidden by C++ already (tsw orders the conflicting transactions),
  // illustrating Theorem 7.3 from the other side.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(0, 1, MemOrder::NonAtomic);
  EventId Wy = B.write(1, 1, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0, MemOrder::NonAtomic);
  B.txn({Wx, Ry}, /*Atomic=*/true);
  B.txn({Wy, Rx}, /*Atomic=*/true);
  Execution X = B.build();
  CppModel M;
  EXPECT_FALSE(M.consistent(X));
}

} // namespace
