//===- table1_x86.cpp - Table 1, x86 rows --------------------------------------==//
///
/// Regenerates the x86 half of Table 1: per event count, the synthesis
/// time, the Forbid suite (count / seen / not seen) and the Allow suite
/// (count / seen / not seen). "Hardware" is the operational x86-TSO+TSX
/// machine (exhaustive interleavings), standing in for the paper's four
/// TSX parts; every test is also run as a 1M-run sampled campaign.
///
/// The footnote-2 refinement (a Forbid observation only counts when no
/// model-consistent candidate explains it) goes through the batch query
/// engine: one request per synthesised test, spec "x86" with outcome
/// collection, batched over the pool — so the model's allowed-outcome
/// sets come from one shared enumeration per test instead of the old
/// per-test `observedForbiddenBehaviour` re-enumeration.
///
/// The paper's bound is |E| <= 7 with a SAT back-end and multi-hour
/// budgets; the explicit search here is exhaustive at the configured
/// bound (default 4, env TMW_BENCH_MAX_EVENTS to push further) and
/// reports Complete=no when the budget interrupts, mirroring the paper's
/// timeout rows.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "hw/TsoMachine.h"
#include "litmus/FromExecution.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"
#include "models/X86Model.h"
#include "query/QueryEngine.h"
#include "synth/Conformance.h"
#include "synth/SuiteIO.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

using namespace tmw;

namespace {

/// Build the query batch for a suite: each test rendered to DSL source
/// (the request wire form), checked against \p Spec with outcome
/// collection. \p Progs receives the *re-parsed* program of each test, so
/// local outcome comparisons use exactly the location numbering the
/// engine saw.
std::vector<CheckRequest> suiteRequests(const std::vector<Execution> &Tests,
                                        const char *Spec,
                                        std::vector<Program> &Progs) {
  std::vector<CheckRequest> Requests;
  for (const Execution &X : Tests) {
    CheckRequest R;
    R.Source = printDsl(programFromExecution(X, "t").Prog);
    R.ModelSpecs = {Spec};
    R.WantOutcomes = true;
    ParseResult PR = parseProgram(R.Source);
    if (!PR) {
      std::fprintf(stderr, "printDsl round trip broke: %s\n",
                   PR.diagnostic().c_str());
      std::exit(1);
    }
    Progs.push_back(std::move(PR.Prog));
    Requests.push_back(std::move(R));
  }
  return Requests;
}

/// Abort (rather than index an empty verdict list) if a batch request
/// failed — synthesised tests must always round-trip.
void requireOk(const std::vector<CheckResponse> &Responses,
               size_t NumVerdicts) {
  for (const CheckResponse &R : Responses)
    if (!R || R.Verdicts.size() != NumVerdicts) {
      std::fprintf(stderr, "query failed for %s: %s\n", R.Name.c_str(),
                   R.Error.c_str());
      std::exit(1);
    }
}

/// Footnote 2: some observed outcome satisfies the postcondition and is
/// outside the model's (sorted) allowed-outcome set.
bool forbiddenSeen(const Program &P, const std::vector<Outcome> &Allowed,
                   const std::vector<Outcome> &Observed) {
  for (const Outcome &O : Observed)
    if (O.satisfies(P) &&
        !std::binary_search(Allowed.begin(), Allowed.end(), O))
      return true;
  return false;
}

} // namespace

int main(int argc, char **argv) {
  bench::header("Table 1 (x86): testing the transactional x86 model",
                "Table 1, left half; §5.3");

  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  unsigned MaxE = bench::maxEvents(5);
  double Budget = bench::budgetSeconds(120.0);
  unsigned Jobs = bench::jobs(argc, argv);
  QueryEngine Engine({Jobs});

  std::printf("%4s %12s %9s %7s %5s %5s | %7s %5s %5s %9s\n", "|E|",
              "synth(s)", "complete", "Forbid", "S", "!S", "Allow", "S",
              "!S", "");
  unsigned TotForbid = 0, TotForbidSeen = 0, TotAllow = 0, TotAllowSeen = 0;
  std::vector<Execution> AllForbid;

  // Allow tests: raw postcondition observation (as in the paper).
  auto SeenOnTso = [](const Execution &X) {
    Program P = programFromExecution(X, "t").Prog;
    TsoMachine M(P);
    return M.postconditionObservable();
  };

  for (unsigned N = 2; N <= MaxE; ++N) {
    ForbidSuite S = synthesizeForbid(Tm, Baseline, V, N, Budget, Jobs);
    // Forbid "seen": batch the model side through the query engine, then
    // compare against the operational machine's reachable outcomes.
    std::vector<Program> Progs;
    std::vector<CheckRequest> Requests =
        suiteRequests(S.Tests, "x86", Progs);
    std::vector<CheckResponse> Responses = Engine.runAll(Requests);
    requireOk(Responses, 1);
    unsigned Seen = 0;
    for (size_t I = 0; I < S.Tests.size(); ++I) {
      TsoMachine M(Progs[I]);
      Seen += forbiddenSeen(Progs[I],
                            Responses[I].Verdicts[0].AllowedOutcomes,
                            M.reachableOutcomes());
    }
    AllForbid.insert(AllForbid.end(), S.Tests.begin(), S.Tests.end());
    TotForbid += S.Tests.size();
    TotForbidSeen += Seen;
    std::printf("%4u %12.2f %9s %7zu %5u %5zu |\n", N, S.SynthesisSeconds,
                bench::yesNo(S.Complete), S.Tests.size(), Seen,
                S.Tests.size() - Seen);
  }

  // Allow suite: one-step relaxations of every Forbid test, bucketed by
  // event count (relaxations of (n+1)-event tests appear at n events).
  std::map<unsigned, std::pair<unsigned, unsigned>> AllowBySize;
  for (const Execution &X : relaxationsOf(AllForbid, V)) {
    auto &[T, Sn] = AllowBySize[X.size()];
    ++T;
    Sn += SeenOnTso(X);
  }
  for (const auto &[N, TS] : AllowBySize) {
    std::printf("%4u %12s %9s %7s %5s %5s | %7u %5u %5u\n", N, "-", "-",
                "-", "-", "-", TS.first, TS.second, TS.first - TS.second);
    TotAllow += TS.first;
    TotAllowSeen += TS.second;
  }
  std::printf("Total (x86): Forbid %u (seen %u, not seen %u); "
              "Allow %u (seen %u, not seen %u)\n",
              TotForbid, TotForbidSeen, TotForbid - TotForbidSeen,
              TotAllow, TotAllowSeen, TotAllow - TotAllowSeen);

  // §5.3 transaction-count breakdown of the Forbid suite.
  std::vector<unsigned> Hist = txnCountHistogram(AllForbid);
  std::printf("Forbid tests by transaction count:");
  for (unsigned I = 1; I < Hist.size(); ++I)
    std::printf("  %u txn: %u (%.0f%%)", I, Hist[I],
                TotForbid ? 100.0 * Hist[I] / TotForbid : 0.0);
  std::printf("\n");

  std::printf("\nPaper (SAT back-end, |E|<=7): 508 Forbid (0 seen), 3726 "
              "Allow (3101 seen);\nno Forbid test observable — matched "
              "here: %s.\n",
              TotForbidSeen == 0 ? "yes" : "NO (soundness violation!)");

  // Companion material: the suite as litmus files plus the JSON manifest
  // (replayable as a query batch).
  SuiteExport Ex = writeSuite("suites/x86-forbid", "x86-forbid", AllForbid,
                              /*Forbidden=*/true);
  if (Ex)
    std::printf("Exported %u Forbid tests to suites/x86-forbid/.\n",
                Ex.FilesWritten);
  SuiteExport ExJson = writeSuiteJson("suites/x86-forbid.json", "x86-forbid",
                                      AllForbid, /*Forbidden=*/true);
  if (ExJson)
    std::printf("Exported the suite manifest to suites/x86-forbid.json.\n");
  return 0;
}
