//===- Monotonicity.cpp - Transactional monotonicity (§8.1) -------------------==//

#include "metatheory/Monotonicity.h"

#include <algorithm>
#include <chrono>

using namespace tmw;

std::vector<Execution> tmw::txnAugmentations(const Execution &X,
                                             const Vocabulary &V) {
  std::vector<Execution> Out;
  unsigned NumTxns = X.numTxns();
  Relation PoImm = X.poImm();

  // Membership lists per class, in po order.
  auto MembersOf = [&](int C) {
    std::vector<EventId> Ms;
    for (unsigned E = 0; E < X.size(); ++E)
      if (X.Txn[E] == C)
        Ms.push_back(E);
    std::sort(Ms.begin(), Ms.end(), [&X](EventId A, EventId B) {
      return X.Po.contains(A, B);
    });
    return Ms;
  };

  auto AtomicClass = [&X](int C) {
    return C != kNoClass && ((X.AtomicTxns >> C) & 1);
  };

  // Grow a class over an adjacent free event.
  for (unsigned C = 0; C < NumTxns; ++C) {
    std::vector<EventId> Ms = MembersOf(static_cast<int>(C));
    if (Ms.empty())
      continue;
    for (bool Front : {true, false}) {
      EventId Boundary = Front ? Ms.front() : Ms.back();
      for (unsigned E = 0; E < X.size(); ++E) {
        bool Adjacent = Front ? PoImm.contains(E, Boundary)
                              : PoImm.contains(Boundary, E);
        if (!Adjacent || X.Txn[E] != kNoClass)
          continue;
        // Atomic transactions may not contain atomic operations (§7).
        if (AtomicClass(static_cast<int>(C)) && X.event(E).isAtomic())
          continue;
        Execution Y = X;
        Y.Txn[E] = static_cast<int>(C);
        Out.push_back(Y);
      }
    }
  }

  // Merge two po-adjacent classes (transaction coalescing).
  for (unsigned C1 = 0; C1 < NumTxns; ++C1)
    for (unsigned C2 = 0; C2 < NumTxns; ++C2) {
      if (C1 == C2)
        continue;
      std::vector<EventId> M1 = MembersOf(static_cast<int>(C1));
      std::vector<EventId> M2 = MembersOf(static_cast<int>(C2));
      if (M1.empty() || M2.empty() ||
          !PoImm.contains(M1.back(), M2.front()))
        continue;
      // Merging an atomic with a relaxed transaction has no canonical
      // flavour; offer the merge in the flavours the contents allow.
      bool AnyAtomicOp = false;
      for (EventId E : M1)
        AnyAtomicOp |= X.event(E).isAtomic();
      for (EventId E : M2)
        AnyAtomicOp |= X.event(E).isAtomic();
      for (bool Atomic : {false, true}) {
        if (Atomic && (!V.AtomicTxns || AnyAtomicOp))
          continue;
        Execution Y = X;
        for (EventId E : M2)
          Y.Txn[E] = static_cast<int>(C1);
        if (Atomic)
          Y.AtomicTxns |= uint32_t(1) << C1;
        else
          Y.AtomicTxns &= ~(uint32_t(1) << C1);
        Out.push_back(Y);
        if (!V.AtomicTxns)
          break;
      }
    }

  // Wrap a free event in a new singleton transaction.
  int Fresh = static_cast<int>(NumTxns);
  if (Fresh < static_cast<int>(kMaxTxns))
    for (unsigned E = 0; E < X.size(); ++E) {
      if (X.Txn[E] != kNoClass || X.event(E).isLockCall())
        continue;
      {
        Execution Y = X;
        Y.Txn[E] = Fresh;
        Out.push_back(Y);
      }
      if (V.AtomicTxns && !X.event(E).isAtomic()) {
        Execution Y = X;
        Y.Txn[E] = Fresh;
        Y.AtomicTxns |= uint32_t(1) << Fresh;
        Out.push_back(Y);
      }
    }

  Out.erase(std::remove_if(
                Out.begin(), Out.end(),
                [](const Execution &Y) { return Y.checkWellFormed(); }),
            Out.end());
  return Out;
}

MonotonicityResult tmw::checkMonotonicity(const MemoryModel &M,
                                          const Vocabulary &V,
                                          unsigned NumEvents,
                                          double BudgetSeconds) {
  MonotonicityResult Res;
  auto Start = std::chrono::steady_clock::now();
  auto Elapsed = [&Start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  };

  ExecutionEnumerator Enum(V, NumEvents);
  auto TryFrom = [&](Execution &X) {
    if (M.consistent(X))
      return true;
    for (const Execution &Y : txnAugmentations(X, V)) {
      ++Res.PairsChecked;
      if (M.consistent(Y)) {
        Res.CounterexampleFound = true;
        Res.X = X;
        Res.Y = Y;
        return false;
      }
    }
    return true;
  };

  bool Finished = Enum.forEachBase([&](Execution &Base) {
    if (Elapsed() > BudgetSeconds)
      return false;
    // The transaction-free execution itself is a valid X.
    if (!TryFrom(Base))
      return false;
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      if (Elapsed() > BudgetSeconds)
        return false;
      return TryFrom(X);
    });
  });

  Res.Complete = Finished || Res.CounterexampleFound;
  Res.Seconds = Elapsed();
  return Res;
}
