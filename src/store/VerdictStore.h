//===- VerdictStore.h - Persistent content-addressed verdict store -*- C++ -*-==//
///
/// \file
/// The cross-process, cross-run caching tier below `SessionCache`: an
/// append-only log of canonical `CheckResponse` JSON documents, each keyed
/// by the *full content* of the query it answers — program source, the
/// canonical resolved model specs, the options fingerprint (explain /
/// outcomes / candidate cap), and the engine version. Warm runs of
/// `litmus_tool --corpus --store` and a restarted `tmw_serve --store`
/// answer repeat queries at I/O speed instead of enumeration speed — the
/// herd7-campaign workload (an unchanged corpus re-checked per CI run) is
/// dominated by exactly such repeats.
///
/// Durability idiom (deliberately far simpler than a pager/WAL, because
/// entries are immutable and content-addressed):
///
///  * **Append + fsync only.** A record is appended and fsync'd under one
///    lock; nothing is ever updated in place, so there is no dirty-page
///    state to reason about and write-ahead ordering is the whole story.
///  * **Length + checksum framing.** Every record carries its field
///    lengths and an FNV-1a64 checksum; a torn or garbage tail left by a
///    crash fails the frame check, and `open()` truncates the log back to
///    the last valid record (counting the dropped bytes). A failed append
///    likewise rolls the file back to the pre-record offset.
///  * **Eviction can only drop work, never change an answer.** Every
///    record is an exact (key, canonical JSON) pair; `compact()` drops
///    stale-version and duplicate records and any torn tail, and a
///    dropped entry simply re-evaluates.
///  * **Version stamping.** Keys embed `kEngineVersion`; bump it whenever
///    verdict *semantics* can change (axiom fixes, enumeration-order
///    changes observable through `first_forbidden`, wire-form changes).
///    Records from another version are treated as misses (and reported as
///    `StaleRecords`), so a stale store can never serve a wrong answer.
///
/// Content addressing is *exact*: the whole key — including the entire
/// program source — is stored in each record and compared byte-for-byte
/// on lookup. Hashes appear only in the in-memory index (the map's hash)
/// and in display fingerprints, so aliasing is impossible by
/// construction, which is what makes the store auditable (`tmw_store
/// ls|verify|compact`) and verdict-neutral: a stored hit, a memory hit,
/// and a cold evaluation emit byte-for-byte identical canonical JSON.
///
/// Concurrency: lookups and appends from any thread (one mutex, like the
/// session cache); the multiplexer's rival connections share one store
/// under the one resident pool. Cross-*process* writers are not
/// coordinated — the intended shapes are one resident server, or
/// sequential CLI runs; a reader racing a writer sees a clean prefix.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_STORE_VERDICTSTORE_H
#define TMW_STORE_VERDICTSTORE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tmw {

/// Lifetime counters of one open store (observability + the store tests;
/// reported through the opt-in telemetry appendix and `tmw_serve --stats`
/// only — the canonical verdict JSON never mentions the store).
struct StoreCounters {
  /// Lookups served from the store / answered "evaluate it yourself".
  uint64_t Hits = 0, Misses = 0;
  /// Records appended (and fsync'd) by this handle / appends that failed
  /// at the filesystem (the entry stays resident in memory only).
  uint64_t Appends = 0, AppendErrors = 0;
  /// Records currently indexed.
  uint64_t Records = 0;
  /// Valid records recovered from the log at `open()`.
  uint64_t RecoveredRecords = 0;
  /// Records skipped at `open()`: engine-version mismatch / duplicate key.
  uint64_t StaleRecords = 0, DuplicateRecords = 0;
  /// Bytes of torn/garbage tail truncated at `open()`.
  uint64_t TruncatedTailBytes = 0;
};

/// One record seen by `scan` (fsck / ls view; no index is built).
struct StoreRecord {
  std::string_view Key, Value;
  /// Byte offset of the record header in the file.
  uint64_t Offset = 0;
  /// Key stamped with a different `kEngineVersion`.
  bool Stale = false;
  /// Same key already appeared earlier in the log.
  bool Duplicate = false;
};

/// Read-only verdict of `VerdictStore::scan` over a store file.
struct StoreScan {
  /// Non-empty when the file could not be read or the header is corrupt /
  /// format-version-mismatched; nothing else is meaningful then.
  std::string Error;
  uint64_t FileBytes = 0;
  uint64_t ValidRecords = 0, StaleRecords = 0, DuplicateRecords = 0;
  /// Bytes past the last valid record (0 for a clean log).
  uint64_t TailBytes = 0;

  /// A store is clean when it opened and has no torn/garbage tail.
  bool clean() const { return Error.empty() && TailBytes == 0; }
};

/// The persistent verdict store (see file comment). Construct via `open`.
class VerdictStore {
public:
  /// Bump whenever verdict semantics can change: records stamped with any
  /// other version are unreachable (lookup misses) and are dropped by
  /// `compact`. History: 1 = first release of the store.
  static constexpr uint32_t kEngineVersion = 1;

  /// Open (creating if absent) the store at \p Path for lookups and
  /// appends, rebuilding the in-memory index from the log and truncating
  /// any torn tail. Returns nullptr with a one-line \p Error on an
  /// unwritable path, a corrupt header, or a format-version mismatch —
  /// the callers' contract is to refuse to run rather than silently serve
  /// cache-less.
  static std::unique_ptr<VerdictStore> open(const std::string &Path,
                                            std::string *Error);
  ~VerdictStore();
  VerdictStore(const VerdictStore &) = delete;
  VerdictStore &operator=(const VerdictStore &) = delete;

  /// The canonical JSON document stored under \p Key, if any.
  std::optional<std::string> lookup(const std::string &Key);

  /// Append (and fsync) one record; a key already resident is a no-op
  /// (entries are immutable — a second evaluation of the same key is
  /// byte-identical by the engine's determinism contract). On a
  /// filesystem error the file is rolled back to the pre-record offset
  /// and the entry stays resident in memory only (counted in
  /// `AppendErrors`); correctness is unaffected either way. Returns true
  /// when the record landed durably.
  bool append(const std::string &Key, const std::string &CanonicalJson);

  StoreCounters counters() const;
  const std::string &path() const { return Path; }

  /// Build the exact content key of one query: engine version, options
  /// fingerprint, response name, the *canonical* resolved model specs
  /// (registry print order), and the full program source. Every field is
  /// length-prefixed, so distinct queries can never concatenate to the
  /// same key. \p Version is overridable for the version-mismatch tests.
  static std::string makeKey(std::string_view Name, std::string_view Source,
                             std::span<const std::string> CanonicalSpecs,
                             bool Explain, bool WantOutcomes,
                             uint64_t CandidateCap,
                             uint32_t Version = kEngineVersion);

  /// Short display fingerprint of a key (FNV-1a64, hex) — `tmw_store ls`
  /// output only, never used for matching.
  static std::string fingerprint(std::string_view Key);

  /// Read-only walk of the store at \p Path (fsck / ls): every valid
  /// record is handed to \p Fn (when set) in log order; nothing is
  /// truncated or modified. Header corruption is reported via
  /// `StoreScan::Error`, a torn tail via `TailBytes`.
  static StoreScan scan(const std::string &Path,
                        const std::function<void(const StoreRecord &)> &Fn);

  /// Rewrite the log at \p Path keeping only the first occurrence of each
  /// current-version key: stale-version records, duplicates, and any torn
  /// tail are dropped (work, never answers). Atomic via
  /// write-temp + fsync + rename. On success \p Result reports what the
  /// *old* file contained; returns false with \p Error otherwise.
  static bool compact(const std::string &Path, StoreScan *Result,
                      std::string *Error);

private:
  VerdictStore(std::string Path, int Fd);

  /// Append the framed record to the file; returns false (after rolling
  /// the file back) on any filesystem error. Caller holds Mu.
  bool writeRecord(const std::string &Key, const std::string &Value);

  const std::string Path;
  int Fd = -1;
  /// Byte offset of the end of the last durable record.
  uint64_t End = 0;
  mutable std::mutex Mu;
  std::unordered_map<std::string, std::string> Index;
  StoreCounters C;
};

} // namespace tmw

#endif // TMW_STORE_VERDICTSTORE_H
