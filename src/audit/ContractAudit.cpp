//===- ContractAudit.cpp - Differential metadata-contract auditor ------------==//

#include "audit/ContractAudit.h"

#include "enumerate/Candidates.h"
#include "enumerate/Enumerator.h"
#include "lint/Lint.h"
#include "litmus/Library.h"
#include "models/ModelRegistry.h"

#include <algorithm>
#include <optional>
#include <set>
#include <tuple>

using namespace tmw;

const char *tmw::auditPassName(AuditPass P) {
  switch (P) {
  case AuditPass::Salt:
    return "salt";
  case AuditPass::Memoization:
    return "memoization";
  case AuditPass::Invalidation:
    return "invalidation";
  case AuditPass::Footprint:
    return "footprint";
  }
  return "?";
}

std::vector<std::string> tmw::defaultAuditSpecs() {
  std::vector<std::string> Specs;
  for (Arch A : ModelRegistry::allArchs()) {
    Specs.emplace_back(ModelRegistry::archSpecName(A));
    Specs.push_back(std::string(ModelRegistry::archSpecName(A)) +
                    "/+baseline");
  }
  for (const char *W : ModelRegistry::wrapperSpecs())
    Specs.emplace_back(W);
  return Specs;
}

namespace {

/// One audit unit: an axiom-table entry of one audited model, evaluated
/// under that model's configured mask. Units are deduplicated by
/// `(Term, Mask & Salt, Salt, table size)` — by the very salt contract
/// under audit this key determines the whole differential computation
/// (and if the salt lies, the mask flips from any one representative
/// expose it), so shared `terms::*` entries are audited once, not once
/// per table that references them.
struct Unit {
  size_t Spec;         ///< Index into the audited model list (first owner).
  unsigned AxIdx;      ///< Index in that model's axiom table.
  const Axiom *Ax;     ///< The table entry (static storage).
  AxiomMask Mask;      ///< The owning model's configured mask.
  unsigned NumAxioms;  ///< Table size = number of meaningful mask bits.
  uint32_t Salt;       ///< Declared salt, normalized to the table width.
  uint32_t Footprint;  ///< Declared vocabulary footprint (Axiom.h).
  uint32_t SaltSeen = 0; ///< Salt bits some probe's output depended on.
};

class Auditor {
public:
  Auditor(std::span<const MemoryModel *const> Models,
          std::span<const std::string> Names, const AuditOptions &O)
      : Models(Models), O(O) {
    for (size_t I = 0; I < Models.size(); ++I)
      R.Specs.push_back(I < Names.size() ? Names[I]
                                         : std::string(Models[I]->name()));
    R.Events = O.Events;
    collectUnits();
  }

  AuditReport run() {
    if (O.Corpus)
      sweepCorpus();
    if (O.Vocabularies)
      sweepVocabularies();
    if (O.Precision)
      reportPrecision();
    R.Counters.Units = Units.size();
    return std::move(R);
  }

private:
  /// Bits below the table width, i.e. the mask bits that can matter.
  static uint32_t tableBits(unsigned NumAxioms) {
    return NumAxioms >= 32 ? ~uint32_t(0)
                           : ((uint32_t(1) << NumAxioms) - 1);
  }

  void collectUnits() {
    // Key: term identity under the salt contract (see Unit), plus the
    // declared footprint — two tables sharing a term but declaring
    // different footprints are distinct pass-4 claims, so each gets its
    // own unit (the plan *unions* such footprints; the audit must check
    // each declaration as written).
    std::set<std::tuple<const void *, uint32_t, uint32_t, unsigned,
                        uint32_t>>
        Seen;
    for (size_t S = 0; S < Models.size(); ++S) {
      AxiomList Axioms = Models[S]->axioms();
      unsigned N = static_cast<unsigned>(Axioms.size());
      AxiomMask M = Models[S]->axiomMask();
      for (unsigned I = 0; I < N; ++I) {
        const Axiom &Ax = Axioms[I];
        uint32_t Salt = Ax.Salt & tableBits(N);
        if (Seen
                .insert({reinterpret_cast<const void *>(Ax.Term),
                         M.normalized(N).bits() & Salt, Salt, N,
                         Ax.Footprint})
                .second)
          Units.push_back({S, I, &Ax, M, N, Salt, Ax.Footprint});
      }
    }
  }

  void finding(AuditPass Pass, const Unit &U, int Bit,
               const std::string &Probe, const Execution &X,
               std::string Detail) {
    // One report per (pass, unit, bit): the first witness is enough, and
    // without the dedup a single bad salt would flood the report with one
    // finding per probe.
    if (!Reported.insert({Pass, U.Spec, U.AxIdx, Bit}).second)
      return;
    if (O.MaxFindings && R.Findings.size() >= O.MaxFindings) {
      R.Truncated = true;
      return;
    }
    AuditFinding F;
    F.Pass = Pass;
    F.Model = R.Specs[U.Spec];
    F.Axiom = std::string(U.Ax->Name);
    F.Bit = Bit;
    if (Bit >= 0 && static_cast<unsigned>(Bit) < U.NumAxioms)
      F.BitName = std::string(Models[U.Spec]->axioms()[Bit].Name);
    F.Probe = Probe;
    F.Detail = std::move(Detail);
    F.Witness = X.dump();
    R.Findings.push_back(std::move(F));
  }

  Relation eval(const Unit &U, const ExecutionAnalysis &A, AxiomMask M) {
    ++R.Counters.TermEvals;
    return U.Ax->Term(A, M);
  }

  /// Passes 1 + 2 over one probe execution: salt soundness on fresh
  /// Recompute analyses, memoization coherence through one shared
  /// memoized arena (reset per probe, shared across every unit and mask
  /// below, exactly as one production arena serves many models).
  void auditProbe(const Execution &X, const std::string &Probe) {
    ++R.Counters.Probes;
    uint32_t Vocab = executionVocabulary(X);
    retarget(Fresh, X, AnalysisCaching::Recompute);
    retarget(Shared, X, AnalysisCaching::Memoized);
    for (Unit &U : Units) {
      bool Disjoint = (U.Footprint & Vocab) == 0;
      Relation BaseFresh = eval(U, *Fresh, U.Mask);
      Relation BaseMemo = eval(U, *Shared, U.Mask);
      if (!(BaseMemo == BaseFresh))
        finding(AuditPass::Memoization, U, -1, Probe, X,
                "memoized evaluation differs from fresh recompute at the "
                "configured mask");
      // Pass 4: on a footprint-disjoint probe the declared contract
      // promises an empty relation (the basis of the plan's vacuous-
      // verdict discharge). Checked at the configured mask and at every
      // flipped mask below — a footprint must hold at any mask.
      if (Disjoint) {
        ++R.Counters.FootprintChecks;
        if (!BaseFresh.isEmpty())
          finding(AuditPass::Footprint, U, -1, Probe, X,
                  "term produced edges on an execution whose vocabulary is "
                  "disjoint from its declared Footprint (under-declared "
                  "footprint: specialization would discharge a live "
                  "constraint)");
      }
      for (unsigned B = 0; B < U.NumAxioms; ++B) {
        AxiomMask Flipped = U.Mask;
        Flipped.set(B, !U.Mask.test(B));
        Relation FlipFresh = eval(U, *Fresh, Flipped);
        if (Disjoint && !FlipFresh.isEmpty())
          finding(AuditPass::Footprint, U, static_cast<int>(B), Probe, X,
                  "term produced edges under a flipped mask on an execution "
                  "whose vocabulary is disjoint from its declared Footprint");
        bool Changed = !(FlipFresh == BaseFresh);
        if ((U.Salt >> B) & 1) {
          if (Changed)
            U.SaltSeen |= uint32_t(1) << B;
        } else if (Changed) {
          finding(AuditPass::Salt, U, static_cast<int>(B), Probe, X,
                  "term output depends on a mask bit outside its declared "
                  "Salt (under-declared salt aliases distinct relations in "
                  "the cross-spec plan)");
        }
        Relation FlipMemo = eval(U, *Shared, Flipped);
        if (!(FlipMemo == FlipFresh))
          finding(AuditPass::Memoization, U, static_cast<int>(B), Probe, X,
                  "shared memoized arena served a stale relation after a "
                  "mask flip (memoTerm salt narrower than the term's real "
                  "footprint)");
      }
    }
  }

  void sweepCorpus() {
    for (const CorpusEntry &E : sharedCorpus()) {
      uint64_t Taken = 0;
      forEachCandidate(E.Prog, [&](const Candidate &C) {
        ++R.Counters.CorpusProbes;
        auditProbe(C.X, "corpus:" + E.Name + "#" + std::to_string(Taken));
        return !O.CorpusCandidateCap || ++Taken < O.CorpusCandidateCap;
      });
    }
  }

  void sweepVocabularies() {
    for (Arch A : ModelRegistry::allArchs()) {
      std::string ArchTag =
          std::string("vocab:") + ModelRegistry::archSpecName(A);
      ExecutionEnumerator Enum(Vocabulary::forArch(A), O.Events);
      uint64_t Bases = 0;
      Enum.forEachBase([&](Execution &Base) {
        std::string BaseTag = ArchTag + "#" + std::to_string(Bases);
        ++R.Counters.VocabProbes;
        auditProbe(Base, BaseTag);
        // Pass 3 setup: populate a memoized arena on the base, then let
        // each placement mutate the execution and invalidate exactly the
        // transactional slice, as the placement search does.
        retarget(TxnArena, Base, AnalysisCaching::Memoized);
        retarget(TxnFresh, Base, AnalysisCaching::Recompute);
        for (Unit &U : Units)
          eval(U, *TxnArena, U.Mask);
        ++R.Counters.Bases;
        uint64_t Placements = 0;
        Enum.forEachTxnPlacement(Base, [&](Execution &X) {
          std::string Tag = BaseTag + "+txn" + std::to_string(Placements);
          ++R.Counters.Placements;
          TxnArena->invalidateTransactionalState();
          for (Unit &U : Units) {
            Relation Memo = eval(U, *TxnArena, U.Mask);
            Relation FreshR = eval(U, *TxnFresh, U.Mask);
            if (!(Memo == FreshR))
              finding(AuditPass::Invalidation, U, -1, Tag, X,
                      "cached term survived invalidateTransactionalState() "
                      "but its value depends on the transaction labelling "
                      "(stale relation served to the placement search)");
          }
          // The placements double as salt/memoization probes: they are
          // the executions where transactional mask bits (tfence, thb,
          // Tsw, ...) actually change term outputs.
          ++R.Counters.VocabProbes;
          auditProbe(X, Tag);
          return !O.PlacementCap || ++Placements < O.PlacementCap;
        });
        return !O.VocabBaseCap || ++Bases < O.VocabBaseCap;
      });
    }
  }

  void reportPrecision() {
    for (const Unit &U : Units) {
      uint32_t Unused = U.Salt & ~U.SaltSeen;
      for (unsigned B = 0; B < U.NumAxioms; ++B)
        if ((Unused >> B) & 1) {
          SaltPrecisionNote N;
          N.Model = R.Specs[U.Spec];
          N.Axiom = std::string(U.Ax->Name);
          N.Bit = static_cast<int>(B);
          N.BitName = std::string(Models[U.Spec]->axioms()[B].Name);
          R.Precision.push_back(std::move(N));
        }
    }
  }

  static void retarget(std::optional<ExecutionAnalysis> &Arena,
                       const Execution &X, AnalysisCaching Mode) {
    if (Arena && Arena->caching() == Mode)
      Arena->reset(X);
    else
      Arena.emplace(X, Mode);
  }

  std::span<const MemoryModel *const> Models;
  const AuditOptions &O;
  AuditReport R;
  std::vector<Unit> Units;
  std::set<std::tuple<AuditPass, size_t, unsigned, int>> Reported;
  /// Arenas reused across probes (reset() is an O(1) generation bump).
  std::optional<ExecutionAnalysis> Fresh, Shared, TxnArena, TxnFresh;
};

} // namespace

AuditReport tmw::auditModels(std::span<const MemoryModel *const> Models,
                             std::span<const std::string> Names,
                             const AuditOptions &O) {
  return Auditor(Models, Names, O).run();
}

AuditReport tmw::auditContracts(const AuditOptions &O) {
  std::vector<std::string> Specs =
      O.ModelSpecs.empty() ? defaultAuditSpecs() : O.ModelSpecs;
  std::vector<std::unique_ptr<MemoryModel>> Owned;
  std::vector<const MemoryModel *> Raw;
  std::vector<std::string> Names;
  for (const std::string &Spec : Specs) {
    std::string Error;
    std::unique_ptr<MemoryModel> M = ModelRegistry::parse(Spec, &Error);
    if (!M) {
      AuditReport R;
      R.Error = "model spec '" + Spec + "': " + Error;
      return R;
    }
    // Canonical rendering, so the report names round-trippable specs.
    // Dedup by that rendering: the default matrix's "<arch>/+baseline"
    // collapses to the plain arch for models without TM axioms.
    std::string Name = ModelRegistry::print(*M);
    if (std::find(Names.begin(), Names.end(), Name) != Names.end())
      continue;
    Names.push_back(std::move(Name));
    Raw.push_back(M.get());
    Owned.push_back(std::move(M));
  }
  return auditModels(Raw, Names, O);
}
