//===- EvalPlan.cpp - Cross-spec evaluation plans ------------------------------==//
///
/// Plan compilation: hash-cons the specs' checked axioms into an
/// obligation pool by the Axiom::Salt term-identity rule, derive the
/// implication edges (structural subsets, ablation lattices, the pinned
/// cross-arch hierarchy), and transitively close them; evaluation walks
/// specs cheapest-first through one per-candidate obligation cache.
///
//===----------------------------------------------------------------------===//

#include "models/EvalPlan.h"

#include "hw/ImplModel.h"
#include "lint/Lint.h"
#include "models/Armv8Model.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

using namespace tmw;

namespace {

/// The guard term of the SC => hardware-baseline hierarchy edges: the
/// pinned implication (`ScImpliesHardwareBaselines`) covers RMW-free
/// executions only. Vocabulary footprint {Rmw}: the relation is the RMW
/// pairing itself, empty on RMW-free executions.
Relation rmwGuard(const ExecutionAnalysis &A, AxiomMask) { return A.rmw(); }

/// a ⊆ b over sorted unique id vectors.
bool subsetOf(const std::vector<uint32_t> &A, const std::vector<uint32_t> &B) {
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

/// Identical axiom tables, entry for entry (same term functions, kinds,
/// flags, salts, footprints, names). Static arch tables compare equal
/// trivially; per-instance `ImplModel` tables compare by content, so two
/// wrappers of the same arch and preset count as one family.
bool sameTable(const MemoryModel &A, const MemoryModel &B) {
  AxiomList X = A.axioms(), Y = B.axioms();
  if (X.size() != Y.size())
    return false;
  for (size_t I = 0; I < X.size(); ++I)
    if (X[I].Term != Y[I].Term || X[I].Kind != Y[I].Kind ||
        X[I].Tm != Y[I].Tm || X[I].Modifier != Y[I].Modifier ||
        X[I].Salt != Y[I].Salt || X[I].Footprint != Y[I].Footprint ||
        X[I].Name != Y[I].Name)
      return false;
  return true;
}

/// mask(A) ⊆ mask(B) over the table's axiom count.
bool maskSubsetOf(AxiomMask A, AxiomMask B, size_t NumAxioms) {
  unsigned N = static_cast<unsigned>(NumAxioms);
  return (A.normalized(N).bits() & ~B.normalized(N).bits()) == 0;
}

} // namespace

EvalPlan EvalPlan::compile(std::span<const MemoryModel *const> Models) {
  EvalPlan P;
  size_t N = Models.size();

  // --- Obligation pool: hash-cons (term fn, kind, salt-relevant mask
  // bits). The stored representative mask is the first contributor's full
  // mask — by the salt contract any agreeing mask denotes the same term.
  // Footprints union across contributors: a vocabulary disjoint from the
  // union is disjoint from every contributor's declaration, so each
  // contributor's emptiness contract applies (intersection would not be
  // sound).
  std::map<std::tuple<uintptr_t, uint8_t, uint32_t>, uint32_t> Pool;
  auto intern = [&](Relation (*Term)(const ExecutionAnalysis &, AxiomMask),
                    AxiomKind Kind, AxiomMask Mask, uint32_t Salt,
                    uint32_t Footprint) {
    auto Key = std::make_tuple(reinterpret_cast<uintptr_t>(Term),
                               static_cast<uint8_t>(Kind),
                               Mask.bits() & Salt);
    auto [It, New] = Pool.emplace(Key, static_cast<uint32_t>(P.Obls.size()));
    if (New)
      P.Obls.push_back({Term, Kind, Mask, Footprint});
    else
      P.Obls[It->second].Footprint |= Footprint;
    return It->second;
  };
  auto compileSpec = [&](const MemoryModel &M) {
    SpecPlan S;
    AxiomList Axs = M.axioms();
    AxiomMask Mask = M.axiomMask();
    for (unsigned I = 0; I < Axs.size(); ++I) {
      const Axiom &Ax = Axs[I];
      if (Ax.Modifier || !Mask.test(I))
        continue;
      S.Obls.push_back(intern(Ax.Term, Ax.Kind, Mask, Ax.Salt,
                              Ax.Footprint));
    }
    return S;
  };

  P.Specs.reserve(N);
  for (const MemoryModel *M : Models)
    P.Specs.push_back(compileSpec(*M));

  std::vector<std::vector<uint32_t>> Set(N);
  for (size_t I = 0; I < N; ++I) {
    Set[I] = P.Specs[I].Obls;
    std::sort(Set[I].begin(), Set[I].end());
    Set[I].erase(std::unique(Set[I].begin(), Set[I].end()), Set[I].end());
  }

  // --- Reference spec points of the pinned hierarchy
  // (tests/model_hierarchy_test.cpp), interned through the same pool so
  // their obligation ids are comparable with the specs'. Entries only
  // they contribute are never evaluated.
  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  X86Model X86Base{X86Model::Config::baseline()};
  PowerModel PowerBase{PowerModel::Config::baseline()};
  Armv8Model Armv8Base{Armv8Model::Config::baseline()};
  auto refSet = [&](const MemoryModel &M) {
    std::vector<uint32_t> V = compileSpec(M).Obls;
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
    return V;
  };
  std::vector<uint32_t> RefSc = refSet(Sc), RefTsc = refSet(Tsc),
                        RefX86 = refSet(X86), RefPower = refSet(Power),
                        RefArmv8 = refSet(Armv8),
                        RefX86Base = refSet(X86Base),
                        RefPowerBase = refSet(PowerBase),
                        RefArmv8Base = refSet(Armv8Base);

  // Guard obligations (all salt-0 terms, so they collapse with any spec
  // that already checks them as axioms). Footprints match the tables'
  // declarations for the shared terms, so the union stays narrow and a
  // specialized plan decides the guards once per program.
  uint32_t GRmwIsol = intern(terms::rmwIsolation, AxiomKind::Empty,
                             AxiomMask::all(), 0, vocab::Rmw);
  uint32_t GTxnCancel = intern(terms::txnCancelsRmw, AxiomKind::Empty,
                               AxiomMask::all(), 0, vocab::Txn);
  uint32_t GRmwFree =
      intern(rmwGuard, AxiomKind::Empty, AxiomMask::all(), 0, vocab::Rmw);

  // --- Obligation dominance: `acyclic(po u com)` — SC/TSC's Order, the
  // sole entry of RefSc — implies `acyclic(po u rf)`, the implementation
  // wrappers' NoLoadBuffering axiom (rf ⊆ com, acyclicity is antitone;
  // both terms ignore their mask). A source that checks the former
  // therefore covers the latter for free, which is what lets SC/TSC sit
  // above the `power8`/`armv8-rtl`/`*-impl` wrappers and not just the
  // bare architecture models.
  ImplModel RefImpl = ImplModel::power8();
  const Axiom &NoLbAx = RefImpl.axioms().back();
  uint32_t OScHb = RefSc.front();
  uint32_t ONoLb = intern(NoLbAx.Term, NoLbAx.Kind, AxiomMask::all(),
                          NoLbAx.Salt, NoLbAx.Footprint);
  auto augment = [&](std::vector<uint32_t> V) {
    // The obligations spec/reference-set V covers beyond its own list.
    if (std::binary_search(V.begin(), V.end(), OScHb) &&
        !std::binary_search(V.begin(), V.end(), ONoLb)) {
      V.push_back(ONoLb);
      std::sort(V.begin(), V.end());
    }
    return V;
  };
  std::vector<std::vector<uint32_t>> Covered(N);
  for (size_t I = 0; I < N; ++I)
    Covered[I] = augment(Set[I]);
  // Hierarchy targets as seen from an SC/TSC source: every such source
  // checks `acyclic(po u com)` (it is an obligation superset of RefSc),
  // so a target may additionally carry the dominated NoLB axiom — added
  // unconditionally here because these sets are only consulted for edges
  // whose source passed the SrcTsc/SrcSc superset test.
  auto withNoLb = [&](std::vector<uint32_t> V) {
    V.push_back(ONoLb);
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
    return V;
  };
  std::vector<uint32_t> RefX86D = withNoLb(RefX86),
                        RefPowerD = withNoLb(RefPower),
                        RefArmv8D = withNoLb(RefArmv8),
                        RefX86BaseD = withNoLb(RefX86Base),
                        RefPowerBaseD = withNoLb(RefPowerBase),
                        RefArmv8BaseD = withNoLb(RefArmv8Base);

  // --- Direct edges. Guard[i][j] holds the best-known (fewest-guard)
  // derivation of `consistent(i) => consistent(j)`.
  std::vector<std::vector<int>> Has(N, std::vector<int>(N, 0));
  std::vector<std::vector<std::vector<uint32_t>>> Guard(
      N, std::vector<std::vector<uint32_t>>(N));
  auto addEdge = [&](size_t I, size_t J, std::vector<uint32_t> G) {
    std::sort(G.begin(), G.end());
    G.erase(std::unique(G.begin(), G.end()), G.end());
    if (!Has[I][J] || G.size() < Guard[I][J].size()) {
      Has[I][J] = 1;
      Guard[I][J] = std::move(G);
    }
  };
  /// Spec \p J's consistency is implied by \p Ref's: either J's
  /// obligations are a subset of Ref's (structural against the reference
  /// point), or J shares Ref's table with a sub-mask (ablation lattice:
  /// modifier bits only add edges to monotone terms, checked bits only
  /// add obligations, so a sub-mask is a weaker model).
  auto weakerThan = [&](size_t J, const MemoryModel &Ref,
                        const std::vector<uint32_t> &RefSet) {
    return subsetOf(Set[J], RefSet) ||
           (sameTable(*Models[J], Ref) &&
            maskSubsetOf(Models[J]->axiomMask(), Ref.axiomMask(),
                         Ref.axioms().size()));
  };

  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      if (I == J)
        continue;
      // Structural: obligations(J) ⊆ covered(I) — propositional over the
      // obligation sets, plus the NoLB dominance (so `sc => sc-impl`).
      if (subsetOf(Set[J], Covered[I]))
        addEdge(I, J, {});
      // Ablation lattice within one table family.
      if (sameTable(*Models[I], *Models[J]) &&
          maskSubsetOf(Models[J]->axiomMask(), Models[I]->axiomMask(),
                       Models[I]->axioms().size()))
        addEdge(I, J, {});
      // The cross-arch hierarchy (pinned by model_hierarchy_test).
      // Sources must be at least as strong as the reference point
      // (obligation superset). Only the *maximal* sources are usable
      // here: SC/TSC's scHb is po u com, so their consistency bounds any
      // term contained in (po u com)+ on EVERY execution. The test's
      // x86 => ARMv8 inclusion is deliberately NOT an edge — it is
      // pinned over x86's own vocabulary only, and the engine evaluates
      // arbitrary programs where x86 is blind to foreign fences (a DMB
      // orders ARMv8 but not x86, so x86-consistent does not bound
      // ARMv8 there).
      bool SrcTsc = subsetOf(RefTsc, Set[I]);
      bool SrcSc = subsetOf(RefSc, Set[I]);
      if (SrcTsc &&
          (weakerThan(J, X86, RefX86D) || weakerThan(J, Power, RefPowerD) ||
           weakerThan(J, Armv8, RefArmv8D)))
        addEdge(I, J, {GRmwIsol, GTxnCancel});
      if (SrcSc && (weakerThan(J, X86Base, RefX86BaseD) ||
                    weakerThan(J, PowerBase, RefPowerBaseD) ||
                    weakerThan(J, Armv8Base, RefArmv8BaseD)))
        addEdge(I, J, {GRmwFree});
    }

  // --- Transitive closure, guard sets unioning along paths (a shorter
  // guard set replaces a longer one; guard counts only shrink, so the
  // iteration terminates).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t K = 0; K < N; ++K)
      for (size_t I = 0; I < N; ++I) {
        if (I == K || !Has[I][K])
          continue;
        for (size_t J = 0; J < N; ++J) {
          if (J == I || J == K || !Has[K][J])
            continue;
          std::vector<uint32_t> G = Guard[I][K];
          G.insert(G.end(), Guard[K][J].begin(), Guard[K][J].end());
          std::sort(G.begin(), G.end());
          G.erase(std::unique(G.begin(), G.end()), G.end());
          if (!Has[I][J] || G.size() < Guard[I][J].size()) {
            Has[I][J] = 1;
            Guard[I][J] = std::move(G);
            Changed = true;
          }
        }
      }
  }

  P.Fwd.assign(N, {});
  P.Bwd.assign(N, {});
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      if (Has[I][J]) {
        uint32_t E = static_cast<uint32_t>(P.Implications.size());
        P.Implications.push_back({static_cast<uint32_t>(I),
                                  static_cast<uint32_t>(J),
                                  std::move(Guard[I][J])});
        P.Fwd[I].push_back(E);
        P.Bwd[J].push_back(E);
      }

  // --- Evaluation order: fewest obligations first (stable by index), so
  // the cheap strong specs (SC, TSC) decide before the hardware models
  // they can short-circuit.
  P.Order.resize(N);
  for (size_t I = 0; I < N; ++I)
    P.Order[I] = static_cast<uint32_t>(I);
  std::stable_sort(P.Order.begin(), P.Order.end(),
                   [&](uint32_t A, uint32_t B) {
                     return P.Specs[A].Obls.size() < P.Specs[B].Obls.size();
                   });
  return P;
}

bool EvalPlan::implies(size_t I, size_t J) const {
  for (uint32_t E : Fwd[I])
    if (Implications[E].To == J)
      return true;
  return false;
}

EvalPlan::Scratch EvalPlan::makeScratch() const {
  Scratch S;
  S.Obl.assign(Obls.size(), int8_t(-1));
  S.Spec.assign(Specs.size(), int8_t(-1));
  return S;
}

EvalPlan::Specialization EvalPlan::specialize(uint32_t Vocabulary) const {
  Specialization Sp;
  Sp.Obl.assign(Obls.size(), int8_t(-1));
  for (size_t O = 0; O < Obls.size(); ++O)
    if ((Obls[O].Footprint & Vocabulary) == 0) {
      // Footprint disjoint from everything the program can speak: the
      // term is empty on every candidate (the audited Axiom::Footprint
      // contract), and an empty relation is acyclic, irreflexive, and
      // empty — the obligation holds vacuously.
      Sp.Obl[O] = 1;
      ++Sp.Discharged;
    }
  return Sp;
}

EvalPlan::Specialization EvalPlan::specialize(const ProgramFacts &Facts) const {
  return specialize(Facts.Vocabulary);
}

bool EvalPlan::obligationHolds(uint32_t O, const ExecutionAnalysis &A,
                               Scratch &S) const {
  int8_t &V = S.Obl[O];
  if (V != -1) {
    ++S.C.TermHits;
    return V == 1;
  }
  ++S.C.TermEvals;
  const Obligation &Ob = Obls[O];
  V = axiomHolds(Ob.Kind, Ob.Term(A, Ob.Mask)) ? 1 : 0;
  return V == 1;
}

bool EvalPlan::guardsHold(const Edge &E, const ExecutionAnalysis &A,
                          Scratch &S) const {
  for (uint32_t G : E.Guards)
    if (!obligationHolds(G, A, S))
      return false;
  return true;
}

void EvalPlan::evaluate(const ExecutionAnalysis &A, Scratch &S,
                        const Specialization *Sp) const {
  if (Sp) {
    // Refill from the per-program verdict template instead of the
    // all-unknown reset: pre-discharged obligations read as cached
    // vacuous verdicts for every candidate of this program.
    assert(Sp->Obl.size() == S.Obl.size() &&
           "specialization from a different plan");
    std::copy(Sp->Obl.begin(), Sp->Obl.end(), S.Obl.begin());
    S.C.Discharged += Sp->Discharged;
  } else {
    std::fill(S.Obl.begin(), S.Obl.end(), int8_t(-1));
  }
  std::fill(S.Spec.begin(), S.Spec.end(), int8_t(-1));
  ++S.C.Candidates;
  for (uint32_t Sp : Order) {
    if (S.Spec[Sp] != -1)
      continue;
    ++S.C.SpecEvals;
    int8_t V = 1;
    for (uint32_t O : Specs[Sp].Obls)
      if (!obligationHolds(O, A, S)) {
        V = 0;
        break;
      }
    S.Spec[Sp] = V;
    // One propagation level suffices: the edge set is transitively
    // closed, and implications only chain from a single decided source
    // (forward from consistent, contrapositive from inconsistent).
    if (V == 1) {
      for (uint32_t E : Fwd[Sp]) {
        const Edge &Ed = Implications[E];
        if (S.Spec[Ed.To] == -1 && guardsHold(Ed, A, S)) {
          S.Spec[Ed.To] = 1;
          ++S.C.SpecShortCircuits;
        }
      }
    } else {
      for (uint32_t E : Bwd[Sp]) {
        const Edge &Ed = Implications[E];
        if (S.Spec[Ed.From] == -1 && guardsHold(Ed, A, S)) {
          S.Spec[Ed.From] = 0;
          ++S.C.SpecShortCircuits;
        }
      }
    }
  }
}
