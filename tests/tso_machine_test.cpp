//===- tso_machine_test.cpp - Operational x86-TSO + TSX machine ---------------==//

#include "hw/TsoMachine.h"

#include "enumerate/Candidates.h"
#include "litmus/Parser.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

Program parse(const char *Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << R.Error;
  return R.Prog;
}

TEST(TsoMachineTest, ObservesStoreBuffering) {
  Program P = parse(R"(name SB
thread 0
  store x 1
  load y
thread 1
  store y 1
  load x
post reg 0 r1 0
post reg 1 r1 0
)");
  TsoMachine M(P);
  EXPECT_TRUE(M.postconditionObservable());
}

TEST(TsoMachineTest, MfenceForbidsStoreBuffering) {
  Program P = parse(R"(name SB+mfences
thread 0
  store x 1
  fence mfence
  load y
thread 1
  store y 1
  fence mfence
  load x
post reg 0 r2 0
post reg 1 r2 0
)");
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoMachineTest, NeverViolatesCoherence) {
  Program P = parse(R"(name coRR
thread 0
  store x 1
  store x 2
thread 1
  load x
  load x
post reg 1 r0 2
post reg 1 r1 1
)");
  // Reading 2 then 1 would contradict coherence.
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoMachineTest, MessagePassingIsOrdered) {
  // TSO keeps W->W and R->R order: stale read after seeing the flag is
  // impossible.
  Program P = parse(R"(name MP
thread 0
  store x 1
  store y 1
thread 1
  load y
  load x
post reg 1 r0 1
post reg 1 r1 0
)");
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoMachineTest, BufferForwarding) {
  // A thread sees its own buffered store before it drains.
  Program P = parse(R"(name fwd
thread 0
  store x 1
  load x
thread 1
  load x
post reg 0 r1 1
)");
  TsoMachine M(P);
  EXPECT_TRUE(M.postconditionObservable());
}

TEST(TsoMachineTest, TransactionCommitsAtomically) {
  // No interleaving shows y's update without x's.
  Program P = parse(R"(name atomicity
loc ok 1
thread 0
  txbegin
  store x 1
  store y 1
  txend
thread 1
  load y
  load x
post mem ok 1
post reg 1 r0 1
post reg 1 r1 0
)");
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoMachineTest, TransactionalSbForbidden) {
  // The SB shape with transactional stores: the commit's
  // locked-instruction semantics (buffer drained at txend) forbids the
  // stale reads — the operational counterpart of the tfence axiom.
  Program P = parse(R"(name SB+txns
loc ok 1
thread 0
  txbegin
  store x 1
  txend
  load y
thread 1
  txbegin
  store y 1
  txend
  load x
post mem ok 1
post reg 0 r3 0
post reg 1 r3 0
)");
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoMachineTest, ConflictAbortsTransaction) {
  // A transaction that reads x can abort when the other thread writes x;
  // the abort path zeroes ok.
  Program P = parse(R"(name conflict
loc ok 1
thread 0
  txbegin
  load x
  load x
  txend
thread 1
  store x 1
post mem ok 0
)");
  TsoMachine M(P);
  EXPECT_TRUE(M.postconditionObservable());
}

TEST(TsoMachineTest, StrongIsolationAgainstNonTransactionalWrites) {
  // The two transactional reads of x cannot straddle the external write:
  // either both see 0, or both see 1, or the transaction aborted.
  Program P = parse(R"(name strong-isolation
loc ok 1
thread 0
  txbegin
  load x
  load x
  txend
thread 1
  store x 1
post mem ok 1
post reg 0 r1 0
post reg 0 r2 1
)");
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoMachineTest, LockedRmwIsAtomic) {
  // Two locked increments of x: both observing 0 is impossible.
  Program P = parse(R"(name rmw
thread 0
  load x excl rmw:1
  store x 1 excl rmw:0
thread 1
  load x excl rmw:1
  store x 1 excl rmw:0
post reg 0 r0 0
post reg 1 r0 0
)");
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoMachineTest, AgreesWithAxiomaticModelOnClassics) {
  // The operational machine is sound and complete for these shapes with
  // respect to the Fig. 5 axiomatic model: identical outcome sets.
  const char *Tests[] = {
      R"(name SB
thread 0
  store x 1
  load y
thread 1
  store y 1
  load x
)",
      R"(name MP
thread 0
  store x 1
  store y 1
thread 1
  load y
  load x
)",
      R"(name 2+2W
thread 0
  store x 1
  store y 2
thread 1
  store y 1
  store x 2
)",
  };
  X86Model Model;
  for (const char *Src : Tests) {
    Program P = parse(Src);
    TsoMachine M(P);
    std::vector<Outcome> Operational = M.reachableOutcomes();
    std::vector<Outcome> Axiomatic = allowedOutcomes(P, Model);
    EXPECT_EQ(Operational, Axiomatic) << P.Name;
  }
}

} // namespace
