//===- CppModel.cpp - C++ (RC11) with transactions ---------------------------==//

#include "models/CppModel.h"

using namespace tmw;

const char *CppModel::name() const { return Cfg.Tsw ? "C+++TM" : "C++"; }

Relation CppModel::synchronisesWith(const ExecutionAnalysis &A) const {
  return A.cppSynchronisesWith();
}

Relation CppModel::transactionalSw(const ExecutionAnalysis &A) const {
  return A.cppTransactionalSw();
}

Relation CppModel::happensBefore(const ExecutionAnalysis &A) const {
  Relation Sw = A.cppSynchronisesWith();
  if (Cfg.Tsw)
    Sw |= A.cppTransactionalSw();
  return (Sw | A.po()).transitiveClosure();
}

Relation CppModel::pscFrom(const ExecutionAnalysis &A,
                           const Relation &Hb) const {
  unsigned N = A.size();
  Relation HbOpt = Hb.optional();
  Relation Eco = A.com().transitiveClosure();
  const Relation &Sloc = A.sloc();

  EventSet Sc = A.seqCst();
  EventSet Fsc = Sc & A.fences();
  Relation IdSc = Relation::identityOn(Sc, N);
  Relation IdFsc = Relation::identityOn(Fsc, N);

  // scb = po u (po \ sloc ; hb ; po \ sloc) u (hb n sloc) u co u fr.
  Relation PoNonLoc = A.po() - Sloc;
  Relation Scb = A.po() | PoNonLoc.compose(Hb).compose(PoNonLoc) |
                 (Hb & Sloc) | A.co() | A.fr();

  Relation Left = IdSc | IdFsc.compose(HbOpt);
  Relation Right = IdSc | HbOpt.compose(IdFsc);
  Relation PscBase = Left.compose(Scb).compose(Right);
  Relation PscF =
      IdFsc.compose(Hb | Hb.compose(Eco).compose(Hb)).compose(IdFsc);
  return PscBase | PscF;
}

Relation CppModel::psc(const ExecutionAnalysis &A) const {
  return pscFrom(A, happensBefore(A));
}

Relation CppModel::conflicts(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  EventSet W = A.writes(), R = A.reads();
  Relation Cnf = (Relation::cross(W, W, N) | Relation::cross(R, W, N) |
                  Relation::cross(W, R, N)) &
                 A.sloc();
  return Cnf - Relation::identityOn(A.universe(), N);
}

bool CppModel::raceFree(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  EventSet Ato = A.atomics();
  Relation Hb = happensBefore(A);
  Relation Races = conflicts(A) - Relation::cross(Ato, Ato, N) -
                   (Hb | Hb.inverse());
  return Races.isEmpty();
}

ConsistencyResult CppModel::check(const ExecutionAnalysis &A) const {
  Relation Hb = happensBefore(A);
  const Relation &Com = A.com();

  if (!Hb.compose(Com.reflexiveTransitiveClosure()).isIrreflexive())
    return ConsistencyResult::fail("HbCom");

  if (!(A.rmw() & A.fre().compose(A.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  if (!(A.po() | A.rf()).isAcyclic())
    return ConsistencyResult::fail("NoThinAir");

  if (!pscFrom(A, Hb).isAcyclic())
    return ConsistencyResult::fail("SeqCst");

  return ConsistencyResult::ok();
}
