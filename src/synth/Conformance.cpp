//===- Conformance.cpp - Conformance-test synthesis ----------------------------==//

#include "synth/Conformance.h"

#include <chrono>
#include <optional>
#include <thread>
#include <unordered_set>

using namespace tmw;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Result of one enumeration shard, merged by the caller.
struct ShardResult {
  bool Finished = true;
  uint64_t BasesVisited = 0, PlacementsVisited = 0;
  std::vector<Execution> Tests;
  std::vector<uint64_t> Hashes;
  std::vector<double> FoundAtSeconds;
};

/// Run one shard of the Forbid search. Each shard owns its enumeration
/// buffer and analysis arena; the models are const and stateless, so
/// sharing them across shards is safe.
ShardResult runForbidShard(const MemoryModel &TmModel,
                           const MemoryModel &Baseline, const Vocabulary &V,
                           unsigned NumEvents, double BudgetSeconds,
                           unsigned Shard, unsigned NumShards,
                           std::chrono::steady_clock::time_point Start) {
  ShardResult Res;
  // Shard-local dedup; the final cross-shard merge dedups again.
  std::unordered_set<uint64_t> Seen;
  // The arena is retargeted per base and transaction-invalidated per
  // placement, so base-derived relations (fr, com, fences, ...) are
  // computed once per base and shared by every placement over it.
  std::optional<ExecutionAnalysis> Arena;

  ExecutionEnumerator Enum(V, NumEvents);
  Res.Finished = Enum.forEachBaseSharded(Shard, NumShards, [&](Execution
                                                                   &Base) {
    ++Res.BasesVisited;
    if ((Res.BasesVisited & 0x3ff) == 0 &&
        secondsSince(Start) > BudgetSeconds)
      return false;
    if (!Arena)
      Arena.emplace(Base);
    else
      Arena->reset(Base);
    // Forbid tests are consistent under the baseline; the baseline ignores
    // transactions, so this prunes before any placement is tried.
    if (!Baseline.consistent(*Arena))
      return true;
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      ++Res.PlacementsVisited;
      Arena->invalidateTransactionalState();
      if (TmModel.consistent(*Arena))
        return true;
      if (!isMinimallyInconsistent(*Arena, TmModel, V))
        return true;
      uint64_t H = canonicalHash(X);
      if (Seen.insert(H).second) {
        Res.Tests.push_back(X);
        Res.Hashes.push_back(H);
        Res.FoundAtSeconds.push_back(secondsSince(Start));
      }
      return true;
    });
  });
  return Res;
}

} // namespace

ForbidSuite tmw::synthesizeForbid(const MemoryModel &TmModel,
                                  const MemoryModel &Baseline,
                                  const Vocabulary &V, unsigned NumEvents,
                                  double BudgetSeconds, unsigned Jobs) {
  ForbidSuite Suite;
  Suite.NumEvents = NumEvents;
  auto Start = std::chrono::steady_clock::now();

  // There are only NumEvents distinct first skeleton decisions; extra
  // shards would be empty.
  unsigned NumShards = std::max(1u, std::min(Jobs, NumEvents));
  std::vector<ShardResult> Shards(NumShards);
  if (NumShards == 1) {
    Shards[0] = runForbidShard(TmModel, Baseline, V, NumEvents,
                               BudgetSeconds, 0, 1, Start);
  } else {
    std::vector<std::thread> Workers;
    Workers.reserve(NumShards);
    for (unsigned S = 0; S < NumShards; ++S)
      Workers.emplace_back([&, S] {
        Shards[S] = runForbidShard(TmModel, Baseline, V, NumEvents,
                                   BudgetSeconds, S, NumShards, Start);
      });
    for (std::thread &W : Workers)
      W.join();
  }

  // Merge: concatenate in shard order, deduplicating across shards (two
  // shards can find symmetry-equivalent tests with equal canonical
  // hashes). The resulting set is shard-count-independent; the surviving
  // representative of each canonical class follows shard order.
  std::unordered_set<uint64_t> Seen;
  Suite.Complete = true;
  for (const ShardResult &R : Shards) {
    Suite.Complete = Suite.Complete && R.Finished;
    Suite.BasesVisited += R.BasesVisited;
    Suite.PlacementsVisited += R.PlacementsVisited;
    for (unsigned I = 0; I < R.Tests.size(); ++I)
      if (Seen.insert(R.Hashes[I]).second) {
        Suite.Tests.push_back(R.Tests[I]);
        Suite.FoundAtSeconds.push_back(R.FoundAtSeconds[I]);
      }
  }
  Suite.SynthesisSeconds = secondsSince(Start);
  return Suite;
}

std::vector<Execution>
tmw::relaxationsOf(const std::vector<Execution> &Forbid,
                   const Vocabulary &V) {
  std::vector<Execution> Out;
  std::unordered_set<uint64_t> Seen;
  for (const Execution &X : Forbid)
    for (const Execution &Child : relaxOneStep(X, V))
      if (Seen.insert(canonicalHash(Child)).second)
        Out.push_back(Child);
  return Out;
}

std::vector<unsigned>
tmw::txnCountHistogram(const std::vector<Execution> &Tests) {
  std::vector<unsigned> Hist;
  for (const Execution &X : Tests) {
    unsigned N = X.numTxns();
    if (Hist.size() <= N)
      Hist.resize(N + 1, 0);
    ++Hist[N];
  }
  return Hist;
}
