//===- relation_test.cpp - Relational algebra unit tests ----------------------==//

#include "relation/Relation.h"

#include <gtest/gtest.h>

#include <random>

using namespace tmw;

namespace {

Relation chain(unsigned N) {
  Relation R(N);
  for (unsigned I = 0; I + 1 < N; ++I)
    R.insert(I, I + 1);
  return R;
}

TEST(EventSetTest, BasicOperations) {
  EventSet S;
  EXPECT_TRUE(S.empty());
  S.insert(3);
  S.insert(7);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(4));
  S.erase(3);
  EXPECT_FALSE(S.contains(3));
  EXPECT_EQ(S.size(), 1u);
}

TEST(EventSetTest, SetAlgebra) {
  EventSet A = EventSet::singleton(1) | EventSet::singleton(2);
  EventSet B = EventSet::singleton(2) | EventSet::singleton(3);
  EXPECT_EQ((A & B), EventSet::singleton(2));
  EXPECT_EQ((A - B), EventSet::singleton(1));
  EXPECT_EQ((A | B).size(), 3u);
}

TEST(EventSetTest, UniverseAndComplement) {
  EventSet U = EventSet::universe(5);
  EXPECT_EQ(U.size(), 5u);
  EventSet S = EventSet::singleton(0);
  EXPECT_EQ(S.complement(5).size(), 4u);
  EXPECT_FALSE(S.complement(5).contains(0));
}

TEST(EventSetTest, Iteration) {
  EventSet S;
  S.insert(5);
  S.insert(1);
  S.insert(9);
  std::vector<EventId> Got;
  for (EventId E : S)
    Got.push_back(E);
  EXPECT_EQ(Got, (std::vector<EventId>{1, 5, 9}));
}

TEST(RelationTest, InsertContainsErase) {
  Relation R(4);
  EXPECT_TRUE(R.isEmpty());
  R.insert(0, 3);
  EXPECT_TRUE(R.contains(0, 3));
  EXPECT_FALSE(R.contains(3, 0));
  EXPECT_EQ(R.numPairs(), 1u);
  R.erase(0, 3);
  EXPECT_TRUE(R.isEmpty());
}

TEST(RelationTest, ComposeChains) {
  Relation R = chain(4);
  Relation RR = R.compose(R);
  EXPECT_TRUE(RR.contains(0, 2));
  EXPECT_TRUE(RR.contains(1, 3));
  EXPECT_FALSE(RR.contains(0, 1));
  EXPECT_EQ(RR.numPairs(), 2u);
}

TEST(RelationTest, TransitiveClosureOfChain) {
  Relation R = chain(4).transitiveClosure();
  EXPECT_EQ(R.numPairs(), 6u); // 3 + 2 + 1
  EXPECT_TRUE(R.contains(0, 3));
  EXPECT_FALSE(R.contains(3, 0));
  EXPECT_TRUE(R.isAcyclic());
}

TEST(RelationTest, CycleDetection) {
  Relation R = chain(3);
  EXPECT_TRUE(R.isAcyclic());
  R.insert(2, 0);
  EXPECT_FALSE(R.isAcyclic());
  // A self-loop is a cycle too.
  Relation Self(2);
  Self.insert(1, 1);
  EXPECT_FALSE(Self.isAcyclic());
}

TEST(RelationTest, InverseInvolution) {
  Relation R(5);
  R.insert(0, 2);
  R.insert(2, 4);
  R.insert(1, 1);
  EXPECT_EQ(R.inverse().inverse(), R);
  EXPECT_TRUE(R.inverse().contains(2, 0));
}

TEST(RelationTest, IdentityAndCross) {
  EventSet S = EventSet::singleton(1) | EventSet::singleton(3);
  Relation Id = Relation::identityOn(S, 4);
  EXPECT_EQ(Id.numPairs(), 2u);
  EXPECT_TRUE(Id.contains(1, 1));
  Relation Cross = Relation::cross(S, EventSet::singleton(0), 4);
  EXPECT_EQ(Cross.numPairs(), 2u);
  EXPECT_TRUE(Cross.contains(3, 0));
}

TEST(RelationTest, DomainRange) {
  Relation R(4);
  R.insert(0, 1);
  R.insert(0, 2);
  R.insert(3, 1);
  EXPECT_EQ(R.domain(), (EventSet::singleton(0) | EventSet::singleton(3)));
  EXPECT_EQ(R.range(), (EventSet::singleton(1) | EventSet::singleton(2)));
  EXPECT_EQ(R.field().size(), 4u);
}

TEST(RelationTest, RestrictionAndComplement) {
  Relation R = chain(4);
  EXPECT_EQ(R.restrictDomain(EventSet::singleton(1)).numPairs(), 1u);
  EXPECT_EQ(R.restrictRange(EventSet::singleton(1)).numPairs(), 1u);
  Relation C = R.complement();
  EXPECT_EQ(C.numPairs(), 16u - 3u);
  for (unsigned A = 0; A < 4; ++A)
    for (unsigned B = 0; B < 4; ++B)
      EXPECT_NE(R.contains(A, B), C.contains(A, B));
}

TEST(RelationTest, OptionalAddsIdentity) {
  Relation R = chain(3).optional();
  EXPECT_TRUE(R.contains(0, 0));
  EXPECT_TRUE(R.contains(2, 2));
  EXPECT_EQ(R.numPairs(), 5u);
}

TEST(RelationTest, SubsetOf) {
  Relation R = chain(4);
  EXPECT_TRUE(R.subsetOf(R.transitiveClosure()));
  EXPECT_FALSE(R.transitiveClosure().subsetOf(R));
}

TEST(LiftTest, WeakLiftNeedsBothEndsInClasses) {
  // Two singleton transactions {0} and {2}; event 1 unclassified.
  Relation T(3);
  T.insert(0, 0);
  T.insert(2, 2);
  Relation R(3);
  R.insert(0, 2); // between transactions: lifted
  R.insert(0, 1); // to a non-transactional event: not lifted
  Relation W = weakLift(R, T);
  EXPECT_TRUE(W.contains(0, 2));
  EXPECT_FALSE(W.contains(0, 1));
}

TEST(LiftTest, StrongLiftIncludesOutsideEndpoints) {
  Relation T(3);
  T.insert(0, 0);
  Relation R(3);
  R.insert(1, 0); // into the transaction from outside
  R.insert(0, 2); // out of the transaction
  Relation S = strongLift(R, T);
  EXPECT_TRUE(S.contains(1, 0));
  EXPECT_TRUE(S.contains(0, 2));
  // weaklift sees neither.
  EXPECT_TRUE(weakLift(R, T).isEmpty());
}

TEST(LiftTest, LiftTreatsTransactionAsOneNode) {
  // Transaction {0,1}; edges 2->0 and 1->3 lift to edges covering the
  // whole class, creating 2 -> {0,1} -> 3.
  Relation T(4);
  for (EventId A : {0, 1})
    for (EventId B : {0, 1})
      T.insert(A, B);
  Relation R(4);
  R.insert(2, 0);
  R.insert(1, 3);
  Relation S = strongLift(R, T);
  EXPECT_TRUE(S.contains(2, 1));
  EXPECT_TRUE(S.contains(0, 3));
  // Composing finds the communication path through the transaction.
  EXPECT_TRUE(S.compose(S).contains(2, 3));
}

//===----------------------------------------------------------------------===
// Property sweeps over random relations.
//===----------------------------------------------------------------------===

class RandomRelationTest : public ::testing::TestWithParam<unsigned> {
protected:
  Relation randomRelation(std::mt19937 &Rng, unsigned N, double Density) {
    Relation R(N);
    std::bernoulli_distribution Flip(Density);
    for (unsigned A = 0; A < N; ++A)
      for (unsigned B = 0; B < N; ++B)
        if (Flip(Rng))
          R.insert(A, B);
    return R;
  }
};

TEST_P(RandomRelationTest, AlgebraicLaws) {
  std::mt19937 Rng(GetParam());
  unsigned N = 2 + GetParam() % 7;
  Relation R = randomRelation(Rng, N, 0.3);
  Relation S = randomRelation(Rng, N, 0.3);
  Relation T = randomRelation(Rng, N, 0.3);

  // Composition is associative.
  EXPECT_EQ(R.compose(S).compose(T), R.compose(S.compose(T)));
  // Composition distributes over union.
  EXPECT_EQ(R.compose(S | T), (R.compose(S) | R.compose(T)));
  // Inverse is an involution and reverses composition.
  EXPECT_EQ(R.inverse().inverse(), R);
  EXPECT_EQ(R.compose(S).inverse(), S.inverse().compose(R.inverse()));
  // De Morgan for sets of pairs.
  EXPECT_EQ((R | S).complement(), (R.complement() & S.complement()));
}

TEST_P(RandomRelationTest, ClosureLaws) {
  std::mt19937 Rng(GetParam() * 7919 + 1);
  unsigned N = 2 + GetParam() % 7;
  Relation R = randomRelation(Rng, N, 0.25);

  Relation Plus = R.transitiveClosure();
  // Closure is idempotent and contains the relation.
  EXPECT_EQ(Plus.transitiveClosure(), Plus);
  EXPECT_TRUE(R.subsetOf(Plus));
  // r+ is transitive.
  EXPECT_TRUE(Plus.compose(Plus).subsetOf(Plus));
  // r* = r+ u id.
  EXPECT_EQ(R.reflexiveTransitiveClosure(), Plus.optional());
  // Acyclicity agrees between r and r+.
  EXPECT_EQ(R.isAcyclic(), Plus.isIrreflexive());
}

TEST_P(RandomRelationTest, LiftDefinitions) {
  std::mt19937 Rng(GetParam() * 104729 + 3);
  unsigned N = 3 + GetParam() % 5;
  Relation R = randomRelation(Rng, N, 0.3);
  // Build a partial equivalence: a random block of events.
  Relation T(N);
  std::bernoulli_distribution Flip(0.5);
  EventSet Block;
  for (unsigned E = 0; E < N; ++E)
    if (Flip(Rng))
      Block.insert(E);
  for (EventId A : Block)
    for (EventId B : Block)
      T.insert(A, B);

  EXPECT_EQ(weakLift(R, T), T.compose(R - T).compose(T));
  EXPECT_EQ(strongLift(R, T),
            T.optional().compose(R - T).compose(T.optional()));
  // weaklift is contained in stronglift.
  EXPECT_TRUE(weakLift(R, T).subsetOf(strongLift(R, T)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRelationTest,
                         ::testing::Range(0u, 24u));

} // namespace
