//===- ContractAudit.h - Differential metadata-contract auditor -*- C++ -*-==//
///
/// \file
/// Mechanical verification of the annotation contracts the engine's
/// caching soundness rests on. Three metadata contracts are load-bearing
/// and, before this subsystem, were checked only by eyeballs:
///
///  * `Axiom::Salt` (models/Axiom.h) — the mask bits a term function
///    reads. The cross-spec evaluation plan hash-conses obligations on
///    `(Term, Mask & Salt)`; an under-declared salt silently aliases
///    distinct relations and corrupts verdicts for *every* frontend.
///  * `ExecutionAnalysis::memoTerm` salts — the per-call memoization keys
///    inside compound terms. A memoTerm salt narrower than what the
///    closure actually reads poisons the shared per-candidate cache.
///  * `memoTerm`'s `TxnDependent` flag — whether a cached term survives
///    `invalidateTransactionalState()`. A term that reads the transaction
///    labelling but claims independence serves stale relations to the
///    placement search.
///  * `Axiom::Footprint` (models/Axiom.h) — the vocabulary classes a term
///    can produce edges from. Plan specialization pre-discharges an
///    obligation to its vacuous verdict on every program whose vocabulary
///    is disjoint from the declared footprint; an under-declared
///    footprint silently skips a live constraint and corrupts verdicts.
///
/// All three are audited *differentially*, in the Herding Cats spirit of
/// cross-validating model artifacts rather than trusting them: probe
/// executions are drawn from the litmus corpus and from the enumerated
/// candidates (bases and transaction placements) of every architecture's
/// vocabulary, and on each probe every axiom term of every audited model
/// is evaluated several ways that the contracts promise agree:
///
///  1. *Salt soundness* — for every mask bit `b` outside an axiom's
///     declared `Salt`, `Term(A, M)` and `Term(A, M ^ b)` are evaluated
///     on fresh `Recompute`-mode analyses (so memoization cannot mask a
///     discrepancy) and must be bit-identical. A mismatch is an
///     under-declared salt: reported as model/axiom/bit with a witness
///     execution. A companion *precision* report lists salt bits that
///     never changed any probe's output — over-declaration only forfeits
///     plan sharing, so those are advisory, not failures.
///  2. *Memoization coherence* — every term is also evaluated through one
///     shared memoized analysis (reset per probe, shared across all
///     models and masks, as in production) and compared against the fresh
///     recompute: a memoTerm salt narrower than the term's real footprint
///     returns a stale cached relation for some mask pair.
///  3. *Invalidation honesty* — over enumerated bases, terms are
///     evaluated to populate a memoized arena, then each transaction
///     placement mutates the execution and calls
///     `invalidateTransactionalState()` exactly as the placement search
///     does; the re-evaluated cached term must equal a from-scratch
///     recompute. A `TxnDependent=false` entry that reads txn state
///     survives the invalidation and is caught here.
///  4. *Footprint soundness* — on every probe whose execution vocabulary
///     (lint/Lint.h `executionVocabulary`) is disjoint from an axiom's
///     declared `Footprint`, the term's relation must be *empty* (that
///     emptiness is exactly what licenses the plan's vacuous-verdict
///     discharge). A nonempty relation on a disjoint probe is an
///     under-declared footprint — a soundness failure, caught at any
///     audited mask. Over-declaration (up to the always-safe `~0u`) only
///     forfeits specialization and is never reported.
///
/// The auditor walks `ModelRegistry` / `MemoryModel::axioms()`
/// generically, so new models and axioms are covered with zero new audit
/// code; `tmw_audit` is the CLI (with `--json` for CI) and
/// tests/audit_test.cpp pins the auditor against deliberately broken
/// fixture models.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_AUDIT_CONTRACTAUDIT_H
#define TMW_AUDIT_CONTRACTAUDIT_H

#include "models/MemoryModel.h"

#include <span>
#include <string>
#include <vector>

namespace tmw {

/// The four audit passes (see file comment).
enum class AuditPass : uint8_t { Salt, Memoization, Invalidation,
                                 Footprint };

/// Stable lowercase pass name ("salt", "memoization", "invalidation",
/// "footprint").
const char *auditPassName(AuditPass P);

/// One contract violation. Every finding is a *soundness* failure: the
/// annotated metadata and the term's observed behaviour disagree on a
/// concrete execution.
struct AuditFinding {
  AuditPass Pass;
  /// Audited model (canonical registry spec, or the model's name for
  /// hand-built instances).
  std::string Model;
  /// Offending axiom-table entry.
  std::string Axiom;
  /// For the salt pass: the flipped mask bit the term turned out to read.
  /// -1 for the other passes.
  int Bit = -1;
  /// Name of the axiom at `Bit` in the model's table, when in range.
  std::string BitName;
  /// Probe provenance, e.g. "corpus:SB+txns#3" or "vocab:x86#17+txn2".
  std::string Probe;
  /// One-line description of the disagreement.
  std::string Detail;
  /// `Execution::dump()` of the witness probe.
  std::string Witness;
};

/// Advisory note: a declared salt bit that no probe's output ever
/// depended on. Over-declaration is sound (it only forfeits cross-spec
/// plan sharing), and the probe set is finite, so this is a hint — never
/// a failure.
struct SaltPrecisionNote {
  std::string Model;
  std::string Axiom;
  int Bit = -1;
  std::string BitName;
};

/// Work accounting of one audit run.
struct AuditCounters {
  uint64_t Probes = 0;        ///< Distinct executions audited (passes 1+2).
  uint64_t CorpusProbes = 0;  ///< ... of which corpus candidates.
  uint64_t VocabProbes = 0;   ///< ... of which enumerated (incl. placements).
  uint64_t Bases = 0;         ///< Bases swept by the invalidation pass.
  uint64_t Placements = 0;    ///< Placements audited by the invalidation pass.
  uint64_t Units = 0;         ///< Distinct (term, mask, salt) audit units.
  uint64_t TermEvals = 0;     ///< Term evaluations performed in total.
  uint64_t FootprintChecks = 0; ///< Emptiness checks on footprint-disjoint
                                ///< (unit, probe) pairs (pass 4).
};

/// Result of one audit run. `sound()` is the CI gate: no resolution
/// error and no soundness finding (precision notes do not count).
struct AuditReport {
  std::vector<AuditFinding> Findings;
  std::vector<SaltPrecisionNote> Precision;
  /// The audited specs, canonical, in audit order.
  std::vector<std::string> Specs;
  AuditCounters Counters;
  unsigned Events = 0;
  /// Non-empty when the run could not start (unknown model spec).
  std::string Error;
  /// True when `MaxFindings` stopped finding collection early (the run is
  /// still unsound; only the report is truncated).
  bool Truncated = false;

  bool sound() const { return Error.empty() && Findings.empty(); }
};

/// Audit configuration. The default caps keep a full-registry audit in
/// CI-smoke territory; raise them (or the event bound) for a deeper
/// sweep. Every cap of 0 means "unlimited".
struct AuditOptions {
  /// Registry specs to audit; empty = `defaultAuditSpecs()`.
  std::vector<std::string> ModelSpecs;
  /// Event bound of the vocabulary enumerations.
  unsigned Events = 3;
  /// Probe caps: candidates per corpus entry (passes 1+2), bases per
  /// vocabulary (all passes), and transaction placements per base.
  uint64_t CorpusCandidateCap = 12;
  uint64_t VocabBaseCap = 40;
  uint64_t PlacementCap = 3;
  /// Probe sources (both on by default).
  bool Corpus = true;
  bool Vocabularies = true;
  /// Collect the advisory salt-precision report.
  bool Precision = true;
  /// Stop recording findings past this count (0 = unlimited).
  uint64_t MaxFindings = 64;
};

/// The default audit matrix: every registered architecture, its
/// `+baseline` configuration (exercising the transaction-independent
/// caching paths), and every named hardware-substitute wrapper.
std::vector<std::string> defaultAuditSpecs();

/// Audit the registry specs of \p O (or the default matrix). Spec
/// resolution failures land in `AuditReport::Error`.
AuditReport auditContracts(const AuditOptions &O = {});

/// Audit pre-resolved model instances. \p Names, when non-empty, labels
/// `Models` in the report (parallel spans); otherwise `name()` is used.
/// This is the entry point the fixture tests drive with deliberately
/// broken models.
AuditReport auditModels(std::span<const MemoryModel *const> Models,
                        std::span<const std::string> Names,
                        const AuditOptions &O = {});

} // namespace tmw

#endif // TMW_AUDIT_CONTRACTAUDIT_H
