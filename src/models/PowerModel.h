//===- PowerModel.h - Power with transactions -------------------*- C++ -*-==//
///
/// \file
/// The Power memory model of Fig. 6: the herding-cats Power model (Alglave
/// et al., TOPLAS 2014) — including the ii/ic/ci/cc preserved-program-order
/// fixpoint that the paper elides — with the paper's TM additions:
///
///  * tfence    — implicit barriers at transaction boundaries;
///  * tprop1    — the transaction's integrated memory barrier (§5.2 (1));
///  * tprop2    — multicopy-atomic propagation of transactional writes
///                (§5.2 (2));
///  * thb       — the transaction serialisation order (§5.2 (3));
///  * StrongIsol, TxnOrder, and TxnCancelsRMW.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_POWERMODEL_H
#define TMW_MODELS_POWERMODEL_H

#include "models/MemoryModel.h"

namespace tmw {

/// Power (Fig. 6). Default configuration enables all TM axioms.
class PowerModel : public MemoryModel {
public:
  struct Config {
    bool Tfence = true;
    bool StrongIsol = true;
    bool TxnOrder = true;
    bool TxnCancelsRmw = true;
    /// tprop1: write observed by a transaction propagates before the
    /// transaction's own writes.
    bool TProp1 = true;
    /// tprop2: transactional writes are multicopy-atomic.
    bool TProp2 = true;
    /// thb: successful transactions serialise in a consistent order.
    bool Thb = true;

    static Config baseline() {
      return {false, false, false, false, false, false, false};
    }
  };

  PowerModel() = default;
  explicit PowerModel(Config C) : Cfg(C) {}

  const char *name() const override;
  Arch arch() const override { return Arch::Power; }
  ConsistencyResult check(const ExecutionAnalysis &A) const override;

  /// Preserved program order (the herding-cats ii/ic/ci/cc fixpoint).
  Relation preservedProgramOrder(const ExecutionAnalysis &A) const;
  /// The happens-before relation of Fig. 6 under this configuration.
  Relation happensBefore(const ExecutionAnalysis &A) const;

  const Config &config() const { return Cfg; }

private:
  Config Cfg;
};

} // namespace tmw

#endif // TMW_MODELS_POWERMODEL_H
