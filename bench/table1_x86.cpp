//===- table1_x86.cpp - Table 1, x86 rows --------------------------------------==//
///
/// Regenerates the x86 half of Table 1: per event count, the synthesis
/// time, the Forbid suite (count / seen / not seen) and the Allow suite
/// (count / seen / not seen). "Hardware" is the operational x86-TSO+TSX
/// machine (exhaustive interleavings), standing in for the paper's four
/// TSX parts; every test is also run as a 1M-run sampled campaign.
///
/// The paper's bound is |E| <= 7 with a SAT back-end and multi-hour
/// budgets; the explicit search here is exhaustive at the configured
/// bound (default 4, env TMW_BENCH_MAX_EVENTS to push further) and
/// reports Complete=no when the budget interrupts, mirroring the paper's
/// timeout rows.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "hw/LitmusRunner.h"
#include "hw/TsoMachine.h"
#include "litmus/FromExecution.h"
#include "models/X86Model.h"
#include "synth/Conformance.h"
#include "synth/SuiteIO.h"

#include <map>
#include <vector>

using namespace tmw;

int main(int argc, char **argv) {
  bench::header("Table 1 (x86): testing the transactional x86 model",
                "Table 1, left half; §5.3");

  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  unsigned MaxE = bench::maxEvents(5);
  double Budget = bench::budgetSeconds(120.0);
  unsigned Jobs = bench::jobs(argc, argv);

  std::printf("%4s %12s %9s %7s %5s %5s | %7s %5s %5s %9s\n", "|E|",
              "synth(s)", "complete", "Forbid", "S", "!S", "Allow", "S",
              "!S", "");
  unsigned TotForbid = 0, TotForbidSeen = 0, TotAllow = 0, TotAllowSeen = 0;
  std::vector<Execution> AllForbid;

  // Allow tests: raw postcondition observation (as in the paper). Forbid
  // tests: a soundness violation is only claimed when the observed
  // outcome has no model-consistent explanation (footnote 2).
  auto SeenOnTso = [](const Execution &X) {
    Program P = programFromExecution(X, "t").Prog;
    TsoMachine M(P);
    return M.postconditionObservable();
  };
  auto ForbiddenSeenOnTso = [&Tm](const Execution &X) {
    Program P = programFromExecution(X, "t").Prog;
    TsoMachine M(P);
    return observedForbiddenBehaviour(P, Tm, M.reachableOutcomes());
  };

  for (unsigned N = 2; N <= MaxE; ++N) {
    ForbidSuite S = synthesizeForbid(Tm, Baseline, V, N, Budget, Jobs);
    unsigned Seen = 0;
    for (const Execution &X : S.Tests)
      Seen += ForbiddenSeenOnTso(X);
    AllForbid.insert(AllForbid.end(), S.Tests.begin(), S.Tests.end());
    TotForbid += S.Tests.size();
    TotForbidSeen += Seen;
    std::printf("%4u %12.2f %9s %7zu %5u %5zu |\n", N, S.SynthesisSeconds,
                bench::yesNo(S.Complete), S.Tests.size(), Seen,
                S.Tests.size() - Seen);
  }

  // Allow suite: one-step relaxations of every Forbid test, bucketed by
  // event count (relaxations of (n+1)-event tests appear at n events).
  std::map<unsigned, std::pair<unsigned, unsigned>> AllowBySize;
  for (const Execution &X : relaxationsOf(AllForbid, V)) {
    auto &[T, Sn] = AllowBySize[X.size()];
    ++T;
    Sn += SeenOnTso(X);
  }
  for (const auto &[N, TS] : AllowBySize) {
    std::printf("%4u %12s %9s %7s %5s %5s | %7u %5u %5u\n", N, "-", "-",
                "-", "-", "-", TS.first, TS.second, TS.first - TS.second);
    TotAllow += TS.first;
    TotAllowSeen += TS.second;
  }
  std::printf("Total (x86): Forbid %u (seen %u, not seen %u); "
              "Allow %u (seen %u, not seen %u)\n",
              TotForbid, TotForbidSeen, TotForbid - TotForbidSeen,
              TotAllow, TotAllowSeen, TotAllow - TotAllowSeen);

  // §5.3 transaction-count breakdown of the Forbid suite.
  std::vector<unsigned> Hist = txnCountHistogram(AllForbid);
  std::printf("Forbid tests by transaction count:");
  for (unsigned I = 1; I < Hist.size(); ++I)
    std::printf("  %u txn: %u (%.0f%%)", I, Hist[I],
                TotForbid ? 100.0 * Hist[I] / TotForbid : 0.0);
  std::printf("\n");

  std::printf("\nPaper (SAT back-end, |E|<=7): 508 Forbid (0 seen), 3726 "
              "Allow (3101 seen);\nno Forbid test observable — matched "
              "here: %s.\n",
              TotForbidSeen == 0 ? "yes" : "NO (soundness violation!)");

  // Companion material: export the suite as litmus files.
  SuiteExport Ex = writeSuite("suites/x86-forbid", "x86-forbid", AllForbid,
                              /*Forbidden=*/true);
  if (Ex)
    std::printf("Exported %u Forbid tests to suites/x86-forbid/.\n",
                Ex.FilesWritten);
  return 0;
}
