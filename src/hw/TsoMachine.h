//===- TsoMachine.h - Operational x86-TSO + TSX machine ---------*- C++ -*-==//
///
/// \file
/// An operational x86 machine in the x86-TSO style (Owens et al., TPHOLs
/// 2009) extended with TSX-like transactions, used as the stand-in for the
/// paper's Haswell/Broadwell/Skylake/Kabylake testbeds:
///
///  * each hardware thread owns a FIFO store buffer; loads snoop the local
///    buffer, stores enqueue, and buffered stores drain to memory at
///    non-deterministic points — giving exactly the store-load reordering
///    TSO permits;
///  * MFENCE and locked RMWs stall until the local buffer is empty;
///  * transactions buffer their writes, track read/write sets, detect
///    conflicts eagerly against other threads' committed stores, and
///    commit atomically with the ordering semantics of a locked
///    instruction (Intel SDM §16.3.6) — transaction boundaries drain the
///    store buffer;
///  * transactions may also abort spontaneously at txbegin, exercising the
///    abort handler (which zeroes `ok`).
///
/// The machine explores *all* interleavings (DFS with state memoisation),
/// so "never observed" verdicts are exhaustive rather than statistical.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_HW_TSOMACHINE_H
#define TMW_HW_TSOMACHINE_H

#include "litmus/Program.h"

#include <set>
#include <vector>

namespace tmw {

/// Exhaustive operational exploration of a litmus program on x86-TSO+TSX.
class TsoMachine {
public:
  explicit TsoMachine(const Program &P) : P(P) {}

  /// All final outcomes reachable on the machine, sorted and deduplicated.
  std::vector<Outcome> reachableOutcomes();

  /// True when some reachable outcome satisfies the postcondition.
  bool postconditionObservable();

private:
  const Program &P;
};

} // namespace tmw

#endif // TMW_HW_TSOMACHINE_H
