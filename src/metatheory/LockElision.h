//===- LockElision.h - Checking lock elision (§8.3) -------------*- C++ -*-==//
///
/// \file
/// Validates lock elision against the hardware TM models by treating the
/// library implementation as a program transformation (§4.3, §8.3):
///
///  * *abstract* executions contain L/U (really-locked) and Lt/Ut (elided)
///    method-call events delimiting critical regions; the specification
///    extends the architecture model with CROrder — critical regions are
///    serialisable;
///  * the *concrete* execution replaces each lock method with its
///    implementation per Table 3 (the architecture's recommended spinlock;
///    elided CRs become transactions whose first event reads the lock
///    variable) and completes rf/co over the fresh lock variable subject
///    to LockVar, TxnIntro, and TxnReadsLockFree;
///  * lock elision is *unsound* when some spec-forbidden abstract
///    execution (CROrder violated, architecture axioms satisfied) maps to
///    a consistent concrete execution.
///
/// On ARMv8 this search rediscovers the paper's Example 1.1 / Fig. 10
/// counterexample; appending a DMB to lock() (the "fixed" spinlock)
/// removes it.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_METATHEORY_LOCKELISION_H
#define TMW_METATHEORY_LOCKELISION_H

#include "models/MemoryModel.h"

#include <vector>

namespace tmw {

/// CROrder (§8.3): acyclic(weaklift(po u com, scr)). Shares `com`/`scr`
/// with any model check already performed on the same analysis.
bool holdsCrOrder(const ExecutionAnalysis &A);

/// Replace the lock method calls of \p Abstract with their implementation
/// for \p A (Table 3). The lock variable's rf/co are left empty — use
/// `lockVarCompletions` to enumerate them. \p FixedSpinlock appends a DMB
/// to the ARMv8 lock() implementation (§1.1's proposed fix).
Execution elideLocks(const Execution &Abstract, Arch A, bool FixedSpinlock);

/// All completions of the lock variable's rf/co in \p Concrete that
/// satisfy the spinlock protocol: acquiring reads and elided-region reads
/// observe the lock free (the initial value or an unlock write, never a
/// lock write — TxnReadsLockFree).
std::vector<Execution> lockVarCompletions(const Execution &Concrete);

/// Result of a bounded lock-elision check.
struct ElisionResult {
  bool CounterexampleFound = false;
  /// Spec-forbidden abstract execution and its consistent concrete image.
  Execution Abstract, Concrete;
  uint64_t AbstractChecked = 0;
  uint64_t ConcreteChecked = 0;
  double Seconds = 0;
  bool Complete = true;
};

/// Search abstract executions (up to \p MaxEvents events, two threads,
/// one critical region each over one shared location) for a witness that
/// lock elision is unsound on \p A under \p TmModel. \p SpecModel is the
/// architecture baseline used for the spec-side axioms.
ElisionResult checkLockElision(const MemoryModel &TmModel,
                               const MemoryModel &SpecModel, Arch A,
                               bool FixedSpinlock, unsigned MaxEvents,
                               double BudgetSeconds = 1e18);

} // namespace tmw

#endif // TMW_METATHEORY_LOCKELISION_H
