//===- Enumerator.h - Exhaustive execution enumeration ----------*- C++ -*-==//
///
/// \file
/// Exhaustive enumeration of executions up to a bounded number of events —
/// the explicit-search substitute for the paper's SAT-backed Memalloy
/// queries (§4.2). Executions are generated in a canonical skeleton form
/// (threads ordered by non-increasing size, locations numbered by first
/// use, program order = event-id order within a thread) and the synthesis
/// layer deduplicates final results up to thread/location symmetry.
///
/// Structural filters sound for *minimal* inconsistent executions are
/// applied during generation: every location has at least two accesses,
/// one of which is a write (an access without a communication edge cannot
/// lie on a violation cycle), and fences are interior to their thread.
///
/// The search space can be partitioned for parallel enumeration two ways:
///
///  * statically (`forEachBaseSharded`): the first branching decision of
///    the canonical-skeleton DFS (the size of the largest thread) is dealt
///    round-robin across shards — simple, but shard sizes are wildly
///    unequal, so it is kept as the load-balance baseline;
///  * by *prefix tasks* (`forEachSkeleton` / `expandPrefix` /
///    `forEachBasePrefixed`): a `BasePrefix` names one subtree of the DFS
///    — a complete skeleton plus the first K event labels — and can be
///    either *expanded* into one child per admissible label of event K or
///    *resumed*, visiting exactly the bases below it. The children of a
///    prefix are produced by the same choice generator the plain DFS
///    recursion uses, so for any expansion depth the frontier partitions
///    the base space exactly (no base visited twice, none missed) and the
///    visit order below one prefix equals the sequential DFS order. This
///    is the resumability contract the work-stealing synthesis
///    (`enumerate/WorkQueue.h`, `synthesizeForbid`) and the canonical-hash
///    dedup depend on; `tests/sharding_differential_test.cpp` pins it.
///
/// Either way, each parallel unit runs with an independent `Execution`
/// buffer and `ExecutionAnalysis` arena; nothing is shared.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_ENUMERATE_ENUMERATOR_H
#define TMW_ENUMERATE_ENUMERATOR_H

#include "enumerate/Prefix.h"
#include "execution/Execution.h"
#include "models/MemoryModel.h"

#include <functional>
#include <vector>

namespace tmw {

/// The event vocabulary available to the enumerator for one architecture:
/// which fence flavours, consistency modes, dependencies, RMW pairs, and
/// transaction forms may appear.
struct Vocabulary {
  Arch A = Arch::X86;
  std::vector<FenceKind> Fences;
  std::vector<MemOrder> ReadOrders = {MemOrder::NonAtomic};
  std::vector<MemOrder> WriteOrders = {MemOrder::NonAtomic};
  /// Orders available on CppFence events (empty unless C++).
  std::vector<MemOrder> FenceOrders;
  /// Enumerate addr/data/ctrl dependencies.
  bool Deps = false;
  /// Enumerate adjacent RMW pairs.
  bool Rmw = true;
  /// Distinguish C++ atomic{} from synchronized{} transactions.
  bool AtomicTxns = false;
  unsigned MaxLocations = 3;
  unsigned MaxThreads = 4;

  /// The vocabulary used for each target in the paper's experiments.
  static Vocabulary forArch(Arch A);
};

/// Exhaustive generator of base (transaction-free) executions and of
/// transaction placements over a base.
class ExecutionEnumerator {
public:
  ExecutionEnumerator(const Vocabulary &V, unsigned NumEvents)
      : Vocab(V), Num(NumEvents) {}

  /// Invoke \p F on every well-formed base execution (the execution is
  /// reused between calls; copy it to keep it). \p F returns false to abort
  /// the enumeration (e.g. on a time budget); the result is false when
  /// aborted.
  bool forEachBase(const std::function<bool(Execution &)> &F) const;

  /// Shard \p Shard of \p NumShards of `forEachBase`: visits exactly the
  /// bases whose first skeleton decision (the largest-thread size) falls to
  /// this shard, so the union over all shards is the full space and the
  /// shards are pairwise disjoint. Shards share nothing and may run on
  /// concurrent threads.
  bool forEachBaseSharded(unsigned Shard, unsigned NumShards,
                          const std::function<bool(Execution &)> &F) const;

  /// Invoke \p F on every canonical skeleton (non-increasing thread-size
  /// vector summing to `numEvents()`, at most `MaxThreads` parts) in DFS
  /// order. The skeletons are the root prefixes (`Labels` empty) of the
  /// prefix-task decomposition.
  void forEachSkeleton(
      const std::function<void(const std::vector<unsigned> &)> &F) const;

  /// The children of \p P: one prefix per admissible label of event
  /// `P.Labels.size()`, in the order the sequential DFS tries them.
  /// Empty when \p P is fully labelled. Replacing any task by its
  /// children preserves exact partitioning of the base space.
  std::vector<BasePrefix> expandPrefix(const BasePrefix &P) const;

  /// Upper bound on the number of labelled completions below \p P (the
  /// product of per-position branching-factor bounds). Strictly shrinks
  /// along any expansion; the pool splits tasks until it falls under a
  /// target cost.
  double estimateCost(const BasePrefix &P) const;

  /// Resume the base DFS below \p P: invoke \p F on exactly the
  /// well-formed bases whose skeleton is `P.Sizes` and whose first
  /// `P.Labels.size()` event labels equal `P.Labels`, in sequential DFS
  /// order. \p F returns false to abort; the result is false when aborted.
  bool forEachBasePrefixed(const BasePrefix &P,
                           const std::function<bool(Execution &)> &F) const;

  /// Invoke \p F on every placement of at least one successful transaction
  /// over \p X (the Txn fields are mutated in place and restored). \p F
  /// returns false to abort.
  bool forEachTxnPlacement(Execution &X,
                           const std::function<bool(Execution &)> &F) const;

  const Vocabulary &vocabulary() const { return Vocab; }
  unsigned numEvents() const { return Num; }

private:
  Vocabulary Vocab;
  unsigned Num;
};

} // namespace tmw

#endif // TMW_ENUMERATE_ENUMERATOR_H
