//===- X86Model.cpp - x86-TSO with transactions ------------------------------==//

#include "models/X86Model.h"

using namespace tmw;

const char *X86Model::name() const {
  return (Cfg.Tfence || Cfg.StrongIsol || Cfg.TxnOrder) ? "x86+TM" : "x86";
}

Relation X86Model::happensBefore(const Execution &X) const {
  unsigned N = X.size();
  EventSet R = X.reads(), W = X.writes();

  // ppo = ((W x W) u (R x W) u (R x R)) n po: TSO relaxes only W->R.
  Relation Ppo = (Relation::cross(W, W, N) | Relation::cross(R, W, N) |
                  Relation::cross(R, R, N)) &
                 X.Po;

  // implied = [L] ; po  u  po ; [L]  u  tfence, L the locked RMW events.
  EventSet Locked = X.Rmw.domain() | X.Rmw.range();
  Relation LockedId = Relation::identityOn(Locked, N);
  Relation Implied = LockedId.compose(X.Po) | X.Po.compose(LockedId);
  if (Cfg.Tfence)
    Implied |= X.tfence();

  return X.fenceRel(FenceKind::MFence) | Ppo | Implied | X.rfe() | X.fr() |
         X.Co;
}

ConsistencyResult X86Model::check(const Execution &X) const {
  Relation Com = X.com();
  if (!(X.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");

  if (!(X.Rmw & X.fre().compose(X.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  Relation Hb = happensBefore(X);
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");

  Relation Stxn = X.stxn();
  if (Cfg.StrongIsol && !strongLift(Com, Stxn).isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Hb, Stxn).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");

  return ConsistencyResult::ok();
}
