//===- analysis_test.cpp - ExecutionAnalysis cross-checks ---------------------==//
///
/// The memoized analysis layer must be *observationally identical* to the
/// uncached `Execution` methods: for a corpus of enumerated executions,
/// every memoized derived relation equals its uncached counterpart, and
/// every model's verdict through a shared memoized analysis equals the
/// verdict through per-check and recompute-mode analyses. Also covers the
/// memoization/invalidation contract (weakLift/strongLift caching, cache
/// drop on copy and on reset) and the sharded enumeration partition.
///
//===----------------------------------------------------------------------===//

#include "TestGraphs.h"
#include "enumerate/Relaxation.h"
#include "hw/ImplModel.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"
#include "synth/Conformance.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace tmw;

namespace {

/// All transaction placements over all bases of \p V at \p NumEvents,
/// capped at \p Cap executions (placement-free bases included).
std::vector<Execution> corpus(const Vocabulary &V, unsigned NumEvents,
                              unsigned Cap) {
  std::vector<Execution> Out;
  ExecutionEnumerator Enum(V, NumEvents);
  Enum.forEachBase([&](Execution &Base) {
    Out.push_back(Base);
    if (Out.size() >= Cap)
      return false;
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      Out.push_back(X);
      return Out.size() < Cap;
    });
  });
  return Out;
}

TEST(AnalysisCrossCheck, DerivedRelationsMatchUncachedExecutionMethods) {
  for (Arch A : {Arch::X86, Arch::Cpp}) {
    for (const Execution &X :
         corpus(Vocabulary::forArch(A), 3, /*Cap=*/400)) {
      ExecutionAnalysis An(X);
      // Query some terms twice so both the compute and the memoized path
      // are compared.
      for (int Round = 0; Round < 2; ++Round) {
        EXPECT_EQ(An.sloc(), X.sloc());
        EXPECT_EQ(An.sameThread(), X.sameThread());
        EXPECT_EQ(An.poLoc(), X.poLoc());
        EXPECT_EQ(An.poImm(), X.poImm());
        EXPECT_EQ(An.fr(), X.fr());
        EXPECT_EQ(An.com(), X.com());
        EXPECT_EQ(An.ecom(), X.ecom());
        EXPECT_EQ(An.rfe(), X.rfe());
        EXPECT_EQ(An.rfi(), X.rfi());
        EXPECT_EQ(An.coe(), X.coe());
        EXPECT_EQ(An.coi(), X.coi());
        EXPECT_EQ(An.fre(), X.fre());
        EXPECT_EQ(An.fri(), X.fri());
        EXPECT_EQ(An.stxn(), X.stxn());
        EXPECT_EQ(An.stxnAtomic(), X.stxnAtomic());
        EXPECT_EQ(An.tfence(), X.tfence());
        EXPECT_EQ(An.scr(), X.scr());
        EXPECT_EQ(An.scrt(), X.scrt());
        EXPECT_EQ(An.reads(), X.reads());
        EXPECT_EQ(An.writes(), X.writes());
        EXPECT_EQ(An.accesses(), X.accesses());
        EXPECT_EQ(An.atomics(), X.atomics());
        EXPECT_EQ(An.transactional(), X.transactional());
        EXPECT_EQ(An.atomicTransactional(), X.atomicTransactional());
        for (FenceKind K : {FenceKind::MFence, FenceKind::Sync,
                            FenceKind::CppFence}) {
          EXPECT_EQ(An.fences(K), X.fences(K));
          EXPECT_EQ(An.fenceRel(K), X.fenceRel(K));
        }
        EXPECT_EQ(An.weakLiftComStxn(), weakLift(X.com(), X.stxn()));
        EXPECT_EQ(An.strongLiftComStxn(), strongLift(X.com(), X.stxn()));
        EXPECT_EQ(An.strongLiftComStxnAtomic(),
                  strongLift(X.com(), X.stxnAtomic()));
      }
    }
  }
}

TEST(AnalysisCrossCheck, VerdictsAgreeAcrossAllSixModels) {
  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  CppModel Cpp;
  const MemoryModel *Models[] = {&Sc, &Tsc, &X86, &Power, &Armv8, &Cpp};

  for (Arch A : {Arch::X86, Arch::Cpp}) {
    for (const Execution &X :
         corpus(Vocabulary::forArch(A), 3, /*Cap=*/400)) {
      // One memoized analysis shared across all six models...
      ExecutionAnalysis Shared(X);
      for (const MemoryModel *M : Models) {
        ConsistencyResult Cached = M->check(Shared);
        // ...versus a fresh per-check analysis (the compatibility path)...
        ConsistencyResult Fresh = M->check(X);
        // ...versus full per-access recomputation (the seed behaviour).
        ExecutionAnalysis Recomp(X, AnalysisCaching::Recompute);
        ConsistencyResult Uncached = M->check(Recomp);
        EXPECT_EQ(Cached.Consistent, Fresh.Consistent)
            << M->name() << "\n"
            << X.dump();
        EXPECT_EQ(Cached.Consistent, Uncached.Consistent)
            << M->name() << "\n"
            << X.dump();
        EXPECT_EQ(Cached.FailedAxiom, Fresh.FailedAxiom) << M->name();
        EXPECT_EQ(Cached.FailedAxiom, Uncached.FailedAxiom)
            << M->name();
      }
    }
  }
}

TEST(AnalysisCrossCheck, ArenaInvalidationMatchesFreshAnalyses) {
  // Mirror the sharded synthesis loop: one arena reset per base,
  // transaction-state invalidation per placement.
  X86Model Tm;
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator Enum(V, 3);
  unsigned Compared = 0;
  Execution First = shapes::storeBuffering();
  ExecutionAnalysis Arena(First);
  Enum.forEachBase([&](Execution &Base) {
    Arena.reset(Base);
    EXPECT_EQ(Tm.consistent(Arena), Tm.consistent(ExecutionAnalysis(Base)));
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      Arena.invalidateTransactionalState();
      EXPECT_EQ(Tm.consistent(Arena), Tm.consistent(ExecutionAnalysis(X)))
          << X.dump();
      return ++Compared < 500;
    });
  });
  EXPECT_GT(Compared, 100u);
}

TEST(AnalysisMemoization, LiftedIsolationTermsComputeOnce) {
  Execution X = shapes::storeBuffering();
  X.Txn[0] = 0;
  X.Txn[1] = 0;
  ExecutionAnalysis A(X);
  uint64_t Before = A.recomputeCount();
  const Relation &First = A.strongLiftComStxn();
  uint64_t AfterFirst = A.recomputeCount();
  EXPECT_GT(AfterFirst, Before); // computed com, stxn, and the lift
  const Relation &Second = A.strongLiftComStxn();
  EXPECT_EQ(A.recomputeCount(), AfterFirst); // memoized: no recompute
  EXPECT_EQ(First, Second);

  // weakLift reuses the memoized com/stxn: only the lift itself is new.
  A.weakLiftComStxn();
  EXPECT_EQ(A.recomputeCount(), AfterFirst + 1);
  A.weakLiftComStxn();
  EXPECT_EQ(A.recomputeCount(), AfterFirst + 1);

  // Recompute mode re-derives on every access.
  ExecutionAnalysis R(X, AnalysisCaching::Recompute);
  R.strongLiftComStxn();
  uint64_t N1 = R.recomputeCount();
  R.strongLiftComStxn();
  EXPECT_GT(R.recomputeCount(), N1);
  EXPECT_EQ(R.strongLiftComStxn(), A.strongLiftComStxn());
}

TEST(AnalysisMemoization, CopyInvalidatesCaches) {
  Execution X = shapes::messagePassing();
  ExecutionAnalysis A(X);
  A.com();
  A.fenceRel(FenceKind::MFence);
  ASSERT_GT(A.recomputeCount(), 0u);

  // The copy starts cold but re-derives identical results.
  ExecutionAnalysis B(A);
  EXPECT_EQ(B.recomputeCount(), 0u);
  EXPECT_EQ(B.com(), A.com());
  EXPECT_GT(B.recomputeCount(), 0u);

  ExecutionAnalysis C = A;
  (void)C;
  ExecutionAnalysis D(X);
  D = A;
  EXPECT_EQ(D.recomputeCount(), 0u);
  EXPECT_EQ(D.fr(), X.fr());
}

TEST(AnalysisMemoization, ResetRetargets) {
  Execution X = shapes::storeBuffering();
  Execution Y = shapes::messagePassing();
  ExecutionAnalysis A(X);
  EXPECT_EQ(A.com(), X.com());
  A.reset(Y);
  EXPECT_EQ(A.recomputeCount(), 0u);
  EXPECT_EQ(&A.execution(), &Y);
  EXPECT_EQ(A.com(), Y.com());
  EXPECT_EQ(A.rfe(), Y.rfe());
}

TEST(ShardedEnumeration, ShardsPartitionTheBaseSpace) {
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator Enum(V, 4);

  std::multiset<uint64_t> All;
  Enum.forEachBase([&](Execution &X) {
    All.insert(X.hash());
    return true;
  });
  ASSERT_FALSE(All.empty());

  for (unsigned NumShards : {2u, 3u, 7u}) {
    std::multiset<uint64_t> Sharded;
    for (unsigned S = 0; S < NumShards; ++S)
      Enum.forEachBaseSharded(S, NumShards, [&](Execution &X) {
        Sharded.insert(X.hash());
        return true;
      });
    EXPECT_EQ(Sharded, All) << NumShards << " shards";
  }
}

TEST(ShardedEnumeration, ParallelForbidSynthesisMatchesSequential) {
  X86Model Tm;
  X86Model Baseline{X86Model::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::X86);

  ForbidSuite Seq = synthesizeForbid(Tm, Baseline, V, 4, 300.0, 1);
  ForbidSuite Par = synthesizeForbid(Tm, Baseline, V, 4, 300.0, 4);
  ASSERT_TRUE(Seq.Complete);
  ASSERT_TRUE(Par.Complete);
  EXPECT_EQ(Seq.BasesVisited, Par.BasesVisited);
  EXPECT_EQ(Seq.PlacementsVisited, Par.PlacementsVisited);

  std::set<uint64_t> SeqHashes, ParHashes;
  for (const Execution &X : Seq.Tests)
    SeqHashes.insert(canonicalHash(X));
  for (const Execution &X : Par.Tests)
    ParHashes.insert(canonicalHash(X));
  EXPECT_EQ(SeqHashes, ParHashes);
  EXPECT_EQ(Seq.Tests.size(), Par.Tests.size());
}

//===----------------------------------------------------------------------===
// Axiom-engine cross-check: the declarative axiom lists driven by the
// generic engine must reproduce, verdict for verdict (including the first
// failed axiom), the PR-1 hand-written check() bodies, which are kept
// below as independent reference implementations.
//===----------------------------------------------------------------------===

namespace legacy {

ConsistencyResult checkSc(const ExecutionAnalysis &A) {
  Relation Hb = A.po() | A.com();
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");
  return ConsistencyResult::ok();
}

ConsistencyResult checkTsc(const ExecutionAnalysis &A) {
  Relation Hb = A.po() | A.com();
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");
  if (!strongLift(Hb, A.stxn()).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  return ConsistencyResult::ok();
}

ConsistencyResult checkX86(const ExecutionAnalysis &A,
                           X86Model::Config Cfg) {
  unsigned N = A.size();
  const Relation &Com = A.com();
  if (!(A.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");
  if (!(A.rmw() & A.fre().compose(A.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  EventSet R = A.reads(), W = A.writes();
  Relation Ppo = (Relation::cross(W, W, N) | Relation::cross(R, W, N) |
                  Relation::cross(R, R, N)) &
                 A.po();
  EventSet Locked = A.rmw().domain() | A.rmw().range();
  Relation LockedId = Relation::identityOn(Locked, N);
  Relation Implied = LockedId.compose(A.po()) | A.po().compose(LockedId);
  if (Cfg.Tfence)
    Implied |= A.tfence();
  Relation Hb = A.fenceRel(FenceKind::MFence) | Ppo | Implied | A.rfe() |
                A.fr() | A.co();
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");

  if (Cfg.StrongIsol && !A.strongLiftComStxn().isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Hb, A.stxn()).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  return ConsistencyResult::ok();
}

Relation legacyPowerPpo(const ExecutionAnalysis &A) {
  unsigned N = A.size();
  EventSet R = A.reads(), W = A.writes();
  Relation Dd = A.addr() | A.data();
  const Relation &PoLoc = A.poLoc();
  Relation Rdw = PoLoc & A.fre().compose(A.rfe());
  Relation Detour = PoLoc & A.coe().compose(A.rfe());
  Relation CtrlIsync = A.ctrl() & A.fenceRel(FenceKind::ISync);
  Relation Ii0 = Dd | A.rfi() | Rdw;
  Relation Ci0 = CtrlIsync | Detour;
  Relation Ic0(N);
  Relation Cc0 = Dd | PoLoc | A.ctrl() | A.addr().compose(A.po());
  Relation Ii = Ii0, Ci = Ci0, Ic = Ic0, Cc = Cc0;
  for (;;) {
    Relation NewIi = Ii0 | Ci | Ic.compose(Ci) | Ii.compose(Ii);
    Relation NewCi = Ci0 | Ci.compose(Ii) | Cc.compose(Ci);
    Relation NewIc = Ic0 | Ii | Cc | Ic.compose(Cc) | Ii.compose(Ic);
    Relation NewCc = Cc0 | Ci | Ci.compose(Ic) | Cc.compose(Cc);
    if (NewIi == Ii && NewCi == Ci && NewIc == Ic && NewCc == Cc)
      break;
    Ii = NewIi;
    Ci = NewCi;
    Ic = NewIc;
    Cc = NewCc;
  }
  return (Ii & Relation::cross(R, R, N)) | (Ic & Relation::cross(R, W, N));
}

ConsistencyResult checkPower(const ExecutionAnalysis &A,
                             PowerModel::Config Cfg) {
  unsigned N = A.size();
  const Relation &Com = A.com();
  if (!(A.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");
  if (!(A.rmw() & A.fre().compose(A.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  EventSet W = A.writes(), Rd = A.reads();
  const Relation &Sync = A.fenceRel(FenceKind::Sync);
  Relation LwSync =
      A.fenceRel(FenceKind::LwSync) - Relation::cross(W, Rd, N);
  const Relation &Tfence = A.tfence();
  Relation Fence = Sync | LwSync;
  if (Cfg.Tfence)
    Fence |= Tfence;

  Relation Ihb = legacyPowerPpo(A) | Fence;
  const Relation &Rfe = A.rfe();
  Relation Hb = Rfe.optional().compose(Ihb).compose(Rfe.optional());
  const Relation &Stxn = A.stxn();
  if (Cfg.Thb) {
    Relation FreCoe = (A.fre() | A.coe()).reflexiveTransitiveClosure();
    Relation Chain =
        (Rfe | FreCoe.compose(Ihb)).reflexiveTransitiveClosure();
    Relation Thb = Chain.compose(FreCoe).compose(Rfe.optional());
    Hb |= weakLift(Thb, Stxn);
  }
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");

  Relation HbStar = Hb.reflexiveTransitiveClosure();
  Relation IdW = Relation::identityOn(W, N);
  Relation Efence = Rfe.optional().compose(Fence).compose(Rfe.optional());
  Relation Prop1 = IdW.compose(Efence).compose(HbStar).compose(IdW);
  Relation SyncLike = Sync;
  if (Cfg.Tfence)
    SyncLike |= Tfence;
  Relation Prop2 = A.external(Com)
                       .reflexiveTransitiveClosure()
                       .compose(Efence.reflexiveTransitiveClosure())
                       .compose(HbStar)
                       .compose(SyncLike)
                       .compose(HbStar);
  Relation Prop = Prop1 | Prop2;
  if (Cfg.TProp1)
    Prop |= Rfe.compose(Stxn).compose(IdW);
  if (Cfg.TProp2)
    Prop |= Stxn.compose(Rfe);

  if (!(A.co() | Prop).isAcyclic())
    return ConsistencyResult::fail("Propagation");
  if (!A.fre().compose(Prop).compose(HbStar).isIrreflexive())
    return ConsistencyResult::fail("Observation");
  if (Cfg.StrongIsol && !A.strongLiftComStxn().isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Hb, Stxn).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  if (Cfg.TxnCancelsRmw && !(A.rmw() & Tfence.transitiveClosure()).isEmpty())
    return ConsistencyResult::fail("TxnCancelsRMW");
  return ConsistencyResult::ok();
}

ConsistencyResult checkArmv8(const ExecutionAnalysis &A,
                             Armv8Model::Config Cfg) {
  unsigned N = A.size();
  const Relation &Com = A.com();
  if (!(A.poLoc() | Com).isAcyclic())
    return ConsistencyResult::fail("Coherence");

  EventSet R = A.reads(), W = A.writes();
  EventSet Acq = A.acquires() & R;
  EventSet L = A.releases() & W;
  Relation IdA = Relation::identityOn(Acq, N);
  Relation IdL = Relation::identityOn(L, N);
  Relation IdR = Relation::identityOn(R, N);
  Relation IdW = Relation::identityOn(W, N);
  Relation Obs = A.external(Com);
  Relation IsbId = Relation::identityOn(A.fences(FenceKind::Isb), N);
  Relation IsbBefore =
      (A.ctrl() | A.addr().compose(A.po())).compose(IsbId).compose(A.po())
          .compose(IdR);
  Relation Dob = A.addr() | A.data();
  Dob |= A.ctrl().compose(IdW);
  Dob |= IsbBefore;
  Dob |= A.addr().compose(A.po()).compose(IdW);
  Dob |= (A.ctrl() | A.data()).compose(A.coi());
  Dob |= (A.addr() | A.data()).compose(A.rfi());
  Relation Aob = A.rmw();
  Aob |= Relation::identityOn(A.rmw().range(), N).compose(A.rfi())
             .compose(IdA);
  Relation DmbId = Relation::identityOn(A.fences(FenceKind::Dmb), N);
  Relation DmbLdId = Relation::identityOn(A.fences(FenceKind::DmbLd), N);
  Relation DmbStId = Relation::identityOn(A.fences(FenceKind::DmbSt), N);
  Relation Bob = A.po().compose(DmbId).compose(A.po());
  Bob |= IdL.compose(A.po()).compose(IdA);
  Bob |= IdR.compose(A.po()).compose(DmbLdId).compose(A.po());
  Bob |= IdA.compose(A.po());
  Bob |= IdW.compose(A.po()).compose(DmbStId).compose(A.po()).compose(IdW);
  Bob |= A.po().compose(IdL);
  Bob |= A.po().compose(IdL).compose(A.coi());
  Relation Ob = Obs | Dob | Aob | Bob;
  if (Cfg.Tfence)
    Ob |= A.tfence();
  if (!Ob.isAcyclic())
    return ConsistencyResult::fail("Order");

  if (!(A.rmw() & A.fre().compose(A.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");
  if (Cfg.StrongIsol && !A.strongLiftComStxn().isAcyclic())
    return ConsistencyResult::fail("StrongIsol");
  if (Cfg.TxnOrder && !strongLift(Ob, A.stxn()).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  if (Cfg.TxnCancelsRmw &&
      !(A.rmw() & A.tfence().transitiveClosure()).isEmpty())
    return ConsistencyResult::fail("TxnCancelsRMW");
  return ConsistencyResult::ok();
}

ConsistencyResult checkCpp(const ExecutionAnalysis &A,
                           CppModel::Config Cfg) {
  unsigned N = A.size();
  Relation Sw = A.cppSynchronisesWith();
  if (Cfg.Tsw)
    Sw |= A.cppTransactionalSw();
  Relation Hb = (Sw | A.po()).transitiveClosure();
  const Relation &Com = A.com();

  if (!Hb.compose(Com.reflexiveTransitiveClosure()).isIrreflexive())
    return ConsistencyResult::fail("HbCom");
  if (!(A.rmw() & A.fre().compose(A.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");
  if (!(A.po() | A.rf()).isAcyclic())
    return ConsistencyResult::fail("NoThinAir");

  Relation HbOpt = Hb.optional();
  Relation Eco = Com.transitiveClosure();
  const Relation &Sloc = A.sloc();
  EventSet Sc = A.seqCst();
  EventSet Fsc = Sc & A.fences();
  Relation IdSc = Relation::identityOn(Sc, N);
  Relation IdFsc = Relation::identityOn(Fsc, N);
  Relation PoNonLoc = A.po() - Sloc;
  Relation Scb = A.po() | PoNonLoc.compose(Hb).compose(PoNonLoc) |
                 (Hb & Sloc) | A.co() | A.fr();
  Relation Left = IdSc | IdFsc.compose(HbOpt);
  Relation Right = IdSc | HbOpt.compose(IdFsc);
  Relation Psc = Left.compose(Scb).compose(Right) |
                 IdFsc.compose(Hb | Hb.compose(Eco).compose(Hb))
                     .compose(IdFsc);
  if (!Psc.isAcyclic())
    return ConsistencyResult::fail("SeqCst");
  return ConsistencyResult::ok();
}

/// Compare the generic engine's verdict with a reference checker on one
/// execution (verdict and first failed axiom).
void expectSameVerdict(const MemoryModel &M, ConsistencyResult Ref,
                       const Execution &X, const char *What) {
  ConsistencyResult New = M.check(X);
  EXPECT_EQ(New.Consistent, Ref.Consistent)
      << What << "\n"
      << X.dump();
  EXPECT_EQ(New.FailedAxiom, Ref.FailedAxiom) << What << "\n" << X.dump();
}

TEST(AxiomEngineCrossCheck, MatchesLegacyCheckersOnAllConfigs) {
  // Every config the PR-1 Config structs could express: default,
  // baseline, and each single-toggle-off variant, for all six models,
  // over the mixed x86/C++ cross-check corpus.
  for (Arch A : {Arch::X86, Arch::Cpp}) {
    for (const Execution &X :
         corpus(Vocabulary::forArch(A), 3, /*Cap=*/300)) {
      ExecutionAnalysis An(X);
      expectSameVerdict(ScModel(), legacy::checkSc(An), X, "SC");
      expectSameVerdict(TscModel(), legacy::checkTsc(An), X, "TSC");

      for (int Drop = -2; Drop < 3; ++Drop) {
        X86Model::Config C =
            Drop == -2 ? X86Model::Config::baseline() : X86Model::Config();
        if (Drop == 0)
          C.Tfence = false;
        if (Drop == 1)
          C.StrongIsol = false;
        if (Drop == 2)
          C.TxnOrder = false;
        expectSameVerdict(X86Model(C), legacy::checkX86(An, C), X, "x86");
      }
      for (int Drop = -2; Drop < 7; ++Drop) {
        PowerModel::Config C = Drop == -2 ? PowerModel::Config::baseline()
                                          : PowerModel::Config();
        if (Drop == 0)
          C.Tfence = false;
        if (Drop == 1)
          C.StrongIsol = false;
        if (Drop == 2)
          C.TxnOrder = false;
        if (Drop == 3)
          C.TxnCancelsRmw = false;
        if (Drop == 4)
          C.TProp1 = false;
        if (Drop == 5)
          C.TProp2 = false;
        if (Drop == 6)
          C.Thb = false;
        expectSameVerdict(PowerModel(C), legacy::checkPower(An, C), X,
                          "Power");
      }
      for (int Drop = -2; Drop < 4; ++Drop) {
        Armv8Model::Config C = Drop == -2 ? Armv8Model::Config::baseline()
                                          : Armv8Model::Config();
        if (Drop == 0)
          C.Tfence = false;
        if (Drop == 1)
          C.StrongIsol = false;
        if (Drop == 2)
          C.TxnOrder = false;
        if (Drop == 3)
          C.TxnCancelsRmw = false;
        expectSameVerdict(Armv8Model(C), legacy::checkArmv8(An, C), X,
                          "ARMv8");
      }
      for (bool Tsw : {true, false}) {
        CppModel::Config C{Tsw};
        expectSameVerdict(CppModel(C), legacy::checkCpp(An, C), X, "C++");
      }
    }
  }
}

} // namespace legacy

TEST(BuilderCapacity, SixtyFourEventExecutionIsLegal) {
  // Exactly kMaxEvents events must be accepted end-to-end — pins the
  // builder's capacity bound against off-by-one regressions.
  ExecutionBuilder B;
  for (unsigned T = 0; T < 4; ++T) {
    // Initial-value reads first, then the write: fr agrees with po.
    for (unsigned I = 1; I < kMaxEvents / 4; ++I)
      B.read(T, static_cast<LocId>(T));
    B.write(T, static_cast<LocId>(T), MemOrder::NonAtomic, 1);
  }
  Execution X = B.build();
  ASSERT_EQ(X.size(), kMaxEvents);
  EXPECT_EQ(X.checkWellFormed(), nullptr);
  ExecutionAnalysis A(X);
  EXPECT_EQ(A.com(), X.com());
  ScModel Sc;
  EXPECT_TRUE(Sc.consistent(A));
}

} // namespace
