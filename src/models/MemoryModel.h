//===- MemoryModel.h - Axiomatic consistency predicates ---------*- C++ -*-==//
///
/// \file
/// The `MemoryModel` interface: a consistency predicate over executions,
/// expressed as a declarative list of named axioms (`Axiom.h`). Concrete
/// models carry the axioms from the paper's Fig. 4 (SC/TSC), Fig. 5 (x86),
/// Fig. 6 (Power), Fig. 8 (ARMv8), and Fig. 9 (C++) as static tables; one
/// generic engine here evaluates the enabled axioms, so per-axiom ablation
/// (`AxiomMask`, addressed by axiom name), diagnostics (`checkAll` with
/// witness cycles), and the §9 comparisons are the same code for every
/// model.
///
/// Checks are phrased over an `ExecutionAnalysis`, the memoized view of an
/// immutable execution: evaluating several models (or several ablation
/// configurations) on one candidate shares every derived relation, and
/// model-specific compound terms (an architecture's happens-before, say)
/// are memoized per mask through `ExecutionAnalysis::memoTerm`. An
/// `Execution` converts implicitly to a temporary single-check analysis,
/// so `M.check(X)` / `M.consistent(X)` keep working as before.
///
/// Models are immutable after configuration; all mutable caching lives in
/// the analysis, so const models are shared freely across enumeration
/// shards.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_MEMORYMODEL_H
#define TMW_MODELS_MEMORYMODEL_H

#include "execution/ExecutionAnalysis.h"
#include "models/Axiom.h"

#include <vector>

namespace tmw {

/// Outcome of a consistency check.
struct ConsistencyResult {
  bool Consistent;
  /// Name of the first violated axiom; empty when consistent. The view is
  /// *interned*: it points into the model's static axiom table, stays
  /// valid for the program's lifetime, and is NUL-terminated (see
  /// Axiom.h), so no lifetime hazard attaches to storing it.
  std::string_view FailedAxiom;

  static ConsistencyResult ok() { return {true, {}}; }
  static ConsistencyResult fail(std::string_view Axiom) {
    return {false, Axiom};
  }
  explicit operator bool() const { return Consistent; }
};

/// Per-axiom outcome from `checkAll`.
struct AxiomVerdict {
  /// The axiom, pointing into the model's static table.
  const Axiom *Ax = nullptr;
  bool Enabled = true;
  /// Whether the constraint holds. Disabled or modifier axioms are not
  /// evaluated and report `Holds = true`.
  bool Holds = true;
  /// For a failed axiom, the events witnessing the violation:
  ///  * Acyclic     — the events of one cycle in the term (each
  ///                  consecutive pair, and the closing pair, in the term);
  ///  * Irreflexive — a singleton {e} with (e, e) in the term;
  ///  * Empty       — the field (domain u range) of the non-empty term.
  EventSet Witness;
};

/// Full per-axiom report of one consistency check.
struct CheckReport {
  bool Consistent = true;
  /// First violated axiom (table order), empty when consistent.
  std::string_view FailedAxiom;
  /// One verdict per entry of `axioms()`, in table order.
  std::vector<AxiomVerdict> Verdicts;
};

/// Target architectures / languages.
enum class Arch : uint8_t { SC, TSC, X86, Power, Armv8, Cpp };

/// Human-readable architecture name.
const char *archName(Arch A);

/// An axiomatic memory model: a named list of axioms selecting the
/// consistent candidate executions, evaluated by the generic engine below.
class MemoryModel {
public:
  virtual ~MemoryModel();

  virtual const char *name() const = 0;
  virtual Arch arch() const = 0;
  /// The model's axiom list — a view of a static table (per-instance for
  /// wrappers like `ImplModel` that extend a wrapped spec's list).
  virtual AxiomList axioms() const = 0;

  /// Enabled-axiom mask (indices into `axioms()`); defaults to all.
  const AxiomMask &axiomMask() const { return Mask; }
  void setAxiomMask(AxiomMask M) { Mask = M; }
  /// Enable/disable one axiom by name; false when the name is unknown.
  bool setAxiomEnabled(std::string_view Name, bool On);
  /// Whether the named axiom is enabled (false for unknown names).
  bool axiomEnabled(std::string_view Name) const;

  /// Evaluate the enabled axioms over \p A in table order, stopping at the
  /// first violation. Checks are const and do not mutate the model; all
  /// caching lives in the analysis.
  ConsistencyResult check(const ExecutionAnalysis &A) const;

  /// Evaluate *every* enabled axiom (no early exit) and report per-axiom
  /// verdicts plus a witness for each violation — the diagnostics path
  /// behind `litmus_tool --explain`.
  CheckReport checkAll(const ExecutionAnalysis &A) const;

  bool consistent(const ExecutionAnalysis &A) const {
    return check(A).Consistent;
  }

protected:
  /// True when any TM-extension axiom is enabled — concrete models use
  /// this to render "x86+TM" versus "x86".
  bool anyTmEnabled() const;

  AxiomMask Mask;
};

/// Shared cat-style axiom terms that several models' tables reference
/// (defined once next to the generic engine so the definitions cannot
/// silently diverge across models).
namespace terms {
/// poloc u com — the per-location coherence order.
Relation coherence(const ExecutionAnalysis &A, AxiomMask);
/// rmw n (fre ; coe) — an intervening external write inside an RMW.
Relation rmwIsolation(const ExecutionAnalysis &A, AxiomMask);
/// stronglift(com, stxn) — the strong-isolation lift (§3.3).
Relation strongIsolation(const ExecutionAnalysis &A, AxiomMask);
/// The implicit transaction fences (the `tfence` modifier's term).
Relation tfence(const ExecutionAnalysis &A, AxiomMask);
/// rmw n tfence+ — an exclusive pair straddling a transaction boundary
/// (the failure semantics Power and ARMv8 share, and the guard of the
/// cross-arch hierarchy edges in models/EvalPlan.h).
Relation txnCancelsRmw(const ExecutionAnalysis &A, AxiomMask);
} // namespace terms

/// WeakIsol (§3.3): acyclic(weaklift(com, stxn)).
bool holdsWeakIsolation(const ExecutionAnalysis &A);
/// StrongIsol (§3.3): acyclic(stronglift(com, stxn)).
bool holdsStrongIsolation(const ExecutionAnalysis &A);
/// StrongIsol restricted to atomic transactions (Theorem 7.2's conclusion).
bool holdsStrongIsolationAtomic(const ExecutionAnalysis &A);

} // namespace tmw

#endif // TMW_MODELS_MEMORYMODEL_H
