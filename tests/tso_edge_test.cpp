//===- tso_edge_test.cpp - TSO+TSX machine corner cases -----------------------==//

#include "hw/TsoMachine.h"

#include "litmus/Parser.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

Program parse(const char *Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << R.Error;
  return R.Prog;
}

TEST(TsoEdgeTest, AbortRollsBackRegisters) {
  // A load inside an aborted transaction leaves no architectural trace:
  // no outcome pairs ok=0 with a valid r1.
  Program P = parse(R"(name rollback
loc ok 1
thread 0
  txbegin
  load x
  load x
  txend
thread 1
  store x 1
post mem ok 0
post reg 0 r1 0
)");
  TsoMachine M(P);
  for (const Outcome &O : M.reachableOutcomes()) {
    LocId Ok = P.locByName("ok");
    if (O.MemValues[Ok] != 0)
      continue;
    // Aborted: the transactional loads must be absent from the outcome.
    for (const auto &[T, I, V] : O.RegValues)
      EXPECT_FALSE(T == 0 && (I == 1 || I == 2))
          << "register survived an abort: " << O.str(P);
  }
}

TEST(TsoEdgeTest, TransactionReadsItsOwnWrites) {
  Program P = parse(R"(name fwd-txn
loc ok 1
thread 0
  txbegin
  store x 7
  load x
  txend
thread 1
  load x
post mem ok 1
post reg 0 r2 7
)");
  TsoMachine M(P);
  EXPECT_TRUE(M.postconditionObservable());
}

TEST(TsoEdgeTest, UncommittedWritesInvisible) {
  // Before commit, the transactional store is invisible to others: no
  // outcome has thread 1 reading 7 while ok=0 (aborted).
  Program P = parse(R"(name invisible
loc ok 1
thread 0
  txbegin
  store x 7
  load y
  load y
  txend
thread 1
  load x
  store y 1
post mem ok 0
post reg 1 r0 7
)");
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoEdgeTest, SequentialTransactionsBothCommit) {
  Program P = parse(R"(name seq-txns
loc ok 1
thread 0
  txbegin
  store x 1
  txend
  txbegin
  store y 1
  txend
thread 1
  load y
  load x
post mem ok 1
post reg 1 r0 1
post reg 1 r1 1
)");
  TsoMachine M(P);
  EXPECT_TRUE(M.postconditionObservable());
}

TEST(TsoEdgeTest, WriteWriteConflictAborts) {
  // Two transactions writing the same location cannot both commit with
  // interleaved visibility; at least serialisation holds.
  Program P = parse(R"(name ww-conflict
loc ok 1
thread 0
  txbegin
  store x 1
  store x 2
  txend
thread 1
  load x
post mem ok 1
post reg 1 r0 1
)");
  // The intermediate value 1 is never visible when the txn commits.
  TsoMachine M(P);
  EXPECT_FALSE(M.postconditionObservable());
}

TEST(TsoEdgeTest, EmptyTransactionIsHarmless) {
  Program P = parse(R"(name empty-txn
loc ok 1
thread 0
  txbegin
  txend
  store x 1
thread 1
  load x
post mem ok 1
post reg 1 r0 1
)");
  TsoMachine M(P);
  EXPECT_TRUE(M.postconditionObservable());
}

TEST(TsoEdgeTest, MfenceInsideTransactionAllowed) {
  // A fence inside a transaction: buffers are empty inside transactions
  // anyway (writes go to the txn write set), so it is a no-op.
  Program P = parse(R"(name fence-in-txn
loc ok 1
thread 0
  txbegin
  store x 1
  fence mfence
  load y
  txend
thread 1
  load x
post mem ok 1
post reg 0 r3 0
)");
  TsoMachine M(P);
  EXPECT_TRUE(M.postconditionObservable());
}

} // namespace
