//===- printer_detail_test.cpp - Per-architecture rendering details -----------==//

#include "TestGraphs.h"
#include "litmus/FromExecution.h"
#include "litmus/Printer.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

Program example11Program() {
  return programFromExecution(shapes::lockElisionConcrete(false), "ex11")
      .Prog;
}

TEST(PrinterArmTest, AcquireAndReleaseMnemonics) {
  std::string Asm = printAsm(example11Program(), Arch::Armv8);
  EXPECT_NE(Asm.find("LDAXR"), std::string::npos); // acquire exclusive
  EXPECT_NE(Asm.find("STXR"), std::string::npos);  // store exclusive
  EXPECT_NE(Asm.find("STLR"), std::string::npos);  // release store
  EXPECT_NE(Asm.find("TXBEGIN"), std::string::npos);
  EXPECT_NE(Asm.find("TXEND"), std::string::npos);
}

TEST(PrinterArmTest, DependencyIdioms) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W = B.write(0, 1, MemOrder::NonAtomic, 1);
  B.data(R, W);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.read(1, 1);
  Program P = programFromExecution(B.build(), "dep").Prog;
  std::string Asm = printAsm(P, Arch::Armv8);
  EXPECT_NE(Asm.find("EOR"), std::string::npos);
  std::string Pwr = printAsm(P, Arch::Power);
  EXPECT_NE(Pwr.find("xor"), std::string::npos);
}

TEST(PrinterArmTest, FenceFlavours) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  B.fence(0, FenceKind::DmbLd);
  B.read(0, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  B.fence(1, FenceKind::Isb);
  B.read(1, 0);
  Program P = programFromExecution(B.build(), "fences").Prog;
  std::string Asm = printAsm(P, Arch::Armv8);
  EXPECT_NE(Asm.find("DMB LD"), std::string::npos);
  EXPECT_NE(Asm.find("ISB"), std::string::npos);
}

TEST(PrinterPowerTest, FencesAndExclusives) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.rmw(R, W);
  B.fence(0, FenceKind::LwSync);
  B.read(0, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  B.fence(1, FenceKind::Sync);
  B.read(1, 0);
  Program P = programFromExecution(B.build(), "pw").Prog;
  std::string Asm = printAsm(P, Arch::Power);
  EXPECT_NE(Asm.find("lwarx"), std::string::npos);
  EXPECT_NE(Asm.find("stwcx."), std::string::npos);
  EXPECT_NE(Asm.find("lwsync"), std::string::npos);
  EXPECT_NE(Asm.find("sync"), std::string::npos);
}

TEST(PrinterX86Test, LockedRmwRendering) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.rmw(R, W);
  B.read(1, 0);
  Program P = programFromExecution(B.build(), "rmw").Prog;
  std::string Asm = printAsm(P, Arch::X86);
  EXPECT_NE(Asm.find("LOCK"), std::string::npos);
}

TEST(PrinterGenericTest, LockCallsAndAbortHandler) {
  ExecutionBuilder B;
  EventId L = B.lockCall(0, EventKind::Lock);
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId U = B.lockCall(0, EventKind::Unlock);
  EventId Lt = B.lockCall(1, EventKind::TxLock);
  EventId R = B.read(1, 0);
  EventId Ut = B.lockCall(1, EventKind::TxUnlock);
  B.cr({L, W, U});
  B.cr({Lt, R, Ut});
  Program P = programFromExecution(B.build(), "locks").Prog;
  std::string Txt = printGeneric(P);
  EXPECT_NE(Txt.find("lock()"), std::string::npos);
  EXPECT_NE(Txt.find("unlock()"), std::string::npos);
  EXPECT_NE(Txt.find("elided"), std::string::npos);
}

TEST(PrinterCppTest, TransactionFlavoursAndFences) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::Relaxed, 1);
  B.fence(0, FenceKind::CppFence, MemOrder::SeqCst);
  EventId R = B.read(1, 0, MemOrder::Relaxed);
  B.rf(W, R);
  B.txn({W}, /*Atomic=*/true);
  B.txn({R}, /*Atomic=*/false);
  Program P = programFromExecution(B.build(), "cpp").Prog;
  std::string Src = printCpp(P);
  EXPECT_NE(Src.find("atomic {"), std::string::npos);
  EXPECT_NE(Src.find("synchronized {"), std::string::npos);
  EXPECT_NE(Src.find("atomic_thread_fence(memory_order_seq_cst)"),
            std::string::npos);
  EXPECT_NE(Src.find("memory_order_relaxed"), std::string::npos);
}

TEST(PrinterDslTest, AnnotationsSurvive) {
  Program P = example11Program();
  std::string Dsl = printDsl(P);
  EXPECT_NE(Dsl.find("acq"), std::string::npos);
  EXPECT_NE(Dsl.find("rel"), std::string::npos);
  EXPECT_NE(Dsl.find("excl"), std::string::npos);
  EXPECT_NE(Dsl.find("rmw:"), std::string::npos);
  EXPECT_NE(Dsl.find("txbegin"), std::string::npos);
}

} // namespace
