//===- Program.cpp - Litmus test programs -------------------------------------==//

#include "litmus/Program.h"

#include <algorithm>
#include <cstdio>

using namespace tmw;

int Program::initialValue(LocId Loc) const {
  for (const auto &[L, V] : InitialValues)
    if (L == Loc)
      return V;
  return 0;
}

LocId Program::locByName(const std::string &Name) const {
  for (unsigned I = 0; I < LocNames.size(); ++I)
    if (LocNames[I] == Name)
      return static_cast<LocId>(I);
  return -1;
}

LocId Program::ensureLoc(const std::string &Name) {
  LocId L = locByName(Name);
  if (L >= 0)
    return L;
  LocNames.push_back(Name);
  return static_cast<LocId>(LocNames.size() - 1);
}

unsigned Program::numInstructions() const {
  unsigned N = 0;
  for (const auto &T : Threads)
    N += static_cast<unsigned>(T.size());
  return N;
}

bool Program::hasTransactions() const {
  for (const auto &T : Threads)
    for (const auto &I : T)
      if (I.K == Instruction::Kind::TxBegin)
        return true;
  return false;
}

bool Outcome::operator<(const Outcome &O) const {
  if (RegValues != O.RegValues)
    return RegValues < O.RegValues;
  return MemValues < O.MemValues;
}

bool Outcome::satisfies(const Program &P) const {
  for (const RegAssertion &A : P.RegPost) {
    bool Found = false;
    for (const auto &[T, L, V] : RegValues)
      if (T == A.Thread && L == A.LoadIndex) {
        if (V != A.Value)
          return false;
        Found = true;
      }
    if (!Found)
      return false;
  }
  for (const MemAssertion &A : P.MemPost) {
    if (A.Loc < 0 || static_cast<size_t>(A.Loc) >= MemValues.size())
      return false;
    if (MemValues[A.Loc] != A.Value)
      return false;
  }
  return true;
}

std::string Outcome::str(const Program &P) const {
  std::string Out;
  char Buf[64];
  for (const auto &[T, L, V] : RegValues) {
    snprintf(Buf, sizeof(Buf), "%u:r%u=%d; ", T, L, V);
    Out += Buf;
  }
  for (unsigned L = 0; L < MemValues.size(); ++L) {
    const char *Name =
        L < P.LocNames.size() ? P.LocNames[L].c_str() : "?";
    snprintf(Buf, sizeof(Buf), "%s=%d; ", Name, MemValues[L]);
    Out += Buf;
  }
  if (!Out.empty()) {
    Out.pop_back();
    Out.pop_back();
  }
  return Out;
}
