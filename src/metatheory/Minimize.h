//===- Minimize.h - Shrinking counterexamples -------------------*- C++ -*-==//
///
/// \file
/// Shrinks an inconsistent execution to a ⊏-minimal one (§4.2) by
/// repeatedly taking any one-step relaxation that is still inconsistent.
/// This is how a raw counterexample from the metatheory searches becomes
/// a presentable litmus test: the result is a member of the model's
/// minimally-forbidden set.
///
/// An optional invariant restricts the shrinking (e.g. "stays consistent
/// under the buggy RTL" when minimising an implementation-bug witness).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_METATHEORY_MINIMIZE_H
#define TMW_METATHEORY_MINIMIZE_H

#include "enumerate/Relaxation.h"

#include <functional>

namespace tmw {

/// Shrink the inconsistent \p X to a minimally inconsistent execution
/// under \p M, preserving \p Invariant (when given) along the way.
/// Requires `!M.consistent(X)` and `Invariant(X)` on entry.
///
/// \returns a ⊏-descendant of \p X (possibly \p X itself) that is
/// inconsistent and whose invariant-preserving relaxations are all
/// consistent; when no invariant is given the result is minimally
/// inconsistent in the §4.2 sense.
Execution
minimizeInconsistent(const Execution &X, const MemoryModel &M,
                     const Vocabulary &V,
                     const std::function<bool(const Execution &)> &Invariant
                     = nullptr);

} // namespace tmw

#endif // TMW_METATHEORY_MINIMIZE_H
