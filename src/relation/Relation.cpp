//===- Relation.cpp - Binary relations over events ------------------------==//
///
/// \file
/// Implementation of the bit-matrix relational algebra.
///
//===----------------------------------------------------------------------===//

#include "relation/Relation.h"

using namespace tmw;

Relation Relation::identityOn(EventSet S, unsigned N) {
  Relation R(N);
  for (EventId E : S)
    if (E < N)
      R.insert(E, E);
  return R;
}

Relation Relation::cross(EventSet A, EventSet B, unsigned N) {
  Relation R(N);
  uint64_t RangeBits = (B & EventSet::universe(N)).bits();
  for (EventId E : A)
    if (E < N)
      R.Rows[E] = RangeBits;
  return R;
}

bool Relation::isEmpty() const {
  for (unsigned A = 0; A < Size; ++A)
    if (Rows[A] != 0)
      return false;
  return true;
}

bool Relation::isIrreflexive() const {
  for (unsigned A = 0; A < Size; ++A)
    if ((Rows[A] >> A) & 1)
      return false;
  return true;
}

bool Relation::isAcyclic() const {
  // A relation is acyclic iff its transitive closure is irreflexive.
  return transitiveClosure().isIrreflexive();
}

unsigned Relation::numPairs() const {
  unsigned N = 0;
  for (unsigned A = 0; A < Size; ++A)
    N += __builtin_popcountll(Rows[A]);
  return N;
}

EventSet Relation::findCycle() const {
  Relation TC = transitiveClosure();
  for (EventId E = 0; E < Size; ++E) {
    if (!TC.contains(E, E))
      continue;
    if (contains(E, E))
      return EventSet::singleton(E);
    // Shortest cycle through E: BFS from E's successors back to E,
    // recording BFS parents to reconstruct the path.
    EventId Parent[kMaxEvents];
    EventId Queue[kMaxEvents];
    unsigned Head = 0, Tail = 0;
    EventSet Seen;
    for (EventId S : successors(E)) {
      Seen.insert(S);
      Parent[S] = E;
      Queue[Tail++] = S;
    }
    while (Head < Tail) {
      EventId U = Queue[Head++];
      if (contains(U, E)) {
        EventSet Cycle = EventSet::singleton(E);
        for (EventId V = U; V != E; V = Parent[V])
          Cycle.insert(V);
        return Cycle;
      }
      for (EventId S : successors(U))
        if (S != E && !Seen.contains(S)) {
          Seen.insert(S);
          Parent[S] = U;
          Queue[Tail++] = S;
        }
    }
    // TC(E, E) guarantees the BFS closes the cycle; not reached.
    assert(false && "transitive closure promised a cycle through E");
  }
  return {};
}

EventSet Relation::reflexivePoints() const {
  EventSet S;
  for (EventId A = 0; A < Size; ++A)
    if ((Rows[A] >> A) & 1)
      S.insert(A);
  return S;
}

bool Relation::operator==(const Relation &O) const {
  if (Size != O.Size)
    return false;
  for (unsigned A = 0; A < Size; ++A)
    if (Rows[A] != O.Rows[A])
      return false;
  return true;
}

bool Relation::subsetOf(const Relation &O) const {
  assert(Size == O.Size && "size mismatch");
  for (unsigned A = 0; A < Size; ++A)
    if (Rows[A] & ~O.Rows[A])
      return false;
  return true;
}

Relation Relation::operator|(const Relation &O) const {
  Relation R = *this;
  R |= O;
  return R;
}

Relation Relation::operator&(const Relation &O) const {
  Relation R = *this;
  R &= O;
  return R;
}

Relation Relation::operator-(const Relation &O) const {
  Relation R = *this;
  R -= O;
  return R;
}

Relation &Relation::operator|=(const Relation &O) {
  assert(Size == O.Size && "size mismatch");
  for (unsigned A = 0; A < Size; ++A)
    Rows[A] |= O.Rows[A];
  return *this;
}

Relation &Relation::operator&=(const Relation &O) {
  assert(Size == O.Size && "size mismatch");
  for (unsigned A = 0; A < Size; ++A)
    Rows[A] &= O.Rows[A];
  return *this;
}

Relation &Relation::operator-=(const Relation &O) {
  assert(Size == O.Size && "size mismatch");
  for (unsigned A = 0; A < Size; ++A)
    Rows[A] &= ~O.Rows[A];
  return *this;
}

Relation Relation::compose(const Relation &O) const {
  assert(Size == O.Size && "size mismatch");
  Relation R(Size);
  for (unsigned A = 0; A < Size; ++A) {
    uint64_t Out = 0;
    for (EventId Mid : EventSet(Rows[A]))
      Out |= O.Rows[Mid];
    R.Rows[A] = Out;
  }
  return R;
}

Relation Relation::inverse() const {
  Relation R(Size);
  for (unsigned A = 0; A < Size; ++A)
    for (EventId B : EventSet(Rows[A]))
      R.Rows[B] |= uint64_t(1) << A;
  return R;
}

Relation Relation::complement() const {
  Relation R(Size);
  uint64_t All = EventSet::universe(Size).bits();
  for (unsigned A = 0; A < Size; ++A)
    R.Rows[A] = All & ~Rows[A];
  return R;
}

Relation Relation::optional() const {
  Relation R = *this;
  for (unsigned A = 0; A < Size; ++A)
    R.Rows[A] |= uint64_t(1) << A;
  return R;
}

Relation Relation::transitiveClosure() const {
  // Column-sweep variant of Warshall's algorithm: when Mid is reachable
  // from A, everything reachable from Mid becomes reachable from A.
  Relation R = *this;
  for (unsigned Mid = 0; Mid < Size; ++Mid) {
    uint64_t MidRow = R.Rows[Mid];
    if (MidRow == 0)
      continue;
    for (unsigned A = 0; A < Size; ++A)
      if ((R.Rows[A] >> Mid) & 1)
        R.Rows[A] |= MidRow;
  }
  return R;
}

Relation Relation::reflexiveTransitiveClosure() const {
  return transitiveClosure().optional();
}

Relation Relation::restrictDomain(EventSet S) const {
  Relation R(Size);
  for (EventId A : S & EventSet::universe(Size))
    R.Rows[A] = Rows[A];
  return R;
}

Relation Relation::restrictRange(EventSet S) const {
  Relation R = *this;
  uint64_t Mask = (S & EventSet::universe(Size)).bits();
  for (unsigned A = 0; A < Size; ++A)
    R.Rows[A] &= Mask;
  return R;
}

EventSet Relation::domain() const {
  EventSet S;
  for (unsigned A = 0; A < Size; ++A)
    if (Rows[A] != 0)
      S.insert(A);
  return S;
}

EventSet Relation::range() const {
  uint64_t Bits = 0;
  for (unsigned A = 0; A < Size; ++A)
    Bits |= Rows[A];
  return EventSet(Bits);
}

Relation tmw::weakLift(const Relation &R, const Relation &T) {
  return T.compose(R - T).compose(T);
}

Relation tmw::strongLift(const Relation &R, const Relation &T) {
  Relation TOpt = T.optional();
  return TOpt.compose(R - T).compose(TOpt);
}
