//===- QueryServer.cpp - The long-lived query server ---------------------------==//

#include "server/QueryServer.h"

#include "litmus/Library.h"
#include "query/QueryIO.h"

#include <istream>
#include <ostream>

using namespace tmw;

QueryServer::QueryServer(ServerOptions Opts)
    : Opts(Opts), Cache(Opts.MaxCachedPrograms),
      Pool(std::max(1u, Opts.Jobs)), Arenas(std::max(1u, Opts.Jobs)) {
  this->Opts.Jobs = std::max(1u, Opts.Jobs);
  // Touch the shared corpus now so the first batch doesn't pay its parse.
  (void)sharedCorpus();
  // Jobs == 1 serves on the calling thread; otherwise the workers are
  // born once and live until destruction, parked between batches.
  if (this->Opts.Jobs > 1) {
    Threads.reserve(this->Opts.Jobs);
    for (unsigned W = 0; W < this->Opts.Jobs; ++W)
      Threads.emplace_back(&QueryServer::workerMain, this, W);
  }
}

QueryServer::~QueryServer() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  CvWork.notify_all();
  for (std::thread &Th : Threads)
    Th.join();
}

void QueryServer::workerMain(unsigned Worker) {
  uint64_t SeenGen = 0;
  for (;;) {
    BatchRun *Batch = nullptr;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      CvWork.wait(Lock, [&] { return Stop || Gen > SeenGen; });
      if (Stop)
        return;
      SeenGen = Gen;
      Batch = Current;
    }
    // Work until this batch's queue drains; the arena persists in this
    // worker's slot across batches.
    Batch->work(Worker, Arenas[Worker]);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (++Arrived == Threads.size())
        CvDone.notify_one();
    }
  }
}

std::vector<CheckResponse>
QueryServer::runBatch(std::span<const CheckRequest> Requests,
                      BatchTelemetry *Telemetry) {
  // Re-arm the resident pool (deques survive, allocations amortise) and
  // stage the batch. Verdicts are identical to a one-shot engine run:
  // same BatchRun, same per-request evaluation, caches verdict-neutral.
  Pool.reset();
  BatchRun Batch(Requests, Pool, &Cache);

  if (Threads.empty()) {
    Batch.work(0, Arenas[0]);
  } else {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Current = &Batch;
      Arrived = 0;
      ++Gen;
    }
    CvWork.notify_all();
    {
      std::unique_lock<std::mutex> Lock(Mu);
      CvDone.wait(Lock, [&] { return Arrived == Threads.size(); });
      Current = nullptr;
    }
  }

  BatchTelemetry T;
  std::vector<CheckResponse> Responses = Batch.take(T);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Batches;
    S.Requests += Requests.size();
  }
  if (Telemetry)
    *Telemetry = std::move(T);
  return Responses;
}

std::string QueryServer::serveLine(std::string_view Line) {
  std::vector<CheckRequest> Requests;
  std::string Error;
  if (!requestsFromJson(std::string(Line), Requests, &Error)) {
    // Hardening contract: a malformed batch answers with an error
    // document; the session (caches, pool, later batches) lives on.
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.BadBatches;
    return batchErrorToJson("batch parse error: " + Error);
  }
  BatchTelemetry T;
  std::vector<CheckResponse> Responses = runBatch(Requests, &T);
  return responsesToJson(Responses, Opts.Telemetry ? &T : nullptr);
}

void QueryServer::serveStream(std::istream &In, std::ostream &Out) {
  std::string Line;
  while (std::getline(In, Line)) {
    // Skip blank keep-alive lines rather than answering them with a
    // parse-error document.
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    Out << serveLine(Line);
    Out.flush();
    // A dead sink (client closed its read end) ends the session: keep
    // evaluating corpus-scale batches nobody receives and the server
    // burns CPU until stdin EOF.
    if (!Out)
      break;
  }
}

ServerStats QueryServer::stats() const {
  ServerStats Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out = S;
  }
  Out.Cache = Cache.stats();
  return Out;
}
