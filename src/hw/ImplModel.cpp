//===- ImplModel.cpp - Axiomatic hardware substitutes -------------------------==//

#include "hw/ImplModel.h"

#include "models/ModelRegistry.h"

using namespace tmw;

namespace {

Relation noLoadBuffering(const ExecutionAnalysis &A, AxiomMask) {
  return A.po() | A.rf();
}

} // namespace

ImplModel::ImplModel(std::unique_ptr<MemoryModel> Spec, bool NoLoadBuffering,
                     const char *Name, const char *SpecToken)
    : Spec(std::move(Spec)), Label(Name), Token(SpecToken) {
  AxiomList SpecAxioms = this->Spec->axioms();
  Axioms.assign(SpecAxioms.begin(), SpecAxioms.end());
  Axioms.push_back({"NoLoadBuffering(impl)", AxiomKind::Acyclic,
                    noLoadBuffering, /*Tm=*/false, /*Modifier=*/false,
                    /*Salt=*/0, /*Footprint=*/~0u});
  // Inherit the spec's configuration; the appended implementation axiom
  // sits past the spec's indices, so the spec's term functions keep
  // reading their own bits.
  Mask = this->Spec->axiomMask();
  Mask.set(static_cast<unsigned>(Axioms.size() - 1), NoLoadBuffering);
}

ImplModel ImplModel::power8() {
  return ImplModel(std::make_unique<PowerModel>(), /*NoLoadBuffering=*/true,
                   "POWER8 (simulated)", "power8");
}

ImplModel ImplModel::armv8Silicon() {
  return ImplModel(std::make_unique<Armv8Model>(), /*NoLoadBuffering=*/true,
                   "ARMv8+TM silicon (simulated)", "armv8-silicon");
}

ImplModel ImplModel::armv8BuggyRtl() {
  Armv8Model::Config C;
  C.TxnOrder = false;
  return ImplModel(std::make_unique<Armv8Model>(C),
                   /*NoLoadBuffering=*/true, "ARMv8 RTL prototype (buggy)",
                   "armv8-rtl");
}

ImplModel ImplModel::implFor(Arch A) {
  // Interned "<arch>-impl" tokens and labels, one literal per arch, so
  // name()/specToken() stay valid for the program's lifetime like every
  // other model name.
  static constexpr const char *Tokens[] = {"sc-impl",    "tsc-impl",
                                           "x86-impl",   "power-impl",
                                           "armv8-impl", "cpp-impl"};
  static constexpr const char *Labels[] = {
      "sc-impl (simulated)",    "tsc-impl (simulated)",
      "x86-impl (simulated)",   "power-impl (simulated)",
      "armv8-impl (simulated)", "cpp-impl (simulated)"};
  unsigned I = static_cast<unsigned>(A);
  return ImplModel(ModelRegistry::make(A), /*NoLoadBuffering=*/true,
                   Labels[I], Tokens[I]);
}
