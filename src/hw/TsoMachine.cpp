//===- TsoMachine.cpp - Operational x86-TSO + TSX machine ---------------------==//

#include "hw/TsoMachine.h"

#include <algorithm>
#include <functional>
#include <map>

using namespace tmw;

namespace {

/// Machine state for the DFS exploration. Kept comparable so visited
/// states can be memoised.
struct MachineState {
  /// Next instruction index per thread.
  std::vector<unsigned> Pc;
  /// FIFO store buffers: (loc, value) oldest first.
  std::vector<std::vector<std::pair<LocId, int>>> Buffers;
  /// Register file: value of each executed load, indexed by instruction.
  std::vector<std::vector<int>> Regs;
  /// Whether each load has executed (loads inside failed transactions
  /// never do).
  std::vector<std::vector<bool>> RegValid;
  /// Main memory by location id.
  std::vector<int> Memory;
  /// Per thread: inside an active transaction?
  std::vector<bool> InTxn;
  /// Transactional read/write sets and write buffer (loc -> value).
  std::vector<std::vector<LocId>> ReadSet;
  std::vector<std::vector<std::pair<LocId, int>>> TxnWrites;

  bool operator<(const MachineState &O) const {
    return std::tie(Pc, Buffers, Regs, RegValid, Memory, InTxn, ReadSet,
                    TxnWrites) < std::tie(O.Pc, O.Buffers, O.Regs,
                                          O.RegValid, O.Memory, O.InTxn,
                                          O.ReadSet, O.TxnWrites);
  }
};

class Explorer {
public:
  explicit Explorer(const Program &P) : P(P) {
    NumLocs = static_cast<unsigned>(P.LocNames.size());
    Ok = P.locByName("ok");
  }

  std::vector<Outcome> run() {
    MachineState S;
    unsigned T = static_cast<unsigned>(P.Threads.size());
    S.Pc.assign(T, 0);
    S.Buffers.assign(T, {});
    S.Regs.resize(T);
    S.RegValid.resize(T);
    for (unsigned I = 0; I < T; ++I) {
      S.Regs[I].assign(P.Threads[I].size(), 0);
      S.RegValid[I].assign(P.Threads[I].size(), false);
    }
    S.Memory.assign(NumLocs, 0);
    for (const auto &[L, V] : P.InitialValues)
      S.Memory[L] = V;
    S.InTxn.assign(T, false);
    S.ReadSet.assign(T, {});
    S.TxnWrites.assign(T, {});
    explore(S);

    std::vector<Outcome> Out(Final.begin(), Final.end());
    return Out;
  }

private:
  const Program &P;
  unsigned NumLocs = 0;
  LocId Ok = -1;
  std::set<MachineState> Visited;
  std::set<Outcome> Final;

  bool done(const MachineState &S) const {
    for (unsigned T = 0; T < S.Pc.size(); ++T)
      if (S.Pc[T] < P.Threads[T].size() || !S.Buffers[T].empty())
        return false;
    return true;
  }

  void recordOutcome(const MachineState &S) {
    Outcome O;
    for (unsigned T = 0; T < S.Regs.size(); ++T)
      for (unsigned I = 0; I < S.Regs[T].size(); ++I)
        if (P.Threads[T][I].K == Instruction::Kind::Load &&
            S.RegValid[T][I])
          O.RegValues.push_back({T, I, S.Regs[T][I]});
    std::sort(O.RegValues.begin(), O.RegValues.end());
    O.MemValues.assign(NumLocs, 0);
    for (unsigned L = 0; L < NumLocs; ++L)
      O.MemValues[L] = S.Memory[L];
    Final.insert(O);
  }

  /// A store by \p Writer to \p Loc became architecturally visible: abort
  /// every other thread's transaction whose read or write set contains it.
  void conflict(MachineState &S, unsigned Writer, LocId Loc) {
    for (unsigned T = 0; T < S.InTxn.size(); ++T) {
      if (T == Writer || !S.InTxn[T])
        continue;
      bool Hit = std::find(S.ReadSet[T].begin(), S.ReadSet[T].end(), Loc) !=
                 S.ReadSet[T].end();
      for (const auto &[L, V] : S.TxnWrites[T])
        Hit |= L == Loc;
      if (Hit)
        abortTxn(S, T);
    }
  }

  /// Roll back thread \p T's transaction and run its abort handler:
  /// restore the architectural state (registers of rolled-back loads),
  /// skip to after the matching txend, and enqueue `ok <- 0`.
  void abortTxn(MachineState &S, unsigned T) {
    S.InTxn[T] = false;
    S.ReadSet[T].clear();
    S.TxnWrites[T].clear();
    // Registers written inside the transaction are restored: find the
    // txbegin this abort belongs to and invalidate the loads after it.
    unsigned Begin = S.Pc[T];
    while (Begin > 0 &&
           P.Threads[T][Begin - 1].K != Instruction::Kind::TxBegin)
      --Begin;
    for (unsigned I = Begin; I < S.Pc[T]; ++I)
      if (P.Threads[T][I].K == Instruction::Kind::Load) {
        S.Regs[T][I] = 0;
        S.RegValid[T][I] = false;
      }
    unsigned Depth = 0;
    while (S.Pc[T] < P.Threads[T].size()) {
      const Instruction &I = P.Threads[T][S.Pc[T]];
      ++S.Pc[T];
      if (I.K == Instruction::Kind::TxEnd && Depth == 0)
        break;
      if (I.K == Instruction::Kind::TxBegin)
        ++Depth;
      if (I.K == Instruction::Kind::TxEnd && Depth > 0)
        --Depth;
    }
    if (Ok >= 0)
      S.Buffers[T].push_back({Ok, 0});
  }

  /// Latest buffered value for \p Loc in \p T's buffer, if any.
  bool snoopBuffer(const MachineState &S, unsigned T, LocId Loc,
                   int &Val) const {
    for (auto It = S.Buffers[T].rbegin(); It != S.Buffers[T].rend(); ++It)
      if (It->first == Loc) {
        Val = It->second;
        return true;
      }
    return false;
  }

  void explore(MachineState S) {
    if (!Visited.insert(S).second)
      return;
    if (done(S)) {
      recordOutcome(S);
      return;
    }

    // Choice 1: drain the oldest store of some buffer to memory.
    for (unsigned T = 0; T < S.Pc.size(); ++T) {
      if (S.Buffers[T].empty())
        continue;
      MachineState N = S;
      auto [Loc, Val] = N.Buffers[T].front();
      N.Buffers[T].erase(N.Buffers[T].begin());
      N.Memory[Loc] = Val;
      conflict(N, T, Loc);
      explore(std::move(N));
    }

    // Choice 2: step some thread's next instruction.
    for (unsigned T = 0; T < S.Pc.size(); ++T) {
      if (S.Pc[T] >= P.Threads[T].size())
        continue;
      const Instruction &I = P.Threads[T][S.Pc[T]];
      switch (I.K) {
      case Instruction::Kind::Load: {
        if (I.Exclusive && I.RmwPartner >= 0) {
          // Locked RMW: buffer must be empty; read+write atomic.
          if (!S.Buffers[T].empty() || S.InTxn[T])
            break;
          MachineState N = S;
          N.Regs[T][N.Pc[T]] = N.Memory[I.Loc];
          N.RegValid[T][N.Pc[T]] = true;
          const Instruction &W =
              P.Threads[T][static_cast<unsigned>(I.RmwPartner)];
          N.Memory[W.Loc] = W.Value;
          conflict(N, T, W.Loc);
          N.Pc[T] = static_cast<unsigned>(I.RmwPartner) + 1;
          explore(std::move(N));
          break;
        }
        MachineState N = S;
        int Val;
        if (N.InTxn[T]) {
          // Transactional read: own txn writes, else memory; grow the
          // read set.
          bool FromTxn = false;
          for (auto It = N.TxnWrites[T].rbegin();
               It != N.TxnWrites[T].rend(); ++It)
            if (It->first == I.Loc) {
              Val = It->second;
              FromTxn = true;
              break;
            }
          if (!FromTxn)
            Val = N.Memory[I.Loc];
          if (std::find(N.ReadSet[T].begin(), N.ReadSet[T].end(), I.Loc) ==
              N.ReadSet[T].end())
            N.ReadSet[T].push_back(I.Loc);
        } else if (!snoopBuffer(N, T, I.Loc, Val)) {
          Val = N.Memory[I.Loc];
        }
        N.Regs[T][N.Pc[T]] = Val;
        N.RegValid[T][N.Pc[T]] = true;
        ++N.Pc[T];
        explore(std::move(N));
        break;
      }
      case Instruction::Kind::Store: {
        if (I.Exclusive && I.RmwPartner >= 0 &&
            static_cast<unsigned>(I.RmwPartner) < S.Pc[T])
          break; // handled with the read half
        MachineState N = S;
        if (N.InTxn[T]) {
          N.TxnWrites[T].push_back({I.Loc, I.Value});
        } else {
          N.Buffers[T].push_back({I.Loc, I.Value});
        }
        ++N.Pc[T];
        explore(std::move(N));
        break;
      }
      case Instruction::Kind::Fence: {
        if (!S.Buffers[T].empty())
          break; // MFENCE stalls until the buffer drains
        MachineState N = S;
        ++N.Pc[T];
        explore(std::move(N));
        break;
      }
      case Instruction::Kind::TxBegin: {
        if (!S.Buffers[T].empty())
          break; // boundary has locked-instruction semantics
        {
          MachineState N = S;
          ++N.Pc[T];
          N.InTxn[T] = true;
          explore(std::move(N));
        }
        {
          // Spontaneous abort: straight to the handler.
          MachineState N = S;
          ++N.Pc[T];
          N.InTxn[T] = true;
          abortTxn(N, T);
          explore(std::move(N));
        }
        break;
      }
      case Instruction::Kind::TxEnd: {
        if (!S.InTxn[T])
          break;
        MachineState N = S;
        // Atomic commit: publish the write set, aborting conflicting
        // transactions elsewhere.
        for (const auto &[L, V] : N.TxnWrites[T]) {
          N.Memory[L] = V;
          conflict(N, T, L);
        }
        N.InTxn[T] = false;
        N.ReadSet[T].clear();
        N.TxnWrites[T].clear();
        ++N.Pc[T];
        explore(std::move(N));
        break;
      }
      case Instruction::Kind::Lock:
      case Instruction::Kind::Unlock:
      case Instruction::Kind::TxLock:
      case Instruction::Kind::TxUnlock:
        // Lock method calls are abstract; they do not run on the machine.
        break;
      }
    }
  }
};

} // namespace

std::vector<Outcome> TsoMachine::reachableOutcomes() {
  Explorer E(P);
  return E.run();
}

bool TsoMachine::postconditionObservable() {
  for (const Outcome &O : reachableOutcomes())
    if (O.satisfies(P))
      return true;
  return false;
}
