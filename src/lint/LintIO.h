//===- LintIO.h - Machine-readable lint reports -----------------*- C++ -*-==//
///
/// \file
/// The `tmw-lint-v1` wire document: one JSON object covering a batch of
/// linted programs, consumed by CI (the corpus-lints-clean gate uploads it
/// beside `contract_audit.json`). Fields render in a fixed order so equal
/// reports are byte-identical — the same canonical-form discipline as the
/// verdict and audit documents.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_LINT_LINTIO_H
#define TMW_LINT_LINTIO_H

#include "lint/Lint.h"

#include <span>
#include <string>
#include <string_view>

namespace tmw {

inline constexpr std::string_view kLintReportSchema = "tmw-lint-v1";

/// One linted program: its name, diagnostics, and static facts.
struct LintedProgram {
  std::string Name;
  LintReport Report;
  ProgramFacts Facts;
};

/// Render the whole batch as one `tmw-lint-v1` document (trailing
/// newline included). Field order is fixed.
std::string lintReportToJson(std::span<const LintedProgram> Programs);

/// Render one program's findings as human-readable diagnostic lines
/// ("name:line: severity: message [code]"), one per finding; empty when
/// the program is clean.
std::string lintFindingsToText(const LintedProgram &LP);

} // namespace tmw

#endif // TMW_LINT_LINTIO_H
