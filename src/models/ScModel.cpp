//===- ScModel.cpp - SC and Transactional SC --------------------------------==//

#include "models/ScModel.h"

using namespace tmw;

ConsistencyResult ScModel::check(const Execution &X) const {
  Relation Hb = X.Po | X.com();
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");
  return ConsistencyResult::ok();
}

ConsistencyResult TscModel::check(const Execution &X) const {
  Relation Hb = X.Po | X.com();
  if (!Hb.isAcyclic())
    return ConsistencyResult::fail("Order");
  if (!strongLift(Hb, X.stxn()).isAcyclic())
    return ConsistencyResult::fail("TxnOrder");
  return ConsistencyResult::ok();
}
