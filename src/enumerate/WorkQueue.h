//===- WorkQueue.h - Work-stealing pool over enumeration prefixes -*- C++ -*-==//
///
/// \file
/// A work-stealing task pool whose units are *canonical-DFS prefixes* of
/// the base-execution search (`BasePrefix`): a complete skeleton (the
/// non-increasing thread-size vector, i.e. every decision up to and
/// including the last skeleton choice) plus the first K event-labelling
/// decisions in thread-major event order. The prefixes held by the pool
/// partition the unexplored base space exactly at every instant: a task is
/// either *split* — replaced by one child per admissible label of event K,
/// which `ExecutionEnumerator::expandPrefix` derives from the same choice
/// generator the sequential DFS uses — or *run* to completion via
/// `ExecutionEnumerator::forEachBasePrefixed`. Splitting is driven by the
/// consumer (typically until `estimateCost` falls under a target), so K
/// adapts to the local branching structure instead of being fixed.
///
/// Each worker owns a deque: locally produced children are pushed and
/// popped LIFO (depth-first locality, bounded memory), and an idle worker
/// steals the *oldest* — shallowest, hence biggest — unexpanded prefix
/// from the fullest victim deque. Operations are guarded by one pool
/// mutex; tasks are coarse (thousands of label completions), so the lock
/// is not contended. Termination is exact: `pop` blocks until a task is
/// available and only returns false when every deque is empty and no
/// popped task is still being processed (`finish` not yet called), or the
/// pool was cancelled (e.g. on budget exhaustion).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_ENUMERATE_WORKQUEUE_H
#define TMW_ENUMERATE_WORKQUEUE_H

#include "enumerate/Prefix.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace tmw {

/// Work-stealing pool of `BasePrefix` tasks. Thread-safe; one instance per
/// parallel search.
class WorkQueue {
public:
  explicit WorkQueue(unsigned NumWorkers);

  /// Deal a root task round-robin across the worker deques (front-insert,
  /// so each owner's LIFO pop walks its seeds in the order they were
  /// dealt). Call before the workers start (not thread-safe against
  /// pop/push).
  void seed(BasePrefix P);

  /// Get the next task for \p Worker: own deque LIFO first, otherwise
  /// steal the oldest prefix from the fullest other deque (\p WasSteal
  /// reports which). Blocks while the pool is momentarily empty but some
  /// worker still holds a task it may split. Returns false when the space
  /// is exhausted or `cancel()` was called.
  bool pop(unsigned Worker, BasePrefix &Out, bool &WasSteal);

  /// Push a child task produced by splitting \p Worker's current task.
  void push(unsigned Worker, BasePrefix P);

  /// Mark \p Worker's current task fully processed (run or split). Every
  /// successful `pop` must be paired with exactly one `finish`.
  void finish(unsigned Worker);

  /// Abort: wake every blocked worker and make all pops return false.
  /// Tasks still queued are dropped.
  void cancel();
  bool cancelled() const;

  unsigned numWorkers() const {
    return static_cast<unsigned>(Deques.size());
  }

private:
  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::vector<std::deque<BasePrefix>> Deques;
  /// Tasks popped but not yet finished; termination needs it zero.
  unsigned InFlight = 0;
  unsigned SeedCursor = 0;
  bool Cancelled = false;
};

} // namespace tmw

#endif // TMW_ENUMERATE_WORKQUEUE_H
