//===- minimize_test.cpp - Counterexample shrinking ----------------------------==//

#include "metatheory/Minimize.h"

#include "TestGraphs.h"
#include "models/Armv8Model.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(MinimizeTest, ShrinksToMinimal) {
  // SB+txns plus an irrelevant extra read: minimisation must strip the
  // read and produce a member of the Forbid set.
  ExecutionBuilder B;
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(0, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  B.read(2, 0); // irrelevant
  B.txn({W0});
  B.txn({W1});
  Execution X = B.build();

  X86Model M;
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ASSERT_FALSE(M.consistent(X));
  ASSERT_FALSE(isMinimallyInconsistent(X, M, V));

  Execution Min = minimizeInconsistent(X, M, V);
  EXPECT_FALSE(M.consistent(Min));
  EXPECT_TRUE(isMinimallyInconsistent(Min, M, V));
  EXPECT_LT(Min.size(), X.size());
}

TEST(MinimizeTest, AlreadyMinimalIsFixedPoint) {
  // The truly minimal TxnCancelsRMW witness: an exclusive pair with only
  // the write transactional (the §8.1 double-box shape shrinks to this).
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.rmw(R, W);
  B.txn({W});
  Execution X = B.build();
  Armv8Model M;
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  ASSERT_TRUE(isMinimallyInconsistent(X, M, V));
  Execution Min = minimizeInconsistent(X, M, V);
  EXPECT_TRUE(Min == X);
}

TEST(MinimizeTest, DoubleBoxShrinksToSingleBox) {
  Execution X = shapes::rmwAcrossTxns(false);
  Armv8Model M;
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  ASSERT_FALSE(M.consistent(X));
  Execution Min = minimizeInconsistent(X, M, V);
  EXPECT_TRUE(isMinimallyInconsistent(Min, M, V));
  // One transaction survives; the rmw still crosses its boundary.
  EXPECT_EQ(Min.numTxns(), 1u);
  EXPECT_FALSE(Min.Rmw.isEmpty());
}

TEST(MinimizeTest, InvariantRestrictsShrinking) {
  // Minimise an SC violation while requiring at least four events: the
  // invariant stops event removal below the floor.
  Execution X = shapes::iriw();
  ScModel M;
  Vocabulary V = Vocabulary::forArch(Arch::SC);
  ASSERT_FALSE(M.consistent(X));
  Execution Min = minimizeInconsistent(
      X, M, V, [](const Execution &Y) { return Y.size() >= 6; });
  EXPECT_FALSE(M.consistent(Min));
  EXPECT_GE(Min.size(), 6u);
}

TEST(MinimizeTest, MinimisedWitnessStaysExhibitedByBuggyRtl) {
  // The DMB-fixed Example 1.1 execution minimised within "the buggy RTL
  // still exhibits it": the result is a Forbid-style witness separating
  // spec from RTL.
  Execution X = shapes::lockElisionConcrete(/*FixedSpinlock=*/true);
  Armv8Model Spec;
  Armv8Model::Config BuggyCfg;
  BuggyCfg.TxnOrder = false;
  Armv8Model Buggy(BuggyCfg);
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  ASSERT_FALSE(Spec.consistent(X));
  ASSERT_TRUE(Buggy.consistent(X));

  Execution Min = minimizeInconsistent(
      X, Spec, V,
      [&Buggy](const Execution &Y) { return Buggy.consistent(Y); });
  EXPECT_FALSE(Spec.consistent(Min));
  EXPECT_TRUE(Buggy.consistent(Min));
  EXPECT_LE(Min.size(), X.size());
}

} // namespace
