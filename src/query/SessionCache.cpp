//===- SessionCache.cpp - Resident parse/resolve caches ------------------------==//

#include "query/SessionCache.h"

#include "models/ModelRegistry.h"

#include <algorithm>
#include <vector>

using namespace tmw;

std::shared_ptr<const ParseResult> SessionCache::program(
    std::string_view Source, ProgramFacts *Facts) {
  std::string Key(Source);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Programs.find(Key);
    if (It != Programs.end()) {
      ++S.ProgramHits;
      // Refresh the recency stamp: overflow evicts the least-recently-
      // touched half, so a hot working set survives an adversarial churn
      // of one-off sources.
      It->second.Gen = ++NextGen;
      if (Facts)
        *Facts = It->second.Facts;
      return It->second.Parse;
    }
    ++S.ProgramMisses;
  }
  // Parse outside the lock: batches parse distinct programs concurrently.
  // Two workers racing on the same source both parse; the results are
  // identical (parsing is deterministic), so whichever insert lands is
  // fine and the loser's copy just serves its own request. Facts ride
  // along: computed once here, handed out with every future hit.
  auto Parsed = std::make_shared<const ParseResult>(parseProgram(Source));
  ProgramFacts ParsedFacts;
  if (*Parsed)
    ParsedFacts = computeFacts(Parsed->Prog);
  if (Facts)
    *Facts = ParsedFacts;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Programs.size() >= MaxPrograms) {
    // Evict only the least-recently-touched half (wholesale dropping all
    // ~MaxPrograms entries caused a thundering re-parse of the whole
    // working set on the next batch). Generations are unique, so exactly
    // `Evict` entries — the oldest — go. Verdict-neutral: in-flight
    // requests keep their shared_ptrs, dropped entries just re-parse.
    size_t Evict = Programs.size() - Programs.size() / 2;
    std::vector<uint64_t> Gens;
    Gens.reserve(Programs.size());
    for (const auto &KV : Programs)
      Gens.push_back(KV.second.Gen);
    std::nth_element(Gens.begin(), Gens.begin() + (Evict - 1), Gens.end());
    uint64_t Cut = Gens[Evict - 1];
    for (auto It = Programs.begin(); It != Programs.end();) {
      if (It->second.Gen <= Cut)
        It = Programs.erase(It);
      else
        ++It;
    }
    ++S.ProgramEvictions;
    S.ProgramsEvicted += Evict;
  }
  auto [It, Inserted] = Programs.emplace(
      std::move(Key), ProgramEntry{Parsed, ParsedFacts, ++NextGen});
  S.ProgramsCached = Programs.size();
  return Inserted ? Parsed : It->second.Parse;
}

std::shared_ptr<const MemoryModel> SessionCache::model(
    const std::string &Spec, std::string *Error) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Models.find(Spec);
    if (It != Models.end()) {
      ++S.ModelHits;
      return It->second;
    }
    ++S.ModelMisses;
  }
  std::shared_ptr<const MemoryModel> M = ModelRegistry::parse(Spec, Error);
  if (!M)
    return nullptr;
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Models.emplace(Spec, M);
  S.ModelsCached = Models.size();
  return Inserted ? M : It->second;
}

std::shared_ptr<const EvalPlan>
SessionCache::plan(const std::string &Key,
                   std::span<const MemoryModel *const> Models, bool *Hit) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Plans.find(Key);
    if (It != Plans.end()) {
      ++S.PlanHits;
      if (Hit)
        *Hit = true;
      return It->second;
    }
    ++S.PlanMisses;
    if (Hit)
      *Hit = false;
  }
  // Compile outside the lock; racing workers produce identical plans
  // (compilation is deterministic), so either insert may land.
  auto P = std::make_shared<const EvalPlan>(EvalPlan::compile(Models));
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = Plans.emplace(Key, P);
  S.PlansCached = Plans.size();
  return Inserted ? P : It->second;
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

void SessionCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Programs.clear();
  Models.clear();
  Plans.clear();
  S.ProgramsCached = S.ModelsCached = S.PlansCached = 0;
}
