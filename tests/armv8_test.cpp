//===- armv8_test.cpp - ARMv8 with proposed transactions (Fig. 8, §6) ---------==//

#include "TestGraphs.h"
#include "models/Armv8Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(Armv8Test, AllowsStoreBuffering) {
  Armv8Model M;
  EXPECT_TRUE(M.consistent(shapes::storeBuffering()));
}

TEST(Armv8Test, DmbForbidsStoreBuffering) {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  B.fence(0, FenceKind::Dmb);
  B.read(0, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  B.fence(1, FenceKind::Dmb);
  B.read(1, 0);
  Armv8Model M;
  EXPECT_FALSE(M.consistent(B.build()));
}

TEST(Armv8Test, AllowsMessagePassingPlain) {
  Armv8Model M;
  EXPECT_TRUE(M.consistent(shapes::messagePassing()));
}

TEST(Armv8Test, ReleaseAcquireForbidsMessagePassing) {
  Armv8Model M;
  EXPECT_FALSE(M.consistent(
      shapes::messagePassing(MemOrder::Release, MemOrder::Acquire)));
}

TEST(Armv8Test, OneSidedOrderingLeavesMessagePassingObservable) {
  // Acquire on the reader orders the two loads but leaves the writer's
  // stores free to reorder — and dually for a release write alone. Both
  // one-sided variants stay observable; only the rel/acq pair is
  // forbidden (previous test).
  Armv8Model M;
  EXPECT_TRUE(M.consistent(
      shapes::messagePassing(MemOrder::NonAtomic, MemOrder::Acquire)));
  EXPECT_TRUE(M.consistent(
      shapes::messagePassing(MemOrder::Release, MemOrder::NonAtomic)));
}

TEST(Armv8Test, AllowsLoadBufferingWithoutDeps) {
  Armv8Model M;
  EXPECT_TRUE(M.consistent(shapes::loadBuffering(false)));
}

TEST(Armv8Test, DataDepsForbidLoadBuffering) {
  Armv8Model M;
  EXPECT_FALSE(M.consistent(shapes::loadBuffering(true)));
}

TEST(Armv8Test, MulticopyAtomicityForbidsIriwWithAcquires) {
  // Unlike Power, ARMv8 is multicopy-atomic: IRIW with acquire loads is
  // forbidden.
  Armv8Model M;
  EXPECT_FALSE(M.consistent(shapes::iriw(MemOrder::Acquire)));
}

TEST(Armv8Test, AllowsIriwPlain) {
  Armv8Model M;
  EXPECT_TRUE(M.consistent(shapes::iriw()));
}

TEST(Armv8Test, IsbWithAddrPoOrdersReads) {
  // MP variant: reader has addr;po into an ISB, then the stale read —
  // the (addr;po);[ISB];po;[R] piece of dob forbids it when the writer
  // uses a DMB.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  B.fence(0, FenceKind::Dmb);
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(1, 1);
  EventId Rz = B.read(1, 2); // address depends on Ry
  B.fence(1, FenceKind::Isb);
  EventId Rx = B.read(1, 0); // stale
  B.write(2, 2, MemOrder::NonAtomic, 1); // make z shared
  B.rf(Wy, Ry);
  B.addr(Ry, Rz);
  (void)Rx;
  Armv8Model M;
  EXPECT_FALSE(M.consistent(B.build()));
}

//===----------------------------------------------------------------------===
// TM additions (§6.1) and the §6.2/§1.1 findings.
//===----------------------------------------------------------------------===

TEST(Armv8TmTest, TfenceForbidsStoreBufferingAroundTransactions) {
  ExecutionBuilder B;
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(0, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  B.txn({W0});
  B.txn({W1});
  Execution X = B.build();
  Armv8Model Tm;
  EXPECT_FALSE(Tm.consistent(X));
  Armv8Model Baseline{Armv8Model::Config::baseline()};
  EXPECT_TRUE(Baseline.consistent(X));
}

TEST(Armv8TmTest, TxnCancelsRmwAcrossBoundary) {
  Armv8Model Tm;
  ConsistencyResult R = Tm.check(shapes::rmwAcrossTxns(false));
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "TxnCancelsRMW");
  EXPECT_TRUE(Tm.consistent(shapes::rmwAcrossTxns(true)));
}

TEST(Armv8TmTest, StrongIsolation) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(1, 0);
  B.co(W1, W2);
  B.rf(W1, R); // observes the intermediate transactional value
  B.txn({W1, W2});
  Armv8Model Tm;
  EXPECT_FALSE(Tm.consistent(B.build()));
}

TEST(Armv8TmTest, Example11LockElisionBugReproduced) {
  // The headline finding: the mutual-exclusion-violating execution of
  // Example 1.1 is CONSISTENT under ARMv8+TM — lock elision with the
  // recommended spinlock is unsound.
  Execution X = shapes::lockElisionConcrete(/*FixedSpinlock=*/false);
  Armv8Model Tm;
  EXPECT_TRUE(Tm.consistent(X));
}

TEST(Armv8TmTest, Example11FixedByDmb) {
  // Appending a DMB to lock() forbids the counterexample (§1.1).
  Execution X = shapes::lockElisionConcrete(/*FixedSpinlock=*/true);
  Armv8Model Tm;
  ConsistencyResult R = Tm.check(X);
  EXPECT_FALSE(R.Consistent);
  EXPECT_EQ(R.FailedAxiom, "TxnOrder");
}

TEST(Armv8TmTest, AppendixBVariantReproduced) {
  // Appendix B: an external load observing an intermediate write of the
  // locked critical region.
  Execution X = shapes::lockElisionConcrete(/*FixedSpinlock=*/false,
                                            /*LoadVariant=*/true);
  Armv8Model Tm;
  EXPECT_TRUE(Tm.consistent(X));

  Execution Fixed = shapes::lockElisionConcrete(/*FixedSpinlock=*/true,
                                                /*LoadVariant=*/true);
  EXPECT_FALSE(Tm.consistent(Fixed));
}

TEST(Armv8TmTest, BuggyRtlAllowsTxnOrderViolation) {
  // §6.2: a configuration with TxnOrder dropped (the RTL prototype bug)
  // admits executions the architectural model forbids. The DMB-fixed
  // Example 1.1 execution fails exactly TxnOrder, so it separates the
  // architectural model from the buggy RTL.
  Execution X = shapes::lockElisionConcrete(/*FixedSpinlock=*/true);
  Armv8Model Tm;
  EXPECT_FALSE(Tm.consistent(X));
  Armv8Model::Config Buggy;
  Buggy.TxnOrder = false;
  EXPECT_TRUE(Armv8Model(Buggy).consistent(X));
}

TEST(Armv8TmTest, TransactionFreeExecutionsUnchanged) {
  Armv8Model Tm;
  Armv8Model Baseline{Armv8Model::Config::baseline()};
  for (const Execution &X :
       {shapes::storeBuffering(), shapes::messagePassing(),
        shapes::loadBuffering(true), shapes::iriw(MemOrder::Acquire)}) {
    EXPECT_EQ(Tm.consistent(X), Baseline.consistent(X));
  }
}

} // namespace
