//===- SessionCache.h - Resident parse/resolve caches ----------*- C++ -*-==//
///
/// \file
/// The state a long-lived query session keeps resident across batches so
/// repeated queries stop paying per-batch setup: parsed `Program`s keyed
/// by their full DSL source (content-addressed through the map's string
/// hash — identical source always hits, and an entry can never go stale),
/// and resolved model-registry specs interned by spec string (models are
/// immutable after configuration, so one instance is shared freely across
/// worker threads and batches).
///
/// Ownership contract: lookups hand out `shared_ptr`s, so an entry stays
/// alive for as long as any in-flight request references it — eviction
/// (or `clear()`) during evaluation is safe. Parse *failures* are cached
/// too: a long-lived server would otherwise re-parse a repeatedly
/// submitted bad program from scratch every batch.
///
/// The program cache is bounded (`MaxPrograms`); when an insert would
/// exceed the bound, the *least-recently-touched half* of the entries is
/// evicted (each entry carries a generation stamp, refreshed on hit) —
/// correct under the content-addressed contract (nothing can be stale, a
/// dropped entry just re-parses), and it keeps an adversarial stream of
/// unique sources from growing the server without bound. Half-eviction
/// replaces the original wholesale drop, which re-parsed the *entire*
/// resident working set on the next batch — a thundering re-parse spike
/// under the multiplexer when many rival clients share the one cache.
/// The model cache is tiny (spec strings) and unbounded.
///
/// Thread-safe: one mutex guards both maps; lookups are cheap next to
/// enumeration, so the lock is uncontended in practice.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_QUERY_SESSIONCACHE_H
#define TMW_QUERY_SESSIONCACHE_H

#include "lint/Lint.h"
#include "litmus/Parser.h"
#include "models/EvalPlan.h"
#include "models/MemoryModel.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tmw {

/// Resident caches of one query session (see file comment).
class SessionCache {
public:
  /// Hit/miss accounting, for observability and the cache tests.
  struct Stats {
    uint64_t ProgramHits = 0, ProgramMisses = 0;
    uint64_t ModelHits = 0, ModelMisses = 0;
    uint64_t PlanHits = 0, PlanMisses = 0;
    /// Entries currently resident.
    uint64_t ProgramsCached = 0, ModelsCached = 0, PlansCached = 0;
    /// Times the bounded program map overflowed (one half-eviction each)
    /// and total entries dropped across those evictions.
    uint64_t ProgramEvictions = 0, ProgramsEvicted = 0;
  };

  explicit SessionCache(size_t MaxPrograms = kDefaultMaxPrograms)
      : MaxPrograms(MaxPrograms) {}

  /// Parse-or-fetch \p Source. The result (including a parse failure) is
  /// cached under the full source text; the returned pointer keeps the
  /// program alive independently of the cache. \p Facts, when non-null,
  /// receives the program's static facts (lint/Lint.h) — computed once at
  /// parse time and cached beside the parse, so repeated queries against
  /// a resident program pay for the facts scan exactly once. (Default-
  /// valued for a failed parse, which has no program to specialize.)
  std::shared_ptr<const ParseResult> program(std::string_view Source,
                                             ProgramFacts *Facts = nullptr);

  /// Resolve-or-fetch the registry spec \p Spec. Returns nullptr (and
  /// sets \p Error) for an unresolvable spec; failures are not cached.
  std::shared_ptr<const MemoryModel> model(const std::string &Spec,
                                           std::string *Error = nullptr);

  /// Compile-or-fetch the cross-spec evaluation plan for \p Models,
  /// keyed by \p Key — the request's *canonical* printed specs joined by
  /// newlines, so every way of writing the same resolved spec list hits
  /// one plan. Compilation is deterministic over the resolved models, so
  /// a cached plan is identical to a fresh one; the batch plans each
  /// distinct spec set once and every request of the batch reuses it.
  /// \p Hit, when set, reports whether this lookup was served resident.
  std::shared_ptr<const EvalPlan>
  plan(const std::string &Key, std::span<const MemoryModel *const> Models,
       bool *Hit = nullptr);

  Stats stats() const;

  /// Drop everything (in-flight requests keep their shared_ptrs).
  void clear();

  static constexpr size_t kDefaultMaxPrograms = 4096;

private:
  /// One bounded-map entry: the parse, its static facts (computed at
  /// insert, served with every hit), and its recency stamp (refreshed on
  /// hit), so overflow evicts the least-recently-touched half.
  struct ProgramEntry {
    std::shared_ptr<const ParseResult> Parse;
    ProgramFacts Facts;
    uint64_t Gen = 0;
  };

  const size_t MaxPrograms;
  mutable std::mutex Mu;
  std::unordered_map<std::string, ProgramEntry> Programs;
  uint64_t NextGen = 0;
  std::unordered_map<std::string, std::shared_ptr<const MemoryModel>>
      Models;
  /// Compiled evaluation plans keyed by canonical spec-set (tiny, like
  /// the model cache: sessions check a handful of spec sets).
  std::unordered_map<std::string, std::shared_ptr<const EvalPlan>> Plans;
  Stats S;
};

} // namespace tmw

#endif // TMW_QUERY_SESSIONCACHE_H
