//===- server_test.cpp - The long-lived query server -----------------------------==//
///
/// Drives the resident server (server/QueryServer.h) in-process across
/// multi-batch sessions: cache hits on repeated sources and spec
/// re-resolutions, malformed batches answered without process death,
/// byte-determinism of served documents against one-shot engine runs
/// (across jobs counts and across batches on one session), pool reuse
/// over many batches, and the Unix-socket transport.
///
//===----------------------------------------------------------------------===//

#include "litmus/Library.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"
#include "query/SessionCache.h"
#include "server/QueryServer.h"
#include "server/Transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tmw;

namespace {

const char *SbSource = R"(name SB-inline
thread 0
  store x 1
  load y
thread 1
  store y 1
  load x
post reg 0 r1 0
post reg 1 r1 0
)";

std::vector<CheckRequest> sampleBatch() {
  std::vector<CheckRequest> Requests;
  CheckRequest A;
  A.Source = SbSource;
  A.ModelSpecs = {"x86", "power/-TxnOrder", "power8"};
  A.Explain = true;
  A.WantOutcomes = true;
  Requests.push_back(A);
  CheckRequest B;
  B.Corpus = "MP";
  B.WantOutcomes = true;
  Requests.push_back(B);
  return Requests;
}

/// The reference bytes: what a one-shot engine run (litmus_tool --json's
/// path) prints for the same requests.
std::string oneShot(const std::vector<CheckRequest> &Requests,
                    unsigned Jobs = 1) {
  return responsesToJson(QueryEngine({Jobs}).runAll(Requests));
}

TEST(QueryServer, MatchesOneShotBytesAcrossJobsAndBatches) {
  std::vector<CheckRequest> Requests = sampleBatch();
  std::string Line = requestsToJsonLine(Requests);
  std::string Reference = oneShot(Requests);
  ASSERT_EQ(Reference, oneShot(Requests, 4)); // engine side is jobs-stable

  for (unsigned Jobs : {1u, 2u, 7u}) {
    QueryServer S({Jobs});
    // Repeated batches on one resident session: identical bytes every
    // time — first batch (cold caches) included.
    for (int Batch = 0; Batch < 3; ++Batch)
      EXPECT_EQ(S.serveLine(Line), Reference)
          << "jobs " << Jobs << " batch " << Batch;
  }
}

TEST(QueryServer, SessionCacheHitsOnRepeatedWork) {
  QueryServer S({2});
  std::string Line = requestsToJsonLine(sampleBatch());

  S.serveLine(Line);
  ServerStats After1 = S.stats();
  // First batch: the inline source parses once (miss), specs resolve
  // once each (misses), nothing can hit yet.
  EXPECT_EQ(After1.Cache.ProgramMisses, 1u);
  EXPECT_EQ(After1.Cache.ProgramHits, 0u);
  EXPECT_EQ(After1.Cache.ProgramsCached, 1u);
  EXPECT_GE(After1.Cache.ModelMisses, 3u); // x86, power/-TxnOrder, power8 (+ defaults for MP)
  uint64_t Misses1 = After1.Cache.ModelMisses;

  S.serveLine(Line);
  ServerStats After2 = S.stats();
  // Second batch: same source → program cache hit, no new parse; same
  // specs → interned models, no new resolution.
  EXPECT_EQ(After2.Cache.ProgramMisses, 1u);
  EXPECT_EQ(After2.Cache.ProgramHits, 1u);
  EXPECT_EQ(After2.Cache.ModelMisses, Misses1);
  EXPECT_GT(After2.Cache.ModelHits, After1.Cache.ModelHits);
  EXPECT_EQ(After2.Batches, 2u);
  EXPECT_EQ(After2.Requests, 4u);
}

TEST(QueryServer, MalformedBatchAnswersWithoutDying) {
  QueryServer S({2});
  std::string Good = requestsToJsonLine(sampleBatch());
  std::string Reference = oneShot(sampleBatch());

  // A broken line answers with a schema'd error document...
  std::string ErrDoc = S.serveLine("{\"schema\": \"tmw-query-batch-v1\", ");
  EXPECT_NE(ErrDoc.find("\"schema\": \"tmw-query-verdicts-v1\""),
            std::string::npos);
  EXPECT_NE(ErrDoc.find("\"error\": \"batch parse error: "),
            std::string::npos);
  EXPECT_NE(ErrDoc.find("\"responses\": [\n ]"), std::string::npos);
  // ... and the session keeps serving correct bytes afterwards.
  EXPECT_EQ(S.serveLine(Good), Reference);
  EXPECT_EQ(S.stats().BadBatches, 1u);

  // Same through the stream loop: good, bad, blank, good — the bad
  // line's document carries exactly the parser's diagnostic.
  std::vector<CheckRequest> Sink;
  std::string ParseError;
  ASSERT_FALSE(requestsFromJson("not json", Sink, &ParseError));
  std::istringstream In(Good + "\nnot json\n   \n" + Good + "\n");
  std::ostringstream Out;
  S.serveStream(In, Out);
  std::string Expect = Reference +
                       batchErrorToJson("batch parse error: " + ParseError) +
                       Reference;
  EXPECT_EQ(Out.str(), Expect);
}

TEST(QueryServer, RequestErrorsAreResponsesNotDeath) {
  // Errors *inside* a well-formed batch surface per response, exactly as
  // the one-shot engine reports them.
  std::vector<CheckRequest> Requests;
  CheckRequest Bad;
  Bad.Name = "bad-spec";
  Bad.Corpus = "SB";
  Bad.ModelSpecs = {"not-a-model"};
  Requests.push_back(Bad);
  CheckRequest Unparsable;
  Unparsable.Name = "bad-dsl";
  Unparsable.Source = "thread 0\n  fetch x\n";
  Requests.push_back(Unparsable);
  CheckRequest Fine;
  Fine.Corpus = "SB";
  Requests.push_back(Fine);

  QueryServer S({2});
  std::string Served = S.serveLine(requestsToJsonLine(Requests));
  EXPECT_EQ(Served, oneShot(Requests));

  std::vector<CheckResponse> Back;
  std::string Error;
  ASSERT_TRUE(responsesFromJson(Served, Back, &Error)) << Error;
  ASSERT_EQ(Back.size(), 3u);
  EXPECT_FALSE(Back[0].Error.empty());
  EXPECT_FALSE(Back[1].Error.empty());
  EXPECT_GT(Back[1].ErrorLine, 0u); // DSL parse errors carry the line
  EXPECT_TRUE(Back[2].Error.empty());
}

TEST(QueryServer, PoolSurvivesManyBatches) {
  // The resident pool (threads + reused WorkQueue + arenas) must quiesce
  // and re-arm cleanly batch after batch, including empty and
  // bigger-than-pool batches.
  QueryServer S({3});
  std::string Reference = oneShot(sampleBatch());
  std::string Line = requestsToJsonLine(sampleBatch());
  for (int Batch = 0; Batch < 20; ++Batch)
    ASSERT_EQ(S.serveLine(Line), Reference) << "batch " << Batch;

  // Empty batch: a schema'd document with zero responses.
  std::vector<CheckRequest> Empty;
  std::string EmptyDoc = S.serveLine(requestsToJsonLine(Empty));
  EXPECT_EQ(EmptyDoc, responsesToJson(std::vector<CheckResponse>{}));

  // A batch wider than the pool exercises stealing across resets.
  std::vector<CheckRequest> Wide;
  for (const CorpusEntry &E : sharedCorpus()) {
    CheckRequest R;
    R.Corpus = E.Name;
    Wide.push_back(std::move(R));
  }
  EXPECT_EQ(S.serveLine(requestsToJsonLine(Wide)), oneShot(Wide, 3));
}

TEST(QueryServer, EvictionKeepsServing) {
  // A tiny program cache bound forces wholesale eviction; verdicts and
  // bytes are unaffected (content-addressed entries just re-parse).
  ServerOptions Opts;
  Opts.Jobs = 1;
  Opts.MaxCachedPrograms = 2;
  QueryServer S(Opts);
  std::vector<std::string> Lines;
  for (int V = 0; V < 4; ++V) {
    CheckRequest R;
    R.Name = "prog-" + std::to_string(V);
    R.Source = std::string("name P") + std::to_string(V) +
               "\nthread 0\n  store x " + std::to_string(V + 1) +
               "\n  load y\npost reg 0 r1 0\n";
    R.ModelSpecs = {"x86"};
    Lines.push_back(requestsToJsonLine(std::vector<CheckRequest>{R}));
  }
  std::vector<std::string> Golden;
  for (const std::string &L : Lines)
    Golden.push_back(S.serveLine(L));
  for (int Round = 0; Round < 3; ++Round)
    for (size_t I = 0; I < Lines.size(); ++I)
      ASSERT_EQ(S.serveLine(Lines[I]), Golden[I]);
  EXPECT_GT(S.stats().Cache.ProgramEvictions, 0u);
}

TEST(QueryServer, UnixSocketRoundTrip) {
  std::string Path = testing::TempDir() + "tmw_server_test.sock";
  QueryServer S({2});
  std::thread Listener([&] {
    server::serveUnixSocket(S, Path, /*AcceptLimit=*/1);
  });

  // Connect (retrying while the listener binds), send two batches, half-
  // close, read the concatenated documents back to EOF.
  int Fd = -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  for (int Try = 0; Try < 200; ++Try) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      break;
    ::close(Fd);
    Fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(Fd, 0) << "could not connect to " << Path;

  std::string Line = requestsToJsonLine(sampleBatch());
  std::string Payload = Line + "\n" + Line + "\n";
  ASSERT_EQ(::send(Fd, Payload.data(), Payload.size(), 0),
            static_cast<ssize_t>(Payload.size()));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);

  std::string Got;
  char Buf[65536];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Got.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  Listener.join();

  std::string Reference = oneShot(sampleBatch());
  EXPECT_EQ(Got, Reference + Reference);
}

/// One serial-socket session: serve \p Payload on a fresh listener and
/// return every byte the server answered.
std::string socketRoundTrip(QueryServer &S, const std::string &Payload,
                            const char *Name) {
  std::string Path = testing::TempDir() + Name;
  std::thread Listener([&] {
    server::serveUnixSocket(S, Path, /*AcceptLimit=*/1);
  });
  int Fd = -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  EXPECT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  for (int Try = 0; Try < 200; ++Try) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      break;
    ::close(Fd);
    Fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(Fd, 0) << "could not connect to " << Path;
  std::string Got;
  if (Fd >= 0) {
    EXPECT_EQ(::send(Fd, Payload.data(), Payload.size(), 0),
              static_cast<ssize_t>(Payload.size()));
    EXPECT_EQ(::shutdown(Fd, SHUT_WR), 0);
    char Buf[65536];
    for (;;) {
      ssize_t N = ::read(Fd, Buf, sizeof(Buf));
      if (N <= 0)
        break;
      Got.append(Buf, static_cast<size_t>(N));
    }
    ::close(Fd);
  }
  Listener.join();
  return Got;
}

TEST(QueryServer, BlankLinesOnSocketAreSkipped) {
  // Empty and whitespace-only NDJSON lines on the wire — leading,
  // between batches, trailing — produce no documents at all.
  QueryServer S({2});
  std::string Line = requestsToJsonLine(sampleBatch());
  std::string Reference = oneShot(sampleBatch());
  std::string Got = socketRoundTrip(
      S, "\n  \t\r\n" + Line + "\n\n" + Line + "\n   \n",
      "tmw_blank_lines.sock");
  EXPECT_EQ(Got, Reference + Reference);
  EXPECT_EQ(S.stats().Batches, 2u);
}

TEST(QueryServer, OversizedSingleLineBatch) {
  // One batch line bigger than the transport's 64 KiB read buffer: the
  // frame spans several reads and must reassemble to the exact one-shot
  // bytes. Repeated identical requests keep the evaluation cheap (one
  // parse, then cache hits) while the *line* stays huge.
  std::vector<CheckRequest> Requests;
  for (int I = 0; I < 400; ++I) {
    CheckRequest R;
    R.Source = SbSource;
    R.ModelSpecs = {"x86"};
    Requests.push_back(R);
  }
  std::string Line = requestsToJsonLine(Requests);
  ASSERT_GT(Line.size(), 65536u) << "line must exceed one read buffer";

  QueryServer S({2});
  std::string Got = socketRoundTrip(S, Line + "\n", "tmw_oversized.sock");
  EXPECT_EQ(Got, oneShot(Requests));
  EXPECT_EQ(S.stats().Requests, 400u);
}

TEST(QueryServer, ErrorDocumentThenValidBatchesOnSameConnection) {
  // A malformed line mid-session answers with the error document and the
  // connection keeps serving correct bytes — before and after.
  QueryServer S({2});
  std::string Good = requestsToJsonLine(sampleBatch());
  std::string Reference = oneShot(sampleBatch());
  std::vector<CheckRequest> Sink;
  std::string ParseError;
  ASSERT_FALSE(requestsFromJson("{\"oops\": ", Sink, &ParseError));
  std::string Got = socketRoundTrip(
      S, Good + "\n{\"oops\": \n" + Good + "\n" + Good + "\n",
      "tmw_error_recovery.sock");
  EXPECT_EQ(Got, Reference +
                     batchErrorToJson("batch parse error: " + ParseError) +
                     Reference + Reference);
  EXPECT_EQ(S.stats().BadBatches, 1u);
  EXPECT_EQ(S.stats().Batches, 3u);
}

TEST(SessionCache, ContentAddressedAndFailureCaching) {
  SessionCache C;
  auto A = C.program("thread 0\n  load x\n");
  auto B = C.program("thread 0\n  load x\n");
  EXPECT_EQ(A.get(), B.get()); // same source → same entry
  EXPECT_TRUE(static_cast<bool>(*A));

  // Failures are cached too (a resubmitted bad program re-parses zero
  // times), and report their line.
  auto Bad1 = C.program("thread 0\n  fetch x\n");
  auto Bad2 = C.program("thread 0\n  fetch x\n");
  EXPECT_EQ(Bad1.get(), Bad2.get());
  EXPECT_FALSE(static_cast<bool>(*Bad1));
  EXPECT_EQ(Bad1->ErrorLine, 2u);

  SessionCache::Stats St = C.stats();
  EXPECT_EQ(St.ProgramHits, 2u);
  EXPECT_EQ(St.ProgramMisses, 2u);

  // Entries survive clear() while referenced (cache-safe ownership).
  C.clear();
  EXPECT_TRUE(static_cast<bool>(*A));
  EXPECT_EQ(A->Prog.Threads.size(), 1u);

  // Model interning: same spec → same instance; bad specs error cleanly.
  auto M1 = C.model("power/-TxnOrder");
  auto M2 = C.model("power/-TxnOrder");
  ASSERT_TRUE(M1);
  EXPECT_EQ(M1.get(), M2.get());
  std::string Error;
  EXPECT_EQ(C.model("warp9", &Error), nullptr);
  EXPECT_FALSE(Error.empty());
}

TEST(SessionCache, OverflowEvictsOnlyLeastRecentHalf) {
  // The bounded program map drops only its least-recently-touched half on
  // overflow (not the whole map): the hot working set survives a churn of
  // one-off sources, and the accounting says exactly what went.
  SessionCache C(/*MaxPrograms=*/8);
  auto Src = [](int V) {
    return "name P" + std::to_string(V) + "\nthread 0\n  store x " +
           std::to_string(V + 1) + "\n  load y\npost reg 0 r1 0\n";
  };
  for (int V = 0; V < 8; ++V)
    C.program(Src(V));
  // Touch the newer half so recency diverges from insertion order.
  for (int V = 4; V < 8; ++V)
    C.program(Src(V));
  SessionCache::Stats St = C.stats();
  ASSERT_EQ(St.ProgramsCached, 8u);
  ASSERT_EQ(St.ProgramEvictions, 0u);

  // The 9th insert overflows: exactly the stale half (P0..P3) goes.
  C.program(Src(8));
  St = C.stats();
  EXPECT_EQ(St.ProgramEvictions, 1u);
  EXPECT_EQ(St.ProgramsEvicted, 4u);
  EXPECT_EQ(St.ProgramsCached, 5u); // P4..P7 + P8

  // The recently-touched half still hits; the evicted half re-parses.
  uint64_t Misses = St.ProgramMisses, Hits = St.ProgramHits;
  for (int V = 4; V < 9; ++V)
    C.program(Src(V));
  St = C.stats();
  EXPECT_EQ(St.ProgramMisses, Misses);
  EXPECT_EQ(St.ProgramHits, Hits + 5);
  C.program(Src(0));
  EXPECT_EQ(C.stats().ProgramMisses, Misses + 1);
}

TEST(QueryEngine, CachedRunsMatchUncachedBytes) {
  // BatchOptions::Cache is verdict-neutral: same requests, same bytes,
  // jobs and cache state notwithstanding.
  std::vector<CheckRequest> Requests = sampleBatch();
  std::string Reference = oneShot(Requests);
  SessionCache Cache;
  for (unsigned Jobs : {1u, 4u}) {
    BatchOptions Opts;
    Opts.Jobs = Jobs;
    Opts.Cache = &Cache;
    EXPECT_EQ(responsesToJson(QueryEngine(Opts).runAll(Requests)),
              Reference)
        << "jobs " << Jobs;
  }
  EXPECT_GT(Cache.stats().ProgramHits + Cache.stats().ModelHits, 0u);
}

} // namespace
