//===- Candidates.cpp - Candidate executions of a program ---------------------==//

#include "enumerate/Candidates.h"

#include <algorithm>
#include <functional>

using namespace tmw;

namespace {

/// Instruction-to-event mapping state while assembling one transaction
/// success/failure choice.
struct Shape {
  Execution X;
  /// Event id per (thread, instruction index), -1 when it vanished or is a
  /// transaction delimiter.
  std::vector<std::vector<int>> EventOf;
  /// Value written by each write event (from the program).
  std::vector<int> WriteValue;
  /// True when every transaction of the program succeeded.
  bool AllTxnsSucceeded = true;
};

/// Build the event skeleton for one choice of which transactions succeed.
/// \p Succeed holds one flag per TxBegin, in program order.
bool buildShape(const Program &P, const std::vector<bool> &Succeed,
                Shape &S) {
  unsigned NumTx = 0;
  std::vector<Event> Events;
  std::vector<int> Txns, Crs, Values;
  S.EventOf.assign(P.Threads.size(), {});

  int NextTxnClass = 0, NextCrClass = 0;
  uint32_t AtomicMask = 0;
  for (unsigned T = 0; T < P.Threads.size(); ++T) {
    int CurTxn = kNoClass;
    int CurCr = kNoClass;
    bool Skipping = false;
    for (const Instruction &I : P.Threads[T]) {
      int EventId = -1;
      switch (I.K) {
      case Instruction::Kind::TxBegin: {
        bool Ok = NumTx < Succeed.size() && Succeed[NumTx];
        if (!Ok)
          S.AllTxnsSucceeded = false;
        ++NumTx;
        if (Ok) {
          CurTxn = NextTxnClass++;
          if (I.TxnAtomic)
            AtomicMask |= uint32_t(1) << CurTxn;
        } else {
          Skipping = true;
        }
        break;
      }
      case Instruction::Kind::TxEnd:
        CurTxn = kNoClass;
        Skipping = false;
        break;
      case Instruction::Kind::Lock:
      case Instruction::Kind::TxLock: {
        if (Skipping)
          break;
        Event Ev;
        Ev.Kind = I.K == Instruction::Kind::Lock ? EventKind::Lock
                                                 : EventKind::TxLock;
        Ev.Thread = T;
        CurCr = NextCrClass++;
        EventId = static_cast<int>(Events.size());
        Events.push_back(Ev);
        Txns.push_back(CurTxn);
        Crs.push_back(CurCr);
        Values.push_back(0);
        break;
      }
      case Instruction::Kind::Unlock:
      case Instruction::Kind::TxUnlock: {
        if (Skipping)
          break;
        Event Ev;
        Ev.Kind = I.K == Instruction::Kind::Unlock ? EventKind::Unlock
                                                   : EventKind::TxUnlock;
        Ev.Thread = T;
        EventId = static_cast<int>(Events.size());
        Events.push_back(Ev);
        Txns.push_back(CurTxn);
        Crs.push_back(CurCr);
        Values.push_back(0);
        CurCr = kNoClass;
        break;
      }
      case Instruction::Kind::Load:
      case Instruction::Kind::Store:
      case Instruction::Kind::Fence: {
        if (Skipping)
          break;
        Event Ev;
        Ev.Thread = T;
        Ev.Loc = I.Loc;
        Ev.Order = I.MO;
        if (I.K == Instruction::Kind::Load) {
          Ev.Kind = EventKind::Read;
        } else if (I.K == Instruction::Kind::Store) {
          Ev.Kind = EventKind::Write;
          Ev.WrittenValue = I.Value;
        } else {
          Ev.Kind = EventKind::Fence;
          Ev.Fence = I.FK;
          Ev.Loc = -1;
        }
        EventId = static_cast<int>(Events.size());
        Events.push_back(Ev);
        Txns.push_back(CurTxn);
        Crs.push_back(CurCr);
        Values.push_back(I.Value);
        break;
      }
      }
      S.EventOf[T].push_back(EventId);
    }
  }

  if (Events.size() > kMaxEvents)
    return false;

  Execution &X = S.X;
  X.clear(static_cast<unsigned>(Events.size()));
  for (unsigned E = 0; E < Events.size(); ++E) {
    X.event(E) = Events[E];
    X.Txn[E] = Txns[E];
    X.Cr[E] = Crs[E];
  }
  X.AtomicTxns = AtomicMask;
  S.WriteValue = Values;

  // po: id order within each thread (events were appended in order).
  for (unsigned A = 0; A < Events.size(); ++A)
    for (unsigned B = A + 1; B < Events.size(); ++B)
      if (Events[A].Thread == Events[B].Thread)
        X.Po.insert(A, B);

  // Dependencies and rmw edges from the instruction structure.
  for (unsigned T = 0; T < P.Threads.size(); ++T) {
    for (unsigned Idx = 0; Idx < P.Threads[T].size(); ++Idx) {
      int Target = S.EventOf[T][Idx];
      if (Target < 0)
        continue;
      const Instruction &I = P.Threads[T][Idx];
      auto Resolve = [&](unsigned LoadIdx) -> int {
        return LoadIdx < S.EventOf[T].size() ? S.EventOf[T][LoadIdx] : -1;
      };
      for (unsigned D : I.AddrDeps)
        if (int Src = Resolve(D); Src >= 0)
          X.Addr.insert(Src, Target);
      for (unsigned D : I.DataDeps)
        if (int Src = Resolve(D); Src >= 0)
          X.Data.insert(Src, Target);
      for (unsigned D : I.CtrlDeps)
        if (int Src = Resolve(D); Src >= 0) {
          // Forward closure: a branch orders everything after it.
          X.Ctrl.insert(Src, Target);
          for (unsigned B = 0; B < Events.size(); ++B)
            if (X.Po.contains(Target, B))
              X.Ctrl.insert(Src, B);
        }
      if (I.RmwPartner >= 0 && I.K == Instruction::Kind::Load)
        if (int W = Resolve(static_cast<unsigned>(I.RmwPartner)); W >= 0)
          X.Rmw.insert(Target, W);
    }
  }
  return true;
}

/// Compute the outcome of a fully assembled candidate.
Outcome outcomeOf(const Program &P, const Shape &S) {
  const Execution &X = S.X;
  Outcome O;

  for (unsigned T = 0; T < P.Threads.size(); ++T)
    for (unsigned Idx = 0; Idx < P.Threads[T].size(); ++Idx) {
      if (P.Threads[T][Idx].K != Instruction::Kind::Load)
        continue;
      int E = S.EventOf[T][Idx];
      if (E < 0)
        continue; // vanished with a failed transaction
      int V = P.initialValue(X.event(E).Loc);
      EventSet Srcs =
          X.Rf.restrictRange(EventSet::singleton(static_cast<EventId>(E)))
              .domain();
      for (EventId W : Srcs)
        V = S.WriteValue[W];
      O.RegValues.push_back({T, Idx, V});
    }
  std::sort(O.RegValues.begin(), O.RegValues.end());

  O.MemValues.assign(P.LocNames.size(), 0);
  for (unsigned L = 0; L < P.LocNames.size(); ++L)
    O.MemValues[L] = P.initialValue(static_cast<LocId>(L));
  for (unsigned L = 0; L < P.LocNames.size(); ++L) {
    EventSet Ws = X.writes() & X.atLocation(static_cast<LocId>(L));
    for (EventId W : Ws)
      if ((X.Co.successors(W) & Ws).empty())
        O.MemValues[L] = S.WriteValue[W];
  }
  // A failed transaction's abort handler zeroes `ok` (Fig. 2).
  if (!S.AllTxnsSucceeded) {
    LocId Ok = P.locByName("ok");
    if (Ok >= 0)
      O.MemValues[Ok] = 0;
  }
  return O;
}

/// Enumerate rf choices (per read: a same-location write or the initial
/// value), then co orders, invoking \p Sink on every complete candidate.
/// Stops — and returns false — as soon as \p Sink returns false.
bool enumerateRfCo(const Program &P, Shape &S,
                   const std::function<bool(const Candidate &)> &Sink) {
  Execution &X = S.X;
  std::vector<EventId> Reads;
  for (EventId R : X.reads())
    Reads.push_back(R);

  // Writers per location.
  unsigned NumLocs = X.numLocations();
  std::vector<std::vector<EventId>> WritersOf(NumLocs);
  for (EventId W : X.writes())
    WritersOf[X.event(W).Loc].push_back(W);

  std::function<bool(unsigned)> ChooseCo = [&](unsigned L) {
    if (L == NumLocs) {
      Candidate C{X, outcomeOf(P, S)};
      return Sink(C);
    }
    std::vector<EventId> &Ws = WritersOf[L];
    if (Ws.size() <= 1)
      return ChooseCo(L + 1);
    std::vector<EventId> Perm = Ws;
    std::sort(Perm.begin(), Perm.end());
    bool Go = true;
    do {
      for (unsigned I = 0; I < Perm.size(); ++I)
        for (unsigned J = 0; J < Perm.size(); ++J)
          if (I < J)
            X.Co.insert(Perm[I], Perm[J]);
          else if (I != J)
            X.Co.erase(Perm[I], Perm[J]);
      Go = ChooseCo(L + 1);
    } while (Go && std::next_permutation(Perm.begin(), Perm.end()));
    // Restore a clean slate for this location.
    for (EventId A : Ws)
      for (EventId B : Ws)
        if (A != B)
          X.Co.erase(A, B);
    return Go;
  };

  std::function<bool(unsigned)> ChooseRf = [&](unsigned RI) {
    if (RI == Reads.size())
      return ChooseCo(0);
    EventId R = Reads[RI];
    LocId L = X.event(R).Loc;
    // Initial value: no incoming rf.
    if (!ChooseRf(RI + 1))
      return false;
    for (EventId W : WritersOf[L]) {
      X.Rf.insert(W, R);
      bool Go = ChooseRf(RI + 1);
      X.Rf.erase(W, R);
      if (!Go)
        return false;
    }
    return true;
  };

  return ChooseRf(0);
}

} // namespace

bool tmw::forEachCandidate(
    const Program &P, const std::function<bool(const Candidate &)> &Sink) {
  unsigned NumTx = 0;
  for (const auto &T : P.Threads)
    for (const Instruction &I : T)
      if (I.K == Instruction::Kind::TxBegin)
        ++NumTx;

  for (uint64_t Mask = 0; Mask < (uint64_t(1) << NumTx); ++Mask) {
    std::vector<bool> Succeed(NumTx);
    for (unsigned I = 0; I < NumTx; ++I)
      Succeed[I] = (Mask >> I) & 1;
    Shape S;
    if (!buildShape(P, Succeed, S))
      continue;
    bool Go = enumerateRfCo(P, S, [&Sink](const Candidate &C) {
      if (C.X.checkWellFormed() != nullptr)
        return true; // malformed: skip, keep enumerating
      return Sink(C);
    });
    if (!Go)
      return false;
  }
  return true;
}

std::vector<Candidate> tmw::enumerateCandidates(const Program &P) {
  std::vector<Candidate> Out;
  forEachCandidate(P, [&Out](const Candidate &C) {
    Out.push_back(C);
    return true;
  });
  return Out;
}

std::vector<Outcome> tmw::allowedOutcomes(const Program &P,
                                          const MemoryModel &M) {
  std::vector<Outcome> Out;
  forEachCandidate(P, [&](const Candidate &C) {
    if (M.consistent(C.X))
      Out.push_back(C.O);
    return true;
  });
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

bool tmw::postconditionReachable(const Program &P, const MemoryModel &M) {
  bool Reachable = false;
  forEachCandidate(P, [&](const Candidate &C) {
    if (C.O.satisfies(P) && M.consistent(C.X)) {
      Reachable = true;
      return false; // one witness suffices
    }
    return true;
  });
  return Reachable;
}
