//===- relaxation_test.cpp - The ⊏ order and canonicalisation (§4.2) ----------==//

#include "TestGraphs.h"
#include "enumerate/Relaxation.h"
#include "models/Armv8Model.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(RemoveEventTest, RemapsIdsAndEdges) {
  Execution X = shapes::messagePassing();
  // Remove the first write (event 0): the rf edge Wy->Ry survives with
  // shifted ids.
  Execution Y = removeEvent(X, 0);
  EXPECT_EQ(Y.size(), X.size() - 1);
  EXPECT_EQ(Y.checkWellFormed(), nullptr);
  EXPECT_EQ(Y.Rf.numPairs(), 1u);
  EXPECT_TRUE(Y.Rf.contains(0, 1));
}

TEST(RemoveEventTest, CoStaysTotalAfterWriteRemoval) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
  EventId W3 = B.write(2, 0, MemOrder::NonAtomic, 3);
  B.co(W1, W2);
  B.co(W2, W3);
  Execution X = B.build();
  Execution Y = removeEvent(X, W2);
  EXPECT_EQ(Y.checkWellFormed(), nullptr);
  EXPECT_TRUE(Y.Co.contains(0, 1)); // W1 before W3 still
}

TEST(RelaxTest, EventRemovalChildrenPresent) {
  Execution X = shapes::storeBuffering();
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  std::vector<Execution> Kids = relaxOneStep(X, V);
  unsigned Size3 = 0;
  for (const Execution &K : Kids)
    Size3 += K.size() == 3;
  EXPECT_EQ(Size3, 4u); // one child per removed event
}

TEST(RelaxTest, TxnShrinkChildren) {
  ExecutionBuilder B;
  EventId A = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId C = B.read(0, 0);
  B.read(1, 0);
  B.txn({A, C});
  Execution X = B.build();
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  unsigned Shrunk = 0;
  for (const Execution &K : relaxOneStep(X, V))
    if (K.size() == X.size() && K.numTxns() == 1 &&
        K.transactional().size() == 1)
      ++Shrunk;
  EXPECT_EQ(Shrunk, 2u); // drop front, drop back
}

TEST(RelaxTest, SingletonTxnVanishes) {
  ExecutionBuilder B;
  EventId A = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  B.txn({A});
  Execution X = B.build();
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  bool SawTxnFree = false;
  for (const Execution &K : relaxOneStep(X, V))
    SawTxnFree |= K.size() == X.size() && K.transactional().empty();
  EXPECT_TRUE(SawTxnFree);
}

TEST(RelaxTest, Armv8Downgrades) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0, MemOrder::Acquire);
  EventId W = B.write(1, 0, MemOrder::Release, 1);
  B.rf(W, R);
  Execution X = B.build();
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  unsigned Downgrades = 0;
  for (const Execution &K : relaxOneStep(X, V))
    if (K.size() == X.size() &&
        (K.event(0).Order != X.event(0).Order ||
         K.event(1).Order != X.event(1).Order))
      ++Downgrades;
  EXPECT_EQ(Downgrades, 2u); // acq->plain and rel->plain
}

TEST(RelaxTest, DmbDowngradesToHalfBarriers) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.fence(0, FenceKind::Dmb);
  EventId R = B.read(0, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  (void)W;
  (void)R;
  Execution X = B.build();
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  unsigned Ld = 0, St = 0;
  for (const Execution &K : relaxOneStep(X, V)) {
    if (K.size() != X.size())
      continue;
    Ld += !K.fences(FenceKind::DmbLd).empty();
    St += !K.fences(FenceKind::DmbSt).empty();
  }
  EXPECT_EQ(Ld, 1u);
  EXPECT_EQ(St, 1u);
}

TEST(RelaxTest, CtrlRemovalKeepsForwardClosure) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  B.write(0, 1, MemOrder::NonAtomic, 1);
  B.write(0, 1, MemOrder::NonAtomic, 2);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.read(1, 1);
  B.ctrl(R, 1); // forward-closes to events 1 and 2
  Execution X = B.build();
  ASSERT_EQ(X.Ctrl.numPairs(), 2u);
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  bool SawSuffix = false;
  for (const Execution &K : relaxOneStep(X, V)) {
    if (K.size() != X.size() || K.Ctrl.numPairs() != 1)
      continue;
    SawSuffix = true;
    EXPECT_EQ(K.checkWellFormed(), nullptr);
    EXPECT_TRUE(K.Ctrl.contains(R, 2)); // later target retained
  }
  EXPECT_TRUE(SawSuffix);
}

TEST(MinimalityTest, SbWithTfenceTxnsIsMinimal) {
  // SB with each write in its own transaction: inconsistent under x86+TM
  // (tfence); every relaxation is consistent.
  ExecutionBuilder B;
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(0, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  B.txn({W0});
  B.txn({W1});
  Execution X = B.build();
  X86Model Tm;
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  EXPECT_TRUE(isMinimallyInconsistent(X, Tm, V));
}

TEST(MinimalityTest, NonMinimalWhenExtraEventPresent) {
  // The same shape plus an unrelated read is inconsistent but not
  // minimal.
  ExecutionBuilder B;
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(0, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  B.read(2, 0); // extra
  B.txn({W0});
  B.txn({W1});
  Execution X = B.build();
  X86Model Tm;
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  EXPECT_FALSE(Tm.consistent(X));
  EXPECT_FALSE(isMinimallyInconsistent(X, Tm, V));
}

TEST(MinimalityTest, ConsistentExecutionIsNotMinimal) {
  // A consistent execution is by definition not minimally inconsistent.
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B.read(1, 0);
  B.rf(W, R);
  Vocabulary V = Vocabulary::forArch(Arch::SC);
  EXPECT_FALSE(isMinimallyInconsistent(B.build(), ScModel(), V));
}

TEST(CanonicalTest, ThreadRenamingInvariance) {
  // SB is symmetric in its threads and locations: builder order must not
  // matter.
  ExecutionBuilder B1;
  B1.write(0, 0, MemOrder::NonAtomic, 1);
  B1.read(0, 1);
  B1.write(1, 1, MemOrder::NonAtomic, 1);
  B1.read(1, 0);

  ExecutionBuilder B2; // same shape, thread roles swapped
  B2.write(0, 1, MemOrder::NonAtomic, 1);
  B2.read(0, 0);
  B2.write(1, 0, MemOrder::NonAtomic, 1);
  B2.read(1, 1);

  EXPECT_EQ(canonicalHash(B1.build()), canonicalHash(B2.build()));
}

TEST(CanonicalTest, DistinguishesRfStructure) {
  Execution A = shapes::messagePassing();
  Execution B = shapes::messagePassing();
  B.Rf = Relation(B.size()); // drop the rf edge
  EXPECT_NE(canonicalHash(A), canonicalHash(B));
}

TEST(CanonicalTest, LocationRenamingInvariance) {
  ExecutionBuilder B1;
  EventId W = B1.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B1.read(1, 0);
  B1.rf(W, R);
  B1.write(0, 1, MemOrder::NonAtomic, 1);
  B1.read(1, 1);

  ExecutionBuilder B2; // locations swapped
  EventId W2 = B2.write(0, 1, MemOrder::NonAtomic, 1);
  EventId R2 = B2.read(1, 1);
  B2.rf(W2, R2);
  B2.write(0, 0, MemOrder::NonAtomic, 1);
  B2.read(1, 0);

  EXPECT_EQ(canonicalHash(B1.build()), canonicalHash(B2.build()));
}

} // namespace
