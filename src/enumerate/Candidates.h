//===- Candidates.h - Candidate executions of a program ---------*- C++ -*-==//
///
/// \file
/// Generates the candidate executions of a litmus-test program under a
/// non-deterministic memory system (§2): every load may observe any store
/// to the same location (or the initial value), coherence is any total
/// order per location, and each transaction succeeds or fails
/// non-deterministically — a failed transaction's events vanish (§3.1) and
/// its abort handler zeroes the `ok` location of the outcome.
///
/// Filtering the candidates through a `MemoryModel` yields the behaviours
/// the model allows — the herd-style simulation flow used both by the
/// model-level "run" of a test and by the axiomatic hardware substitutes.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_ENUMERATE_CANDIDATES_H
#define TMW_ENUMERATE_CANDIDATES_H

#include "execution/Execution.h"
#include "litmus/Program.h"
#include "models/MemoryModel.h"

#include <functional>
#include <vector>

namespace tmw {

/// A candidate execution together with the outcome it produces.
struct Candidate {
  Execution X;
  Outcome O;
};

/// Stream every well-formed candidate execution of \p P into \p Sink, in
/// a deterministic order (transaction success masks, then rf choices,
/// then co permutations). The candidate is only valid for the duration of
/// the call; copy it to keep it. \p Sink returns false to stop the
/// enumeration early (e.g. a candidate cap); the function then returns
/// false too. This is the single enumeration primitive: a consumer that
/// checks one program against many models should enumerate once through
/// here and fan each candidate out to all models (see query/QueryEngine),
/// instead of re-enumerating per model.
bool forEachCandidate(const Program &P,
                      const std::function<bool(const Candidate &)> &Sink);

/// All well-formed candidate executions of \p P, materialised.
std::vector<Candidate> enumerateCandidates(const Program &P);

/// The outcomes of \p P permitted by \p M: outcomes of the consistent
/// candidates, deduplicated and sorted.
std::vector<Outcome> allowedOutcomes(const Program &P, const MemoryModel &M);

/// True when some consistent candidate satisfies the postcondition of
/// \p P — i.e. the model \p M allows the behaviour the test checks for.
bool postconditionReachable(const Program &P, const MemoryModel &M);

} // namespace tmw

#endif // TMW_ENUMERATE_CANDIDATES_H
