//===- ExecutionAnalysis.h - Memoized derived relations ---------*- C++ -*-==//
///
/// \file
/// A lazily-memoized view of the derived relations and event sets of one
/// *immutable* `Execution`. Every consistency axiom of §2.1/§3.1/§3.3 is
/// phrased over the same handful of derived relations (`fr`, `com`,
/// `stxn`, `tfence`, the fence relations, internal/external splits, ...);
/// `MemoryModel::check` used to recompute each of them from scratch on
/// every call, per model, per ablation. `ExecutionAnalysis` computes each
/// term at most once per execution — the explicit-search counterpart of
/// herd7 evaluating each `cat` definition once per candidate — so that the
/// many models and ablation configurations evaluated on one candidate
/// share all of the relational groundwork.
///
/// Contract:
///  * The analysed `Execution` must stay unmodified and alive for the
///    lifetime of the analysis (`reset()` retargets an arena-style
///    instance onto a new execution and drops all cached state).
///  * Copying an analysis *invalidates* the copy's caches: the copy
///    re-derives on demand. This keeps copies cheap and means a copy taken
///    mid-flight can never observe stale state.
///  * An `ExecutionAnalysis` is not thread-safe: memoization mutates the
///    cache under `const`. The sharded enumerator gives each shard its own
///    analysis arena instead of sharing one.
///
/// `AnalysisCaching::Recompute` disables memoization (every accessor
/// re-derives, exactly like the historical uncached `Execution` methods);
/// it exists for the cached-vs-uncached benchmarks and the cross-check
/// tests.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_EXECUTION_EXECUTIONANALYSIS_H
#define TMW_EXECUTION_EXECUTIONANALYSIS_H

#include "execution/Execution.h"

#include <deque>

namespace tmw {

/// Number of `FenceKind` enumerators (index bound for per-flavour caches).
inline constexpr unsigned kNumFenceKinds =
    static_cast<unsigned>(FenceKind::CppFence) + 1;

/// Memoization policy of an `ExecutionAnalysis`.
enum class AnalysisCaching : uint8_t {
  /// Compute each derived term at most once (the default).
  Memoized,
  /// Re-derive on every access — the uncached baseline behaviour.
  Recompute,
};

/// Lazily computed, memoized derived relations and event sets of one
/// immutable execution.
class ExecutionAnalysis {
public:
  /// Intentionally implicit: `M.check(X)` with an `Execution` constructs a
  /// temporary analysis, giving the pre-analysis API as a thin
  /// compatibility layer (memoization then only spans that single call).
  ExecutionAnalysis(const Execution &X,
                    AnalysisCaching Mode = AnalysisCaching::Memoized)
      : X(&X), Mode(Mode) {}

  /// Copies retarget to the same execution but drop all cached state.
  ExecutionAnalysis(const ExecutionAnalysis &O) : X(O.X), Mode(O.Mode) {}
  ExecutionAnalysis &operator=(const ExecutionAnalysis &O) {
    X = O.X;
    Mode = O.Mode;
    invalidateAll();
    return *this;
  }

  /// Retarget this analysis onto \p NewX, dropping all cached state. Lets
  /// a per-shard (or per-relaxation-child) arena serve many candidates
  /// without reallocation: invalidation bumps two generation counters
  /// instead of clearing the ~25 KB cache block.
  void reset(const Execution &NewX) {
    X = &NewX;
    invalidateAll();
  }

  /// Drop only the caches that depend on the transaction labelling
  /// (`Txn` / `AtomicTxns`): stxn, tfence, the lifted isolation terms, the
  /// transactional event sets, and the transaction-dependent model terms.
  /// The enumerator's placement search mutates exactly those fields of a
  /// fixed base execution, so a shard's arena keeps `fr`/`com`/fence
  /// relations — and transaction-independent model terms like Power's ppo
  /// fixpoint — across all placements of one base and invalidates just
  /// this slice per placement.
  void invalidateTransactionalState() { ++TxnGen; }

  const Execution &execution() const { return *X; }
  unsigned size() const { return X->size(); }
  AnalysisCaching caching() const { return Mode; }
  EventSet universe() const { return X->universe(); }

  /// Number of derived-term computations performed so far (a memoized
  /// accessor hit increments this only on its first call). Used by the
  /// memoization unit tests and the bench reports.
  uint64_t recomputeCount() const { return Recomputes; }

  //===--------------------------------------------------------------------===
  // Stored relations (pass-through to the execution).
  //===--------------------------------------------------------------------===

  const Relation &po() const { return X->Po; }
  const Relation &rf() const { return X->Rf; }
  const Relation &co() const { return X->Co; }
  const Relation &addr() const { return X->Addr; }
  const Relation &data() const { return X->Data; }
  const Relation &ctrl() const { return X->Ctrl; }
  const Relation &rmw() const { return X->Rmw; }

  //===--------------------------------------------------------------------===
  // Memoized event sets.
  //===--------------------------------------------------------------------===

  EventSet reads() const;
  EventSet writes() const;
  EventSet fences() const;
  EventSet accesses() const;
  EventSet fences(FenceKind K) const;
  EventSet atomics() const;
  EventSet acquires() const;
  EventSet releases() const;
  EventSet seqCst() const;
  EventSet transactional() const;
  EventSet atomicTransactional() const;

  //===--------------------------------------------------------------------===
  // Memoized derived relations (§2.1, §3.1, §3.3).
  //===--------------------------------------------------------------------===

  const Relation &sloc() const;
  const Relation &sameThread() const;
  const Relation &poLoc() const;
  const Relation &poImm() const;
  const Relation &fr() const;
  const Relation &com() const;
  const Relation &ecom() const;
  const Relation &rfe() const;
  const Relation &rfi() const;
  const Relation &coe() const;
  const Relation &coi() const;
  const Relation &fre() const;
  const Relation &fri() const;
  const Relation &stxn() const;
  const Relation &stxnAtomic() const;
  const Relation &tfence() const;
  const Relation &scr() const;
  const Relation &scrt() const;

  /// po ; [F_K] ; po, cached per fence flavour.
  const Relation &fenceRel(FenceKind K) const;

  /// RC11 synchronises-with (fences and release sequences included) — the
  /// model-independent building block of the C++ model's happens-before.
  const Relation &cppSynchronisesWith() const;
  /// Transactional synchronisation (§7.2): weaklift(ecom, stxn).
  const Relation &cppTransactionalSw() const;

  /// Lifted isolation relations (§3.3): the weaklift/stronglift terms the
  /// isolation axioms are phrased over.
  const Relation &weakLiftComStxn() const;
  const Relation &strongLiftComStxn() const;
  const Relation &strongLiftComStxnAtomic() const;

  /// Inter-/intra-thread restriction of an arbitrary relation (uses the
  /// memoized sameThread).
  Relation external(const Relation &R) const { return R - sameThread(); }
  Relation internal(const Relation &R) const { return R & sameThread(); }

  //===--------------------------------------------------------------------===
  // Model-term memoization.
  //===--------------------------------------------------------------------===

  /// Memoize a *model-specific* compound relation (an architecture's
  /// happens-before, Power's ppo fixpoint, a psc instance, ...) that the
  /// fixed accessors above cannot know about. \p Tag is an address with
  /// static storage duration, unique to the term; \p Salt distinguishes
  /// configurations of the same term (typically the relevant `AxiomMask`
  /// bits). \p TxnDependent says whether the term reads the transaction
  /// labelling: transaction-dependent entries die with
  /// `invalidateTransactionalState()`, independent ones survive until
  /// `reset()`. As everywhere in this class, memoization is skipped in
  /// `Recompute` mode and the call is not thread-safe.
  template <typename Fn>
  const Relation &memoTerm(const void *Tag, uint64_t Salt,
                           bool TxnDependent, Fn &&Compute) const {
    uint64_t Gen = TxnDependent ? TxnGen : StructGen;
    if (Mode != AnalysisCaching::Recompute)
      for (TermEntry &E : Terms)
        if (E.Tag == Tag && E.Salt == Salt &&
            E.TxnDependent == TxnDependent && E.Gen == Gen)
          return E.Value;
    // Compute before touching the table: nested terms (prop over hb, say)
    // re-enter memoTerm and may grow `Terms`, so no entry pointer can be
    // held across the computation. (Returned references stay valid —
    // `Terms` is a deque, which never relocates existing entries on
    // emplace_back, and eviction only overwrites *stale* entries, which
    // no live caller can still reference: generations only advance
    // between checks.)
    Relation Value = Compute();
    ++Recomputes;
    TermEntry *Free = nullptr;
    for (TermEntry &E : Terms) {
      if (E.Tag == Tag && E.Salt == Salt &&
          E.TxnDependent == TxnDependent) {
        Free = &E; // recompute in place (stale, or Recompute mode)
        break;
      }
      if (!Free && E.Gen != (E.TxnDependent ? TxnGen : StructGen))
        Free = &E; // any stale entry may be evicted
    }
    if (!Free)
      Free = &Terms.emplace_back();
    Free->Tag = Tag;
    Free->Salt = Salt;
    Free->TxnDependent = TxnDependent;
    Free->Gen = Gen;
    Free->Value = std::move(Value);
    return Free->Value;
  }

private:
  /// A memoization slot is valid when its stamp matches the owning
  /// generation counter, so invalidation is a counter bump rather than a
  /// sweep over the cached values. Counters start at 1; default-initialised
  /// slots (stamp 0) are invalid.
  template <typename T> struct Slot {
    T Value{};
    uint64_t Gen = 0;
  };

  template <typename T, typename Fn>
  const T &memo(Slot<T> &S, uint64_t Gen, Fn &&Compute) const {
    if (S.Gen != Gen || Mode == AnalysisCaching::Recompute) {
      S.Value = Compute();
      S.Gen = Gen;
      ++Recomputes;
    }
    return S.Value;
  }

  void invalidateAll() {
    ++StructGen;
    ++TxnGen;
    Recomputes = 0;
  }

  /// All cached state. Slots stamped with `StructGen` depend only on the
  /// structural part of the execution; slots stamped with `TxnGen`
  /// additionally read the transaction labelling.
  struct Caches {
    Slot<EventSet> Reads, Writes, Fences, Accesses, Atomics, Acquires,
        Releases, SeqCst, Transactional, AtomicTransactional;
    Slot<EventSet> FencesOf[kNumFenceKinds];
    Slot<Relation> Sloc, SameThread, PoLoc, PoImm, Fr, Com, Ecom, Rfe, Rfi,
        Coe, Coi, Fre, Fri, Stxn, StxnAtomic, Tfence, Scr, Scrt;
    Slot<Relation> FenceRels[kNumFenceKinds];
    Slot<Relation> CppSw, CppTsw;
    Slot<Relation> WeakLiftComStxn, StrongLiftComStxn,
        StrongLiftComStxnAtomic;
  };

  /// One memoized model term (see `memoTerm`).
  struct TermEntry {
    const void *Tag = nullptr;
    uint64_t Salt = 0;
    uint64_t Gen = 0;
    bool TxnDependent = false;
    Relation Value;
  };

  const Execution *X;
  AnalysisCaching Mode;
  /// Bumped by reset()/assignment: invalidates every slot and term.
  mutable uint64_t StructGen = 1;
  /// Bumped additionally by invalidateTransactionalState().
  mutable uint64_t TxnGen = 1;
  mutable uint64_t Recomputes = 0;
  mutable Caches C;
  /// Deque, not vector: memoTerm hands out references into the entries,
  /// and nested memoTerm calls append — a vector's reallocation would
  /// invalidate every outstanding reference (ASan-confirmed when this was
  /// a vector).
  mutable std::deque<TermEntry> Terms;
};

} // namespace tmw

#endif // TMW_EXECUTION_EXECUTIONANALYSIS_H
