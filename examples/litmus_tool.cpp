//===- litmus_tool.cpp - A herd/litmus-style batch query tool -------------------==//
///
/// The CLI frontend of the batch query engine (query/QueryEngine.h): reads
/// litmus tests in the DSL (files, the built-in corpus, or a demo test),
/// checks each against a list of registry model specs — enumerating each
/// program's candidates once and sharing them across all models — and
/// reports per-model verdicts, with optional per-axiom diagnostics and
/// machine-readable JSON output.
///
/// Usage:   ./litmus_tool [options] [file.litmus ...]
/// Example: ./litmus_tool --model power/-TxnOrder --explain sb.litmus
///          ./litmus_tool --corpus --json --jobs 4 > verdicts.json
///
/// Flags:
///   --model <spec>   check against this model instead of the default six.
///                    Repeatable, and <spec> may be a comma-separated
///                    list ("sc,tsc,x86"); repeated flags and list
///                    entries accumulate in order. Each spec follows the
///                    registry grammar (ModelRegistry.h): an architecture
///                    or hardware-substitute name optionally followed by
///                    "/"-separated ablation modifiers — "x86",
///                    "power/-TxnOrder", "cpp/+baseline", "power8",
///                    "armv8-rtl", "x86-impl". Parsing is strict: an
///                    unknown spec anywhere in any list exits 2 after
///                    diagnosing every bad spec (not just the first).
///   --corpus         add every test of the built-in litmus corpus
///                    (litmus/Library.h) to the batch.
///   --json           emit the canonical batch JSON (query/QueryIO.h) on
///                    stdout: byte-for-byte identical for every --jobs
///                    value. Implies --outcomes.
///   --explain        for each model that forbids some candidate, report
///                    the failed axioms of the first forbidden candidate
///                    and the witness events.
///   --outcomes       collect each model's allowed outcome set.
///   --jobs N         evaluate the batch on N work-stealing pool workers.
///   --cap N          stop each program's enumeration after N candidates.
///   --telemetry      append batch timing + per-worker load + plan
///                    accounting to the JSON (forfeits cross-jobs
///                    byte-determinism).
///   --eval <s>       candidate evaluation strategy: "planned" (default;
///                    one cross-spec evaluation plan per spec set) or
///                    "independent" (reference per-model loop). The
///                    canonical JSON is byte-identical either way — the
///                    flag exists so CI can prove it with cmp.
///   --specialize <s> "on" (default) or "off": specialize each planned
///                    evaluation to the program's static vocabulary facts
///                    (lint/Lint.h), pre-discharging footprint-disjoint
///                    obligations once per program. Verdict-neutral like
///                    --eval — byte-identical canonical JSON either way,
///                    and CI proves it with cmp.
///   --lint           statically lint the batch's programs (lint/Lint.h)
///                    instead of evaluating them: structured findings
///                    (unused locations, unbalanced txn/lock regions, bad
///                    RMW pairs, impossible postconditions, ...) print as
///                    file:line diagnostics. Exit 1 when anything was
///                    found, 0 when the batch lints clean. (tmw_lint is
///                    the full-featured frontend with --json.)
///   --store <path>   persistent verdict store (store/VerdictStore.h):
///                    answers whose exact content key (program source,
///                    canonical specs, options, engine version) is on
///                    disk skip enumeration; cold answers are appended +
///                    fsync'd for the next run. Byte-identical output
///                    either way. An unwritable path, corrupt header, or
///                    format-version mismatch is a usage error (exit 2) —
///                    never a silent cache-less run.
///
/// Exit status: 0 on success, 1 when any request failed (e.g. a DSL parse
/// error — reported as a one-line `file:line: message` diagnostic), 2 on
/// usage errors (unknown flag, unreadable file, bad --model spec).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "lint/Lint.h"
#include "lint/LintIO.h"
#include "litmus/Library.h"
#include "litmus/Parser.h"
#include "models/ModelRegistry.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"
#include "store/VerdictStore.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace tmw;

namespace {

const char *DemoTest = R"(name SB+txn-demo
loc ok 1
thread 0
  txbegin
  store x 1
  txend
  load y
thread 1
  txbegin
  store y 1
  txend
  load x
post mem ok 1
post reg 0 r3 0
post reg 1 r3 0
)";

/// One-line compiler-style diagnostic for a failed response; parse errors
/// carry the source line (`file:line: message`).
std::string diagnosticOf(const CheckResponse &Resp,
                         const std::string &File) {
  if (Resp.ErrorLine > 0 && !File.empty())
    return File + ":" + std::to_string(Resp.ErrorLine) + ": " + Resp.Error;
  std::string Out = "error: ";
  if (!Resp.Name.empty())
    Out += Resp.Name + ": ";
  return Out + Resp.Error;
}

void printResponse(const CheckResponse &Resp, const std::string &File,
                   bool Explain) {
  if (!Resp) {
    std::fprintf(stderr, "%s\n", diagnosticOf(Resp, File).c_str());
    return;
  }

  std::printf("%s: %llu candidate executions%s\n", Resp.Name.c_str(),
              static_cast<unsigned long long>(Resp.Candidates),
              Resp.Truncated ? " (cap hit: verdicts cover a prefix)" : "");
  std::printf("  %-28s %9s %11s   postcondition\n", "model", "allowed",
              "candidates");
  for (const ModelVerdict &V : Resp.Verdicts)
    std::printf("  %-28s %9llu %11llu   %s\n", V.Spec.c_str(),
                static_cast<unsigned long long>(V.Consistent),
                static_cast<unsigned long long>(Resp.Candidates),
                V.Allowed ? "REACHABLE" : "unreachable");
  if (Explain)
    for (const ModelVerdict &V : Resp.Verdicts) {
      if (V.FirstForbidden < 0) {
        std::printf("  %s allows every candidate\n", V.Spec.c_str());
        continue;
      }
      std::printf("  %s forbids candidate #%lld:\n", V.Spec.c_str(),
                  static_cast<long long>(V.FirstForbidden));
      for (const FailedAxiomInfo &F : V.FailedAxioms) {
        std::printf("    axiom %-14s violated; witness events {",
                    F.Axiom.c_str());
        bool First = true;
        for (EventId E : F.Witness) {
          std::printf("%s%u", First ? "" : ", ", E);
          First = false;
        }
        std::printf("}\n");
      }
    }
  std::printf("\n");
}

/// Split one `--model` value on commas into \p Specs via the registry's
/// shared strict parser (ModelRegistry::splitSpecList — `tmw_audit` uses
/// the same one), diagnosing the rejected value.
bool splitModelList(const char *Value, std::vector<std::string> &Specs) {
  std::string Error;
  if (ModelRegistry::splitSpecList(Value, Specs, &Error)) {
    return true;
  }
  std::fprintf(stderr, "error: --model %s: %s\n", Value, Error.c_str());
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> ModelSpecs;
  std::vector<const char *> Files;
  bool Corpus = false, Json = false, Explain = false, Outcomes = false;
  bool Telemetry = false, Lint = false, Specialize = true;
  unsigned Jobs = 1;
  uint64_t Cap = 0;
  std::string StorePath;
  EvalStrategy Strategy = EvalStrategy::Planned;
  auto ParseSpecialize = [&](const char *Value) {
    if (std::strcmp(Value, "on") == 0) {
      Specialize = true;
      return true;
    }
    if (std::strcmp(Value, "off") == 0) {
      Specialize = false;
      return true;
    }
    std::fprintf(stderr, "error: --specialize %s: expected 'on' or 'off'\n",
                 Value);
    return false;
  };
  auto ParseEval = [&](const char *Value) {
    if (std::strcmp(Value, "planned") == 0) {
      Strategy = EvalStrategy::Planned;
      return true;
    }
    if (std::strcmp(Value, "independent") == 0) {
      Strategy = EvalStrategy::Independent;
      return true;
    }
    std::fprintf(stderr,
                 "error: --eval %s: expected 'planned' or 'independent'\n",
                 Value);
    return false;
  };

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--model") == 0 && I + 1 < Argc) {
      if (!splitModelList(Argv[++I], ModelSpecs))
        return 2;
    } else if (std::strncmp(A, "--model=", 8) == 0) {
      if (!splitModelList(A + 8, ModelSpecs))
        return 2;
    } else if (std::strcmp(A, "--eval") == 0 && I + 1 < Argc) {
      if (!ParseEval(Argv[++I]))
        return 2;
    } else if (std::strncmp(A, "--eval=", 7) == 0) {
      if (!ParseEval(A + 7))
        return 2;
    } else if (std::strcmp(A, "--specialize") == 0 && I + 1 < Argc) {
      if (!ParseSpecialize(Argv[++I]))
        return 2;
    } else if (std::strncmp(A, "--specialize=", 13) == 0) {
      if (!ParseSpecialize(A + 13))
        return 2;
    } else if (std::strcmp(A, "--lint") == 0) {
      Lint = true;
    } else if (std::strcmp(A, "--corpus") == 0) {
      Corpus = true;
    } else if (std::strcmp(A, "--json") == 0) {
      Json = true;
    } else if (std::strcmp(A, "--explain") == 0) {
      Explain = true;
    } else if (std::strcmp(A, "--outcomes") == 0) {
      Outcomes = true;
    } else if (std::strcmp(A, "--telemetry") == 0) {
      Telemetry = true;
    } else if (std::strcmp(A, "--jobs") == 0 && I + 1 < Argc) {
      Jobs = bench::parseJobsStrict(Argv[++I], "--jobs");
    } else if (std::strncmp(A, "--jobs=", 7) == 0) {
      Jobs = bench::parseJobsStrict(A + 7, "--jobs");
    } else if (std::strcmp(A, "--cap") == 0 && I + 1 < Argc) {
      Cap = bench::parseCountStrict(Argv[++I], "--cap");
    } else if (std::strncmp(A, "--cap=", 6) == 0) {
      Cap = bench::parseCountStrict(A + 6, "--cap");
    } else if (std::strcmp(A, "--store") == 0 && I + 1 < Argc) {
      StorePath = Argv[++I];
    } else if (std::strncmp(A, "--store=", 8) == 0) {
      StorePath = A + 8;
    } else if (std::strncmp(A, "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", A);
      return 2;
    } else {
      Files.push_back(A);
    }
  }

  // Robustness: reject bad model specs before doing any work, with the
  // registry's one-line diagnostic (names the offending token and the
  // alternatives). Every bad spec is diagnosed — a long comma-separated
  // list with two typos gets both named in one run, not one per rerun.
  int BadSpecs = 0;
  for (const std::string &Spec : ModelSpecs) {
    std::string Error;
    if (!ModelRegistry::parse(Spec, &Error)) {
      std::fprintf(stderr, "error: --model %s: %s\n", Spec.c_str(),
                   Error.c_str());
      ++BadSpecs;
    }
  }
  if (BadSpecs)
    return 2;

  // Assemble the batch: one request per file, plus the corpus, plus the
  // demo when nothing else was given. FileOf tracks provenance for
  // diagnostics.
  std::vector<CheckRequest> Requests;
  std::vector<std::string> FileOf;
  auto Add = [&](CheckRequest R, std::string File) {
    R.ModelSpecs = ModelSpecs;
    R.Explain = Explain;
    R.WantOutcomes = Outcomes || Json;
    R.CandidateCap = Cap;
    Requests.push_back(std::move(R));
    FileOf.push_back(std::move(File));
  };
  for (const char *File : Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File);
      return 2;
    }
    std::stringstream Ss;
    Ss << In.rdbuf();
    CheckRequest R;
    R.Source = Ss.str();
    // Unparseable input is NOT fail-fast: the request joins the batch and
    // the engine reports its error, so a bad file in the middle of a
    // multi-file batch still gets every other file checked, every failing
    // file its own `file:line:` diagnostic, and the exit stays nonzero
    // however late in the batch the failure sits.
    Add(std::move(R), File);
  }
  if (Corpus)
    for (const CorpusEntry &E : sharedCorpus()) {
      CheckRequest R;
      R.Corpus = E.Name;
      Add(std::move(R), "");
    }
  if (Requests.empty()) {
    if (!Json)
      std::printf("(no input files: running the built-in demo test)\n\n");
    CheckRequest R;
    R.Source = DemoTest;
    Add(std::move(R), "");
  }

  // --lint: static analysis instead of evaluation. Parse failures count
  // as findings (a program that does not parse certainly does not lint
  // clean) and print as the usual file:line diagnostics.
  if (Lint) {
    int Findings = 0;
    for (size_t I = 0; I < Requests.size(); ++I) {
      const CheckRequest &R = Requests[I];
      ParseResult Parsed;
      const Program *P = nullptr;
      std::string Name;
      if (!R.Source.empty()) {
        Parsed = parseProgram(R.Source);
        if (!Parsed) {
          std::fprintf(stderr, "%s:%u: error: %s\n",
                       FileOf[I].empty() ? "<input>" : FileOf[I].c_str(),
                       Parsed.ErrorLine, Parsed.Error.c_str());
          ++Findings;
          continue;
        }
        P = &Parsed.Prog;
      } else {
        const CorpusEntry *E = findCorpusEntry(R.Corpus);
        if (!E)
          continue; // Corpus names come from the corpus walk itself.
        P = &E->Prog;
      }
      LintedProgram L;
      L.Name = FileOf[I].empty() ? P->Name : FileOf[I];
      L.Report = lintProgram(*P);
      L.Facts = computeFacts(*P);
      Findings += static_cast<int>(L.Report.Findings.size());
      std::fputs(lintFindingsToText(L).c_str(), stdout);
    }
    if (Findings == 0)
      std::printf("%zu program%s lint clean\n", Requests.size(),
                  Requests.size() == 1 ? "" : "s");
    return Findings ? 1 : 0;
  }

  // Strict --store diagnostics: a store that cannot be opened (unwritable
  // path, corrupt header, format-version mismatch) is a usage error, not
  // a silent fall-through to cache-less evaluation.
  std::unique_ptr<VerdictStore> Store;
  if (!StorePath.empty()) {
    std::string Error;
    Store = VerdictStore::open(StorePath, &Error);
    if (!Store) {
      std::fprintf(stderr, "error: --store %s: %s\n", StorePath.c_str(),
                   Error.c_str());
      return 2;
    }
  }

  QueryEngine Engine({.Jobs = Jobs, .Strategy = Strategy,
                      .Specialize = Specialize, .Store = Store.get()});
  int Failed = 0;

  if (Json) {
    BatchTelemetry T;
    std::vector<CheckResponse> Responses = Engine.runAll(Requests, &T);
    for (size_t I = 0; I < Responses.size(); ++I)
      if (!Responses[I]) {
        ++Failed;
        // Mirror the diagnostic on stderr so a nonzero exit explains
        // itself even when stdout is redirected to a file.
        std::fprintf(stderr, "%s\n",
                     diagnosticOf(Responses[I], FileOf[I]).c_str());
      }
    std::fputs(
        responsesToJson(Responses, Telemetry ? &T : nullptr).c_str(),
        stdout);
  } else {
    // Stream: responses print as they complete, in request order.
    size_t Index = 0;
    BatchTelemetry T = Engine.run(Requests, [&](const CheckResponse &Resp) {
      if (!Resp)
        ++Failed;
      printResponse(Resp, FileOf[Index], Explain);
      ++Index;
    });
    if (Requests.size() > 1 || Jobs > 1)
      std::printf("batch: %llu programs, %llu candidates, %llu checks in "
                  "%.2fs on %zu worker%s\n",
                  static_cast<unsigned long long>(T.Programs),
                  static_cast<unsigned long long>(T.Candidates),
                  static_cast<unsigned long long>(T.Checks), T.Seconds,
                  T.Workers.size(), T.Workers.size() == 1 ? "" : "s");
  }
  return Failed ? 1 : 0;
}
