//===- AuditIO.cpp - Machine-readable contract-audit reports -----------------==//

#include "audit/AuditIO.h"

#include "query/Json.h"

#include <cinttypes>
#include <cstdio>

using namespace tmw;

namespace {

void appendUint(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void appendFinding(std::string &Out, const AuditFinding &F) {
  Out += "{\"pass\": ";
  jsonAppendString(Out, auditPassName(F.Pass));
  Out += ", \"model\": ";
  jsonAppendString(Out, F.Model);
  Out += ", \"axiom\": ";
  jsonAppendString(Out, F.Axiom);
  if (F.Bit >= 0) {
    Out += ", \"bit\": ";
    appendUint(Out, static_cast<uint64_t>(F.Bit));
    Out += ", \"bit_name\": ";
    jsonAppendString(Out, F.BitName);
  }
  Out += ", \"probe\": ";
  jsonAppendString(Out, F.Probe);
  Out += ", \"detail\": ";
  jsonAppendString(Out, F.Detail);
  Out += ", \"witness\": ";
  jsonAppendString(Out, F.Witness);
  Out += '}';
}

void appendPrecision(std::string &Out, const SaltPrecisionNote &N) {
  Out += "{\"model\": ";
  jsonAppendString(Out, N.Model);
  Out += ", \"axiom\": ";
  jsonAppendString(Out, N.Axiom);
  Out += ", \"bit\": ";
  appendUint(Out, static_cast<uint64_t>(N.Bit < 0 ? 0 : N.Bit));
  Out += ", \"bit_name\": ";
  jsonAppendString(Out, N.BitName);
  Out += '}';
}

} // namespace

std::string tmw::auditReportToJson(const AuditReport &R) {
  std::string Out;
  Out += "{\"schema\": ";
  jsonAppendString(Out, kAuditReportSchema);
  Out += ", \"sound\": ";
  Out += R.sound() ? "true" : "false";
  if (!R.Error.empty()) {
    Out += ", \"error\": ";
    jsonAppendString(Out, R.Error);
  }
  Out += ", \"events\": ";
  appendUint(Out, R.Events);
  Out += ", \"specs\": [";
  bool First = true;
  for (const std::string &S : R.Specs) {
    if (!First)
      Out += ", ";
    First = false;
    jsonAppendString(Out, S);
  }
  Out += "], \"counters\": {\"probes\": ";
  appendUint(Out, R.Counters.Probes);
  Out += ", \"corpus_probes\": ";
  appendUint(Out, R.Counters.CorpusProbes);
  Out += ", \"vocab_probes\": ";
  appendUint(Out, R.Counters.VocabProbes);
  Out += ", \"bases\": ";
  appendUint(Out, R.Counters.Bases);
  Out += ", \"placements\": ";
  appendUint(Out, R.Counters.Placements);
  Out += ", \"units\": ";
  appendUint(Out, R.Counters.Units);
  Out += ", \"term_evals\": ";
  appendUint(Out, R.Counters.TermEvals);
  Out += ", \"footprint_checks\": ";
  appendUint(Out, R.Counters.FootprintChecks);
  Out += "}, \"truncated\": ";
  Out += R.Truncated ? "true" : "false";
  Out += ", \"findings\": [";
  First = true;
  for (const AuditFinding &F : R.Findings) {
    if (!First)
      Out += ", ";
    First = false;
    appendFinding(Out, F);
  }
  Out += "], \"precision\": [";
  First = true;
  for (const SaltPrecisionNote &N : R.Precision) {
    if (!First)
      Out += ", ";
    First = false;
    appendPrecision(Out, N);
  }
  Out += "]}\n";
  return Out;
}
