//===- server_throughput.cpp - Resident server vs per-batch cold starts ---------==//
///
/// The residency case for the query server: the repeated-query workloads
/// (CI verdict matrices, ablation sweeps, the Wickerson-style RTL/silicon
/// substitute columns) submit the *same corpus* against many model specs,
/// batch after batch — so everything a one-shot run re-derives per batch
/// (process startup, corpus/program parsing, model resolution, pool and
/// arena construction) is pure overhead. This bench measures it:
///
///  * `resident`  — one `QueryServer`: threads, arenas, and caches live
///    across batches (`serveLine` per batch, the real wire path);
///  * `cold`      — a fresh `QueryEngine` + request re-parse per batch:
///    the in-process floor of per-batch setup (no exec/loader cost);
///  * `process`   — `./litmus_tool --corpus --json` via std::system, the
///    true process-per-batch flow (skipped when the binary is not
///    reachable from the working directory, e.g. outside the build dir).
///
/// Two workloads: the corpus × six-model batch by *reference* (corpus
/// entries are process-static, so this isolates pool/model residency and
/// process startup), and the same programs submitted as *inline DSL
/// source* — the shape external clients send — where the resident
/// program cache saves the per-batch parses outright.
///
/// Emits `BENCH_server_throughput.json`; like the other bench trackers
/// the bars (resident beats process-per-batch on the corpus × six-model
/// workload; resident beats the cold engine on the source workload) are
/// tracked across commits via the JSON, not hard-asserted — CI boxes are
/// too noisy for timing exits — but any *byte* divergence between the
/// three paths is fatal.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "litmus/Library.h"
#include "litmus/Printer.h"
#include "query/QueryEngine.h"
#include "query/QueryIO.h"
#include "server/Multiplexer.h"
#include "server/QueryServer.h"
#include "store/VerdictStore.h"

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using namespace tmw;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// The corpus × six-model batch (the acceptance workload), as requests
/// and as its wire line. \p AsSource submits each test as inline DSL
/// text instead of a corpus reference — the external-client shape that
/// exercises per-batch program parsing.
std::vector<CheckRequest> corpusBatch(bool AsSource) {
  const std::vector<const char *> Specs = {"sc",    "tsc",   "x86",
                                           "power", "armv8", "cpp"};
  std::vector<CheckRequest> Requests;
  for (const CorpusEntry &E : sharedCorpus()) {
    CheckRequest R;
    if (AsSource) {
      R.Name = E.Name;
      R.Source = printDsl(E.Prog);
    } else {
      R.Corpus = E.Name;
    }
    for (const char *S : Specs)
      R.ModelSpecs.push_back(S);
    R.WantOutcomes = true;
    Requests.push_back(std::move(R));
  }
  return Requests;
}

/// Seconds per batch of serving \p BatchLine \p Batches times against
/// \p Golden (any divergence is fatal — the bench doubles as a check).
template <class ServeFn>
double timeBatches(unsigned Batches, const std::string &Golden,
                   const char *What, ServeFn Serve, bool &Ok) {
  auto T0 = std::chrono::steady_clock::now();
  for (unsigned B = 0; B < Batches; ++B)
    if (Serve() != Golden) {
      std::fprintf(stderr, "FATAL: %s batch diverged\n", What);
      Ok = false;
      return 0;
    }
  Ok = true;
  return secondsSince(T0) / Batches;
}

/// One load-generator client: connect to \p Path, send \p Batches copies
/// of \p Line, half-close, read everything back, and byte-check against
/// \p Golden repeated. Returns false on any socket failure or divergence.
bool muxClient(const std::string &Path, const std::string &Line,
               const std::string &Golden, unsigned Batches) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = -1;
  for (int Try = 0; Try < 400 && Fd < 0; ++Try) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      Fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  if (Fd < 0)
    return false;
  for (unsigned B = 0; B < Batches; ++B) {
    std::string Payload = Line + "\n";
    size_t Off = 0;
    while (Off < Payload.size()) {
      ssize_t N = ::send(Fd, Payload.data() + Off, Payload.size() - Off,
                         MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        ::close(Fd);
        return false;
      }
      Off += static_cast<size_t>(N);
    }
  }
  ::shutdown(Fd, SHUT_WR);
  std::string Got;
  char Buf[65536];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Got.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  std::string Expect;
  for (unsigned B = 0; B < Batches; ++B)
    Expect += Golden;
  return Got == Expect;
}

/// Aggregate seconds per batch with \p Clients concurrent connections
/// fanned over one multiplexed server, each sending \p Batches corpus
/// batches; every client's byte stream is checked (divergence → 0 and
/// \p Ok = false).
double muxSweepPoint(QueryServer &Server, const std::string &Line,
                     const std::string &Golden, unsigned Clients,
                     unsigned Batches, bool &Ok) {
  std::string Path =
      "/tmp/tmw_bench_mux." + std::to_string(::getpid()) + ".sock";
  server::MuxOptions Opts;
  Opts.AcceptLimit = Clients;
  server::ConnectionMultiplexer Mux(Server, Opts);
  std::thread Loop([&] { Mux.serve(Path); });

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  std::vector<char> Good(Clients, 0);
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back(
        [&, C] { Good[C] = muxClient(Path, Line, Golden, Batches); });
  for (std::thread &T : Threads)
    T.join();
  double Sec = secondsSince(T0);
  Loop.join();

  Ok = true;
  for (unsigned C = 0; C < Clients; ++C)
    if (!Good[C]) {
      std::fprintf(stderr,
                   "FATAL: multi-client sweep (%u clients): client %u "
                   "failed or diverged\n",
                   Clients, C);
      Ok = false;
      return 0;
    }
  return Sec / (static_cast<double>(Clients) * Batches);
}

} // namespace

int main(int argc, char **argv) {
  bench::header("Query-server throughput: resident vs per-batch cold start",
                "the repeated-query serving shape of Table 1 / §5 sweeps");
  unsigned Jobs = bench::jobs(argc, argv, 4);
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  const unsigned Batches = Smoke ? 4 : 16;

  std::vector<CheckRequest> Requests = corpusBatch(/*AsSource=*/false);
  std::string BatchLine = requestsToJsonLine(Requests);
  std::vector<CheckRequest> SourceRequests = corpusBatch(/*AsSource=*/true);
  std::string SourceLine = requestsToJsonLine(SourceRequests);

  auto ColdServe = [&](const std::string &Line) {
    // Per-batch setup a one-shot run pays in-process: batch re-parse,
    // fresh engine, fresh threads, per-request model resolution and
    // program parsing (no caches).
    std::vector<CheckRequest> Parsed;
    std::string Error;
    if (!requestsFromJson(Line, Parsed, &Error)) {
      std::fprintf(stderr, "FATAL: %s\n", Error.c_str());
      return std::string();
    }
    return responsesToJson(QueryEngine({Jobs}).runAll(Parsed));
  };

  QueryServer Server({Jobs});
  std::string Golden = Server.serveLine(BatchLine); // warm the caches
  std::string SourceGolden = Server.serveLine(SourceLine);
  bool Ok = false;

  // --- workload 1: corpus-reference requests ---------------------------
  double ResidentSec = timeBatches(
      Batches, Golden, "resident",
      [&] { return Server.serveLine(BatchLine); }, Ok);
  if (!Ok)
    return 1;
  double ColdSec = timeBatches(
      Batches, Golden, "cold", [&] { return ColdServe(BatchLine); }, Ok);
  if (!Ok)
    return 1;

  // --- workload 2: the same tests as inline DSL source -----------------
  double SourceResidentSec = timeBatches(
      Batches, SourceGolden, "resident-source",
      [&] { return Server.serveLine(SourceLine); }, Ok);
  if (!Ok)
    return 1;
  double SourceColdSec = timeBatches(
      Batches, SourceGolden, "cold-source",
      [&] { return ColdServe(SourceLine); }, Ok);
  if (!Ok)
    return 1;

  // --- workload 3: N concurrent clients over the poll multiplexer -------
  // Same corpus batch, fanned from rival connections onto the one
  // resident pool: scaling here is the multi-lane CI shape. Every
  // client's byte stream is checked against the golden document.
  std::vector<unsigned> ClientCounts =
      Smoke ? std::vector<unsigned>{1, 4} : std::vector<unsigned>{1, 2, 4, 8};
  const unsigned MuxBatches = Smoke ? 2 : 4;
  std::vector<double> MuxSec;
  for (unsigned Clients : ClientCounts) {
    double Sec =
        muxSweepPoint(Server, BatchLine, Golden, Clients, MuxBatches, Ok);
    if (!Ok)
      return 1;
    MuxSec.push_back(Sec);
  }

  // --- workload 4: the persistent verdict store across process restarts --
  // Each batch simulates a *fresh process* with a warm store file: parse
  // the batch line, reopen the store, serve with a cold engine — exactly
  // `litmus_tool --corpus --json --store` run twice. The first batch fills
  // the store (cold, evaluation + append/fsync per request); every later
  // batch answers at I/O speed from the log, byte-identically.
  std::string StorePath =
      "/tmp/tmw_bench_store." + std::to_string(::getpid()) + ".store";
  ::unlink(StorePath.c_str());
  auto StoreServe = [&](const std::string &Line) {
    std::vector<CheckRequest> Parsed;
    std::string Error;
    if (!requestsFromJson(Line, Parsed, &Error)) {
      std::fprintf(stderr, "FATAL: %s\n", Error.c_str());
      return std::string();
    }
    std::unique_ptr<VerdictStore> Store =
        VerdictStore::open(StorePath, &Error);
    if (!Store) {
      std::fprintf(stderr, "FATAL: store %s: %s\n", StorePath.c_str(),
                   Error.c_str());
      return std::string();
    }
    BatchOptions Opts;
    Opts.Jobs = Jobs;
    Opts.Store = Store.get();
    return responsesToJson(QueryEngine(Opts).runAll(Parsed));
  };
  double StoreColdSec = timeBatches(
      1, Golden, "store-cold", [&] { return StoreServe(BatchLine); }, Ok);
  if (!Ok) {
    ::unlink(StorePath.c_str());
    return 1;
  }
  double StoreWarmSec = timeBatches(
      Batches, Golden, "store-warm", [&] { return StoreServe(BatchLine); },
      Ok);
  ::unlink(StorePath.c_str());
  if (!Ok)
    return 1;

  // --- process-per-batch: the real litmus_tool flow, when reachable -----
  double ProcessSec = 0;
  char Cmd[128];
  std::snprintf(Cmd, sizeof(Cmd),
                "./litmus_tool --corpus --json --jobs %u > /dev/null", Jobs);
  if (::access("./litmus_tool", X_OK) == 0) {
    auto T0 = std::chrono::steady_clock::now();
    for (unsigned B = 0; B < Batches; ++B)
      if (std::system(Cmd) != 0) {
        std::fprintf(stderr, "FATAL: litmus_tool batch failed\n");
        return 1;
      }
    ProcessSec = secondsSince(T0) / Batches;
  } else {
    std::printf("(./litmus_tool not reachable; skipping the "
                "process-per-batch row)\n");
  }

  std::printf("\ncorpus x six-model workload, %u batches, --jobs %u "
              "(seconds per batch):\n",
              Batches, Jobs);
  std::printf("  by corpus reference:\n");
  std::printf("    resident server (caches + pool live): %8.4fs\n",
              ResidentSec);
  std::printf("    cold engine per batch (in-process):   %8.4fs  (%.2fx)\n",
              ColdSec, ColdSec / ResidentSec);
  if (ProcessSec > 0)
    std::printf("    process per batch (litmus_tool):      %8.4fs  (%.2fx)\n",
                ProcessSec, ProcessSec / ResidentSec);
  std::printf("  by inline DSL source (external-client shape):\n");
  std::printf("    resident server (program cache hits): %8.4fs\n",
              SourceResidentSec);
  std::printf("    cold engine per batch (re-parses):    %8.4fs  (%.2fx)\n",
              SourceColdSec, SourceColdSec / SourceResidentSec);
  std::printf("  persistent verdict store, fresh engine + reopen per batch:\n");
  std::printf("    store-cold (fills the log):           %8.4fs\n",
              StoreColdSec);
  std::printf("    store-warm (answers from the log):    %8.4fs  (%.2fx vs "
              "cold engine)\n",
              StoreWarmSec,
              StoreWarmSec > 0 ? ColdSec / StoreWarmSec : 0.0);
  std::printf("  concurrent clients over the poll multiplexer "
              "(%u batches each, aggregate s/batch):\n",
              MuxBatches);
  for (size_t I = 0; I < ClientCounts.size(); ++I)
    std::printf("    %u client%s: %30.4fs  (%.2fx vs 1 client)\n",
                ClientCounts[I], ClientCounts[I] == 1 ? " " : "s", MuxSec[I],
                MuxSec[I] > 0 ? MuxSec[0] / MuxSec[I] : 0.0);

  std::string Sweep = "[";
  for (size_t I = 0; I < ClientCounts.size(); ++I) {
    char Point[160];
    std::snprintf(Point, sizeof(Point),
                  "%s{\"clients\": %u, \"seconds_per_batch\": %.6f}",
                  I ? ", " : "", ClientCounts[I], MuxSec[I]);
    Sweep += Point;
  }
  Sweep += "]";

  char Json[1152];
  std::snprintf(
      Json, sizeof(Json),
      "{\"bench\": \"server_throughput\", \"batches\": %u, \"jobs\": %u, "
      "\"requests_per_batch\": %zu, "
      "\"resident_seconds_per_batch\": %.6f, "
      "\"cold_engine_seconds_per_batch\": %.6f, "
      "\"process_seconds_per_batch\": %.6f, "
      "\"source_resident_seconds_per_batch\": %.6f, "
      "\"source_cold_seconds_per_batch\": %.6f, "
      "\"store_cold_seconds_per_batch\": %.6f, "
      "\"store_warm_seconds_per_batch\": %.6f, "
      "\"speedup_vs_cold\": %.3f, \"speedup_vs_process\": %.3f, "
      "\"source_speedup_vs_cold\": %.3f, "
      "\"store_warm_speedup_vs_cold_engine\": %.3f, "
      "\"mux_batches_per_client\": %u, \"mux_sweep\": %s}",
      Batches, Jobs, Requests.size(), ResidentSec, ColdSec, ProcessSec,
      SourceResidentSec, SourceColdSec, StoreColdSec, StoreWarmSec,
      ColdSec / ResidentSec,
      ProcessSec > 0 ? ProcessSec / ResidentSec : 0.0,
      SourceColdSec / SourceResidentSec,
      StoreWarmSec > 0 ? ColdSec / StoreWarmSec : 0.0, MuxBatches,
      Sweep.c_str());
  bench::writeBenchJson("server_throughput", Json);
  return 0;
}
