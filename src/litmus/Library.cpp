//===- Library.cpp - A curated litmus-test corpus ------------------------------==//

#include "litmus/Library.h"

#include "litmus/Parser.h"

#include <cassert>
#include <unordered_map>

using namespace tmw;

namespace {

/// nullopt-friendly shorthand for verdict columns.
constexpr std::optional<bool> Y = true, N = false, U = std::nullopt;

CorpusEntry entry(const char *Name, const char *Family, const char *Dsl,
                  std::optional<bool> Sc, std::optional<bool> Tsc,
                  std::optional<bool> X86, std::optional<bool> Power,
                  std::optional<bool> Armv8, const char *Note) {
  ParseResult R = parseProgram(Dsl);
  assert(R && "corpus entry failed to parse");
  CorpusEntry E;
  E.Name = Name;
  E.Family = Family;
  E.Prog = R.Prog;
  E.Prog.Name = Name;
  E.Sc = Sc;
  E.Tsc = Tsc;
  E.X86 = X86;
  E.Power = Power;
  E.Armv8 = Armv8;
  E.Note = Note;
  return E;
}

} // namespace

std::vector<CorpusEntry> tmw::standardCorpus() {
  std::vector<CorpusEntry> C;

  C.push_back(entry("SB", "SB", R"(thread 0
  store x 1
  load y
thread 1
  store y 1
  load x
post reg 0 r1 0
post reg 1 r1 0
)",
                    N, N, Y, Y, Y, "store buffering: the TSO relaxation"));

  C.push_back(entry("SB+mfences", "SB", R"(thread 0
  store x 1
  fence mfence
  load y
thread 1
  store y 1
  fence mfence
  load x
post reg 0 r2 0
post reg 1 r2 0
)",
                    N, N, N, U, U, "full fences restore SC on x86"));

  C.push_back(entry("SB+syncs", "SB", R"(thread 0
  store x 1
  fence sync
  load y
thread 1
  store y 1
  fence sync
  load x
post reg 0 r2 0
post reg 1 r2 0
)",
                    N, N, U, N, U, "sync restores SC for SB on Power"));

  C.push_back(entry("SB+dmbs", "SB", R"(thread 0
  store x 1
  fence dmb
  load y
thread 1
  store y 1
  fence dmb
  load x
post reg 0 r2 0
post reg 1 r2 0
)",
                    N, N, U, U, N, "DMB restores SC for SB on ARMv8"));

  C.push_back(entry("SB+txns", "SB", R"(loc ok 1
thread 0
  txbegin
  store x 1
  txend
  load y
thread 1
  txbegin
  store y 1
  txend
  load x
post mem ok 1
post reg 0 r3 0
post reg 1 r3 0
)",
                    N, N, N, N, N,
                    "implicit transaction fences act like full fences"));

  C.push_back(entry("MP", "MP", R"(thread 0
  store x 1
  store y 1
thread 1
  load y
  load x
post reg 1 r0 1
post reg 1 r1 0
)",
                    N, N, N, Y, Y, "message passing, no synchronisation"));

  C.push_back(entry("MP+lwsync+addr", "MP", R"(thread 0
  store x 1
  fence lwsync
  store y 1
thread 1
  load y
  load x addr:r0
post reg 1 r0 1
post reg 1 r1 0
)",
                    N, N, N, N, U,
                    "the classic Power publication idiom"));

  C.push_back(entry("MP+dmb+addr", "MP", R"(thread 0
  store x 1
  fence dmb
  store y 1
thread 1
  load y
  load x addr:r0
post reg 1 r0 1
post reg 1 r1 0
)",
                    N, N, N, U, N, "the ARMv8 publication idiom"));

  C.push_back(entry("MP+rel+acq", "MP", R"(thread 0
  store x 1
  store y 1 rel
thread 1
  load y acq
  load x
post reg 1 r0 1
post reg 1 r1 0
)",
                    N, N, N, U, N,
                    "STLR/LDAR pair forbids the stale read on ARMv8"));

  C.push_back(entry("MP+txn+addr", "MP", R"(loc ok 1
thread 0
  txbegin
  store x 1
  store y 1
  txend
thread 1
  load y
  load x addr:r0
post mem ok 1
post reg 1 r0 1
post reg 1 r1 0
)",
                    N, N, N, N, N,
                    "transactional stores become visible together"));

  C.push_back(entry("LB", "LB", R"(thread 0
  load x
  store y 1
thread 1
  load y
  store x 1
post reg 0 r0 1
post reg 1 r0 1
)",
                    N, N, N, Y, Y,
                    "load buffering: allowed by Power/ARMv8 models, never "
                    "observed on Power silicon"));

  C.push_back(entry("LB+datas", "LB", R"(thread 0
  load x
  store y 1 data:r0
thread 1
  load y
  store x 1 data:r0
post reg 0 r0 1
post reg 1 r0 1
)",
                    N, N, N, N, N, "data dependencies forbid LB"));

  C.push_back(entry("WRC", "WRC", R"(thread 0
  store x 1
thread 1
  load x
  store y 1
thread 2
  load y
  load x
post reg 1 r0 1
post reg 2 r0 1
post reg 2 r1 0
)",
                    N, N, N, Y, Y, "write-to-read causality, plain"));

  C.push_back(entry("WRC+data+addr", "WRC", R"(thread 0
  store x 1
thread 1
  load x
  store y 1 data:r0
thread 2
  load y
  load x addr:r0
post reg 1 r0 1
post reg 2 r0 1
post reg 2 r1 0
)",
                    N, N, N, Y, N,
                    "deps alone do not restore causality on non-MCA Power; "
                    "they do on MCA ARMv8"));

  C.push_back(entry("WRC+txn+addr", "WRC", R"(loc ok 1
thread 0
  store x 1
thread 1
  txbegin
  load x
  store y 1
  txend
thread 2
  load y
  load x addr:r0
post mem ok 1
post reg 1 r1 1
post reg 2 r0 1
post reg 2 r1 0
)",
                    N, N, N, N, N,
                    "§5.2 (1): the transaction's integrated barrier "
                    "(tprop1) restores causality"));

  C.push_back(entry("IRIW", "IRIW", R"(thread 0
  store x 1
thread 1
  load x
  load y
thread 2
  load y
  load x
thread 3
  store y 1
post reg 1 r0 1
post reg 1 r1 0
post reg 2 r0 1
post reg 2 r1 0
)",
                    N, N, N, Y, Y, "independent reads, plain"));

  C.push_back(entry("IRIW+addrs", "IRIW", R"(thread 0
  store x 1
thread 1
  load x
  load y addr:r0
thread 2
  load y
  load x addr:r0
thread 3
  store y 1
post reg 1 r0 1
post reg 1 r1 0
post reg 2 r0 1
post reg 2 r1 0
)",
                    N, N, N, Y, N,
                    "multicopy-atomicity separates ARMv8 (forbidden) from "
                    "Power (allowed)"));

  C.push_back(entry("IRIW+syncs", "IRIW", R"(thread 0
  store x 1
thread 1
  load x
  fence sync
  load y
thread 2
  load y
  fence sync
  load x
thread 3
  store y 1
post reg 1 r0 1
post reg 1 r2 0
post reg 2 r0 1
post reg 2 r2 0
)",
                    N, N, N, N, U, "syncs forbid IRIW even on Power"));

  C.push_back(entry("IRIW+txn-writers+addrs", "IRIW", R"(loc ok 1
thread 0
  txbegin
  store x 1
  txend
thread 1
  load x
  load y addr:r0
thread 2
  load y
  load x addr:r0
thread 3
  txbegin
  store y 1
  txend
post mem ok 1
post reg 1 r0 1
post reg 1 r1 0
post reg 2 r0 1
post reg 2 r1 0
)",
                    N, N, N, N, N,
                    "§5.2 (3): successful transactions serialise (thb)"));

  C.push_back(entry("IRIW+one-txn-writer+addrs", "IRIW", R"(loc ok 1
thread 0
  txbegin
  store x 1
  txend
thread 1
  load x
  load y addr:r0
thread 2
  load y
  load x addr:r0
thread 3
  store y 1
post mem ok 1
post reg 1 r0 1
post reg 1 r1 0
post reg 2 r0 1
post reg 2 r1 0
)",
                    N, N, N, Y, N,
                    "§5.3: with one transactional writer the behaviour "
                    "was observed on POWER8 and the model allows it"));

  C.push_back(entry("CoRR", "coherence", R"(thread 0
  store x 1
  store x 2
thread 1
  load x
  load x
post reg 1 r0 2
post reg 1 r1 1
)",
                    N, N, N, N, N,
                    "coherence: new-then-old reads are forbidden "
                    "everywhere"));

  C.push_back(entry("CoWW", "coherence", R"(thread 0
  store x 1
  store x 2
thread 1
  load x
post mem x 1
post reg 1 r0 2
)",
                    N, N, N, N, N,
                    "coherence: po-later store cannot lose to the earlier "
                    "one"));

  C.push_back(entry("2+2W", "2+2W", R"(thread 0
  store x 1
  store y 2
thread 1
  store y 1
  store x 2
post mem x 1
post mem y 1
)",
                    N, N, N, Y, Y, "double cross-over of write pairs"));

  C.push_back(entry("2+2W+txns", "2+2W", R"(loc ok 1
thread 0
  txbegin
  store x 1
  store y 2
  txend
thread 1
  txbegin
  store y 1
  store x 2
  txend
post mem ok 1
post mem x 1
post mem y 1
)",
                    N, N, N, N, N,
                    "transactions must serialise: the cross-over would "
                    "order each before the other"));

  C.push_back(entry("R", "R", R"(thread 0
  store x 1
  store y 1
thread 1
  store y 2
  load x
post mem y 2
post reg 1 r1 0
)",
                    N, N, Y, Y, Y,
                    "R: write-write then write-read, allowed on TSO"));

  C.push_back(entry("S", "S", R"(thread 0
  store x 2
  store y 1
thread 1
  load y
  store x 1
post mem x 2
post reg 1 r0 1
)",
                    N, N, N, Y, Y,
                    "S: the late write loses the coherence race; TSO's "
                    "write-write order forbids it"));

  C.push_back(entry("S+data", "S", R"(thread 0
  store x 2
  store y 1
thread 1
  load y
  store x 1 data:r0
post mem x 2
post reg 1 r0 1
)",
                    N, N, N, Y, Y,
                    "a data dependency alone does not fix S — the writer "
                    "needs a barrier"));

  C.push_back(entry("S+lwsync+data", "S", R"(thread 0
  store x 2
  fence lwsync
  store y 1
thread 1
  load y
  store x 1 data:r0
post mem x 2
post reg 1 r0 1
)",
                    N, N, N, N, U,
                    "lwsync + data forbids S on Power (Propagation)"));

  C.push_back(entry("SB+rmws", "SB", R"(thread 0
  load x excl rmw:1
  store x 1 excl rmw:0
  load y
thread 1
  load y excl rmw:1
  store y 1 excl rmw:0
  load x
post reg 0 r2 0
post reg 1 r2 0
)",
                    N, N, N, Y, Y,
                    "locked RMWs fence SB on x86; Power/ARMv8 exclusives "
                    "carry no implicit barrier"));

  C.push_back(entry("MP+txn-reader", "MP", R"(loc ok 1
thread 0
  store x 1
  store y 1
thread 1
  txbegin
  load y
  load x
  txend
post mem ok 1
post reg 1 r1 1
post reg 1 r2 0
)",
                    N, N, N, Y, Y,
                    "a transactional *reader* alone does not fix MP on "
                    "weak machines (its boundary fences border nothing) — "
                    "TSC forbids it, the hardware TM models allow it: the "
                    "models sit strictly between the §3 bounds"));

  C.push_back(entry("LB+ctrls", "LB", R"(thread 0
  load x
  store y 1 ctrl:r0
thread 1
  load y
  store x 1 ctrl:r0
post reg 0 r0 1
post reg 1 r0 1
)",
                    N, N, N, N, N,
                    "control dependencies to stores are preserved "
                    "everywhere: no LB"));

  C.push_back(entry("CoRW1", "coherence", R"(thread 0
  load x
  store x 1
thread 1
  load x
post reg 0 r0 1
)",
                    N, N, N, N, N,
                    "a load cannot observe the po-later store to the same "
                    "location"));

  C.push_back(entry("IRIW+dmbs", "IRIW", R"(thread 0
  store x 1
thread 1
  load x
  fence dmb
  load y
thread 2
  load y
  fence dmb
  load x
thread 3
  store y 1
post reg 1 r0 1
post reg 1 r2 0
post reg 2 r0 1
post reg 2 r2 0
)",
                    N, N, N, U, N,
                    "DMBs forbid IRIW on multicopy-atomic ARMv8"));

  C.push_back(entry("Fig2-txn", "paper", R"(loc ok 1
thread 0
  txbegin
  store x 1
  load x
  txend
thread 1
  store x 2
post mem ok 1
post reg 0 r2 2
post mem x 2
)",
                    Y, N, N, N, N,
                    "Fig. 2: the external write lands between the "
                    "transaction's write and read — SC allows, every TM "
                    "model forbids (strong isolation)"));

  C.push_back(entry("Fig3d-containment", "paper", R"(loc ok 1
thread 0
  txbegin
  store x 1
  store x 2
  txend
thread 1
  load x
post mem ok 1
post reg 1 r0 1
post mem x 2
)",
                    Y, N, N, N, N,
                    "Fig. 3(d): an external read observes the "
                    "transaction's intermediate write"));

  C.push_back(entry("Example1.1", "paper", R"(loc ok 1
thread 0
  load m acq excl rmw:1
  store m 1 excl rmw:0 ctrl:r0
  load x
  store x 2 data:r2
  store m 0 rel
thread 1
  txbegin
  load m
  store x 1
  txend
post mem ok 1
post reg 0 r0 0
post reg 0 r2 0
post reg 1 r1 0
post mem x 2
post mem m 0
)",
                    Y, N, N, U, Y,
                    "Example 1.1: mutual exclusion violated under the "
                    "ARMv8 TM proposal — the headline finding. Plain SC "
                    "(no transaction or RMW axioms) also reaches it; TSC "
                    "and x86's locked RMW forbid it; Power is discussed "
                    "in EXPERIMENTS.md"));

  return C;
}

const std::vector<CorpusEntry> &tmw::sharedCorpus() {
  // Built once per process, immutable after: the residency anchor every
  // repeated-query consumer (query engine, server, benches) shares
  // instead of re-parsing ~25 programs per standardCorpus() call.
  static const std::vector<CorpusEntry> C = standardCorpus();
  return C;
}

const CorpusEntry *tmw::findCorpusEntry(std::string_view Name) {
  // The name → index map is built on first use; entries point into the
  // shared corpus, so the returned pointer never dangles.
  static const std::unordered_map<std::string_view, size_t> Index = [] {
    std::unordered_map<std::string_view, size_t> M;
    const std::vector<CorpusEntry> &C = sharedCorpus();
    for (size_t I = 0; I < C.size(); ++I)
      M.emplace(C[I].Name, I);
    return M;
  }();
  auto It = Index.find(Name);
  return It == Index.end() ? nullptr : &sharedCorpus()[It->second];
}

std::optional<bool> tmw::expectedVerdict(const CorpusEntry &E, Arch A) {
  switch (A) {
  case Arch::SC:
    return E.Sc;
  case Arch::TSC:
    return E.Tsc;
  case Arch::X86:
    return E.X86;
  case Arch::Power:
    return E.Power;
  case Arch::Armv8:
    return E.Armv8;
  case Arch::Cpp:
    return std::nullopt;
  }
  return std::nullopt;
}
