//===- table1_power.cpp - Table 1, Power rows ----------------------------------==//
///
/// Regenerates the Power half of Table 1. "Hardware" is the simulated
/// POWER8 (the Power+TM model strengthened with no-load-buffering, §5.3's
/// observation that LB has never been seen on Power silicon), run as a
/// 10M-run sampled campaign per test. Expect unseen Allow tests to be
/// concentrated on LB shapes, as in the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "hw/ImplModel.h"
#include "hw/LitmusRunner.h"
#include "litmus/FromExecution.h"
#include "models/PowerModel.h"
#include "synth/Conformance.h"

#include <map>
#include <vector>

using namespace tmw;

int main(int argc, char **argv) {
  bench::header("Table 1 (Power): testing the transactional Power model",
                "Table 1, right half; §5.3");

  PowerModel Tm;
  PowerModel Baseline{PowerModel::Config::baseline()};
  Vocabulary V = Vocabulary::forArch(Arch::Power);
  ImplModel P8 = ImplModel::power8();
  unsigned MaxE = bench::maxEvents(4);
  double Budget = bench::budgetSeconds(120.0);
  unsigned Jobs = bench::jobs(argc, argv);

  auto SeenOnP8 = [&P8](const Execution &X) {
    Program P = programFromExecution(X, "t").Prog;
    // 10k sampled runs suffice: Seen is exact (exhaustive reachability).
    return runOnImpl(P, P8, 10000).Seen;
  };
  // For Forbid tests, only count observations with no model-consistent
  // explanation (footnote 2).
  auto ForbiddenSeenOnP8 = [&](const Execution &X) {
    Program P = programFromExecution(X, "t").Prog;
    RunReport R = runOnImpl(P, P8, 10000);
    return observedForbiddenBehaviour(P, Tm, outcomesOf(R));
  };

  std::printf("%4s %12s %9s %7s %5s %5s\n", "|E|", "synth(s)", "complete",
              "Forbid", "S", "!S");
  unsigned TotForbid = 0, TotForbidSeen = 0;
  std::vector<Execution> AllForbid;
  for (unsigned N = 2; N <= MaxE; ++N) {
    ForbidSuite S = synthesizeForbid(Tm, Baseline, V, N, Budget, Jobs);
    unsigned Seen = 0;
    for (const Execution &X : S.Tests)
      Seen += ForbiddenSeenOnP8(X);
    AllForbid.insert(AllForbid.end(), S.Tests.begin(), S.Tests.end());
    TotForbid += S.Tests.size();
    TotForbidSeen += Seen;
    std::printf("%4u %12.2f %9s %7zu %5u %5zu\n", N, S.SynthesisSeconds,
                bench::yesNo(S.Complete), S.Tests.size(), Seen,
                S.Tests.size() - Seen);
  }

  std::printf("%4s %12s %9s %7s %5s %5s\n", "|E|", "", "", "Allow", "S",
              "!S");
  std::map<unsigned, std::pair<unsigned, unsigned>> AllowBySize;
  unsigned LbUnseen = 0, TotAllow = 0, TotAllowSeen = 0;
  for (const Execution &X : relaxationsOf(AllForbid, V)) {
    bool Seen = SeenOnP8(X);
    auto &[T, Sn] = AllowBySize[X.size()];
    ++T;
    Sn += Seen;
    if (!Seen && !(X.Po | X.Rf).isAcyclic())
      ++LbUnseen; // load-buffering shape: invisible on the silicon
  }
  for (const auto &[N, TS] : AllowBySize) {
    std::printf("%4u %12s %9s %7u %5u %5u\n", N, "", "", TS.first,
                TS.second, TS.first - TS.second);
    TotAllow += TS.first;
    TotAllowSeen += TS.second;
  }
  std::printf("Total (Power): Forbid %u (seen %u); Allow %u (seen %u, not "
              "seen %u, of which LB-shaped: %u)\n",
              TotForbid, TotForbidSeen, TotAllow, TotAllowSeen,
              TotAllow - TotAllowSeen, LbUnseen);

  std::vector<unsigned> Hist = txnCountHistogram(AllForbid);
  std::printf("Forbid tests by transaction count:");
  for (unsigned I = 1; I < Hist.size(); ++I)
    std::printf("  %u txn: %u (%.0f%%)", I, Hist[I],
                TotForbid ? 100.0 * Hist[I] / TotForbid : 0.0);
  std::printf("\n");

  std::printf("\nPaper (SAT back-end, |E|<=6): 1346 Forbid (0 seen), 6795 "
              "Allow (5963 seen); unseen Allow mostly LB-shaped — same "
              "texture expected here.\n");
  return 0;
}
