//===- QueryServer.h - The long-lived query server --------------*- C++ -*-==//
///
/// \file
/// The resident request/response server over the batch query engine — the
/// herd7-style interactive flow for repeated-query workloads (the same
/// corpus checked against many model×ablation specs, per commit, per
/// bench sweep) that one-shot `litmus_tool` runs pay process startup and
/// re-parsing for on every batch.
///
/// A `QueryServer` keeps resident across batches:
///  * the shared litmus corpus (`litmus/Library.h`, one parse per
///    process);
///  * a `SessionCache` of parsed DSL programs (content-addressed by
///    source text — entries can never go stale) and interned
///    model-registry resolutions;
///  * the work-stealing pool: `Jobs` worker threads plus one
///    `ExecutionAnalysis` arena per worker, re-armed per batch via
///    `WorkQueue::reset` instead of constructed per call.
///
/// Wire form: each batch is one `tmw-query-batch-v1` document on a single
/// line (NDJSON framing; `requestsToJsonLine` emits it); each answer is
/// one `tmw-query-verdicts-v1` document — **byte-for-byte identical** to
/// what a one-shot `litmus_tool --json` run prints for the same requests
/// and jobs count, because both paths drive the same `BatchRun` and the
/// caches never change a verdict. A malformed batch line yields an error
/// document (`batchErrorToJson`), never process death.
///
/// Transports (stdin/stdout loop, Unix-domain socket) live in
/// server/Transport.h; this class is transport-free and driven in-process
/// by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_SERVER_QUERYSERVER_H
#define TMW_SERVER_QUERYSERVER_H

#include "query/QueryEngine.h"
#include "query/SessionCache.h"

#include <condition_variable>
#include <iosfwd>
#include <string_view>
#include <thread>

namespace tmw {

/// Server configuration.
struct ServerOptions {
  /// Resident pool workers (1 = serve on the calling thread, no threads).
  unsigned Jobs = 1;
  /// Append the timing/telemetry appendix to every verdicts document
  /// (forfeits byte-identity with one-shot runs, like --telemetry).
  bool Telemetry = false;
  /// Program-cache bound (see SessionCache).
  size_t MaxCachedPrograms = SessionCache::kDefaultMaxPrograms;
};

/// Lifetime counters of one server (cache stats included).
struct ServerStats {
  /// Batches served / requests evaluated across them.
  uint64_t Batches = 0, Requests = 0;
  /// Malformed batch lines answered with an error document.
  uint64_t BadBatches = 0;
  SessionCache::Stats Cache;
};

/// The resident query session: construct once, serve many batches.
/// `runBatch`/`serveLine` are *serial* entry points (one batch in flight
/// at a time — calls from the serving loop); the parallelism is inside,
/// across the batch's requests.
class QueryServer {
public:
  explicit QueryServer(ServerOptions Opts = {});
  ~QueryServer();
  QueryServer(const QueryServer &) = delete;
  QueryServer &operator=(const QueryServer &) = delete;

  /// Evaluate one parsed batch on the resident pool; responses in request
  /// order, deterministic and equal to a one-shot `QueryEngine::runAll`.
  std::vector<CheckResponse> runBatch(std::span<const CheckRequest> Requests,
                                      BatchTelemetry *Telemetry = nullptr);

  /// Serve one batch line: parse (`requestsFromJson` — the schema'd
  /// document, a bare array, or a single request), evaluate, serialise.
  /// Malformed input returns an error document instead of throwing.
  std::string serveLine(std::string_view Line);

  /// The NDJSON loop: one batch per input line (blank lines skipped), one
  /// verdicts document written — and flushed — per batch. Returns at EOF.
  void serveStream(std::istream &In, std::ostream &Out);

  ServerStats stats() const;
  SessionCache &cache() { return Cache; }
  unsigned jobs() const { return Opts.Jobs; }

private:
  void workerMain(unsigned Worker);

  ServerOptions Opts;
  SessionCache Cache;
  /// The resident pool, re-armed per batch (`reset`) instead of
  /// constructed per call.
  WorkQueue<size_t> Pool;
  /// One persistent analysis arena per worker; slot W is touched only by
  /// worker W (worker 0 is the serving thread when Jobs == 1).
  std::vector<std::optional<ExecutionAnalysis>> Arenas;

  /// Batch hand-off: the serving thread publishes `Current` and bumps
  /// `Gen`; workers run the batch and report back through `Arrived`.
  mutable std::mutex Mu;
  std::condition_variable CvWork, CvDone;
  BatchRun *Current = nullptr;
  uint64_t Gen = 0;
  unsigned Arrived = 0;
  bool Stop = false;
  std::vector<std::thread> Threads;

  ServerStats S;
};

} // namespace tmw

#endif // TMW_SERVER_QUERYSERVER_H
