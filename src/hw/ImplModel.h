//===- ImplModel.h - Axiomatic hardware substitutes -------------*- C++ -*-==//
///
/// \file
/// Axiomatic stand-ins for silicon. Real machines implement a strict
/// subset of their architecture: POWER8, for instance, has never exhibited
/// load-buffering (§5.3), and shipped cores are generally stronger than
/// the specification. `ImplModel` wraps an architecture model and layers
/// implementation conservatism on top — or, for the §6.2 experiment, a
/// deliberate *bug* (an ARMv8 "RTL prototype" violating TxnOrder), so the
/// Forbid suite can demonstrate its bug-finding power.
///
/// The wrapper is itself declarative: its axiom list is the wrapped
/// spec's list with a final `NoLoadBuffering(impl)` axiom appended
/// (acyclic(po u rf)), and its mask inherits the spec's configuration, so
/// the generic check engine evaluates implementation models like any
/// other.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_HW_IMPLMODEL_H
#define TMW_HW_IMPLMODEL_H

#include "models/Armv8Model.h"
#include "models/MemoryModel.h"
#include "models/PowerModel.h"

#include <memory>
#include <vector>

namespace tmw {

/// A hardware implementation as an axiomatic model: the behaviours the
/// simulated machine can exhibit.
class ImplModel : public MemoryModel {
public:
  /// Wrap \p Spec; when \p NoLoadBuffering, additionally require
  /// acyclic(po u rf) (LB shapes never occur, as on real Power/ARM parts).
  /// \p SpecToken, when given, is the registry spec name this wrapper
  /// answers to (`ModelRegistry` resolves and round-trips it); the named
  /// presets below set it, hand-built wrappers may leave it null.
  ImplModel(std::unique_ptr<MemoryModel> Spec, bool NoLoadBuffering,
            const char *Name, const char *SpecToken = nullptr);

  const char *name() const override { return Label; }
  Arch arch() const override { return Spec->arch(); }
  /// The spec's axioms plus the implementation axiom (spec indices — and
  /// hence mask bits — are preserved by appending).
  AxiomList axioms() const override { return Axioms; }

  /// Registry spec token ("power8", "x86-impl", ...), or nullptr for a
  /// hand-built wrapper with no spec syntax.
  const char *specToken() const { return Token; }

  /// A conservative POWER8-like machine: the Power+TM model with no load
  /// buffering. Registry spec: "power8".
  static ImplModel power8();
  /// A conservative ARMv8 part with the proposed TM extension. Registry
  /// spec: "armv8-silicon".
  static ImplModel armv8Silicon();
  /// The §6.2 buggy RTL prototype: TxnOrder dropped, so lifted ob cycles
  /// between transactions slip through. Registry spec: "armv8-rtl".
  static ImplModel armv8BuggyRtl();
  /// The generic implementation-conservative substitute for \p A: the
  /// default architecture model with no load buffering. Registry spec:
  /// "<arch>-impl" (so `power-impl` is `power8` minus the branding).
  static ImplModel implFor(Arch A);

private:
  std::unique_ptr<MemoryModel> Spec;
  std::vector<Axiom> Axioms;
  const char *Label;
  const char *Token = nullptr;
};

} // namespace tmw

#endif // TMW_HW_IMPLMODEL_H
