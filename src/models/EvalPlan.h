//===- EvalPlan.h - Cross-spec evaluation plans -----------------*- C++ -*-==//
///
/// \file
/// One evaluation plan for a whole *set* of resolved model specs — the
/// herd7-style generic-engine discipline ("Herding Cats", TOPLAS 2014)
/// applied across specs instead of within one: where `MemoryModel::check`
/// evaluates each spec's axiom list independently, a plan compiles the
/// union of the specs' axiom term DAGs so that per candidate
///
///  * every *obligation* — a `(term, kind)` judgement such as
///    `acyclic(hb)` — is evaluated **at most once** and its verdict handed
///    to every spec that needs it. Obligations are hash-consed by the
///    term-identity rule of Axiom.h: two table entries denote the same
///    obligation iff they reference the same term function, the same
///    constraint kind, and masks that agree on the term's declared `Salt`
///    bits. Shared `terms::*` functions (coherence, RMW isolation, ...)
///    therefore collapse across architectures, and ablation lattices over
///    one model collapse wherever the ablated bits are salt-irrelevant;
///
///  * *subsumption* edges between specs short-circuit whole verdicts.
///    Three sources, each either exact or pinned by
///    tests/model_hierarchy_test.cpp:
///      - structural: if spec j's obligation set is a subset of spec i's,
///        then i-consistent implies j-consistent (and j-inconsistent
///        implies i-inconsistent) — propositional, always sound. One
///        obligation-dominance rule widens "subset": a spec that checks
///        `acyclic(po u com)` (SC/TSC's Order) also covers the impl
///        wrappers' NoLoadBuffering `acyclic(po u rf)`, since rf ⊆ com
///        and acyclicity is antitone — so SC/TSC sit above `sc-impl`,
///        `power8`, `armv8-rtl`, not just the bare architecture models;
///      - ablation lattice: same axiom table and mask(j) a subset of
///        mask(i) implies the same — sound because every modifier bit
///        only *adds* edges to the compound terms (monotone terms) and
///        acyclic/irreflexive/empty are antitone in the relation;
///      - hierarchy: the paper's cross-arch bounds with *maximal*
///        sources (TSC above the hardware TM models guarded by
///        RMW-isolation and boundary-straddling-RMW emptiness; SC above
///        the hardware baselines for RMW-free executions). SC/TSC's
///        happens-before is all of po u com, so their consistency bounds
///        any weaker model on every execution; bounds between two
///        hardware models (the test's x86 => ARMv8) are pinned only over
///        the source's own vocabulary and are deliberately NOT edges —
///        x86 is blind to a DMB that orders ARMv8. Guards are themselves
///        obligations, evaluated through the same per-candidate cache.
///    Edges are transitively closed at compile time (guard sets union
///    along a path), and both directions are used at evaluation time:
///    forward from a consistent source, contrapositive from an
///    inconsistent target.
///
/// Verdict contract: `evaluate` produces exactly the per-spec booleans of
/// `Models[i]->consistent(A)` — subsumption replaces *computation*, never
/// the answer — so planned and independent evaluation are verdict- and
/// byte-identical downstream (pinned by tests/eval_plan_test.cpp and the
/// CI corpus cmp). Diagnostics (`checkAll`, witnesses) stay on the
/// per-model path; a plan answers only the consistency question.
///
/// Threading: a compiled plan is immutable and shared freely across
/// workers; all mutable state lives in a per-worker `Scratch`. Terms are
/// evaluated against the caller's `ExecutionAnalysis` arena, so the
/// one-spec path and its memoization discipline are untouched.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_EVALPLAN_H
#define TMW_MODELS_EVALPLAN_H

#include "models/MemoryModel.h"

#include <cstdint>
#include <span>
#include <vector>

namespace tmw {

struct ProgramFacts;

/// A compiled cross-spec evaluation plan (see file comment).
class EvalPlan {
public:
  /// Lifetime accounting of one Scratch (accumulated across candidates).
  struct Counters {
    /// Candidates evaluated.
    uint64_t Candidates = 0;
    /// Obligations computed / served from the per-candidate verdict cache
    /// (a "hit" is a judgement some other spec — or an earlier axiom of
    /// the same spec — already paid for this candidate).
    uint64_t TermEvals = 0, TermHits = 0;
    /// Specs evaluated through their obligation lists / decided by a
    /// subsumption edge without touching their obligations.
    uint64_t SpecEvals = 0, SpecShortCircuits = 0;
    /// Obligation verdicts pre-decided by a `Specialization` (summed over
    /// candidates): term evaluations the footprint contract saved.
    uint64_t Discharged = 0;
  };

  /// One implication edge: `consistent(From) and all Guards hold` implies
  /// `consistent(To)` (contrapositive: `inconsistent(To)` and the guards
  /// imply `inconsistent(From)`). Guards index the obligation pool.
  struct Edge {
    uint32_t From = 0, To = 0;
    std::vector<uint32_t> Guards;
  };

  /// Per-worker evaluation state: one verdict slot per obligation and per
  /// spec, reset per candidate; counters accumulate across candidates.
  class Scratch {
  public:
    /// Spec \p I's verdict for the last evaluated candidate.
    bool consistent(size_t I) const { return Spec[I] == 1; }
    const Counters &counters() const { return C; }

  private:
    friend class EvalPlan;
    std::vector<int8_t> Obl;  ///< -1 unknown, 0 fails, 1 holds.
    std::vector<int8_t> Spec; ///< -1 unknown, 0 inconsistent, 1 consistent.
    Counters C;
  };

  /// A per-program specialization of a plan: the verdict template seeded
  /// into every candidate's Scratch. Obligations whose declared vocabulary
  /// footprint (Axiom::Footprint) is disjoint from the program's
  /// vocabulary are pre-decided to their vacuous verdict — by the audited
  /// footprint contract their term relation is empty on every candidate
  /// the program can produce, and an empty relation satisfies all three
  /// constraint kinds. This covers the hierarchy-edge guards too (they
  /// are pool obligations), so e.g. the RMW-freedom guard of the
  /// SC => hardware-baseline edges is decided once per program instead of
  /// once per candidate. Verdict-neutral by construction: the pre-decided
  /// value is exactly what evaluation would have computed.
  class Specialization {
  public:
    /// Obligations pre-decided per candidate.
    uint64_t discharged() const { return Discharged; }

  private:
    friend class EvalPlan;
    std::vector<int8_t> Obl; ///< 1 pre-discharged, -1 evaluate on demand.
    uint64_t Discharged = 0;
  };

  EvalPlan() = default;

  /// Compile a plan over \p Models (borrowed for the duration of the call
  /// only; the plan is self-contained). Spec index i in the plan is
  /// `Models[i]`.
  static EvalPlan compile(std::span<const MemoryModel *const> Models);

  /// Specialize this plan to a program speaking \p Vocabulary (a bitset
  /// over `vocab::` classes; see models/Axiom.h). The result is tied to
  /// this plan instance and is immutable — share it freely across workers.
  Specialization specialize(uint32_t Vocabulary) const;
  /// Convenience overload over the lint pass's static program facts.
  Specialization specialize(const ProgramFacts &Facts) const;

  size_t numSpecs() const { return Specs.size(); }
  /// Pool size, including guard obligations and reference entries used
  /// only for hierarchy matching (never evaluated).
  size_t numObligations() const { return Obls.size(); }
  /// The obligation ids of spec \p I, in its axiom-table order.
  std::span<const uint32_t> specObligations(size_t I) const {
    return Specs[I].Obls;
  }
  /// Every implication edge of the plan (transitively closed).
  std::span<const Edge> edges() const { return Implications; }
  /// True when the plan carries the edge i implies j.
  bool implies(size_t I, size_t J) const;

  Scratch makeScratch() const;

  /// Evaluate every spec over \p A into \p S: afterwards
  /// `S.consistent(i) == Models[i]->consistent(A)` for every i.
  /// \p Sp, when non-null, must come from this plan's `specialize`; its
  /// pre-decided verdicts seed the obligation cache instead of the
  /// all-unknown reset, which never changes any verdict (see
  /// `Specialization`).
  void evaluate(const ExecutionAnalysis &A, Scratch &S,
                const Specialization *Sp = nullptr) const;

private:
  struct Obligation {
    Relation (*Term)(const ExecutionAnalysis &, AxiomMask);
    AxiomKind Kind;
    /// Representative full mask (any mask agreeing on the term's salt
    /// bits yields the same relation — the Axiom::Salt contract).
    AxiomMask Mask;
    /// Union of the declared `Axiom::Footprint`s of every table entry
    /// hash-consed into this obligation (union keeps the emptiness
    /// contract sound for all contributors).
    uint32_t Footprint = ~uint32_t(0);
  };
  struct SpecPlan {
    std::vector<uint32_t> Obls;
  };

  bool guardsHold(const Edge &E, const ExecutionAnalysis &A,
                  Scratch &S) const;
  bool obligationHolds(uint32_t O, const ExecutionAnalysis &A,
                       Scratch &S) const;

  std::vector<Obligation> Obls;
  std::vector<SpecPlan> Specs;
  /// Evaluation order: ascending obligation count (stable by index), so
  /// cheap strong specs decide first and seed the most propagation.
  std::vector<uint32_t> Order;
  std::vector<Edge> Implications;
  /// Edge indices grouped by source (forward propagation) and by target
  /// (contrapositive propagation).
  std::vector<std::vector<uint32_t>> Fwd, Bwd;
};

} // namespace tmw

#endif // TMW_MODELS_EVALPLAN_H
