//===- AuditIO.h - Machine-readable contract-audit reports ------*- C++ -*-==//
///
/// \file
/// The canonical JSON rendering of an `AuditReport` — schema
/// `tmw-contract-audit-v1` — in the same fixed-field-order, nothing-
/// nondeterministic style as the batch query wire form (query/QueryIO.h),
/// so CI can diff reports across runs and archive them next to the
/// `BENCH_*.json` artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_AUDIT_AUDITIO_H
#define TMW_AUDIT_AUDITIO_H

#include "audit/ContractAudit.h"

#include <string>

namespace tmw {

/// Schema identifier of the audit report document.
inline constexpr const char *kAuditReportSchema = "tmw-contract-audit-v1";

/// Render \p R as one `tmw-contract-audit-v1` JSON document (trailing
/// newline included). Field order is fixed; witnesses ride along as
/// escaped strings.
std::string auditReportToJson(const AuditReport &R);

} // namespace tmw

#endif // TMW_AUDIT_AUDITIO_H
