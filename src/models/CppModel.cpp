//===- CppModel.cpp - C++ (RC11) with transactions ---------------------------==//

#include "models/CppModel.h"

using namespace tmw;

namespace {

/// Indices into `CppAxioms` (= `AxiomMask` bit positions).
enum : unsigned { kTsw, kHbCom, kRMWIsol, kNoThinAir, kSeqCst };

constexpr char HbTag = 0, PscTag = 0;
constexpr uint32_t kHbSalt = 1u << kTsw;

Relation tswTerm(const ExecutionAnalysis &A, AxiomMask) {
  return A.cppTransactionalSw();
}

const Relation &hb(const ExecutionAnalysis &A, AxiomMask M) {
  bool Tsw = M.test(kTsw);
  return A.memoTerm(&HbTag, M.bits() & kHbSalt, /*TxnDependent=*/Tsw,
                    [&] {
    Relation Sw = A.cppSynchronisesWith();
    if (Tsw)
      Sw |= A.cppTransactionalSw();
    return (Sw | A.po()).transitiveClosure();
  });
}

Relation hbCom(const ExecutionAnalysis &A, AxiomMask M) {
  return hb(A, M).compose(A.com().reflexiveTransitiveClosure());
}

Relation noThinAir(const ExecutionAnalysis &A, AxiomMask) {
  return A.po() | A.rf();
}

/// psc (RC11): scb glued between SC-fence/SC-access endpoints.
const Relation &psc(const ExecutionAnalysis &A, AxiomMask M) {
  return A.memoTerm(&PscTag, M.bits() & kHbSalt,
                    /*TxnDependent=*/M.test(kTsw), [&] {
    unsigned N = A.size();
    const Relation &Hb = hb(A, M);
    Relation HbOpt = Hb.optional();
    Relation Eco = A.com().transitiveClosure();
    const Relation &Sloc = A.sloc();

    EventSet Sc = A.seqCst();
    EventSet Fsc = Sc & A.fences();
    Relation IdSc = Relation::identityOn(Sc, N);
    Relation IdFsc = Relation::identityOn(Fsc, N);

    // scb = po u (po \ sloc ; hb ; po \ sloc) u (hb n sloc) u co u fr.
    Relation PoNonLoc = A.po() - Sloc;
    Relation Scb = A.po() | PoNonLoc.compose(Hb).compose(PoNonLoc) |
                   (Hb & Sloc) | A.co() | A.fr();

    Relation Left = IdSc | IdFsc.compose(HbOpt);
    Relation Right = IdSc | HbOpt.compose(IdFsc);
    Relation PscBase = Left.compose(Scb).compose(Right);
    Relation PscF =
        IdFsc.compose(Hb | Hb.compose(Eco).compose(Hb)).compose(IdFsc);
    return PscBase | PscF;
  });
}

Relation seqCst(const ExecutionAnalysis &A, AxiomMask M) {
  return psc(A, M);
}

// Axiom salts (Axiom.h): the hb-derived terms (HbCom, SeqCst via psc)
// read only the Tsw bit — the same footprint `kHbSalt` hands to memoTerm.
//
// Vocabulary footprints (Axiom.h): Tsw is a weak lift through `stxn`
// (empty on txn-free executions, {Txn}) and RMWIsol is empty without RMW
// pairs ({Rmw}); the hb/psc compounds and NoThinAir read plain po/rf —
// full footprint.
const Axiom CppAxioms[] = {
    {"Tsw", AxiomKind::Acyclic, tswTerm, /*Tm=*/true, /*Modifier=*/true,
     /*Salt=*/0, /*Footprint=*/vocab::Txn},
    {"HbCom", AxiomKind::Irreflexive, hbCom, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/kHbSalt, /*Footprint=*/~0u},
    {"RMWIsol", AxiomKind::Empty, terms::rmwIsolation, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/vocab::Rmw},
    {"NoThinAir", AxiomKind::Acyclic, noThinAir, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/~0u},
    {"SeqCst", AxiomKind::Acyclic, seqCst, /*Tm=*/false, /*Modifier=*/false,
     /*Salt=*/kHbSalt, /*Footprint=*/~0u},
};

} // namespace

CppModel::CppModel(Config C) { Mask.set(kTsw, C.Tsw); }

AxiomList CppModel::axioms() const { return CppAxioms; }

Relation CppModel::synchronisesWith(const ExecutionAnalysis &A) const {
  return A.cppSynchronisesWith();
}

Relation CppModel::transactionalSw(const ExecutionAnalysis &A) const {
  return A.cppTransactionalSw();
}

Relation CppModel::happensBefore(const ExecutionAnalysis &A) const {
  return hb(A, Mask);
}

Relation CppModel::psc(const ExecutionAnalysis &A) const {
  return ::psc(A, Mask);
}

Relation CppModel::conflicts(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  EventSet W = A.writes(), R = A.reads();
  Relation Cnf = (Relation::cross(W, W, N) | Relation::cross(R, W, N) |
                  Relation::cross(W, R, N)) &
                 A.sloc();
  return Cnf - Relation::identityOn(A.universe(), N);
}

bool CppModel::raceFree(const ExecutionAnalysis &A) const {
  unsigned N = A.size();
  EventSet Ato = A.atomics();
  Relation Hb = happensBefore(A);
  Relation Races = conflicts(A) - Relation::cross(Ato, Ato, N) -
                   (Hb | Hb.inverse());
  return Races.isEmpty();
}

CppModel::Config CppModel::config() const { return {Mask.test(kTsw)}; }
