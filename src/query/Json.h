//===- Json.h - Minimal JSON writing and parsing ----------------*- C++ -*-==//
///
/// \file
/// The small JSON layer behind the batch query API (query/QueryIO) and
/// the suite exports (synth/SuiteIO): an escape/append writer for the
/// serialisation side, and an order-preserving DOM (`JsonValue`) for the
/// parsing side. No external dependency — the repo's JSON needs are a few
/// fixed schemata, so ~200 lines of strict-enough JSON beat a library the
/// container may not have.
///
/// Writers emit fields in a *fixed order* and integers without exponent
/// notation, so a serialisation is byte-for-byte reproducible — the
/// property the batch determinism guarantee (same JSON for every --jobs
/// value) and the golden tests lean on.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_QUERY_JSON_H
#define TMW_QUERY_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tmw {

/// Append \p S to \p Out as a JSON string literal (quotes included),
/// escaping quotes, backslashes, and control characters.
void jsonAppendString(std::string &Out, std::string_view S);

/// Render \p S as a JSON string literal.
std::string jsonQuote(std::string_view S);

/// A parsed JSON value. Object members preserve their source order.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  /// How a number token was captured. `strtod` alone rounds u64-range
  /// integers (anything above 2^53) to the nearest double, which would
  /// silently corrupt `candidate_cap` / count fields on a parse →
  /// serialise round trip — so plain integer tokens that fit 64 bits are
  /// *also* stored exactly, and the typed accessors below prefer the
  /// exact form.
  enum class NumForm : uint8_t {
    /// Not lexically a 64-bit integer (decimal point, exponent, or out of
    /// 64-bit range); only `Num` is meaningful.
    Double,
    /// A plain non-negative integer token that fits uint64_t: `U` is
    /// exact (`Num` is the nearest double, possibly lossy).
    Uint,
    /// A plain negative integer token that fits int64_t: `I` is exact.
    Int,
  };

  Kind K = Kind::Null;
  bool B = false;
  NumForm NF = NumForm::Double;
  double Num = 0;
  /// Exact integer payloads (see `NumForm`).
  uint64_t U = 0;
  int64_t I = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Members;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Member lookup (objects only); nullptr when absent.
  const JsonValue *get(std::string_view Key) const;

  /// Typed member accessors with defaults — the tolerant-read style the
  /// IO layer uses (missing field = default, wrong type = default).
  /// `getUint`/`getInt` go through the integer-preserving token path:
  /// they return the *exact* source integer, and reject (return the
  /// default for) values that would be lossy — fractional numbers,
  /// exponent forms, integers outside the target range — instead of
  /// rounding them.
  bool getBool(std::string_view Key, bool Default = false) const;
  double getNumber(std::string_view Key, double Default = 0) const;
  uint64_t getUint(std::string_view Key, uint64_t Default = 0) const;
  int64_t getInt(std::string_view Key, int64_t Default = 0) const;
  std::string_view getString(std::string_view Key,
                             std::string_view Default = {}) const;

  /// This value as an exact integer (the accessor cores above): nullopt
  /// unless the value is a number whose source token was a plain integer
  /// in the target type's range.
  std::optional<uint64_t> asUint() const;
  std::optional<int64_t> asInt() const;
};

/// Parse \p Text as one JSON value (trailing whitespace allowed, trailing
/// garbage rejected). On failure returns nullopt and, when \p Error is
/// non-null, stores a message with the byte offset.
///
/// Duplicate object keys are a parse error. RFC 8259 leaves the choice
/// open (last-wins, first-wins, reject), but every document this repo
/// reads is one of its own fixed-order schemata whose writers cannot emit
/// a duplicate — so a duplicate key is always a malformed or adversarial
/// input, and rejecting it beats both silent-override semantics
/// (`get`/`getUint` return the *first* match, so last-wins reading would
/// disagree with the DOM order the members preserve).
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Error = nullptr);

} // namespace tmw

#endif // TMW_QUERY_JSON_H
