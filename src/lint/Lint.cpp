//===- Lint.cpp - Static analysis of litmus programs ----------------------------==//

#include "lint/Lint.h"

#include "execution/Execution.h"
#include "models/Axiom.h"

#include <string>

using namespace tmw;

const char *tmw::lintSeverityName(LintSeverity S) {
  return S == LintSeverity::Error ? "error" : "warning";
}

namespace {

using IKind = Instruction::Kind;

/// Does this instruction produce a runtime event? Transaction delimiters
/// only label the events between them.
bool producesEvent(IKind K) {
  return K != IKind::TxBegin && K != IKind::TxEnd;
}

const std::string &locName(const Program &P, LocId L,
                           const std::string &Fallback) {
  if (L >= 0 && static_cast<size_t>(L) < P.LocNames.size())
    return P.LocNames[L];
  return Fallback;
}

class Linter {
public:
  explicit Linter(const Program &P) : P(P) {}

  LintReport run() {
    lintCaps();
    lintLocations();
    for (unsigned T = 0; T < P.Threads.size(); ++T)
      lintThread(T);
    lintPostconditions();
    return std::move(R);
  }

private:
  const Program &P;
  LintReport R;

  unsigned lineOf(int T, int I) const {
    if (T >= 0 && static_cast<size_t>(T) < P.SrcLines.size() && I >= 0 &&
        static_cast<size_t>(I) < P.SrcLines[T].size())
      return P.SrcLines[T][I];
    return 0;
  }

  void add(LintSeverity Sev, std::string_view Code, std::string Msg,
           int T = -1, int I = -1) {
    R.Findings.push_back({Sev, Code, std::move(Msg), T, I, lineOf(T, I)});
  }

  /// Hard enumerator caps: a program past `kMaxEvents` silently yields
  /// zero candidates (Candidates.cpp rejects the shape), and transaction
  /// classes past `kMaxTxns` cannot be represented in the atomicity mask.
  void lintCaps() {
    unsigned Events = 0, Txns = 0;
    for (const auto &Th : P.Threads)
      for (const Instruction &I : Th) {
        if (producesEvent(I.K))
          ++Events;
        if (I.K == IKind::TxBegin)
          ++Txns;
      }
    if (Events > kMaxEvents)
      add(LintSeverity::Error, "too-many-events",
          "program produces " + std::to_string(Events) +
              " events; executions are capped at " +
              std::to_string(kMaxEvents) +
              " (kMaxEvents), so enumeration yields no candidates");
    if (Txns > kMaxTxns)
      add(LintSeverity::Error, "too-many-txns",
          "program opens " + std::to_string(Txns) +
              " transactions; executions are capped at " +
              std::to_string(kMaxTxns) + " transaction classes (kMaxTxns)");
  }

  void lintLocations() {
    const std::string Unnamed = "<unnamed>";
    for (LocId L = 0; static_cast<size_t>(L) < P.LocNames.size(); ++L) {
      bool Loaded = false, Stored = false;
      for (const auto &Th : P.Threads)
        for (const Instruction &I : Th) {
          if (I.Loc != L)
            continue;
          if (I.K == IKind::Load)
            Loaded = true;
          else if (I.K == IKind::Store)
            Stored = true;
        }
      bool Asserted = false;
      for (const MemAssertion &M : P.MemPost)
        Asserted |= M.Loc == L;
      bool HasInit = false;
      for (const auto &[Loc, V] : P.InitialValues)
        HasInit |= Loc == L;
      const std::string &Name = locName(P, L, Unnamed);
      if (!Loaded && !Stored && !Asserted)
        add(LintSeverity::Warning, "unused-location",
            "location '" + Name +
                "' is never accessed and never asserted");
      else if (Loaded && !Stored && !HasInit)
        // Note: `loc x 0` is normalized away at parse time, so "no
        // nonzero initial" is the strongest claim available here.
        add(LintSeverity::Warning, "uninitialized-location",
            "location '" + Name +
                "' is loaded but never stored and has no nonzero initial "
                "value (every load reads 0)");
    }
  }

  void lintThread(unsigned T) {
    const std::vector<Instruction> &Th = P.Threads[T];
    int OpenTxn = -1, OpenLock = -1;
    bool OpenLockElided = false;
    for (unsigned I = 0; I < Th.size(); ++I) {
      const Instruction &Ins = Th[I];
      switch (Ins.K) {
      case IKind::TxBegin:
        if (OpenTxn >= 0)
          add(LintSeverity::Error, "unbalanced-txn",
              "nested txbegin: the transaction opened at instruction " +
                  std::to_string(OpenTxn) + " is still open",
              static_cast<int>(T), static_cast<int>(I));
        OpenTxn = static_cast<int>(I);
        break;
      case IKind::TxEnd:
        if (OpenTxn < 0)
          add(LintSeverity::Error, "unbalanced-txn",
              "txend without a matching txbegin", static_cast<int>(T),
              static_cast<int>(I));
        OpenTxn = -1;
        break;
      case IKind::Lock:
      case IKind::TxLock:
        if (OpenLock >= 0)
          add(LintSeverity::Error, "unbalanced-lock",
              "nested lock call: the region opened at instruction " +
                  std::to_string(OpenLock) + " is still open",
              static_cast<int>(T), static_cast<int>(I));
        OpenLock = static_cast<int>(I);
        OpenLockElided = Ins.K == IKind::TxLock;
        break;
      case IKind::Unlock:
      case IKind::TxUnlock: {
        bool Elided = Ins.K == IKind::TxUnlock;
        if (OpenLock < 0)
          add(LintSeverity::Error, "unbalanced-lock",
              std::string(Elided ? "txunlock" : "unlock") +
                  " without a matching lock call",
              static_cast<int>(T), static_cast<int>(I));
        else if (Elided != OpenLockElided)
          add(LintSeverity::Error, "unbalanced-lock",
              std::string("region opened by ") +
                  (OpenLockElided ? "txlock" : "lock") + " is closed by " +
                  (Elided ? "txunlock" : "unlock"),
              static_cast<int>(T), static_cast<int>(I));
        OpenLock = -1;
        break;
      }
      default:
        break;
      }
      lintRmwPair(T, I);
      lintDeps(T, I);
    }
    if (OpenTxn >= 0)
      add(LintSeverity::Error, "unbalanced-txn",
          "txbegin without a matching txend", static_cast<int>(T), OpenTxn);
    if (OpenLock >= 0)
      add(LintSeverity::Error, "unbalanced-lock",
          std::string(OpenLockElided ? "txlock" : "lock") +
              " without a matching unlock call",
          static_cast<int>(T), OpenLock);
  }

  void lintRmwPair(unsigned T, unsigned I) {
    const std::vector<Instruction> &Th = P.Threads[T];
    const Instruction &Ins = Th[I];
    if (Ins.RmwPartner < 0)
      return;
    auto Err = [&](std::string Msg) {
      add(LintSeverity::Error, "bad-rmw-pair", std::move(Msg),
          static_cast<int>(T), static_cast<int>(I));
    };
    if (Ins.K != IKind::Load && Ins.K != IKind::Store) {
      Err("rmw partner on an instruction that is neither a load nor a "
          "store");
      return;
    }
    unsigned Pn = static_cast<unsigned>(Ins.RmwPartner);
    if (Pn >= Th.size()) {
      Err("rmw partner r" + std::to_string(Pn) +
          " is out of range for this thread");
      return;
    }
    const Instruction &Partner = Th[Pn];
    IKind Want = Ins.K == IKind::Load ? IKind::Store : IKind::Load;
    if (Partner.K != Want) {
      Err("rmw partner r" + std::to_string(Pn) + " is not a " +
          (Want == IKind::Store ? "store" : "load"));
      return;
    }
    if (Partner.RmwPartner != static_cast<int>(I))
      Err("rmw partner r" + std::to_string(Pn) +
          " does not point back at this instruction");
    else if (Partner.Loc != Ins.Loc)
      Err("rmw pair accesses two different locations");
  }

  void lintDeps(unsigned T, unsigned I) {
    const std::vector<Instruction> &Th = P.Threads[T];
    const Instruction &Ins = Th[I];
    auto Check = [&](const std::vector<unsigned> &Deps, const char *What) {
      for (unsigned D : Deps) {
        if (D >= I)
          add(LintSeverity::Error, "bad-dependency",
              std::string(What) + " dependency on r" + std::to_string(D) +
                  ", which is not an earlier instruction of this thread",
              static_cast<int>(T), static_cast<int>(I));
        else if (Th[D].K != IKind::Load)
          add(LintSeverity::Error, "bad-dependency",
              std::string(What) + " dependency on r" + std::to_string(D) +
                  ", which is not a load (only loads define registers)",
              static_cast<int>(T), static_cast<int>(I));
      }
    };
    Check(Ins.AddrDeps, "address");
    Check(Ins.DataDeps, "data");
    Check(Ins.CtrlDeps, "control");
  }

  void lintPostconditions() {
    const std::string Unnamed = "<unnamed>";
    for (const RegAssertion &A : P.RegPost) {
      if (A.Thread >= P.Threads.size()) {
        add(LintSeverity::Error, "bad-postcondition",
            "post reg names nonexistent thread " +
                std::to_string(A.Thread));
        continue;
      }
      const std::vector<Instruction> &Th = P.Threads[A.Thread];
      if (A.LoadIndex >= Th.size() ||
          Th[A.LoadIndex].K != IKind::Load)
        add(LintSeverity::Error, "bad-postcondition",
            "post reg r" + std::to_string(A.LoadIndex) + " of thread " +
                std::to_string(A.Thread) +
                " does not name a load (only loads define registers)",
            static_cast<int>(A.Thread),
            A.LoadIndex < Th.size() ? static_cast<int>(A.LoadIndex) : -1);
    }
    for (const MemAssertion &M : P.MemPost)
      if (M.Loc < 0 || static_cast<size_t>(M.Loc) >= P.LocNames.size())
        add(LintSeverity::Error, "bad-postcondition",
            "post mem names nonexistent location id " +
                std::to_string(M.Loc));
  }
};

} // namespace

LintReport tmw::lintProgram(const Program &P) { return Linter(P).run(); }

ProgramFacts tmw::computeFacts(const Program &P) {
  ProgramFacts F;
  bool AnyAtomic = false;
  LocId FirstLoc = -1;
  for (const auto &Th : P.Threads)
    for (const Instruction &I : Th) {
      switch (I.K) {
      case IKind::TxBegin:
        F.TxnFree = false;
        AnyAtomic |= I.TxnAtomic;
        break;
      case IKind::Lock:
      case IKind::Unlock:
      case IKind::TxLock:
      case IKind::TxUnlock:
        F.LockRegionFree = false;
        break;
      case IKind::Fence:
        if (I.FK != FenceKind::None)
          F.FenceKinds |= 1u << static_cast<unsigned>(I.FK);
        AnyAtomic |= I.MO != MemOrder::NonAtomic;
        break;
      case IKind::Load:
      case IKind::Store:
        if (I.MO == MemOrder::NonAtomic)
          F.AtomicOnly = false;
        else
          AnyAtomic = true;
        if (FirstLoc < 0)
          FirstLoc = I.Loc;
        else if (I.Loc != FirstLoc)
          F.SingleLocation = false;
        break;
      default:
        break;
      }
      if (I.RmwPartner >= 0)
        F.RmwFree = false;
    }

  uint32_t V = vocab::Base;
  if (!F.TxnFree)
    V |= vocab::Txn;
  if (!F.RmwFree)
    V |= vocab::Rmw;
  if (!F.LockRegionFree)
    V |= vocab::Lock;
  if (AnyAtomic)
    V |= vocab::Atomic;
  for (unsigned K = 1; K <= static_cast<unsigned>(FenceKind::CppFence); ++K)
    if (F.FenceKinds & (1u << K))
      V |= vocab::fence(static_cast<FenceKind>(K));
  F.Vocabulary = V;
  return F;
}

uint32_t tmw::executionVocabulary(const Execution &X) {
  uint32_t V = vocab::Base;
  for (unsigned E = 0; E < X.size(); ++E) {
    const Event &Ev = X.event(E);
    if (Ev.isAtomic())
      V |= vocab::Atomic;
    if (Ev.isLockCall())
      V |= vocab::Lock;
    if (Ev.isFence() && Ev.Fence != FenceKind::None)
      V |= vocab::fence(Ev.Fence);
    if (X.Txn[E] != kNoClass)
      V |= vocab::Txn;
    if (X.Cr[E] != kNoClass)
      V |= vocab::Lock;
  }
  if (!X.Rmw.isEmpty())
    V |= vocab::Rmw;
  if (X.AtomicTxns != 0)
    V |= vocab::Atomic;
  return V;
}
