//===- Conformance.h - Conformance-test synthesis ---------------*- C++ -*-==//
///
/// \file
/// Synthesis of conformance suites (§4.2, Table 1):
///
///  * the Forbid suite — executions *minimally inconsistent* under a
///    transactional model while consistent under its non-transactional
///    baseline (i.e. exactly the tests that distinguish the TM extension);
///  * the Allow suite — the one-⊏-step relaxations of the Forbid tests
///    (maximally consistent executions), which include "just not enough"
///    synchronisation to be forbidden.
///
/// Search is explicit and exhaustive up to the event bound; a wall-clock
/// budget may stop it early, in which case `Complete` is false — mirroring
/// the timeout column of the paper's Table 1. Discovery timestamps are
/// recorded to reproduce the Fig. 7 distribution.
///
/// The search is shardable (`Jobs > 1`): the canonical-skeleton space is
/// partitioned on its first branching decision, each shard runs on its own
/// `std::thread` with a private `ExecutionAnalysis` arena (reset per base,
/// transaction-state-invalidated per placement), and the per-shard results
/// are merged with canonical-hash deduplication afterwards. Models are
/// stateless and shared by const reference across shards. The deduplicated
/// test *set* is the same for every `Jobs` value (the shards partition the
/// space exactly); which symmetry-equivalent representative of each test
/// survives, and the order of `Tests`, can vary with the shard count.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_SYNTH_CONFORMANCE_H
#define TMW_SYNTH_CONFORMANCE_H

#include "enumerate/Relaxation.h"

#include <vector>

namespace tmw {

/// The Forbid suite for one event count.
struct ForbidSuite {
  unsigned NumEvents = 0;
  /// False when the time budget stopped the search early.
  bool Complete = true;
  double SynthesisSeconds = 0;
  /// Canonical representatives of the minimally-forbidden executions.
  std::vector<Execution> Tests;
  /// Wall-clock second (from search start) each test was first found.
  std::vector<double> FoundAtSeconds;
  /// Number of base executions visited and consistency checks performed.
  uint64_t BasesVisited = 0, PlacementsVisited = 0;
};

/// Synthesise the Forbid suite: executions with \p NumEvents events that
/// are minimally inconsistent under \p TmModel and consistent under
/// \p Baseline. \p Jobs > 1 enumerates shards of the skeleton space on
/// that many threads and merges the deduplicated results (same canonical
/// test set for any Jobs; representatives/order may differ).
ForbidSuite synthesizeForbid(const MemoryModel &TmModel,
                             const MemoryModel &Baseline,
                             const Vocabulary &V, unsigned NumEvents,
                             double BudgetSeconds = 1e18, unsigned Jobs = 1);

/// The Allow suite: deduplicated one-step relaxations of \p Forbid
/// (all consistent under the TM model by minimality).
std::vector<Execution>
relaxationsOf(const std::vector<Execution> &Forbid, const Vocabulary &V);

/// Count the transactions of each execution (used for the §5.3 breakdown
/// "29% had one transaction, ...").
std::vector<unsigned> txnCountHistogram(const std::vector<Execution> &Tests);

} // namespace tmw

#endif // TMW_SYNTH_CONFORMANCE_H
