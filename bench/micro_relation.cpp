//===- micro_relation.cpp - google-benchmark microbenchmarks --------------------==//
///
/// Microbenchmarks of the hot paths of the whole toolflow: relational
/// algebra primitives, per-architecture consistency checks, minimality
/// checking, and candidate enumeration. These bound the throughput of the
/// Table 1/Table 2 searches (the explicit-search counterpart of the
/// paper's SAT-solver columns).
///
//===----------------------------------------------------------------------===//

#include "enumerate/Candidates.h"
#include "enumerate/Relaxation.h"
#include "execution/Builder.h"
#include "litmus/FromExecution.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

using namespace tmw;

namespace {

Execution iriwLike() {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Rx = B.read(1, 0);
  EventId Ry = B.read(1, 1);
  EventId Ry2 = B.read(2, 1);
  EventId Rx2 = B.read(2, 0);
  EventId Wy = B.write(3, 1, MemOrder::NonAtomic, 1);
  B.rf(Wx, Rx);
  B.rf(Wy, Ry2);
  B.addr(Rx, Ry);
  B.addr(Ry2, Rx2);
  B.txn({Wx});
  B.txn({Wy});
  return B.build();
}

void BM_RelationCompose(benchmark::State &State) {
  Execution X = iriwLike();
  Relation A = X.Po, B = X.com();
  for (auto _ : State)
    benchmark::DoNotOptimize(A.compose(B));
}
BENCHMARK(BM_RelationCompose);

void BM_TransitiveClosure(benchmark::State &State) {
  Execution X = iriwLike();
  Relation A = X.Po | X.com();
  for (auto _ : State)
    benchmark::DoNotOptimize(A.transitiveClosure());
}
BENCHMARK(BM_TransitiveClosure);

void BM_AcyclicityCheck(benchmark::State &State) {
  Execution X = iriwLike();
  Relation A = X.Po | X.com();
  for (auto _ : State)
    benchmark::DoNotOptimize(A.isAcyclic());
}
BENCHMARK(BM_AcyclicityCheck);

void BM_DerivedFr(benchmark::State &State) {
  Execution X = iriwLike();
  for (auto _ : State)
    benchmark::DoNotOptimize(X.fr());
}
BENCHMARK(BM_DerivedFr);

// Per-model check cost with a fresh memoized analysis per check (the cost
// a single-model enumeration pays per candidate).
template <typename ModelT> void BM_ModelCheck(benchmark::State &State) {
  ModelT M;
  Execution X = iriwLike();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.check(X));
}
BENCHMARK(BM_ModelCheck<ScModel>)->Name("BM_ModelCheck/SC");
BENCHMARK(BM_ModelCheck<TscModel>)->Name("BM_ModelCheck/TSC");
BENCHMARK(BM_ModelCheck<X86Model>)->Name("BM_ModelCheck/x86");
BENCHMARK(BM_ModelCheck<PowerModel>)->Name("BM_ModelCheck/Power");
BENCHMARK(BM_ModelCheck<Armv8Model>)->Name("BM_ModelCheck/ARMv8");
BENCHMARK(BM_ModelCheck<CppModel>)->Name("BM_ModelCheck/C++");

// The same check with memoization disabled: every derived-relation access
// re-derives, reproducing the uncached pre-ExecutionAnalysis hot path.
template <typename ModelT>
void BM_ModelCheckUncached(benchmark::State &State) {
  ModelT M;
  Execution X = iriwLike();
  for (auto _ : State) {
    ExecutionAnalysis A(X, AnalysisCaching::Recompute);
    benchmark::DoNotOptimize(M.check(A));
  }
}
BENCHMARK(BM_ModelCheckUncached<X86Model>)
    ->Name("BM_ModelCheckUncached/x86");
BENCHMARK(BM_ModelCheckUncached<PowerModel>)
    ->Name("BM_ModelCheckUncached/Power");
BENCHMARK(BM_ModelCheckUncached<Armv8Model>)
    ->Name("BM_ModelCheckUncached/ARMv8");
BENCHMARK(BM_ModelCheckUncached<CppModel>)
    ->Name("BM_ModelCheckUncached/C++");

// All six models on one candidate through one shared analysis — the
// multi-model/ablation workload the memoization layer exists for.
void BM_AllModelsSharedAnalysis(benchmark::State &State) {
  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  CppModel Cpp;
  const MemoryModel *Models[] = {&Sc, &Tsc, &X86, &Power, &Armv8, &Cpp};
  Execution X = iriwLike();
  for (auto _ : State) {
    ExecutionAnalysis A(X);
    for (const MemoryModel *M : Models)
      benchmark::DoNotOptimize(M->check(A));
  }
}
BENCHMARK(BM_AllModelsSharedAnalysis);

void BM_AllModelsUncached(benchmark::State &State) {
  ScModel Sc;
  TscModel Tsc;
  X86Model X86;
  PowerModel Power;
  Armv8Model Armv8;
  CppModel Cpp;
  const MemoryModel *Models[] = {&Sc, &Tsc, &X86, &Power, &Armv8, &Cpp};
  Execution X = iriwLike();
  for (auto _ : State)
    for (const MemoryModel *M : Models) {
      ExecutionAnalysis A(X, AnalysisCaching::Recompute);
      benchmark::DoNotOptimize(M->check(A));
    }
}
BENCHMARK(BM_AllModelsUncached);

void BM_MinimalityCheck(benchmark::State &State) {
  // The §8.1-style minimal test under x86+TM.
  ExecutionBuilder B;
  EventId W0 = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(0, 1);
  EventId W1 = B.write(1, 1, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  B.txn({W0});
  B.txn({W1});
  Execution X = B.build();
  X86Model M;
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  for (auto _ : State)
    benchmark::DoNotOptimize(isMinimallyInconsistent(X, M, V));
}
BENCHMARK(BM_MinimalityCheck);

void BM_CanonicalHash(benchmark::State &State) {
  Execution X = iriwLike();
  for (auto _ : State)
    benchmark::DoNotOptimize(canonicalHash(X));
}
BENCHMARK(BM_CanonicalHash);

void BM_CandidateEnumeration(benchmark::State &State) {
  Program P = programFromExecution(iriwLike(), "iriw").Prog;
  for (auto _ : State)
    benchmark::DoNotOptimize(enumerateCandidates(P));
}
BENCHMARK(BM_CandidateEnumeration);

void BM_LitmusConversion(benchmark::State &State) {
  Execution X = iriwLike();
  for (auto _ : State)
    benchmark::DoNotOptimize(programFromExecution(X, "iriw"));
}
BENCHMARK(BM_LitmusConversion);

} // namespace

// BENCHMARK_MAIN, plus a default machine-readable report: unless the
// caller overrides, results are mirrored to BENCH_micro_relation.json so
// the perf trajectory of the hot paths is tracked per run.
int main(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  std::string OutFlag = "--benchmark_out=BENCH_micro_relation.json";
  std::string FmtFlag = "--benchmark_out_format=json";
  bool HasOut = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]).rfind("--benchmark_out", 0) == 0)
      HasOut = true;
  if (!HasOut) {
    Args.push_back(OutFlag.data());
    Args.push_back(FmtFlag.data());
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
