//===- MemoryModel.cpp - Axiomatic consistency predicates -------------------==//

#include "models/MemoryModel.h"

using namespace tmw;

MemoryModel::~MemoryModel() = default;

const char *tmw::archName(Arch A) {
  switch (A) {
  case Arch::SC:
    return "SC";
  case Arch::TSC:
    return "TSC";
  case Arch::X86:
    return "x86";
  case Arch::Power:
    return "Power";
  case Arch::Armv8:
    return "ARMv8";
  case Arch::Cpp:
    return "C++";
  }
  return "?";
}

bool tmw::holdsWeakIsolation(const ExecutionAnalysis &A) {
  return A.weakLiftComStxn().isAcyclic();
}

bool tmw::holdsStrongIsolation(const ExecutionAnalysis &A) {
  return A.strongLiftComStxn().isAcyclic();
}

bool tmw::holdsStrongIsolationAtomic(const ExecutionAnalysis &A) {
  return A.strongLiftComStxnAtomic().isAcyclic();
}
