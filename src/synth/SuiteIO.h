//===- SuiteIO.h - Writing synthesised suites to disk -----------*- C++ -*-==//
///
/// \file
/// Serialises synthesised conformance suites as directories of litmus
/// files — the analogue of the paper's companion material ("the
/// automatically-generated litmus tests used to validate our models").
/// Each test is written twice: in the round-trippable DSL (machine
/// consumption) and as the paper-style pseudo-code rendering (comments),
/// with provenance headers.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_SYNTH_SUITEIO_H
#define TMW_SYNTH_SUITEIO_H

#include "synth/Conformance.h"

#include <string>

namespace tmw {

/// Result of a suite export.
struct SuiteExport {
  unsigned FilesWritten = 0;
  /// Empty when everything was written.
  std::string Error;
  explicit operator bool() const { return Error.empty(); }
};

/// Write \p Tests into directory \p Dir (created if missing) as
/// `NNN.litmus` files with `# `-comment headers naming \p SuiteName and
/// the verdict (\p Forbidden selects the header text).
SuiteExport writeSuite(const std::string &Dir, const std::string &SuiteName,
                       const std::vector<Execution> &Tests, bool Forbidden);

/// The suite as one JSON manifest — the machine-readable companion of
/// `writeSuite`, in the query layer's canonical style (fixed field order,
/// nothing nondeterministic): suite name, verdict, and per test its
/// index, name, and round-trippable DSL source. Each test's source can be
/// dropped straight into `CheckRequest::Source` (query/Query.h), so an
/// exported suite is replayable as a query batch.
std::string suiteToJson(const std::string &SuiteName,
                        const std::vector<Execution> &Tests, bool Forbidden);

/// Write `suiteToJson` to \p Path.
SuiteExport writeSuiteJson(const std::string &Path,
                           const std::string &SuiteName,
                           const std::vector<Execution> &Tests,
                           bool Forbidden);

} // namespace tmw

#endif // TMW_SYNTH_SUITEIO_H
