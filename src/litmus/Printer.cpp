//===- Printer.cpp - Rendering litmus tests ------------------------------------==//

#include "litmus/Printer.h"

#include <cstdarg>
#include <cstdio>

using namespace tmw;

namespace {

std::string locName(const Program &P, LocId L) {
  if (L >= 0 && static_cast<size_t>(L) < P.LocNames.size())
    return P.LocNames[L];
  return "?";
}

std::string fmt(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

std::string fmt(const char *Format, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Format);
  vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

std::string depSuffix(const Instruction &I) {
  std::string Out;
  for (unsigned D : I.AddrDeps)
    Out += fmt(" [addr r%u]", D);
  for (unsigned D : I.DataDeps)
    Out += fmt(" [data r%u]", D);
  for (unsigned D : I.CtrlDeps)
    Out += fmt(" [ctrl r%u]", D);
  return Out;
}

std::string header(const Program &P) {
  std::string Out = P.Name.empty() ? "" : (P.Name + "\n");
  std::string Init;
  for (unsigned L = 0; L < P.LocNames.size(); ++L)
    Init += fmt("%s=%d, ", P.LocNames[L].c_str(),
                P.initialValue(static_cast<LocId>(L)));
  if (!Init.empty()) {
    Init.pop_back();
    Init.pop_back();
    Out += "Initially: " + Init + "\n";
  }
  return Out;
}

std::string footer(const Program &P) {
  std::string Test;
  for (const RegAssertion &A : P.RegPost)
    Test += fmt("%u:r%u=%d /\\ ", A.Thread, A.LoadIndex, A.Value);
  for (const MemAssertion &A : P.MemPost)
    Test += fmt("%s=%d /\\ ", locName(P, A.Loc).c_str(), A.Value);
  if (!Test.empty())
    Test.resize(Test.size() - 4);
  return "Test: " + Test + "\n";
}

/// Render the body as per-thread columns of lines, one rendering function
/// per instruction.
template <typename RenderFn>
std::string renderThreads(const Program &P, RenderFn &&Render) {
  std::string Out;
  for (unsigned T = 0; T < P.Threads.size(); ++T) {
    Out += fmt("--- thread %u ---\n", T);
    for (unsigned I = 0; I < P.Threads[T].size(); ++I)
      Out += "  " + Render(P, T, P.Threads[T][I], I) + "\n";
  }
  return Out;
}

std::string genericInstr(const Program &P, unsigned T, const Instruction &I,
                         unsigned Idx) {
  (void)T;
  switch (I.K) {
  case Instruction::Kind::Load: {
    std::string S = fmt("r%u <- [%s]", Idx, locName(P, I.Loc).c_str());
    if (I.Exclusive)
      S += " (exclusive)";
    if (I.MO != MemOrder::NonAtomic)
      S += fmt(" (%s)", memOrderName(I.MO));
    return S + depSuffix(I);
  }
  case Instruction::Kind::Store: {
    std::string S =
        fmt("[%s] <- %d", locName(P, I.Loc).c_str(), I.Value);
    if (I.Exclusive)
      S += " (exclusive)";
    if (I.MO != MemOrder::NonAtomic)
      S += fmt(" (%s)", memOrderName(I.MO));
    return S + depSuffix(I);
  }
  case Instruction::Kind::Fence:
    return fmt("fence.%s", fenceKindName(I.FK)) + depSuffix(I);
  case Instruction::Kind::TxBegin:
    return fmt("txbegin Lfail   ; abort handler: [ok] <- 0%s",
               I.TxnAtomic ? " (atomic)" : "");
  case Instruction::Kind::TxEnd:
    return "txend";
  case Instruction::Kind::Lock:
    return "lock()";
  case Instruction::Kind::Unlock:
    return "unlock()";
  case Instruction::Kind::TxLock:
    return "lock()   ; elided";
  case Instruction::Kind::TxUnlock:
    return "unlock() ; elided";
  }
  return "?";
}

std::string x86Instr(const Program &P, unsigned T, const Instruction &I,
                     unsigned Idx) {
  (void)T;
  std::string Loc = locName(P, I.Loc);
  switch (I.K) {
  case Instruction::Kind::Load:
    if (I.Exclusive && I.RmwPartner >= 0)
      return fmt("LOCK XADDL r%u, [%s]    ; rmw read half", Idx,
                 Loc.c_str());
    return fmt("MOVL r%u, [%s]", Idx, Loc.c_str());
  case Instruction::Kind::Store:
    if (I.Exclusive && I.RmwPartner >= 0)
      return fmt("; rmw write half: [%s] <- %d", Loc.c_str(), I.Value);
    return fmt("MOVL [%s], $%d", Loc.c_str(), I.Value);
  case Instruction::Kind::Fence:
    return "MFENCE";
  case Instruction::Kind::TxBegin:
    return "XBEGIN Lfail";
  case Instruction::Kind::TxEnd:
    return "XEND";
  case Instruction::Kind::Lock:
    return "call lock      ; spinlock acquire";
  case Instruction::Kind::Unlock:
    return "call unlock    ; spinlock release";
  case Instruction::Kind::TxLock:
    return "call lock      ; elided";
  case Instruction::Kind::TxUnlock:
    return "call unlock    ; elided";
  }
  return "?";
}

std::string powerInstr(const Program &P, unsigned T, const Instruction &I,
                       unsigned Idx) {
  (void)T;
  std::string Loc = locName(P, I.Loc);
  std::string Pre;
  // Dependency idioms: xor the source register with itself.
  for (unsigned D : I.AddrDeps)
    Pre += fmt("xor r8,r%u,r%u ; ", D, D);
  for (unsigned D : I.DataDeps)
    Pre += fmt("xor r8,r%u,r%u ; ", D, D);
  for (unsigned D : I.CtrlDeps)
    Pre += fmt("cmpw r%u,r%u ; beq L%u ; L%u: ", D, D, Idx, Idx);
  switch (I.K) {
  case Instruction::Kind::Load:
    return Pre + (I.Exclusive ? fmt("lwarx r%u,0,%s", Idx, Loc.c_str())
                              : fmt("lwz r%u,0(%s)", Idx, Loc.c_str()));
  case Instruction::Kind::Store:
    if (I.Exclusive)
      return Pre + fmt("li r9,%d ; stwcx. r9,0,%s ; bne Lfail", I.Value,
                       Loc.c_str());
    return Pre + fmt("li r9,%d ; stw r9,0(%s)", I.Value, Loc.c_str());
  case Instruction::Kind::Fence:
    return fmt("%s", fenceKindName(I.FK));
  case Instruction::Kind::TxBegin:
    return "tbegin. ; beq Lfail";
  case Instruction::Kind::TxEnd:
    return "tend.";
  case Instruction::Kind::Lock:
    return "bl lock        # lwarx/stwcx. loop ; isync";
  case Instruction::Kind::Unlock:
    return "bl unlock      # sync ; stw";
  case Instruction::Kind::TxLock:
    return "bl lock        # elided";
  case Instruction::Kind::TxUnlock:
    return "bl unlock      # elided";
  }
  return "?";
}

std::string armInstr(const Program &P, unsigned T, const Instruction &I,
                     unsigned Idx) {
  (void)T;
  std::string Loc = locName(P, I.Loc);
  std::string Pre;
  for (unsigned D : I.AddrDeps)
    Pre += fmt("EOR W8,W%u,W%u ; ", D, D);
  for (unsigned D : I.DataDeps)
    Pre += fmt("EOR W8,W%u,W%u ; ", D, D);
  for (unsigned D : I.CtrlDeps)
    Pre += fmt("CBNZ W%u,L%u ; L%u: ", D, Idx, Idx);
  switch (I.K) {
  case Instruction::Kind::Load: {
    const char *Op = I.Exclusive
                         ? (I.MO == MemOrder::Acquire ? "LDAXR" : "LDXR")
                         : (isAcquireOrder(I.MO) ? "LDAR" : "LDR");
    return Pre + fmt("%s W%u,[%s]", Op, Idx, Loc.c_str());
  }
  case Instruction::Kind::Store: {
    if (I.Exclusive)
      return Pre + fmt("MOV W9,#%d ; STXR W10,W9,[%s]", I.Value,
                       Loc.c_str());
    const char *Op = isReleaseOrder(I.MO) ? "STLR" : "STR";
    return Pre + fmt("MOV W9,#%d ; %s W9,[%s]", I.Value, Op, Loc.c_str());
  }
  case Instruction::Kind::Fence:
    switch (I.FK) {
    case FenceKind::Dmb:
      return "DMB SY";
    case FenceKind::DmbLd:
      return "DMB LD";
    case FenceKind::DmbSt:
      return "DMB ST";
    case FenceKind::Isb:
      return "ISB";
    default:
      return "DMB SY";
    }
  case Instruction::Kind::TxBegin:
    return "TXBEGIN Lfail      ; unofficial TM extension";
  case Instruction::Kind::TxEnd:
    return "TXEND";
  case Instruction::Kind::Lock:
    return "BL lock        // LDAXR/CBNZ/STXR loop (K9.3)";
  case Instruction::Kind::Unlock:
    return "BL unlock      // STLR WZR";
  case Instruction::Kind::TxLock:
    return "BL lock        // elided";
  case Instruction::Kind::TxUnlock:
    return "BL unlock      // elided";
  }
  return "?";
}

const char *cppOrder(MemOrder MO) {
  switch (MO) {
  case MemOrder::Relaxed:
    return "memory_order_relaxed";
  case MemOrder::Acquire:
    return "memory_order_acquire";
  case MemOrder::Release:
    return "memory_order_release";
  case MemOrder::AcqRel:
    return "memory_order_acq_rel";
  case MemOrder::SeqCst:
    return "memory_order_seq_cst";
  case MemOrder::NonAtomic:
    return "";
  }
  return "";
}

std::string cppInstr(const Program &P, unsigned T, const Instruction &I,
                     unsigned Idx) {
  (void)T;
  std::string Loc = locName(P, I.Loc);
  switch (I.K) {
  case Instruction::Kind::Load:
    if (I.MO == MemOrder::NonAtomic)
      return fmt("int r%u = %s;", Idx, Loc.c_str());
    return fmt("int r%u = %s.load(%s);", Idx, Loc.c_str(), cppOrder(I.MO));
  case Instruction::Kind::Store:
    if (I.MO == MemOrder::NonAtomic)
      return fmt("%s = %d;", Loc.c_str(), I.Value);
    return fmt("%s.store(%d, %s);", Loc.c_str(), I.Value, cppOrder(I.MO));
  case Instruction::Kind::Fence:
    return fmt("atomic_thread_fence(%s);", cppOrder(I.MO));
  case Instruction::Kind::TxBegin:
    return I.TxnAtomic ? "atomic {" : "synchronized {";
  case Instruction::Kind::TxEnd:
    return "}";
  case Instruction::Kind::Lock:
    return "m.lock();";
  case Instruction::Kind::Unlock:
    return "m.unlock();";
  case Instruction::Kind::TxLock:
    return "m.lock();   // elided";
  case Instruction::Kind::TxUnlock:
    return "m.unlock(); // elided";
  }
  return "?";
}

} // namespace

std::string tmw::printGeneric(const Program &P) {
  return header(P) + renderThreads(P, genericInstr) + footer(P);
}

std::string tmw::printAsm(const Program &P, Arch A) {
  switch (A) {
  case Arch::X86:
    return header(P) + renderThreads(P, x86Instr) + footer(P);
  case Arch::Power:
    return header(P) + renderThreads(P, powerInstr) + footer(P);
  case Arch::Armv8:
    return header(P) + renderThreads(P, armInstr) + footer(P);
  case Arch::Cpp:
    return printCpp(P);
  case Arch::SC:
  case Arch::TSC:
    return printGeneric(P);
  }
  return printGeneric(P);
}

std::string tmw::printCpp(const Program &P) {
  return header(P) + renderThreads(P, cppInstr) + footer(P);
}

std::string tmw::printDsl(const Program &P) {
  std::string Out = "name " + (P.Name.empty() ? "test" : P.Name) + "\n";
  for (unsigned L = 0; L < P.LocNames.size(); ++L)
    Out += fmt("loc %s %d\n", P.LocNames[L].c_str(),
               P.initialValue(static_cast<LocId>(L)));
  for (unsigned T = 0; T < P.Threads.size(); ++T) {
    Out += fmt("thread %u\n", T);
    for (unsigned Idx = 0; Idx < P.Threads[T].size(); ++Idx) {
      const Instruction &I = P.Threads[T][Idx];
      std::string Line;
      switch (I.K) {
      case Instruction::Kind::Load:
        Line = fmt("load %s %s", locName(P, I.Loc).c_str(),
                   memOrderName(I.MO));
        break;
      case Instruction::Kind::Store:
        Line = fmt("store %s %d %s", locName(P, I.Loc).c_str(), I.Value,
                   memOrderName(I.MO));
        break;
      case Instruction::Kind::Fence:
        Line = fmt("fence %s", fenceKindName(I.FK));
        break;
      case Instruction::Kind::TxBegin:
        Line = I.TxnAtomic ? "txbegin atomic" : "txbegin";
        break;
      case Instruction::Kind::TxEnd:
        Line = "txend";
        break;
      case Instruction::Kind::Lock:
        Line = "lock";
        break;
      case Instruction::Kind::Unlock:
        Line = "unlock";
        break;
      case Instruction::Kind::TxLock:
        Line = "txlock";
        break;
      case Instruction::Kind::TxUnlock:
        Line = "txunlock";
        break;
      }
      if (I.Exclusive)
        Line += " excl";
      for (unsigned D : I.AddrDeps)
        Line += fmt(" addr:r%u", D);
      for (unsigned D : I.DataDeps)
        Line += fmt(" data:r%u", D);
      for (unsigned D : I.CtrlDeps)
        Line += fmt(" ctrl:r%u", D);
      if (I.RmwPartner >= 0)
        Line += fmt(" rmw:%d", I.RmwPartner);
      Out += "  " + Line + "\n";
    }
  }
  for (const RegAssertion &A : P.RegPost)
    Out += fmt("post reg %u r%u %d\n", A.Thread, A.LoadIndex, A.Value);
  for (const MemAssertion &A : P.MemPost)
    Out += fmt("post mem %s %d\n", locName(P, A.Loc).c_str(), A.Value);
  return Out;
}
