//===- litmus_test.cpp - Litmus conversion, printing, parsing (§2.2, §3.2) ----==//

#include "TestGraphs.h"
#include "litmus/FromExecution.h"
#include "litmus/Parser.h"
#include "litmus/Printer.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(FromExecutionTest, Fig1Shape) {
  // Fig. 1: T0: Wx=1 -> rf -> T1 read; co to T1's write; postcondition
  // r0 = 2 /\ x = 2.
  ExecutionBuilder B;
  EventId A = B.write(0, 0, MemOrder::NonAtomic, 0); // a: W x
  EventId Bv = B.read(0, 0);                         // b: R x (same thread)
  EventId C = B.write(1, 0, MemOrder::NonAtomic, 0); // c: W x
  B.rf(C, Bv);
  B.co(A, C);
  Execution X = B.build();

  ExecutionToProgram Conv = programFromExecution(X, "fig1");
  const Program &P = Conv.Prog;
  ASSERT_EQ(P.Threads.size(), 2u);
  // Unique values by coherence position: a=1, c=2.
  EXPECT_EQ(P.Threads[0][0].Value, 1);
  EXPECT_EQ(P.Threads[1][0].Value, 2);
  // The read must observe c's value.
  ASSERT_EQ(P.RegPost.size(), 1u);
  EXPECT_EQ(P.RegPost[0].Value, 2);
  // Final memory pins the coherence maximum.
  ASSERT_EQ(P.MemPost.size(), 1u);
  EXPECT_EQ(P.MemPost[0].Value, 2);
}

TEST(FromExecutionTest, TransactionGetsOkLocation) {
  // Fig. 2: the transactional variant adds ok=1 initially and in the
  // postcondition.
  ExecutionBuilder B;
  EventId A = B.write(0, 0, MemOrder::NonAtomic, 0);
  EventId Bv = B.read(0, 0);
  EventId C = B.write(1, 0, MemOrder::NonAtomic, 0);
  B.rf(C, Bv);
  B.co(A, C);
  B.txn({A, Bv});
  Execution X = B.build();

  ExecutionToProgram Conv = programFromExecution(X, "fig2");
  const Program &P = Conv.Prog;
  LocId Ok = P.locByName("ok");
  ASSERT_GE(Ok, 0);
  EXPECT_EQ(P.initialValue(Ok), 1);
  bool OkAsserted = false;
  for (const MemAssertion &M : P.MemPost)
    OkAsserted |= M.Loc == Ok && M.Value == 1;
  EXPECT_TRUE(OkAsserted);
  // Transaction delimiters present on thread 0.
  EXPECT_EQ(P.Threads[0][0].K, Instruction::Kind::TxBegin);
  EXPECT_EQ(P.Threads[0].back().K, Instruction::Kind::TxEnd);
}

TEST(FromExecutionTest, ExpectedOutcomeSatisfiesPostcondition) {
  Execution X = shapes::messagePassing();
  ExecutionToProgram Conv = programFromExecution(X, "mp");
  Outcome O = expectedOutcome(X, Conv.Prog);
  EXPECT_TRUE(O.satisfies(Conv.Prog));
}

TEST(FromExecutionTest, DependenciesSurviveConversion) {
  Execution X = shapes::messagePassingDep(false);
  ExecutionToProgram Conv = programFromExecution(X, "mp+addr");
  bool FoundAddr = false;
  for (const auto &T : Conv.Prog.Threads)
    for (const Instruction &I : T)
      FoundAddr |= !I.AddrDeps.empty();
  EXPECT_TRUE(FoundAddr);
}

TEST(PrinterTest, GenericShowsInitAndTest) {
  Execution X = shapes::storeBuffering();
  Program P = programFromExecution(X, "SB").Prog;
  std::string S = printGeneric(P);
  EXPECT_NE(S.find("Initially:"), std::string::npos);
  EXPECT_NE(S.find("Test:"), std::string::npos);
  EXPECT_NE(S.find("thread 0"), std::string::npos);
  EXPECT_NE(S.find("thread 1"), std::string::npos);
}

TEST(PrinterTest, ArchitectureMnemonics) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 0);
  B.fence(0, FenceKind::MFence);
  EventId R = B.read(0, 0);
  B.rf(W, R);
  Program P = programFromExecution(B.build(), "t").Prog;
  EXPECT_NE(printAsm(P, Arch::X86).find("MFENCE"), std::string::npos);
  EXPECT_NE(printAsm(P, Arch::X86).find("MOVL"), std::string::npos);
}

TEST(PrinterTest, TransactionsSpecialisedPerArch) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 0);
  B.read(1, 0);
  B.txn({W});
  Program P = programFromExecution(B.build(), "txn").Prog;
  EXPECT_NE(printAsm(P, Arch::X86).find("XBEGIN"), std::string::npos);
  EXPECT_NE(printAsm(P, Arch::Power).find("tbegin."), std::string::npos);
  EXPECT_NE(printAsm(P, Arch::Armv8).find("TXBEGIN"), std::string::npos);
  EXPECT_NE(printCpp(P).find("synchronized {"), std::string::npos);
}

TEST(PrinterTest, CppAtomicsAndTransactions) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::SeqCst, 0);
  EventId R = B.read(1, 0, MemOrder::Acquire);
  B.rf(W, R);
  B.txn({R}, /*Atomic=*/true);
  Program P = programFromExecution(B.build(), "cpp").Prog;
  std::string S = printCpp(P);
  EXPECT_NE(S.find("memory_order_seq_cst"), std::string::npos);
  EXPECT_NE(S.find("memory_order_acquire"), std::string::npos);
  EXPECT_NE(S.find("atomic {"), std::string::npos);
}

TEST(ParserTest, ParsesSimpleTest) {
  const char *Src = R"(name SB
loc x 0
loc y 0
thread 0
  store x 1
  load y
thread 1
  store y 1
  load x
post reg 0 r1 0
post reg 1 r1 0
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  EXPECT_EQ(R.Prog.Threads.size(), 2u);
  EXPECT_EQ(R.Prog.Threads[0].size(), 2u);
  EXPECT_EQ(R.Prog.RegPost.size(), 2u);
}

TEST(ParserTest, ParsesTransactionsAndOrders) {
  const char *Src = R"(name T
loc x 0
thread 0
  txbegin atomic
  store x 1
  txend
thread 1
  load x acq
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  EXPECT_TRUE(R.Prog.Threads[0][0].TxnAtomic);
  EXPECT_EQ(R.Prog.Threads[1][0].MO, MemOrder::Acquire);
}

TEST(ParserTest, ReportsErrors) {
  EXPECT_FALSE(static_cast<bool>(parseProgram("bogus")));
  EXPECT_FALSE(static_cast<bool>(parseProgram("load x")));
  EXPECT_FALSE(static_cast<bool>(parseProgram("thread 0\n  fence warp")));
  EXPECT_FALSE(
      static_cast<bool>(parseProgram("thread 0\n  load x flub:r0")));
}

TEST(ParserTest, RoundTripsPrintDsl) {
  Execution X = shapes::lockElisionConcrete(false);
  Program P = programFromExecution(X, "ex11").Prog;
  std::string Dsl = printDsl(P);
  ParseResult R = parseProgram(Dsl);
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  EXPECT_EQ(R.Prog.Threads.size(), P.Threads.size());
  for (unsigned T = 0; T < P.Threads.size(); ++T) {
    ASSERT_EQ(R.Prog.Threads[T].size(), P.Threads[T].size());
    for (unsigned I = 0; I < P.Threads[T].size(); ++I) {
      EXPECT_EQ(R.Prog.Threads[T][I].K, P.Threads[T][I].K);
      EXPECT_EQ(R.Prog.Threads[T][I].Loc, P.Threads[T][I].Loc);
      EXPECT_EQ(R.Prog.Threads[T][I].MO, P.Threads[T][I].MO);
    }
  }
  EXPECT_EQ(R.Prog.RegPost.size(), P.RegPost.size());
  EXPECT_EQ(R.Prog.MemPost.size(), P.MemPost.size());
}

TEST(OutcomeTest, SatisfactionAndFormatting) {
  Program P;
  P.LocNames = {"x"};
  P.RegPost.push_back({0, 1, 2});
  P.MemPost.push_back({0, 1});
  Outcome O;
  O.RegValues.push_back({0, 1, 2});
  O.MemValues = {1};
  EXPECT_TRUE(O.satisfies(P));
  EXPECT_EQ(O.str(P), "0:r1=2; x=1");
  O.MemValues = {0};
  EXPECT_FALSE(O.satisfies(P));
  // Missing register value fails the assertion.
  Outcome Empty;
  Empty.MemValues = {1};
  EXPECT_FALSE(Empty.satisfies(P));
}

} // namespace
