//===- ablation_axioms.cpp - Per-axiom ablation study ---------------------------==//
///
/// The design-choice ablations called out in DESIGN.md: for each TM axiom
/// of each architecture, how many of the synthesised Forbid tests become
/// allowed when the axiom is dropped — i.e. how much of the conformance
/// suite each axiom carries. Includes the §9 comparison (Dongol-style
/// atomicity-only models) and the §6.2 buggy-RTL configuration.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "models/Armv8Model.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"
#include "synth/Conformance.h"

#include <functional>
#include <vector>

using namespace tmw;

namespace {

template <typename ModelT, typename ConfigT>
void ablate(const char *ArchName, Arch A, unsigned MaxE, double Budget,
            const std::vector<std::pair<const char *,
                                        std::function<ConfigT()>>> &Drops) {
  ModelT Tm;
  ModelT Baseline{ConfigT::baseline()};
  Vocabulary V = Vocabulary::forArch(A);

  std::vector<Execution> Forbid;
  for (unsigned N = 2; N <= MaxE; ++N) {
    ForbidSuite S = synthesizeForbid(Tm, Baseline, V, N, Budget);
    Forbid.insert(Forbid.end(), S.Tests.begin(), S.Tests.end());
  }
  std::printf("\n%s: %zu Forbid tests (|E| <= %u)\n", ArchName,
              Forbid.size(), MaxE);
  std::printf("  %-22s %16s\n", "dropped axiom", "tests now allowed");
  for (const auto &[Name, MakeConfig] : Drops) {
    ModelT Ablated{MakeConfig()};
    unsigned NowAllowed = 0;
    for (const Execution &X : Forbid)
      NowAllowed += Ablated.consistent(X);
    std::printf("  %-22s %10u / %zu\n", Name, NowAllowed, Forbid.size());
  }
}

} // namespace

int main() {
  bench::header("Ablations: what each TM axiom carries",
                "DESIGN.md ablation index; §5-§6, §9, §6.2");
  double Budget = bench::budgetSeconds(60.0);
  unsigned MaxE = bench::maxEvents(4);

  ablate<X86Model, X86Model::Config>(
      "x86", Arch::X86, MaxE, Budget,
      {{"tfence", [] {
          X86Model::Config C;
          C.Tfence = false;
          return C;
        }},
       {"StrongIsol", [] {
          X86Model::Config C;
          C.StrongIsol = false;
          return C;
        }},
       {"TxnOrder", [] {
          X86Model::Config C;
          C.TxnOrder = false;
          return C;
        }}});

  ablate<PowerModel, PowerModel::Config>(
      "Power", Arch::Power, MaxE > 3 ? 3 : MaxE, Budget,
      {{"tfence", [] {
          PowerModel::Config C;
          C.Tfence = false;
          return C;
        }},
       {"StrongIsol", [] {
          PowerModel::Config C;
          C.StrongIsol = false;
          return C;
        }},
       {"TxnOrder", [] {
          PowerModel::Config C;
          C.TxnOrder = false;
          return C;
        }},
       {"tprop1", [] {
          PowerModel::Config C;
          C.TProp1 = false;
          return C;
        }},
       {"tprop2", [] {
          PowerModel::Config C;
          C.TProp2 = false;
          return C;
        }},
       {"thb", [] {
          PowerModel::Config C;
          C.Thb = false;
          return C;
        }},
       {"TxnCancelsRMW", [] {
          PowerModel::Config C;
          C.TxnCancelsRmw = false;
          return C;
        }},
       {"atomicity-only (Dongol)", [] {
          PowerModel::Config C;
          C.Thb = false;
          C.TxnOrder = false;
          C.TProp1 = false;
          C.TProp2 = false;
          return C;
        }}});

  ablate<Armv8Model, Armv8Model::Config>(
      "ARMv8", Arch::Armv8, MaxE > 3 ? 3 : MaxE, Budget,
      {{"tfence", [] {
          Armv8Model::Config C;
          C.Tfence = false;
          return C;
        }},
       {"StrongIsol", [] {
          Armv8Model::Config C;
          C.StrongIsol = false;
          return C;
        }},
       {"TxnOrder (buggy RTL)", [] {
          Armv8Model::Config C;
          C.TxnOrder = false;
          return C;
        }},
       {"TxnCancelsRMW", [] {
          Armv8Model::Config C;
          C.TxnCancelsRmw = false;
          return C;
        }}});

  std::printf("\nReading: each row drops one axiom from the TM model and "
              "re-checks the Forbid\nsuite; 'tests now allowed' > 0 means "
              "the axiom is load-bearing (§6.2's RTL bug\nis the TxnOrder "
              "row on ARMv8).\n");
  return 0;
}
