//===- QueryEngine.h - Evaluating batch litmus queries ----------*- C++ -*-==//
///
/// \file
/// The evaluator behind the request/response API (query/Query.h). For one
/// request it runs the whole stack once: resolve every model spec through
/// the registry, parse the program (or fetch the corpus entry), then
/// enumerate the program's candidate executions **once** and fan each
/// candidate out to all requested models through one shared
/// `ExecutionAnalysis` — so six models cost one enumeration plus six
/// axiom evaluations over memoized relations, not six enumerations. This
/// is the enumerate-once/check-many discipline every frontend previously
/// hand-rolled (or failed to: the old benches re-enumerated per model).
///
/// Batches are scheduled on the generic work-stealing pool
/// (`WorkQueue<size_t>`, one task per request, one analysis arena per
/// worker) and results are **streamed in request order**: the callback
/// fires for response i only after responses 0..i-1, whatever order the
/// workers finished in. Verdicts are deterministic — independent of Jobs
/// and of scheduling — because each request is evaluated sequentially by
/// exactly one worker over the fixed candidate enumeration order; only
/// `Seconds` and the telemetry vary run to run.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_QUERY_QUERYENGINE_H
#define TMW_QUERY_QUERYENGINE_H

#include "query/Query.h"

#include <functional>
#include <span>

namespace tmw {

/// Batch evaluation options.
struct BatchOptions {
  /// Worker threads for `run`/`runAll` (1 = evaluate inline, no threads).
  unsigned Jobs = 1;
};

/// Stateless evaluator of `CheckRequest` batches; cheap to construct.
class QueryEngine {
public:
  explicit QueryEngine(BatchOptions Opts = {}) : Opts(Opts) {}

  /// Evaluate one request in the calling thread.
  CheckResponse evaluate(const CheckRequest &R) const;

  /// Evaluate \p Requests on `Opts.Jobs` pool workers, streaming each
  /// response to \p OnResult in request order (the callback runs on
  /// whichever worker completes the front of the order — serialise any
  /// shared state yourself, or use `runAll`). Returns the batch
  /// telemetry.
  BatchTelemetry
  run(std::span<const CheckRequest> Requests,
      const std::function<void(const CheckResponse &)> &OnResult) const;

  /// `run`, materialised: all responses in request order (telemetry
  /// optionally reported through \p Telemetry).
  std::vector<CheckResponse>
  runAll(std::span<const CheckRequest> Requests,
         BatchTelemetry *Telemetry = nullptr) const;

private:
  std::vector<CheckResponse>
  runAllInto(std::span<const CheckRequest> Requests,
             const std::function<void(const CheckResponse &)> &OnResult,
             BatchTelemetry &T) const;

  BatchOptions Opts;
};

} // namespace tmw

#endif // TMW_QUERY_QUERYENGINE_H
