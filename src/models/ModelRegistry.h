//===- ModelRegistry.h - String-addressable model construction --*- C++ -*-==//
///
/// \file
/// A registry resolving *model spec strings* into configured model
/// instances, so the CLI, benches, and corpus layers can name any
/// model × ablation scenario without new code.
///
/// Spec grammar (case-insensitive arch and axiom names):
///
///   spec  := base ( "/" mod )*
///   base  := arch | wrapper
///   arch  := "sc" | "tsc" | "x86" | "power"
///          | "armv8" | "arm" | "aarch64" | "cpp" | "c++"
///   wrapper := "power8"          -- POWER8 substitute (= power + NoLB)
///            | "armv8-silicon"   -- conservative ARMv8+TM part
///            | "armv8-rtl"       -- §6.2 buggy RTL (TxnOrder dropped)
///            | arch "-impl"      -- generic impl-conservative wrapper
///                                   (the arch model + NoLoadBuffering)
///   mod   := "+baseline"        -- disable every TM axiom
///          | "+all"             -- enable every axiom
///          | "+" axiom-name     -- enable one axiom
///          | "-" axiom-name     -- disable one axiom
///
/// Modifiers apply left to right, starting from the base's default mask,
/// so `"power/-TxnOrder"` is Power with transaction ordering ablated,
/// `"cpp/+baseline"` is the non-transactional C++ baseline, and
/// `"power8/-NoLoadBuffering(impl)"` un-does the POWER8 conservatism.
/// Wrapper specs resolve to `hw/ImplModel` instances — the axiomatic
/// hardware substitutes — so benches and the query engine can address
/// implementation-conservative models from strings. `print()` renders a
/// configured model back into a spec whose `parse()` reproduces the arch
/// and mask (for a preset with axioms ablated by default, such as
/// `armv8-rtl`, the rendering spells the ablations out explicitly).
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_MODELREGISTRY_H
#define TMW_MODELS_MODELREGISTRY_H

#include "models/MemoryModel.h"

#include <memory>
#include <optional>
#include <string>

namespace tmw {

/// Registry over the six architecture models (SC, TSC, x86, Power, ARMv8,
/// C++) plus the `ImplModel` hardware-substitute wrappers (see the
/// `wrapper` production above).
class ModelRegistry {
public:
  /// Every registered architecture, in spec-name order.
  static std::span<const Arch> allArchs();

  /// The named hardware-substitute presets ("power8", "armv8-silicon",
  /// "armv8-rtl"); the open-ended `<arch>-impl` family is not listed.
  static std::span<const char *const> wrapperSpecs();

  /// The canonical (lowercase) spec name of \p A, e.g. "armv8".
  static const char *archSpecName(Arch A);

  /// Resolve an architecture token (canonical name, `archName` rendering,
  /// or alias; case-insensitive).
  static std::optional<Arch> parseArch(std::string_view Token);

  /// The default (all axioms enabled) model for \p A.
  static std::unique_ptr<MemoryModel> make(Arch A);

  /// Parse a spec string into a configured model. On failure returns
  /// nullptr and, when \p Error is non-null, stores a message naming the
  /// offending token and the valid alternatives.
  static std::unique_ptr<MemoryModel> parse(std::string_view Spec,
                                            std::string *Error = nullptr);

  /// Split a comma-separated spec list ("sc,tsc,x86") into \p Out,
  /// appending in order. Strict: an empty segment — a leading, trailing,
  /// or doubled comma, or an empty value — is an error ("sc,,x86" is far
  /// more likely a typo'd third spec than an intentional no-op). On
  /// failure returns false and, when \p Error is non-null, stores a
  /// message; \p Out then holds the segments parsed so far. Segments are
  /// *not* resolved — callers validate each against `parse` so every bad
  /// spec in a list can be diagnosed, not just the first. This is the one
  /// list parser every frontend (`litmus_tool --model`,
  /// `tmw_audit --model`) shares.
  static bool splitSpecList(std::string_view List,
                            std::vector<std::string> &Out,
                            std::string *Error = nullptr);

  /// Canonical spec of \p M. For plain models: the arch name, then
  /// "/+baseline" when the mask is exactly the baseline, otherwise one
  /// "/-name" per disabled axiom. For `ImplModel` wrappers: the wrapper's
  /// spec token (falling back to "<arch>-impl" for hand-built wrappers)
  /// followed by one "/+name" or "/-name" per axiom whose state differs
  /// from that token's default. In both cases `parse(print(M))`
  /// reproduces M's arch, wrapper-ness, and mask.
  static std::string print(const MemoryModel &M);
};

} // namespace tmw

#endif // TMW_MODELS_MODELREGISTRY_H
