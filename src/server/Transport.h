//===- Transport.h - Server transports (stdio, Unix socket) -----*- C++ -*-==//
///
/// \file
/// The byte-moving side of the query server: the NDJSON stdin/stdout loop
/// (the default, pipeline-friendly: `printf '%s\n' <batch> | tmw_serve`)
/// and a Unix-domain stream socket (`--listen <path>`) for callers that
/// keep a connection open across many batches. Both speak the same frame:
/// one `tmw-query-batch-v1` document per line in, one
/// `tmw-query-verdicts-v1` document out per batch.
///
/// Socket connections are served serially — the parallelism budget
/// (`--jobs`) belongs to the batch evaluation, and verdict byte-
/// determinism is per batch, so interleaving connections would buy
/// nothing and cost output interleaving hazards.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_SERVER_TRANSPORT_H
#define TMW_SERVER_TRANSPORT_H

#include <string>

namespace tmw {

class QueryServer;

namespace server {

/// Serve newline-delimited batches from stdin to stdout until EOF.
/// Returns 0.
int serveStdio(QueryServer &S);

/// Bind a Unix-domain stream socket at \p Path (an existing socket file
/// is replaced) and serve connections one at a time: each connection
/// streams batch lines and receives one verdicts document per batch,
/// until the peer shuts down its write side. \p AcceptLimit bounds the
/// number of connections served (0 = loop until the process dies — the
/// daemon mode). Returns 0 on a clean finish, 1 on socket errors (one
/// diagnostic line on stderr).
int serveUnixSocket(QueryServer &S, const std::string &Path,
                    unsigned AcceptLimit = 0);

} // namespace server
} // namespace tmw

#endif // TMW_SERVER_TRANSPORT_H
