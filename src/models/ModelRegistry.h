//===- ModelRegistry.h - String-addressable model construction --*- C++ -*-==//
///
/// \file
/// A registry resolving *model spec strings* into configured model
/// instances, so the CLI, benches, and corpus layers can name any
/// model × ablation scenario without new code.
///
/// Spec grammar (case-insensitive arch and axiom names):
///
///   spec  := arch ( "/" mod )*
///   arch  := "sc" | "tsc" | "x86" | "power"
///          | "armv8" | "arm" | "aarch64" | "cpp" | "c++"
///   mod   := "+baseline"        -- disable every TM axiom
///          | "+all"             -- enable every axiom
///          | "+" axiom-name     -- enable one axiom
///          | "-" axiom-name     -- disable one axiom
///
/// Modifiers apply left to right, starting from the all-enabled default,
/// so `"power/-TxnOrder"` is Power with transaction ordering ablated and
/// `"cpp/+baseline"` is the non-transactional C++ baseline. `print()`
/// renders a configured model back into a spec that `parse()` round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_MODELREGISTRY_H
#define TMW_MODELS_MODELREGISTRY_H

#include "models/MemoryModel.h"

#include <memory>
#include <optional>
#include <string>

namespace tmw {

/// Registry over the six architecture models (SC, TSC, x86, Power, ARMv8,
/// C++). Wrapper models like `ImplModel` are out of scope: they are built
/// in code, not from specs.
class ModelRegistry {
public:
  /// Every registered architecture, in spec-name order.
  static std::span<const Arch> allArchs();

  /// The canonical (lowercase) spec name of \p A, e.g. "armv8".
  static const char *archSpecName(Arch A);

  /// Resolve an architecture token (canonical name, `archName` rendering,
  /// or alias; case-insensitive).
  static std::optional<Arch> parseArch(std::string_view Token);

  /// The default (all axioms enabled) model for \p A.
  static std::unique_ptr<MemoryModel> make(Arch A);

  /// Parse a spec string into a configured model. On failure returns
  /// nullptr and, when \p Error is non-null, stores a message naming the
  /// offending token and the valid alternatives.
  static std::unique_ptr<MemoryModel> parse(std::string_view Spec,
                                            std::string *Error = nullptr);

  /// Canonical spec of \p M: the arch name, then "/+baseline" when the
  /// mask is exactly the baseline, otherwise one "/-name" per disabled
  /// axiom. `parse(print(M))` reproduces M's arch and mask. Only
  /// meaningful for registry-made models (an `ImplModel`'s extra axiom has
  /// no spec syntax).
  static std::string print(const MemoryModel &M);
};

} // namespace tmw

#endif // TMW_MODELS_MODELREGISTRY_H
