//===- isolation_test.cpp - Weak vs strong isolation (Fig. 3, §3.3) -----------==//

#include "models/ScModel.h"

#include "execution/Builder.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

/// Fig. 3(a) — non-interference: a transaction's two reads straddle an
/// external write.
Execution fig3a() {
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0); // reads initial x
  EventId R2 = B.read(0, 0); // reads the external write
  EventId W = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.rf(W, R2);
  B.txn({R1, R2});
  return B.build();
}

/// Fig. 3(b) — an external write lands between a transaction's read and
/// its write.
Execution fig3b() {
  ExecutionBuilder B;
  EventId R = B.read(0, 0); // reads initial x
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.co(W2, W1);
  B.txn({R, W1});
  return B.build();
}

/// Fig. 3(c) — an external write separates a transaction's write from its
/// own read of that location.
Execution fig3c() {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B.read(0, 0); // reads the external write
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
  B.co(W1, W2);
  B.rf(W2, R);
  B.txn({W1, R});
  return B.build();
}

/// Fig. 3(d) — containment: an external read observes a transaction's
/// intermediate write.
Execution fig3d() {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(1, 0); // observes the intermediate value
  B.co(W1, W2);
  B.rf(W1, R);
  B.txn({W1, W2});
  return B.build();
}

class Fig3Test : public ::testing::TestWithParam<int> {
protected:
  Execution execution() const {
    switch (GetParam()) {
    case 0:
      return fig3a();
    case 1:
      return fig3b();
    case 2:
      return fig3c();
    default:
      return fig3d();
    }
  }
};

TEST_P(Fig3Test, ScConsistent) {
  ScModel Sc;
  EXPECT_TRUE(Sc.consistent(execution()));
}

TEST_P(Fig3Test, AllowedByWeakIsolation) {
  // The interfering event is non-transactional, so weak isolation — which
  // only protects transactions from other transactions — permits it.
  EXPECT_TRUE(holdsWeakIsolation(execution()));
}

TEST_P(Fig3Test, ForbiddenByStrongIsolation) {
  EXPECT_FALSE(holdsStrongIsolation(execution()));
}

TEST_P(Fig3Test, ForbiddenByTsc) {
  // TxnOrder subsumes StrongIsol (§3.4).
  TscModel Tsc;
  EXPECT_FALSE(Tsc.consistent(execution()));
}

TEST_P(Fig3Test, WeakIsolationKicksInWhenInterfererIsTransactional) {
  Execution X = execution();
  // Wrap the interfering (single-event, second-thread) event in its own
  // transaction: now even weak isolation forbids the shape.
  for (unsigned E = 0; E < X.size(); ++E)
    if (X.event(E).Thread == 1)
      X.Txn[E] = 1;
  ASSERT_EQ(X.checkWellFormed(), nullptr);
  EXPECT_FALSE(holdsWeakIsolation(X));
}

INSTANTIATE_TEST_SUITE_P(AllFourShapes, Fig3Test, ::testing::Range(0, 4));

TEST(IsolationTest, WeakIsolationImpliedForDisjointTransactions) {
  // Two transactions touching different locations never violate either
  // isolation property.
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R1 = B.read(0, 0);
  B.rf(W1, R1);
  EventId W2 = B.write(1, 1, MemOrder::NonAtomic, 1);
  EventId R2 = B.read(1, 1);
  B.rf(W2, R2);
  B.txn({W1, R1});
  B.txn({W2, R2});
  Execution X = B.build();
  EXPECT_TRUE(holdsWeakIsolation(X));
  EXPECT_TRUE(holdsStrongIsolation(X));
}

TEST(IsolationTest, AtomicOnlyLiftIgnoresRelaxedTransactions) {
  // The interferer hits a relaxed transaction: the stxnat-restricted
  // strong-isolation check does not complain.
  Execution X = fig3d();
  EXPECT_TRUE(holdsStrongIsolationAtomic(X)); // no atomic transactions
  X.AtomicTxns = 1;                           // now transaction 0 is atomic
  EXPECT_FALSE(holdsStrongIsolationAtomic(X));
}

} // namespace
