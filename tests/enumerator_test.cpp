//===- enumerator_test.cpp - Exhaustive execution enumeration (§4.2) ----------==//

#include "enumerate/Enumerator.h"

#include "execution/Builder.h"
#include "models/ScModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

#include <set>

using namespace tmw;

namespace {

uint64_t countBases(const Vocabulary &V, unsigned N) {
  ExecutionEnumerator E(V, N);
  uint64_t Count = 0;
  E.forEachBase([&Count](Execution &) {
    ++Count;
    return true;
  });
  return Count;
}

TEST(EnumeratorTest, TwoEventX86Bases) {
  // Two events, x86 vocabulary. The location filter requires >= 2
  // accesses and >= 1 write per location, fences cannot be boundary
  // events, so every base has both events on one location:
  //   1 thread (W;W, W;R, R;W with each rf/co choice) and
  //   2 threads similarly.
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  uint64_t N = countBases(V, 2);
  // Enumerate by hand: shapes WW (2 co orders... co fixed by po? both
  // orders are distinct executions), WR (rf: init or W), RW; single- and
  // two-thread skeletons; plus rmw pairing variants on same-thread RW.
  EXPECT_GT(N, 10u);
  EXPECT_LT(N, 60u);
}

TEST(EnumeratorTest, BasesAreWellFormedAndCanonical) {
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator E(V, 3);
  uint64_t Count = 0;
  E.forEachBase([&](Execution &X) {
    EXPECT_EQ(X.checkWellFormed(), nullptr);
    // Canonical skeleton: thread sizes non-increasing.
    unsigned Prev = X.size();
    for (unsigned T = 0; T < X.numThreads(); ++T) {
      unsigned Size = X.ofThread(T).size();
      EXPECT_LE(Size, Prev);
      Prev = Size;
    }
    // No transactions at base level.
    EXPECT_TRUE(X.transactional().empty());
    ++Count;
    return true;
  });
  EXPECT_GT(Count, 0u);
}

TEST(EnumeratorTest, EveryLocationSharedAndWritten) {
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator E(V, 4);
  E.forEachBase([&](Execution &X) {
    for (unsigned L = 0; L < X.numLocations(); ++L) {
      EventSet Acc = X.atLocation(static_cast<LocId>(L));
      EXPECT_GE(Acc.size(), 2u);
      EXPECT_FALSE((Acc & X.writes()).empty());
    }
    return true;
  });
}

TEST(EnumeratorTest, FencesAreInterior) {
  Vocabulary V = Vocabulary::forArch(Arch::Power);
  ExecutionEnumerator E(V, 3);
  E.forEachBase([&](Execution &X) {
    for (EventId F : X.fences()) {
      EXPECT_FALSE(
          X.Po.restrictRange(EventSet::singleton(F)).domain().empty());
      EXPECT_FALSE(X.Po.successors(F).empty());
    }
    return true;
  });
}

TEST(EnumeratorTest, AbortStopsEnumeration) {
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator E(V, 4);
  uint64_t Count = 0;
  bool Finished = E.forEachBase([&Count](Execution &) {
    ++Count;
    return Count < 5;
  });
  EXPECT_FALSE(Finished);
  EXPECT_EQ(Count, 5u);
}

TEST(EnumeratorTest, TxnPlacementsOverTwoEventThread) {
  // One thread of two events: placements are {a}, {b}, {ab}, {a}{b}.
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator E(V, 2);
  ExecutionBuilder B;
  B.read(0, 0);
  B.write(0, 0, MemOrder::NonAtomic, 1);
  Execution X = B.build();
  std::set<std::vector<int>> Seen;
  E.forEachTxnPlacement(X, [&](Execution &Y) {
    Seen.insert({Y.Txn[0], Y.Txn[1]});
    return true;
  });
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(EnumeratorTest, TxnPlacementRestoresState) {
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator E(V, 2);
  ExecutionBuilder B;
  B.read(0, 0);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  Execution X = B.build();
  E.forEachTxnPlacement(X, [](Execution &) { return true; });
  EXPECT_TRUE(X.transactional().empty());
}

TEST(EnumeratorTest, CppAtomicTxnsOnlyOverNonAtomics) {
  Vocabulary V = Vocabulary::forArch(Arch::Cpp);
  ExecutionEnumerator E(V, 2);
  ExecutionBuilder B;
  EventId R = B.read(0, 0, MemOrder::Relaxed);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  Execution X = B.build();
  bool SawAtomicOverAtomic = false;
  E.forEachTxnPlacement(X, [&](Execution &Y) {
    if (Y.Txn[R] != kNoClass && ((Y.AtomicTxns >> Y.Txn[R]) & 1))
      SawAtomicOverAtomic = true;
    return true;
  });
  EXPECT_FALSE(SawAtomicOverAtomic);
}

TEST(EnumeratorTest, Armv8VocabularyHasAnnotations) {
  Vocabulary V = Vocabulary::forArch(Arch::Armv8);
  ExecutionEnumerator E(V, 2);
  bool SawAcquire = false, SawRelease = false;
  E.forEachBase([&](Execution &X) {
    for (unsigned Ev = 0; Ev < X.size(); ++Ev) {
      SawAcquire |= X.event(Ev).isRead() && X.event(Ev).isAcquire();
      SawRelease |= X.event(Ev).isWrite() && X.event(Ev).isRelease();
    }
    return true;
  });
  EXPECT_TRUE(SawAcquire);
  EXPECT_TRUE(SawRelease);
}

TEST(EnumeratorTest, PowerEnumeratesDependencies) {
  Vocabulary V = Vocabulary::forArch(Arch::Power);
  ExecutionEnumerator E(V, 3);
  bool SawAddr = false, SawData = false, SawCtrl = false;
  E.forEachBase([&](Execution &X) {
    SawAddr |= !X.Addr.isEmpty();
    SawData |= !X.Data.isEmpty();
    SawCtrl |= !X.Ctrl.isEmpty();
    return !(SawAddr && SawData && SawCtrl);
  });
  EXPECT_TRUE(SawAddr && SawData && SawCtrl);
}

TEST(EnumeratorTest, NoDuplicateBases) {
  Vocabulary V = Vocabulary::forArch(Arch::X86);
  ExecutionEnumerator E(V, 3);
  std::set<uint64_t> Hashes;
  uint64_t Count = 0;
  E.forEachBase([&](Execution &X) {
    Hashes.insert(X.hash());
    ++Count;
    return true;
  });
  EXPECT_EQ(Hashes.size(), Count);
}

} // namespace
