//===- parser_error_test.cpp - Litmus DSL parser error paths ------------------==//
///
/// Every distinct diagnostic of `parseProgram` (litmus/Parser.cpp), each
/// pinned with its exact message and 1-based error line — so a reworded
/// or re-homed diagnostic is a deliberate test edit, not drift — plus a
/// fuzz-ish sweep of truncated and garbled programs that must fail
/// cleanly (no crash, a nonzero `ErrorLine`, a non-empty message) or
/// parse to a program the lint pass can still walk.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "litmus/Parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace tmw;

namespace {

/// Assert \p Src fails to parse with exactly \p Message at \p Line.
void expectError(const char *Src, const char *Message, unsigned Line) {
  ParseResult R = parseProgram(Src);
  ASSERT_FALSE(static_cast<bool>(R)) << "expected failure: " << Src;
  EXPECT_EQ(R.Error, Message) << Src;
  EXPECT_EQ(R.ErrorLine, Line) << Src;
}

// ---------------------------------------------------------------------------
// One pin per diagnostic, in Parser.cpp order.
// ---------------------------------------------------------------------------

TEST(ParserError_, NameRequiresAnArgument) {
  expectError("loc x 0\nname\n", "name requires an argument", 2);
}

TEST(ParserError_, LocRequiresNameAndInitial) {
  expectError("loc x\n", "loc requires a name and an initial value", 1);
}

TEST(ParserError_, BadInitialValue) {
  expectError("loc x zero\n", "bad initial value", 1);
}

TEST(ParserError_, BadThreadIndex) {
  expectError("thread\n", "bad thread index", 1);
  expectError("thread one\n", "bad thread index", 1);
  expectError("thread -1\n", "bad thread index", 1);
}

TEST(ParserError_, IncompletePostcondition) {
  expectError("loc x 0\nthread 0\n  load x\npost\n",
              "incomplete postcondition", 4);
}

TEST(ParserError_, PostRegRequiresThreadRegisterValue) {
  expectError("post reg\n", "post reg requires: thread, register, value", 1);
  expectError("post reg zero r0 1\n",
              "post reg requires: thread, register, value", 1);
}

TEST(ParserError_, BadPostRegOperands) {
  expectError("post reg 0 rX 1\n", "bad post reg operands", 1);
  expectError("post reg 0 r0 one\n", "bad post reg operands", 1);
}

TEST(ParserError_, PostMemRequiresLocationValue) {
  expectError("post mem x\n", "post mem requires: location, value", 1);
  expectError("post mem x one\n", "post mem requires: location, value", 1);
}

TEST(ParserError_, UnknownPostconditionKind) {
  expectError("post cpu 0 r0 1\n", "unknown postcondition kind: cpu", 1);
}

TEST(ParserError_, InstructionOutsideAnyThread) {
  expectError("loc x 0\nload x\n", "instruction outside any thread", 2);
}

TEST(ParserError_, LoadRequiresLocation) {
  expectError("thread 0\n  load\n", "load requires a location", 2);
}

TEST(ParserError_, StoreRequiresLocationAndValue) {
  expectError("thread 0\n  store x\n",
              "store requires a location and a value", 2);
  expectError("thread 0\n  store x one\n",
              "store requires a location and a value", 2);
}

TEST(ParserError_, FenceRequiresFlavour) {
  expectError("thread 0\n  fence\n", "fence requires a flavour", 2);
}

TEST(ParserError_, UnknownFenceFlavour) {
  expectError("thread 0\n  fence warp\n", "unknown fence flavour: warp", 2);
}

TEST(ParserError_, UnknownInstruction) {
  expectError("thread 0\n  cmpxchg x 1\n", "unknown instruction: cmpxchg", 2);
}

TEST(ParserError_, BadDependencyReference) {
  expectError("thread 0\n  load x addr:rQ\n",
              "bad dependency reference: addr:rQ", 2);
  expectError("thread 0\n  load x rmw:-2\n",
              "bad dependency reference: rmw:-2", 2);
}

TEST(ParserError_, UnknownAttribute) {
  expectError("thread 0\n  load x flub:r0\n", "unknown attribute: flub:r0", 2);
}

// ---------------------------------------------------------------------------
// Behavioural corners of the error machinery itself.
// ---------------------------------------------------------------------------

TEST(ParserError_, DiagnosticFormatsFileAndLine) {
  ParseResult R = parseProgram("loc x\n");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.diagnostic("sb.litmus"),
            "sb.litmus:1: loc requires a name and an initial value");
  EXPECT_EQ(R.diagnostic(""),
            "line 1: loc requires a name and an initial value");
  EXPECT_EQ(parseProgram("thread 0\n  load x\n").diagnostic("f"), "");
}

TEST(ParserError_, CommentsAndBlankLinesDoNotShiftErrorLines) {
  expectError("# header comment\n"
              "\n"
              "loc x 0\n"
              "thread 0\n"
              "  load x  # trailing comment\n"
              "  fence warp\n",
              "unknown fence flavour: warp", 6);
}

// ---------------------------------------------------------------------------
// Fuzz-ish sweep: truncations and mutations of a real program. Nothing
// here may crash; failures must carry a line and a message.
// ---------------------------------------------------------------------------

const char *kSeed = "name MP+txn\n"
                    "loc x 0\n"
                    "loc y 0\n"
                    "thread 0\n"
                    "  txbegin atomic\n"
                    "  store x 1 rel\n"
                    "  store y 1\n"
                    "  txend\n"
                    "thread 1\n"
                    "  load y acq\n"
                    "  load x addr:r0 ctrl:0\n"
                    "post reg 1 r0 1\n"
                    "post reg 1 r1 1\n"
                    "post mem x 1\n";

TEST(ParserError_, EveryPrefixParsesOrFailsCleanly) {
  std::string Seed(kSeed);
  for (size_t Cut = 0; Cut <= Seed.size(); ++Cut) {
    ParseResult R = parseProgram(Seed.substr(0, Cut));
    if (!R) {
      EXPECT_GT(R.ErrorLine, 0u) << "cut at " << Cut;
      EXPECT_FALSE(R.Error.empty()) << "cut at " << Cut;
    } else {
      // Whatever parsed must be walkable by the analyzer without
      // asserting — truncation can legally strand a txbegin, which is
      // exactly what the lint rules exist to report.
      lintProgram(R.Prog);
      computeFacts(R.Prog);
    }
  }
}

TEST(ParserError_, SingleByteMutationsNeverCrash) {
  std::string Seed(kSeed);
  const char Garble[] = {'\0', '\t', '#', '{', '9', 'z', '-', ':'};
  for (size_t Pos = 0; Pos < Seed.size(); Pos += 3) {
    for (char C : Garble) {
      std::string Mutant = Seed;
      Mutant[Pos] = C;
      ParseResult R = parseProgram(Mutant);
      if (!R) {
        EXPECT_GT(R.ErrorLine, 0u) << "mutation at " << Pos;
        EXPECT_FALSE(R.Error.empty()) << "mutation at " << Pos;
      } else {
        lintProgram(R.Prog);
        computeFacts(R.Prog);
      }
    }
  }
}

TEST(ParserError_, GarbledLinesFailWithThatLinePinned) {
  // The reported line must be the offending one even deep in a file.
  std::string Long;
  for (int I = 0; I < 40; ++I)
    Long += "loc v" + std::to_string(I) + " 0\n";
  Long += "thread 0\n  load v0\n  store v1 not-a-number\n";
  ParseResult R = parseProgram(Long);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.ErrorLine, 43u);
  EXPECT_EQ(R.Error, "store requires a location and a value");
}

} // namespace
