//===- tmw_serve.cpp - The long-lived query server CLI --------------------------==//
///
/// The resident frontend of the batch query engine (server/QueryServer.h):
/// instead of one process per batch, start once and stream batches in —
/// the corpus, parsed programs, resolved model specs, and the worker pool
/// (threads + analysis arenas) stay resident, so repeated CI/bench
/// queries stop paying process startup and re-parsing.
///
/// Wire form (NDJSON): one `tmw-query-batch-v1` document per input line;
/// one `tmw-query-verdicts-v1` document per batch on stdout, byte-for-byte
/// identical to a one-shot `litmus_tool --json` run of the same requests
/// and jobs count. A malformed line answers with an error document and
/// the server lives on.
///
/// Usage:   ./tmw_serve [options]              # serve stdin -> stdout
/// Example: ./tmw_serve --print-corpus-batch | ./tmw_serve --jobs 4
///          ./tmw_serve --jobs 4 --listen /tmp/tmw.sock --max-clients 8
///          ./tmw_serve --connect /tmp/tmw.sock < batches.jsonl
///
/// Flags:
///   --jobs N              resident pool workers (strict parse: a
///                         malformed or non-positive N is a usage error).
///   --listen <path>       serve a Unix-domain stream socket at <path>
///                         through the poll-based multiplexer: up to
///                         --max-clients concurrent connections share the
///                         one pool and cache, each with byte-identical
///                         verdict streams, backpressure for slow
///                         readers, and mid-batch disconnect cleanup.
///   --serial              with --listen: the serial one-connection-at-a-
///                         time reference loop instead of the multiplexer.
///   --max-clients N       concurrent connection cap for the multiplexer
///                         (default 64).
///   --accept-limit N      exit after serving N connections (0 = run
///                         until killed; bounded CI runs use this).
///   --connect <path>      client mode: send stdin's batch lines to the
///                         server at <path>, print its verdict documents
///                         to stdout (the CI fan-out client).
///   --store <path>        persistent verdict store shared by every batch
///                         of every connection: repeat queries answer at
///                         I/O speed across restarts, byte-identical to
///                         cold evaluation. The server *refuses to start*
///                         (exit 2) on an unwritable path, corrupt
///                         header, or format-version mismatch rather than
///                         silently running cache-less.
///   --telemetry           append batch timing + per-worker load to every
///                         verdicts document (forfeits byte-identity with
///                         one-shot runs).
///   --stats               print session counters (batches, cache hits,
///                         evictions, resident evaluation plans — plus
///                         per-connection traffic under the multiplexer)
///                         to stderr at exit.
///   --print-corpus-batch  emit the built-in corpus as one batch line —
///                         the requests `litmus_tool --corpus --json`
///                         evaluates — and exit; pipe it back into a
///                         server (or save it as a CI fixture).
///
/// Exit status: 0 on clean EOF, 1 on socket errors, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "litmus/Library.h"
#include "query/QueryIO.h"
#include "server/Multiplexer.h"
#include "server/QueryServer.h"
#include "server/Transport.h"
#include "store/VerdictStore.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

using namespace tmw;

namespace {

int usageError(const char *Fmt, const char *Arg) {
  std::fprintf(stderr, Fmt, Arg);
  std::fputc('\n', stderr);
  return 2;
}

unsigned parseCountStrict(const char *Text, const char *Flag) {
  // The shared strict parser (0 is meaningful: unlimited), plus a
  // smallness bound — these knobs size server-side tables.
  uint64_t V = bench::parseCountStrict(Text, Flag);
  if (V > 1u << 20) {
    std::fprintf(stderr, "error: %s %s: expected a non-negative integer\n",
                 Flag, Text);
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

void printServerStats(const QueryServer &Server) {
  ServerStats St = Server.stats();
  if (St.HasStore)
    std::fprintf(
        stderr,
        "tmw_serve: verdict store: %llu hits / %llu misses, %llu appends "
        "(%llu errors); %llu records resident, %llu recovered at open "
        "(%llu stale, %llu duplicate), %llu torn-tail bytes truncated\n",
        static_cast<unsigned long long>(St.Store.Hits),
        static_cast<unsigned long long>(St.Store.Misses),
        static_cast<unsigned long long>(St.Store.Appends),
        static_cast<unsigned long long>(St.Store.AppendErrors),
        static_cast<unsigned long long>(St.Store.Records),
        static_cast<unsigned long long>(St.Store.RecoveredRecords),
        static_cast<unsigned long long>(St.Store.StaleRecords),
        static_cast<unsigned long long>(St.Store.DuplicateRecords),
        static_cast<unsigned long long>(St.Store.TruncatedTailBytes));
  std::fprintf(stderr,
               "tmw_serve: %llu batches (%llu bad, %llu cancelled), "
               "%llu requests; "
               "program cache %llu hits / %llu misses (%llu resident, "
               "%llu evictions); model cache %llu hits / %llu misses; "
               "plan cache %llu hits / %llu misses (%llu resident)\n",
               static_cast<unsigned long long>(St.Batches),
               static_cast<unsigned long long>(St.BadBatches),
               static_cast<unsigned long long>(St.CancelledBatches),
               static_cast<unsigned long long>(St.Requests),
               static_cast<unsigned long long>(St.Cache.ProgramHits),
               static_cast<unsigned long long>(St.Cache.ProgramMisses),
               static_cast<unsigned long long>(St.Cache.ProgramsCached),
               static_cast<unsigned long long>(St.Cache.ProgramEvictions),
               static_cast<unsigned long long>(St.Cache.ModelHits),
               static_cast<unsigned long long>(St.Cache.ModelMisses),
               static_cast<unsigned long long>(St.Cache.PlanHits),
               static_cast<unsigned long long>(St.Cache.PlanMisses),
               static_cast<unsigned long long>(St.Cache.PlansCached));
}

void printMuxStats(const server::MuxStats &M) {
  std::fprintf(stderr,
               "tmw_serve: multiplexer served %llu connections (%llu aborted)\n",
               static_cast<unsigned long long>(M.Accepted),
               static_cast<unsigned long long>(M.Aborted));
  for (const server::MuxConnStats &C : M.Connections)
    std::fprintf(stderr,
                 "  conn %llu: %llu batches (%llu bad), %llu requests, "
                 "%llu B in / %llu B out, peak buffered %zu B, "
                 "%llu backpressure pauses%s\n",
                 static_cast<unsigned long long>(C.Id),
                 static_cast<unsigned long long>(C.Batches),
                 static_cast<unsigned long long>(C.BadBatches),
                 static_cast<unsigned long long>(C.Requests),
                 static_cast<unsigned long long>(C.BytesIn),
                 static_cast<unsigned long long>(C.BytesOut),
                 C.PeakBuffered,
                 static_cast<unsigned long long>(C.BackpressurePauses),
                 C.Aborted ? ", aborted" : "");
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Jobs = 1;
  bool Telemetry = false, Stats = false, PrintCorpusBatch = false;
  bool Serial = false;
  std::string ListenPath, ConnectPath, StorePath;
  server::MuxOptions Mux;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--jobs") == 0 && I + 1 < Argc) {
      Jobs = bench::parseJobsStrict(Argv[++I], "--jobs");
      continue;
    }
    if (std::strncmp(A, "--jobs=", 7) == 0) {
      Jobs = bench::parseJobsStrict(A + 7, "--jobs");
      continue;
    }
    if (std::strcmp(A, "--listen") == 0 && I + 1 < Argc) {
      ListenPath = Argv[++I];
    } else if (std::strncmp(A, "--listen=", 9) == 0) {
      ListenPath = A + 9;
    } else if (std::strcmp(A, "--connect") == 0 && I + 1 < Argc) {
      ConnectPath = Argv[++I];
    } else if (std::strncmp(A, "--connect=", 10) == 0) {
      ConnectPath = A + 10;
    } else if (std::strcmp(A, "--max-clients") == 0 && I + 1 < Argc) {
      Mux.MaxClients = parseCountStrict(Argv[++I], "--max-clients");
      if (Mux.MaxClients == 0)
        return usageError("error: --max-clients needs at least %s", "1");
    } else if (std::strcmp(A, "--accept-limit") == 0 && I + 1 < Argc) {
      Mux.AcceptLimit = parseCountStrict(Argv[++I], "--accept-limit");
    } else if (std::strcmp(A, "--store") == 0 && I + 1 < Argc) {
      StorePath = Argv[++I];
    } else if (std::strncmp(A, "--store=", 8) == 0) {
      StorePath = A + 8;
    } else if (std::strcmp(A, "--serial") == 0) {
      Serial = true;
    } else if (std::strcmp(A, "--telemetry") == 0) {
      Telemetry = true;
    } else if (std::strcmp(A, "--stats") == 0) {
      Stats = true;
    } else if (std::strcmp(A, "--print-corpus-batch") == 0) {
      PrintCorpusBatch = true;
    } else {
      return usageError("error: unknown flag %s", A);
    }
  }

  if (PrintCorpusBatch) {
    // The exact requests litmus_tool --corpus --json builds (--json
    // implies outcome collection), as one NDJSON line.
    std::vector<CheckRequest> Requests;
    for (const CorpusEntry &E : sharedCorpus()) {
      CheckRequest R;
      R.Corpus = E.Name;
      R.WantOutcomes = true;
      Requests.push_back(std::move(R));
    }
    std::printf("%s\n", requestsToJsonLine(Requests).c_str());
    return 0;
  }

  // A client/server that disconnects mid-write must not kill us.
  std::signal(SIGPIPE, SIG_IGN);

  if (!ConnectPath.empty())
    return server::runClient(ConnectPath, std::cin, std::cout);

  // Refuse to start on a store that cannot be opened: a resident server
  // silently running cache-less would defeat the whole warm-start story.
  std::unique_ptr<VerdictStore> Store;
  if (!StorePath.empty()) {
    std::string Error;
    Store = VerdictStore::open(StorePath, &Error);
    if (!Store) {
      std::fprintf(stderr, "error: --store %s: %s\n", StorePath.c_str(),
                   Error.c_str());
      return 2;
    }
  }

  ServerOptions SrvOpts;
  SrvOpts.Jobs = Jobs;
  SrvOpts.Telemetry = Telemetry;
  SrvOpts.Store = Store.get();
  QueryServer Server(SrvOpts);
  int Exit;
  if (ListenPath.empty()) {
    Exit = server::serveStdio(Server);
  } else if (Serial) {
    Exit = server::serveUnixSocket(Server, ListenPath, Mux.AcceptLimit);
  } else {
    server::ConnectionMultiplexer M(Server, Mux);
    Exit = M.serve(ListenPath);
    if (Stats)
      printMuxStats(M.stats());
  }

  if (Stats)
    printServerStats(Server);
  return Exit;
}
