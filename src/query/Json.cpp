//===- Json.cpp - Minimal JSON writing and parsing -----------------------------==//

#include "query/Json.h"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace tmw;

void tmw::jsonAppendString(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string tmw::jsonQuote(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  jsonAppendString(Out, S);
  return Out;
}

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}

bool JsonValue::getBool(std::string_view Key, bool Default) const {
  const JsonValue *V = get(Key);
  return V && V->isBool() ? V->B : Default;
}

double JsonValue::getNumber(std::string_view Key, double Default) const {
  const JsonValue *V = get(Key);
  return V && V->isNumber() ? V->Num : Default;
}

std::optional<uint64_t> JsonValue::asUint() const {
  if (K != Kind::Number)
    return std::nullopt;
  if (NF == NumForm::Uint)
    return U;
  if (NF == NumForm::Int && I >= 0)
    return static_cast<uint64_t>(I);
  // Double form (fraction, exponent, or 64-bit overflow): rejecting beats
  // returning a silently rounded value.
  return std::nullopt;
}

std::optional<int64_t> JsonValue::asInt() const {
  if (K != Kind::Number)
    return std::nullopt;
  if (NF == NumForm::Int)
    return I;
  if (NF == NumForm::Uint && U <= static_cast<uint64_t>(INT64_MAX))
    return static_cast<int64_t>(U);
  return std::nullopt;
}

uint64_t JsonValue::getUint(std::string_view Key, uint64_t Default) const {
  const JsonValue *V = get(Key);
  if (!V)
    return Default;
  return V->asUint().value_or(Default);
}

int64_t JsonValue::getInt(std::string_view Key, int64_t Default) const {
  const JsonValue *V = get(Key);
  if (!V)
    return Default;
  return V->asInt().value_or(Default);
}

std::string_view JsonValue::getString(std::string_view Key,
                                      std::string_view Default) const {
  const JsonValue *V = get(Key);
  return V && V->isString() ? std::string_view(V->Str) : Default;
}

namespace {

/// Recursive-descent parser over a string view; `Pos` is the cursor.
/// Nesting is capped so adversarial input ("[[[[...") returns a parse
/// error instead of overflowing the stack — these entry points see
/// externally supplied batch files.
constexpr unsigned kMaxDepth = 96;

struct Parser {
  std::string_view Text;
  size_t Pos = 0;
  unsigned Depth = 0;
  std::string Error;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("bad literal");
    Pos += Word.size();
    return true;
  }

  /// Read four hex digits into \p Code.
  bool hex4(unsigned &Code) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      char H = Text[Pos++];
      Code <<= 4;
      if (H >= '0' && H <= '9')
        Code += static_cast<unsigned>(H - '0');
      else if (H >= 'a' && H <= 'f')
        Code += static_cast<unsigned>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        Code += static_cast<unsigned>(H - 'A' + 10);
      else
        return fail("bad \\u escape");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!hex4(Code))
          return false;
        // Surrogate pairs: a high half must be followed by an escaped
        // low half (standard JSON emitters split non-BMP characters this
        // way); anything unpaired is rejected rather than decoded into
        // invalid UTF-8.
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          unsigned Low = 0;
          if (!hex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("unpaired surrogate");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else if (Code < 0x10000) {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xF0 | (Code >> 18));
          Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue &Out) {
    if (++Depth > kMaxDepth)
      return fail("nesting too deep");
    bool Ok = parseValueInner(Out);
    --Depth;
    return Ok;
  }

  bool parseValueInner(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Kind::Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        std::string Key;
        if (!parseString(Key) || !consume(':'))
          return false;
        // Duplicate keys are rejected (see Json.h): our writers cannot
        // produce them, and accepting one would make `get` (first match)
        // disagree with any last-wins reader of the same document.
        for (const auto &[Name, Existing] : Out.Members)
          if (Name == Key)
            return fail("duplicate object key \"" + Key + "\"");
        JsonValue V;
        if (!parseValue(V))
          return false;
        Out.Members.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          skipWs();
          continue;
        }
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Kind::Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        JsonValue V;
        if (!parseValue(V))
          return false;
        Out.Arr.push_back(std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume(']');
      }
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    }
    // Number: scan the token within bounds (the view need not be
    // NUL-terminated), then convert the bounded copy.
    size_t End = Pos;
    while (End < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '-' || Text[End] == '+' || Text[End] == '.' ||
            Text[End] == 'e' || Text[End] == 'E'))
      ++End;
    std::string Token(Text.substr(Pos, End - Pos));
    char *Parsed = nullptr;
    double V = std::strtod(Token.c_str(), &Parsed);
    if (Token.empty() || *Parsed != '\0' || !std::isfinite(V))
      return fail("bad number");
    Pos = End;
    Out.K = JsonValue::Kind::Number;
    Out.Num = V;
    // Integer-preserving path: a plain integer token (optional sign,
    // digits only — no fraction or exponent) that fits 64 bits is kept
    // exactly, because the double above rounds past 2^53 and the u64
    // count/cap fields of the wire form live in that range.
    size_t DigitsFrom = Token[0] == '-' ? 1 : 0;
    bool PlainInt = Token.size() > DigitsFrom;
    for (size_t D = DigitsFrom; D < Token.size(); ++D)
      if (!std::isdigit(static_cast<unsigned char>(Token[D])))
        PlainInt = false;
    if (PlainInt) {
      const char *First = Token.data(), *Last = Token.data() + Token.size();
      if (Token[0] == '-') {
        int64_t I = 0;
        if (auto [P, Ec] = std::from_chars(First, Last, I);
            Ec == std::errc() && P == Last) {
          Out.NF = JsonValue::NumForm::Int;
          Out.I = I;
        }
      } else {
        uint64_t U = 0;
        if (auto [P, Ec] = std::from_chars(First, Last, U);
            Ec == std::errc() && P == Last) {
          Out.NF = JsonValue::NumForm::Uint;
          Out.U = U;
        }
      }
    }
    return true;
  }
};

} // namespace

std::optional<JsonValue> tmw::parseJson(std::string_view Text,
                                        std::string *Error) {
  Parser P{Text, 0, 0, {}};
  JsonValue V;
  if (!P.parseValue(V)) {
    if (Error)
      *Error = P.Error;
    return std::nullopt;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Error)
      *Error = "trailing garbage at offset " + std::to_string(P.Pos);
    return std::nullopt;
  }
  if (Error)
    Error->clear();
  return V;
}
