//===- quickstart.cpp - First steps with the tmw library ------------------------==//
///
/// The whole toolflow in one request/response round-trip (query/Query.h):
/// describe a litmus test in the DSL, name the models to check it against
/// — any registry spec, including ablations ("power/-TxnOrder") and
/// hardware substitutes ("power8") — and let the `QueryEngine` enumerate
/// the candidates once, check every model over the shared analysis, and
/// explain each forbidding model's failed axioms. The same API scales to
/// corpus-sized batches on the work-stealing pool (`BatchOptions::Jobs`)
/// with deterministic, JSON-serialisable verdicts; see examples/litmus_tool
/// for the full CLI and bench/corpus_matrix for the batch throughput view.
///
//===----------------------------------------------------------------------===//

#include "query/QueryEngine.h"
#include "query/QueryIO.h"

#include <cstdio>

using namespace tmw;

int main() {
  // Message passing with the writer inside a transaction (Fig. 2's shape):
  // do the implicit fences at the transaction boundary forbid the stale
  // read of x?
  CheckRequest R;
  R.Source = "name MP+txn+addr\n"
             "thread 0\n"
             "  txbegin\n"
             "  store x 1\n"
             "  store y 1\n"
             "  txend\n"
             "thread 1\n"
             "  load y\n"
             "  load x addr:r0\n"
             "post reg 1 r0 1\n"
             "post reg 1 r1 0\n";
  // Any registry spec works: architectures, ablations, hardware
  // substitutes. The non-transactional Power baseline allows the stale
  // read; the transactional models forbid it and say which axiom bites.
  R.ModelSpecs = {"sc", "x86", "power/+baseline", "power", "power8"};
  R.Explain = true;

  CheckResponse Resp = QueryEngine().evaluate(R);
  std::printf("%s: %llu candidates\n", Resp.Name.c_str(),
              static_cast<unsigned long long>(Resp.Candidates));
  for (const ModelVerdict &V : Resp.Verdicts) {
    std::printf("  %-16s %s", V.Spec.c_str(),
                V.Allowed ? "allows the stale read" : "forbids it");
    for (const FailedAxiomInfo &F : V.FailedAxioms)
      std::printf("  [violates %s]", F.Axiom.c_str());
    std::printf("\n");
  }

  // The response serialises to canonical JSON — the wire form CI archives
  // per commit (litmus_tool --corpus --json).
  std::printf("\nAs JSON:\n%s\n", toJson(Resp).c_str());
  return 0;
}
