//===- VerdictStore.cpp - Persistent content-addressed verdict store -----------==//
///
/// On-disk layout (all integers little-endian):
///
///   header   : "TMWSTORE" (8 bytes)  u32 format-version  u32 zero
///   record*  : u32 key-len  u32 value-len  u64 fnv1a64(lens ‖ key ‖ value)
///              key bytes  value bytes
///
/// The format version guards the *framing* (a mismatched file is refused
/// at open — a different layout cannot be mis-parsed as records); the
/// engine version guards the *semantics* and lives inside each key, so a
/// store written by an older engine opens fine and simply misses.
///
//===----------------------------------------------------------------------===//

#include "store/VerdictStore.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace tmw;

namespace {

constexpr char kMagic[8] = {'T', 'M', 'W', 'S', 'T', 'O', 'R', 'E'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 16;
constexpr size_t kFrameBytes = 16; // key-len + value-len + checksum
/// Sanity bound per field; a "length" beyond it is framing garbage.
constexpr uint64_t kMaxFieldBytes = 1ull << 30;

uint64_t fnv1a64(uint64_t H, const void *Data, size_t N) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}
constexpr uint64_t kFnvOffset = 14695981039346656037ull;

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
uint32_t getU32(const char *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(P[I])) << (8 * I);
  return V;
}
uint64_t getU64(const char *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(P[I])) << (8 * I);
  return V;
}

/// Checksum of one record: the two length words then both payloads, so a
/// frame whose lengths were themselves torn cannot validate.
uint64_t recordSum(std::string_view Key, std::string_view Value) {
  std::string Lens;
  putU32(Lens, static_cast<uint32_t>(Key.size()));
  putU32(Lens, static_cast<uint32_t>(Value.size()));
  uint64_t H = fnv1a64(kFnvOffset, Lens.data(), Lens.size());
  H = fnv1a64(H, Key.data(), Key.size());
  return fnv1a64(H, Value.data(), Value.size());
}

std::string frameRecord(std::string_view Key, std::string_view Value) {
  std::string Out;
  Out.reserve(kFrameBytes + Key.size() + Value.size());
  putU32(Out, static_cast<uint32_t>(Key.size()));
  putU32(Out, static_cast<uint32_t>(Value.size()));
  putU64(Out, recordSum(Key, Value));
  Out += Key;
  Out += Value;
  return Out;
}

std::string headerBytes() {
  std::string Out(kMagic, sizeof(kMagic));
  putU32(Out, kFormatVersion);
  putU32(Out, 0);
  return Out;
}

bool writeAll(int Fd, const char *Data, size_t N) {
  while (N > 0) {
    ssize_t W = ::write(Fd, Data, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

bool readWholeFile(int Fd, std::string &Out, std::string *Error) {
  Out.clear();
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::strerror(errno);
      return false;
    }
    if (N == 0)
      return true;
    Out.append(Buf, static_cast<size_t>(N));
  }
}

/// The netstring field encoding of `makeKey`: `<decimal len>:<bytes>`.
void putField(std::string &Out, std::string_view S) {
  Out += std::to_string(S.size());
  Out += ':';
  Out.append(S.data(), S.size());
}

std::string versionField(uint32_t Version) {
  std::string Out;
  putField(Out, "tmw" + std::to_string(Version));
  return Out;
}

/// Validate the 16-byte header. Returns false with a one-line error.
bool checkHeader(const std::string &Data, std::string *Error) {
  if (Data.size() < kHeaderBytes ||
      std::memcmp(Data.data(), kMagic, sizeof(kMagic)) != 0) {
    if (Error)
      *Error = "not a tmw verdict store (corrupt or foreign header)";
    return false;
  }
  uint32_t Version = getU32(Data.data() + sizeof(kMagic));
  if (Version != kFormatVersion) {
    if (Error)
      *Error = "store format version " + std::to_string(Version) +
               ", this build reads version " + std::to_string(kFormatVersion);
    return false;
  }
  return true;
}

/// Walk the records of \p Data (which passed `checkHeader`), calling
/// \p Fn for each frame-valid record. Returns the offset one past the
/// last valid record — anything beyond it is torn/garbage tail.
uint64_t walkRecords(
    const std::string &Data,
    const std::function<void(std::string_view Key, std::string_view Value,
                             uint64_t Offset)> &Fn) {
  uint64_t Off = kHeaderBytes;
  while (Data.size() - Off >= kFrameBytes) {
    const char *P = Data.data() + Off;
    uint64_t KeyLen = getU32(P), ValLen = getU32(P + 4);
    uint64_t Sum = getU64(P + 8);
    if (KeyLen > kMaxFieldBytes || ValLen > kMaxFieldBytes ||
        KeyLen + ValLen > Data.size() - Off - kFrameBytes)
      break;
    std::string_view Key(P + kFrameBytes, KeyLen);
    std::string_view Value(P + kFrameBytes + KeyLen, ValLen);
    if (recordSum(Key, Value) != Sum)
      break;
    if (Fn)
      Fn(Key, Value, Off);
    Off += kFrameBytes + KeyLen + ValLen;
  }
  return Off;
}

} // namespace

VerdictStore::VerdictStore(std::string Path, int Fd)
    : Path(std::move(Path)), Fd(Fd) {}

VerdictStore::~VerdictStore() {
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<VerdictStore> VerdictStore::open(const std::string &Path,
                                                 std::string *Error) {
  int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0) {
    if (Error)
      *Error = std::strerror(errno);
    return nullptr;
  }
  std::string Data;
  if (!readWholeFile(Fd, Data, Error)) {
    ::close(Fd);
    return nullptr;
  }

  std::unique_ptr<VerdictStore> S(new VerdictStore(Path, Fd));
  if (Data.empty()) {
    // Fresh store: write the header now so every later open sees a wellformed
    // file even if no record is ever appended.
    std::string H = headerBytes();
    if (!writeAll(Fd, H.data(), H.size()) || ::fsync(Fd) != 0) {
      if (Error)
        *Error = std::strerror(errno);
      return nullptr; // ~VerdictStore closes Fd
    }
    S->End = kHeaderBytes;
    return S;
  }
  if (!checkHeader(Data, Error))
    return nullptr;

  // Rebuild the index: first record of a key wins (a duplicate is
  // byte-identical by the determinism contract, and first-wins makes
  // recovery insensitive to where a crash cut the log). Keys stamped by
  // another engine version stay on disk but are never served.
  const std::string Current = versionField(kEngineVersion);
  uint64_t End = walkRecords(
      Data, [&](std::string_view Key, std::string_view Value, uint64_t) {
        ++S->C.RecoveredRecords;
        if (Key.substr(0, Current.size()) != Current) {
          ++S->C.StaleRecords;
          return;
        }
        auto [It, Inserted] =
            S->Index.emplace(std::string(Key), std::string(Value));
        (void)It;
        if (!Inserted)
          ++S->C.DuplicateRecords;
      });
  if (End < Data.size()) {
    // Torn or garbage tail (crash mid-append, or trailing junk): truncate
    // back to the last valid record so the next append starts clean.
    S->C.TruncatedTailBytes = Data.size() - End;
    if (::ftruncate(Fd, static_cast<off_t>(End)) != 0 || ::fsync(Fd) != 0) {
      if (Error)
        *Error = std::strerror(errno);
      return nullptr;
    }
  }
  S->End = End;
  if (::lseek(Fd, static_cast<off_t>(End), SEEK_SET) < 0) {
    if (Error)
      *Error = std::strerror(errno);
    return nullptr;
  }
  return S;
}

std::optional<std::string> VerdictStore::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++C.Misses;
    return std::nullopt;
  }
  ++C.Hits;
  return It->second;
}

bool VerdictStore::writeRecord(const std::string &Key,
                               const std::string &Value) {
  std::string Rec = frameRecord(Key, Value);
  if (writeAll(Fd, Rec.data(), Rec.size()) && ::fsync(Fd) == 0) {
    End += Rec.size();
    return true;
  }
  // Partial write: roll the file back to the pre-record offset so we never
  // leave a torn record *ahead* of future appends (records after garbage
  // would be unreachable — recovery truncates at the first bad frame).
  (void)::ftruncate(Fd, static_cast<off_t>(End));
  (void)::lseek(Fd, static_cast<off_t>(End), SEEK_SET);
  return false;
}

bool VerdictStore::append(const std::string &Key,
                          const std::string &CanonicalJson) {
  std::lock_guard<std::mutex> Lock(Mu);
  // Immutable entries: a resident key needs no second record. (Two workers
  // racing the same cold key both evaluate — deterministically to the same
  // bytes — and the loser lands here.)
  if (!Index.emplace(Key, CanonicalJson).second)
    return false;
  if (!writeRecord(Key, CanonicalJson)) {
    // Degrade to memory-resident: the answer stays correct and served for
    // this process's lifetime, it just is not durable.
    ++C.AppendErrors;
    return false;
  }
  ++C.Appends;
  return true;
}

StoreCounters VerdictStore::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  StoreCounters Out = C;
  Out.Records = Index.size();
  return Out;
}

std::string VerdictStore::makeKey(std::string_view Name,
                                  std::string_view Source,
                                  std::span<const std::string> CanonicalSpecs,
                                  bool Explain, bool WantOutcomes,
                                  uint64_t CandidateCap, uint32_t Version) {
  // Netstring-framed fields: no concatenation of distinct queries can
  // collide, whatever bytes names/sources contain.
  std::string Key = versionField(Version);
  std::string Opts = "e";
  Opts += Explain ? '1' : '0';
  Opts += ",o";
  Opts += WantOutcomes ? '1' : '0';
  Opts += ",cap";
  Opts += std::to_string(CandidateCap);
  putField(Key, Opts);
  putField(Key, Name);
  putField(Key, std::to_string(CanonicalSpecs.size()));
  for (const std::string &Spec : CanonicalSpecs)
    putField(Key, Spec);
  putField(Key, Source);
  return Key;
}

std::string VerdictStore::fingerprint(std::string_view Key) {
  uint64_t H = fnv1a64(kFnvOffset, Key.data(), Key.size());
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

StoreScan
VerdictStore::scan(const std::string &Path,
                   const std::function<void(const StoreRecord &)> &Fn) {
  StoreScan Out;
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    Out.Error = std::strerror(errno);
    return Out;
  }
  std::string Data;
  bool ReadOk = readWholeFile(Fd, Data, &Out.Error);
  ::close(Fd);
  if (!ReadOk)
    return Out;
  Out.FileBytes = Data.size();
  if (!checkHeader(Data, &Out.Error))
    return Out;

  const std::string Current = versionField(kEngineVersion);
  std::unordered_map<std::string_view, int> Seen;
  uint64_t End = walkRecords(
      Data, [&](std::string_view Key, std::string_view Value, uint64_t Off) {
        StoreRecord R;
        R.Key = Key;
        R.Value = Value;
        R.Offset = Off;
        R.Stale = Key.substr(0, Current.size()) != Current;
        R.Duplicate = ++Seen[Key] > 1;
        ++Out.ValidRecords;
        Out.StaleRecords += R.Stale;
        Out.DuplicateRecords += R.Duplicate;
        if (Fn)
          Fn(R);
      });
  Out.TailBytes = Data.size() - End;
  return Out;
}

bool VerdictStore::compact(const std::string &Path, StoreScan *Result,
                           std::string *Error) {
  // Collect the survivors (first occurrence of each current-version key)
  // through the read-only scan, then swap in a rewritten log atomically.
  std::string Rewritten = headerBytes();
  StoreScan Scan = VerdictStore::scan(Path, [&](const StoreRecord &R) {
    if (!R.Stale && !R.Duplicate)
      Rewritten += frameRecord(R.Key, R.Value);
  });
  if (Result)
    *Result = Scan;
  if (!Scan.Error.empty()) {
    if (Error)
      *Error = Scan.Error;
    return false;
  }

  std::string Tmp = Path + ".compact.tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    if (Error)
      *Error = std::strerror(errno);
    return false;
  }
  bool Ok = writeAll(Fd, Rewritten.data(), Rewritten.size()) &&
            ::fsync(Fd) == 0;
  ::close(Fd);
  if (Ok && ::rename(Tmp.c_str(), Path.c_str()) != 0)
    Ok = false;
  if (!Ok) {
    if (Error)
      *Error = std::strerror(errno);
    (void)::unlink(Tmp.c_str());
    return false;
  }
  return true;
}
