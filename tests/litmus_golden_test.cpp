//===- litmus_golden_test.cpp - Golden verdicts for the paper's figures -------==//
///
/// A golden table of litmus tests from `litmus/Library` with their
/// expected allowed/forbidden verdicts per *registry spec* (including an
/// ablated one), run through `ModelRegistry::parse` + the generic
/// `checkAll` engine. Beyond reachability, every forbidden row pins the
/// axiom that carries the verdict: each candidate execution satisfying
/// the postcondition must be inconsistent, and the expected axiom must
/// appear among the failed axioms of at least one such candidate. This
/// locks the axiom *names* surfaced by `--explain`-style diagnostics, not
/// just the boolean outcomes.
///
//===----------------------------------------------------------------------===//

#include "litmus/Library.h"

#include "enumerate/Candidates.h"
#include "models/ModelRegistry.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace tmw;

namespace {

struct GoldenRow {
  /// Corpus entry name (litmus/Library).
  const char *Test;
  /// Registry spec the row is checked under.
  const char *Spec;
  /// Expected: is the weak behaviour (the postcondition) reachable?
  bool Allowed;
  /// For forbidden rows: the axiom expected to carry the verdict.
  const char *Axiom;
  /// Paper reference for the row.
  const char *Ref;
};

// Verdicts mirror the paper's figures and tables; the axiom column is the
// diagnostic the declarative engine reports for the forbidden behaviour.
const GoldenRow kGolden[] = {
    // x86 (§4, Fig. 5): SB is TSO's signature weak behaviour; mfences and
    // transactions both close it.
    {"SB", "x86", true, nullptr, "§2.2"},
    {"SB+mfences", "x86", false, "Order", "§2.2"},
    {"SB+txns", "x86", false, "TxnOrder", "§4.2 / Table 1"},
    {"R", "x86", true, nullptr, "§2.2 (write-write then write-read)"},
    {"Fig2-txn", "x86", false, "StrongIsol", "Fig. 2 (strong isolation)"},
    {"CoRR", "x86", false, "Coherence", "§2.1 coherence"},

    // Power (§5, Fig. 6): MP is open until a sync/lwsync+dep pair — or a
    // transaction — closes it; IRIW needs syncs; tprop carries Fig. 3(d).
    {"MP", "power", true, nullptr, "§5.1"},
    {"MP+lwsync+addr", "power", false, "Observation", "§5.1"},
    {"MP+txn+addr", "power", false, "Observation", "§5.2"},
    {"IRIW+syncs", "power", false, "Propagation", "§5.1"},
    {"SB+syncs", "power", false, "Propagation", "§5.1"},
    {"LB+datas", "power", false, "TxnOrder", "§5.2"},
    {"Fig3d-containment", "power", false, "StrongIsol", "Fig. 3(d)"},
    {"WRC+data+addr", "power", true, nullptr, "§5.1 (non-MCA Power)"},

    // Power with transaction ordering ablated: LB+datas stays forbidden,
    // but the verdict migrates to the plain Order axiom — the ablation
    // changes the diagnostic, not (here) the verdict.
    {"LB+datas", "power/-TxnOrder", false, "Order", "§5.2 ablated"},
    {"2+2W+txns", "power/-TxnOrder", false, "StrongIsol", "§3.3 ablated"},

    // ARMv8 (§6): multicopy-atomic, so WRC+data+addr flips to forbidden;
    // DMBs restore SC for SB; the transactional MP needs only TxnOrder.
    {"SB", "armv8", true, nullptr, "§6.1"},
    {"SB+dmbs", "armv8", false, "Order", "§6.1"},
    {"WRC+data+addr", "armv8", false, "Order", "§6.1 (MCA ARMv8)"},
    {"MP+txn+addr", "armv8", false, "TxnOrder", "§6.1"},
    {"SB+txns", "armv8", false, "TxnOrder", "§6.1 / Table 1"},

    // C++ (§7, Fig. 9): rel/acq closes MP via happens-before; LB without
    // dependencies falls to no-thin-air; plain SB stays allowed.
    {"SB", "cpp", true, nullptr, "§7"},
    {"MP+rel+acq", "cpp", false, "HbCom", "§7 (RC11 sw)"},
    {"LB", "cpp", false, "NoThinAir", "§7"},
    {"CoRR", "cpp", false, "HbCom", "§7 (coherence via hb;ecom)"},
    {"MP", "cpp", true, nullptr, "§7 (non-atomics race, not forbidden)"},
};

const CorpusEntry &entryNamed(const std::vector<CorpusEntry> &Corpus,
                              const char *Name) {
  for (const CorpusEntry &E : Corpus)
    if (E.Name == Name)
      return E;
  ADD_FAILURE() << "no corpus entry named " << Name;
  static CorpusEntry Empty;
  return Empty;
}

class LitmusGoldenTest : public ::testing::TestWithParam<size_t> {
protected:
  const GoldenRow &row() const { return kGolden[GetParam()]; }
};

TEST_P(LitmusGoldenTest, VerdictAndFailedAxiomMatchGolden) {
  const GoldenRow &R = row();
  std::vector<CorpusEntry> Corpus = standardCorpus();
  const CorpusEntry &E = entryNamed(Corpus, R.Test);
  ASSERT_FALSE(E.Prog.Threads.empty());

  std::string Error;
  std::unique_ptr<MemoryModel> M = ModelRegistry::parse(R.Spec, &Error);
  ASSERT_NE(M, nullptr) << Error;

  unsigned Satisfying = 0;
  bool Reachable = false;
  std::set<std::string_view> Failed;
  for (const Candidate &C : enumerateCandidates(E.Prog)) {
    if (!C.O.satisfies(E.Prog))
      continue;
    ++Satisfying;
    ExecutionAnalysis A(C.X);
    CheckReport Report = M->checkAll(A);
    if (Report.Consistent) {
      Reachable = true;
      continue;
    }
    for (const AxiomVerdict &V : Report.Verdicts)
      if (!V.Holds) {
        Failed.insert(V.Ax->Name);
        // A violated axiom always carries a witness.
        EXPECT_FALSE(V.Witness.empty())
            << R.Test << " under " << R.Spec << ": " << V.Ax->Name;
      }
  }

  ASSERT_GT(Satisfying, 0u)
      << R.Test << ": postcondition unreachable by construction";
  EXPECT_EQ(Reachable, R.Allowed)
      << R.Test << " under " << R.Spec << " (" << R.Ref << ")";
  if (!R.Allowed) {
    EXPECT_TRUE(Failed.count(R.Axiom))
        << R.Test << " under " << R.Spec << ": expected failed axiom "
        << R.Axiom << " not reported (" << R.Ref << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, LitmusGoldenTest,
                         ::testing::Range<size_t>(0, std::size(kGolden)),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           const GoldenRow &R = kGolden[Info.param];
                           std::string Name =
                               std::string(R.Test) + "_" + R.Spec;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(LitmusGoldenAblationTest, DisabledAxiomNeverReported) {
  // `power/-TxnOrder` must not surface TxnOrder in any diagnostic: the
  // engine skips disabled axioms entirely.
  std::unique_ptr<MemoryModel> M = ModelRegistry::parse("power/-TxnOrder");
  ASSERT_NE(M, nullptr);
  std::vector<CorpusEntry> Corpus = standardCorpus();
  for (const char *Name : {"LB+datas", "2+2W+txns", "IRIW+txn-writers+addrs"})
    for (const Candidate &C :
         enumerateCandidates(entryNamed(Corpus, Name).Prog)) {
      ExecutionAnalysis A(C.X);
      for (const AxiomVerdict &V : M->checkAll(A).Verdicts) {
        if (V.Ax->Name != "TxnOrder")
          continue;
        EXPECT_FALSE(V.Enabled) << Name;
        EXPECT_TRUE(V.Holds) << Name << ": disabled axiom reported failed";
      }
    }
}

} // namespace
