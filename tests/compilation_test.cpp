//===- compilation_test.cpp - C++ to hardware compilation (§8.2) --------------==//

#include "metatheory/Compilation.h"

#include "execution/Builder.h"
#include "models/Armv8Model.h"
#include "models/CppModel.h"
#include "models/PowerModel.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

Execution scMp() {
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::SeqCst, 1);
  EventId Ry = B.read(1, 1, MemOrder::SeqCst);
  B.read(1, 0);
  B.rf(Wy, Ry);
  return B.build();
}

TEST(CompileTest, X86InsertsMfenceAfterScStore) {
  Execution Y = compileExecution(scMp(), Arch::X86);
  EXPECT_EQ(Y.fences(FenceKind::MFence).size(), 1u);
  EXPECT_EQ(Y.checkWellFormed(), nullptr);
  // The fence sits po-after the store to y on thread 0.
  EventId F = *Y.fences(FenceKind::MFence).begin();
  EXPECT_EQ(Y.event(F).Thread, 0u);
}

TEST(CompileTest, PowerMapping) {
  Execution Y = compileExecution(scMp(), Arch::Power);
  // SC store: sync before. SC load: sync before + ctrl-isync after.
  EXPECT_EQ(Y.fences(FenceKind::Sync).size(), 2u);
  EXPECT_EQ(Y.fences(FenceKind::ISync).size(), 1u);
  EXPECT_FALSE(Y.Ctrl.isEmpty());
  EXPECT_EQ(Y.checkWellFormed(), nullptr);
}

TEST(CompileTest, Armv8UsesAcquireReleaseAccesses) {
  Execution Y = compileExecution(scMp(), Arch::Armv8);
  EXPECT_TRUE(Y.fences().empty()); // LDAR/STLR, no barriers
  unsigned Acq = 0, Rel = 0;
  for (unsigned E = 0; E < Y.size(); ++E) {
    Acq += Y.event(E).isRead() && Y.event(E).isAcquire();
    Rel += Y.event(E).isWrite() && Y.event(E).isRelease();
  }
  EXPECT_EQ(Acq, 1u);
  EXPECT_EQ(Rel, 1u);
}

TEST(CompileTest, RelaxedFencesDropOnX86) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::Relaxed, 1);
  B.fence(0, FenceKind::CppFence, MemOrder::Acquire);
  EventId R = B.read(0, 0, MemOrder::Relaxed);
  B.rf(W, R);
  B.read(1, 0, MemOrder::Relaxed);
  Execution Y = compileExecution(B.build(), Arch::X86);
  EXPECT_TRUE(Y.fences().empty());
  EXPECT_EQ(Y.size(), 3u);
}

TEST(CompileTest, TransactionsPreserved) {
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::SeqCst, 1);
  B.txn({Wx, Wy});
  B.read(1, 0);
  B.read(1, 1);
  Execution Y = compileExecution(B.build(), Arch::Power);
  // The transaction covers both mapped stores and the inserted sync.
  EXPECT_EQ(Y.numTxns(), 1u);
  EXPECT_GE(Y.transactional().size(), 3u);
  EXPECT_EQ(Y.checkWellFormed(), nullptr);
}

TEST(CompileTest, RfCoRmwCarriedOver) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::Relaxed, 1);
  EventId R = B.read(1, 0, MemOrder::Relaxed);
  EventId W2 = B.write(1, 0, MemOrder::Relaxed, 2);
  B.rmw(R, W2);
  B.rf(W1, R);
  B.co(W1, W2);
  Execution Y = compileExecution(B.build(), Arch::Armv8);
  EXPECT_EQ(Y.Rf.numPairs(), 1u);
  EXPECT_EQ(Y.Co.numPairs(), 1u);
  EXPECT_EQ(Y.Rmw.numPairs(), 1u);
}

class CompilationSoundness : public ::testing::TestWithParam<Arch> {};

TEST_P(CompilationSoundness, HoldsAtSmallBounds) {
  // Table 2: no counterexample up to 6 events (we sweep 3 here; the
  // bench pushes further).
  CompilationResult R = checkCompilation(GetParam(), 3, 300.0);
  EXPECT_FALSE(R.CounterexampleFound)
      << "source:\n"
      << R.Source.dump() << "compiled:\n"
      << R.Compiled.dump();
  EXPECT_GT(R.Checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Targets, CompilationSoundness,
                         ::testing::Values(Arch::X86, Arch::Power,
                                           Arch::Armv8),
                         [](const auto &Info) {
                           return std::string(archName(Info.param));
                         });

TEST(CompilationSoundnessDirected, ForbiddenSourceStaysForbidden) {
  // The SC-SB execution is forbidden in C++; its compilations must be
  // forbidden too.
  ExecutionBuilder B;
  B.write(0, 0, MemOrder::SeqCst, 1);
  B.read(0, 1, MemOrder::SeqCst);
  B.write(1, 1, MemOrder::SeqCst, 1);
  B.read(1, 0, MemOrder::SeqCst);
  Execution X = B.build();
  CppModel Cpp;
  ASSERT_FALSE(Cpp.consistent(X));
  ASSERT_TRUE(Cpp.raceFree(X));

  EXPECT_FALSE(X86Model().consistent(compileExecution(X, Arch::X86)));
  EXPECT_FALSE(PowerModel().consistent(compileExecution(X, Arch::Power)));
  EXPECT_FALSE(Armv8Model().consistent(compileExecution(X, Arch::Armv8)));
}

TEST(CompilationSoundnessDirected, TransactionalMpStaysForbidden) {
  // Transactional message passing (§9 shape) is forbidden in C++ and on
  // every target after compilation.
  ExecutionBuilder B;
  EventId Wx = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId Wy = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId Ry = B.read(1, 1);
  EventId Rx = B.read(1, 0);
  B.rf(Wy, Ry);
  B.txn({Wx, Wy});
  B.txn({Ry, Rx});
  Execution X = B.build();
  CppModel Cpp;
  ASSERT_FALSE(Cpp.consistent(X));
  ASSERT_TRUE(Cpp.raceFree(X));

  EXPECT_FALSE(X86Model().consistent(compileExecution(X, Arch::X86)));
  EXPECT_FALSE(PowerModel().consistent(compileExecution(X, Arch::Power)));
  EXPECT_FALSE(Armv8Model().consistent(compileExecution(X, Arch::Armv8)));
}

} // namespace
