//===- execution_test.cpp - Execution graphs and derived relations ------------==//

#include "execution/Builder.h"

#include <gtest/gtest.h>

using namespace tmw;

namespace {

TEST(BuilderTest, PoFollowsInsertionOrder) {
  ExecutionBuilder B;
  EventId A = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId C = B.read(0, 0);
  EventId D = B.read(1, 0);
  Execution X = B.build();
  EXPECT_TRUE(X.Po.contains(A, C));
  EXPECT_FALSE(X.Po.contains(C, A));
  EXPECT_FALSE(X.Po.contains(A, D));
  EXPECT_EQ(X.numThreads(), 2u);
}

TEST(BuilderTest, CoCompletedInIdOrder) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
  Execution X = B.build();
  EXPECT_TRUE(X.Co.contains(W1, W2));
}

TEST(BuilderTest, CoRespectsUserEdges) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
  B.co(W2, W1);
  Execution X = B.build();
  EXPECT_TRUE(X.Co.contains(W2, W1));
  EXPECT_FALSE(X.Co.contains(W1, W2));
}

TEST(BuilderTest, CtrlIsForwardClosed) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W1 = B.write(0, 1, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 1, MemOrder::NonAtomic, 2);
  B.ctrl(R, W1);
  Execution X = B.build();
  EXPECT_TRUE(X.Ctrl.contains(R, W1));
  EXPECT_TRUE(X.Ctrl.contains(R, W2));
}

TEST(DerivedTest, FromReadForInitialReads) {
  // A read with no rf source is fr-before every write to its location.
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W1 = B.write(1, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
  Execution X = B.build();
  Relation Fr = X.fr();
  EXPECT_TRUE(Fr.contains(R, W1));
  EXPECT_TRUE(Fr.contains(R, W2));
}

TEST(DerivedTest, FromReadSkipsCoEarlierWrites) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(1, 0);
  B.rf(W1, R);
  Execution X = B.build();
  Relation Fr = X.fr();
  // R observed W1, so it is fr-before the co-later W2 but not W1 itself.
  EXPECT_TRUE(Fr.contains(R, W2));
  EXPECT_FALSE(Fr.contains(R, W1));
}

TEST(DerivedTest, ExternalInternalSplit) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R0 = B.read(0, 0);
  EventId R1 = B.read(1, 0);
  B.rf(W, R0);
  Execution X = B.build();
  EXPECT_TRUE(X.rfi().contains(W, R0));
  EXPECT_FALSE(X.rfe().contains(W, R0));
  (void)R1;
}

TEST(DerivedTest, FenceRelation) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.fence(0, FenceKind::MFence);
  EventId R = B.read(0, 1);
  EventId R2 = B.read(0, 1);
  Execution X = B.build();
  Relation M = X.fenceRel(FenceKind::MFence);
  EXPECT_TRUE(M.contains(W, R));
  EXPECT_TRUE(M.contains(W, R2));
  EXPECT_FALSE(M.contains(R, R2)); // both after the fence
  EXPECT_TRUE(X.fenceRel(FenceKind::Sync).isEmpty());
}

TEST(DerivedTest, StxnIsPartialEquivalence) {
  ExecutionBuilder B;
  EventId A = B.read(0, 0);
  EventId C = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId D = B.read(0, 0);
  B.txn({A, C});
  Execution X = B.build();
  Relation S = X.stxn();
  EXPECT_TRUE(S.contains(A, A));
  EXPECT_TRUE(S.contains(A, C));
  EXPECT_TRUE(S.contains(C, A));
  EXPECT_FALSE(S.contains(D, D));
  // Symmetric and transitive by construction.
  EXPECT_EQ(S, S.inverse());
  EXPECT_TRUE(S.compose(S).subsetOf(S));
}

TEST(DerivedTest, TfenceMarksTransactionBoundaries) {
  ExecutionBuilder B;
  EventId A = B.read(0, 0);  // before the transaction
  EventId C = B.write(0, 0, MemOrder::NonAtomic, 1); // inside
  EventId D = B.read(0, 1);  // inside
  EventId E = B.write(0, 1, MemOrder::NonAtomic, 1); // after
  B.txn({C, D});
  Execution X = B.build();
  Relation T = X.tfence();
  EXPECT_TRUE(T.contains(A, C));  // entering
  EXPECT_TRUE(T.contains(A, D));  // entering
  EXPECT_TRUE(T.contains(C, E));  // exiting
  EXPECT_TRUE(T.contains(D, E));  // exiting
  EXPECT_FALSE(T.contains(C, D)); // within
  // An edge skipping over the whole transaction is not itself a boundary
  // edge, but it is covered by the composition of entering and exiting.
  EXPECT_FALSE(T.contains(A, E));
  EXPECT_TRUE(T.transitiveClosure().contains(A, E));
}

TEST(DerivedTest, EcomExtendsComWithCoRf) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(2, 0);
  B.co(W1, W2);
  B.rf(W2, R);
  Execution X = B.build();
  EXPECT_FALSE(X.com().contains(W1, R));
  EXPECT_TRUE(X.ecom().contains(W1, R)); // co ; rf
}

TEST(DerivedTest, CnfEqualsEcomUnionInverse) {
  // §7.2: conflicting events are related by ecom one way or the other.
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(1, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(2, 0);
  B.rf(W1, R);
  Execution X = B.build();
  Relation Ecom = X.ecom();
  Relation Both = Ecom | Ecom.inverse();
  // All conflicting pairs (write-write, read-write) are covered.
  EXPECT_TRUE(Both.contains(W1, W2) || Both.contains(W2, W1));
  EXPECT_TRUE(Both.contains(R, W2) || Both.contains(W2, R));
}

TEST(WellFormedTest, AcceptsBuilderOutput) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B.read(1, 0);
  B.rf(W, R);
  Execution X = B.build();
  EXPECT_EQ(X.checkWellFormed(), nullptr);
}

TEST(WellFormedTest, RejectsRfFromRead) {
  ExecutionBuilder B;
  EventId R1 = B.read(0, 0);
  EventId R2 = B.read(1, 0);
  B.write(1, 0, MemOrder::NonAtomic, 1);
  B.rf(R1, R2);
  Execution X = B.buildUnchecked();
  EXPECT_NE(X.checkWellFormed(), nullptr);
}

TEST(WellFormedTest, RejectsRfAcrossLocations) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B.read(1, 1);
  B.write(1, 1, MemOrder::NonAtomic, 1);
  B.rf(W, R);
  Execution X = B.buildUnchecked();
  EXPECT_NE(X.checkWellFormed(), nullptr);
}

TEST(WellFormedTest, RejectsTwoRfSources) {
  ExecutionBuilder B;
  EventId W1 = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId W2 = B.write(0, 0, MemOrder::NonAtomic, 2);
  EventId R = B.read(1, 0);
  B.rf(W1, R);
  B.rf(W2, R);
  Execution X = B.buildUnchecked();
  EXPECT_NE(X.checkWellFormed(), nullptr);
}

TEST(WellFormedTest, RejectsNonContiguousTransaction) {
  ExecutionBuilder B;
  EventId A = B.read(0, 0);
  EventId C = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId D = B.read(0, 0);
  B.txn({A, D}); // skips C
  (void)C;
  Execution X = B.buildUnchecked();
  EXPECT_STREQ(X.checkWellFormed(), "transaction is not contiguous in po");
}

TEST(WellFormedTest, RejectsCrossThreadTransaction) {
  ExecutionBuilder B;
  EventId A = B.read(0, 0);
  EventId C = B.write(1, 0, MemOrder::NonAtomic, 1);
  B.txn({A, C});
  Execution X = B.buildUnchecked();
  EXPECT_STREQ(X.checkWellFormed(), "transaction spans threads");
}

TEST(WellFormedTest, RejectsRmwAcrossLocations) {
  ExecutionBuilder B;
  EventId R = B.read(0, 0);
  EventId W = B.write(0, 1, MemOrder::NonAtomic, 1);
  B.write(1, 0, MemOrder::NonAtomic, 1); // make loc 0 shared
  B.read(1, 1);                          // make loc 1 shared
  B.rmw(R, W);
  Execution X = B.buildUnchecked();
  EXPECT_NE(X.checkWellFormed(), nullptr);
}

TEST(WellFormedTest, RejectsMalformedCriticalRegion) {
  ExecutionBuilder B;
  EventId L = B.lockCall(0, EventKind::Lock);
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  B.read(1, 0);
  // Region never closed by an unlock.
  B.cr({L, W});
  Execution X = B.buildUnchecked();
  EXPECT_NE(X.checkWellFormed(), nullptr);
}

TEST(WellFormedTest, AcceptsLockElisionShape) {
  ExecutionBuilder B;
  EventId L = B.lockCall(0, EventKind::Lock);
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId U = B.lockCall(0, EventKind::Unlock);
  EventId Lt = B.lockCall(1, EventKind::TxLock);
  EventId R = B.read(1, 0);
  EventId Ut = B.lockCall(1, EventKind::TxUnlock);
  B.cr({L, W, U});
  B.cr({Lt, R, Ut});
  Execution X = B.build();
  EXPECT_EQ(X.checkWellFormed(), nullptr);
  EXPECT_EQ(X.scr().numPairs(), 9u + 9u);
  EXPECT_EQ(X.scrt().numPairs(), 9u);
  EXPECT_TRUE(X.crTransactional(1));
  EXPECT_FALSE(X.crTransactional(0));
}

TEST(ExecutionTest, DumpMentionsStructure) {
  ExecutionBuilder B;
  EventId W = B.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R = B.read(1, 0);
  B.rf(W, R);
  B.txn({R});
  Execution X = B.build();
  std::string D = X.dump();
  EXPECT_NE(D.find("W x"), std::string::npos);
  EXPECT_NE(D.find("txn 0"), std::string::npos);
  EXPECT_NE(D.find("rf:"), std::string::npos);
}

TEST(ExecutionTest, HashDistinguishesRelations) {
  ExecutionBuilder B1;
  EventId W1 = B1.write(0, 0, MemOrder::NonAtomic, 1);
  EventId R1 = B1.read(1, 0);
  B1.rf(W1, R1);

  ExecutionBuilder B2;
  B2.write(0, 0, MemOrder::NonAtomic, 1);
  B2.read(1, 0); // reads the initial value instead

  EXPECT_NE(B1.build().hash(), B2.build().hash());
  EXPECT_FALSE(B1.build() == B2.build());
  EXPECT_TRUE(B1.build() == B1.build());
}

} // namespace
