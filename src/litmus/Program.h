//===- Program.h - Litmus test programs -------------------------*- C++ -*-==//
///
/// \file
/// Litmus tests: small multi-threaded programs with a postcondition that
/// passes exactly when one execution of interest was taken (§2.2). Threads
/// are straight-line sequences of loads, stores, fences, transaction
/// delimiters and (for lock-elision tests) lock method calls; dependencies
/// are recorded structurally and rendered by the per-architecture printers
/// (e.g. as `eor`-tricks).
///
/// Each load implicitly defines a register named after its instruction
/// index; postconditions assert register and final-memory values.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_LITMUS_PROGRAM_H
#define TMW_LITMUS_PROGRAM_H

#include "execution/Event.h"

#include <string>
#include <tuple>
#include <vector>

namespace tmw {

/// One straight-line litmus instruction.
struct Instruction {
  enum class Kind : uint8_t {
    Load,
    Store,
    Fence,
    /// Begin a transaction; on abort, control transfers to a handler that
    /// zeroes the `ok` location (Fig. 2).
    TxBegin,
    TxEnd,
    Lock,
    Unlock,
    /// lock() to be elided (starts a transactional critical region).
    TxLock,
    TxUnlock,
  };

  Kind K = Kind::Load;
  LocId Loc = -1;
  /// Stored value (writes only).
  int Value = 0;
  MemOrder MO = MemOrder::NonAtomic;
  FenceKind FK = FenceKind::None;
  /// Half of an exclusive / locked RMW pair.
  bool Exclusive = false;
  /// Instruction index (same thread) of the RMW partner, or -1.
  int RmwPartner = -1;
  /// C++ atomic{} (vs synchronized{}) for TxBegin.
  bool TxnAtomic = false;
  /// Indices of earlier loads this instruction's address depends on.
  std::vector<unsigned> AddrDeps;
  /// Indices of earlier loads this instruction's data depends on.
  std::vector<unsigned> DataDeps;
  /// Indices of earlier loads this instruction is control-dependent on.
  std::vector<unsigned> CtrlDeps;
};

/// Asserts that the register defined by load \p LoadIndex of \p Thread
/// holds \p Value.
struct RegAssertion {
  unsigned Thread;
  unsigned LoadIndex;
  int Value;
};

/// Asserts that location \p Loc holds \p Value in the final state.
struct MemAssertion {
  LocId Loc;
  int Value;
};

/// A litmus test: initial state, threads, postcondition.
struct Program {
  std::string Name;
  std::vector<std::vector<Instruction>> Threads;
  /// Source line (1-based) of each instruction, parallel to `Threads`.
  /// Filled by `parseProgram`; programs built programmatically leave it
  /// empty, and consumers (the lint pass) report line 0 for those.
  std::vector<std::vector<unsigned>> SrcLines;
  /// Non-zero initial values (all other locations start at 0).
  std::vector<std::pair<LocId, int>> InitialValues;
  std::vector<RegAssertion> RegPost;
  std::vector<MemAssertion> MemPost;
  /// Location names; index = LocId. The `ok` location, when present, is
  /// named "ok".
  std::vector<std::string> LocNames;

  /// Initial value of \p Loc (0 unless overridden).
  int initialValue(LocId Loc) const;
  /// Index of the location named \p Name, or -1.
  LocId locByName(const std::string &Name) const;
  /// Add (or find) a location named \p Name.
  LocId ensureLoc(const std::string &Name);
  /// Total instruction count.
  unsigned numInstructions() const;
  /// True when any thread contains a transaction.
  bool hasTransactions() const;
};

/// A concrete outcome of running a litmus test: the values of every
/// asserted register and the final value of every location.
struct Outcome {
  /// (thread, load index, value) triples, sorted.
  std::vector<std::tuple<unsigned, unsigned, int>> RegValues;
  /// Final value per location id.
  std::vector<int> MemValues;

  bool operator==(const Outcome &O) const = default;
  bool operator<(const Outcome &O) const;
  /// True when this outcome satisfies the program's postcondition.
  bool satisfies(const Program &P) const;
  /// Render as "r0=1; x=2; ...".
  std::string str(const Program &P) const;
};

} // namespace tmw

#endif // TMW_LITMUS_PROGRAM_H
