//===- CppModel.h - C++ (RC11) with transactions ----------------*- C++ -*-==//
///
/// \file
/// The C++ memory model of Fig. 9, built on the RC11 formalisation (Lahav
/// et al., PLDI 2017) so that compilation to Power can be checked. The
/// paper's TM extension avoids the specification's total order over
/// transactions: conflicting transactions synchronise in extended-
/// communication order instead (tsw = weaklift(ecom, stxn), §7.2).
///
/// The model defines two predicates: consistency, and race-freedom
/// (NoRace). A program with a racy consistent execution is undefined.
///
/// Axioms: Tsw (TM modifier), HbCom, RMWIsol, NoThinAir, SeqCst.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_MODELS_CPPMODEL_H
#define TMW_MODELS_CPPMODEL_H

#include "models/MemoryModel.h"

namespace tmw {

/// C++ (Fig. 9). Default configuration enables the TM extension.
class CppModel : public MemoryModel {
public:
  /// Thin shim lowering onto the named-axiom mask.
  struct Config {
    /// Transactional synchronisation: hb includes tsw.
    bool Tsw = true;

    static Config baseline() { return {false}; }
  };

  CppModel() = default;
  explicit CppModel(Config C);

  const char *name() const override {
    return anyTmEnabled() ? "C+++TM" : "C++";
  }
  Arch arch() const override { return Arch::Cpp; }
  AxiomList axioms() const override;

  /// Happens-before: (sw u tsw u po)+.
  Relation happensBefore(const ExecutionAnalysis &A) const;
  /// Synchronises-with (RC11, including fences and release sequences).
  Relation synchronisesWith(const ExecutionAnalysis &A) const;
  /// Transactional synchronisation (§7.2): weaklift(ecom, stxn).
  Relation transactionalSw(const ExecutionAnalysis &A) const;
  /// Partial-SC relation psc (RC11) whose acyclicity is the SeqCst axiom.
  Relation psc(const ExecutionAnalysis &A) const;
  /// Conflicting event pairs (cnf in Fig. 9).
  Relation conflicts(const ExecutionAnalysis &A) const;

  /// NoRace: conflicting non-atomic-pair events must be hb-ordered.
  bool raceFree(const ExecutionAnalysis &A) const;

  Config config() const;
};

} // namespace tmw

#endif // TMW_MODELS_CPPMODEL_H
