//===- Armv8Model.cpp - ARMv8 with proposed transactions ---------------------==//

#include "models/Armv8Model.h"

using namespace tmw;

namespace {

/// Indices into `Armv8Axioms` (= `AxiomMask` bit positions).
enum : unsigned { kCoherence, kTfence, kOrder, kRMWIsol, kStrongIsol,
                  kTxnOrder, kTxnCancelsRMW };

constexpr char ObBaseTag = 0;

/// The transaction-free part of ordered-before: obs u dob u aob u bob.
/// Transaction-independent, so one computation serves every placement
/// over a base execution.
const Relation &obBase(const ExecutionAnalysis &A) {
  return A.memoTerm(&ObBaseTag, 0, /*TxnDependent=*/false, [&] {
    unsigned N = A.size();
    EventSet R = A.reads(), W = A.writes();
    // Acq: acquire reads (LDAR/LDAXR); L: release writes (STLR).
    EventSet Acq = A.acquires() & R;
    EventSet L = A.releases() & W;
    Relation IdA = Relation::identityOn(Acq, N);
    Relation IdL = Relation::identityOn(L, N);
    Relation IdR = Relation::identityOn(R, N);
    Relation IdW = Relation::identityOn(W, N);

    // Observed-by: external communication.
    Relation Obs = A.external(A.com());

    // Dependency-ordered-before.
    Relation IsbId = Relation::identityOn(A.fences(FenceKind::Isb), N);
    Relation IsbBefore =
        (A.ctrl() | A.addr().compose(A.po())).compose(IsbId).compose(A.po())
            .compose(IdR);
    Relation Dob = A.addr() | A.data();
    Dob |= A.ctrl().compose(IdW);
    Dob |= IsbBefore;
    Dob |= A.addr().compose(A.po()).compose(IdW);
    Dob |= (A.ctrl() | A.data()).compose(A.coi());
    Dob |= (A.addr() | A.data()).compose(A.rfi());

    // Atomic-ordered-before.
    Relation Aob = A.rmw();
    Aob |= Relation::identityOn(A.rmw().range(), N).compose(A.rfi())
               .compose(IdA);

    // Barrier-ordered-before.
    Relation DmbId = Relation::identityOn(A.fences(FenceKind::Dmb), N);
    Relation DmbLdId = Relation::identityOn(A.fences(FenceKind::DmbLd), N);
    Relation DmbStId = Relation::identityOn(A.fences(FenceKind::DmbSt), N);
    Relation Bob = A.po().compose(DmbId).compose(A.po());
    Bob |= IdL.compose(A.po()).compose(IdA);
    Bob |= IdR.compose(A.po()).compose(DmbLdId).compose(A.po());
    Bob |= IdA.compose(A.po());
    Bob |= IdW.compose(A.po()).compose(DmbStId).compose(A.po()).compose(IdW);
    Bob |= A.po().compose(IdL);
    Bob |= A.po().compose(IdL).compose(A.coi());

    return Obs | Dob | Aob | Bob;
  });
}

Relation ob(const ExecutionAnalysis &A, AxiomMask M) {
  Relation Ob = obBase(A);
  if (M.test(kTfence))
    Ob |= A.tfence();
  return Ob;
}

Relation txnOrder(const ExecutionAnalysis &A, AxiomMask M) {
  return strongLift(ob(A, M), A.stxn());
}

/// Mask bits the ob-derived terms read (the salt annotation of Axiom.h).
constexpr uint32_t kObSalt = 1u << kTfence;

// Axiom salts: only the ob-derived terms read the mask (its tfence bit).
// TxnCancelsRMW is the shared `terms::txnCancelsRmw` (one definition with
// Power, and the guard term of the cross-arch hierarchy edges).
//
// Vocabulary footprints (Axiom.h): tfence and TxnCancelsRMW vanish
// without transactions ({Txn}), RMWIsol without RMW pairs ({Rmw}); ob
// reads plain po/com and the strong-lift terms degenerate to ob on
// txn-free executions — full footprint.
const Axiom Armv8Axioms[] = {
    {"Coherence", AxiomKind::Acyclic, terms::coherence, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/~0u},
    {"tfence", AxiomKind::Acyclic, terms::tfence, /*Tm=*/true,
     /*Modifier=*/true, /*Salt=*/0, /*Footprint=*/vocab::Txn},
    {"Order", AxiomKind::Acyclic, ob, /*Tm=*/false, /*Modifier=*/false,
     /*Salt=*/kObSalt, /*Footprint=*/~0u},
    {"RMWIsol", AxiomKind::Empty, terms::rmwIsolation, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/vocab::Rmw},
    {"StrongIsol", AxiomKind::Acyclic, terms::strongIsolation, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/~0u},
    {"TxnOrder", AxiomKind::Acyclic, txnOrder, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/kObSalt, /*Footprint=*/~0u},
    {"TxnCancelsRMW", AxiomKind::Empty, terms::txnCancelsRmw, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/vocab::Txn},
};

} // namespace

Armv8Model::Armv8Model(Config C) {
  Mask.set(kTfence, C.Tfence);
  Mask.set(kStrongIsol, C.StrongIsol);
  Mask.set(kTxnOrder, C.TxnOrder);
  Mask.set(kTxnCancelsRMW, C.TxnCancelsRmw);
}

AxiomList Armv8Model::axioms() const { return Armv8Axioms; }

Relation Armv8Model::orderedBefore(const ExecutionAnalysis &A) const {
  return ob(A, Mask);
}

Armv8Model::Config Armv8Model::config() const {
  return {Mask.test(kTfence), Mask.test(kStrongIsol), Mask.test(kTxnOrder),
          Mask.test(kTxnCancelsRMW)};
}
