//===- ExecutionAnalysis.cpp - Memoized derived relations ---------------------==//

#include "execution/ExecutionAnalysis.h"

using namespace tmw;

//===----------------------------------------------------------------------===
// Event sets.
//===----------------------------------------------------------------------===

EventSet ExecutionAnalysis::reads() const {
  return memo(C.Reads, StructGen, [&] { return X->reads(); });
}

EventSet ExecutionAnalysis::writes() const {
  return memo(C.Writes, StructGen, [&] { return X->writes(); });
}

EventSet ExecutionAnalysis::fences() const {
  return memo(C.Fences, StructGen, [&] { return X->fences(); });
}

EventSet ExecutionAnalysis::accesses() const {
  return memo(C.Accesses, StructGen, [&] { return reads() | writes(); });
}

EventSet ExecutionAnalysis::fences(FenceKind K) const {
  return memo(C.FencesOf[static_cast<unsigned>(K)], StructGen,
              [&] { return X->fences(K); });
}

EventSet ExecutionAnalysis::atomics() const {
  return memo(C.Atomics, StructGen, [&] { return X->atomics(); });
}

EventSet ExecutionAnalysis::acquires() const {
  return memo(C.Acquires, StructGen, [&] { return X->acquires(); });
}

EventSet ExecutionAnalysis::releases() const {
  return memo(C.Releases, StructGen, [&] { return X->releases(); });
}

EventSet ExecutionAnalysis::seqCst() const {
  return memo(C.SeqCst, StructGen, [&] { return X->seqCst(); });
}

EventSet ExecutionAnalysis::transactional() const {
  return memo(C.Transactional, TxnGen, [&] { return X->transactional(); });
}

EventSet ExecutionAnalysis::atomicTransactional() const {
  return memo(C.AtomicTransactional, TxnGen,
              [&] { return X->atomicTransactional(); });
}

//===----------------------------------------------------------------------===
// Derived relations. Definitions mirror Execution's uncached methods but
// are built from already-memoized sub-terms wherever possible.
//===----------------------------------------------------------------------===

const Relation &ExecutionAnalysis::sloc() const {
  return memo(C.Sloc, StructGen, [&] { return X->sloc(); });
}

const Relation &ExecutionAnalysis::sameThread() const {
  return memo(C.SameThread, StructGen, [&] { return X->sameThread(); });
}

const Relation &ExecutionAnalysis::poLoc() const {
  return memo(C.PoLoc, StructGen, [&] { return X->Po & sloc(); });
}

const Relation &ExecutionAnalysis::poImm() const {
  return memo(C.PoImm, StructGen, [&] { return X->Po - X->Po.compose(X->Po); });
}

const Relation &ExecutionAnalysis::fr() const {
  return memo(C.Fr, StructGen, [&] {
    Relation ReadsToWrites = sloc().restrictDomain(reads()).restrictRange(
        writes());
    Relation NotAfter = X->Rf.inverse().compose(
        X->Co.inverse().reflexiveTransitiveClosure());
    return ReadsToWrites - NotAfter;
  });
}

const Relation &ExecutionAnalysis::com() const {
  return memo(C.Com, StructGen, [&] { return X->Rf | X->Co | fr(); });
}

const Relation &ExecutionAnalysis::ecom() const {
  return memo(C.Ecom, StructGen, [&] { return com() | X->Co.compose(X->Rf); });
}

const Relation &ExecutionAnalysis::rfe() const {
  return memo(C.Rfe, StructGen, [&] { return external(X->Rf); });
}

const Relation &ExecutionAnalysis::rfi() const {
  return memo(C.Rfi, StructGen, [&] { return internal(X->Rf); });
}

const Relation &ExecutionAnalysis::coe() const {
  return memo(C.Coe, StructGen, [&] { return external(X->Co); });
}

const Relation &ExecutionAnalysis::coi() const {
  return memo(C.Coi, StructGen, [&] { return internal(X->Co); });
}

const Relation &ExecutionAnalysis::fre() const {
  return memo(C.Fre, StructGen, [&] { return external(fr()); });
}

const Relation &ExecutionAnalysis::fri() const {
  return memo(C.Fri, StructGen, [&] { return internal(fr()); });
}

const Relation &ExecutionAnalysis::stxn() const {
  return memo(C.Stxn, TxnGen, [&] { return X->stxn(); });
}

const Relation &ExecutionAnalysis::stxnAtomic() const {
  return memo(C.StxnAtomic, TxnGen, [&] { return X->stxnAtomic(); });
}

const Relation &ExecutionAnalysis::tfence() const {
  return memo(C.Tfence, TxnGen, [&] {
    const Relation &S = stxn();
    Relation NotS = S.complement();
    return X->Po & (NotS.compose(S) | S.compose(NotS));
  });
}

const Relation &ExecutionAnalysis::scr() const {
  return memo(C.Scr, StructGen, [&] { return X->scr(); });
}

const Relation &ExecutionAnalysis::scrt() const {
  return memo(C.Scrt, StructGen, [&] { return X->scrt(); });
}

const Relation &ExecutionAnalysis::fenceRel(FenceKind K) const {
  return memo(C.FenceRels[static_cast<unsigned>(K)], StructGen, [&] {
    Relation Id = Relation::identityOn(fences(K), X->size());
    return X->Po.compose(Id).compose(X->Po);
  });
}

const Relation &ExecutionAnalysis::cppSynchronisesWith() const {
  return memo(C.CppSw, StructGen, [&] {
    unsigned N = X->size();
    EventSet W = writes(), R = reads(), F = fences();
    EventSet Ato = atomics();

    // Release sequence: rs = [W] ; poloc? ; [W n Ato] ; (rf ; rmw)*.
    Relation Rs =
        Relation::identityOn(W, N)
            .compose(poLoc().optional())
            .compose(Relation::identityOn(W & Ato, N))
            .compose(
                X->Rf.compose(X->Rmw).reflexiveTransitiveClosure());

    // sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R n Ato] ; (po ; [F])? ; [Acq].
    Relation IdF = Relation::identityOn(F, N);
    Relation RelSide = Relation::identityOn(releases(), N)
                           .compose(IdF.compose(X->Po).optional());
    Relation AcqSide = X->Po.compose(IdF).optional().compose(
        Relation::identityOn(acquires(), N));
    return RelSide.compose(Rs)
        .compose(X->Rf)
        .compose(Relation::identityOn(R & Ato, N))
        .compose(AcqSide);
  });
}

const Relation &ExecutionAnalysis::cppTransactionalSw() const {
  return memo(C.CppTsw, TxnGen, [&] { return weakLift(ecom(), stxn()); });
}

const Relation &ExecutionAnalysis::weakLiftComStxn() const {
  return memo(C.WeakLiftComStxn, TxnGen, [&] { return weakLift(com(), stxn()); });
}

const Relation &ExecutionAnalysis::strongLiftComStxn() const {
  return memo(C.StrongLiftComStxn, TxnGen,
              [&] { return strongLift(com(), stxn()); });
}

const Relation &ExecutionAnalysis::strongLiftComStxnAtomic() const {
  return memo(C.StrongLiftComStxnAtomic, TxnGen,
              [&] { return strongLift(com(), stxnAtomic()); });
}
