//===- tmw_audit.cpp - Metadata-contract auditor CLI --------------------------==//
///
/// CLI frontend of the contract auditor (audit/ContractAudit.h): verifies
/// the `Axiom::Salt` term-identity contract, memoization coherence,
/// `invalidateTransactionalState()` honesty, and `Axiom::Footprint`
/// vocabulary soundness for every axiom of the audited model specs,
/// differentially over probe executions from the litmus corpus and every
/// architecture's enumerated vocabulary.
///
/// Usage:   ./tmw_audit [options]
/// Example: ./tmw_audit --json > contract_audit.json
///          ./tmw_audit --model power,power8 --events 4
///
/// Flags:
///   --model <spec>    audit this registry spec instead of the default
///                     matrix (every architecture, its +baseline
///                     configuration, and the hardware-substitute
///                     wrappers). Repeatable, and <spec> may be a
///                     comma-separated list ("sc,tsc,x86") — the same
///                     strict parser as `litmus_tool --model`: every
///                     unknown spec in a batch gets its own diagnostic
///                     and the tool exits 2.
///   --json            emit the canonical `tmw-contract-audit-v1` report
///                     (audit/AuditIO.h) on stdout instead of text.
///   --events N        vocabulary enumeration event bound (default 3).
///   --bases N         cap on bases audited per vocabulary (default 40,
///                     0 = unlimited).
///   --placements N    cap on transaction placements per base (default 3,
///                     0 = unlimited).
///   --corpus-cap N    cap on candidates per corpus entry (default 12,
///                     0 = unlimited).
///   --max-findings N  stop recording findings past N (default 64,
///                     0 = unlimited; the exit status still reflects
///                     every finding).
///   --no-corpus       skip the corpus probes.
///   --no-vocab        skip the vocabulary probes (and with them the
///                     invalidation pass, which needs placements).
///   --no-precision    skip the advisory salt-precision report.
///
/// Exit status: 0 when every contract held, 1 on any soundness finding,
/// 2 on usage errors (unknown flag or model spec).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "audit/AuditIO.h"
#include "audit/ContractAudit.h"
#include "models/ModelRegistry.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace tmw;

namespace {

bool addModels(const char *Value, std::vector<std::string> &Specs) {
  std::string Error;
  if (ModelRegistry::splitSpecList(Value, Specs, &Error)) {
    return true;
  }
  std::fprintf(stderr, "error: --model %s: %s\n", Value, Error.c_str());
  return false;
}

void printText(const AuditReport &R) {
  std::printf("contract audit over %zu specs:", R.Specs.size());
  for (const std::string &S : R.Specs)
    std::printf(" %s", S.c_str());
  std::printf("\n");
  std::printf(
      "  %llu probes (%llu corpus, %llu vocabulary), %llu bases x "
      "%llu placements, %llu units, %llu term evaluations, %llu "
      "footprint checks\n",
      static_cast<unsigned long long>(R.Counters.Probes),
      static_cast<unsigned long long>(R.Counters.CorpusProbes),
      static_cast<unsigned long long>(R.Counters.VocabProbes),
      static_cast<unsigned long long>(R.Counters.Bases),
      static_cast<unsigned long long>(R.Counters.Placements),
      static_cast<unsigned long long>(R.Counters.Units),
      static_cast<unsigned long long>(R.Counters.TermEvals),
      static_cast<unsigned long long>(R.Counters.FootprintChecks));

  for (const AuditFinding &F : R.Findings) {
    std::printf("FINDING [%s] %s / %s", auditPassName(F.Pass),
                F.Model.c_str(), F.Axiom.c_str());
    if (F.Bit >= 0)
      std::printf(" bit %d (%s)", F.Bit, F.BitName.c_str());
    std::printf("\n  probe %s: %s\n", F.Probe.c_str(), F.Detail.c_str());
  }
  if (R.Truncated)
    std::printf("(finding list truncated)\n");

  if (!R.Precision.empty()) {
    std::printf("advisory: %zu declared salt bit(s) no probe depended "
                "on (over-declaration forfeits plan sharing only):\n",
                R.Precision.size());
    for (const SaltPrecisionNote &N : R.Precision)
      std::printf("  %s / %s bit %d (%s)\n", N.Model.c_str(),
                  N.Axiom.c_str(), N.Bit, N.BitName.c_str());
  }

  std::printf(R.sound() ? "SOUND: every salt, memoization, invalidation, "
                          "and footprint contract held\n"
                        : "UNSOUND: %zu finding(s)\n",
              R.Findings.size());
}

} // namespace

int main(int Argc, char **Argv) {
  AuditOptions O;
  bool Json = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--model") == 0 && I + 1 < Argc) {
      if (!addModels(Argv[++I], O.ModelSpecs))
        return 2;
    } else if (std::strncmp(A, "--model=", 8) == 0) {
      if (!addModels(A + 8, O.ModelSpecs))
        return 2;
    } else if (std::strcmp(A, "--json") == 0) {
      Json = true;
    } else if (std::strcmp(A, "--events") == 0 && I + 1 < Argc) {
      uint64_t Events = bench::parseCountStrict(Argv[++I], "--events");
      if (!Events) {
        std::fprintf(stderr, "error: --events: expected a positive bound\n");
        return 2;
      }
      O.Events = static_cast<unsigned>(Events);
    } else if (std::strcmp(A, "--bases") == 0 && I + 1 < Argc) {
      O.VocabBaseCap = bench::parseCountStrict(Argv[++I], "--bases");
    } else if (std::strcmp(A, "--placements") == 0 && I + 1 < Argc) {
      O.PlacementCap = bench::parseCountStrict(Argv[++I], "--placements");
    } else if (std::strcmp(A, "--corpus-cap") == 0 && I + 1 < Argc) {
      O.CorpusCandidateCap =
          bench::parseCountStrict(Argv[++I], "--corpus-cap");
    } else if (std::strcmp(A, "--max-findings") == 0 && I + 1 < Argc) {
      O.MaxFindings = bench::parseCountStrict(Argv[++I], "--max-findings");
    } else if (std::strcmp(A, "--no-corpus") == 0) {
      O.Corpus = false;
    } else if (std::strcmp(A, "--no-vocab") == 0) {
      O.Vocabularies = false;
    } else if (std::strcmp(A, "--no-precision") == 0) {
      O.Precision = false;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", A);
      return 2;
    }
  }

  // Reject bad specs up front with the registry's diagnostic — every bad
  // spec, not just the first (mirrors litmus_tool).
  int BadSpecs = 0;
  for (const std::string &Spec : O.ModelSpecs) {
    std::string Error;
    if (!ModelRegistry::parse(Spec, &Error)) {
      std::fprintf(stderr, "error: --model %s: %s\n", Spec.c_str(),
                   Error.c_str());
      ++BadSpecs;
    }
  }
  if (BadSpecs)
    return 2;

  AuditReport R = auditContracts(O);
  if (!R.Error.empty()) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return 2;
  }

  if (Json)
    std::fputs(auditReportToJson(R).c_str(), stdout);
  else
    printText(R);
  return R.sound() ? 0 : 1;
}
