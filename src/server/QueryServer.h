//===- QueryServer.h - The long-lived query server --------------*- C++ -*-==//
///
/// \file
/// The resident request/response server over the batch query engine — the
/// herd7-style interactive flow for repeated-query workloads (the same
/// corpus checked against many model×ablation specs, per commit, per
/// bench sweep) that one-shot `litmus_tool` runs pay process startup and
/// re-parsing for on every batch.
///
/// A `QueryServer` keeps resident across batches:
///  * the shared litmus corpus (`litmus/Library.h`, one parse per
///    process);
///  * a `SessionCache` of parsed DSL programs (content-addressed by
///    source text — entries can never go stale) and interned
///    model-registry resolutions;
///  * the worker pool: `Jobs` persistent worker threads over one
///    *persistent-mode* `WorkQueue` (workers park on the empty pool and
///    wake when a batch's tasks are submitted), plus one
///    `ExecutionAnalysis` arena per worker.
///
/// Two entry layers share that pool:
///  * the *serial* API (`runBatch`/`serveLine`/`serveStream`) — one batch
///    submitted and awaited per call, the stdio transport's shape;
///  * the *concurrent* API (`submitBatch`/`cancelBatch`) — many batches
///    in flight at once, each tagged with an owner-chosen id; tasks of
///    rival batches interleave freely on the pool, but every response
///    belongs to exactly one batch and batches complete independently.
///    This is what the poll-based connection multiplexer
///    (server/Multiplexer.h) drives: one batch stream per client, all
///    multiplexed over this one pool and cache.
///
/// Wire form: each batch is one `tmw-query-batch-v1` document on a single
/// line (NDJSON framing; `requestsToJsonLine` emits it); each answer is
/// one `tmw-query-verdicts-v1` document — **byte-for-byte identical** to
/// what a one-shot `litmus_tool --json` run prints for the same requests
/// and jobs count, because both paths drive the same `BatchRun` request
/// evaluation and neither the caches nor the scheduling (serial or
/// concurrent, however many rival batches) can change a verdict. A
/// malformed batch line yields an error document (`batchErrorToJson`),
/// never process death.
///
/// Transports (stdin/stdout loop, serial Unix-domain socket, the poll
/// multiplexer) live in server/Transport.h and server/Multiplexer.h; this
/// class is transport-free and driven in-process by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_SERVER_QUERYSERVER_H
#define TMW_SERVER_QUERYSERVER_H

#include "query/QueryEngine.h"
#include "query/SessionCache.h"
#include "store/VerdictStore.h"

#include <iosfwd>
#include <memory>
#include <string_view>
#include <thread>
#include <unordered_map>

namespace tmw {

/// Server configuration.
struct ServerOptions {
  /// Resident pool workers (always at least one worker thread; the
  /// serving/transport threads never evaluate requests themselves).
  unsigned Jobs = 1;
  /// Append the timing/telemetry appendix to every verdicts document
  /// (forfeits byte-identity with one-shot runs, like --telemetry).
  bool Telemetry = false;
  /// Program-cache bound (see SessionCache).
  size_t MaxCachedPrograms = SessionCache::kDefaultMaxPrograms;
  /// Optional persistent verdict store shared by every batch of every
  /// connection (store/VerdictStore.h; caller-owned, must outlive the
  /// server). Concurrent lookups and the single guarded append path make
  /// one store safe under the multiplexer's rival connections, and the
  /// verdict-neutrality contract keeps every byte stream identical to a
  /// store-less run.
  VerdictStore *Store = nullptr;
};

/// Lifetime counters of one server (cache stats included).
struct ServerStats {
  /// Batches served / requests evaluated across them.
  uint64_t Batches = 0, Requests = 0;
  /// Malformed batch lines answered with an error document.
  uint64_t BadBatches = 0;
  /// Batches cancelled mid-flight (client disconnected).
  uint64_t CancelledBatches = 0;
  SessionCache::Stats Cache;
  /// Verdict-store lifetime counters (all zero when no store is attached;
  /// `HasStore` disambiguates "no store" from "store never touched").
  bool HasStore = false;
  StoreCounters Store;
};

class ServerBatch; // internal: one concurrently-scheduled batch

/// One pool task: request \p Index of \p Batch. Tagging every task with
/// its batch (hence its connection) is what keeps concurrent clients'
/// verdict streams from ever intermixing: a worker evaluating a task
/// writes only into that batch's response slot.
struct ServerTask {
  ServerBatch *Batch = nullptr;
  size_t Index = 0;
};

/// The resident query session: construct once, serve many batches.
///
/// Thread-safety: `serveLine`/`runBatch`/`submitBatch`/`cancelBatch` are
/// safe to call from any thread, concurrently — the pool interleaves all
/// in-flight batches. `serveStream` is a convenience loop for one caller.
class QueryServer {
public:
  explicit QueryServer(ServerOptions Opts = {});
  /// All submitted batches must have completed (the multiplexer drains
  /// before returning; `runBatch` blocks until its batch is done).
  ~QueryServer();
  QueryServer(const QueryServer &) = delete;
  QueryServer &operator=(const QueryServer &) = delete;

  /// Evaluate one parsed batch on the resident pool and block until it
  /// completes; responses in request order, deterministic and equal to a
  /// one-shot `QueryEngine::runAll`.
  std::vector<CheckResponse> runBatch(std::span<const CheckRequest> Requests,
                                      BatchTelemetry *Telemetry = nullptr);

  /// Serve one batch line: parse (`requestsFromJson` — the schema'd
  /// document, a bare array, or a single request), evaluate, serialise.
  /// Malformed input returns an error document instead of throwing.
  std::string serveLine(std::string_view Line);

  /// The NDJSON loop: one batch per input line (blank lines skipped), one
  /// verdicts document written — and flushed — per batch. Returns at EOF.
  void serveStream(std::istream &In, std::ostream &Out);

  /// Completion callback of a concurrently submitted batch: the
  /// responses (request order) and the batch telemetry. Runs on a pool
  /// worker thread (on the submitting thread for empty batches) — hand
  /// off, don't block.
  using BatchDone =
      std::function<void(std::vector<CheckResponse> &&, BatchTelemetry &&)>;

  /// Submit \p Requests for concurrent evaluation and return immediately
  /// with a nonzero batch id (0 for an empty batch, completed inline).
  /// \p FairnessCap bounds how many of this batch's requests may occupy
  /// pool workers at once (0 = no cap): with N clients each capped at
  /// jobs/N-ish, one client's corpus-sized batch cannot starve the rest.
  /// The requests are copied; for large resident callers prefer moving.
  uint64_t submitBatch(std::vector<CheckRequest> Requests, BatchDone OnDone,
                       unsigned FairnessCap = 0);

  /// Best-effort cancel of an in-flight batch (client gone): requests
  /// not yet started are skipped, in-progress ones finish. The batch
  /// still completes — `OnDone` still fires (with partial/empty
  /// responses, which the owner discards) — so completion accounting
  /// stays exact. Unknown/already-completed ids are ignored.
  void cancelBatch(uint64_t BatchId);

  /// Count one malformed batch line answered with an error document
  /// (transports that parse lines themselves report through this, so
  /// `stats()` agrees with `serveLine`'s own accounting).
  void recordBadBatch();

  ServerStats stats() const;
  SessionCache &cache() { return Cache; }
  unsigned jobs() const { return Opts.Jobs; }
  bool telemetry() const { return Opts.Telemetry; }

private:
  void workerMain(unsigned Worker);
  uint64_t submitSpan(std::span<const CheckRequest> Requests,
                      std::vector<CheckRequest> Owned, BatchDone OnDone,
                      unsigned FairnessCap);

  ServerOptions Opts;
  SessionCache Cache;
  /// The persistent pool: workers park on empty, tasks of all in-flight
  /// batches interleave (each tagged with its batch).
  WorkQueue<ServerTask> Pool;
  /// One persistent analysis arena per worker; slot W is touched only by
  /// worker W.
  std::vector<std::optional<ExecutionAnalysis>> Arenas;
  std::vector<std::thread> Threads;

  /// In-flight concurrent batches by id (guarded by Mu). Entries own the
  /// batch state; the worker that completes a batch erases it.
  mutable std::mutex Mu;
  std::unordered_map<uint64_t, std::unique_ptr<ServerBatch>> Active;
  uint64_t NextBatchId = 0;

  ServerStats S;
};

} // namespace tmw

#endif // TMW_SERVER_QUERYSERVER_H
