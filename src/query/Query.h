//===- Query.h - The batch litmus-query request/response API ----*- C++ -*-==//
///
/// \file
/// Every experiment in the paper — the Table 1/2 rows, the Fig. 3/7/10
/// studies, the corpus matrix, the CLI — asks one question shape: *for
/// this litmus program, which of these models allow it, and why?* This
/// header is the one request/response vocabulary for that question, the
/// herd7-style service interface any frontend (CLI, bench, CI, a future
/// server) calls instead of hand-rolling its own parse → enumerate →
/// check loop:
///
///  * `CheckRequest` — a program (inline DSL source, or the name of a
///    standard-corpus entry) plus the registry model specs to check it
///    against (including `ImplModel` hardware-substitute specs such as
///    "power8") and per-request options (explain, outcome collection,
///    candidate cap);
///  * `CheckResponse` — per-model verdicts (postcondition reachable or
///    not, consistent-candidate counts, failed axioms with witness
///    events, allowed outcome sets) over *one* shared candidate
///    enumeration, plus error diagnostics and timing;
///  * `BatchTelemetry` — wall-clock and per-worker pool load of a batch.
///
/// `query/QueryEngine.h` evaluates requests (enumerate once, check every
/// model, batch across the work-stealing pool); `query/QueryIO.h` gives
/// both sides a stable JSON wire form.
///
//===----------------------------------------------------------------------===//

#ifndef TMW_QUERY_QUERY_H
#define TMW_QUERY_QUERY_H

#include "enumerate/WorkQueue.h"
#include "litmus/Program.h"
#include "relation/EventSet.h"

#include <string>
#include <vector>

namespace tmw {

/// One litmus query: which of these models allow this program's
/// postcondition, and why?
struct CheckRequest {
  /// Name echoed into the response (defaults to the program's own name).
  std::string Name;
  /// Inline litmus DSL source (the `printDsl` grammar). Exactly one of
  /// `Source` and `Corpus` must be set.
  std::string Source;
  /// Name of a `standardCorpus()` entry, e.g. "SB+txns".
  std::string Corpus;
  /// Registry model specs ("x86", "power/-TxnOrder", "power8", ...).
  /// Empty = the six default architecture models.
  std::vector<std::string> ModelSpecs;
  /// Report the failed axioms (with witness events) of the first
  /// forbidden candidate of each forbidding model.
  bool Explain = false;
  /// Collect each model's allowed outcome set (outcomes of its consistent
  /// candidates, sorted and deduplicated).
  bool WantOutcomes = false;
  /// Stop enumerating after this many candidates (0 = unlimited); a hit
  /// sets `CheckResponse::Truncated` and verdicts cover the visited
  /// prefix only.
  uint64_t CandidateCap = 0;
};

/// One failed axiom of a forbidden candidate.
struct FailedAxiomInfo {
  /// Axiom name, e.g. "TxnOrder".
  std::string Axiom;
  /// Sorted ids of the events witnessing the violation (the cycle /
  /// reflexive point / field of the axiom's term).
  std::vector<EventId> Witness;
};

/// The verdict of one model over one program.
struct ModelVerdict {
  /// Canonical spec of the resolved model (`ModelRegistry::print`).
  std::string Spec;
  /// True when some consistent candidate satisfies the postcondition —
  /// the model *allows* the behaviour the test checks for.
  bool Allowed = false;
  /// Number of candidates the model deems consistent.
  uint64_t Consistent = 0;
  /// Enumeration index of the first forbidden candidate, -1 when the
  /// model allows every candidate.
  int64_t FirstForbidden = -1;
  /// `Explain` only: the failed axioms of that first forbidden candidate.
  std::vector<FailedAxiomInfo> FailedAxioms;
  /// `WantOutcomes` only: the model's allowed outcomes, sorted and
  /// deduplicated.
  std::vector<Outcome> AllowedOutcomes;
};

/// Accounting of the cross-spec evaluation plan (models/EvalPlan.h) —
/// how much work sharing and subsumption saved. Not part of the canonical
/// JSON form: planned and independent evaluation must stay byte-identical
/// there, and these numbers are exactly what differs between them. Only
/// the opt-in telemetry appendix reports them.
struct PlanStats {
  /// Obligations computed / served from the per-candidate verdict cache.
  uint64_t TermEvals = 0, TermHits = 0;
  /// Specs evaluated through their obligations / decided by subsumption.
  uint64_t SpecEvals = 0, SpecShortCircuits = 0;
  /// Obligation verdicts pre-decided by footprint specialization
  /// (models/EvalPlan.h `Specialization`), summed over candidates.
  uint64_t Discharged = 0;
  /// Plans compiled / served from the resident session cache.
  uint64_t Compiles = 0, CacheHits = 0;

  PlanStats &operator+=(const PlanStats &O) {
    TermEvals += O.TermEvals;
    TermHits += O.TermHits;
    SpecEvals += O.SpecEvals;
    SpecShortCircuits += O.SpecShortCircuits;
    Discharged += O.Discharged;
    Compiles += O.Compiles;
    CacheHits += O.CacheHits;
    return *this;
  }
};

/// Persistent verdict-store traffic of one request (store/VerdictStore.h).
/// Like `PlanStats`, never part of the canonical JSON form: a stored hit
/// and a cold evaluation must emit identical bytes, and these counters are
/// exactly what differs. Telemetry appendix and `--stats` only.
struct StoreTouch {
  /// Store lookups performed / answered from the store / records appended
  /// durably after a cold evaluation.
  uint64_t Lookups = 0, Hits = 0, Appends = 0;

  StoreTouch &operator+=(const StoreTouch &O) {
    Lookups += O.Lookups;
    Hits += O.Hits;
    Appends += O.Appends;
    return *this;
  }
};

/// The engine's answer to one `CheckRequest`.
struct CheckResponse {
  /// Request name (or the parsed program's name when the request left it
  /// empty).
  std::string Name;
  /// Non-empty when the request failed (DSL parse error, unknown corpus
  /// entry, unknown model spec); the verdicts are then absent.
  std::string Error;
  /// For DSL parse errors: the 1-based source line (0 otherwise).
  unsigned ErrorLine = 0;
  /// Candidates enumerated (shared by every model of the request).
  uint64_t Candidates = 0;
  /// True when `CandidateCap` stopped the enumeration early.
  bool Truncated = false;
  /// One verdict per requested model spec, in request order.
  std::vector<ModelVerdict> Verdicts;
  /// Wall-clock seconds spent on this request (not part of the canonical
  /// JSON form — it would break cross-jobs byte-determinism).
  double Seconds = 0;
  /// Plan accounting for this request (zero under independent
  /// evaluation); like `Seconds`, not part of the canonical JSON form.
  PlanStats Plan;
  /// Verdict-store traffic of this request (zero without a store); not
  /// part of the canonical JSON form either.
  StoreTouch Store;

  explicit operator bool() const { return Error.empty(); }
};

/// Batch-level accounting of one `QueryEngine::run`.
struct BatchTelemetry {
  double Seconds = 0;
  uint64_t Programs = 0;
  /// Total candidates enumerated / model checks performed across the
  /// batch.
  uint64_t Candidates = 0, Checks = 0;
  /// Plan accounting summed over the batch's requests.
  PlanStats Plan;
  /// Verdict-store traffic summed over the batch's requests.
  StoreTouch Store;
  /// Per-worker pool load; `BasesVisited` counts candidates here.
  std::vector<WorkerLoad> Workers;
};

} // namespace tmw

#endif // TMW_QUERY_QUERY_H
