//===- Conformance.cpp - Conformance-test synthesis ----------------------------==//

#include "synth/Conformance.h"

#include "enumerate/WorkQueue.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

using namespace tmw;

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

double secondsSince(TimePoint Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// One discovered Forbid test with its dedup/determinism keys.
struct FoundTest {
  Execution X;
  uint64_t Hash;
  double FoundAt;
  /// `concreteEncoding(X)` — total order on symmetry-equivalent finds.
  std::vector<uint8_t> Key;
};

/// Result buffer of one worker (or one static shard). Dedup keeps the
/// least-keyed representative and the earliest discovery time per
/// canonical hash, so the merged output cannot depend on the order in
/// which workers happened to visit the space.
struct SearchBuffer {
  bool Finished = true;
  uint64_t BasesVisited = 0, PlacementsVisited = 0;
  std::vector<FoundTest> Tests;
  std::unordered_map<uint64_t, size_t> Index;
  WorkerLoad Load;

  void record(const Execution &X, double FoundAt) {
    uint64_t H = canonicalHash(X);
    std::vector<uint8_t> Key = concreteEncoding(X);
    auto [It, New] = Index.try_emplace(H, Tests.size());
    if (New) {
      Tests.push_back({X, H, FoundAt, std::move(Key)});
      return;
    }
    FoundTest &T = Tests[It->second];
    if (Key < T.Key) {
      T.X = X;
      T.Key = std::move(Key);
    }
    T.FoundAt = std::min(T.FoundAt, FoundAt);
  }
};

/// Shared read-only context of one Forbid search plus the per-base check
/// pipeline, common to both shard strategies.
struct ForbidSearch {
  const MemoryModel &Tm;
  const MemoryModel &Baseline;
  ExecutionEnumerator Enum;
  double BudgetSeconds;
  TimePoint Start;
  /// Extra abort signal polled with the budget (work-stealing cancel).
  const WorkQueue<BasePrefix> *Pool = nullptr;

  ForbidSearch(const MemoryModel &Tm, const MemoryModel &Baseline,
               const Vocabulary &V, unsigned NumEvents,
               double BudgetSeconds, TimePoint Start)
      : Tm(Tm), Baseline(Baseline), Enum(V, NumEvents),
        BudgetSeconds(BudgetSeconds), Start(Start) {}

  /// Check every transaction placement over \p Base, recording minimal
  /// Forbid tests into \p Buf. Returns false to abort the enumeration
  /// (budget exhausted or pool cancelled).
  bool processBase(Execution &Base, std::optional<ExecutionAnalysis> &Arena,
                   SearchBuffer &Buf) const {
    ++Buf.BasesVisited;
    if ((Buf.BasesVisited & 0x3ff) == 0 &&
        (secondsSince(Start) > BudgetSeconds ||
         (Pool && Pool->cancelled())))
      return false;
    // The arena is retargeted per base and transaction-invalidated per
    // placement, so base-derived relations (fr, com, fences, ...) are
    // computed once per base and shared by every placement over it.
    if (!Arena)
      Arena.emplace(Base);
    else
      Arena->reset(Base);
    // Forbid tests are consistent under the baseline; the baseline ignores
    // transactions, so this prunes before any placement is tried.
    if (!Baseline.consistent(*Arena))
      return true;
    return Enum.forEachTxnPlacement(Base, [&](Execution &X) {
      ++Buf.PlacementsVisited;
      Arena->invalidateTransactionalState();
      if (Tm.consistent(*Arena))
        return true;
      if (!isMinimallyInconsistent(*Arena, Tm, Enum.vocabulary()))
        return true;
      Buf.record(X, secondsSince(Start));
      return true;
    });
  }
};

/// Run one static round-robin shard of the Forbid search.
void runStaticShard(const ForbidSearch &Search, unsigned Shard,
                    unsigned NumShards, SearchBuffer &Buf) {
  TimePoint T0 = std::chrono::steady_clock::now();
  std::optional<ExecutionAnalysis> Arena;
  Buf.Finished = Search.Enum.forEachBaseSharded(
      Shard, NumShards,
      [&](Execution &Base) { return Search.processBase(Base, Arena, Buf); });
  Buf.Load.Tasks = 1;
  Buf.Load.BusySeconds = secondsSince(T0);
  Buf.Load.BasesVisited = Buf.BasesVisited;
}

/// One work-stealing worker: pop prefix tasks; split big ones back into
/// the pool, run small ones to completion.
void runPoolWorker(const ForbidSearch &Search, WorkQueue<BasePrefix> &Q,
                   unsigned W,
                   double SplitTarget, SearchBuffer &Buf) {
  std::optional<ExecutionAnalysis> Arena;
  unsigned Num = Search.Enum.numEvents();
  BasePrefix P;
  bool Stolen = false;
  while (Q.pop(W, P, Stolen)) {
    TimePoint T0 = std::chrono::steady_clock::now();
    ++Buf.Load.Tasks;
    Buf.Load.Steals += Stolen;
    if (P.Labels.size() < Num && Search.Enum.estimateCost(P) > SplitTarget) {
      // Reverse push: the LIFO pop then visits the children in the DFS
      // try-order, preserving the search's front-loaded test discovery.
      std::vector<BasePrefix> Children = Search.Enum.expandPrefix(P);
      for (auto It = Children.rbegin(); It != Children.rend(); ++It)
        Q.push(W, std::move(*It));
      ++Buf.Load.Splits;
    } else if (!Search.Enum.forEachBasePrefixed(P, [&](Execution &Base) {
                 return Search.processBase(Base, Arena, Buf);
               })) {
      Buf.Finished = false;
      Q.cancel();
    }
    Buf.Load.BusySeconds += secondsSince(T0);
    Q.finish(W);
  }
  Buf.Load.BasesVisited = Buf.BasesVisited;
}

/// Merge the worker buffers into \p Suite: dedup across workers by
/// canonical hash (least concrete key, earliest find), then sort by hash
/// so representatives *and order* are identical for every worker count.
void mergeBuffers(ForbidSuite &Suite, std::vector<SearchBuffer> &Bufs) {
  std::unordered_map<uint64_t, FoundTest *> Best;
  for (SearchBuffer &B : Bufs) {
    Suite.Complete = Suite.Complete && B.Finished;
    Suite.BasesVisited += B.BasesVisited;
    Suite.PlacementsVisited += B.PlacementsVisited;
    Suite.Workers.push_back(B.Load);
    for (FoundTest &T : B.Tests) {
      auto [It, New] = Best.try_emplace(T.Hash, &T);
      if (New)
        continue;
      FoundTest &Winner = *It->second;
      if (T.Key < Winner.Key)
        It->second = &T;
      It->second->FoundAt = std::min(Winner.FoundAt, T.FoundAt);
    }
  }
  std::vector<FoundTest *> Sorted;
  Sorted.reserve(Best.size());
  for (auto &[H, T] : Best)
    Sorted.push_back(T);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const FoundTest *A, const FoundTest *B) {
              return A->Hash < B->Hash;
            });
  for (FoundTest *T : Sorted) {
    Suite.Tests.push_back(std::move(T->X));
    Suite.FoundAtSeconds.push_back(T->FoundAt);
  }
}

} // namespace

ForbidSuite tmw::synthesizeForbid(const MemoryModel &TmModel,
                                  const MemoryModel &Baseline,
                                  const Vocabulary &V, unsigned NumEvents,
                                  double BudgetSeconds, unsigned Jobs,
                                  ShardStrategy Strategy) {
  ForbidSuite Suite;
  Suite.NumEvents = NumEvents;
  auto Start = std::chrono::steady_clock::now();
  ForbidSearch Search(TmModel, Baseline, V, NumEvents, BudgetSeconds, Start);

  std::vector<SearchBuffer> Bufs;
  if (Strategy == ShardStrategy::StaticRoundRobin) {
    // There are only NumEvents distinct first skeleton decisions; extra
    // shards would be empty.
    unsigned NumShards = std::max(1u, std::min(Jobs, NumEvents));
    Bufs.resize(NumShards);
    if (NumShards == 1) {
      runStaticShard(Search, 0, 1, Bufs[0]);
    } else {
      std::vector<std::thread> Threads;
      Threads.reserve(NumShards);
      for (unsigned S = 0; S < NumShards; ++S)
        Threads.emplace_back([&, S] {
          runStaticShard(Search, S, NumShards, Bufs[S]);
        });
      for (std::thread &T : Threads)
        T.join();
    }
  } else {
    unsigned NumWorkers = std::max(1u, Jobs);
    WorkQueue<BasePrefix> Q(NumWorkers);
    double RootCost = 0;
    Search.Enum.forEachSkeleton([&](const std::vector<unsigned> &Sizes) {
      BasePrefix Root{Sizes, {}};
      RootCost += Search.Enum.estimateCost(Root);
      Q.seed(std::move(Root));
    });
    // Split until tasks are ~1/16th of a fair worker share: plenty of
    // stealable slack without drowning the pool in tiny tasks.
    double SplitTarget = std::max(64.0, RootCost / (16.0 * NumWorkers));
    Search.Pool = &Q;
    Bufs.resize(NumWorkers);
    if (NumWorkers == 1) {
      runPoolWorker(Search, Q, 0, SplitTarget, Bufs[0]);
    } else {
      std::vector<std::thread> Threads;
      Threads.reserve(NumWorkers);
      for (unsigned W = 0; W < NumWorkers; ++W)
        Threads.emplace_back([&, W] {
          runPoolWorker(Search, Q, W, SplitTarget, Bufs[W]);
        });
      for (std::thread &T : Threads)
        T.join();
    }
  }

  mergeBuffers(Suite, Bufs);
  Suite.SynthesisSeconds = secondsSince(Start);
  return Suite;
}

std::vector<Execution>
tmw::relaxationsOf(const std::vector<Execution> &Forbid,
                   const Vocabulary &V) {
  std::vector<Execution> Out;
  std::unordered_set<uint64_t> Seen;
  for (const Execution &X : Forbid)
    for (const Execution &Child : relaxOneStep(X, V))
      if (Seen.insert(canonicalHash(Child)).second)
        Out.push_back(Child);
  return Out;
}

std::vector<unsigned>
tmw::txnCountHistogram(const std::vector<Execution> &Tests) {
  std::vector<unsigned> Hist;
  for (const Execution &X : Tests) {
    unsigned N = X.numTxns();
    if (Hist.size() <= N)
      Hist.resize(N + 1, 0);
    ++Hist[N];
  }
  return Hist;
}
