//===- fig10_lock_elision.cpp - Fig. 10, Example 1.1, Appendix B, Table 3 ------==//
///
/// Regenerates the lock-elision finding end to end: the Table 3 mapping,
/// the automatically discovered Fig. 10 abstract/concrete pair, and the
/// Example 1.1 / Appendix B litmus tests, with verdicts for the broken
/// and DMB-fixed spinlocks.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "execution/Builder.h"
#include "litmus/FromExecution.h"
#include "litmus/Printer.h"
#include "metatheory/LockElision.h"
#include "models/Armv8Model.h"

using namespace tmw;

namespace {

Execution example11(bool Fixed, bool LoadVariant) {
  ExecutionBuilder B;
  constexpr LocId X = 0, M = 1;
  EventId Rm = B.read(0, M, MemOrder::Acquire);
  EventId Wm = B.write(0, M, MemOrder::NonAtomic, 1);
  B.rmw(Rm, Wm);
  B.ctrl(Rm, Wm);
  if (Fixed)
    B.fence(0, FenceKind::Dmb);
  if (!LoadVariant) {
    EventId Rx = B.read(0, X);
    EventId Wx = B.write(0, X, MemOrder::NonAtomic, 2);
    B.data(Rx, Wx);
    B.write(0, M, MemOrder::Release, 0);
    EventId RmT = B.read(1, M);
    EventId WxT = B.write(1, X, MemOrder::NonAtomic, 1);
    B.txn({RmT, WxT});
    B.co(WxT, Wx);
  } else {
    EventId Wx1 = B.write(0, X, MemOrder::NonAtomic, 1);
    EventId Wx2 = B.write(0, X, MemOrder::NonAtomic, 2);
    B.co(Wx1, Wx2);
    B.write(0, M, MemOrder::Release, 0);
    EventId RmT = B.read(1, M);
    EventId RxT = B.read(1, X);
    B.txn({RmT, RxT});
    B.rf(Wx1, RxT);
  }
  return B.build();
}

} // namespace

int main() {
  bench::header("Fig. 10 / Example 1.1 / Appendix B: lock elision on ARMv8",
                "§1.1, §8.3, Fig. 10, Table 3, Appendix B");
  Armv8Model Tm;
  Armv8Model Spec{Armv8Model::Config::baseline()};

  // Table 3: the pi mapping in effect.
  std::printf("Table 3 mapping (events produced per method call):\n"
              "  L  -> x86: R;R;W+rmw | Power: R;W+rmw,ctrl;isync | "
              "ARMv8: R(acq);W+rmw,ctrl [fixed: +dmb]\n"
              "  U  -> x86: W | Power: sync;W | ARMv8: W(rel)\n"
              "  Lt -> plain R of the lock variable (TxnReadsLockFree)\n"
              "  Ut -> (nothing)\n\n");

  // The automatic discovery.
  ElisionResult R = checkLockElision(Tm, Spec, Arch::Armv8, false, 7,
                                     bench::budgetSeconds(120.0));
  std::printf("ARMv8 search: %s after %llu abstract / %llu concrete "
              "executions in %.3fs (paper: Memalloy finds it in 63s)\n\n",
              R.CounterexampleFound ? "counterexample FOUND"
                                    : "no counterexample",
              static_cast<unsigned long long>(R.AbstractChecked),
              static_cast<unsigned long long>(R.ConcreteChecked),
              R.Seconds);
  if (R.CounterexampleFound) {
    std::printf("Abstract execution (X of Fig. 10):\n%s\n",
                R.Abstract.dump().c_str());
    std::printf("Concrete execution (Y of Fig. 10):\n%s\n",
                R.Concrete.dump().c_str());
    Program P = programFromExecution(R.Concrete, "fig10-concrete").Prog;
    std::printf("As an ARMv8 litmus test:\n%s\n",
                printAsm(P, Arch::Armv8).c_str());
  }

  // The fixed spinlock.
  ElisionResult Fixed = checkLockElision(Tm, Spec, Arch::Armv8, true, 7,
                                         bench::budgetSeconds(120.0));
  std::printf("ARMv8 with DMB-fixed lock(): %s (complete: %s)\n\n",
              Fixed.CounterexampleFound ? "counterexample found (BUG)"
                                        : "no counterexample",
              bench::yesNo(Fixed.Complete));

  // Example 1.1 and Appendix B as concrete executions.
  struct Row {
    const char *Name;
    bool Fix, LoadVariant;
  } Rows[] = {{"Example 1.1 (x=2 violation)", false, false},
              {"Example 1.1 + DMB fix", true, false},
              {"Appendix B  (W7=1 violation)", false, true},
              {"Appendix B  + DMB fix", true, true}};
  std::printf("%-30s %-12s %s\n", "execution", "ARMv8+TM", "failed axiom");
  for (const Row &Rw : Rows) {
    Execution X = example11(Rw.Fix, Rw.LoadVariant);
    ConsistencyResult C = Tm.check(X);
    std::printf("%-30s %-12s %s\n", Rw.Name,
                C.Consistent ? "CONSISTENT" : "forbidden",
                C.FailedAxiom.empty() ? "-" : C.FailedAxiom.data());
  }

  std::printf("\nExample 1.1 as the paper's litmus pair:\n\n%s\n",
              printAsm(programFromExecution(example11(false, false),
                                            "example-1.1")
                           .Prog,
                       Arch::Armv8)
                  .c_str());
  std::printf("Paper: the unfixed executions are consistent (lock elision "
              "unsound);\nthe DMB restores mutual exclusion at the cost of "
              "portability/performance.\n");
  return 0;
}
