//===- CppModel.cpp - C++ (RC11) with transactions ---------------------------==//

#include "models/CppModel.h"

using namespace tmw;

const char *CppModel::name() const { return Cfg.Tsw ? "C+++TM" : "C++"; }

Relation CppModel::synchronisesWith(const Execution &X) const {
  unsigned N = X.size();
  EventSet W = X.writes(), R = X.reads(), F = X.fences();
  EventSet Ato = X.atomics();

  // Release sequence: rs = [W] ; poloc? ; [W n Ato] ; (rf ; rmw)*.
  Relation Rs = Relation::identityOn(W, N)
                    .compose(X.poLoc().optional())
                    .compose(Relation::identityOn(W & Ato, N))
                    .compose(X.Rf.compose(X.Rmw).reflexiveTransitiveClosure());

  // sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R n Ato] ; (po ; [F])? ; [Acq].
  Relation IdF = Relation::identityOn(F, N);
  Relation RelSide = Relation::identityOn(X.releases(), N)
                         .compose(IdF.compose(X.Po).optional());
  Relation AcqSide = X.Po.compose(IdF).optional().compose(
      Relation::identityOn(X.acquires(), N));
  return RelSide.compose(Rs)
      .compose(X.Rf)
      .compose(Relation::identityOn(R & Ato, N))
      .compose(AcqSide);
}

Relation CppModel::transactionalSw(const Execution &X) const {
  return weakLift(X.ecom(), X.stxn());
}

Relation CppModel::happensBefore(const Execution &X) const {
  Relation Sw = synchronisesWith(X);
  if (Cfg.Tsw)
    Sw |= transactionalSw(X);
  return (Sw | X.Po).transitiveClosure();
}

Relation CppModel::psc(const Execution &X) const {
  unsigned N = X.size();
  Relation Hb = happensBefore(X);
  Relation HbOpt = Hb.optional();
  Relation Eco = X.com().transitiveClosure();
  Relation Sloc = X.sloc();

  EventSet Sc = X.seqCst();
  EventSet Fsc = Sc & X.fences();
  Relation IdSc = Relation::identityOn(Sc, N);
  Relation IdFsc = Relation::identityOn(Fsc, N);

  // scb = po u (po \ sloc ; hb ; po \ sloc) u (hb n sloc) u co u fr.
  Relation PoNonLoc = X.Po - Sloc;
  Relation Scb = X.Po | PoNonLoc.compose(Hb).compose(PoNonLoc) |
                 (Hb & Sloc) | X.Co | X.fr();

  Relation Left = IdSc | IdFsc.compose(HbOpt);
  Relation Right = IdSc | HbOpt.compose(IdFsc);
  Relation PscBase = Left.compose(Scb).compose(Right);
  Relation PscF =
      IdFsc.compose(Hb | Hb.compose(Eco).compose(Hb)).compose(IdFsc);
  return PscBase | PscF;
}

Relation CppModel::conflicts(const Execution &X) const {
  unsigned N = X.size();
  EventSet W = X.writes(), R = X.reads();
  Relation Cnf = (Relation::cross(W, W, N) | Relation::cross(R, W, N) |
                  Relation::cross(W, R, N)) &
                 X.sloc();
  return Cnf - Relation::identityOn(X.universe(), N);
}

bool CppModel::raceFree(const Execution &X) const {
  unsigned N = X.size();
  EventSet Ato = X.atomics();
  Relation Hb = happensBefore(X);
  Relation Races = conflicts(X) - Relation::cross(Ato, Ato, N) -
                   (Hb | Hb.inverse());
  return Races.isEmpty();
}

ConsistencyResult CppModel::check(const Execution &X) const {
  Relation Hb = happensBefore(X);
  Relation Com = X.com();

  if (!Hb.compose(Com.reflexiveTransitiveClosure()).isIrreflexive())
    return ConsistencyResult::fail("HbCom");

  if (!(X.Rmw & X.fre().compose(X.coe())).isEmpty())
    return ConsistencyResult::fail("RMWIsol");

  if (!(X.Po | X.Rf).isAcyclic())
    return ConsistencyResult::fail("NoThinAir");

  if (!psc(X).isAcyclic())
    return ConsistencyResult::fail("SeqCst");

  return ConsistencyResult::ok();
}
