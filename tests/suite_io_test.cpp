//===- suite_io_test.cpp - Suite export round trips -----------------------------==//

#include "synth/SuiteIO.h"

#include "enumerate/Candidates.h"
#include "litmus/FromExecution.h"
#include "litmus/Parser.h"
#include "models/X86Model.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace tmw;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

class SuiteIoTest : public ::testing::Test {
protected:
  std::string Dir =
      (std::filesystem::temp_directory_path() / "tmw-suite-test").string();

  void TearDown() override {
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }

  ForbidSuite suite() {
    X86Model Tm;
    X86Model Baseline{X86Model::Config::baseline()};
    Vocabulary V = Vocabulary::forArch(Arch::X86);
    return synthesizeForbid(Tm, Baseline, V, 3, 120.0);
  }
};

TEST_F(SuiteIoTest, WritesOneFilePerTest) {
  ForbidSuite S = suite();
  ASSERT_FALSE(S.Tests.empty());
  SuiteExport E = writeSuite(Dir, "x86-forbid-3", S.Tests, true);
  ASSERT_TRUE(static_cast<bool>(E)) << E.Error;
  EXPECT_EQ(E.FilesWritten, S.Tests.size());
  unsigned Found = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    Found += Entry.path().extension() == ".litmus";
  EXPECT_EQ(Found, S.Tests.size());
}

TEST_F(SuiteIoTest, FilesCarryProvenanceAndParseBack) {
  ForbidSuite S = suite();
  ASSERT_FALSE(S.Tests.empty());
  ASSERT_TRUE(static_cast<bool>(writeSuite(Dir, "x86-forbid-3", S.Tests,
                                           true)));
  std::string Text = slurp(Dir + "/000.litmus");
  EXPECT_NE(Text.find("# suite: x86-forbid-3"), std::string::npos);
  EXPECT_NE(Text.find("forbidden"), std::string::npos);

  ParseResult R = parseProgram(Text);
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  // The parsed test keeps the model verdict of the original execution:
  // its postcondition is unreachable under x86+TM.
  X86Model Tm;
  EXPECT_FALSE(postconditionReachable(R.Prog, Tm));
  X86Model Baseline{X86Model::Config::baseline()};
  EXPECT_TRUE(postconditionReachable(R.Prog, Baseline));
}

TEST_F(SuiteIoTest, RejectsUnwritableDirectory) {
  SuiteExport E = writeSuite("/proc/definitely/not/writable", "x", {}, true);
  // Either the create fails or zero files are written without error;
  // accept both spellings of "nothing happened", but never a crash.
  if (!E) {
    EXPECT_FALSE(E.Error.empty());
  }
}

} // namespace
