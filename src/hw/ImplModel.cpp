//===- ImplModel.cpp - Axiomatic hardware substitutes -------------------------==//

#include "hw/ImplModel.h"

using namespace tmw;

namespace {

Relation noLoadBuffering(const ExecutionAnalysis &A, AxiomMask) {
  return A.po() | A.rf();
}

} // namespace

ImplModel::ImplModel(std::unique_ptr<MemoryModel> Spec, bool NoLoadBuffering,
                     const char *Name)
    : Spec(std::move(Spec)), Label(Name) {
  AxiomList SpecAxioms = this->Spec->axioms();
  Axioms.assign(SpecAxioms.begin(), SpecAxioms.end());
  Axioms.push_back(
      {"NoLoadBuffering(impl)", AxiomKind::Acyclic, noLoadBuffering});
  // Inherit the spec's configuration; the appended implementation axiom
  // sits past the spec's indices, so the spec's term functions keep
  // reading their own bits.
  Mask = this->Spec->axiomMask();
  Mask.set(static_cast<unsigned>(Axioms.size() - 1), NoLoadBuffering);
}

ImplModel ImplModel::power8() {
  return ImplModel(std::make_unique<PowerModel>(), /*NoLoadBuffering=*/true,
                   "POWER8 (simulated)");
}

ImplModel ImplModel::armv8Silicon() {
  return ImplModel(std::make_unique<Armv8Model>(), /*NoLoadBuffering=*/true,
                   "ARMv8+TM silicon (simulated)");
}

ImplModel ImplModel::armv8BuggyRtl() {
  Armv8Model::Config C;
  C.TxnOrder = false;
  return ImplModel(std::make_unique<Armv8Model>(C),
                   /*NoLoadBuffering=*/true, "ARMv8 RTL prototype (buggy)");
}
