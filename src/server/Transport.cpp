//===- Transport.cpp - Server transports (stdio, Unix socket) ------------------==//

#include "server/Transport.h"

#include "server/QueryServer.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

// macOS has no MSG_NOSIGNAL; writes there can raise SIGPIPE on a closed
// peer, which the CLI ignores process-wide instead.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using namespace tmw;

int server::serveStdio(QueryServer &S) {
  S.serveStream(std::cin, std::cout);
  return 0;
}

namespace {

int failSys(const char *What, const std::string &Path) {
  std::fprintf(stderr, "error: %s %s: %s\n", What, Path.c_str(),
               std::strerror(errno));
  return 1;
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Write all of \p Data to \p Fd (EINTR-safe, SIGPIPE-free). False when
/// the peer is gone.
bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// One connection: buffer reads, peel off complete lines, answer each
/// with a verdicts document. A trailing unterminated line at EOF is
/// served too (a lone batch sent without a final newline still answers).
void serveConnection(QueryServer &S, int Fd) {
  std::string Buf;
  char Chunk[65536];
  auto ServeLine = [&](std::string_view Line) {
    if (Line.find_first_not_of(" \t\r") == std::string_view::npos)
      return true;
    return writeAll(Fd, S.serveLine(Line));
  };
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0) {
      if (!Buf.empty())
        ServeLine(Buf);
      break;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl; (Nl = Buf.find('\n', Start)) != std::string::npos;
         Start = Nl + 1)
      if (!ServeLine(std::string_view(Buf).substr(Start, Nl - Start))) {
        ::close(Fd);
        return;
      }
    Buf.erase(0, Start);
  }
  ::close(Fd);
}

} // namespace

int server::serveUnixSocket(QueryServer &S, const std::string &Path,
                            unsigned AcceptLimit) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long (max %zu): %s\n",
                 sizeof(Addr.sun_path) - 1, Path.c_str());
    return 1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0)
    return failSys("socket", Path);
  ::unlink(Path.c_str()); // replace a stale socket file
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(Listen);
    return failSys("bind", Path);
  }
  if (::listen(Listen, /*backlog=*/8) < 0) {
    ::close(Listen);
    return failSys("listen", Path);
  }

  unsigned Served = 0;
  while (AcceptLimit == 0 || Served < AcceptLimit) {
    int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0) {
      // Uniformly EINTR-safe: a signal delivered to the listening
      // thread — before or after the first served connection — restarts
      // the accept instead of tearing the listener down (pinned by
      // tests/transport_test.cpp).
      if (errno == EINTR)
        continue; // a signal is not a served connection
      ::close(Listen);
      return failSys("accept", Path);
    }
    serveConnection(S, Fd);
    ++Served;
  }
  ::close(Listen);
  ::unlink(Path.c_str());
  return 0;
}

int server::runClient(const std::string &Path, std::istream &In,
                      std::ostream &Out) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long (max %zu): %s\n",
                 sizeof(Addr.sun_path) - 1, Path.c_str());
    return 1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  // Retry the connect briefly: the common CI shape starts the server in
  // the background and fans clients out immediately, racing the bind.
  int Fd = -1;
  for (int Try = 0; Try < 200; ++Try) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return failSys("socket", Path);
    int Rc;
    do {
      Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
    } while (Rc < 0 && errno == EINTR);
    if (Rc == 0)
      break;
    ::close(Fd);
    Fd = -1;
    if (errno != ENOENT && errno != ECONNREFUSED)
      return failSys("connect", Path);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (Fd < 0) {
    std::fprintf(stderr, "error: connect %s: server never came up\n",
                 Path.c_str());
    return 1;
  }

  // Send every input line as one batch and stream the verdict documents
  // back until the server is done with us — *interleaved*, never
  // write-everything-then-read. The server bounds a connection's pending
  // output (the multiplexer's OutputHighWater; the serial transport's
  // synchronous per-document write) and stops reading until the client
  // drains, so a client that sits on its responses while it still has
  // input to push deadlocks both sides once the kernel socket buffers
  // fill: the classic pipe deadlock. Polling both directions and
  // draining responses while sending makes progress at any input size.
  if (!setNonBlocking(Fd)) {
    ::close(Fd);
    return failSys("fcntl", Path);
  }
  std::string Pending; // input lines queued for the wire
  std::string Line;
  bool InEof = false, SentEof = false;
  char Chunk[65536];
  for (;;) {
    // Keep a bounded slice of the input queued; half-close once the
    // last byte is on the wire so the server sees EOF and finishes.
    while (!InEof && Pending.size() < (1u << 20)) {
      if (!std::getline(In, Line)) {
        InEof = true;
        break;
      }
      Pending += Line;
      Pending += '\n';
    }
    if (InEof && Pending.empty() && !SentEof) {
      ::shutdown(Fd, SHUT_WR);
      SentEof = true;
    }

    pollfd P{Fd, POLLIN, 0};
    if (!Pending.empty())
      P.events |= POLLOUT;
    if (::poll(&P, 1, -1) < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return failSys("poll", Path);
    }

    if (P.revents & POLLOUT) {
      size_t Off = 0;
      while (Off < Pending.size()) {
        ssize_t N = ::send(Fd, Pending.data() + Off, Pending.size() - Off,
                           MSG_NOSIGNAL);
        if (N < 0) {
          if (errno == EINTR)
            continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
          ::close(Fd);
          return failSys("send", Path);
        }
        Off += static_cast<size_t>(N);
      }
      Pending.erase(0, Off);
    }
    if (P.revents & (POLLIN | POLLERR | POLLHUP)) {
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;
        ::close(Fd);
        return failSys("read", Path);
      }
      if (N == 0)
        break; // server finished (or rejected the rest of our input)
      Out.write(Chunk, static_cast<std::streamsize>(N));
    }
  }
  Out.flush();
  ::close(Fd);
  return 0;
}
