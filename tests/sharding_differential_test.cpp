//===- sharding_differential_test.cpp - WS synthesis vs sequential DFS --------==//
///
/// The contract the work-stealing synthesis rests on, checked
/// differentially against the plain sequential enumeration:
///
///  * prefix tasks partition the base space *exactly* — no base visited
///    twice, none missed — at any split depth;
///  * `synthesizeForbid` produces the identical canonical test set for
///    every `Jobs` value and both shard strategies (canonical-hash
///    multiset equality, not just counts);
///  * the merged suite is byte-for-byte deterministic: hash-sorted order
///    and least-concrete-key representatives, so even the `Execution`
///    dumps agree across worker counts.
///
//===----------------------------------------------------------------------===//

#include "synth/Conformance.h"

#include "models/ModelRegistry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace tmw;

namespace {

constexpr unsigned kJobsValues[] = {1, 2, 3, 7, 16};

struct Workload {
  const char *Spec;
  Arch A;
  unsigned NumEvents;
};

// One vocabulary per paper target family: x86 (TSO), Power (deps +
// fence flavours), C++ (consistency modes + atomic{} transactions).
const Workload kWorkloads[] = {
    {"x86", Arch::X86, 4},
    {"power", Arch::Power, 3},
    {"cpp", Arch::Cpp, 3},
};

class ShardingDifferentialTest : public ::testing::TestWithParam<size_t> {
protected:
  Workload workload() const { return kWorkloads[GetParam()]; }
  Vocabulary vocab() const { return Vocabulary::forArch(workload().A); }

  std::unique_ptr<MemoryModel> tm() const {
    return ModelRegistry::parse(workload().Spec);
  }
  std::unique_ptr<MemoryModel> baseline() const {
    return ModelRegistry::parse(std::string(workload().Spec) + "/+baseline");
  }

  ForbidSuite synth(unsigned Jobs, ShardStrategy S) const {
    return synthesizeForbid(*tm(), *baseline(), vocab(),
                            workload().NumEvents, /*BudgetSeconds=*/1e18,
                            Jobs, S);
  }

  /// The reference: a hand-rolled sequential `forEachBase` search with no
  /// sharding, no pool, no dedup — the ground truth the parallel paths
  /// must reproduce.
  struct Reference {
    uint64_t Bases = 0;
    /// Sorted multiset of canonical hashes of all minimal Forbid
    /// placements (duplicates from symmetric representatives included).
    std::vector<uint64_t> AllHashes;
    /// Sorted, deduplicated canonical test set.
    std::vector<uint64_t> TestSet;
  };

  Reference sequentialReference() const {
    Reference Ref;
    std::unique_ptr<MemoryModel> Tm = tm(), Base = baseline();
    Vocabulary V = vocab();
    ExecutionEnumerator Enum(V, workload().NumEvents);
    Enum.forEachBase([&](Execution &B) {
      ++Ref.Bases;
      if (!Base->consistent(B))
        return true;
      return Enum.forEachTxnPlacement(B, [&](Execution &X) {
        if (!Tm->consistent(X))
          if (isMinimallyInconsistent(X, *Tm, V))
            Ref.AllHashes.push_back(canonicalHash(X));
        return true;
      });
    });
    std::sort(Ref.AllHashes.begin(), Ref.AllHashes.end());
    Ref.TestSet = Ref.AllHashes;
    Ref.TestSet.erase(std::unique(Ref.TestSet.begin(), Ref.TestSet.end()),
                      Ref.TestSet.end());
    return Ref;
  }
};

std::vector<uint64_t> suiteHashes(const ForbidSuite &S) {
  std::vector<uint64_t> H;
  for (const Execution &X : S.Tests)
    H.push_back(canonicalHash(X));
  return H;
}

TEST_P(ShardingDifferentialTest, IdenticalTestSetForEveryJobsValue) {
  Reference Ref = sequentialReference();
  ASSERT_FALSE(Ref.TestSet.empty());
  for (unsigned Jobs : kJobsValues) {
    ForbidSuite S = synth(Jobs, ShardStrategy::WorkStealing);
    EXPECT_TRUE(S.Complete);
    // Canonical-hash multiset equality against the sequential search: the
    // suite is deduplicated, so its hash multiset must equal the
    // reference *set* element-for-element (not merely in size).
    EXPECT_EQ(suiteHashes(S), Ref.TestSet) << "Jobs=" << Jobs;
    // Exact partition: every base visited exactly once.
    EXPECT_EQ(S.BasesVisited, Ref.Bases) << "Jobs=" << Jobs;
  }
}

TEST_P(ShardingDifferentialTest, StaticStrategyAgrees) {
  ForbidSuite Ws = synth(7, ShardStrategy::WorkStealing);
  ForbidSuite St = synth(7, ShardStrategy::StaticRoundRobin);
  EXPECT_EQ(suiteHashes(Ws), suiteHashes(St));
  EXPECT_EQ(Ws.BasesVisited, St.BasesVisited);
}

TEST_P(ShardingDifferentialTest, ByteForByteDeterministicAcrossJobs) {
  // Regression for the determinism guarantee: representatives and order —
  // not just the canonical set — are identical for every Jobs value and
  // both strategies. Compare full dumps.
  std::vector<std::string> RefDumps;
  for (const Execution &X : synth(1, ShardStrategy::WorkStealing).Tests)
    RefDumps.push_back(X.dump());
  for (unsigned Jobs : kJobsValues) {
    for (ShardStrategy Strat :
         {ShardStrategy::WorkStealing, ShardStrategy::StaticRoundRobin}) {
      ForbidSuite S = synth(Jobs, Strat);
      std::vector<std::string> Dumps;
      for (const Execution &X : S.Tests)
        Dumps.push_back(X.dump());
      EXPECT_EQ(Dumps, RefDumps)
          << "Jobs=" << Jobs << " strategy="
          << (Strat == ShardStrategy::WorkStealing ? "ws" : "static");
    }
  }
}

TEST_P(ShardingDifferentialTest, TestsAreSortedByCanonicalHash) {
  ForbidSuite S = synth(3, ShardStrategy::WorkStealing);
  std::vector<uint64_t> H = suiteHashes(S);
  EXPECT_TRUE(std::is_sorted(H.begin(), H.end()));
  EXPECT_EQ(std::adjacent_find(H.begin(), H.end()), H.end())
      << "duplicate canonical hash survived the merge";
  ASSERT_EQ(S.FoundAtSeconds.size(), S.Tests.size());
}

TEST_P(ShardingDifferentialTest, PrefixTasksPartitionTheBaseSpace) {
  // Decompose the space into prefix tasks exactly as the pool does —
  // split while above a deliberately tiny target cost, to force deep,
  // uneven frontiers — then check the union of the leaves' bases equals
  // the sequential enumeration: same count, same structural-hash
  // multiset. No base twice, none missed.
  Vocabulary V = vocab();
  ExecutionEnumerator Enum(V, workload().NumEvents);

  std::multiset<uint64_t> Sequential;
  Enum.forEachBase([&](Execution &X) {
    Sequential.insert(X.hash());
    return true;
  });

  std::multiset<uint64_t> Prefixed;
  uint64_t Leaves = 0;
  std::vector<BasePrefix> Stack;
  Enum.forEachSkeleton([&](const std::vector<unsigned> &Sizes) {
    Stack.push_back({Sizes, {}});
  });
  while (!Stack.empty()) {
    BasePrefix P = std::move(Stack.back());
    Stack.pop_back();
    if (P.Labels.size() < Enum.numEvents() && Enum.estimateCost(P) > 32.0) {
      for (BasePrefix &C : Enum.expandPrefix(P))
        Stack.push_back(std::move(C));
      continue;
    }
    ++Leaves;
    Enum.forEachBasePrefixed(P, [&](Execution &X) {
      Prefixed.insert(X.hash());
      return true;
    });
  }

  EXPECT_GT(Leaves, 16u) << "split target too lax to stress partitioning";
  EXPECT_EQ(Prefixed.size(), Sequential.size());
  EXPECT_EQ(Prefixed, Sequential);
}

TEST_P(ShardingDifferentialTest, WorkerTelemetryIsConsistent) {
  ForbidSuite S = synth(7, ShardStrategy::WorkStealing);
  ASSERT_EQ(S.Workers.size(), 7u);
  uint64_t Bases = 0, Tasks = 0;
  for (const WorkerLoad &L : S.Workers) {
    Bases += L.BasesVisited;
    Tasks += L.Tasks;
    EXPECT_GE(L.BusySeconds, 0.0);
  }
  EXPECT_EQ(Bases, S.BasesVisited);
  EXPECT_GT(Tasks, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVocabularies, ShardingDifferentialTest,
                         ::testing::Range<size_t>(0, std::size(kWorkloads)),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string Name = kWorkloads[Info.param].Spec;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

} // namespace
