//===- X86Model.cpp - x86-TSO with transactions ------------------------------==//

#include "models/X86Model.h"

using namespace tmw;

namespace {

/// Indices into `X86Axioms` (= `AxiomMask` bit positions).
enum : unsigned { kCoherence, kRMWIsol, kTfence, kOrder, kStrongIsol,
                  kTxnOrder };

/// memoTerm tags (unique static addresses) and the mask bits each term
/// actually reads (the memoization salt, so configurations differing only
/// in irrelevant axioms share one cached term).
constexpr char HbTag = 0;
constexpr uint32_t kHbSalt = 1u << kTfence;

/// hb (Fig. 5) = mfence u ppo u implied u rfe u fr u co, with the implicit
/// transaction fences folded into `implied` when the tfence axiom is on.
Relation hb(const ExecutionAnalysis &A, AxiomMask M) {
  bool Tfence = M.test(kTfence);
  return A.memoTerm(&HbTag, M.bits() & kHbSalt, /*TxnDependent=*/Tfence,
                    [&] {
    unsigned N = A.size();
    EventSet R = A.reads(), W = A.writes();

    // ppo = ((W x W) u (R x W) u (R x R)) n po: TSO relaxes only W->R.
    Relation Ppo = (Relation::cross(W, W, N) | Relation::cross(R, W, N) |
                    Relation::cross(R, R, N)) &
                   A.po();

    // implied = [L] ; po  u  po ; [L]  u  tfence, L the locked RMW events.
    EventSet Locked = A.rmw().domain() | A.rmw().range();
    Relation LockedId = Relation::identityOn(Locked, N);
    Relation Implied = LockedId.compose(A.po()) | A.po().compose(LockedId);
    if (Tfence)
      Implied |= A.tfence();

    return A.fenceRel(FenceKind::MFence) | Ppo | Implied | A.rfe() |
           A.fr() | A.co();
  });
}

Relation txnOrder(const ExecutionAnalysis &A, AxiomMask M) {
  return strongLift(hb(A, M), A.stxn());
}

// Axiom salts (Axiom.h): only the hb-derived terms read the mask, and
// only its tfence bit — the same footprint `kHbSalt` hands to memoTerm.
//
// Vocabulary footprints (Axiom.h, audited by tmw_audit's footprint pass):
// `tfence` is empty without transactions and `rmwIsolation` without RMW
// pairs, so both are discharged vacuously by specialized plans. The
// strong-lift terms (StrongIsol, TxnOrder) degenerate to their base
// relation on txn-free executions — never vacuous, full footprint.
const Axiom X86Axioms[] = {
    {"Coherence", AxiomKind::Acyclic, terms::coherence, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/~0u},
    {"RMWIsol", AxiomKind::Empty, terms::rmwIsolation, /*Tm=*/false,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/vocab::Rmw},
    {"tfence", AxiomKind::Acyclic, terms::tfence, /*Tm=*/true,
     /*Modifier=*/true, /*Salt=*/0, /*Footprint=*/vocab::Txn},
    {"Order", AxiomKind::Acyclic, hb, /*Tm=*/false, /*Modifier=*/false,
     /*Salt=*/kHbSalt, /*Footprint=*/~0u},
    {"StrongIsol", AxiomKind::Acyclic, terms::strongIsolation, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/0, /*Footprint=*/~0u},
    {"TxnOrder", AxiomKind::Acyclic, txnOrder, /*Tm=*/true,
     /*Modifier=*/false, /*Salt=*/kHbSalt, /*Footprint=*/~0u},
};

} // namespace

X86Model::X86Model(Config C) {
  Mask.set(kTfence, C.Tfence);
  Mask.set(kStrongIsol, C.StrongIsol);
  Mask.set(kTxnOrder, C.TxnOrder);
}

AxiomList X86Model::axioms() const { return X86Axioms; }

Relation X86Model::happensBefore(const ExecutionAnalysis &A) const {
  return hb(A, Mask);
}

X86Model::Config X86Model::config() const {
  return {Mask.test(kTfence), Mask.test(kStrongIsol), Mask.test(kTxnOrder)};
}
